// Package stms is a Go reproduction of "Practical Off-chip Meta-data for
// Temporal Memory Streaming" (Wenisch, Ferdman, Ailamaki, Falsafi,
// Moshovos — HPCA 2009): Sampled Temporal Memory Streaming, an
// address-correlating prefetcher whose predictor meta-data lives entirely
// in main memory, made practical by hash-based lookup, probabilistic
// update sampling, and a split index/history organization.
//
// The package front-door is the Lab session API, which decomposes "run
// the paper" into an explicit lifecycle:
//
//	session → plan → parallel execute → stream results
//
// A Lab is constructed with functional options; Plan crosses workloads
// with prefetcher variants into a RunPlan; Run executes the cells over
// a worker pool with deterministic per-cell seeding, context
// cancellation, and streaming progress events, returning an indexed
// Matrix of Results with aggregation and JSON/CSV export helpers.
//
// # Quick start
//
//	lab, err := stms.New(stms.WithScale(0.125), stms.WithSeed(42))
//	if err != nil {
//		log.Fatal(err)
//	}
//	plan := lab.Plan(stms.FigureEight(), []stms.PrefSpec{
//		{Kind: stms.None}, {Kind: stms.Ideal}, {Kind: stms.STMS},
//	})
//	m, err := lab.Run(context.Background(), plan)
//	if err != nil {
//		log.Fatal(err)
//	}
//	t, _ := m.SpeedupTable("baseline")
//	fmt.Print(t)
//
// The layers underneath:
//
//   - the STMS prefetcher itself and the idealized/comparator predictors
//     (internal/core, internal/prefetch/...);
//   - a deterministic 4-core CMP simulator with the paper's Table 1
//     system model (internal/sim) and synthetic workloads calibrated to
//     the paper's workload suite (internal/trace);
//   - the run-matrix execution engine (internal/lab) and the experiment
//     harness regenerating every table and figure of the paper's
//     evaluation on top of it (internal/expt).
//
// See DESIGN.md for the Lab/Plan/Matrix lifecycle, the package
// inventory and the per-experiment index, and README.md for a runnable
// tour.
package stms

import (
	"context"
	"io"
	"net/http"

	"stms/internal/core"
	"stms/internal/dist"
	"stms/internal/expt"
	"stms/internal/lab"
	"stms/internal/prefetch"
	"stms/internal/sim"
	"stms/internal/stats"
	"stms/internal/trace"
)

// Lab is a simulation session: base system configuration, parallelism
// budget, progress sink, and a memo of completed runs. Construct with
// New; build cross-product run matrices with Plan/PlanSpecs; execute
// with Run. Safe for concurrent use.
type Lab = lab.Lab

// Option configures a Lab at construction.
type Option = lab.Option

// RunPlan is an executable workload × variant cross-product built by
// Lab.Plan or Lab.PlanSpecs.
type RunPlan = lab.RunPlan

// PlanOption adjusts plan construction (driver mode, column labels,
// per-row seeding, per-cell overrides).
type PlanOption = lab.PlanOption

// Cell is one unit of work in a plan: a workload under a prefetcher
// variant with its fully resolved configuration.
type Cell = lab.Cell

// Matrix is the indexed result of running a plan: rows are workloads,
// columns are prefetcher variants.
type Matrix = lab.Matrix

// CellResult is one executed cell of a Matrix.
type CellResult = lab.CellResult

// ResultEvent streams per-cell progress (started/finished/failed) out
// of Lab.Run to the sink registered with WithProgress.
type ResultEvent = lab.ResultEvent

// EventKind classifies a ResultEvent.
type EventKind = lab.EventKind

// Mode selects the simulation driver for a plan's cells.
type Mode = lab.Mode

// Result-event kinds and driver modes, re-exported for plan options and
// progress sinks.
const (
	CellStarted  = lab.CellStarted
	CellFinished = lab.CellFinished
	CellFailed   = lab.CellFailed

	Timed      = lab.Timed
	Functional = lab.Functional
)

// New creates a session over the paper's Table 1 system, modified by
// options. Option and configuration errors are returned, not panicked.
func New(opts ...Option) (*Lab, error) { return lab.New(opts...) }

// WithScale shrinks caches, meta-data tables and workload footprints
// together (1 = the paper's full scale).
func WithScale(scale float64) Option { return lab.WithScale(scale) }

// WithSeed sets the trace and sampling seed; all cells of a plan
// inherit it, keeping variant columns matched-pair comparable.
func WithSeed(seed uint64) Option { return lab.WithSeed(seed) }

// WithWindows sets the per-core warm-up and measurement record counts.
func WithWindows(warm, measure uint64) Option { return lab.WithWindows(warm, measure) }

// WithParallelism bounds the worker pool executing plan cells
// (default: runtime.NumCPU()). Results are identical regardless.
func WithParallelism(n int) Option { return lab.WithParallelism(n) }

// WithBaseConfig replaces the base system configuration wholesale.
func WithBaseConfig(cfg Config) Option { return lab.WithBaseConfig(cfg) }

// WithTapeCache bounds the session's materialized-trace cache in bytes
// (default 512 MB; 0 disables tape caching). Cells sharing a trace
// identity — scaled spec, seed, cores, record budget — replay one
// columnar tape instead of re-deriving the record stream per variant;
// results are bit-identical either way.
func WithTapeCache(maxBytes int64) Option { return lab.WithTapeCache(maxBytes) }

// TapeStats reports a session's tape-cache accounting and its
// generate-vs-simulate wall-time split (Lab.TapeStats).
type TapeStats = lab.TapeStats

// WithTapeDir adds an on-disk tier to the session's tape store: a
// directory of STMSTAPE files named by trace-identity hash, shared
// across sessions, process restarts, and any stms-serve worker pointed
// at the same directory. Results are bit-identical with or without it.
func WithTapeDir(dir string) Option { return lab.WithTapeDir(dir) }

// WithWorkers turns the session into a coordinator: plan cells are
// dispatched to the stms-serve worker daemons at the given base URLs,
// routed by tape-identity affinity so each unique tape is built once
// fleet-wide, with transport failures retried on other workers and
// graceful degradation to local execution when none is reachable. The
// Matrix is bit-identical to an in-process run.
func WithWorkers(urls []string) Option { return lab.WithWorkers(urls) }

// Resilience bounds a coordinator's patience with a misbehaving worker
// pool: per-attempt dial/header deadlines, the event-stream stall
// window, retry rounds with full-jitter exponential backoff, and the
// per-worker circuit breaker thresholds. Zero fields mean defaults.
type Resilience = lab.Resilience

// WithResilience replaces the coordinator's resilience policy.
func WithResilience(r Resilience) Option { return lab.WithResilience(r) }

// WithWorkerAuth attaches a shared-secret bearer token to every request
// the coordinator makes to its workers, matching stms-serve -token.
func WithWorkerAuth(token string) Option { return lab.WithWorkerAuth(token) }

// WithWorkerTransport replaces the HTTP transport the coordinator's
// worker clients use — the hook chaos tests inject deterministic
// faults through (see dist.Injector).
func WithWorkerTransport(rt http.RoundTripper) Option { return lab.WithWorkerTransport(rt) }

// WithManifest makes runs resumable: completed cells are appended to
// the versioned JSON-lines manifest at path, and a session reopened on
// it preloads them into the memo, so a restarted coordinator skips
// every finished cell.
func WithManifest(path string) Option { return lab.WithManifest(path) }

// RemoteStats reports a coordinator session's dispatch accounting
// (Lab.RemoteStats): remote vs local cells, transport retries, breaker
// trips, stall aborts, backoff waits, and how worker tapes were
// satisfied.
type RemoteStats = lab.RemoteStats

// TapeStore is the content-addressed two-tier (memory LRU → on-disk
// STMSTAPE directory) tape store underlying lab sessions and worker
// daemons. Tapes are addressed by the hash of their trace identity,
// and every receiving tier re-derives the address before trusting a
// tape, so corrupt files are rebuilt rather than served.
type TapeStore = dist.Store

// NewTapeStore creates a tape store with the given memory budget and
// disk directory ("" disables the disk tier).
func NewTapeStore(memBytes int64, dir string) *TapeStore { return dist.NewStore(memBytes, dir) }

// WorkerConfig configures a worker daemon (name, tape store, sibling
// workers to fetch tapes from, concurrent-job bound).
type WorkerConfig = dist.ServerConfig

// WorkerServer is the stms-serve worker daemon: an http.Handler
// executing cell jobs over a content-addressed tape store, streaming
// progress as JSON lines. Mount it on any http.Server; stms-serve
// -worker is exactly that plus flags.
type WorkerServer = dist.Server

// NewWorkerServer constructs a worker daemon handler.
func NewWorkerServer(cfg WorkerConfig) *WorkerServer { return dist.NewServer(cfg) }

// WithProgress registers a serialized sink for cell lifecycle events.
func WithProgress(fn func(ResultEvent)) Option { return lab.WithProgress(fn) }

// InMode selects the simulation driver for every cell of a plan
// (default Timed).
func InMode(m Mode) PlanOption { return lab.InMode(m) }

// WithLabels overrides a plan's auto-derived column labels.
func WithLabels(labels ...string) PlanOption { return lab.WithLabels(labels...) }

// WithRowSeed derives a per-workload seed; cells in a row always share
// one so traces stay identical across variant columns.
func WithRowSeed(fn func(workload string, row int) uint64) PlanOption {
	return lab.WithRowSeed(fn)
}

// ForEachCell applies a final per-cell override hook to a plan.
func ForEachCell(fn func(*Cell)) PlanOption { return lab.ForEachCell(fn) }

// Config is the system under test (Table 1 defaults via DefaultConfig).
type Config = sim.Config

// PrefSpec selects and parameterizes the temporal prefetcher variant.
type PrefSpec = sim.PrefSpec

// Results reports one simulation run.
type Results = sim.Results

// Overhead is Figure 7's traffic-overhead breakdown.
type Overhead = sim.Overhead

// Kind enumerates prefetcher variants.
type Kind = sim.Kind

// Prefetcher variants: the stride-only baseline, idealized TMS with magic
// on-chip meta-data, practical STMS, and the published comparators.
const (
	None   = sim.None
	Ideal  = sim.Ideal
	STMS   = sim.STMS
	TSE    = sim.TSE
	EBCP   = sim.EBCP
	ULMT   = sim.ULMT
	Markov = sim.Markov
)

// WorkloadSpec describes one synthetic workload.
type WorkloadSpec = trace.Spec

// Scenario is a phase-structured, possibly multi-programmed workload:
// an ordered list of phases (each a WorkloadSpec plus a duration, with
// optional per-core mixes, gradual drift, and stream reseeding)
// materialized into one deterministic per-core record stream. Plans
// accept scenarios as rows (Lab.PlanScenarios, or built-in scenario
// names in Lab.Plan), results carry per-phase stat windows, and
// scenario tapes replay bit-identically to live generation.
type Scenario = trace.Scenario

// Phase is one epoch of a Scenario: a spec (or per-core mix) held for
// a duration, optionally drifting toward a second spec.
type Phase = trace.Phase

// PhaseMark locates one phase inside a materialized trace (per-core
// record offset of its start).
type PhaseMark = trace.PhaseMark

// PhaseWindow is the slice of a run's counters attributable to one
// scenario phase (Results.Phases).
type PhaseWindow = sim.PhaseWindow

// Scenarios returns the built-in phase-structured stress suite
// (phase-flip, stream-decay, oltp-antagonist, migratory-handoff, ...).
func Scenarios() []Scenario { return trace.Scenarios() }

// ScenarioNames lists the built-in scenario names in suite order.
func ScenarioNames() []string { return trace.ScenarioNames() }

// ScenarioByName returns the built-in scenario with the given name; an
// unknown name reports the nearest match and the full valid list.
func ScenarioByName(name string) (Scenario, error) { return trace.ScenarioByName(name) }

// ParseScenario decodes and validates a scenario from its versioned
// JSON format (the format stms-trace -scenario reads and
// -scenario-out writes).
func ParseScenario(r io.Reader) (Scenario, error) { return trace.ParseScenario(r) }

// Stationary wraps a plain spec as a single-phase scenario; its record
// streams are bit-identical to the spec's own.
func Stationary(name string, spec WorkloadSpec) Scenario { return trace.Stationary(name, spec) }

// Sequence builds a scenario from explicit phases.
func Sequence(name string, phases ...Phase) Scenario { return trace.Sequence(name, phases...) }

// MixOf builds a single-phase multi-programmed scenario: core c runs
// specs[c % len(specs)] for the whole run.
func MixOf(name string, specs ...WorkloadSpec) Scenario { return trace.MixOf(name, specs...) }

// Antagonist builds a single-phase scenario where every fourth core
// runs the antagonist spec and the rest run base.
func Antagonist(name string, base, antagonist WorkloadSpec) Scenario {
	return trace.Antagonist(name, base, antagonist)
}

// Drift builds a scenario that gradually interpolates from one spec to
// another over most of the run, then holds the end state.
func Drift(name string, from, to WorkloadSpec, steps int) Scenario {
	return trace.Drift(name, from, to, steps)
}

// Tape is a columnar (structure-of-arrays) materialization of one
// bounded multi-core trace: built once per trace identity, replayed any
// number of times through zero-allocation cursors. Lab sessions
// materialize and share tapes automatically; NewTape and the tape run
// functions expose the substrate for callers orchestrating their own
// runs or persisting tapes with trace.WriteTape/ReadTape via the
// stms-trace command.
type Tape = trace.Tape

// NewTape materializes perCore records for each of cores generators of
// the (already scaled) spec at seed, generating per-core segments in
// parallel. Replaying the tape is bit-identical to live generation.
func NewTape(spec WorkloadSpec, seed uint64, cores int, perCore uint64) *Tape {
	return trace.NewTape(spec, seed, cores, perCore)
}

// NewScenarioTape materializes a (already scaled) phase-structured
// scenario as a columnar tape, recording phase marks; replay —
// including through the on-disk STMSTAPE format — is bit-identical to
// live scenario generation.
func NewScenarioTape(scn Scenario, seed uint64, cores int, perCore uint64) *Tape {
	return trace.NewScenarioTape(scn, seed, cores, perCore)
}

// Frame is a reusable structure-of-arrays batch of trace records — the
// unit the simulation drivers consume (DESIGN.md §10). Custom consumers
// of workload streams can use FillFrame/Frames/PipelinedFrames to read
// any generator block-at-a-time instead of record-at-a-time.
type Frame = trace.Frame

// FrameReader is the batched fast path implemented by every built-in
// generator: ReadFrame fills up to Frame.Cap records and returns the
// count (0 = dry), producing exactly the sequence Next would.
type FrameReader = trace.FrameReader

// FrameSource hands out successive frames of a record stream; see
// trace.Frames (synchronous) and trace.PipelinedFrames (decode
// overlapped with consumption on a producer goroutine).
type FrameSource = trace.FrameSource

// FrameStats counts frames and records consumed from a FrameSource;
// Results.Frames reports the per-run totals (identical between live
// generation and tape replay).
type FrameStats = trace.FrameStats

// NewFrame returns an empty frame with the default capacity
// (trace.FrameCap records).
func NewFrame() *Frame { return trace.NewFrame() }

// FillFrame fills f from any generator, using its ReadFrame fast path
// when it has one; returns the record count (0 = dry).
func FillFrame(g trace.Generator, f *Frame) int { return trace.FillFrame(g, f) }

// Frames returns a synchronous frame source over g.
func Frames(g trace.Generator) FrameSource { return trace.Frames(g) }

// PipelinedFrames returns a double-buffered frame source: a producer
// goroutine fills the next frame while the caller works on the current
// one. The frame sequence is identical to Frames(g); Close it unless it
// was drained to nil.
func PipelinedFrames(g trace.Generator) FrameSource { return trace.PipelinedFrames(g) }

// STMSConfig sizes an STMS instance (history buffers, index table,
// sampling probability, bucket buffer).
type STMSConfig = core.Config

// EngineConfig tunes the shared stream-following engine.
type EngineConfig = prefetch.EngineConfig

// Options control experiment scale for the harness.
type Options = expt.Options

// DefaultConfig returns the paper's Table 1 system at full scale.
func DefaultConfig() Config { return sim.DefaultConfig() }

// DefaultSTMSConfig returns the paper's STMS sizing for the given core
// count (8 MB/core history, 16 MB index, 12-way buckets, 12.5% sampling,
// 8 KB bucket buffer).
func DefaultSTMSConfig(cores int) STMSConfig { return core.DefaultConfig(cores) }

// Workload returns the named workload specification at full (paper) scale.
// Names: web-apache, web-zeus, oltp-db2, oltp-oracle, dss-qry2, dss-qry17,
// sci-em3d, sci-moldyn, sci-ocean.
func Workload(name string) (WorkloadSpec, error) { return trace.ByName(name) }

// Workloads lists all workload names.
func Workloads() []string { return trace.Names() }

// FigureEight returns the eight workloads in the paper's figure order.
func FigureEight() []string { return trace.FigureEight() }

// Commercial returns the commercial (web, OLTP, DSS) workload names.
func Commercial() []string { return trace.Commercial() }

// RunTimed executes the cycle-level simulation of spec under the given
// prefetcher and returns measurement-window results (IPC, MLP, coverage,
// per-class DRAM traffic).
//
// Deprecated: build a Lab with New and execute a plan with Lab.Run —
// one blocking call per cell neither parallelizes nor memoizes. This
// wrapper remains for scripts and is equivalent to a 1×1 timed matrix.
func RunTimed(cfg Config, spec WorkloadSpec, ps PrefSpec) Results {
	return sim.RunTimed(cfg, spec, ps)
}

// RunFunctional executes the fast zero-latency driver (idealized-lookup
// coverage sweeps; timing fields of the result are zero).
//
// Deprecated: build a Lab with New and execute a plan with
// lab.Plan(..., stms.InMode(stms.Functional)) instead.
func RunFunctional(cfg Config, spec WorkloadSpec, ps PrefSpec) Results {
	return sim.RunFunctional(cfg, spec, ps)
}

// RunTimedCtx is RunTimed with cooperative cancellation; Lab.Run uses
// it per cell. Exposed for callers driving single runs with their own
// scheduling.
func RunTimedCtx(ctx context.Context, cfg Config, spec WorkloadSpec, ps PrefSpec) (Results, error) {
	return sim.RunTimedCtx(ctx, cfg, spec, ps, nil)
}

// RunFunctionalCtx is RunFunctional with cooperative cancellation.
func RunFunctionalCtx(ctx context.Context, cfg Config, spec WorkloadSpec, ps PrefSpec) (Results, error) {
	return sim.RunFunctionalCtx(ctx, cfg, spec, ps, nil)
}

// RunTimedTapeCtx executes the timed simulation over a materialized
// tape whose identity matches cfg (same seed, cores, and a record
// budget covering warm + measure); Results are bit-identical to
// RunTimedCtx with the tape's spec.
func RunTimedTapeCtx(ctx context.Context, cfg Config, tape *Tape, ps PrefSpec) (Results, error) {
	return sim.RunTimedTapeCtx(ctx, cfg, tape, ps, nil)
}

// RunFunctionalTapeCtx is RunFunctionalCtx over a materialized tape.
func RunFunctionalTapeCtx(ctx context.Context, cfg Config, tape *Tape, ps PrefSpec) (Results, error) {
	return sim.RunFunctionalTapeCtx(ctx, cfg, tape, ps, nil)
}

// RunTimedScenarioCtx executes the timed simulation of a
// phase-structured scenario (scaled by cfg.Scale, materialized against
// the warm + measure budget); Results carry per-phase windows. Prefer
// Lab plans with scenario rows — they parallelize, memoize, and share
// scenario tapes.
func RunTimedScenarioCtx(ctx context.Context, cfg Config, scn Scenario, ps PrefSpec) (Results, error) {
	return sim.RunTimedScenarioCtx(ctx, cfg, scn, ps, nil)
}

// RunFunctionalScenarioCtx is RunTimedScenarioCtx on the zero-latency
// functional driver (timing fields stay zero).
func RunFunctionalScenarioCtx(ctx context.Context, cfg Config, scn Scenario, ps PrefSpec) (Results, error) {
	return sim.RunFunctionalScenarioCtx(ctx, cfg, scn, ps, nil)
}

// SourceRun bundles externally supplied per-core frame sources — a live
// STMSWIRE stream, an imported trace, anything implementing
// trace.FrameSource — with the already-scaled spec they carry
// (DESIGN.md §14). Results are bit-identical to the equivalent direct
// run when the sources deliver the same record stream.
type SourceRun = sim.SourceRun

// RunTimedSourcesCtx executes the timed simulation over a SourceRun. A
// source whose producer dies mid-run surfaces that failure as an error,
// never as a short clean result.
func RunTimedSourcesCtx(ctx context.Context, cfg Config, run SourceRun, ps PrefSpec) (Results, error) {
	return sim.RunTimedSourcesCtx(ctx, cfg, run, ps, nil)
}

// RunFunctionalSourcesCtx is RunTimedSourcesCtx on the zero-latency
// functional driver (timing fields stay zero).
func RunFunctionalSourcesCtx(ctx context.Context, cfg Config, run SourceRun, ps PrefSpec) (Results, error) {
	return sim.RunFunctionalSourcesCtx(ctx, cfg, run, ps, nil)
}

// Sampling configures a K-window sampled simulation (DESIGN.md §13):
// the measurement window is split into Windows equal slices, each
// warmed by a fast meta-data replay of its prefix plus a short
// full-fidelity functional pass (FuncWarmup records) and a timed
// warm-up (Warmup records), then measured concurrently. Windows <= 1
// degenerates to the exact serial run.
type Sampling = sim.Sampling

// SampledResults joins a sampled run: the stitched estimate in Results
// form, the per-window details, and per-metric confidence intervals.
type SampledResults = sim.SampledResults

// WindowStat is one measured window of a sampled run.
type WindowStat = sim.WindowStat

// SampledCI carries the Student-t confidence intervals of the headline
// metrics (IPC, MLP, DRAM utilization, coverage) across windows.
type SampledCI = sim.SampledCI

// CI is one confidence interval (mean, bounds, level, strata count).
type CI = stats.CI

// WithSampling makes every timed cell of the session's plans run as a
// K-window sampled estimate (Cell.Sampling; per-cell overrides via
// ForEachCell). Sampled cells memoize and export separately from their
// exact counterparts and carry SampledResults with error bars.
func WithSampling(smp Sampling) Option { return lab.WithSampling(smp) }

// RunSampled executes the K-window sampled estimate of the timed
// simulation, panicking on configuration errors (prefer RunSampledCtx).
func RunSampled(cfg Config, spec WorkloadSpec, ps PrefSpec, smp Sampling) SampledResults {
	return sim.RunSampled(cfg, spec, ps, smp)
}

// RunSampledCtx executes the K-window sampled estimate of
// RunTimedCtx: the windows warm and measure concurrently, and the
// result carries per-window stats and confidence intervals. K <= 1
// returns the exact serial run (Exact = true, point intervals).
func RunSampledCtx(ctx context.Context, cfg Config, spec WorkloadSpec, ps PrefSpec, smp Sampling) (SampledResults, error) {
	return sim.RunSampledCtx(ctx, cfg, spec, ps, smp, nil)
}

// RunSampledScenarioCtx is RunSampledCtx for a phase-structured
// scenario (the stitched Results carry no per-phase windows — sampling
// estimates whole-run metrics).
func RunSampledScenarioCtx(ctx context.Context, cfg Config, scn Scenario, ps PrefSpec, smp Sampling) (SampledResults, error) {
	return sim.RunSampledScenarioCtx(ctx, cfg, scn, ps, smp, nil)
}

// RunSampledTapeCtx is RunSampledCtx over a materialized tape;
// estimates are bit-identical to the spec run of the same identity.
func RunSampledTapeCtx(ctx context.Context, cfg Config, tape *Tape, ps PrefSpec, smp Sampling) (SampledResults, error) {
	return sim.RunSampledTapeCtx(ctx, cfg, tape, ps, smp, nil)
}

// ResumeSampledCtx resumes a sampled run from a checkpoint taken by one
// of its windows (sim.WithCheckpointFunc): finished windows replay
// from the checkpoint manifest, the interrupted window resumes
// mid-stream, and the stitched estimate is bit-identical to an
// uninterrupted run.
func ResumeSampledCtx(ctx context.Context, data []byte) (SampledResults, error) {
	return sim.ResumeSampledCtx(ctx, data, nil)
}

// PeekSampled inspects a sampled checkpoint without resuming it:
// the sampling plan, the underlying run's identity, and the index of
// the checkpointed window.
func PeekSampled(data []byte) (Sampling, sim.CheckpointDesc, int, error) {
	return sim.PeekSampled(data)
}

// DefaultOptions returns the standard experiment scale for the harness.
func DefaultOptions() Options { return expt.DefaultOptions() }

// RunExperiment regenerates one paper artifact by ID (table1, table2,
// fig1l, fig1r, fig4, fig5l, fig5r, fig6l, fig6r, fig7, fig8, fig9, abl,
// or all), writing the tables to w. The harness executes each figure's
// run matrix across o.Parallel workers.
func RunExperiment(id string, o Options, w io.Writer) error {
	return expt.NewRunner(o).ByID(id, w)
}

// ExperimentIDs lists the experiment identifiers in paper order.
func ExperimentIDs() []string { return expt.IDs() }
