// Package stms is a Go reproduction of "Practical Off-chip Meta-data for
// Temporal Memory Streaming" (Wenisch, Ferdman, Ailamaki, Falsafi,
// Moshovos — HPCA 2009): Sampled Temporal Memory Streaming, an
// address-correlating prefetcher whose predictor meta-data lives entirely
// in main memory, made practical by hash-based lookup, probabilistic
// update sampling, and a split index/history organization.
//
// The package front-door wraps three layers:
//
//   - the STMS prefetcher itself and the idealized/comparator predictors
//     (internal/core, internal/prefetch/...);
//   - a deterministic 4-core CMP simulator with the paper's Table 1
//     system model (internal/sim) and synthetic workloads calibrated to
//     the paper's workload suite (internal/trace);
//   - the experiment harness regenerating every table and figure of the
//     paper's evaluation (internal/expt).
//
// # Quick start
//
//	cfg := stms.DefaultConfig()
//	cfg.Scale = 0.125 // 1/8-scale caches, meta-data and footprints
//	spec, _ := stms.Workload("web-apache")
//	base  := stms.RunTimed(cfg, spec, stms.PrefSpec{Kind: stms.None})
//	ideal := stms.RunTimed(cfg, spec, stms.PrefSpec{Kind: stms.Ideal})
//	pract := stms.RunTimed(cfg, spec, stms.PrefSpec{Kind: stms.STMS})
//	fmt.Printf("coverage %.0f%%, %.0f%% of ideal speedup\n",
//		pract.Coverage()*100,
//		100*pract.SpeedupOver(&base)/ideal.SpeedupOver(&base))
//
// See DESIGN.md for the system inventory and the per-experiment index,
// and EXPERIMENTS.md for measured-vs-paper results.
package stms

import (
	"io"

	"stms/internal/core"
	"stms/internal/expt"
	"stms/internal/prefetch"
	"stms/internal/sim"
	"stms/internal/trace"
)

// Config is the system under test (Table 1 defaults via DefaultConfig).
type Config = sim.Config

// PrefSpec selects and parameterizes the temporal prefetcher variant.
type PrefSpec = sim.PrefSpec

// Results reports one simulation run.
type Results = sim.Results

// Overhead is Figure 7's traffic-overhead breakdown.
type Overhead = sim.Overhead

// Kind enumerates prefetcher variants.
type Kind = sim.Kind

// Prefetcher variants: the stride-only baseline, idealized TMS with magic
// on-chip meta-data, practical STMS, and the published comparators.
const (
	None   = sim.None
	Ideal  = sim.Ideal
	STMS   = sim.STMS
	TSE    = sim.TSE
	EBCP   = sim.EBCP
	ULMT   = sim.ULMT
	Markov = sim.Markov
)

// WorkloadSpec describes one synthetic workload.
type WorkloadSpec = trace.Spec

// STMSConfig sizes an STMS instance (history buffers, index table,
// sampling probability, bucket buffer).
type STMSConfig = core.Config

// EngineConfig tunes the shared stream-following engine.
type EngineConfig = prefetch.EngineConfig

// Options control experiment scale for the harness.
type Options = expt.Options

// DefaultConfig returns the paper's Table 1 system at full scale.
func DefaultConfig() Config { return sim.DefaultConfig() }

// DefaultSTMSConfig returns the paper's STMS sizing for the given core
// count (8 MB/core history, 16 MB index, 12-way buckets, 12.5% sampling,
// 8 KB bucket buffer).
func DefaultSTMSConfig(cores int) STMSConfig { return core.DefaultConfig(cores) }

// Workload returns the named workload specification at full (paper) scale.
// Names: web-apache, web-zeus, oltp-db2, oltp-oracle, dss-qry2, dss-qry17,
// sci-em3d, sci-moldyn, sci-ocean.
func Workload(name string) (WorkloadSpec, error) { return trace.ByName(name) }

// Workloads lists all workload names.
func Workloads() []string { return trace.Names() }

// FigureEight returns the eight workloads in the paper's figure order.
func FigureEight() []string { return trace.FigureEight() }

// RunTimed executes the cycle-level simulation of spec under the given
// prefetcher and returns measurement-window results (IPC, MLP, coverage,
// per-class DRAM traffic).
func RunTimed(cfg Config, spec WorkloadSpec, ps PrefSpec) Results {
	return sim.RunTimed(cfg, spec, ps)
}

// RunFunctional executes the fast zero-latency driver (idealized-lookup
// coverage sweeps; timing fields of the result are zero).
func RunFunctional(cfg Config, spec WorkloadSpec, ps PrefSpec) Results {
	return sim.RunFunctional(cfg, spec, ps)
}

// DefaultOptions returns the standard experiment scale for the harness.
func DefaultOptions() Options { return expt.DefaultOptions() }

// RunExperiment regenerates one paper artifact by ID (table1, table2,
// fig1l, fig1r, fig4, fig5l, fig5r, fig6l, fig6r, fig7, fig8, fig9, or
// all), writing the tables to w.
func RunExperiment(id string, o Options, w io.Writer) error {
	return expt.NewRunner(o).ByID(id, w)
}

// ExperimentIDs lists the experiment identifiers in paper order.
func ExperimentIDs() []string { return expt.IDs() }
