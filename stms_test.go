// Tests for the public Lab session API: option validation, plan
// cross-product construction, mid-run context cancellation, determinism
// across parallelism, and the acceptance matrix — a single Lab.Run over
// the paper's workloads × {baseline, ideal, stms} whose per-cell results
// are identical to sequential RunTimed calls at the same seed.
package stms_test

import (
	"context"
	"reflect"
	"testing"
	"time"

	"stms"
)

// tinyLab returns fast-session options: same shapes as the paper runs,
// much smaller windows.
func tinyLab(extra ...stms.Option) []stms.Option {
	return append([]stms.Option{
		stms.WithScale(0.0625),
		stms.WithSeed(42),
		stms.WithWindows(2_000, 4_000),
	}, extra...)
}

func TestNewOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opts []stms.Option
	}{
		{"zero scale", []stms.Option{stms.WithScale(0)}},
		{"negative scale", []stms.Option{stms.WithScale(-0.5)}},
		{"superunit scale", []stms.Option{stms.WithScale(1.5)}},
		{"zero parallelism", []stms.Option{stms.WithParallelism(0)}},
		{"empty window", []stms.Option{stms.WithWindows(1000, 0)}},
		{"invalid base config", []stms.Option{stms.WithBaseConfig(stms.Config{})}},
	}
	for _, tc := range cases {
		if _, err := stms.New(tc.opts...); err == nil {
			t.Errorf("%s: New accepted invalid options", tc.name)
		}
	}

	lab, err := stms.New(
		stms.WithScale(0.25),
		stms.WithSeed(7),
		stms.WithWindows(100, 200),
		stms.WithParallelism(3),
	)
	if err != nil {
		t.Fatalf("New with valid options: %v", err)
	}
	cfg := lab.BaseConfig()
	if cfg.Scale != 0.25 || cfg.Seed != 7 || cfg.WarmRecords != 100 || cfg.MeasureRecords != 200 {
		t.Fatalf("options not applied: %+v", cfg)
	}
	if lab.Parallelism() != 3 {
		t.Fatalf("parallelism = %d, want 3", lab.Parallelism())
	}
}

func TestPlanCrossProduct(t *testing.T) {
	lab, err := stms.New(tinyLab()...)
	if err != nil {
		t.Fatal(err)
	}
	workloads := []string{"web-apache", "oltp-db2"}
	prefs := []stms.PrefSpec{
		{Kind: stms.None},
		{Kind: stms.STMS, SampleProb: 0.125},
		{Kind: stms.STMS, SampleProb: 0.5},
	}
	plan := lab.Plan(workloads, prefs)
	if err := plan.Err(); err != nil {
		t.Fatal(err)
	}
	rows, cols := plan.Size()
	if rows != 2 || cols != 3 {
		t.Fatalf("plan size = %d×%d, want 2×3", rows, cols)
	}
	if len(plan.Cells) != 6 {
		t.Fatalf("cells = %d, want 6", len(plan.Cells))
	}
	// Auto-labels must be distinct even for same-kind columns.
	seen := map[string]bool{}
	for _, l := range plan.Labels {
		if seen[l] {
			t.Fatalf("duplicate column label %q in %v", l, plan.Labels)
		}
		seen[l] = true
	}
	// Every cell inherits the session seed (matched-pair default).
	for _, c := range plan.Cells {
		if c.Config.Seed != 42 {
			t.Fatalf("cell %s/%s seed = %d, want 42", c.Workload, c.Label, c.Config.Seed)
		}
	}

	// Unknown workloads are plan errors, surfaced by Run.
	bad := lab.Plan([]string{"no-such-workload"}, prefs)
	if bad.Err() == nil {
		t.Fatal("plan accepted unknown workload")
	}
	if _, err := lab.Run(context.Background(), bad); err == nil {
		t.Fatal("Run accepted broken plan")
	}

	// Label count must match variant count.
	if lab.Plan(workloads, prefs, stms.WithLabels("just-one")).Err() == nil {
		t.Fatal("plan accepted mismatched labels")
	}

	// Per-cell override hook and per-row seeding are applied.
	custom := lab.Plan(workloads, prefs,
		stms.WithRowSeed(func(w string, row int) uint64 { return 100 + uint64(row) }),
		stms.ForEachCell(func(c *stms.Cell) { c.Config.MeasureRecords = 999 }),
	)
	if err := custom.Err(); err != nil {
		t.Fatal(err)
	}
	for _, c := range custom.Cells {
		if want := 100 + uint64(c.Row); c.Config.Seed != want {
			t.Fatalf("row seed = %d, want %d", c.Config.Seed, want)
		}
		if c.Config.MeasureRecords != 999 {
			t.Fatalf("ForEachCell override lost: %+v", c.Config.MeasureRecords)
		}
	}
}

func TestRunCancellation(t *testing.T) {
	// Big windows so the matrix would take far longer than the test
	// allows; cancellation must stop the workers promptly.
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 64)
	lab, err := stms.New(
		stms.WithScale(0.125),
		stms.WithWindows(400_000, 600_000),
		stms.WithParallelism(2),
		stms.WithProgress(func(ev stms.ResultEvent) {
			if ev.Kind == stms.CellStarted {
				select {
				case started <- struct{}{}:
				default:
				}
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	plan := lab.Plan(stms.FigureEight(), []stms.PrefSpec{
		{Kind: stms.None}, {Kind: stms.Ideal}, {Kind: stms.STMS},
	})
	if err := plan.Err(); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := lab.Run(ctx, plan)
		done <- err
	}()
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("no cell ever started")
	}
	t0 := time.Now()
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
	if waited := time.Since(t0); waited > 10*time.Second {
		t.Fatalf("cancellation took %v", waited)
	}
}

// TestMatrixMatchesSequential is the acceptance matrix — and the
// golden tape-vs-live equality check: one Lab.Run over the paper's
// figure-eight workloads × {baseline, ideal, stms} executes on shared
// columnar tapes (asserted via TapeStats), and every cell's Results
// must be bit-identical to a sequential live-generation RunTimed call
// at the same seed.
func TestMatrixMatchesSequential(t *testing.T) {
	lab, err := stms.New(tinyLab(stms.WithParallelism(4))...)
	if err != nil {
		t.Fatal(err)
	}
	prefs := []stms.PrefSpec{{Kind: stms.None}, {Kind: stms.Ideal}, {Kind: stms.STMS}}
	plan := lab.Plan(stms.FigureEight(), prefs)
	m, err := lab.Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	if !m.Complete() {
		t.Fatal("matrix has empty cells")
	}
	if ts := lab.TapeStats(); ts.Builds != uint64(len(m.Workloads)) {
		t.Fatalf("matrix built %d tapes for %d workloads — the equality below would not be testing tape replay", ts.Builds, len(m.Workloads))
	}

	cfg := lab.BaseConfig()
	for row, w := range m.Workloads {
		spec, err := stms.Workload(w)
		if err != nil {
			t.Fatal(err)
		}
		for col := range m.Labels {
			got := m.At(row, col).Res
			want := stms.RunTimed(cfg, spec, prefs[col])
			if !reflect.DeepEqual(*got, want) {
				t.Fatalf("cell %s/%s differs from sequential RunTimed", w, m.Labels[col])
			}
		}
	}

	// The matrix carries the figure's aggregations directly.
	spd, err := m.SpeedupTable("baseline")
	if err != nil {
		t.Fatal(err)
	}
	if len(spd.Rows) != len(m.Workloads)+1 { // + geomean row
		t.Fatalf("speedup table rows = %d", len(spd.Rows))
	}
	if cov := m.CoverageTable(); len(cov.Rows) != len(m.Workloads) {
		t.Fatalf("coverage table rows = %d", len(cov.Rows))
	}
}

func TestDeterminismAcrossParallelism(t *testing.T) {
	run := func(par int) *stms.Matrix {
		lab, err := stms.New(tinyLab(stms.WithParallelism(par))...)
		if err != nil {
			t.Fatal(err)
		}
		plan := lab.Plan([]string{"web-apache", "oltp-db2", "sci-em3d"}, []stms.PrefSpec{
			{Kind: stms.None}, {Kind: stms.STMS, SampleProb: 0.125},
		})
		m, err := lab.Run(context.Background(), plan)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(1), run(8)
	if !reflect.DeepEqual(a.Workloads, b.Workloads) || !reflect.DeepEqual(a.Labels, b.Labels) {
		t.Fatal("matrix shapes differ across parallelism")
	}
	for i := range a.Cells {
		ra, rb := a.Cells[i].Res, b.Cells[i].Res
		if ra == nil || rb == nil {
			t.Fatalf("cell %d missing results", i)
		}
		if !reflect.DeepEqual(*ra, *rb) {
			t.Fatalf("cell %s/%s differs between parallelism 1 and 8",
				a.Cells[i].Cell.Workload, a.Cells[i].Cell.Label)
		}
	}
}

func TestMemoizationAcrossPlans(t *testing.T) {
	calls := 0
	lab, err := stms.New(tinyLab(stms.WithProgress(func(ev stms.ResultEvent) {
		if ev.Kind == stms.CellStarted {
			calls++
		}
	}))...)
	if err != nil {
		t.Fatal(err)
	}
	plan := lab.Plan([]string{"sci-ocean"}, []stms.PrefSpec{{Kind: stms.None}})
	if _, err := lab.Run(context.Background(), plan); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("first run started %d cells, want 1", calls)
	}
	m, err := lab.Run(context.Background(), lab.Plan([]string{"sci-ocean"}, []stms.PrefSpec{{Kind: stms.None}}))
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("memoized rerun re-simulated (%d cells started)", calls)
	}
	if !m.Complete() {
		t.Fatal("memoized matrix incomplete")
	}
	if lab.MemoSize() != 1 {
		t.Fatalf("memo size = %d, want 1", lab.MemoSize())
	}
}

func TestFunctionalModeAndExport(t *testing.T) {
	lab, err := stms.New(tinyLab()...)
	if err != nil {
		t.Fatal(err)
	}
	plan := lab.Plan([]string{"web-apache"}, []stms.PrefSpec{{Kind: stms.Ideal}},
		stms.InMode(stms.Functional))
	m, err := lab.Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	res := m.At(0, 0).Res
	if res == nil {
		t.Fatal("no result")
	}
	if res.IPC != 0 || res.ElapsedCycles != 0 {
		t.Fatal("functional mode produced timing numbers")
	}
	if res.Coverage() <= 0 {
		t.Fatal("functional mode produced no coverage")
	}

	var jsonBuf, csvBuf testBuffer
	if err := m.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	if len(jsonBuf.b) == 0 || len(csvBuf.b) == 0 {
		t.Fatal("empty export")
	}
}

// TestScenarioSuiteMatrix is the scenario acceptance check: the whole
// built-in suite runs through one Lab matrix on the shared tape cache
// (one scenario tape per row, replayed by every variant column), every
// multi-phase row carries phase windows that sum to its totals, and
// each cell is bit-identical to a sequential live-generation scenario
// run at the same seed — the tape-replay-equals-live golden, covering
// multi-phase, mixed-core, drift and reseed scenarios.
func TestScenarioSuiteMatrix(t *testing.T) {
	lab, err := stms.New(tinyLab(stms.WithParallelism(4))...)
	if err != nil {
		t.Fatal(err)
	}
	prefs := []stms.PrefSpec{{Kind: stms.Ideal}, {Kind: stms.STMS, SampleProb: 0.125}}
	m, err := lab.Run(context.Background(), lab.Plan(stms.ScenarioNames(), prefs))
	if err != nil {
		t.Fatal(err)
	}
	if !m.Complete() {
		t.Fatal("matrix has empty cells")
	}
	if ts := lab.TapeStats(); ts.Builds != uint64(len(m.Workloads)) || ts.Hits == 0 {
		t.Fatalf("tape stats %+v: suite did not share one tape per scenario row", ts)
	}

	cfg := lab.BaseConfig()
	multiPhase := 0
	for row, name := range m.Workloads {
		scn, err := stms.ScenarioByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for col := range m.Labels {
			got := m.At(row, col).Res
			want, err := stms.RunTimedScenarioCtx(context.Background(), cfg, scn, prefs[col])
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(*got, want) {
				t.Fatalf("cell %s/%s differs from sequential live scenario run", name, m.Labels[col])
			}
		}
		res := m.At(row, 0).Res
		if len(scn.Phases) > 1 {
			multiPhase++
			if len(res.Phases) != len(scn.Phases) {
				t.Fatalf("%s: %d phase windows for %d phases", name, len(res.Phases), len(scn.Phases))
			}
			var recs uint64
			for _, w := range res.Phases {
				recs += w.Records
			}
			total := cfg.WarmRecords + cfg.MeasureRecords
			if recs != total*uint64(cfg.Cores) {
				t.Fatalf("%s: phase windows hold %d records, run processed %d", name, recs, total*uint64(cfg.Cores))
			}
		}
	}
	if multiPhase == 0 {
		t.Fatal("suite has no multi-phase scenarios")
	}
}

type testBuffer struct{ b []byte }

func (t *testBuffer) Write(p []byte) (int, error) {
	t.b = append(t.b, p...)
	return len(p), nil
}
