module stms

go 1.24
