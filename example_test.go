package stms_test

// Runnable examples for the package's three entry journeys: the Lab
// quickstart, building a phase-structured scenario, and tape replay.
// go test executes them (each prints deterministic output), so the
// documented workflows cannot rot.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"reflect"

	"stms"
)

// Example runs the quickstart: one Lab session, one 1×3 run matrix
// (baseline, idealized TMS, practical STMS) on a tiny window. Results
// are deterministic, so the derived facts below always hold.
func Example() {
	lab, err := stms.New(
		stms.WithScale(0.0625),
		stms.WithSeed(42),
		stms.WithWindows(2_000, 4_000),
	)
	if err != nil {
		log.Fatal(err)
	}
	plan := lab.Plan([]string{"web-apache"}, []stms.PrefSpec{
		{Kind: stms.None},
		{Kind: stms.Ideal},
		{Kind: stms.STMS, SampleProb: 0.125},
	})
	m, err := lab.Run(context.Background(), plan)
	if err != nil {
		log.Fatal(err)
	}
	base, ideal, practical := m.At(0, 0).Res, m.At(0, 1).Res, m.At(0, 2).Res
	fmt.Println("cells simulated:", len(m.Cells))
	fmt.Println("ideal covers misses:", ideal.Coverage() > 0)
	fmt.Println("stms covers misses:", practical.Coverage() > 0)
	fmt.Println("stms coverage below ideal:", practical.Coverage() <= ideal.Coverage())
	fmt.Println("baseline has an IPC:", base.IPC > 0)
	// Output:
	// cells simulated: 3
	// ideal covers misses: true
	// stms covers misses: true
	// stms coverage below ideal: true
	// baseline has an IPC: true
}

// Example_scenario builds a phase-structured scenario with the
// combinators, round-trips it through the versioned JSON format, and
// runs it: per-phase result windows come back alongside the whole-run
// numbers.
func Example_scenario() {
	apache, err := stms.Workload("web-apache")
	if err != nil {
		log.Fatal(err)
	}
	oltp, err := stms.Workload("oltp-db2")
	if err != nil {
		log.Fatal(err)
	}
	flip := stms.Sequence("my-flip",
		stms.Phase{Name: "web", Frac: 0.4, Spec: apache},
		stms.Phase{Name: "oltp", Spec: oltp},
	)

	var blob bytes.Buffer
	fmt.Fprintf(&blob, `{"stms_scenario": 1, "name": %q, "phases": [`+
		`{"name": "web", "frac": 0.4, "spec": %s},`+
		`{"name": "oltp", "spec": %s}]}`,
		"my-flip", mustJSON(apache), mustJSON(oltp))
	parsed, err := stms.ParseScenario(&blob)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("JSON round trip preserves identity:", parsed.Key() == flip.Key())

	cfg := stms.DefaultConfig()
	cfg.Scale, cfg.Seed = 0.0625, 42
	cfg.WarmRecords, cfg.MeasureRecords = 1_000, 2_000
	res, err := stms.RunTimedScenarioCtx(context.Background(), cfg, flip, stms.PrefSpec{Kind: stms.STMS, SampleProb: 0.125})
	if err != nil {
		log.Fatal(err)
	}
	for _, w := range res.Phases {
		fmt.Printf("phase %s starts at record %d/core\n", w.Name, w.Start)
	}
	// Output:
	// JSON round trip preserves identity: true
	// phase web starts at record 0/core
	// phase oltp starts at record 1200/core
}

// Example_tapeReplay materializes a workload once as a columnar tape
// and replays it: the Results are bit-identical to live generation,
// which is what lets the Lab's run matrix share one tape across every
// variant cell.
func Example_tapeReplay() {
	cfg := stms.DefaultConfig()
	cfg.Scale, cfg.Seed = 0.0625, 42
	cfg.WarmRecords, cfg.MeasureRecords = 1_000, 2_000

	spec, err := stms.Workload("oltp-db2")
	if err != nil {
		log.Fatal(err)
	}
	scaled := spec.Scaled(cfg.Scale)
	tape := stms.NewTape(scaled, cfg.Seed, cfg.Cores, cfg.WarmRecords+cfg.MeasureRecords)

	ps := stms.PrefSpec{Kind: stms.STMS, SampleProb: 0.125}
	live, err := stms.RunTimedCtx(context.Background(), cfg, spec, ps)
	if err != nil {
		log.Fatal(err)
	}
	replayed, err := stms.RunTimedTapeCtx(context.Background(), cfg, tape, ps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("tape replay bit-identical to live generation:",
		reflect.DeepEqual(live, replayed))
	fmt.Println("tape holds cores:", tape.Cores())
	// Output:
	// tape replay bit-identical to live generation: true
	// tape holds cores: 4
}

// Example_sampled splits one timed run into K concurrent measurement
// windows (DESIGN.md §13): the estimate comes back with per-metric
// 95% confidence intervals, the exact serial value lands inside them,
// and K=1 degenerates to the bit-identical exact run.
func Example_sampled() {
	cfg := stms.DefaultConfig()
	cfg.Scale, cfg.Seed = 0.0625, 42
	cfg.WarmRecords, cfg.MeasureRecords = 2_000, 8_000
	spec, err := stms.Workload("web-apache")
	if err != nil {
		log.Fatal(err)
	}
	ps := stms.PrefSpec{Kind: stms.STMS, SampleProb: 0.125}

	exact, err := stms.RunTimedCtx(context.Background(), cfg, spec, ps)
	if err != nil {
		log.Fatal(err)
	}
	sr, err := stms.RunSampledCtx(context.Background(), cfg, spec, ps, stms.Sampling{Windows: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("windows measured:", len(sr.Windows))
	fmt.Println("flagged exact:", sr.Exact)
	fmt.Println("confidence level:", sr.CI.IPC.Level)
	fmt.Println("exact IPC inside the interval:", sr.CI.IPC.Contains(exact.IPC))
	fmt.Println("exact coverage inside the interval:", sr.CI.Coverage.Contains(exact.Coverage()))

	k1, err := stms.RunSampledCtx(context.Background(), cfg, spec, ps, stms.Sampling{Windows: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("K=1 flagged exact:", k1.Exact)
	fmt.Println("K=1 bit-identical to serial:", reflect.DeepEqual(k1.Results, exact))
	// Output:
	// windows measured: 4
	// flagged exact: false
	// confidence level: 0.95
	// exact IPC inside the interval: true
	// exact coverage inside the interval: true
	// K=1 flagged exact: true
	// K=1 bit-identical to serial: true
}

func mustJSON(v interface{}) string {
	b, err := json.Marshal(v)
	if err != nil {
		log.Fatal(err)
	}
	return string(b)
}
