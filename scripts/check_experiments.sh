#!/usr/bin/env bash
# Extracts every ```sh block from EXPERIMENTS.md and executes it, in
# order, from the repo root. CI runs this so the handbook's commands
# cannot rot: if a flag is renamed or an experiment id disappears, the
# corresponding block fails the build. Output blocks (```text) and API
# snippets (```go) are not executed.
set -euo pipefail
cd "$(dirname "$0")/.."

doc=${1:-EXPERIMENTS.md}
[ -f "$doc" ] || { echo "check_experiments: $doc not found" >&2; exit 1; }

blocks=0
block=""
in_block=0
lineno=0
block_start=0
while IFS= read -r line || [ -n "$line" ]; do
  lineno=$((lineno + 1))
  if [ "$in_block" -eq 0 ] && [ "$line" = '```sh' ]; then
    in_block=1
    block=""
    block_start=$lineno
    continue
  fi
  if [ "$in_block" -eq 1 ] && [ "$line" = '```' ]; then
    in_block=0
    blocks=$((blocks + 1))
    echo "== $doc block $blocks (line $block_start) =="
    sed 's/^/   /' <<<"$block"
    bash -euo pipefail -c "$block" || {
      echo "check_experiments: block at $doc:$block_start failed" >&2
      exit 1
    }
    continue
  fi
  if [ "$in_block" -eq 1 ]; then
    block+="$line"$'\n'
  fi
done <"$doc"

if [ "$in_block" -eq 1 ]; then
  echo "check_experiments: unterminated \`\`\`sh block at $doc:$block_start" >&2
  exit 1
fi
if [ "$blocks" -eq 0 ]; then
  echo "check_experiments: no \`\`\`sh blocks found in $doc" >&2
  exit 1
fi
echo "check_experiments: $blocks command blocks passed"
