#!/usr/bin/env bash
# Extracts every ```sh block from EXPERIMENTS.md and executes it, in
# order, from the repo root. CI runs this so the handbook's commands
# cannot rot: if a flag is renamed or an experiment id disappears, the
# corresponding block fails the build. Output blocks (```text) and API
# snippets (```go) are not executed.
#
# Parsing and execution are two separate passes. Running blocks while
# still reading the doc had two `set -e` traps: a block that read stdin
# would silently consume the rest of the handbook (the loop's redirect
# was the block's stdin), and a failure inside the read loop could kill
# the script before the diagnostic named the failing block. Blocks are
# collected first, then each runs with stdin from /dev/null and an
# explicit status check, so every failure reports its block index,
# line number, and exit status.
set -euo pipefail
cd "$(dirname "$0")/.."

doc=${1:-EXPERIMENTS.md}
[ -f "$doc" ] || { echo "check_experiments: $doc not found" >&2; exit 1; }

# Pass 1: parse the handbook into blocks[] / starts[].
blocks=()
starts=()
block=""
in_block=0
lineno=0
block_start=0
while IFS= read -r line || [ -n "$line" ]; do
  lineno=$((lineno + 1))
  if [ "$in_block" -eq 0 ] && [ "$line" = '```sh' ]; then
    in_block=1
    block=""
    block_start=$lineno
    continue
  fi
  if [ "$in_block" -eq 1 ] && [ "$line" = '```' ]; then
    in_block=0
    blocks+=("$block")
    starts+=("$block_start")
    continue
  fi
  if [ "$in_block" -eq 1 ]; then
    block+="$line"$'\n'
  fi
done <"$doc"

if [ "$in_block" -eq 1 ]; then
  echo "check_experiments: unterminated \`\`\`sh block at $doc:$block_start" >&2
  exit 1
fi
if [ "${#blocks[@]}" -eq 0 ]; then
  echo "check_experiments: no \`\`\`sh blocks found in $doc" >&2
  exit 1
fi

# Pass 2: execute. Stdin is /dev/null so an interactive or stdin-reading
# command fails its own block instead of eating the document; the
# status of every block is checked explicitly so `set -e` can never
# skip the diagnostic.
failed=0
for i in "${!blocks[@]}"; do
  n=$((i + 1))
  echo "== $doc block $n (line ${starts[$i]}) =="
  sed 's/^/   /' <<<"${blocks[$i]}"
  status=0
  bash -euo pipefail -c "${blocks[$i]}" </dev/null || status=$?
  if [ "$status" -ne 0 ]; then
    echo "check_experiments: block $n at $doc:${starts[$i]} failed with exit status $status" >&2
    failed=1
    break
  fi
done

if [ "$failed" -ne 0 ]; then
  exit 1
fi
echo "check_experiments: ${#blocks[@]} command blocks passed"
