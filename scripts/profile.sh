#!/usr/bin/env sh
# profile.sh — run stms-bench under the CPU and allocation profilers and
# print the top-10 flat hot spots of each, so a perf PR starts from data
# instead of guesses.
#
# Usage:
#   scripts/profile.sh [stms-bench flags...]
#
# Defaults to `-run fig8` at the stms-bench default scale; pass any
# stms-bench flags to override (e.g. `scripts/profile.sh -run all
# -scale 0.0625`). Profiles and the built binary land in ./profile.out/.
set -eu

outdir=profile.out
mkdir -p "$outdir"

args="$*"
if [ -z "$args" ]; then
	args="-run fig8"
fi

echo "== building stms-bench"
go build -o "$outdir/stms-bench" ./cmd/stms-bench

echo "== running: stms-bench $args (-cpuprofile/-memprofile -> $outdir)"
# shellcheck disable=SC2086
"$outdir/stms-bench" $args \
	-cpuprofile "$outdir/cpu.pprof" \
	-memprofile "$outdir/mem.pprof" \
	>"$outdir/bench.txt"

echo
echo "== top-10 flat CPU"
go tool pprof -top -nodecount=10 "$outdir/stms-bench" "$outdir/cpu.pprof" | sed -n '/flat  flat%/,$p'

echo
echo "== top-10 flat allocations (space)"
go tool pprof -top -nodecount=10 -sample_index=alloc_space "$outdir/stms-bench" "$outdir/mem.pprof" | sed -n '/flat  flat%/,$p'

echo
echo "full text output: $outdir/bench.txt; explore with:"
echo "  go tool pprof $outdir/stms-bench $outdir/cpu.pprof"
