// sampling-sweep reproduces Figure 8's trade-off on one workload: sweeping
// the probabilistic-update sampling probability from 100% down to 1%
// slashes index-maintenance traffic roughly in proportion, while coverage
// declines only gently — because temporal streams are either long (a later
// block's index entry finds them) or frequent (some occurrence gets
// sampled soon).
//
// The sweep is one plan: seven STMS columns differing only in sampling
// probability, executed in parallel over identical traces — literally
// identical: the session materializes the workload once as a columnar
// tape and every column replays it (the tape-cache summary at the end
// shows one build serving all seven cells).
//
// The sweep itself then demonstrates the other kind of sampling: the
// paper's knee point (12.5%) is re-estimated as a K-window sampled
// simulation (stms.WithSampling, DESIGN.md §13) and reported with 95%
// error bars next to the exact value the sweep just computed.
//
//	go run ./examples/sampling-sweep [workload]
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"stms"
)

func main() {
	name := "oltp-oracle"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}

	lab, err := stms.New(stms.WithScale(0.125))
	if err != nil {
		log.Fatal(err)
	}

	probs := []float64{1.0, 0.5, 0.25, 0.125, 0.0625, 0.03125, 0.01}
	prefs := make([]stms.PrefSpec, len(probs))
	for i, p := range probs {
		prefs[i] = stms.PrefSpec{Kind: stms.STMS, SampleProb: p}
	}
	plan := lab.Plan([]string{name}, prefs)
	m, err := lab.Run(context.Background(), plan)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		fmt.Fprintf(os.Stderr, "workloads: %v\n", stms.Workloads())
		os.Exit(1)
	}

	fmt.Printf("sweeping update sampling probability on %s\n\n", name)
	fmt.Printf("%9s %9s %12s %12s %12s\n", "sampling", "coverage", "update-ovh", "total-ovh", "accuracy")

	var covAt100 float64
	for col, p := range probs {
		r := m.At(0, col).Res
		ov := r.OverheadTraffic()
		acc := 0.0
		if r.Engine.Issued > 0 {
			acc = float64(r.Engine.FullHits+r.Engine.PartialHits) / float64(r.Engine.Issued)
		}
		if p == 1.0 {
			covAt100 = r.Coverage()
		}
		fmt.Printf("%8.1f%% %8.1f%% %12.3f %12.3f %11.1f%%\n",
			p*100, r.Coverage()*100, ov.Update, ov.Total(), acc*100)
	}

	fmt.Printf("\ncoverage at 100%% sampling was %.1f%%; the paper picks 12.5%% as the\n", covAt100*100)
	fmt.Println("knee: ~8x less update bandwidth for a few points of coverage (§5.5).")

	ts := lab.TapeStats()
	fmt.Printf("\ntrace tapes: %d build(s) served %d cells (%.1f MB cached; generate %s, simulate %s)\n",
		ts.Builds, ts.Hits+ts.Misses, float64(ts.BytesInUse)/1e6,
		ts.Generate.Round(1e6), ts.Simulate.Round(1e6))

	// Part two: sampled simulation of the knee point. A second session
	// opts every timed cell into a 4-window sampled estimate; its cell
	// memoizes separately from the exact one above and carries error
	// bars for each headline metric.
	const knee = 0.125
	smpLab, err := stms.New(stms.WithScale(0.125), stms.WithSampling(stms.Sampling{Windows: 4}))
	if err != nil {
		log.Fatal(err)
	}
	sm, err := smpLab.Run(context.Background(),
		smpLab.Plan([]string{name}, []stms.PrefSpec{{Kind: stms.STMS, SampleProb: knee}}))
	if err != nil {
		log.Fatal(err)
	}
	sr := sm.At(0, 0).Sampled
	exact := m.At(0, 3).Res // the 12.5% column of the sweep above
	fmt.Printf("\nK-window sampled estimate of the %.1f%% knee (4 windows, 95%% CI):\n", knee*100)
	fmt.Printf("  coverage %5.1f%% ± %.1f pts   (exact %5.1f%%, in CI: %v)\n",
		sr.CI.Coverage.Mean*100, sr.CI.Coverage.HalfWidth()*100,
		exact.Coverage()*100, sr.CI.Coverage.Contains(exact.Coverage()))
	fmt.Printf("  IPC      %6.3f ± %.3f      (exact %6.3f, in CI: %v)\n",
		sr.CI.IPC.Mean, sr.CI.IPC.HalfWidth(), exact.IPC, sr.CI.IPC.Contains(exact.IPC))
}
