// custom-workload shows how to define your own synthetic workload spec and
// evaluate how well STMS would prefetch it. The example models a graph
// analytics kernel: long pointer-chase walks over a fixed edge list
// (highly repetitive iteration order, like the paper's scientific codes)
// mixed with random vertex-property lookups that never repeat.
//
// Custom specs enter the session through Lab.PlanSpecs; the meta-data
// sizing sweep at the end is a second, functional-mode plan over the
// same session.
//
//	go run ./examples/custom-workload
package main

import (
	"context"
	"fmt"
	"log"

	"stms"
)

func main() {
	graph := stms.WorkloadSpec{
		Name:  "graph-walk",
		Class: "Sci",

		// One iteration-long stream per core: the edge list is traversed
		// in the same order every superstep.
		IterStream: true,
		IterLen:    96_000,

		ReplayMin: 1.0,
		SkipProb:  0.01, // occasional frontier-dependent skips

		// 20% of references are random property lookups (not repetitive).
		NoiseInChase: 0.2,
		NoiseProb:    0.1,
		DepChase:     0.6, // pointer chasing partially serializes misses
		DepNoise:     0.3,

		// Cost model: compute-light per edge, bursts of 2 on average.
		GapInstrs: 300, GapWork: 330,
		MemInstrs: 12, MemWork: 6,
		BurstMean: 2.0, BurstMax: 4,
		WorkJitter: 0.25,
		HotBlocks:  16,
		DirtyFrac:  0.2,
	}

	// Quarter-scale system: the 2 MB L2 holds a third of the graph, so
	// every superstep misses most of the edge list again.
	lab, err := stms.New(
		stms.WithScale(0.25),
		stms.WithWindows(60_000, 90_000),
	)
	if err != nil {
		log.Fatal(err)
	}

	plan := lab.PlanSpecs([]stms.WorkloadSpec{graph}, []stms.PrefSpec{
		{Kind: stms.None},
		{Kind: stms.STMS},
	})
	m, err := lab.Run(context.Background(), plan)
	if err != nil {
		log.Fatal(err)
	}
	base := m.At(0, 0).Res
	pract := m.At(0, 1).Res

	fmt.Printf("graph-walk under STMS (12.5%% sampled updates):\n")
	fmt.Printf("  baseline IPC   %.3f (MLP %.2f)\n", base.IPC, base.MLP)
	fmt.Printf("  STMS IPC       %.3f (%+.1f%%)\n", pract.IPC, pract.SpeedupOver(base)*100)
	fmt.Printf("  coverage       %.1f%% of %d off-chip misses\n",
		pract.Coverage()*100, pract.BaselineMisses())
	fmt.Printf("  prefetches     %d issued, %d wasted\n",
		pract.Engine.Issued, pract.Engine.Evicted)
	ov := pract.OverheadTraffic()
	fmt.Printf("  traffic        %.2f overhead bytes per useful byte\n", ov.Total())

	// The same spec can be swept: how much history does it need? A
	// functional-mode plan answers with zero-latency coverage runs.
	fmt.Printf("\nmeta-data sizing (functional sweeps):\n")
	sizes := []uint64{2048, 8192, 32768, 131072}
	prefs := make([]stms.PrefSpec, len(sizes))
	for i, entries := range sizes {
		prefs[i] = stms.PrefSpec{Kind: stms.Ideal, HistoryEntries: entries}
	}
	sweep, err := lab.Run(context.Background(),
		lab.PlanSpecs([]stms.WorkloadSpec{graph}, prefs, stms.InMode(stms.Functional)))
	if err != nil {
		log.Fatal(err)
	}
	for col, entries := range sizes {
		fmt.Printf("  history %7d entries/core -> coverage %5.1f%%\n",
			entries, sweep.At(0, col).Res.Coverage()*100)
	}
	fmt.Println("\ncoverage snaps on once the history holds a whole iteration —")
	fmt.Println("the bimodal scientific behaviour of Figure 5 (left).")
}
