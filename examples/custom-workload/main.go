// custom-workload shows how to define your own synthetic workload spec and
// evaluate how well STMS would prefetch it. The example models a graph
// analytics kernel: long pointer-chase walks over a fixed edge list
// (highly repetitive iteration order, like the paper's scientific codes)
// mixed with random vertex-property lookups that never repeat.
//
//	go run ./examples/custom-workload
package main

import (
	"fmt"

	"stms"
)

func main() {
	graph := stms.WorkloadSpec{
		Name:  "graph-walk",
		Class: "Sci",

		// One iteration-long stream per core: the edge list is traversed
		// in the same order every superstep.
		IterStream: true,
		IterLen:    96_000,

		ReplayMin: 1.0,
		SkipProb:  0.01, // occasional frontier-dependent skips

		// 20% of references are random property lookups (not repetitive).
		NoiseInChase: 0.2,
		NoiseProb:    0.1,
		DepChase:     0.6, // pointer chasing partially serializes misses
		DepNoise:     0.3,

		// Cost model: compute-light per edge, bursts of 2 on average.
		GapInstrs: 300, GapWork: 330,
		MemInstrs: 12, MemWork: 6,
		BurstMean: 2.0, BurstMax: 4,
		WorkJitter: 0.25,
		HotBlocks:  16,
		DirtyFrac:  0.2,
	}
	if err := graph.Validate(); err != nil {
		panic(err)
	}

	cfg := stms.DefaultConfig()
	// Quarter-scale system: the 2 MB L2 holds a third of the graph, so
	// every superstep misses most of the edge list again.
	cfg.Scale = 0.25
	cfg.WarmRecords = 60_000
	cfg.MeasureRecords = 90_000

	base := stms.RunTimed(cfg, graph, stms.PrefSpec{Kind: stms.None})
	pract := stms.RunTimed(cfg, graph, stms.PrefSpec{Kind: stms.STMS})

	fmt.Printf("graph-walk under STMS (12.5%% sampled updates):\n")
	fmt.Printf("  baseline IPC   %.3f (MLP %.2f)\n", base.IPC, base.MLP)
	fmt.Printf("  STMS IPC       %.3f (%+.1f%%)\n", pract.IPC, pract.SpeedupOver(&base)*100)
	fmt.Printf("  coverage       %.1f%% of %d off-chip misses\n",
		pract.Coverage()*100, pract.BaselineMisses())
	fmt.Printf("  prefetches     %d issued, %d wasted\n",
		pract.Engine.Issued, pract.Engine.Evicted)
	ov := pract.OverheadTraffic()
	fmt.Printf("  traffic        %.2f overhead bytes per useful byte\n", ov.Total())

	// The same spec can be swept: how much history does it need?
	fmt.Printf("\nmeta-data sizing (functional sweeps):\n")
	for _, entries := range []uint64{2048, 8192, 32768, 131072} {
		r := stms.RunFunctional(cfg, graph, stms.PrefSpec{Kind: stms.Ideal, HistoryEntries: entries})
		fmt.Printf("  history %7d entries/core -> coverage %5.1f%%\n", entries, r.Coverage()*100)
	}
	fmt.Println("\ncoverage snaps on once the history holds a whole iteration —")
	fmt.Println("the bimodal scientific behaviour of Figure 5 (left).")
}
