// distributed shards one run matrix across two stms-serve worker
// daemons and proves the central property of the distributed lab:
// remote execution changes where cells run, never what they produce.
//
// The walkthrough starts two in-process workers (the same
// stms.NewWorkerServer handler the stms-serve -worker binary mounts),
// peers them so materialized trace tapes move between them instead of
// being rebuilt, runs a workload × variant matrix through the pool,
// and then byte-compares its canonical JSON export against a purely
// local run of the same plan. It finishes by demonstrating graceful
// degradation (a coordinator with no reachable workers still
// completes) and a resumable manifest (a restarted session skips every
// finished cell).
//
//	go run ./examples/distributed
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"path/filepath"

	"stms"
)

func main() {
	// Two workers, each an ordinary http.Handler over its own tape
	// store. Real deployments run `stms-serve -worker` on separate
	// machines; httptest keeps the walkthrough self-contained.
	w1 := httptest.NewServer(stms.NewWorkerServer(stms.WorkerConfig{
		Name: "w1", Store: stms.NewTapeStore(256<<20, ""),
	}))
	defer w1.Close()
	// w2 lists w1 as a peer: a tape w1 already built is fetched over
	// GET /tapes/{key}, not rebuilt — each unique trace identity is
	// materialized once fleet-wide.
	w2 := httptest.NewServer(stms.NewWorkerServer(stms.WorkerConfig{
		Name: "w2", Store: stms.NewTapeStore(256<<20, ""), Peers: []string{w1.URL},
	}))
	defer w2.Close()

	workloads := []string{"sci-em3d", "oltp-db2", "web-apache"}
	variants := []stms.PrefSpec{
		{Kind: stms.None},
		{Kind: stms.Ideal},
		{Kind: stms.STMS, SampleProb: 0.125},
	}
	smoke := []stms.Option{
		stms.WithScale(0.0625), stms.WithSeed(42), stms.WithWindows(4_000, 8_000),
	}

	// The coordinator is an ordinary Lab with WithWorkers: same Plan,
	// same Run, same Matrix — cells just execute elsewhere.
	coord, err := stms.New(append(smoke, stms.WithWorkers([]string{w1.URL, w2.URL}))...)
	if err != nil {
		log.Fatal(err)
	}
	remote, err := coord.Run(context.Background(), coord.Plan(workloads, variants))
	if err != nil {
		log.Fatal(err)
	}
	rs := coord.RemoteStats()
	fmt.Printf("dispatch: %d remote cells across %d workers, %d tape builds, %d peer fetches\n",
		rs.RemoteCells, rs.Workers, rs.TapeBuilds, rs.TapeFetches)

	// The same plan, in-process.
	local, err := stms.New(smoke...)
	if err != nil {
		log.Fatal(err)
	}
	lm, err := local.Run(context.Background(), local.Plan(workloads, variants))
	if err != nil {
		log.Fatal(err)
	}

	// Canonical exports (wall time zeroed — it measures the machine,
	// not the simulated system) are byte-identical.
	if !bytes.Equal(exportJSON(remote), exportJSON(lm)) {
		log.Fatal("remote and local matrices serialized differently")
	}
	fmt.Println("remote matrix is byte-identical to the in-process run")
	t, err := remote.SpeedupTable("baseline")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(t)

	// Graceful degradation: a pool of unreachable workers falls back to
	// local execution, cell by cell, and still produces the same bits.
	deaf, err := stms.New(append(smoke, stms.WithWorkers([]string{"http://127.0.0.1:1"}))...)
	if err != nil {
		log.Fatal(err)
	}
	dm, err := deaf.Run(context.Background(), deaf.Plan(workloads[:1], variants))
	if err != nil {
		log.Fatal(err)
	}
	ds := deaf.RemoteStats()
	fmt.Printf("degraded: %d cells fell back to local execution (still %d results)\n",
		ds.LocalCells, len(dm.Cells))

	// Resumability: a manifest records finished cells; a second session
	// over the same file preloads them and simulates only what's left.
	manifest := filepath.Join(os.TempDir(), "stms-example.manifest")
	defer os.Remove(manifest)
	first, err := stms.New(append(smoke, stms.WithManifest(manifest))...)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := first.Run(context.Background(), first.Plan(workloads[:2], variants)); err != nil {
		log.Fatal(err)
	}
	simulated := 0
	resumed, err := stms.New(append(smoke,
		stms.WithManifest(manifest),
		stms.WithProgress(func(ev stms.ResultEvent) {
			if ev.Kind == stms.CellStarted {
				simulated++
			}
		}))...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resume: %d finished cells preloaded from the manifest\n", resumed.MemoSize())
	if _, err := resumed.Run(context.Background(), resumed.Plan(workloads, variants)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resume: full plan simulated only %d of %d cells\n",
		simulated, len(workloads)*len(variants))
}

// exportJSON renders a matrix canonically: per-cell wall time zeroed.
func exportJSON(m *stms.Matrix) []byte {
	for i := range m.Cells {
		m.Cells[i].Wall = 0
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		log.Fatal(err)
	}
	return buf.Bytes()
}
