// oltp-speedup reproduces the paper's headline comparison (Figures 4 and
// 9) for the commercial server workloads that motivate temporal memory
// streaming: OLTP and web serving are pointer-chase dominated, so the
// stride prefetcher in the baseline barely helps, while address
// correlation eliminates roughly half of the off-chip misses.
//
//	go run ./examples/oltp-speedup
package main

import (
	"fmt"

	"stms"
)

func main() {
	cfg := stms.DefaultConfig()
	cfg.Scale = 0.125

	workloads := []string{"web-apache", "web-zeus", "oltp-db2", "oltp-oracle", "dss-qry17"}

	fmt.Printf("%-12s %8s | %8s %8s | %8s %8s | %6s\n",
		"workload", "MLP", "ideal", "stms", "ideal", "stms", "ratio")
	fmt.Printf("%-12s %8s | %8s %8s | %8s %8s | %6s\n",
		"", "", "cov", "cov", "speedup", "speedup", "")
	fmt.Println("--------------------------------------------------------------------------")

	for _, name := range workloads {
		spec, err := stms.Workload(name)
		if err != nil {
			panic(err)
		}
		base := stms.RunTimed(cfg, spec, stms.PrefSpec{Kind: stms.None})
		ideal := stms.RunTimed(cfg, spec, stms.PrefSpec{Kind: stms.Ideal})
		pract := stms.RunTimed(cfg, spec, stms.PrefSpec{Kind: stms.STMS})

		ratio := 0.0
		if c := ideal.Coverage(); c > 0 {
			ratio = pract.Coverage() / c
		}
		fmt.Printf("%-12s %8.2f | %7.1f%% %7.1f%% | %+7.1f%% %+7.1f%% | %5.0f%%\n",
			name, base.MLP,
			ideal.Coverage()*100, pract.Coverage()*100,
			ideal.SpeedupOver(&base)*100, pract.SpeedupOver(&base)*100,
			ratio*100)
	}

	fmt.Println("\nNote the DSS row: decision support visits data once, so temporal")
	fmt.Println("streaming finds little to predict — exactly the paper's §5.2 result.")
}
