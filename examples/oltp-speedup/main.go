// oltp-speedup reproduces the paper's headline comparison (Figures 4 and
// 9) for the commercial server workloads that motivate temporal memory
// streaming: OLTP and web serving are pointer-chase dominated, so the
// stride prefetcher in the baseline barely helps, while address
// correlation eliminates roughly half of the off-chip misses.
//
// The whole comparison is one 5×3 run matrix: the Lab executes the
// cells across a worker pool (matched trace seeds per row), streaming
// progress as cells finish.
//
//	go run ./examples/oltp-speedup
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"stms"
)

func main() {
	lab, err := stms.New(
		stms.WithScale(0.125),
		stms.WithProgress(func(ev stms.ResultEvent) {
			if ev.Kind == stms.CellFinished {
				fmt.Fprintf(os.Stderr, "  [%d/%d] %s/%s done\n",
					ev.Done, ev.Total, ev.Cell.Workload, ev.Cell.Label)
			}
		}),
	)
	if err != nil {
		log.Fatal(err)
	}

	workloads := []string{"web-apache", "web-zeus", "oltp-db2", "oltp-oracle", "dss-qry17"}
	plan := lab.Plan(workloads, []stms.PrefSpec{
		{Kind: stms.None},
		{Kind: stms.Ideal},
		{Kind: stms.STMS},
	})
	m, err := lab.Run(context.Background(), plan)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-12s %8s | %8s %8s | %8s %8s | %6s\n",
		"workload", "MLP", "ideal", "stms", "ideal", "stms", "ratio")
	fmt.Printf("%-12s %8s | %8s %8s | %8s %8s | %6s\n",
		"", "", "cov", "cov", "speedup", "speedup", "")
	fmt.Println("--------------------------------------------------------------------------")

	for row, name := range m.Workloads {
		base := m.At(row, 0).Res
		ideal := m.At(row, 1).Res
		pract := m.At(row, 2).Res

		ratio := 0.0
		if c := ideal.Coverage(); c > 0 {
			ratio = pract.Coverage() / c
		}
		fmt.Printf("%-12s %8.2f | %7.1f%% %7.1f%% | %+7.1f%% %+7.1f%% | %5.0f%%\n",
			name, base.MLP,
			ideal.Coverage()*100, pract.Coverage()*100,
			ideal.SpeedupOver(base)*100, pract.SpeedupOver(base)*100,
			ratio*100)
	}

	fmt.Println("\nNote the DSS row: decision support visits data once, so temporal")
	fmt.Println("streaming finds little to predict — exactly the paper's §5.2 result.")
}
