// Phase-change walkthrough: what happens to off-chip meta-data when the
// working set flips out from under it — and comes back.
//
// The built-in "phase-flip" scenario runs Apache, switches to OLTP
// mid-run, then returns to Apache. The prefetcher's meta-data recorded
// in the first web phase is useless through the OLTP phase (every
// lookup misses — pure staleness) but becomes valid again the moment
// the working set returns: the library engine keys stream content by
// working set, so the "web-return" phase replays literally the same
// streams. Per-phase result windows make the dip and the recovery
// directly visible. A custom drift scenario is built inline for
// contrast: gradual change, no cliff.
//
//	go run ./examples/phase-change
package main

import (
	"context"
	"fmt"
	"log"

	"stms"
)

func main() {
	lab, err := stms.New(
		stms.WithScale(0.125),
		stms.WithSeed(42),
		stms.WithWindows(40_000, 80_000),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Built-in scenario names plan exactly like workload names.
	fmt.Println("simulating the phase-flip scenario (web → oltp → web)...")
	plan := lab.Plan([]string{"phase-flip"}, []stms.PrefSpec{
		{Kind: stms.Ideal},
		{Kind: stms.STMS, SampleProb: 0.125},
	}, stms.WithLabels("ideal", "stms"))
	m, err := lab.Run(context.Background(), plan)
	if err != nil {
		log.Fatal(err)
	}
	ideal, practical := m.At(0, 0).Res, m.At(0, 1).Res

	cores := uint64(lab.BaseConfig().Cores)
	fmt.Printf("\n%-12s %12s %10s %10s %10s\n", "phase", "records/core", "ideal cov", "stms cov", "stms IPC")
	for i := range practical.Phases {
		iw, sw := &ideal.Phases[i], &practical.Phases[i]
		fmt.Printf("%-12s %12d %9.1f%% %9.1f%% %10.3f\n",
			sw.Name, sw.Records/cores, iw.Coverage()*100, sw.Coverage()*100, sw.IPC)
	}
	fmt.Println("\nThe oltp phase starts cold (both prefetchers lose their streams),")
	fmt.Println("and web-return recovers ahead of the first web phase: the working")
	fmt.Println("set is the one the meta-data already describes.")

	// Custom scenarios compose from the public combinators; here a
	// gradual drift of Apache toward a noisy endpoint, for contrast
	// with the abrupt flip above.
	apache, err := stms.Workload("web-apache")
	if err != nil {
		log.Fatal(err)
	}
	noisy := apache
	noisy.NoiseProb = 0.4
	noisy.NoiseInChase = 0.3
	drift := stms.Drift("apache-goes-noisy", apache, noisy, 6)

	fmt.Println("\nsimulating a custom gradual-drift scenario for contrast...")
	dm, err := lab.Run(context.Background(), lab.PlanScenarios(
		[]stms.Scenario{drift},
		[]stms.PrefSpec{{Kind: stms.STMS, SampleProb: 0.125}},
	))
	if err != nil {
		log.Fatal(err)
	}
	res := dm.At(0, 0).Res
	fmt.Printf("\n%-12s %12s %10s\n", "phase", "records/core", "stms cov")
	for i := range res.Phases {
		w := &res.Phases[i]
		fmt.Printf("%-12s %12d %9.1f%%\n", w.Name, w.Records/cores, w.Coverage()*100)
	}
	fmt.Println("\nDrift degrades coverage smoothly — the working set never flips,")
	fmt.Println("so meta-data ages gradually instead of dying at a boundary.")

	ts := lab.TapeStats()
	fmt.Printf("\n(tape cache: %d builds served %d cells; scenario tapes are shared\n", ts.Builds, ts.Builds+ts.Hits)
	fmt.Println(" across variant columns exactly like stationary workload tapes)")
}
