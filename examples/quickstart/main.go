// Quickstart: simulate one commercial workload on the Table 1 system and
// compare the practical STMS prefetcher against the stride-only baseline
// and the idealized (magic on-chip meta-data) prefetcher — one Lab
// session, one 1×3 run matrix.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"stms"
)

func main() {
	lab, err := stms.New(
		stms.WithScale(0.125), // 1/8-scale caches, meta-data and working sets
		stms.WithSeed(42),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("simulating web-apache on a 4-core CMP (this takes a few seconds)...")
	plan := lab.Plan([]string{"web-apache"}, []stms.PrefSpec{
		{Kind: stms.None},
		{Kind: stms.Ideal},
		{Kind: stms.STMS}, // 12.5% sampling
	})
	m, err := lab.Run(context.Background(), plan)
	if err != nil {
		log.Fatal(err)
	}

	base := m.At(0, 0).Res
	ideal := m.At(0, 1).Res
	pract := m.At(0, 2).Res

	fmt.Printf("\n%-22s %10s %10s %10s\n", "", "baseline", "ideal TMS", "STMS")
	fmt.Printf("%-22s %10.3f %10.3f %10.3f\n", "aggregate IPC", base.IPC, ideal.IPC, pract.IPC)
	fmt.Printf("%-22s %10s %9.1f%% %9.1f%%\n", "miss coverage", "-",
		ideal.Coverage()*100, pract.Coverage()*100)
	fmt.Printf("%-22s %10s %9.1f%% %9.1f%%\n", "speedup", "-",
		ideal.SpeedupOver(base)*100, pract.SpeedupOver(base)*100)

	ratio := pract.SpeedupOver(base) / ideal.SpeedupOver(base)
	fmt.Printf("\nSTMS achieves %.0f%% of the idealized prefetcher's speedup while\n", ratio*100)
	fmt.Printf("keeping all predictor meta-data in (simulated) main memory.\n")

	ov := pract.OverheadTraffic()
	fmt.Printf("\nSTMS traffic overhead per useful data byte: %.2f\n", ov.Total())
	fmt.Printf("  recording streams %.2f | index updates %.2f | lookups %.2f | erroneous %.2f\n",
		ov.Record, ov.Update, ov.Lookup, ov.Erroneous)
}
