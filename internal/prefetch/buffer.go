package prefetch

import (
	"stms/internal/event"
	"stms/internal/mem"
)

// Buffer is one core's prefetch buffer: a small fully-associative holding
// area for blocks that were prefetched but not yet requested by the core
// (§4.2). Keeping streamed blocks here instead of in the caches avoids
// polluting them with erroneous prefetches. 2 KB per core = 32 blocks
// (§5.3).
//
// Entries are inserted in flight (the fetch has been issued), become ready
// when the data arrives, and leave either by being consumed by a demand
// access or by FIFO eviction of the oldest ready-but-unused block when
// space is needed — those evictions are the "erroneous prefetches" of
// Figures 1 and 7.
//
// The implementation is allocation-free in steady state: the block index
// is an open-addressed mem.BlockMap (no built-in map traffic on the
// per-access Probe/Contains path), nodes and partial-hit waiter records
// live in free-listed slices, and an intrusive insertion-order list plus
// an O(1) count of evictable entries keep the stream engine's hot path
// (HasSpaceFor, Insert, Probe) at constant work.
type Buffer struct {
	cap   int
	m     *mem.BlockMap
	nodes []pbNode
	free  []int32
	head  int32 // oldest
	tail  int32 // newest
	ready int   // ready && !claimed entries (evictable)

	// readyBy counts evictable entries per owning stream (sums to
	// ready). The engine's issue pump calls HasSpaceFor on every
	// credit, so the "is there an evictable block of another stream"
	// question must be O(1), not a list walk: it is ready > readyBy[s].
	// The table is tiny (bounded by cap, a handful in practice) and
	// linear-scanned.
	readyBy []streamCount

	waiters []pbWaiter
	freeW   int32

	// Stats.
	Issued        uint64 // blocks inserted (fetches issued)
	FullHits      uint64 // demand hits on ready blocks
	PartialHits   uint64 // demand hits on in-flight blocks
	EvictedUnused uint64 // ready blocks evicted without use (erroneous)
	Dropped       uint64 // in-flight blocks discarded at stream abandon
}

type pbNode struct {
	blk     uint64
	readyOK bool
	readyAt uint64
	claimed bool
	stream  uint64
	pos     uint64
	wHead   int32 // waiter list (-1 = none)
	wTail   int32
	prev    int32
	next    int32
}

// pbWaiter is a pooled partial-hit notification record: when the block
// arrives, h.Handle(readyAt, kind, a, b) runs.
type pbWaiter struct {
	h    event.Handler
	kind uint8
	a, b uint64
	next int32
}

const pbNil = int32(-1)

// streamCount is one readyBy bucket.
type streamCount struct {
	stream uint64
	n      int
}

// readyDelta adjusts the evictable count: the global total and the
// owning stream's bucket (buckets vanish at zero to keep scans short).
func (b *Buffer) readyDelta(stream uint64, d int) {
	b.ready += d
	for j := range b.readyBy {
		if b.readyBy[j].stream == stream {
			if b.readyBy[j].n += d; b.readyBy[j].n == 0 {
				last := len(b.readyBy) - 1
				b.readyBy[j] = b.readyBy[last]
				b.readyBy = b.readyBy[:last]
			}
			return
		}
	}
	b.readyBy = append(b.readyBy, streamCount{stream: stream, n: d})
}

// readyOf returns how many evictable entries stream owns.
func (b *Buffer) readyOf(stream uint64) int {
	for j := range b.readyBy {
		if b.readyBy[j].stream == stream {
			return b.readyBy[j].n
		}
	}
	return 0
}

// NewBuffer creates a buffer holding capacity blocks.
func NewBuffer(capacity int) *Buffer {
	if capacity <= 0 {
		capacity = 1
	}
	return &Buffer{
		cap:   capacity,
		m:     mem.NewBlockMap(capacity),
		head:  pbNil,
		tail:  pbNil,
		freeW: pbNil,
	}
}

// Len returns the number of live entries (ready + in flight).
func (b *Buffer) Len() int { return b.m.Len() }

// Cap returns the buffer capacity in blocks.
func (b *Buffer) Cap() int { return b.cap }

// Contains reports whether blk is present (ready or in flight).
func (b *Buffer) Contains(blk uint64) bool { return b.m.Contains(blk) }

// HasSpaceFor reports whether an insert on behalf of stream can proceed,
// evicting an unused ready block of a *different* stream if necessary.
// A stream never evicts its own blocks: prefetching is paced by the
// buffer — the engine stops issuing until the core consumes something —
// rather than racing ahead of demand and discarding its own work.
func (b *Buffer) HasSpaceFor(stream uint64) bool {
	if b.m.Len() < b.cap {
		return true
	}
	// Equivalent to scanning for a ready-unused entry of another
	// stream: such an entry exists iff some other stream owns one of
	// the evictable blocks.
	return b.ready > b.readyOf(stream)
}

func (b *Buffer) detach(i int32) {
	n := &b.nodes[i]
	if n.prev != pbNil {
		b.nodes[n.prev].next = n.next
	} else {
		b.head = n.next
	}
	if n.next != pbNil {
		b.nodes[n.next].prev = n.prev
	} else {
		b.tail = n.prev
	}
	n.prev, n.next = pbNil, pbNil
}

func (b *Buffer) pushBack(i int32) {
	n := &b.nodes[i]
	n.prev = b.tail
	n.next = pbNil
	if b.tail != pbNil {
		b.nodes[b.tail].next = i
	}
	b.tail = i
	if b.head == pbNil {
		b.head = i
	}
}

// release frees node i. Any waiter records must have been detached first.
func (b *Buffer) release(i int32) {
	b.m.Delete(b.nodes[i].blk)
	b.detach(i)
	b.nodes[i].wHead, b.nodes[i].wTail = pbNil, pbNil
	b.free = append(b.free, i)
}

// Insert adds an in-flight entry for blk belonging to stream, at history
// position pos. It evicts the oldest unused ready block of another stream
// if full, counting it as erroneous. Insert reports false (and does
// nothing) when the buffer has no space for this stream or the block is
// already present.
func (b *Buffer) Insert(blk uint64, stream, pos uint64) bool {
	if b.m.Contains(blk) {
		return false
	}
	if b.m.Len() >= b.cap && !b.evictOne(stream) {
		return false
	}
	var i int32
	if n := len(b.free); n > 0 {
		i = b.free[n-1]
		b.free = b.free[:n-1]
	} else {
		b.nodes = append(b.nodes, pbNode{})
		i = int32(len(b.nodes) - 1)
	}
	b.nodes[i] = pbNode{blk: blk, stream: stream, pos: pos, wHead: pbNil, wTail: pbNil, prev: pbNil, next: pbNil}
	b.m.Put(blk, i)
	b.pushBack(i)
	b.Issued++
	return true
}

// evictOne removes the oldest ready-unused entry not belonging to the
// inserting stream.
func (b *Buffer) evictOne(stream uint64) bool {
	for i := b.head; i != pbNil; i = b.nodes[i].next {
		n := &b.nodes[i]
		if n.readyOK && !n.claimed && n.stream != stream {
			b.readyDelta(n.stream, -1)
			b.EvictedUnused++
			b.release(i)
			return true
		}
	}
	return false
}

// addWaiter appends a pooled waiter record to node i's list.
func (b *Buffer) addWaiter(i int32, h event.Handler, kind uint8, a, bb uint64) {
	var w int32
	if b.freeW != pbNil {
		w = b.freeW
		b.freeW = b.waiters[w].next
	} else {
		b.waiters = append(b.waiters, pbWaiter{})
		w = int32(len(b.waiters) - 1)
	}
	b.waiters[w] = pbWaiter{h: h, kind: kind, a: a, b: bb, next: pbNil}
	n := &b.nodes[i]
	if n.wTail == pbNil {
		n.wHead = w
	} else {
		b.waiters[n.wTail].next = w
	}
	n.wTail = w
}

// fireWaiters delivers and releases the waiter list starting at head.
// Records are copied out and recycled before each callback, so callbacks
// may insert and probe freely.
func (b *Buffer) fireWaiters(head int32, t uint64) {
	for w := head; w != pbNil; {
		rec := b.waiters[w]
		b.waiters[w] = pbWaiter{next: b.freeW}
		b.freeW = w
		w = rec.next
		rec.h.Handle(t, rec.kind, rec.a, rec.b)
	}
}

// Arrived marks blk's data as available at time t. Claimed entries (a
// demand access arrived while the block was in flight) leave the buffer
// immediately, headed for the L1, and their waiters are notified.
func (b *Buffer) Arrived(blk uint64, t uint64) (stream, pos uint64, claimed, ok bool) {
	i, found := b.m.Get(blk)
	if !found {
		return 0, 0, false, false
	}
	n := &b.nodes[i]
	n.readyOK = true
	n.readyAt = t
	if n.claimed {
		stream, pos = n.stream, n.pos
		head := n.wHead
		n.wHead, n.wTail = pbNil, pbNil
		b.release(i)
		b.fireWaiters(head, t)
		return stream, pos, true, true
	}
	b.readyDelta(n.stream, 1)
	return n.stream, n.pos, false, true
}

// Probe services a demand access to blk. Ready blocks are consumed (they
// move to the L1); in-flight blocks are claimed, and w — if non-nil —
// fires via w.Handle(readyAt, wkind, wa, wb) when the data arrives (a
// partially covered miss). The returned stream/pos identify the supplying
// stream for engine bookkeeping when state != ProbeMiss.
func (b *Buffer) Probe(blk uint64, w event.Handler, wkind uint8, wa, wb uint64) (res ProbeResult, stream, pos uint64) {
	i, ok := b.m.Get(blk)
	if !ok {
		return ProbeResult{State: ProbeMiss}, 0, 0
	}
	n := &b.nodes[i]
	if n.readyOK {
		if !n.claimed {
			b.readyDelta(n.stream, -1)
		}
		b.FullHits++
		res = ProbeResult{State: ProbeReady, ReadyAt: n.readyAt}
		stream, pos = n.stream, n.pos
		b.release(i)
		return res, stream, pos
	}
	if !n.claimed {
		n.claimed = true
		b.PartialHits++
	}
	if w != nil {
		b.addWaiter(i, w, wkind, wa, wb)
	}
	return ProbeResult{State: ProbeInFlight}, n.stream, n.pos
}

// DropStream discards unclaimed ready entries belonging to stream; their
// bandwidth is already spent, so they count as erroneous. In-flight
// entries stay until arrival so the bandwidth accounting of the arrival
// path is preserved. The stream engine deliberately does NOT call this on
// abandonment — leftover blocks stay consumable and age out by eviction —
// but aggressive policies built on this buffer may want it.
func (b *Buffer) DropStream(stream uint64) {
	i := b.head
	for i != pbNil {
		next := b.nodes[i].next
		n := &b.nodes[i]
		if n.stream == stream && n.readyOK && !n.claimed {
			b.readyDelta(n.stream, -1)
			b.EvictedUnused++
			b.release(i)
		}
		i = next
	}
}

// FlushStats counts all remaining ready-unused entries as erroneous (end
// of measurement).
func (b *Buffer) FlushStats() {
	for i := b.head; i != pbNil; i = b.nodes[i].next {
		n := &b.nodes[i]
		if n.readyOK && !n.claimed {
			b.EvictedUnused++
		}
	}
}
