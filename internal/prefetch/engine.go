package prefetch

import (
	"stms/internal/event"
	"stms/internal/stats"
)

// EngineConfig tunes the stream-following policy. The defaults implement
// the behaviour described in §4.2/§4.5 and are held constant across every
// prefetcher variant so experiments vary only the meta-data backend.
type EngineConfig struct {
	Cores        int
	BufferBlocks int // prefetch buffer capacity per core (32 = 2 KB)
	QueueCap     int // FIFO address queue depth per core (<=128 B, §5.3)
	LowWater     int // refill the queue when it drains below this
	Chunk        int // addresses fetched per history read (12 per 64-B line)
	AbandonAfter int // consecutive uncovered trigger misses before abandoning
	AdoptAfter   int // uncovered streak before a found stream replaces an active one
	MaxDepth     int // max blocks followed per lookup; 0 = unlimited (Fig. 6 right)

	// InitialCredit and CreditPerHit ramp each stream's runahead: a
	// freshly adopted stream may have only InitialCredit fetches in
	// flight, and each confirmed hit extends the allowance. This bounds
	// the bandwidth wasted on mispredicted streams to InitialCredit
	// blocks while letting confirmed streams fill the whole buffer.
	InitialCredit int
	CreditPerHit  int
}

// DefaultEngineConfig returns the paper's stream-engine parameters for the
// given core count.
func DefaultEngineConfig(cores int) EngineConfig {
	return EngineConfig{
		Cores:         cores,
		BufferBlocks:  32,
		QueueCap:      48,
		LowWater:      8,
		Chunk:         12,
		AbandonAfter:  4,
		AdoptAfter:    2,
		InitialCredit: 8,
		CreditPerHit:  4,
	}
}

// EngineStats aggregates stream-engine events across cores.
type EngineStats struct {
	Lookups    uint64 // index lookups issued
	LookupHits uint64 // lookups that found a stream
	Adopted    uint64 // streams adopted (followed)
	Abandoned  uint64 // streams abandoned after unproductive misses
	Resumed    uint64 // streams resumed past an end-mark
	DepthStops uint64 // streams stopped by the MaxDepth limit
	Exhausted  uint64 // streams that caught up with the history head

	IssuedPrefetches uint64 // blocks sent to the prefetch buffer
	FilteredOnChip   uint64 // candidates skipped because already cached
	FullHits         uint64 // covered misses, data ready in time
	PartialHits      uint64 // covered misses, data still in flight
	EvictedUnused    uint64 // erroneous prefetches (fetched, never used)

	// StreamLens samples the realized length of every followed stream
	// (value = hits, weight = hits): Figure 6 left.
	StreamLens stats.CDF
}

// Covered returns total covered misses.
func (s *EngineStats) Covered() uint64 { return s.FullHits + s.PartialHits }

// Accuracy returns the fraction of issued prefetches that were consumed.
func (s *EngineStats) Accuracy() float64 {
	return stats.Ratio(float64(s.Covered()), float64(s.IssuedPrefetches))
}

type queued struct {
	addr uint64
	pos  uint64
}

type coreState struct {
	buf *Buffer

	// q is the FIFO address queue as a fixed ring (capacity QueueCap):
	// the engine tops it up by at most the remaining room, so it never
	// grows and never re-allocates.
	q     []queued
	qHead int
	qLen  int

	// cur is the followed stream's cursor, owned by the engine: adoption
	// copies the backend's (transient) lookup cursor into this storage,
	// and the engine advances it from delivered positions.
	cur        Cursor
	curSeq     uint64
	active     bool
	paused     bool
	markAddr   uint64
	lookBusy   bool
	readBusy   bool
	missStreak int
	hits       uint64
	lastHitPos uint64
	depth      int
	credit     int // remaining fetch allowance before more hits arrive

	// lookupDone is the premade continuation (one allocation at
	// construction) handed to Metadata.Lookup, replacing a per-call
	// closure. At most one lookup is in flight per core (lookBusy), so a
	// single shared continuation is unambiguous. History reads do NOT
	// share this property — an adopt can leave a stale read in flight
	// while the new stream issues its own — so those use pooled readOp
	// records instead.
	lookupDone func(*Cursor)
}

func (st *coreState) qPush(v queued) {
	st.q[(st.qHead+st.qLen)%len(st.q)] = v
	st.qLen++
}

func (st *coreState) qPop() queued {
	v := st.q[st.qHead]
	st.qHead = (st.qHead + 1) % len(st.q)
	st.qLen--
	return v
}

// Engine is the stream-following half of a temporal prefetcher (§4.2): it
// reacts to trigger misses by looking up streams in the Metadata backend,
// keeps each core's FIFO address queue and prefetch buffer full, pauses at
// end-marks, and abandons cold streams. All storage behaviour — latency
// and traffic — belongs to the backend.
type Engine struct {
	env  Env
	meta Metadata
	cfg  EngineConfig
	core []coreState
	seq  uint64
	st   EngineStats

	// freeOps recycles history-read continuation records. Each record's
	// closure is created once (capturing the record) and reused for the
	// record's whole life, so steady-state reads allocate nothing.
	freeOps []*readOp
}

// readOp identifies one in-flight Metadata.ReadNext: which core issued it
// and for which stream generation. Records outlive stream replacement, so
// a stale read completing after an adopt is recognized and dropped —
// exactly the captured-sequence guard the closure-based engine used.
type readOp struct {
	e    *Engine
	core int
	seq  uint64
	done func(addrs, positions []uint64, marked bool, markAddr uint64)
}

func (e *Engine) getReadOp(core int, seq uint64) *readOp {
	var op *readOp
	if n := len(e.freeOps); n > 0 {
		op = e.freeOps[n-1]
		e.freeOps = e.freeOps[:n-1]
	} else {
		op = &readOp{e: e}
		op.done = op.fire
	}
	op.core, op.seq = core, seq
	return op
}

// fire is the read's completion. The record is released before any
// processing so nested refills can reuse it.
func (op *readOp) fire(addrs, positions []uint64, marked bool, markAddr uint64) {
	e, core, seq := op.e, op.core, op.seq
	e.freeOps = append(e.freeOps, op)
	st := &e.core[core]
	if st.curSeq != seq || !st.active {
		return // stream replaced while the read was in flight
	}
	st.readBusy = false
	for i, a := range addrs {
		st.qPush(queued{addr: a, pos: positions[i]})
	}
	if n := len(addrs); n > 0 {
		st.cur.Pos = positions[n-1] + 1
	}
	if marked {
		st.paused = true
		st.markAddr = markAddr
	} else if len(addrs) == 0 {
		// Caught up with the history head: nothing more recorded.
		e.st.Exhausted++
		e.abandon(core)
		return
	}
	e.refill(core)
}

var _ Temporal = (*Engine)(nil)

// Engine event kinds (for completions delivered through Handle).
const engFetchArrived uint8 = 0

var _ event.Handler = (*Engine)(nil)

// NewEngine builds a stream engine over the given backend.
func NewEngine(env Env, meta Metadata, cfg EngineConfig) *Engine {
	if cfg.Cores <= 0 {
		cfg.Cores = 1
	}
	e := &Engine{env: env, meta: meta, cfg: cfg, core: make([]coreState, cfg.Cores)}
	for i := range e.core {
		st := &e.core[i]
		st.buf = NewBuffer(cfg.BufferBlocks)
		st.q = make([]queued, cfg.QueueCap)
		core := i
		st.lookupDone = func(cur *Cursor) { e.lookupDone(core, cur) }
	}
	return e
}

// Handle implements event.Handler for the engine's typed completions:
// engFetchArrived marks a streamed block's arrival in core b's buffer.
func (e *Engine) Handle(now uint64, kind uint8, a, b uint64) {
	e.core[b].buf.Arrived(a, now)
}

// Name returns the backend's name.
func (e *Engine) Name() string { return e.meta.Name() }

// Stats returns the engine's counters.
func (e *Engine) Stats() *EngineStats { return &e.st }

// Metadata returns the backend (for experiment-specific inspection).
func (e *Engine) Metadata() Metadata { return e.meta }

// Probe services a demand L1 miss from the core's prefetch buffer.
func (e *Engine) Probe(core int, blk uint64, w event.Handler, wkind uint8, wa, wb uint64) ProbeResult {
	st := &e.core[core]
	res, stream, pos := st.buf.Probe(blk, w, wkind, wa, wb)
	if res.State == ProbeMiss {
		return res
	}
	switch res.State {
	case ProbeReady:
		e.st.FullHits++
	case ProbeInFlight:
		e.st.PartialHits++
	}
	if st.active && stream == st.curSeq {
		st.hits++
		st.missStreak = 0
		st.lastHitPos = pos
		st.credit += e.cfg.CreditPerHit
		if st.credit > e.cfg.BufferBlocks {
			st.credit = e.cfg.BufferBlocks
		}
		e.refill(core)
	}
	return res
}

// TriggerMiss reacts to an uncovered L2 demand read miss: resume a paused
// stream if this is the annotated address, otherwise look the address up.
func (e *Engine) TriggerMiss(core int, blk uint64) {
	st := &e.core[core]
	st.missStreak++
	if st.active && st.paused && blk == st.markAddr {
		e.st.Resumed++
		st.paused = false
		st.missStreak = 0
		e.meta.SkipMark(&st.cur)
		e.refill(core)
		return
	}
	if st.active && st.missStreak >= e.cfg.AbandonAfter {
		e.abandon(core)
	}
	if st.lookBusy {
		return // one outstanding lookup per core; opportunity lost (§5.4)
	}
	st.lookBusy = true
	e.st.Lookups++
	e.meta.Lookup(core, blk, st.lookupDone)
}

// lookupDone receives the backend's lookup result (the premade per-core
// continuation).
func (e *Engine) lookupDone(core int, cur *Cursor) {
	st := &e.core[core]
	st.lookBusy = false
	if cur == nil {
		return
	}
	e.st.LookupHits++
	// Adopt unless an adopted stream is currently productive.
	if st.active && st.missStreak < e.cfg.AdoptAfter {
		return
	}
	e.adopt(core, cur)
}

// Record forwards a retired off-chip miss or prefetched hit to the
// backend's history.
func (e *Engine) Record(core int, blk uint64, prefetchHit bool) {
	e.meta.Record(core, blk, prefetchHit)
}

// RecordWarm implements WarmRecorder by forwarding to the backend when it
// supports traffic-free warming, falling back to a plain miss Record.
func (e *Engine) RecordWarm(core int, blk uint64) {
	if w, ok := e.meta.(WarmRecorder); ok {
		w.RecordWarm(core, blk)
		return
	}
	e.meta.Record(core, blk, false)
}

func (e *Engine) adopt(core int, cur *Cursor) {
	st := &e.core[core]
	if st.active {
		e.abandon(core)
	}
	e.seq++
	st.cur = *cur // copy: the backend's cursor is transient
	st.curSeq = e.seq
	st.active = true
	st.paused = false
	st.readBusy = false // any in-flight read now belongs to a stale stream
	st.hits = 0
	st.depth = 0
	st.missStreak = 0
	st.credit = e.cfg.InitialCredit
	if st.credit <= 0 {
		st.credit = e.cfg.BufferBlocks
	}
	e.st.Adopted++
	e.refill(core)
}

func (e *Engine) abandon(core int) {
	st := &e.core[core]
	if !st.active {
		return
	}
	if st.hits > 0 {
		// Annotate the entry after the last useful prefetch (§4.5).
		e.meta.MarkEnd(st.cur.Core, st.lastHitPos+1)
		e.st.StreamLens.Add(float64(st.hits), float64(st.hits))
	}
	// Already-fetched blocks stay in the buffer: their bandwidth is
	// spent, the core may still consume them, and a future stream's
	// inserts evict them if space is needed.
	st.qHead, st.qLen = 0, 0
	st.active = false
	st.paused = false
	st.readBusy = false
	e.st.Abandoned++
}

// refill issues queued prefetches and tops the queue up from the history.
func (e *Engine) refill(core int) {
	st := &e.core[core]
	e.issue(core)
	if !st.active || st.paused || st.readBusy {
		return
	}
	if st.qLen > e.cfg.LowWater {
		return
	}
	if e.cfg.MaxDepth > 0 && st.depth >= e.cfg.MaxDepth {
		return
	}
	want := e.cfg.Chunk
	if room := e.cfg.QueueCap - st.qLen; room < want {
		want = room
	}
	if want <= 0 {
		return
	}
	st.readBusy = true
	op := e.getReadOp(core, st.curSeq)
	if t, ok := e.meta.(ReadTagger); ok {
		// Announce the issuing core and stream generation so a backend
		// that parks this read as a pending record can checkpoint and
		// later re-mint its completion (ReadDoneFor).
		t.SetNextRead(core, st.curSeq)
	}
	e.meta.ReadNext(&st.cur, want, op.done)
}

// issue drains the address queue into the prefetch buffer while space
// lasts, applying the on-chip filter and the depth limit.
func (e *Engine) issue(core int) {
	st := &e.core[core]
	for st.qLen > 0 {
		if e.cfg.MaxDepth > 0 && st.depth >= e.cfg.MaxDepth {
			e.st.DepthStops++
			e.abandon(core)
			return
		}
		if st.credit <= 0 || !st.buf.HasSpaceFor(st.curSeq) {
			return
		}
		q := st.qPop()
		st.depth++
		if e.env.OnChip(core, q.addr) || st.buf.Contains(q.addr) {
			e.st.FilteredOnChip++
			continue
		}
		if !st.buf.Insert(q.addr, st.curSeq, q.pos) {
			return
		}
		st.credit--
		e.st.IssuedPrefetches++
		e.env.FetchH(core, q.addr, e, engFetchArrived, q.addr, uint64(core))
	}
}

// Flush finalizes statistics at the end of a measurement window: samples
// still-active streams and counts leftover unused buffer blocks.
func (e *Engine) Flush() {
	for i := range e.core {
		st := &e.core[i]
		if st.active && st.hits > 0 {
			e.st.StreamLens.Add(float64(st.hits), float64(st.hits))
		}
		st.buf.FlushStats()
	}
}

// BufferStats sums prefetch-buffer counters across cores (the engine's
// FullHits/PartialHits mirror these; buffer eviction counts feed the
// erroneous-prefetch traffic split).
func (e *Engine) BufferStats() (issued, evicted, dropped uint64) {
	for i := range e.core {
		b := e.core[i].buf
		issued += b.Issued
		evicted += b.EvictedUnused
		dropped += b.Dropped
	}
	return
}
