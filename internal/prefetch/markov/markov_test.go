package markov

import (
	"testing"

	"stms/internal/dram"
	"stms/internal/event"
	"stms/internal/prefetch"
)

type env struct {
	fetched []uint64
	onChip  map[uint64]bool
}

func newEnv() *env { return &env{onChip: map[uint64]bool{}} }

func (e *env) Now() uint64 { return 0 }
func (e *env) MetaRead(c dram.Class, done func(uint64)) {
	if done != nil {
		done(0)
	}
}
func (e *env) MetaReadH(c dram.Class, h event.Handler, kind uint8, a, b uint64) {
	h.Handle(0, kind, a, b)
}
func (e *env) MetaWrite(dram.Class)             {}
func (e *env) OnChip(core int, blk uint64) bool { return e.onChip[blk] }
func (e *env) Fetch(core int, blk uint64, done func(uint64)) {
	e.fetched = append(e.fetched, blk)
	if done != nil {
		done(0)
	}
}
func (e *env) FetchH(core int, blk uint64, h event.Handler, kind uint8, a, b uint64) {
	e.fetched = append(e.fetched, blk)
	h.Handle(0, kind, a, b)
}

func TestPairwiseLearning(t *testing.T) {
	e := newEnv()
	p := New(e, Config{Cores: 1, Successors: 2, BufferBlocks: 8})
	// Train: A is followed by B.
	p.Record(0, 100, false)
	p.Record(0, 200, false)
	p.TriggerMiss(0, 100)
	if len(e.fetched) != 1 || e.fetched[0] != 200 {
		t.Fatalf("fetched = %v, want [200]", e.fetched)
	}
	if res := p.Probe(0, 200, nil, 0, 0, 0); res.State != prefetch.ProbeReady {
		t.Fatal("successor not in buffer")
	}
}

func TestMultipleSuccessorsMRU(t *testing.T) {
	e := newEnv()
	p := New(e, Config{Cores: 1, Successors: 2, BufferBlocks: 8})
	p.Record(0, 1, false)
	p.Record(0, 2, false) // 1 -> 2
	p.Record(0, 1, false) // 2 -> 1
	p.Record(0, 3, false) // 1 -> 3 (now MRU successor of 1)
	p.TriggerMiss(0, 1)
	if len(e.fetched) != 2 {
		t.Fatalf("fetched %v", e.fetched)
	}
	if e.fetched[0] != 3 {
		t.Fatalf("MRU successor should prefetch first: %v", e.fetched)
	}
}

func TestSuccessorListBounded(t *testing.T) {
	e := newEnv()
	p := New(e, Config{Cores: 1, Successors: 2, BufferBlocks: 8})
	for i := uint64(0); i < 10; i++ {
		p.Record(0, 1, false)
		p.Record(0, 100+i, false)
	}
	p.TriggerMiss(0, 1)
	if len(e.fetched) > 2 {
		t.Fatalf("entry grew past Successors: %v", e.fetched)
	}
}

func TestTableCapacityLRU(t *testing.T) {
	e := newEnv()
	p := New(e, Config{Cores: 1, Entries: 2, Successors: 1, BufferBlocks: 8})
	p.Record(0, 1, false)
	p.Record(0, 2, false) // entry 1->2
	p.Record(0, 3, false) // entry 2->3
	p.Record(0, 4, false) // entry 3->4, evicts 1
	if p.TableLen() != 2 {
		t.Fatalf("table len = %d", p.TableLen())
	}
	p.TriggerMiss(0, 1)
	if len(e.fetched) != 0 {
		t.Fatal("evicted entry prefetched")
	}
}

func TestPerCoreTraining(t *testing.T) {
	e := newEnv()
	p := New(e, Config{Cores: 2, Successors: 1, BufferBlocks: 8})
	p.Record(0, 1, false)
	p.Record(1, 50, false)
	p.Record(0, 2, false) // core 0: 1->2 (core 1's record must not interleave)
	p.TriggerMiss(0, 1)
	if len(e.fetched) != 1 || e.fetched[0] != 2 {
		t.Fatalf("cross-core interleaving corrupted training: %v", e.fetched)
	}
}

func TestOnChipFiltered(t *testing.T) {
	e := newEnv()
	e.onChip[200] = true
	p := New(e, Config{Cores: 1, Successors: 1, BufferBlocks: 8})
	p.Record(0, 100, false)
	p.Record(0, 200, false)
	p.TriggerMiss(0, 100)
	if len(e.fetched) != 0 {
		t.Fatal("cached successor fetched")
	}
	if p.Stats().FilteredOnChip != 1 {
		t.Fatal("filter not counted")
	}
}

func TestStatsAccounting(t *testing.T) {
	e := newEnv()
	p := New(e, Config{Cores: 1, Successors: 1, BufferBlocks: 8})
	p.Record(0, 1, false)
	p.Record(0, 2, false)
	p.TriggerMiss(0, 99) // miss
	p.TriggerMiss(0, 1)  // hit
	st := p.Stats()
	if st.Lookups != 2 || st.LookupHits != 1 || st.IssuedPrefetches != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if p.Name() != "markov" {
		t.Fatal("name")
	}
}
