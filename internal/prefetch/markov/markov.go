// Package markov implements the Markov prefetcher of Joseph & Grunwald
// (§2): the simplest pair-wise address-correlating design. A
// set-associative-style table maps each miss address to its few most
// recently observed successor misses; on a miss, the successors are
// prefetched.
//
// It serves as the background baseline that motivates temporal streaming:
// predicting one miss per lookup limits lookahead and memory-level
// parallelism, which the ablation benchmarks quantify against STMS and
// idealized TMS. Meta-data is modelled on chip (zero latency/traffic), so
// any coverage gap versus temporal streaming is purely organizational.
package markov

import (
	"stms/internal/event"
	"stms/internal/prefetch"
)

// Config sizes the Markov predictor.
type Config struct {
	Cores int
	// Entries caps the correlation table (global LRU); 0 = unbounded.
	Entries int
	// Successors is how many successor addresses each entry keeps (MRU
	// order); the original design used 2-4.
	Successors int
	// BufferBlocks is the per-core prefetch buffer capacity.
	BufferBlocks int
}

// DefaultConfig returns a 1M-entry, 2-successor Markov table.
func DefaultConfig(cores int) Config {
	return Config{Cores: cores, Entries: 1 << 20, Successors: 2, BufferBlocks: 32}
}

type node struct {
	key        uint64
	succ       []uint64
	prev, next int32
}

// Prefetcher is the Markov predictor; it implements prefetch.Temporal
// directly (no stream engine — pair-wise prediction has no streams).
type Prefetcher struct {
	cfg  Config
	env  prefetch.Env
	m    map[uint64]int32
	node []node
	free []int32
	head int32
	tail int32

	lastMiss []uint64 // per-core previous miss, for training
	haveLast []bool
	bufs     []*prefetch.Buffer
	seq      uint64 // prefetch-batch tag for buffer eviction fairness
	st       prefetch.EngineStats
}

var _ prefetch.Temporal = (*Prefetcher)(nil)

const nilN = int32(-1)

// New builds a Markov prefetcher over env.
func New(env prefetch.Env, cfg Config) *Prefetcher {
	if cfg.Cores <= 0 {
		cfg.Cores = 1
	}
	if cfg.Successors <= 0 {
		cfg.Successors = 2
	}
	if cfg.BufferBlocks <= 0 {
		cfg.BufferBlocks = 32
	}
	p := &Prefetcher{
		cfg:      cfg,
		env:      env,
		m:        make(map[uint64]int32),
		head:     nilN,
		tail:     nilN,
		lastMiss: make([]uint64, cfg.Cores),
		haveLast: make([]bool, cfg.Cores),
	}
	for i := 0; i < cfg.Cores; i++ {
		p.bufs = append(p.bufs, prefetch.NewBuffer(cfg.BufferBlocks))
	}
	return p
}

// Name identifies the prefetcher.
func (p *Prefetcher) Name() string { return "markov" }

// Stats returns counters (in EngineStats form for uniform reporting).
func (p *Prefetcher) Stats() *prefetch.EngineStats { return &p.st }

// TableLen returns live correlation entries.
func (p *Prefetcher) TableLen() int { return len(p.m) }

// Probe services a demand L1 miss from the prefetch buffer.
func (p *Prefetcher) Probe(core int, blk uint64, w event.Handler, wkind uint8, wa, wb uint64) prefetch.ProbeResult {
	res, _, _ := p.bufs[core].Probe(blk, w, wkind, wa, wb)
	switch res.State {
	case prefetch.ProbeReady:
		p.st.FullHits++
	case prefetch.ProbeInFlight:
		p.st.PartialHits++
	}
	return res
}

// TriggerMiss looks the miss address up and prefetches its recorded
// successors.
func (p *Prefetcher) TriggerMiss(core int, blk uint64) {
	p.st.Lookups++
	i, ok := p.m[blk]
	if !ok {
		return
	}
	p.st.LookupHits++
	p.touch(i)
	p.seq++
	buf := p.bufs[core]
	for _, s := range p.node[i].succ {
		if p.env.OnChip(core, s) || buf.Contains(s) {
			p.st.FilteredOnChip++
			continue
		}
		if !buf.HasSpaceFor(p.seq) || !buf.Insert(s, p.seq, 0) {
			break
		}
		p.st.IssuedPrefetches++
		addr := s
		c := core
		p.env.Fetch(c, addr, func(t uint64) {
			p.bufs[c].Arrived(addr, t)
		})
	}
}

// Record trains the pair-wise correlation: the previous miss's entry
// gains blk as its most recent successor.
func (p *Prefetcher) Record(core int, blk uint64, prefetchHit bool) {
	if p.haveLast[core] {
		p.train(p.lastMiss[core], blk)
	}
	p.lastMiss[core] = blk
	p.haveLast[core] = true
}

func (p *Prefetcher) train(key, succ uint64) {
	if i, ok := p.m[key]; ok {
		p.touch(i)
		n := &p.node[i]
		for j, s := range n.succ {
			if s == succ {
				// Move to MRU within the successor list.
				copy(n.succ[1:j+1], n.succ[:j])
				n.succ[0] = succ
				return
			}
		}
		if len(n.succ) < p.cfg.Successors {
			n.succ = append(n.succ, 0)
		}
		copy(n.succ[1:], n.succ[:len(n.succ)-1])
		n.succ[0] = succ
		return
	}
	if p.cfg.Entries > 0 && len(p.m) >= p.cfg.Entries {
		victim := p.tail
		p.detach(victim)
		delete(p.m, p.node[victim].key)
		p.free = append(p.free, victim)
	}
	var i int32
	if n := len(p.free); n > 0 {
		i = p.free[n-1]
		p.free = p.free[:n-1]
	} else {
		p.node = append(p.node, node{})
		i = int32(len(p.node) - 1)
	}
	p.node[i] = node{key: key, succ: append(make([]uint64, 0, p.cfg.Successors), succ), prev: nilN, next: nilN}
	p.m[key] = i
	p.pushFront(i)
}

func (p *Prefetcher) detach(i int32) {
	n := &p.node[i]
	if n.prev != nilN {
		p.node[n.prev].next = n.next
	} else {
		p.head = n.next
	}
	if n.next != nilN {
		p.node[n.next].prev = n.prev
	} else {
		p.tail = n.prev
	}
	n.prev, n.next = nilN, nilN
}

func (p *Prefetcher) pushFront(i int32) {
	n := &p.node[i]
	n.prev = nilN
	n.next = p.head
	if p.head != nilN {
		p.node[p.head].prev = i
	}
	p.head = i
	if p.tail == nilN {
		p.tail = i
	}
}

func (p *Prefetcher) touch(i int32) {
	p.detach(i)
	p.pushFront(i)
}
