// Package prefetch contains the machinery shared by every temporal
// (address-correlating) prefetcher in this repository: the per-core
// prefetch buffers, the stream-following engine, and the interfaces that
// separate stream following from meta-data storage.
//
// The paper's central experiment holds the stream-following policy fixed
// and varies only where predictor meta-data lives (magic on-chip storage
// for idealized TMS vs. hash-indexed main-memory tables for STMS). The
// Engine type implements that fixed policy once; Metadata implementations
// (internal/prefetch/ghb for the idealized predictor, internal/core for
// STMS, internal/prefetch/tse et al. for comparators) supply storage with
// their own latency and traffic behaviour through the Env interface.
package prefetch

import (
	"stms/internal/dram"
	"stms/internal/event"
)

// Env is the slice of the simulated system a prefetcher may touch: the
// clock, low-priority meta-data memory accesses, data-block fetches into
// the prefetch buffer, and an on-chip residency filter.
//
// The timed simulator backs this with the DRAM controller (meta-data and
// prefetch traffic at low priority, per §4.3); the functional driver backs
// it with zero-latency synchronous calls, which is exactly the paper's
// "idealized lookup".
//
// Completions come in two flavours: the closure forms (MetaRead, Fetch)
// are convenient for cold paths and comparators, while the handler forms
// (MetaReadH, FetchH) carry a typed (kind, a, b) payload through the
// memory system with no per-request allocation — the hot-path prefetchers
// use only those.
type Env interface {
	// Now returns the current time (cycles in timed mode, records in
	// functional mode).
	Now() uint64
	// MetaRead issues a one-block meta-data read of the given class; done
	// fires when the data is available. May complete synchronously. A nil
	// done is allowed when the requester does not need the completion.
	MetaRead(class dram.Class, done func(now uint64))
	// MetaReadH is MetaRead delivering through h.Handle(now, kind, a, b)
	// instead of a closure. May complete synchronously.
	MetaReadH(class dram.Class, h event.Handler, kind uint8, a, b uint64)
	// MetaWrite issues a one-block meta-data write of the given class.
	MetaWrite(class dram.Class)
	// Fetch brings a data block into core's prefetch buffer; done fires
	// when the block arrives. May complete synchronously.
	Fetch(core int, blk uint64, done func(now uint64))
	// FetchH is Fetch delivering through h.Handle(now, kind, a, b). May
	// complete synchronously.
	FetchH(core int, blk uint64, h event.Handler, kind uint8, a, b uint64)
	// OnChip reports whether blk is already cached on chip for core
	// (prefetch filter: such blocks are skipped, costing no bandwidth).
	OnChip(core int, blk uint64) bool
}

// Cursor is a position in a recorded miss sequence, owned and interpreted
// by a Metadata implementation. Core names the history the cursor walks;
// Pos is the absolute position of the next entry to deliver; ID carries
// backend-specific identity (e.g., a single-table entry key).
type Cursor struct {
	Core int
	Pos  uint64
	ID   uint64
}

// Metadata is the storage half of a temporal prefetcher: it records miss
// sequences and serves stream lookups. Implementations decide where the
// bits live and charge Env accordingly.
//
// Ownership contract (the allocation-free hot path depends on it): every
// pointer and slice a backend passes to a done callback — the lookup
// cursor, the address and position slices — is valid only for the
// duration of that call and is recycled afterwards. Callers copy what
// they keep; backends back these with pooled records and scratch buffers.
type Metadata interface {
	// Name identifies the backend in results tables.
	Name() string
	// Lookup finds the most recent recorded occurrence of blk and passes a
	// cursor to its successors (nil if unknown). done may run
	// synchronously (on-chip meta-data) or after simulated memory
	// round-trips (off-chip meta-data). The cursor is valid only during
	// the done call.
	Lookup(core int, blk uint64, done func(cur *Cursor))
	// ReadNext delivers up to max successor addresses following the
	// cursor. The cursor position is captured at call time and NOT
	// advanced (the history itself is read when the simulated memory
	// access completes): the caller advances its own cursor from the
	// delivered positions. If the read stops at a stream-end annotation,
	// marked is true and markAddr is the annotated address; the engine
	// pauses until the core explicitly requests markAddr (§4.5). A stale
	// or exhausted cursor delivers zero addresses. The slices are valid
	// only during the done call.
	ReadNext(cur *Cursor, max int, done func(addrs []uint64, positions []uint64, marked bool, markAddr uint64))
	// SkipMark advances the cursor past a stream-end annotation after the
	// annotated address was explicitly requested.
	SkipMark(cur *Cursor)
	// Record appends a retired correct-path off-chip miss or prefetched
	// hit to core's history (§4.2) and possibly updates the index.
	Record(core int, blk uint64, prefetchHit bool)
	// MarkEnd annotates position pos in core's history as the end of the
	// current stream (the entry following the last useful prefetch).
	MarkEnd(core int, pos uint64)
}

// WarmRecorder is implemented by meta-data backends (and the Temporal
// wrappers around them) that offer a traffic-free warming append: the
// same history append and sampled index update as Record — consuming the
// same random draws, so a warmed backend is distributionally identical to
// one that recorded the full prefix — but with no memory traffic charged
// and no bucket-buffer residency modelled. The sampling scheduler's
// meta-data warming pass uses it; backends without it are warmed through
// plain Record.
type WarmRecorder interface {
	RecordWarm(core int, blk uint64)
}

// ProbeState classifies a prefetch-buffer probe.
type ProbeState int

// Probe outcomes.
const (
	ProbeMiss     ProbeState = iota // block not prefetched
	ProbeReady                      // block waiting in the prefetch buffer
	ProbeInFlight                   // prefetch issued, data not yet arrived
)

// ProbeResult reports a prefetch-buffer probe: for ProbeInFlight, ReadyAt
// is when the block will arrive (the demand load completes then — a
// partially covered miss in Figure 9's terms).
type ProbeResult struct {
	State   ProbeState
	ReadyAt uint64
}

// Temporal is the interface the simulator drives: one call per demand L1
// miss (Probe), per uncovered L2 demand read miss (TriggerMiss), and per
// retired off-chip miss or prefetched hit (Record).
//
// For ProbeInFlight results the waiter fires when the block arrives:
// w.Handle(readyAt, wkind, wa, wb) with the payload passed at probe time.
// A nil w drops the notification (the functional driver never needs it).
// The typed waiter replaces a per-probe closure so the simulator's
// partially-covered-miss path allocates nothing.
type Temporal interface {
	Name() string
	Probe(core int, blk uint64, w event.Handler, wkind uint8, wa, wb uint64) ProbeResult
	TriggerMiss(core int, blk uint64)
	Record(core int, blk uint64, prefetchHit bool)
	Stats() *EngineStats
}

// Nop is a Temporal that does nothing (the baseline system).
type Nop struct{ stats EngineStats }

// Name returns "none".
func (*Nop) Name() string { return "none" }

// Probe always misses.
func (*Nop) Probe(int, uint64, event.Handler, uint8, uint64, uint64) ProbeResult {
	return ProbeResult{State: ProbeMiss}
}

// TriggerMiss does nothing.
func (*Nop) TriggerMiss(int, uint64) {}

// Record does nothing.
func (*Nop) Record(int, uint64, bool) {}

// Stats returns zeroed statistics.
func (n *Nop) Stats() *EngineStats { return &n.stats }
