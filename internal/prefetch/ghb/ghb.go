// Package ghb implements the idealized temporal memory streaming
// predictor: a Global-History-Buffer-organized (split index + history)
// address-correlating prefetcher whose meta-data lives in "magic" on-chip
// storage with zero lookup latency and zero memory traffic (§5.2).
//
// The same implementation, with its capacity knobs, also provides the
// paper's meta-data sizing sweeps:
//
//   - Figure 1 (left): index capped at N entries with global LRU
//     replacement, history unbounded;
//   - Figure 5 (left): history capped, index unbounded;
//   - Figure 6: depth caps are applied by the stream engine, and
//     stream-length statistics fall out of engine bookkeeping.
package ghb

import (
	"stms/internal/prefetch"
)

// Config sizes the idealized predictor's meta-data.
type Config struct {
	Cores int
	// HistoryEntries is the per-core history capacity in entries. Use
	// Unbounded for the idealized predictor.
	HistoryEntries uint64
	// IndexEntries caps the index at a total entry count with global LRU
	// replacement; 0 means unbounded (perfect index).
	IndexEntries uint64
}

// Unbounded is a history capacity that no experiment in this repository
// can fill; it stands in for the paper's "impractically large storage".
const Unbounded = uint64(1) << 34

// DefaultConfig returns the idealized predictor of §5.2.
func DefaultConfig(cores int) Config {
	return Config{Cores: cores, HistoryEntries: Unbounded}
}

// packed index value: owner core in the top byte, position below.
func pack(core int, pos uint64) uint64 { return uint64(core)<<56 | pos }
func unpack(v uint64) (core int, pos uint64) {
	return int(v >> 56), v & (1<<56 - 1)
}

// Meta is the idealized Metadata backend. Every operation is synchronous
// and traffic-free.
type Meta struct {
	cfg  Config
	hist []*prefetch.History
	idx  *lruIndex

	// scratch backs the transient results of LookupSync and ReadNextSync.
	// Both are synchronous — the caller consumes the result before any
	// other operation can run — so one set per Meta suffices and the hot
	// path allocates nothing. Asynchronous wrappers (TSE) must copy.
	scratchCur  prefetch.Cursor
	scratchLine prefetch.Line

	// Stats.
	Records     uint64
	IndexStale  uint64 // lookups that found a wrapped/overwritten pointer
	IndexHits   uint64
	IndexMisses uint64
}

var _ prefetch.Metadata = (*Meta)(nil)

// New builds the idealized backend.
func New(cfg Config) *Meta {
	if cfg.Cores <= 0 {
		cfg.Cores = 1
	}
	if cfg.HistoryEntries == 0 {
		cfg.HistoryEntries = Unbounded
	}
	m := &Meta{cfg: cfg, idx: newLRUIndex(cfg.IndexEntries)}
	for i := 0; i < cfg.Cores; i++ {
		m.hist = append(m.hist, prefetch.NewHistory(cfg.HistoryEntries))
	}
	return m
}

// Name identifies the backend.
func (m *Meta) Name() string { return "ideal-tms" }

// History exposes a core's history buffer (tests, harness).
func (m *Meta) History(core int) *prefetch.History { return m.hist[core] }

// IndexLen returns the live index entry count.
func (m *Meta) IndexLen() int { return m.idx.len() }

// LookupSync resolves a lookup immediately (zero-latency on-chip
// meta-data). It returns nil when blk is unknown or its pointer went
// stale. Shared with backends that reuse ideal storage but charge their
// own traffic (e.g., TSE). The cursor points into per-Meta scratch: it is
// valid until the next LookupSync, and callers that hold it across
// simulated time must copy it.
func (m *Meta) LookupSync(core int, blk uint64) *prefetch.Cursor {
	v, ok := m.idx.get(blk)
	if !ok {
		m.IndexMisses++
		return nil
	}
	owner, pos := unpack(v)
	got, _, live := m.hist[owner].Get(pos)
	if !live || got != blk {
		m.IndexStale++
		m.idx.remove(blk)
		return nil
	}
	m.IndexHits++
	m.scratchCur = prefetch.Cursor{Core: owner, Pos: pos + 1}
	return &m.scratchCur
}

// Lookup implements prefetch.Metadata synchronously.
func (m *Meta) Lookup(core int, blk uint64, done func(*prefetch.Cursor)) {
	done(m.LookupSync(core, blk))
}

// ReadNextSync is the synchronous line read shared with reusing backends.
// Per the Metadata contract the cursor is not advanced and the returned
// slices (per-Meta scratch) are valid only until the next read.
func (m *Meta) ReadNextSync(cur *prefetch.Cursor, max int) (addrs, positions []uint64, marked bool, markAddr uint64) {
	h := m.hist[cur.Core]
	n, marked, markAddr := h.ReadLine(cur.Pos, max, &m.scratchLine)
	return m.scratchLine.Addrs[:n], m.scratchLine.Positions[:n], marked, markAddr
}

// ReadNext implements prefetch.Metadata synchronously.
func (m *Meta) ReadNext(cur *prefetch.Cursor, max int, done func(addrs, positions []uint64, marked bool, markAddr uint64)) {
	done(m.ReadNextSync(cur, max))
}

// SkipMark advances the cursor past the annotated entry.
func (m *Meta) SkipMark(cur *prefetch.Cursor) { cur.Pos++ }

// Record appends to the owning core's history and updates the index.
func (m *Meta) Record(core int, blk uint64, prefetchHit bool) {
	m.Records++
	pos := m.hist[core].Append(blk)
	m.idx.put(blk, pack(core, pos))
}

// MarkEnd annotates the entry at pos in core's history.
func (m *Meta) MarkEnd(core int, pos uint64) {
	m.hist[core].Mark(pos)
}
