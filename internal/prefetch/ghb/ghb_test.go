package ghb

import (
	"testing"

	"stms/internal/prefetch"
)

func record(m *Meta, core int, blks ...uint64) {
	for _, b := range blks {
		m.Record(core, b, false)
	}
}

// lookup resolves blk and returns a caller-owned copy of the cursor (the
// backend's cursor is transient scratch per the Metadata contract).
func lookup(t *testing.T, m *Meta, core int, blk uint64) *prefetch.Cursor {
	t.Helper()
	var got *prefetch.Cursor
	m.Lookup(core, blk, func(c *prefetch.Cursor) {
		if c != nil {
			cp := *c
			got = &cp
		}
	})
	return got
}

// readNext is ReadNext plus the caller-side cursor advance the engine
// performs (the backend no longer mutates the cursor).
func readNext(m *Meta, cur *prefetch.Cursor, max int, done func(a, p []uint64, mk bool, ma uint64)) {
	m.ReadNext(cur, max, func(a, p []uint64, mk bool, ma uint64) {
		if n := len(p); n > 0 {
			cur.Pos = p[n-1] + 1
		}
		done(a, p, mk, ma)
	})
}

func TestLookupFindsMostRecent(t *testing.T) {
	m := New(Config{Cores: 1})
	record(m, 0, 1, 2, 3, 1, 5, 6)
	cur := lookup(t, m, 0, 1)
	if cur == nil {
		t.Fatal("lookup missed")
	}
	// Most recent occurrence of 1 is at position 3; cursor points after.
	if cur.Pos != 4 {
		t.Fatalf("cursor pos = %d, want 4", cur.Pos)
	}
	var addrs []uint64
	m.ReadNext(cur, 12, func(a, p []uint64, marked bool, markAddr uint64) { addrs = a })
	if len(addrs) != 2 || addrs[0] != 5 || addrs[1] != 6 {
		t.Fatalf("successors = %v", addrs)
	}
}

func TestLookupUnknown(t *testing.T) {
	m := New(Config{Cores: 1})
	record(m, 0, 1, 2)
	if cur := lookup(t, m, 0, 99); cur != nil {
		t.Fatal("unknown block found")
	}
	if m.IndexMisses == 0 {
		t.Fatal("miss not counted")
	}
}

func TestCrossCoreLookup(t *testing.T) {
	// Core 1 can find a stream recorded by core 0 (shared index, §4.2).
	m := New(Config{Cores: 2})
	record(m, 0, 10, 11, 12)
	cur := lookup(t, m, 1, 10)
	if cur == nil {
		t.Fatal("cross-core lookup missed")
	}
	if cur.Core != 0 {
		t.Fatalf("cursor core = %d, want 0 (the recording core)", cur.Core)
	}
}

func TestStaleIndexAfterWrap(t *testing.T) {
	m := New(Config{Cores: 1, HistoryEntries: 8})
	record(m, 0, 42)
	for i := uint64(100); i < 120; i++ {
		record(m, 0, i)
	}
	if cur := lookup(t, m, 0, 42); cur != nil {
		t.Fatal("stale pointer should miss")
	}
	if m.IndexStale == 0 {
		t.Fatal("staleness not counted")
	}
	// The stale entry is removed: a second lookup is a plain miss.
	before := m.IndexStale
	lookup(t, m, 0, 42)
	if m.IndexStale != before {
		t.Fatal("stale entry was not removed")
	}
}

func TestIndexLRUCap(t *testing.T) {
	m := New(Config{Cores: 1, IndexEntries: 4})
	record(m, 0, 1, 2, 3, 4)
	if m.IndexLen() != 4 {
		t.Fatalf("index len = %d", m.IndexLen())
	}
	record(m, 0, 5) // evicts 1 (least recently recorded)
	if m.IndexLen() != 4 {
		t.Fatalf("index len = %d after eviction", m.IndexLen())
	}
	if cur := lookup(t, m, 0, 1); cur != nil {
		t.Fatal("evicted entry still found")
	}
	if cur := lookup(t, m, 0, 2); cur == nil {
		t.Fatal("recent entry lost")
	}
}

func TestIndexUpdateRefreshesLRU(t *testing.T) {
	m := New(Config{Cores: 1, IndexEntries: 3})
	record(m, 0, 1, 2, 3)
	record(m, 0, 1) // refresh 1
	record(m, 0, 4) // evicts 2
	if cur := lookup(t, m, 0, 1); cur == nil {
		t.Fatal("refreshed entry evicted")
	}
	if cur := lookup(t, m, 0, 2); cur != nil {
		t.Fatal("LRU entry not evicted")
	}
}

func TestMarkEndAndSkip(t *testing.T) {
	m := New(Config{Cores: 1})
	record(m, 0, 1, 2, 3, 4)
	m.MarkEnd(0, 2)
	cur := lookup(t, m, 0, 1)
	var addrs []uint64
	var marked bool
	var markAddr uint64
	readNext(m, cur, 12, func(a, p []uint64, mk bool, ma uint64) {
		addrs, marked, markAddr = a, mk, ma
	})
	if len(addrs) != 1 || addrs[0] != 2 {
		t.Fatalf("addrs = %v", addrs)
	}
	if !marked || markAddr != 3 {
		t.Fatalf("marked=%v addr=%d", marked, markAddr)
	}
	m.SkipMark(cur)
	readNext(m, cur, 12, func(a, p []uint64, mk bool, ma uint64) { addrs = a })
	if len(addrs) != 1 || addrs[0] != 4 {
		t.Fatalf("after skip: %v", addrs)
	}
}

func TestReadNextAdvancesCursor(t *testing.T) {
	m := New(Config{Cores: 1})
	blks := make([]uint64, 30)
	for i := range blks {
		blks[i] = uint64(100 + i)
	}
	record(m, 0, blks...)
	cur := lookup(t, m, 0, 100)
	var total []uint64
	for i := 0; i < 5; i++ {
		readNext(m, cur, 12, func(a, p []uint64, mk bool, ma uint64) {
			total = append(total, a...)
		})
	}
	if len(total) != 29 {
		t.Fatalf("read %d successors, want 29", len(total))
	}
	for i, b := range total {
		if b != uint64(101+i) {
			t.Fatalf("successor %d = %d", i, b)
		}
	}
}

func TestPackUnpack(t *testing.T) {
	for _, core := range []int{0, 1, 3, 7} {
		for _, pos := range []uint64{0, 1, 1 << 40, 1<<56 - 1} {
			c, p := unpack(pack(core, pos))
			if c != core || p != pos {
				t.Fatalf("pack/unpack(%d,%d) = (%d,%d)", core, pos, c, p)
			}
		}
	}
}

func TestDefaultConfigUnbounded(t *testing.T) {
	m := New(DefaultConfig(4))
	// A million records must not wrap.
	for i := uint64(0); i < 1_000_000; i++ {
		m.Record(int(i%4), i, false)
	}
	if cur := lookup(t, m, 0, 0); cur == nil {
		t.Fatal("first record wrapped out of an unbounded history")
	}
}
