package ghb

import "stms/internal/mem"

// lruIndex is the idealized correlation index: a map from miss address to
// packed {core, history position}, optionally capacity-bounded with global
// LRU replacement (Figure 1 left sweeps this capacity).
//
// The LRU list is intrusive over slice-backed nodes so the structure stays
// allocation-friendly at millions of entries; the address map is the
// open-addressed mem.BlockMap — per-miss get/put is the idealized
// variant's hottest path, and the builtin map's hashing and bucket
// machinery dominated its profile.
type lruIndex struct {
	cap   uint64 // 0 = unbounded
	m     *mem.BlockMap
	nodes []lruNode
	free  []int32
	head  int32 // most recent
	tail  int32 // least recent

	evictions uint64
}

type lruNode struct {
	key        uint64
	val        uint64
	prev, next int32
}

const nilNode = int32(-1)

func newLRUIndex(capacity uint64) *lruIndex {
	return &lruIndex{cap: capacity, m: mem.NewBlockMap(int(min(capacity, 1<<16))), head: nilNode, tail: nilNode}
}

func (l *lruIndex) len() int { return l.m.Len() }

func (l *lruIndex) detach(i int32) {
	n := &l.nodes[i]
	if n.prev != nilNode {
		l.nodes[n.prev].next = n.next
	} else {
		l.head = n.next
	}
	if n.next != nilNode {
		l.nodes[n.next].prev = n.prev
	} else {
		l.tail = n.prev
	}
	n.prev, n.next = nilNode, nilNode
}

func (l *lruIndex) pushFront(i int32) {
	n := &l.nodes[i]
	n.prev = nilNode
	n.next = l.head
	if l.head != nilNode {
		l.nodes[l.head].prev = i
	}
	l.head = i
	if l.tail == nilNode {
		l.tail = i
	}
}

// get returns the value for key without refreshing recency (a lookup does
// not rewrite the idealized table; recency tracks recording, matching the
// "most recent occurrence" semantics of §5.3).
func (l *lruIndex) get(key uint64) (uint64, bool) {
	i, ok := l.m.Get(key)
	if !ok {
		return 0, false
	}
	return l.nodes[i].val, true
}

// put inserts or updates key, making it most recent, evicting the least
// recent entry if over capacity.
func (l *lruIndex) put(key, val uint64) {
	if i, ok := l.m.Get(key); ok {
		l.nodes[i].val = val
		l.detach(i)
		l.pushFront(i)
		return
	}
	if l.cap > 0 && uint64(l.m.Len()) >= l.cap {
		victim := l.tail
		l.detach(victim)
		l.m.Delete(l.nodes[victim].key)
		l.free = append(l.free, victim)
		l.evictions++
	}
	var i int32
	if n := len(l.free); n > 0 {
		i = l.free[n-1]
		l.free = l.free[:n-1]
	} else {
		l.nodes = append(l.nodes, lruNode{})
		i = int32(len(l.nodes) - 1)
	}
	l.nodes[i] = lruNode{key: key, val: val, prev: nilNode, next: nilNode}
	l.m.Put(key, i)
	l.pushFront(i)
}

func (l *lruIndex) remove(key uint64) {
	i, ok := l.m.Get(key)
	if !ok {
		return
	}
	l.detach(i)
	l.m.Delete(key)
	l.free = append(l.free, i)
}
