package ghb

import (
	"fmt"

	"stms/internal/ckpt"
)

// snapshot serializes the LRU index in recency order (LRU first), so
// restore's pushFront sequence reproduces the exact list.
func (l *lruIndex) snapshot(enc *ckpt.Encoder) {
	enc.Section("ghb.lruIndex")
	enc.U64(l.cap)
	enc.Int(l.m.Len())
	for i := l.tail; i != nilNode; i = l.nodes[i].prev {
		enc.U64(l.nodes[i].key)
		enc.U64(l.nodes[i].val)
	}
	enc.U64(l.evictions)
}

func (l *lruIndex) restore(dec *ckpt.Decoder) error {
	dec.Section("ghb.lruIndex")
	capacity := dec.U64()
	count := dec.Int()
	if err := dec.Err(); err != nil {
		return err
	}
	if capacity != l.cap {
		return fmt.Errorf("ghb: index snapshot capacity %d does not match %d", capacity, l.cap)
	}
	if l.m.Len() != 0 {
		return fmt.Errorf("ghb: restore into non-empty index")
	}
	for k := 0; k < count; k++ {
		key := dec.U64()
		val := dec.U64()
		if err := dec.Err(); err != nil {
			return err
		}
		l.nodes = append(l.nodes, lruNode{key: key, val: val, prev: nilNode, next: nilNode})
		i := int32(len(l.nodes) - 1)
		l.m.Put(key, i)
		l.pushFront(i)
	}
	l.evictions = dec.U64()
	return dec.Err()
}

// Snapshot serializes the idealized backend: every core's history, the
// LRU index, and the counters. The backend is fully synchronous, so
// there are no in-flight operations to capture.
func (m *Meta) Snapshot(enc *ckpt.Encoder) error {
	enc.Section("ghb.Meta")
	enc.Int(len(m.hist))
	for _, h := range m.hist {
		h.Snapshot(enc)
	}
	m.idx.snapshot(enc)
	enc.U64(m.Records)
	enc.U64(m.IndexStale)
	enc.U64(m.IndexHits)
	enc.U64(m.IndexMisses)
	return nil
}

// Restore rebuilds the backend from a Snapshot. The Meta must be
// freshly constructed with the same configuration.
func (m *Meta) Restore(dec *ckpt.Decoder) error {
	dec.Section("ghb.Meta")
	nh := dec.Int()
	if err := dec.Err(); err != nil {
		return err
	}
	if nh != len(m.hist) {
		return fmt.Errorf("ghb: snapshot has %d histories, want %d", nh, len(m.hist))
	}
	for _, h := range m.hist {
		if err := h.Restore(dec); err != nil {
			return err
		}
	}
	if err := m.idx.restore(dec); err != nil {
		return err
	}
	m.Records = dec.U64()
	m.IndexStale = dec.U64()
	m.IndexHits = dec.U64()
	m.IndexMisses = dec.U64()
	return dec.Err()
}
