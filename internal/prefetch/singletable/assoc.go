package singletable

// assocTable is the correlation table: address → successor list, with
// global LRU replacement under a capacity bound. It abstracts the
// set-associative table of EBCP/ULMT; associativity conflicts are folded
// into the capacity bound, which is what the paper's storage argument
// (Fig. 1 left) turns on.
type assocTable struct {
	cap   int
	m     map[uint64]int32
	nodes []atNode
	free  []int32
	head  int32
	tail  int32

	evictions uint64
}

type atNode struct {
	key        uint64
	succ       []uint64
	prev, next int32
}

const atNil = int32(-1)

func newAssocTable(capacity int) *assocTable {
	return &assocTable{cap: capacity, m: make(map[uint64]int32), head: atNil, tail: atNil}
}

func (t *assocTable) len() int { return len(t.m) }

func (t *assocTable) detach(i int32) {
	n := &t.nodes[i]
	if n.prev != atNil {
		t.nodes[n.prev].next = n.next
	} else {
		t.head = n.next
	}
	if n.next != atNil {
		t.nodes[n.next].prev = n.prev
	} else {
		t.tail = n.prev
	}
	n.prev, n.next = atNil, atNil
}

func (t *assocTable) pushFront(i int32) {
	n := &t.nodes[i]
	n.prev = atNil
	n.next = t.head
	if t.head != atNil {
		t.nodes[t.head].prev = i
	}
	t.head = i
	if t.tail == atNil {
		t.tail = i
	}
}

// get returns the successor list for key, refreshing its recency.
func (t *assocTable) get(key uint64) ([]uint64, bool) {
	i, ok := t.m[key]
	if !ok {
		return nil, false
	}
	t.detach(i)
	t.pushFront(i)
	return t.nodes[i].succ, true
}

// put installs or replaces key's successor list (the whole entry is
// rewritten, which is why updates cost a full read-modify-write).
func (t *assocTable) put(key uint64, succ []uint64) {
	if i, ok := t.m[key]; ok {
		t.nodes[i].succ = append(t.nodes[i].succ[:0], succ...)
		t.detach(i)
		t.pushFront(i)
		return
	}
	if t.cap > 0 && len(t.m) >= t.cap {
		victim := t.tail
		t.detach(victim)
		delete(t.m, t.nodes[victim].key)
		t.free = append(t.free, victim)
		t.evictions++
	}
	var i int32
	if n := len(t.free); n > 0 {
		i = t.free[n-1]
		t.free = t.free[:n-1]
	} else {
		t.nodes = append(t.nodes, atNode{})
		i = int32(len(t.nodes) - 1)
	}
	t.nodes[i] = atNode{key: key, succ: append([]uint64(nil), succ...), prev: atNil, next: atNil}
	t.m[key] = i
	t.pushFront(i)
}
