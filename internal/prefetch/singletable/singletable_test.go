package singletable

import (
	"testing"

	"stms/internal/dram"
	"stms/internal/event"
	"stms/internal/prefetch"
)

type env struct {
	fetched []uint64
	reads   map[dram.Class]int
	writes  map[dram.Class]int
}

func newEnv() *env {
	return &env{reads: map[dram.Class]int{}, writes: map[dram.Class]int{}}
}

func (e *env) Now() uint64 { return 0 }

func (e *env) MetaRead(c dram.Class, done func(uint64)) {
	e.reads[c]++
	if done != nil {
		done(0)
	}
}

func (e *env) MetaReadH(c dram.Class, h event.Handler, kind uint8, a, b uint64) {
	e.reads[c]++
	h.Handle(0, kind, a, b)
}

func (e *env) MetaWrite(c dram.Class) { e.writes[c]++ }

func (e *env) OnChip(int, uint64) bool { return false }

func (e *env) Fetch(core int, blk uint64, done func(uint64)) {
	e.fetched = append(e.fetched, blk)
	if done != nil {
		done(0)
	}
}

func (e *env) FetchH(core int, blk uint64, h event.Handler, kind uint8, a, b uint64) {
	e.fetched = append(e.fetched, blk)
	h.Handle(0, kind, a, b)
}

func cfg() Config {
	return Config{
		Name: "test", Cores: 1, Entries: 1024, Depth: 4, Skip: 0,
		LookupReads: 1, UpdateReads: 2, UpdateWrites: 1,
		BufferBlocks: 16,
	}
}

func train(p *Prefetcher, blks ...uint64) {
	for _, b := range blks {
		p.Record(0, b, false)
	}
}

func TestEntryCollectsDepthSuccessors(t *testing.T) {
	e := newEnv()
	p := New(e, cfg())
	train(p, 1, 2, 3, 4, 5) // entry for 1 = [2,3,4,5]
	p.TriggerMiss(0, 1)
	if len(e.fetched) != 4 {
		t.Fatalf("fetched = %v", e.fetched)
	}
	for i, want := range []uint64{2, 3, 4, 5} {
		if e.fetched[i] != want {
			t.Fatalf("fetched[%d] = %d, want %d", i, e.fetched[i], want)
		}
	}
}

func TestDepthLimitsPrefetch(t *testing.T) {
	e := newEnv()
	p := New(e, cfg())
	train(p, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	p.TriggerMiss(0, 1)
	if len(e.fetched) != 4 {
		t.Fatalf("single-table depth must cap prefetches: %v", e.fetched)
	}
}

func TestSkipDropsLeadingSuccessors(t *testing.T) {
	e := newEnv()
	c := cfg()
	c.Skip = 2
	p := New(e, c)
	train(p, 1, 2, 3, 4, 5)
	p.TriggerMiss(0, 1)
	if len(e.fetched) != 2 || e.fetched[0] != 4 {
		t.Fatalf("epoch skip wrong: %v", e.fetched)
	}
}

func TestUpdateTrafficThreeAccesses(t *testing.T) {
	e := newEnv()
	p := New(e, cfg())
	train(p, 1, 2, 3, 4, 5) // one committed update (entry for 1)
	if p.UpdatesCommitted != 1 {
		t.Fatalf("updates = %d", p.UpdatesCommitted)
	}
	if e.reads[dram.IndexUpdateRd] != 2 || e.writes[dram.IndexUpdateWr] != 1 {
		t.Fatalf("update traffic = %d reads, %d writes",
			e.reads[dram.IndexUpdateRd], e.writes[dram.IndexUpdateWr])
	}
}

func TestLookupTrafficPerTrigger(t *testing.T) {
	e := newEnv()
	p := New(e, cfg())
	for i := uint64(0); i < 10; i++ {
		p.TriggerMiss(0, 1000+i)
	}
	if e.reads[dram.IndexLookup] != 10 {
		t.Fatalf("lookup reads = %d", e.reads[dram.IndexLookup])
	}
}

func TestEpochLookupGating(t *testing.T) {
	e := &deferredEnv{env: newEnv()}
	c := cfg()
	c.EpochLookup = true
	p := New(e, c)
	train(p, 1, 2, 3, 4, 5)
	p.TriggerMiss(0, 1) // epoch start: looks up, prefetches stay in flight
	lookups := p.Stats().Lookups
	if lookups == 0 {
		t.Fatal("epoch start did not look up")
	}
	p.TriggerMiss(0, 99) // mid-epoch (prefetches in flight): gated
	if p.Stats().Lookups != lookups {
		t.Fatal("mid-epoch lookup not gated")
	}
	// Prefetches land: the next miss opens a new epoch.
	e.completeAll()
	p.TriggerMiss(0, 77)
	if p.Stats().Lookups != lookups+1 {
		t.Fatal("new epoch did not look up")
	}
}

// deferredEnv holds fetch completions until completeAll, modelling
// in-flight prefetches.
type deferredEnv struct {
	env     *env
	pending []func(uint64)
}

func (d *deferredEnv) Now() uint64                              { return 0 }
func (d *deferredEnv) MetaRead(c dram.Class, done func(uint64)) { d.env.MetaRead(c, done) }

func (d *deferredEnv) MetaReadH(c dram.Class, h event.Handler, kind uint8, a, b uint64) {
	d.env.MetaReadH(c, h, kind, a, b)
}
func (d *deferredEnv) MetaWrite(c dram.Class)  { d.env.MetaWrite(c) }
func (d *deferredEnv) OnChip(int, uint64) bool { return false }

func (d *deferredEnv) Fetch(core int, blk uint64, done func(uint64)) {
	d.env.fetched = append(d.env.fetched, blk)
	if done != nil {
		d.pending = append(d.pending, done)
	}
}

func (d *deferredEnv) FetchH(core int, blk uint64, h event.Handler, kind uint8, a, b uint64) {
	d.env.fetched = append(d.env.fetched, blk)
	d.pending = append(d.pending, func(t uint64) { h.Handle(t, kind, a, b) })
}

func (d *deferredEnv) completeAll() {
	pend := d.pending
	d.pending = nil
	for _, f := range pend {
		f(0)
	}
}

func TestPrefetchHitsExtendEntriesButDoNotOpen(t *testing.T) {
	e := newEnv()
	p := New(e, cfg())
	p.Record(0, 1, false)
	p.Record(0, 2, true) // prefetched hit feeds 1's entry
	p.Record(0, 3, true)
	p.Record(0, 4, true)
	p.Record(0, 5, true)
	p.TriggerMiss(0, 2)
	if len(e.fetched) != 0 {
		t.Fatal("prefetched hit opened its own entry")
	}
	p.TriggerMiss(0, 1)
	if len(e.fetched) != 4 {
		t.Fatalf("entry fed by prefetched hits wrong: %v", e.fetched)
	}
}

func TestProbeCounting(t *testing.T) {
	e := newEnv()
	p := New(e, cfg())
	train(p, 1, 2, 3, 4, 5)
	p.TriggerMiss(0, 1)
	if res := p.Probe(0, 2, nil, 0, 0, 0); res.State != prefetch.ProbeReady {
		t.Fatal("expected ready")
	}
	if p.Stats().FullHits != 1 {
		t.Fatalf("full hits = %d", p.Stats().FullHits)
	}
	if res := p.Probe(0, 999, nil, 0, 0, 0); res.State != prefetch.ProbeMiss {
		t.Fatal("expected miss")
	}
}

func TestTableLRUEviction(t *testing.T) {
	e := newEnv()
	c := cfg()
	c.Entries = 2
	p := New(e, c)
	train(p, 1, 2, 3, 4, 5)  // entry 1
	train(p, 10, 2, 3, 4, 5) // entry 10 (and more from the tail)
	train(p, 20, 2, 3, 4, 5) // entry 20 ... capacity 2 keeps most recent
	if p.TableLen() > 2 {
		t.Fatalf("table len = %d", p.TableLen())
	}
	p.TriggerMiss(0, 1)
	if len(e.fetched) != 0 {
		t.Fatal("evicted entry still prefetches")
	}
}
