// Package singletable implements the single-table address-correlating
// prefetcher family used as comparators: one set-associative main-memory
// correlation table whose entries map a miss address to a short, fixed
// list of successor addresses (§2, §3). EBCP and ULMT are configurations
// of this design (internal/prefetch/ebcp, internal/prefetch/ulmt).
//
// The defining limitation the paper targets: stream length is fixed by the
// entry format, so long temporal streams fragment into depth-sized pieces,
// each costing a fresh lookup (Fig. 6 right), and every update rewrites a
// whole entry (three memory accesses, Fig. 1 right).
package singletable

import (
	"stms/internal/dram"
	"stms/internal/event"
	"stms/internal/prefetch"
)

// Config parameterizes the comparator.
type Config struct {
	Name  string
	Cores int
	// Entries caps the correlation table with global LRU replacement.
	Entries int
	// Depth is successors stored per entry (3–6 in published designs).
	Depth int
	// Skip drops the first Skip successors at prefetch time (EBCP's
	// epoch-skip: those would return during the lookup anyway).
	Skip int
	// LookupReads is memory reads per lookup (1 for both EBCP and ULMT).
	LookupReads int
	// UpdateReads and UpdateWrites are charged per committed entry
	// update ("three memory accesses per update": 2 reads + 1 write).
	UpdateReads  int
	UpdateWrites int
	// EpochLookup makes lookups fire only when no prefetches are in
	// flight for the core (EBCP's off-chip miss epochs) instead of on
	// every trigger miss (ULMT).
	EpochLookup bool
	// BufferBlocks is the per-core prefetch buffer capacity.
	BufferBlocks int
}

type pending struct {
	key  uint64
	succ []uint64
}

// Prefetcher is the single-table comparator; implements prefetch.Temporal.
type Prefetcher struct {
	cfg Config
	env prefetch.Env

	table    *assocTable
	pendings [][]pending // per core: entries still collecting successors
	bufs     []*prefetch.Buffer
	inflight []int // per-core prefetches in flight (epoch detection)
	lookBusy []bool
	seq      uint64 // prefetch-batch tag for buffer eviction fairness

	st prefetch.EngineStats

	// UpdatesCommitted counts completed entry updates (each charged
	// UpdateReads+UpdateWrites accesses).
	UpdatesCommitted uint64
}

var _ prefetch.Temporal = (*Prefetcher)(nil)

// New builds the comparator over env.
func New(env prefetch.Env, cfg Config) *Prefetcher {
	if cfg.Cores <= 0 {
		cfg.Cores = 1
	}
	if cfg.Depth <= 0 {
		cfg.Depth = 4
	}
	if cfg.LookupReads <= 0 {
		cfg.LookupReads = 1
	}
	if cfg.BufferBlocks <= 0 {
		cfg.BufferBlocks = 32
	}
	p := &Prefetcher{
		cfg:      cfg,
		env:      env,
		table:    newAssocTable(cfg.Entries),
		pendings: make([][]pending, cfg.Cores),
		inflight: make([]int, cfg.Cores),
		lookBusy: make([]bool, cfg.Cores),
	}
	for i := 0; i < cfg.Cores; i++ {
		p.bufs = append(p.bufs, prefetch.NewBuffer(cfg.BufferBlocks))
	}
	return p
}

// Name identifies the comparator ("ebcp", "ulmt").
func (p *Prefetcher) Name() string { return p.cfg.Name }

// Stats returns engine-style counters.
func (p *Prefetcher) Stats() *prefetch.EngineStats { return &p.st }

// TableLen returns live correlation entries.
func (p *Prefetcher) TableLen() int { return p.table.len() }

// Probe services a demand L1 miss from the prefetch buffer.
func (p *Prefetcher) Probe(core int, blk uint64, w event.Handler, wkind uint8, wa, wb uint64) prefetch.ProbeResult {
	res, _, _ := p.bufs[core].Probe(blk, w, wkind, wa, wb)
	switch res.State {
	case prefetch.ProbeReady:
		p.st.FullHits++
	case prefetch.ProbeInFlight:
		p.st.PartialHits++
	}
	return res
}

// TriggerMiss performs the (possibly epoch-gated) table lookup and
// prefetches the entry's successors beyond the skip distance.
func (p *Prefetcher) TriggerMiss(core int, blk uint64) {
	// EBCP epochs: a lookup fires when no prefetches are currently in
	// flight for this core — approximating "outstanding off-chip misses
	// transitioned from zero to one" (§3).
	if p.cfg.EpochLookup && p.inflight[core] > 0 {
		return // mid-epoch
	}
	if p.lookBusy[core] {
		return
	}
	p.lookBusy[core] = true
	p.st.Lookups++
	p.env.MetaRead(dram.IndexLookup, func(uint64) {
		p.lookBusy[core] = false
		succ, ok := p.table.get(blk)
		if !ok {
			return
		}
		p.st.LookupHits++
		start := p.cfg.Skip
		if start > len(succ) {
			start = len(succ)
		}
		p.seq++
		buf := p.bufs[core]
		for _, s := range succ[start:] {
			if p.env.OnChip(core, s) || buf.Contains(s) {
				p.st.FilteredOnChip++
				continue
			}
			if !buf.HasSpaceFor(p.seq) || !buf.Insert(s, p.seq, 0) {
				break
			}
			p.st.IssuedPrefetches++
			p.inflight[core]++
			addr := s
			c := core
			p.env.Fetch(c, addr, func(t uint64) {
				p.inflight[c]--
				p.bufs[c].Arrived(addr, t)
			})
		}
	})
}

// Record trains the table: every recorded address opens a pending entry
// that collects the next Depth addresses; full entries commit with the
// published three-access update cost.
func (p *Prefetcher) Record(core int, blk uint64, prefetchHit bool) {
	pend := p.pendings[core]
	keep := pend[:0]
	for i := range pend {
		pend[i].succ = append(pend[i].succ, blk)
		if len(pend[i].succ) >= p.cfg.Depth {
			p.commit(pend[i])
		} else {
			keep = append(keep, pend[i])
		}
	}
	p.pendings[core] = keep
	if !prefetchHit {
		// Only genuine misses open entries: prefetched hits extend
		// successor lists but are already covered by an existing entry.
		p.pendings[core] = append(p.pendings[core], pending{
			key:  blk,
			succ: make([]uint64, 0, p.cfg.Depth),
		})
	}
}

func (p *Prefetcher) commit(e pending) {
	p.table.put(e.key, e.succ)
	p.UpdatesCommitted++
	for i := 0; i < p.cfg.UpdateReads; i++ {
		p.env.MetaRead(dram.IndexUpdateRd, nil)
	}
	for i := 0; i < p.cfg.UpdateWrites; i++ {
		p.env.MetaWrite(dram.IndexUpdateWr)
	}
}
