// Package ulmt configures the single-table comparator as the User-Level
// Memory Thread prefetcher (Solihin, Lee & Torrellas, ISCA'02): a
// correlation table in main memory maintained by a helper thread at the
// memory controller — one lookup access per off-chip miss and three
// accesses per update, with short (depth-3) successor chains (§3,
// Fig. 1 right).
package ulmt

import (
	"stms/internal/prefetch"
	"stms/internal/prefetch/singletable"
)

// DefaultConfig returns the published ULMT cost model.
func DefaultConfig(cores int) singletable.Config {
	return singletable.Config{
		Name:         "ulmt",
		Cores:        cores,
		Entries:      1 << 19,
		Depth:        3,
		Skip:         0,
		LookupReads:  1,
		UpdateReads:  2,
		UpdateWrites: 1,
		EpochLookup:  false,
		BufferBlocks: 32,
	}
}

// New builds a ULMT comparator over env.
func New(env prefetch.Env, cores int) *singletable.Prefetcher {
	return singletable.New(env, DefaultConfig(cores))
}
