package prefetch

import (
	"testing"

	"stms/internal/dram"
	"stms/internal/event"
)

// testEnv is a synchronous Env that tracks fetched blocks and on-chip
// contents.
type testEnv struct {
	now     uint64
	onChip  map[uint64]bool
	fetched []uint64
	reads   map[dram.Class]int
	writes  map[dram.Class]int
}

func newTestEnv() *testEnv {
	return &testEnv{
		onChip: map[uint64]bool{},
		reads:  map[dram.Class]int{},
		writes: map[dram.Class]int{},
	}
}

func (e *testEnv) Now() uint64 { return e.now }

func (e *testEnv) MetaRead(class dram.Class, done func(uint64)) {
	e.reads[class]++
	if done != nil {
		done(e.now)
	}
}

func (e *testEnv) MetaReadH(class dram.Class, h event.Handler, kind uint8, a, b uint64) {
	e.reads[class]++
	h.Handle(e.now, kind, a, b)
}

func (e *testEnv) MetaWrite(class dram.Class) { e.writes[class]++ }

func (e *testEnv) Fetch(core int, blk uint64, done func(uint64)) {
	e.fetched = append(e.fetched, blk)
	if done != nil {
		done(e.now)
	}
}

func (e *testEnv) FetchH(core int, blk uint64, h event.Handler, kind uint8, a, b uint64) {
	e.fetched = append(e.fetched, blk)
	h.Handle(e.now, kind, a, b)
}

func (e *testEnv) OnChip(core int, blk uint64) bool { return e.onChip[blk] }

// scriptMeta is a canned Metadata: one recorded stream per trigger block.
type scriptMeta struct {
	streams  map[uint64][]uint64 // trigger -> successors
	recorded []uint64
	marks    []uint64
}

func newScriptMeta() *scriptMeta {
	return &scriptMeta{streams: map[uint64][]uint64{}}
}

func (m *scriptMeta) Name() string { return "script" }

func (m *scriptMeta) Lookup(core int, blk uint64, done func(*Cursor)) {
	if _, ok := m.streams[blk]; ok {
		done(&Cursor{Core: core, Pos: 0, ID: blk})
		return
	}
	done(nil)
}

func (m *scriptMeta) ReadNext(cur *Cursor, max int, done func(addrs, positions []uint64, marked bool, markAddr uint64)) {
	s := m.streams[cur.ID]
	var addrs, poss []uint64
	for p := cur.Pos; int(p) < len(s) && len(addrs) < max; p++ {
		addrs = append(addrs, s[p])
		poss = append(poss, p)
	}
	done(addrs, poss, false, 0)
}

func (m *scriptMeta) SkipMark(cur *Cursor) { cur.Pos++ }

func (m *scriptMeta) Record(core int, blk uint64, prefetchHit bool) {
	m.recorded = append(m.recorded, blk)
}

func (m *scriptMeta) MarkEnd(core int, pos uint64) { m.marks = append(m.marks, pos) }

func newTestEngine(env Env, meta Metadata) *Engine {
	cfg := DefaultEngineConfig(1)
	return NewEngine(env, meta, cfg)
}

func TestEngineAdoptsAndPrefetches(t *testing.T) {
	env := newTestEnv()
	meta := newScriptMeta()
	meta.streams[100] = []uint64{101, 102, 103, 104}
	e := newTestEngine(env, meta)

	e.TriggerMiss(0, 100)
	if e.Stats().Adopted != 1 {
		t.Fatalf("adopted = %d", e.Stats().Adopted)
	}
	if len(env.fetched) != 4 {
		t.Fatalf("fetched %v", env.fetched)
	}
	// All four should now hit.
	for _, blk := range []uint64{101, 102, 103, 104} {
		res := e.Probe(0, blk, nil, 0, 0, 0)
		if res.State != ProbeReady {
			t.Fatalf("block %d: state %v", blk, res.State)
		}
	}
	if e.Stats().FullHits != 4 {
		t.Fatalf("full hits = %d", e.Stats().FullHits)
	}
}

func TestEngineUnknownTriggerNoAdopt(t *testing.T) {
	env := newTestEnv()
	meta := newScriptMeta()
	e := newTestEngine(env, meta)
	e.TriggerMiss(0, 5)
	if e.Stats().Adopted != 0 || e.Stats().Lookups != 1 {
		t.Fatalf("stats = %+v", e.Stats())
	}
}

func TestEngineOnChipFilter(t *testing.T) {
	env := newTestEnv()
	env.onChip[102] = true
	meta := newScriptMeta()
	meta.streams[100] = []uint64{101, 102, 103}
	e := newTestEngine(env, meta)
	e.TriggerMiss(0, 100)
	if e.Stats().FilteredOnChip != 1 {
		t.Fatalf("filtered = %d", e.Stats().FilteredOnChip)
	}
	for _, blk := range env.fetched {
		if blk == 102 {
			t.Fatal("cached block was fetched")
		}
	}
}

func TestEngineAbandonAfterColdMisses(t *testing.T) {
	env := newTestEnv()
	meta := newScriptMeta()
	meta.streams[100] = []uint64{101, 102}
	e := newTestEngine(env, meta)
	e.TriggerMiss(0, 100)
	// Four unknown trigger misses abandon the stream.
	for i := 0; i < 4; i++ {
		e.TriggerMiss(0, uint64(1000+i))
	}
	if e.Stats().Abandoned == 0 {
		t.Fatal("stream never abandoned")
	}
}

func TestEngineEndMarkWrittenOnAbandon(t *testing.T) {
	env := newTestEnv()
	meta := newScriptMeta()
	// Long enough that the stream does not exhaust before abandonment.
	long := make([]uint64, 24)
	for i := range long {
		long[i] = uint64(101 + i)
	}
	meta.streams[100] = long
	e := newTestEngine(env, meta)
	e.TriggerMiss(0, 100)
	// Consume one block so the stream has hits.
	e.Probe(0, 101, nil, 0, 0, 0)
	for i := 0; i < 4; i++ {
		e.TriggerMiss(0, uint64(1000+i))
	}
	if len(meta.marks) != 1 {
		t.Fatalf("marks = %v", meta.marks)
	}
	// Mark goes after the last hit: position of 101 is 0, so mark at 1.
	if meta.marks[0] != 1 {
		t.Fatalf("mark position = %d, want 1", meta.marks[0])
	}
}

func TestEngineLeftoverBlocksSurviveExhaustion(t *testing.T) {
	// A stream that catches up with the recorded head is abandoned, but
	// its fetched blocks must stay consumable in the buffer.
	env := newTestEnv()
	meta := newScriptMeta()
	meta.streams[100] = []uint64{101, 102, 103}
	e := newTestEngine(env, meta)
	e.TriggerMiss(0, 100)
	if e.Stats().Exhausted == 0 {
		t.Fatal("short stream should exhaust")
	}
	for _, blk := range []uint64{101, 102, 103} {
		if res := e.Probe(0, blk, nil, 0, 0, 0); res.State != ProbeReady {
			t.Fatalf("leftover block %d lost (state %v)", blk, res.State)
		}
	}
}

func TestEngineCreditRampLimitsColdStreamWaste(t *testing.T) {
	env := newTestEnv()
	meta := newScriptMeta()
	long := make([]uint64, 100)
	for i := range long {
		long[i] = uint64(200 + i)
	}
	meta.streams[100] = long
	cfg := DefaultEngineConfig(1)
	cfg.InitialCredit = 8
	e := NewEngine(env, meta, cfg)
	e.TriggerMiss(0, 100)
	// Without any hits, only InitialCredit fetches may be issued.
	if len(env.fetched) != 8 {
		t.Fatalf("cold stream issued %d fetches, want 8", len(env.fetched))
	}
	// Hits extend the allowance.
	e.Probe(0, 200, nil, 0, 0, 0)
	if len(env.fetched) <= 8 {
		t.Fatal("credit did not grow after a hit")
	}
}

func TestEngineMaxDepthStops(t *testing.T) {
	env := newTestEnv()
	meta := newScriptMeta()
	long := make([]uint64, 50)
	for i := range long {
		long[i] = uint64(200 + i)
	}
	meta.streams[100] = long
	cfg := DefaultEngineConfig(1)
	cfg.MaxDepth = 4
	e := NewEngine(env, meta, cfg)
	e.TriggerMiss(0, 100)
	// Consume what was fetched to let the engine try to go deeper.
	for i := 0; i < 10; i++ {
		e.Probe(0, uint64(200+i), nil, 0, 0, 0)
	}
	if len(env.fetched) > 4 {
		t.Fatalf("depth cap exceeded: %d fetches", len(env.fetched))
	}
	if e.Stats().DepthStops == 0 {
		t.Fatal("depth stop not recorded")
	}
}

func TestEngineRecordForwards(t *testing.T) {
	env := newTestEnv()
	meta := newScriptMeta()
	e := newTestEngine(env, meta)
	e.Record(0, 42, false)
	e.Record(0, 43, true)
	if len(meta.recorded) != 2 {
		t.Fatalf("recorded = %v", meta.recorded)
	}
}

// markMeta delivers a stream with an end-mark in the middle.
type markMeta struct {
	scriptMeta
	markAt uint64
}

func (m *markMeta) ReadNext(cur *Cursor, max int, done func(addrs, positions []uint64, marked bool, markAddr uint64)) {
	s := m.streams[cur.ID]
	var addrs, poss []uint64
	for p := cur.Pos; int(p) < len(s) && len(addrs) < max; p++ {
		if p == m.markAt {
			done(addrs, poss, true, s[p])
			return
		}
		addrs = append(addrs, s[p])
		poss = append(poss, p)
	}
	done(addrs, poss, false, 0)
}

func TestEnginePausesAtMarkAndResumes(t *testing.T) {
	env := newTestEnv()
	meta := &markMeta{scriptMeta: *newScriptMeta(), markAt: 2}
	meta.streams = map[uint64][]uint64{100: {101, 102, 103, 104, 105}}
	e := newTestEngine(env, meta)
	e.TriggerMiss(0, 100)
	// Only blocks before the mark (positions 0,1) are fetched.
	if len(env.fetched) != 2 {
		t.Fatalf("fetched %v, want 2 blocks before the mark", env.fetched)
	}
	// The core explicitly requests the annotated address -> resume.
	e.Probe(0, 101, nil, 0, 0, 0)
	e.Probe(0, 102, nil, 0, 0, 0)
	e.TriggerMiss(0, 103)
	if e.Stats().Resumed != 1 {
		t.Fatalf("resumed = %d", e.Stats().Resumed)
	}
	if len(env.fetched) < 4 {
		t.Fatalf("stream did not continue after mark: %v", env.fetched)
	}
}

func TestEngineStreamLengthSamples(t *testing.T) {
	env := newTestEnv()
	meta := newScriptMeta()
	long := make([]uint64, 24)
	for i := range long {
		long[i] = uint64(101 + i)
	}
	meta.streams[100] = long
	e := newTestEngine(env, meta)
	e.TriggerMiss(0, 100)
	e.Probe(0, 101, nil, 0, 0, 0)
	e.Probe(0, 102, nil, 0, 0, 0)
	e.Flush()
	if e.Stats().StreamLens.N() != 1 {
		t.Fatalf("stream length samples = %d", e.Stats().StreamLens.N())
	}
	if q := e.Stats().StreamLens.Quantile(0.5); q != 2 {
		t.Fatalf("stream length = %v, want 2 hits", q)
	}
}

func TestNop(t *testing.T) {
	var n Nop
	if n.Name() != "none" {
		t.Fatal("name")
	}
	if res := n.Probe(0, 1, nil, 0, 0, 0); res.State != ProbeMiss {
		t.Fatal("nop should always miss")
	}
	n.TriggerMiss(0, 1)
	n.Record(0, 1, false)
	if n.Stats() == nil {
		t.Fatal("stats nil")
	}
}
