package prefetch

import (
	"testing"
	"testing/quick"
)

func TestBufferInsertProbeReady(t *testing.T) {
	b := NewBuffer(4)
	if !b.Insert(10, 1, 100) {
		t.Fatal("insert failed")
	}
	// Still in flight.
	res, _, _ := b.Probe(10, nil, 0, 0, 0)
	if res.State != ProbeInFlight {
		t.Fatalf("state = %v, want in-flight", res.State)
	}
	b2 := NewBuffer(4)
	b2.Insert(10, 1, 100)
	b2.Arrived(10, 50)
	res, stream, pos := b2.Probe(10, nil, 0, 0, 0)
	if res.State != ProbeReady || res.ReadyAt != 50 {
		t.Fatalf("res = %+v", res)
	}
	if stream != 1 || pos != 100 {
		t.Fatalf("stream/pos = %d/%d", stream, pos)
	}
	// Consumed: next probe misses.
	res, _, _ = b2.Probe(10, nil, 0, 0, 0)
	if res.State != ProbeMiss {
		t.Fatal("block should have been consumed")
	}
	if b2.FullHits != 1 {
		t.Fatalf("full hits = %d", b2.FullHits)
	}
}

func TestBufferDuplicateInsert(t *testing.T) {
	b := NewBuffer(4)
	b.Insert(10, 1, 0)
	if b.Insert(10, 1, 0) {
		t.Fatal("duplicate insert succeeded")
	}
	if b.Len() != 1 {
		t.Fatalf("len = %d", b.Len())
	}
}

func TestBufferEvictionOtherStreamOnly(t *testing.T) {
	b := NewBuffer(2)
	b.Insert(1, 7, 0)
	b.Insert(2, 7, 1)
	b.Arrived(1, 10)
	b.Arrived(2, 10)
	// Same stream cannot evict its own ready blocks.
	if b.HasSpaceFor(7) {
		t.Fatal("stream 7 should not evict its own blocks")
	}
	if b.Insert(3, 7, 2) {
		t.Fatal("insert should fail for same stream")
	}
	// A different stream can.
	if !b.HasSpaceFor(8) {
		t.Fatal("stream 8 should find space by evicting stream 7")
	}
	if !b.Insert(3, 8, 0) {
		t.Fatal("insert for new stream failed")
	}
	if b.EvictedUnused != 1 {
		t.Fatalf("evicted = %d", b.EvictedUnused)
	}
	// Oldest (block 1) was evicted.
	if b.Contains(1) || !b.Contains(2) {
		t.Fatal("wrong victim")
	}
}

func TestBufferInFlightUnevictable(t *testing.T) {
	b := NewBuffer(2)
	b.Insert(1, 7, 0)
	b.Insert(2, 7, 1)
	// Nothing has arrived: nothing is evictable for anyone.
	if b.HasSpaceFor(8) {
		t.Fatal("in-flight blocks must not be evicted")
	}
}

// testWaiter records fire times through the event.Handler waiter
// interface (the payload words are ignored).
type testWaiter struct{ log *[]uint64 }

func (w testWaiter) Handle(now uint64, kind uint8, a, b uint64) { *w.log = append(*w.log, now) }

func TestBufferPartialHitWaiters(t *testing.T) {
	b := NewBuffer(4)
	b.Insert(5, 1, 0)
	var notified []uint64
	res, _, _ := b.Probe(5, testWaiter{&notified}, 0, 0, 0)
	if res.State != ProbeInFlight {
		t.Fatal("expected in-flight")
	}
	// Second demand for the same in-flight block.
	b.Probe(5, testWaiter{&notified}, 0, 0, 0)
	if b.PartialHits != 1 {
		t.Fatalf("partial hits = %d, want 1 (claim counted once)", b.PartialHits)
	}
	_, _, claimed, ok := b.Arrived(5, 77)
	if !ok || !claimed {
		t.Fatal("arrival should report claim")
	}
	if len(notified) != 2 || notified[0] != 77 || notified[1] != 77 {
		t.Fatalf("waiters = %v", notified)
	}
	if b.Contains(5) {
		t.Fatal("claimed block should leave on arrival")
	}
}

func TestBufferDropStream(t *testing.T) {
	b := NewBuffer(8)
	b.Insert(1, 1, 0)
	b.Insert(2, 1, 1)
	b.Insert(3, 2, 0)
	b.Arrived(1, 5)
	b.Arrived(3, 5)
	b.DropStream(1)
	// Ready unclaimed block of stream 1 dropped; in-flight stays.
	if b.Contains(1) {
		t.Fatal("ready block of dropped stream should go")
	}
	if !b.Contains(2) {
		t.Fatal("in-flight block must stay")
	}
	if !b.Contains(3) {
		t.Fatal("other stream must stay")
	}
	if b.EvictedUnused != 1 {
		t.Fatalf("evicted = %d", b.EvictedUnused)
	}
}

func TestBufferFlushStats(t *testing.T) {
	b := NewBuffer(4)
	b.Insert(1, 1, 0)
	b.Insert(2, 1, 0)
	b.Arrived(1, 5)
	b.FlushStats()
	if b.EvictedUnused != 1 {
		t.Fatalf("flush counted %d, want 1 (only the ready one)", b.EvictedUnused)
	}
}

func TestBufferCapacityInvariant(t *testing.T) {
	f := func(ops []uint16) bool {
		b := NewBuffer(8)
		for _, op := range ops {
			blk := uint64(op % 64)
			stream := uint64(op % 3)
			switch (op >> 6) % 3 {
			case 0:
				b.Insert(blk, stream, 0)
			case 1:
				b.Arrived(blk, uint64(op))
			case 2:
				b.Probe(blk, nil, 0, 0, 0)
			}
			if b.Len() > 8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHistoryAppendGet(t *testing.T) {
	h := NewHistory(16)
	for i := uint64(0); i < 10; i++ {
		if pos := h.Append(i * 100); pos != i {
			t.Fatalf("pos = %d, want %d", pos, i)
		}
	}
	blk, mark, ok := h.Get(3)
	if !ok || blk != 300 || mark {
		t.Fatalf("Get(3) = %d,%v,%v", blk, mark, ok)
	}
}

func TestHistoryWrapInvalidation(t *testing.T) {
	h := NewHistory(8)
	for i := uint64(0); i < 20; i++ {
		h.Append(i)
	}
	if h.Valid(11) {
		t.Fatal("position 11 should be overwritten (head=20, cap=8)")
	}
	if !h.Valid(12) {
		t.Fatal("position 12 should still be live")
	}
	blk, _, ok := h.Get(15)
	if !ok || blk != 15 {
		t.Fatalf("Get(15) = %d,%v", blk, ok)
	}
	if h.Valid(20) || h.Valid(25) {
		t.Fatal("future positions must be invalid")
	}
}

func TestHistoryMark(t *testing.T) {
	h := NewHistory(8)
	h.Append(42)
	if !h.Mark(0) {
		t.Fatal("mark failed")
	}
	blk, mark, ok := h.Get(0)
	if !ok || !mark || blk != 42 {
		t.Fatalf("marked entry = %d,%v,%v", blk, mark, ok)
	}
	if h.Mark(5) {
		t.Fatal("marking an invalid position should fail")
	}
}

func TestHistoryReadLineStopsAtLineEnd(t *testing.T) {
	h := NewHistory(64)
	for i := uint64(0); i < 30; i++ {
		h.Append(1000 + i)
	}
	var line Line
	n, marked, _ := h.ReadLine(2, 100, &line)
	// Line 0 holds positions 0..11, so from 2 we get 10 entries.
	if n != 10 || marked {
		t.Fatalf("got %d addrs, marked=%v", n, marked)
	}
	if line.Addrs[0] != 1002 || line.Positions[9] != 11 {
		t.Fatalf("addrs/positions wrong: %v %v", line.Addrs[0], line.Positions[9])
	}
	// Next line read.
	n, _, _ = h.ReadLine(12, 100, &line)
	if n != 12 {
		t.Fatalf("full line read returned %d", n)
	}
}

func TestHistoryReadLineStopsAtMark(t *testing.T) {
	h := NewHistory(64)
	for i := uint64(0); i < 12; i++ {
		h.Append(i)
	}
	h.Mark(5)
	var line Line
	n, marked, markAddr := h.ReadLine(2, 100, &line)
	if n != 3 { // positions 2,3,4
		t.Fatalf("n = %d", n)
	}
	if !marked || markAddr != 5 {
		t.Fatalf("marked=%v addr=%d", marked, markAddr)
	}
}

func TestHistoryReadLineRespectsMax(t *testing.T) {
	h := NewHistory(64)
	for i := uint64(0); i < 12; i++ {
		h.Append(i)
	}
	var line Line
	n, _, _ := h.ReadLine(0, 4, &line)
	if n != 4 {
		t.Fatalf("max ignored: %d", n)
	}
}

func TestHistoryReadLineAtHead(t *testing.T) {
	h := NewHistory(64)
	h.Append(1)
	var line Line
	n, marked, _ := h.ReadLine(1, 10, &line)
	if n != 0 || marked {
		t.Fatal("reading at head should be empty")
	}
}

// TestHistoryPositionsAlwaysConsistent exercises wraparound with random
// append/read interleavings.
func TestHistoryPositionsAlwaysConsistent(t *testing.T) {
	f := func(ops []uint8) bool {
		h := NewHistory(16)
		appended := []uint64{}
		for _, op := range ops {
			if op%3 != 0 {
				h.Append(uint64(op) * 7)
				appended = append(appended, uint64(op)*7)
			} else if len(appended) > 0 {
				pos := uint64(int(op) % len(appended))
				blk, _, ok := h.Get(pos)
				if ok && blk != appended[pos] {
					return false // live entry must match what was appended
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
