package prefetch

import (
	"fmt"

	"stms/internal/ckpt"
	"stms/internal/event"
)

// ReadTagger is an optional Metadata extension used by checkpointing.
// The engine announces the issuing core and stream generation (curSeq)
// of each ReadNext immediately before issuing it; a backend that parks
// reads as pending records stores the tag alongside, so a checkpoint
// can later identify the in-flight read and a restore can re-mint its
// completion via ReadDoneFor. The issuing core must be tagged
// explicitly: the cursor's own core names the history being read,
// which differs from the issuer whenever a core follows another
// core's stream. Synchronous backends (idealized TMS) never park
// reads and need not implement this.
type ReadTagger interface {
	SetNextRead(core int, seq uint64)
}

// LookupDoneFor returns core's premade lookup continuation — the exact
// func value NewEngine installed — so a restored backend can re-wire a
// pending lookup record to it.
func (e *Engine) LookupDoneFor(core int) func(*Cursor) {
	return e.core[core].lookupDone
}

// ReadDoneFor mints a pooled read completion for (core, seq), the
// restore-side counterpart of the op the engine issued before the
// checkpoint. A stale seq is harmless: fire drops completions whose
// stream generation no longer matches.
func (e *Engine) ReadDoneFor(core int, seq uint64) func(addrs, positions []uint64, marked bool, markAddr uint64) {
	return e.getReadOp(core, seq).done
}

// Snapshot serializes one core's history buffer.
func (h *History) Snapshot(enc *ckpt.Encoder) {
	enc.Section("prefetch.History")
	enc.U64(h.cap)
	enc.U64(h.head)
	enc.U64s(h.entries)
}

// Restore rebuilds the history from a Snapshot taken on an identically
// sized history.
func (h *History) Restore(dec *ckpt.Decoder) error {
	dec.Section("prefetch.History")
	c := dec.U64()
	head := dec.U64()
	entries := dec.U64s()
	if err := dec.Err(); err != nil {
		return err
	}
	if c != h.cap {
		return fmt.Errorf("prefetch: history snapshot capacity %d does not match %d", c, h.cap)
	}
	if uint64(len(entries)) > c {
		return fmt.Errorf("prefetch: history snapshot has %d entries beyond capacity %d", len(entries), c)
	}
	h.head = head
	h.entries = entries
	return nil
}

// Snapshot serializes the buffer's live entries in insertion order,
// including each entry's partial-hit waiter chain. Waiter handlers are
// mapped to stable ids through idOf (same registry the event engine
// uses).
func (b *Buffer) Snapshot(enc *ckpt.Encoder, idOf func(event.Handler) (uint32, bool)) error {
	enc.Section("prefetch.Buffer")
	enc.Int(b.cap)
	enc.Int(b.m.Len())
	for i := b.head; i != pbNil; i = b.nodes[i].next {
		n := &b.nodes[i]
		enc.U64(n.blk)
		enc.Bool(n.readyOK)
		enc.U64(n.readyAt)
		enc.Bool(n.claimed)
		enc.U64(n.stream)
		enc.U64(n.pos)
		nw := 0
		for w := n.wHead; w != pbNil; w = b.waiters[w].next {
			nw++
		}
		enc.Int(nw)
		for w := n.wHead; w != pbNil; w = b.waiters[w].next {
			rec := &b.waiters[w]
			id, ok := idOf(rec.h)
			if !ok {
				return fmt.Errorf("prefetch: buffer waiter has unregistered handler %T", rec.h)
			}
			enc.U32(id)
			enc.U8(rec.kind)
			enc.U64(rec.a)
			enc.U64(rec.b)
		}
	}
	enc.U64(b.Issued)
	enc.U64(b.FullHits)
	enc.U64(b.PartialHits)
	enc.U64(b.EvictedUnused)
	enc.U64(b.Dropped)
	return nil
}

// Restore rebuilds the buffer from a Snapshot. The buffer must be
// freshly constructed with the same capacity; insertion order, waiter
// chains and the evictable accounting are reproduced exactly.
func (b *Buffer) Restore(dec *ckpt.Decoder, handlerOf func(uint32) (event.Handler, bool)) error {
	dec.Section("prefetch.Buffer")
	capacity := dec.Int()
	count := dec.Int()
	if err := dec.Err(); err != nil {
		return err
	}
	if capacity != b.cap {
		return fmt.Errorf("prefetch: buffer snapshot capacity %d does not match %d", capacity, b.cap)
	}
	if b.m.Len() != 0 {
		return fmt.Errorf("prefetch: restore into non-empty buffer")
	}
	for k := 0; k < count; k++ {
		var n pbNode
		n.blk = dec.U64()
		n.readyOK = dec.Bool()
		n.readyAt = dec.U64()
		n.claimed = dec.Bool()
		n.stream = dec.U64()
		n.pos = dec.U64()
		n.wHead, n.wTail, n.prev, n.next = pbNil, pbNil, pbNil, pbNil
		nw := dec.Int()
		if err := dec.Err(); err != nil {
			return err
		}
		b.nodes = append(b.nodes, n)
		i := int32(len(b.nodes) - 1)
		b.m.Put(n.blk, i)
		b.pushBack(i)
		if n.readyOK && !n.claimed {
			b.readyDelta(n.stream, 1)
		}
		for j := 0; j < nw; j++ {
			id := dec.U32()
			kind := dec.U8()
			a := dec.U64()
			bb := dec.U64()
			if err := dec.Err(); err != nil {
				return err
			}
			h, ok := handlerOf(id)
			if !ok {
				return fmt.Errorf("prefetch: buffer waiter references unknown handler id %d", id)
			}
			b.addWaiter(i, h, kind, a, bb)
		}
	}
	b.Issued = dec.U64()
	b.FullHits = dec.U64()
	b.PartialHits = dec.U64()
	b.EvictedUnused = dec.U64()
	b.Dropped = dec.U64()
	return dec.Err()
}

// Snapshot serializes the stream engine: global sequence, statistics,
// and every core's queue, cursor, stream status and prefetch buffer.
// In-flight backend operations (lookups, history reads) live in the
// backend's own pending records and are restored there; the engine only
// carries the busy flags.
func (e *Engine) Snapshot(enc *ckpt.Encoder, idOf func(event.Handler) (uint32, bool)) error {
	enc.Section("prefetch.Engine")
	enc.Int(len(e.core))
	enc.U64(e.seq)
	enc.U64(e.st.Lookups)
	enc.U64(e.st.LookupHits)
	enc.U64(e.st.Adopted)
	enc.U64(e.st.Abandoned)
	enc.U64(e.st.Resumed)
	enc.U64(e.st.DepthStops)
	enc.U64(e.st.Exhausted)
	enc.U64(e.st.IssuedPrefetches)
	enc.U64(e.st.FilteredOnChip)
	enc.U64(e.st.FullHits)
	enc.U64(e.st.PartialHits)
	enc.U64(e.st.EvictedUnused)
	vals, weights, sorted := e.st.StreamLens.Snapshot()
	enc.F64s(vals)
	enc.F64s(weights)
	enc.Bool(sorted)
	for i := range e.core {
		st := &e.core[i]
		enc.Int(len(st.q))
		for _, q := range st.q {
			enc.U64(q.addr)
			enc.U64(q.pos)
		}
		enc.Int(st.qHead)
		enc.Int(st.qLen)
		enc.Int(st.cur.Core)
		enc.U64(st.cur.Pos)
		enc.U64(st.cur.ID)
		enc.U64(st.curSeq)
		enc.Bool(st.active)
		enc.Bool(st.paused)
		enc.U64(st.markAddr)
		enc.Bool(st.lookBusy)
		enc.Bool(st.readBusy)
		enc.Int(st.missStreak)
		enc.U64(st.hits)
		enc.U64(st.lastHitPos)
		enc.Int(st.depth)
		enc.Int(st.credit)
		if err := st.buf.Snapshot(enc, idOf); err != nil {
			return err
		}
	}
	return nil
}

// Restore rebuilds the engine from a Snapshot. The engine must be
// freshly constructed with the same configuration.
func (e *Engine) Restore(dec *ckpt.Decoder, handlerOf func(uint32) (event.Handler, bool)) error {
	dec.Section("prefetch.Engine")
	cores := dec.Int()
	if err := dec.Err(); err != nil {
		return err
	}
	if cores != len(e.core) {
		return fmt.Errorf("prefetch: engine snapshot has %d cores, want %d", cores, len(e.core))
	}
	e.seq = dec.U64()
	e.st.Lookups = dec.U64()
	e.st.LookupHits = dec.U64()
	e.st.Adopted = dec.U64()
	e.st.Abandoned = dec.U64()
	e.st.Resumed = dec.U64()
	e.st.DepthStops = dec.U64()
	e.st.Exhausted = dec.U64()
	e.st.IssuedPrefetches = dec.U64()
	e.st.FilteredOnChip = dec.U64()
	e.st.FullHits = dec.U64()
	e.st.PartialHits = dec.U64()
	e.st.EvictedUnused = dec.U64()
	vals := dec.F64s()
	weights := dec.F64s()
	sorted := dec.Bool()
	if err := dec.Err(); err != nil {
		return err
	}
	e.st.StreamLens.SetSnapshot(vals, weights, sorted)
	for i := range e.core {
		st := &e.core[i]
		qn := dec.Int()
		if err := dec.Err(); err != nil {
			return err
		}
		if qn != len(st.q) {
			return fmt.Errorf("prefetch: engine snapshot queue cap %d does not match %d", qn, len(st.q))
		}
		for j := range st.q {
			st.q[j].addr = dec.U64()
			st.q[j].pos = dec.U64()
		}
		st.qHead = dec.Int()
		st.qLen = dec.Int()
		st.cur.Core = dec.Int()
		st.cur.Pos = dec.U64()
		st.cur.ID = dec.U64()
		st.curSeq = dec.U64()
		st.active = dec.Bool()
		st.paused = dec.Bool()
		st.markAddr = dec.U64()
		st.lookBusy = dec.Bool()
		st.readBusy = dec.Bool()
		st.missStreak = dec.Int()
		st.hits = dec.U64()
		st.lastHitPos = dec.U64()
		st.depth = dec.Int()
		st.credit = dec.Int()
		if err := st.buf.Restore(dec, handlerOf); err != nil {
			return err
		}
	}
	return dec.Err()
}
