package prefetch

import (
	"math/rand"
	"testing"
)

// BenchmarkBufferStreamCycle drives one core's prefetch buffer through
// the engine's steady-state pattern: insert a streamed block, mark it
// arrived, probe a mix of hits and misses, evict under pressure.
func BenchmarkBufferStreamCycle(b *testing.B) {
	rnd := rand.New(rand.NewSource(11))
	blks := make([]uint64, 4096)
	for i := range blks {
		blks[i] = uint64(rnd.Intn(4096))
	}
	buf := NewBuffer(32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := blks[i&4095]
		stream := uint64(i >> 8) // streams turn over every 256 ops
		if buf.HasSpaceFor(stream) && buf.Insert(blk, stream, uint64(i)) {
			buf.Arrived(blk, uint64(i))
		}
		buf.Probe(blks[(i*7)&4095], nil, 0, 0, 0)
	}
}

// BenchmarkBufferProbeMiss measures the pure miss path: every demand L1
// miss probes the buffer, and almost all of them miss.
func BenchmarkBufferProbeMiss(b *testing.B) {
	buf := NewBuffer(32)
	for i := uint64(0); i < 32; i++ {
		buf.Insert(i*977, 1, i)
		buf.Arrived(i*977, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Probe(uint64(i)|1<<40, nil, 0, 0, 0)
	}
}
