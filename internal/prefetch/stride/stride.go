// Package stride implements the baseline system's stride prefetcher
// (Table 1: "32-entry buffer, max 16 distinct strides"), in the style of
// predictor-directed stream buffers: a PC-indexed table learns a constant
// stride per static load and, once confident, emits prefetch candidates
// ahead of the access stream.
//
// Every experiment includes this prefetcher in both the baseline and the
// prefetching configurations; temporal coverage is always measured in
// excess of it (§5.1). The simulator owns issuing and filling the
// candidates (into the L2), so this package is purely the detector.
package stride

// Config sets the detector's geometry.
type Config struct {
	// Entries is the PC-table capacity (distinct strides tracked).
	Entries int
	// Degree is how many blocks ahead to emit once confident.
	Degree int
	// MinConfidence is how many consecutive identical strides must be
	// seen before prefetching.
	MinConfidence int
}

// DefaultConfig returns Table 1's stride prefetcher: 16 tracked strides
// feeding a 32-block prefetch window (Degree x entries in flight).
func DefaultConfig() Config {
	return Config{Entries: 16, Degree: 4, MinConfidence: 2}
}

type entry struct {
	pc       uint32
	lastBlk  uint64
	stride   int64
	conf     int
	lastUse  uint64
	valid    bool
	nextEmit uint64 // next block to emit, avoids re-emitting the window
}

// Stats counts detector events.
type Stats struct {
	Observations uint64
	Trained      uint64 // observations that confirmed a stride
	Emitted      uint64 // prefetch candidates emitted
}

// Prefetcher is the stride detector. Not safe for concurrent use; the
// simulator is single-threaded.
//
// pcs mirrors entries[i].pc for the valid entries so the per-L1-miss
// lookup scans one dense uint32 array (64 bytes at the default 16
// entries) instead of walking the full entry structs.
type Prefetcher struct {
	cfg     Config
	entries []entry
	pcs     []uint32
	tick    uint64
	stats   Stats
}

// New builds a detector.
func New(cfg Config) *Prefetcher {
	if cfg.Entries <= 0 {
		cfg.Entries = 16
	}
	if cfg.Degree <= 0 {
		cfg.Degree = 4
	}
	if cfg.MinConfidence <= 0 {
		cfg.MinConfidence = 2
	}
	p := &Prefetcher{
		cfg:     cfg,
		entries: make([]entry, cfg.Entries),
		pcs:     make([]uint32, cfg.Entries),
	}
	for i := range p.pcs {
		p.pcs[i] = freePC
	}
	return p
}

// freePC fills unused pcs slots so the lookup loop needs no parallel
// validity load. A trace PC may legitimately equal freePC; find
// double-checks the entry before trusting a match, so the sentinel is a
// fast-path hint, never a correctness assumption.
const freePC = ^uint32(0)

// Stats returns detector counters.
func (p *Prefetcher) Stats() Stats { return p.stats }

// Observe trains on one L2 access (pc, blk) and emits prefetch candidates
// through emit. Candidates are block numbers; the caller filters ones
// already cached and issues the rest.
func (p *Prefetcher) Observe(pc uint32, blk uint64, emit func(blk uint64)) {
	p.tick++
	p.stats.Observations++
	e := p.find(pc)
	if e == nil {
		e, i := p.victim()
		*e = entry{pc: pc, lastBlk: blk, valid: true, lastUse: p.tick}
		p.pcs[i] = pc
		return
	}
	e.lastUse = p.tick
	stride := int64(blk) - int64(e.lastBlk)
	e.lastBlk = blk
	if stride == 0 {
		return
	}
	if stride == e.stride {
		if e.conf < p.cfg.MinConfidence {
			e.conf++
		}
	} else {
		e.stride = stride
		e.conf = 1
		e.nextEmit = 0
		return
	}
	if e.conf < p.cfg.MinConfidence {
		return
	}
	p.stats.Trained++
	// Emit the window [blk+stride, blk+Degree*stride], skipping blocks
	// already emitted for this trained stream.
	start := blk
	if e.nextEmit != 0 && sameDirection(e.stride, e.nextEmit, blk) {
		start = e.nextEmit - uint64(e.stride)
	}
	next := start
	for i := 0; i < p.cfg.Degree; i++ {
		next = uint64(int64(next) + e.stride)
		if covered(e.stride, next, blk, p.cfg.Degree) {
			p.stats.Emitted++
			emit(next)
		}
	}
	e.nextEmit = uint64(int64(next) + e.stride)
}

// sameDirection reports whether nextEmit is still ahead of blk in the
// stride's direction (the trained stream hasn't jumped).
func sameDirection(stride int64, nextEmit, blk uint64) bool {
	if stride > 0 {
		return nextEmit > blk && nextEmit-blk <= uint64(stride)*32
	}
	return nextEmit < blk && blk-nextEmit <= uint64(-stride)*32
}

// covered reports whether candidate lies within degree strides ahead of
// blk (emission window clamp).
func covered(stride int64, candidate, blk uint64, degree int) bool {
	if stride > 0 {
		return candidate > blk && candidate-blk <= uint64(stride)*uint64(degree)
	}
	return candidate < blk && blk-candidate <= uint64(-stride)*uint64(degree)
}

func (p *Prefetcher) find(pc uint32) *entry {
	for i := range p.pcs {
		if p.pcs[i] == pc {
			if e := &p.entries[i]; e.valid && e.pc == pc {
				return e
			}
		}
	}
	return nil
}

func (p *Prefetcher) victim() (*entry, int) {
	vi := 0
	var v *entry
	for i := range p.entries {
		e := &p.entries[i]
		if !e.valid {
			return e, i
		}
		if v == nil || e.lastUse < v.lastUse {
			v, vi = e, i
		}
	}
	return v, vi
}
