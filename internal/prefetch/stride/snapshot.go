package stride

import (
	"fmt"

	"stms/internal/ckpt"
)

// Snapshot serializes the detector's table, clock and counters.
func (p *Prefetcher) Snapshot(enc *ckpt.Encoder) {
	enc.Section("stride.Prefetcher")
	enc.Int(len(p.entries))
	for i := range p.entries {
		e := &p.entries[i]
		enc.U32(e.pc)
		enc.U64(e.lastBlk)
		enc.I64(e.stride)
		enc.Int(e.conf)
		enc.U64(e.lastUse)
		enc.Bool(e.valid)
		enc.U64(e.nextEmit)
	}
	enc.U32s(p.pcs)
	enc.U64(p.tick)
	enc.U64(p.stats.Observations)
	enc.U64(p.stats.Trained)
	enc.U64(p.stats.Emitted)
}

// Restore rebuilds the detector from a Snapshot taken on an identically
// configured detector.
func (p *Prefetcher) Restore(dec *ckpt.Decoder) error {
	dec.Section("stride.Prefetcher")
	n := dec.Int()
	if err := dec.Err(); err != nil {
		return err
	}
	if n != len(p.entries) {
		return fmt.Errorf("stride: snapshot has %d entries, want %d", n, len(p.entries))
	}
	for i := range p.entries {
		e := &p.entries[i]
		e.pc = dec.U32()
		e.lastBlk = dec.U64()
		e.stride = dec.I64()
		e.conf = dec.Int()
		e.lastUse = dec.U64()
		e.valid = dec.Bool()
		e.nextEmit = dec.U64()
	}
	pcs := dec.U32s()
	if err := dec.Err(); err != nil {
		return err
	}
	if len(pcs) != len(p.pcs) {
		return fmt.Errorf("stride: corrupt snapshot pcs")
	}
	p.pcs = pcs
	p.tick = dec.U64()
	p.stats.Observations = dec.U64()
	p.stats.Trained = dec.U64()
	p.stats.Emitted = dec.U64()
	return dec.Err()
}
