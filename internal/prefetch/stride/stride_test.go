package stride

import "testing"

func collect(p *Prefetcher, pc uint32, blks []uint64) []uint64 {
	var out []uint64
	for _, b := range blks {
		p.Observe(pc, b, func(c uint64) { out = append(out, c) })
	}
	return out
}

func TestDetectsUnitStride(t *testing.T) {
	p := New(DefaultConfig())
	emitted := collect(p, 1, []uint64{100, 101, 102, 103, 104})
	if len(emitted) == 0 {
		t.Fatal("no prefetches for a unit-stride scan")
	}
	// All candidates must be ahead of the stream.
	for _, c := range emitted {
		if c <= 100 {
			t.Fatalf("candidate %d not ahead", c)
		}
	}
}

func TestDetectsLargeStride(t *testing.T) {
	p := New(DefaultConfig())
	emitted := collect(p, 1, []uint64{0, 7, 14, 21, 28})
	if len(emitted) == 0 {
		t.Fatal("no prefetches for stride-7")
	}
	for _, c := range emitted {
		if c%7 != 0 {
			t.Fatalf("candidate %d off the stride", c)
		}
	}
}

func TestDetectsNegativeStride(t *testing.T) {
	p := New(DefaultConfig())
	emitted := collect(p, 1, []uint64{1000, 999, 998, 997})
	if len(emitted) == 0 {
		t.Fatal("no prefetches for descending scan")
	}
	for _, c := range emitted {
		if c >= 1000 {
			t.Fatalf("candidate %d not descending", c)
		}
	}
}

func TestIgnoresRandom(t *testing.T) {
	p := New(DefaultConfig())
	emitted := collect(p, 1, []uint64{5, 902, 17, 4444, 88, 31337})
	if len(emitted) != 0 {
		t.Fatalf("random pattern emitted %v", emitted)
	}
}

func TestPCIsolation(t *testing.T) {
	p := New(DefaultConfig())
	// Interleave two scans on different PCs; both should train.
	var from1, from2 int
	for i := uint64(0); i < 8; i++ {
		p.Observe(1, 100+i, func(uint64) { from1++ })
		p.Observe(2, 9000+i*3, func(uint64) { from2++ })
	}
	if from1 == 0 || from2 == 0 {
		t.Fatalf("interleaved scans not both detected: %d %d", from1, from2)
	}
}

func TestStrideChangeRetrains(t *testing.T) {
	p := New(DefaultConfig())
	collect(p, 1, []uint64{0, 1, 2, 3})
	// Change stride: no emission until confidence rebuilds.
	var emitted []uint64
	p.Observe(1, 103, func(c uint64) { emitted = append(emitted, c) })
	if len(emitted) != 0 {
		t.Fatal("emitted immediately after stride change")
	}
	p.Observe(1, 203, func(c uint64) { emitted = append(emitted, c) })
	p.Observe(1, 303, func(c uint64) { emitted = append(emitted, c) })
	if len(emitted) == 0 {
		t.Fatal("did not retrain on the new stride")
	}
}

func TestTableEviction(t *testing.T) {
	p := New(Config{Entries: 2, Degree: 2, MinConfidence: 2})
	// Train PC 1, then flood with other PCs, then PC 1 must retrain.
	collect(p, 1, []uint64{0, 1, 2})
	for pc := uint32(10); pc < 20; pc++ {
		p.Observe(pc, uint64(pc)*100, nil)
	}
	var emitted []uint64
	p.Observe(1, 3, func(c uint64) { emitted = append(emitted, c) })
	if len(emitted) != 0 {
		t.Fatal("evicted entry retained training")
	}
}

func TestNoDuplicateEmissionsOnSteadyScan(t *testing.T) {
	p := New(DefaultConfig())
	seen := map[uint64]int{}
	for i := uint64(0); i < 64; i++ {
		p.Observe(1, i, func(c uint64) { seen[c]++ })
	}
	dups := 0
	for _, n := range seen {
		if n > 1 {
			dups++
		}
	}
	// The emission window bookkeeping should keep duplicates rare.
	if dups > 8 {
		t.Fatalf("%d duplicate candidates of %d", dups, len(seen))
	}
}

func TestStatsCount(t *testing.T) {
	p := New(DefaultConfig())
	collect(p, 1, []uint64{0, 1, 2, 3})
	st := p.Stats()
	if st.Observations != 4 || st.Trained == 0 || st.Emitted == 0 {
		t.Fatalf("stats = %+v", st)
	}
}
