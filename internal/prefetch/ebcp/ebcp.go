// Package ebcp configures the single-table comparator as the Epoch-Based
// Correlation Prefetcher (Chou, MICRO'07): lookups fire once per off-chip
// miss epoch, the entry format skips the successors that out-of-order
// execution would overlap with the lookup anyway, and each update costs
// three memory accesses (§3, Fig. 1 right).
package ebcp

import (
	"stms/internal/prefetch"
	"stms/internal/prefetch/singletable"
)

// DefaultConfig returns the published EBCP cost model: depth-4 entries,
// epoch-gated single-read lookups, 2-miss epoch skip, 3-access updates.
func DefaultConfig(cores int) singletable.Config {
	return singletable.Config{
		Name:         "ebcp",
		Cores:        cores,
		Entries:      1 << 19,
		Depth:        6,
		Skip:         2,
		LookupReads:  1,
		UpdateReads:  2,
		UpdateWrites: 1,
		EpochLookup:  true,
		BufferBlocks: 32,
	}
}

// New builds an EBCP comparator over env.
func New(env prefetch.Env, cores int) *singletable.Prefetcher {
	return singletable.New(env, DefaultConfig(cores))
}
