package prefetch

import (
	"testing"

	"stms/internal/dram"
	"stms/internal/event"
)

// dramEnv backs the Env with a real event engine and DRAM controller so
// the asynchronous paths (in-flight blocks, partial hits, chained
// meta-data reads) are exercised.
type dramEnv struct {
	eng    *event.Engine
	mc     *dram.Controller
	onChip map[uint64]bool
}

func newDramEnv() *dramEnv {
	eng := event.NewEngine()
	return &dramEnv{
		eng:    eng,
		mc:     dram.New(eng, dram.DefaultConfig()),
		onChip: map[uint64]bool{},
	}
}

func (e *dramEnv) Now() uint64 { return e.eng.Now() }

func (e *dramEnv) MetaRead(class dram.Class, done func(uint64)) {
	e.mc.Read(class, false, done)
}

func (e *dramEnv) MetaReadH(class dram.Class, h event.Handler, kind uint8, a, b uint64) {
	e.mc.ReadH(class, false, h, kind, a, b)
}

func (e *dramEnv) MetaWrite(class dram.Class) { e.mc.Write(class, false) }

func (e *dramEnv) Fetch(core int, blk uint64, done func(uint64)) {
	e.mc.Read(dram.StreamData, false, done)
}

func (e *dramEnv) FetchH(core int, blk uint64, h event.Handler, kind uint8, a, b uint64) {
	e.mc.ReadH(dram.StreamData, false, h, kind, a, b)
}

func (e *dramEnv) OnChip(core int, blk uint64) bool { return e.onChip[blk] }

func TestEngineAsyncLookupAndFetch(t *testing.T) {
	env := newDramEnv()
	meta := newScriptMeta()
	meta.streams[100] = []uint64{101, 102, 103, 104}
	e := NewEngine(env, meta, DefaultEngineConfig(1))

	e.TriggerMiss(0, 100)
	// Nothing fetched yet: the scripted lookup is synchronous but the
	// fetches travel through DRAM.
	if res := e.Probe(0, 101, nil, 0, 0, 0); res.State != ProbeInFlight {
		t.Fatalf("before DRAM completion: state %v, want in-flight", res.State)
	}
	if e.Stats().PartialHits != 1 {
		t.Fatalf("partial hits = %d", e.Stats().PartialHits)
	}
	env.eng.Drain(nil)
	// 101 was claimed while in flight, so it left the buffer on arrival;
	// the rest are now ready.
	for _, blk := range []uint64{102, 103, 104} {
		if res := e.Probe(0, blk, nil, 0, 0, 0); res.State != ProbeReady {
			t.Fatalf("block %d: state %v after drain", blk, res.State)
		}
	}
}

func TestEnginePartialHitWaiterCompletes(t *testing.T) {
	env := newDramEnv()
	meta := newScriptMeta()
	meta.streams[100] = []uint64{101}
	e := NewEngine(env, meta, DefaultEngineConfig(1))
	e.TriggerMiss(0, 100)
	var completions []uint64
	res := e.Probe(0, 101, testWaiter{&completions}, 0, 0, 0)
	if res.State != ProbeInFlight {
		t.Fatalf("state = %v", res.State)
	}
	env.eng.Drain(nil)
	if len(completions) == 0 {
		t.Fatal("waiter never fired")
	}
	// Data-ready time is the DRAM latency.
	if completions[0] < dram.DefaultConfig().LatencyCycles {
		t.Fatalf("completed at %d, before DRAM latency", completions[0])
	}
}

func TestEngineMetaTrafficFlowsThroughDRAM(t *testing.T) {
	env := newDramEnv()
	meta := newScriptMeta()
	meta.streams[100] = []uint64{101, 102}
	e := NewEngine(env, meta, DefaultEngineConfig(1))
	e.TriggerMiss(0, 100)
	env.eng.Drain(nil)
	tr := env.mc.Traffic()
	if tr.Accesses[dram.StreamData] != 2 {
		t.Fatalf("stream fetches = %d", tr.Accesses[dram.StreamData])
	}
}

func TestEngineDeterministicUnderDRAM(t *testing.T) {
	run := func() (uint64, uint64) {
		env := newDramEnv()
		meta := newScriptMeta()
		for s := uint64(0); s < 20; s++ {
			stream := make([]uint64, 30)
			for i := range stream {
				stream[i] = 1000*s + uint64(i)
			}
			meta.streams[s] = stream
		}
		e := NewEngine(env, meta, DefaultEngineConfig(2))
		for i := uint64(0); i < 400; i++ {
			core := int(i % 2)
			s := i % 20
			e.TriggerMiss(core, s)
			e.Record(core, s, false)
			for j := uint64(0); j < 5; j++ {
				e.Probe(core, 1000*s+j, nil, 0, 0, 0)
			}
			env.eng.RunUntil(env.eng.Now() + 50)
		}
		env.eng.Drain(nil)
		st := e.Stats()
		return st.FullHits + st.PartialHits, env.mc.Traffic().TotalAccesses()
	}
	h1, t1 := run()
	h2, t2 := run()
	if h1 != h2 || t1 != t2 {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)", h1, t1, h2, t2)
	}
}

// TestEngineRandomOpsInvariants drives the engine with a pseudo-random
// mix of triggers, probes and records and checks structural invariants.
func TestEngineRandomOpsInvariants(t *testing.T) {
	env := newDramEnv()
	meta := newScriptMeta()
	for s := uint64(0); s < 50; s++ {
		stream := make([]uint64, int(7+s%40))
		for i := range stream {
			stream[i] = 10_000*s + uint64(i)
		}
		meta.streams[s] = stream
	}
	cfg := DefaultEngineConfig(4)
	e := NewEngine(env, meta, cfg)

	x := uint64(0x1234)
	next := func(n uint64) uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x % n
	}
	for i := 0; i < 30_000; i++ {
		core := int(next(4))
		switch next(4) {
		case 0:
			e.TriggerMiss(core, next(50))
		case 1:
			s := next(50)
			e.Probe(core, 10_000*s+next(40), nil, 0, 0, 0)
		case 2:
			e.Record(core, next(1_000_000), next(2) == 0)
		case 3:
			env.eng.RunUntil(env.eng.Now() + next(300))
		}
	}
	env.eng.Drain(nil)
	e.Flush()

	st := e.Stats()
	if st.LookupHits > st.Lookups {
		t.Fatal("lookup hits exceed lookups")
	}
	if st.Adopted > st.LookupHits {
		t.Fatal("adoptions exceed lookup hits")
	}
	if st.FullHits+st.PartialHits > st.IssuedPrefetches {
		t.Fatal("hits exceed issued prefetches")
	}
	issued, evicted, _ := e.BufferStats()
	if evicted > issued {
		t.Fatal("evictions exceed insertions")
	}
	for i := range e.core {
		if e.core[i].buf.Len() > cfg.BufferBlocks {
			t.Fatal("buffer overflow")
		}
	}
}
