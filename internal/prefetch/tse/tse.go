// Package tse models the Temporal Streaming Engine (Wenisch et al.,
// ISCA'05) as a traffic/latency comparator for Figure 1 (right).
//
// TSE is a split-table temporal streaming design like STMS, but its
// main-memory meta-data lacks the paper's two optimizations:
//
//   - lookups walk coherence-embedded structures costing three memory
//     round-trips per lookup instead of STMS's two (§3, §5.4);
//   - every off-chip miss and prefetched hit updates the index —
//     "slightly over one memory access per update" with no sampling (§3).
//
// Functionally it stores the same split index/history meta-data, so its
// coverage tracks idealized TMS; only latency and bandwidth differ. The
// implementation therefore wraps the idealized backend for storage and
// charges TSE's published access counts against the Env.
package tse

import (
	"stms/internal/dram"
	"stms/internal/prefetch"
	"stms/internal/prefetch/ghb"
)

// Config sizes the TSE comparator.
type Config struct {
	Cores int
	// HistoryEntries is the per-core history capacity.
	HistoryEntries uint64
	// LookupReads is the memory round-trips per index lookup (3).
	LookupReads int
}

// DefaultConfig returns the published TSE cost model.
func DefaultConfig(cores int) Config {
	return Config{Cores: cores, HistoryEntries: 1 << 21, LookupReads: 3}
}

// Meta implements prefetch.Metadata with TSE's costs.
type Meta struct {
	cfg   Config
	env   prefetch.Env
	inner *ghb.Meta
	wc    []int

	// Stats.
	Lookups       uint64
	HistoryReads  uint64
	UpdateWrites  uint64
	HistoryWrites uint64
}

var _ prefetch.Metadata = (*Meta)(nil)

// NewMeta builds the TSE meta-data model over env.
func NewMeta(env prefetch.Env, cfg Config) *Meta {
	if cfg.Cores <= 0 {
		cfg.Cores = 1
	}
	if cfg.LookupReads <= 0 {
		cfg.LookupReads = 3
	}
	if cfg.HistoryEntries == 0 {
		cfg.HistoryEntries = 1 << 21
	}
	return &Meta{
		cfg: cfg,
		env: env,
		inner: ghb.New(ghb.Config{
			Cores:          cfg.Cores,
			HistoryEntries: cfg.HistoryEntries,
		}),
		wc: make([]int, cfg.Cores),
	}
}

// New builds the complete TSE comparator (meta-data + stream engine).
func New(env prefetch.Env, cfg Config, ecfg prefetch.EngineConfig) (*prefetch.Engine, *Meta) {
	m := NewMeta(env, cfg)
	return prefetch.NewEngine(env, m, ecfg), m
}

// Name identifies the backend.
func (m *Meta) Name() string { return "tse" }

// Lookup chains LookupReads dependent memory reads, then resolves. As in
// STMS, the pointer is captured at issue time, before the triggering miss
// itself is recorded. The inner backend's cursor is per-Meta scratch, so
// it is copied before the simulated round-trips.
func (m *Meta) Lookup(core int, blk uint64, done func(*prefetch.Cursor)) {
	m.Lookups++
	var curv prefetch.Cursor
	found := false
	if c := m.inner.LookupSync(core, blk); c != nil {
		curv, found = *c, true
	}
	remaining := m.cfg.LookupReads
	var step func(uint64)
	step = func(uint64) {
		remaining--
		if remaining > 0 {
			m.env.MetaRead(dram.IndexLookup, step)
			return
		}
		if found {
			done(&curv)
		} else {
			done(nil)
		}
	}
	m.env.MetaRead(dram.IndexLookup, step)
}

// ReadNext reads one history line per memory access, like any split-table
// design. The cursor position is captured at call time per the Metadata
// contract (the caller may retarget its cursor while the read is in
// flight).
func (m *Meta) ReadNext(cur *prefetch.Cursor, max int, done func(addrs, positions []uint64, marked bool, markAddr uint64)) {
	if cur.Pos >= m.inner.History(cur.Core).Head() {
		done(nil, nil, false, 0)
		return
	}
	m.HistoryReads++
	snap := *cur
	m.env.MetaRead(dram.HistoryRead, func(uint64) {
		done(m.inner.ReadNextSync(&snap, max))
	})
}

// SkipMark advances past an end annotation.
func (m *Meta) SkipMark(cur *prefetch.Cursor) { m.inner.SkipMark(cur) }

// Record appends to the history (packed line writes) and performs an
// unsampled index update costing about one memory access (§3).
func (m *Meta) Record(core int, blk uint64, prefetchHit bool) {
	m.inner.Record(core, blk, prefetchHit)
	m.wc[core]++
	if m.wc[core] >= prefetch.LineEntries {
		m.wc[core] = 0
		m.HistoryWrites++
		m.env.MetaWrite(dram.HistoryAppend)
	}
	m.UpdateWrites++
	m.env.MetaWrite(dram.IndexUpdateWr)
}

// MarkEnd annotates end-of-stream; TSE's mechanism also writes meta-data.
func (m *Meta) MarkEnd(core int, pos uint64) {
	m.inner.MarkEnd(core, pos)
	m.env.MetaWrite(dram.EndMarkWrite)
}
