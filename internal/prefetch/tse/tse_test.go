package tse

import (
	"testing"

	"stms/internal/dram"
	"stms/internal/event"
	"stms/internal/prefetch"
)

type env struct {
	reads  map[dram.Class]int
	writes map[dram.Class]int
}

func newEnv() *env {
	return &env{reads: map[dram.Class]int{}, writes: map[dram.Class]int{}}
}

func (e *env) Now() uint64 { return 0 }

func (e *env) MetaRead(c dram.Class, done func(uint64)) {
	e.reads[c]++
	if done != nil {
		done(0)
	}
}

func (e *env) MetaReadH(c dram.Class, h event.Handler, kind uint8, a, b uint64) {
	e.reads[c]++
	h.Handle(0, kind, a, b)
}

func (e *env) MetaWrite(c dram.Class) { e.writes[c]++ }

func (e *env) OnChip(int, uint64) bool { return false }

func (e *env) Fetch(core int, blk uint64, done func(uint64)) {
	if done != nil {
		done(0)
	}
}

func (e *env) FetchH(core int, blk uint64, h event.Handler, kind uint8, a, b uint64) {
	h.Handle(0, kind, a, b)
}

func TestLookupCostsThreeReads(t *testing.T) {
	e := newEnv()
	m := NewMeta(e, DefaultConfig(1))
	var got *prefetch.Cursor
	m.Lookup(0, 42, func(c *prefetch.Cursor) { got = c })
	if got != nil {
		t.Fatal("unknown block found")
	}
	if e.reads[dram.IndexLookup] != 3 {
		t.Fatalf("lookup reads = %d, want 3", e.reads[dram.IndexLookup])
	}
}

func TestUpdatePerRecord(t *testing.T) {
	e := newEnv()
	m := NewMeta(e, DefaultConfig(1))
	for i := uint64(0); i < 24; i++ {
		m.Record(0, i, false)
	}
	if e.writes[dram.IndexUpdateWr] != 24 {
		t.Fatalf("update writes = %d, want 24 (unsampled)", e.writes[dram.IndexUpdateWr])
	}
	if e.writes[dram.HistoryAppend] != 2 {
		t.Fatalf("history appends = %d, want 2", e.writes[dram.HistoryAppend])
	}
}

func TestStreamResolution(t *testing.T) {
	e := newEnv()
	m := NewMeta(e, DefaultConfig(1))
	for _, b := range []uint64{1, 2, 3, 4} {
		m.Record(0, b, false)
	}
	var cur *prefetch.Cursor
	m.Lookup(0, 1, func(c *prefetch.Cursor) { cur = c })
	if cur == nil {
		t.Fatal("recorded stream not found")
	}
	var addrs []uint64
	m.ReadNext(cur, 12, func(a, p []uint64, mk bool, ma uint64) { addrs = a })
	if len(addrs) != 3 || addrs[0] != 2 {
		t.Fatalf("successors = %v", addrs)
	}
	if e.reads[dram.HistoryRead] != 1 {
		t.Fatalf("history reads = %d", e.reads[dram.HistoryRead])
	}
}

func TestEndToEndCoverage(t *testing.T) {
	e := newEnv()
	eng, _ := New(e, DefaultConfig(1), prefetch.DefaultEngineConfig(1))
	seq := make([]uint64, 40)
	for i := range seq {
		seq[i] = uint64(900 + i*5)
	}
	for _, b := range seq {
		eng.TriggerMiss(0, b)
		eng.Record(0, b, false)
	}
	eng.TriggerMiss(0, seq[0])
	eng.Record(0, seq[0], false)
	covered := 0
	for _, b := range seq[1:] {
		if res := eng.Probe(0, b, nil, 0, 0, 0); res.State == prefetch.ProbeReady {
			covered++
			eng.Record(0, b, true)
		} else {
			eng.TriggerMiss(0, b)
			eng.Record(0, b, false)
		}
	}
	if covered < 30 {
		t.Fatalf("covered %d of 39", covered)
	}
}
