package lab

import (
	"context"
	"strings"
	"testing"

	"stms/internal/sim"
	"stms/internal/trace"
)

func testLab(t *testing.T, opts ...Option) *Lab {
	t.Helper()
	opts = append([]Option{
		WithScale(0.0625),
		WithSeed(1),
		WithWindows(1_000, 2_000),
		WithParallelism(2),
	}, opts...)
	l, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestAutoLabelsDistinct(t *testing.T) {
	labels := autoLabels([]sim.PrefSpec{
		{Kind: sim.STMS},
		{Kind: sim.STMS},
		{Kind: sim.STMS, SampleProb: 0.125},
		{Kind: sim.Ideal, MaxDepth: 4},
		{Kind: sim.Ideal, HistoryEntries: 64, IndexEntries: 128},
	})
	seen := map[string]bool{}
	for _, l := range labels {
		if seen[l] {
			t.Fatalf("duplicate label %q in %v", l, labels)
		}
		seen[l] = true
	}
	if labels[2] != "stms@p=0.125" {
		t.Fatalf("sampling label = %q", labels[2])
	}
	if !strings.Contains(labels[3], "d=4") {
		t.Fatalf("depth label = %q", labels[3])
	}
}

func TestCellKeyDistinguishesConfigs(t *testing.T) {
	l := testLab(t)
	spec, err := trace.ByName("web-apache")
	if err != nil {
		t.Fatal(err)
	}
	base := Cell{Spec: spec, Pref: sim.PrefSpec{Kind: sim.STMS}, Config: l.base}
	variants := []func(*Cell){
		func(c *Cell) { c.Mode = Functional },
		func(c *Cell) { c.Config.Seed++ },
		func(c *Cell) { c.Config.Scale = 0.125 },
		func(c *Cell) { c.Config.MeasureRecords++ },
		func(c *Cell) { c.Pref.SampleProb = 0.5 },
		func(c *Cell) { c.Pref.Kind = sim.Ideal },
		func(c *Cell) { c.Spec.DirtyFrac += 0.01 },
	}
	k0 := cellKey(&base)
	for i, mutate := range variants {
		c := base
		mutate(&c)
		if cellKey(&c) == k0 {
			t.Errorf("variant %d not distinguished by cellKey", i)
		}
	}
}

func TestPlanSpecsCustomWorkload(t *testing.T) {
	l := testLab(t)
	// Sized so the scaled per-core iteration stream (96k × 0.0625 = 6k
	// blocks) overflows the scaled shared L2 and actually misses; windows
	// long enough to record one full iteration and replay the next.
	custom := trace.Spec{
		Name: "custom-iter", Class: trace.Sci,
		IterStream: true, IterLen: 96_000,
		ReplayMin: 1.0,
		GapInstrs: 200, GapWork: 220, MemInstrs: 10, MemWork: 5,
		BurstMean: 2, BurstMax: 4, HotBlocks: 8,
	}
	p := l.PlanSpecs([]trace.Spec{custom}, []sim.PrefSpec{{Kind: sim.STMS}},
		ForEachCell(func(c *Cell) {
			c.Config.WarmRecords = 12_000
			c.Config.MeasureRecords = 12_000
		}))
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	m, err := l.Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	cell := m.Get("custom-iter", "stms")
	if cell == nil || cell.Res == nil {
		t.Fatal("custom workload cell missing")
	}
	if cell.Res.Coverage() <= 0 {
		t.Fatal("iteration workload should be highly coverable")
	}

	// Invalid specs are plan errors.
	if l.PlanSpecs([]trace.Spec{{Name: "broken"}}, []sim.PrefSpec{{Kind: sim.None}}).Err() == nil {
		t.Fatal("invalid spec accepted")
	}
	if l.PlanSpecs(nil, []sim.PrefSpec{{Kind: sim.None}}).Err() == nil {
		t.Fatal("empty plan accepted")
	}
}

func TestCellFailureIsContained(t *testing.T) {
	var failed int
	l := testLab(t, WithProgress(func(ev ResultEvent) {
		if ev.Kind == CellFailed {
			failed++
		}
	}))
	// Break exactly one cell's config; its sibling must still run.
	p := l.Plan([]string{"web-apache", "web-zeus"}, []sim.PrefSpec{{Kind: sim.None}},
		ForEachCell(func(c *Cell) {
			if c.Workload == "web-zeus" {
				c.Config.MeasureRecords = 0 // invalid: empty window
			}
		}))
	m, err := l.Run(context.Background(), p)
	if err == nil {
		t.Fatal("Run hid the failed cell")
	}
	if m == nil {
		t.Fatal("Run withheld the partial matrix")
	}
	if m.Err() == nil {
		t.Fatal("matrix hides the failed cell")
	}
	if failed != 1 {
		t.Fatalf("failed events = %d, want 1", failed)
	}
	if good := m.Get("web-apache", "baseline"); good == nil || good.Res == nil {
		t.Fatal("healthy sibling cell did not run")
	}
	if bad := m.Get("web-zeus", "baseline"); bad.Res != nil || bad.Err == nil {
		t.Fatal("failed cell not recorded as failed")
	}
	if m.Complete() {
		t.Fatal("matrix with failed cell reports complete")
	}
}

func TestDuplicateCellsSimulateOnce(t *testing.T) {
	var started int
	l := testLab(t, WithProgress(func(ev ResultEvent) {
		if ev.Kind == CellStarted {
			started++
		}
	}))
	// Two identical ideal columns plus a distinct baseline: the
	// duplicates must collapse onto one simulation but both report.
	m, err := l.Run(context.Background(), l.Plan([]string{"web-apache"},
		[]sim.PrefSpec{{Kind: sim.Ideal}, {Kind: sim.None}, {Kind: sim.Ideal}}))
	if err != nil {
		t.Fatal(err)
	}
	if started != 2 {
		t.Fatalf("started %d simulations, want 2 (duplicate not collapsed)", started)
	}
	if !m.Complete() {
		t.Fatal("duplicate cell missing its shared result")
	}
	if m.At(0, 0).Res != m.At(0, 2).Res {
		t.Fatal("duplicate cells do not share one result")
	}
}

func TestMatrixAccessors(t *testing.T) {
	l := testLab(t)
	m, err := l.Run(context.Background(),
		l.Plan([]string{"sci-em3d"}, []sim.PrefSpec{{Kind: sim.None}, {Kind: sim.Ideal}}))
	if err != nil {
		t.Fatal(err)
	}
	if m.Get("sci-em3d", "ideal") == nil {
		t.Fatal("Get by label failed")
	}
	if m.Get("nope", "ideal") != nil || m.Get("sci-em3d", "nope") != nil {
		t.Fatal("Get invented a cell")
	}
	if got := len(m.Row(0)); got != 2 {
		t.Fatalf("row length = %d", got)
	}
	if m.Row(5) != nil || m.At(-1, 0) != nil {
		t.Fatal("out-of-range access not nil")
	}
	if _, err := m.Speedups("nope"); err == nil {
		t.Fatal("Speedups accepted unknown baseline")
	}
	spd, err := m.Speedups("baseline")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := spd["ideal"]["sci-em3d"]; !ok {
		t.Fatalf("speedup series missing: %+v", spd)
	}
}

func TestTapeCacheSharesTraces(t *testing.T) {
	l := testLab(t)
	// 2 workloads × 3 variants: six cells, two trace identities. The
	// variant cells of a row must share one tape build.
	m, err := l.Run(context.Background(), l.Plan(
		[]string{"web-apache", "oltp-db2"},
		[]sim.PrefSpec{{Kind: sim.None}, {Kind: sim.Ideal}, {Kind: sim.STMS}}))
	if err != nil {
		t.Fatal(err)
	}
	if !m.Complete() {
		t.Fatal("incomplete matrix")
	}
	st := l.TapeStats()
	if st.Builds != 2 || st.Misses != 2 {
		t.Fatalf("builds/misses = %d/%d, want 2/2", st.Builds, st.Misses)
	}
	if st.Hits != 4 {
		t.Fatalf("hits = %d, want 4", st.Hits)
	}
	if st.BytesInUse <= 0 {
		t.Fatalf("bytes in use = %d", st.BytesInUse)
	}
	if st.Generate <= 0 || st.Simulate <= 0 {
		t.Fatalf("wall-time split missing: generate %v, simulate %v", st.Generate, st.Simulate)
	}

	// A functional-mode plan over the same workload reuses the tape:
	// trace identity is independent of the driver.
	if _, err := l.Run(context.Background(), l.Plan(
		[]string{"web-apache"}, []sim.PrefSpec{{Kind: sim.Ideal}}, InMode(Functional))); err != nil {
		t.Fatal(err)
	}
	if st := l.TapeStats(); st.Builds != 2 {
		t.Fatalf("functional cell rebuilt a cached tape: %d builds", st.Builds)
	}

	// Different seeds are different identities.
	if _, err := l.Run(context.Background(), l.Plan(
		[]string{"web-apache"}, []sim.PrefSpec{{Kind: sim.Ideal}},
		WithRowSeed(func(string, int) uint64 { return 777 }))); err != nil {
		t.Fatal(err)
	}
	if st := l.TapeStats(); st.Builds != 3 {
		t.Fatalf("seed change did not build a new tape: %d builds", st.Builds)
	}
}

func TestTapeCacheEviction(t *testing.T) {
	// A 1-byte budget can hold nothing: every identity evicts the last.
	l := testLab(t, WithTapeCache(1))
	_, err := l.Run(context.Background(), l.Plan(
		[]string{"web-apache", "web-zeus", "oltp-db2"}, []sim.PrefSpec{{Kind: sim.None}}))
	if err != nil {
		t.Fatal(err)
	}
	st := l.TapeStats()
	if st.Builds != 3 {
		t.Fatalf("builds = %d, want 3", st.Builds)
	}
	if st.Evictions < 2 {
		t.Fatalf("evictions = %d, want >= 2 from a 1-byte budget", st.Evictions)
	}
}

func TestTapeCacheDisabled(t *testing.T) {
	live := testLab(t, WithTapeCache(0))
	taped := testLab(t)
	plan := []string{"sci-ocean"}
	prefs := []sim.PrefSpec{{Kind: sim.STMS}}
	a, err := live.Run(context.Background(), live.Plan(plan, prefs))
	if err != nil {
		t.Fatal(err)
	}
	if st := live.TapeStats(); st.Builds != 0 || st.Hits != 0 || st.Generate != 0 {
		t.Fatalf("disabled cache reports activity: %+v", st)
	}
	b, err := taped.Run(context.Background(), taped.Plan(plan, prefs))
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := a.At(0, 0).Res, b.At(0, 0).Res
	if ra == nil || rb == nil || ra.Records != rb.Records || ra.IPC != rb.IPC ||
		ra.CoveredFull != rb.CoveredFull || ra.Traffic != rb.Traffic {
		t.Fatal("tape-backed and live cells disagree")
	}

	if _, err := New(WithTapeCache(-1)); err == nil {
		t.Fatal("negative tape budget accepted")
	}
}

func TestEventStreamOrdering(t *testing.T) {
	type rec struct {
		kind EventKind
		done int
	}
	var events []rec
	l := testLab(t, WithProgress(func(ev ResultEvent) {
		events = append(events, rec{ev.Kind, ev.Done})
	}))
	m, err := l.Run(context.Background(),
		l.Plan([]string{"web-apache", "oltp-db2"}, []sim.PrefSpec{{Kind: sim.None}}))
	if err != nil {
		t.Fatal(err)
	}
	if !m.Complete() {
		t.Fatal("incomplete matrix")
	}
	var starts, finishes, lastDone int
	for _, ev := range events {
		switch ev.kind {
		case CellStarted:
			starts++
		case CellFinished:
			finishes++
			if ev.done <= lastDone {
				t.Fatalf("Done counter not monotonic: %+v", events)
			}
			lastDone = ev.done
		}
	}
	if starts != 2 || finishes != 2 {
		t.Fatalf("events = %d starts, %d finishes, want 2/2", starts, finishes)
	}
	if lastDone != 2 {
		t.Fatalf("final Done = %d, want 2", lastDone)
	}
}
