package lab

// The session tape cache: run-matrix cells that share a trace identity
// — (scaled spec, seed, cores, records per core) — replay one columnar
// trace.Tape instead of re-deriving the record stream per variant. A
// Fig. 8-style matrix of 8 workloads × N variants materializes 8 tapes,
// and the baseline/ideal/stms cells of a row replay the same memory.
//
// The cache is bounded (LRU by tape footprint) and singleflight-guarded:
// concurrent cells wanting the same identity wait for one build instead
// of duplicating it. Eviction only drops the cache's reference — cells
// still replaying an evicted tape keep it alive; a later cell with the
// same identity rebuilds it deterministically.

import (
	"container/list"
	"context"
	"fmt"
	"time"

	"stms/internal/trace"
)

// tapeKey is a trace identity. trace.Spec is a flat comparable struct,
// so spec keys work directly as map keys — no string marshalling;
// scenario rows (whose phase lists cannot be comparable) carry their
// canonical Scenario.Key instead, with a zero spec.
type tapeKey struct {
	spec     trace.Spec // scaled spec (Config.Scale already applied)
	scenario string     // scaled Scenario.Key(); "" for plain specs
	seed     uint64
	cores    int
	perCore  uint64
}

type tapeEntry struct {
	key   tapeKey
	ready chan struct{} // closed when tape/err is set
	tape  *trace.Tape
	err   error
	elem  *list.Element
}

// tapeCache is the bounded, singleflight-guarded tape store. All fields
// are guarded by the Lab mutex that owns the cache.
type tapeCache struct {
	maxBytes int64
	bytes    int64
	entries  map[tapeKey]*tapeEntry
	lru      *list.List // front = most recently used

	hits, misses, builds, evictions uint64
	buildTime                       time.Duration
}

// defaultTapeCacheBytes bounds the cache when WithTapeCache is not
// given: comfortably above a full paper matrix (a 200k-records/core ×
// 4-core tape encodes to ~7 MB) without threatening small machines.
const defaultTapeCacheBytes = 512 << 20

func newTapeCache(maxBytes int64) *tapeCache {
	return &tapeCache{
		maxBytes: maxBytes,
		entries:  make(map[tapeKey]*tapeEntry),
		lru:      list.New(),
	}
}

// tapeFor returns the tape for key, materializing it with build (at
// most once per identity, however many cells wait) on a miss. Waiters
// honour ctx; the builder itself runs to completion so siblings are
// never abandoned mid-build.
func (l *Lab) tapeFor(ctx context.Context, key tapeKey, build func() *trace.Tape) (*trace.Tape, error) {
	l.mu.Lock()
	c := l.tapes
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.lru.MoveToFront(e.elem)
		l.mu.Unlock()
		select {
		case <-e.ready:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return e.tape, e.err
	}
	c.misses++
	e := &tapeEntry{key: key, ready: make(chan struct{})}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	l.mu.Unlock()

	start := time.Now()
	func() {
		defer func() {
			// The substrate panics on invariant breaks (invalid specs):
			// convert to an error so every waiter fails like the builder,
			// then drop the broken entry so a fixed plan can retry.
			if r := recover(); r != nil {
				name := key.spec.Name
				if name == "" {
					name = "scenario"
				}
				e.err = fmt.Errorf("lab: tape build for %s panicked: %v", name, r)
			}
			close(e.ready)
		}()
		e.tape = build()
	}()
	elapsed := time.Since(start)

	l.mu.Lock()
	defer l.mu.Unlock()
	c.builds++
	c.buildTime += elapsed
	if e.err != nil {
		c.lru.Remove(e.elem)
		delete(c.entries, key)
		return nil, e.err
	}
	c.bytes += e.tape.Bytes()
	// Evict least-recently-used completed tapes over budget; never the
	// entry just built (a cell is about to replay it) or in-flight
	// builds (their builders adjust accounting when they finish).
	for c.bytes > c.maxBytes {
		back := c.lru.Back()
		if back == nil {
			break
		}
		v := back.Value.(*tapeEntry)
		if v == e {
			break
		}
		select {
		case <-v.ready:
		default:
			// Still building; it carries no accounted bytes yet. Skip by
			// bumping it forward so the scan can terminate.
			c.lru.MoveToFront(back)
			continue
		}
		c.lru.Remove(back)
		delete(c.entries, v.key)
		if v.tape != nil {
			c.bytes -= v.tape.Bytes()
		}
		c.evictions++
	}
	return e.tape, nil
}

// TapeStats reports the session's tape-cache and wall-time accounting.
type TapeStats struct {
	Hits       uint64 // cells served an existing (or in-flight) tape
	Misses     uint64 // cells that initiated a build
	Builds     uint64 // completed builds (including failed ones)
	Evictions  uint64 // tapes dropped by the byte budget
	BytesInUse int64  // current accounted tape footprint

	// Generate is cumulative tape-build wall time; Simulate is
	// cumulative cell simulation wall time excluding tape access. The
	// pair splits a run's cost into "materialize the workload once" vs
	// "simulate the system", the trajectory stms-bench records.
	Generate time.Duration
	Simulate time.Duration
}

// TapeStats returns a snapshot of the session's tape accounting. A lab
// created with tape caching disabled reports zeroes except Simulate.
func (l *Lab) TapeStats() TapeStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := TapeStats{Simulate: time.Duration(l.simNS)}
	if l.tapes != nil {
		c := l.tapes
		s.Hits, s.Misses, s.Builds, s.Evictions = c.hits, c.misses, c.builds, c.evictions
		s.BytesInUse = c.bytes
		s.Generate = c.buildTime
	}
	return s
}
