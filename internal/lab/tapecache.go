package lab

// The session tape store: run-matrix cells that share a trace identity
// — (scaled spec or scenario, seed, cores, records per core) — replay
// one columnar trace.Tape instead of re-deriving the record stream per
// variant. A Fig. 8-style matrix of 8 workloads × N variants
// materializes 8 tapes, and the baseline/ideal/stms cells of a row
// replay the same memory.
//
// The store itself is dist.Store — the content-addressed two-tier
// (memory LRU → on-disk STMSTAPE directory) store the distributed
// lab's workers share — so a session given WithTapeDir persists its
// tapes across process restarts and alongside any worker pointed at
// the same directory. Identities are hashed by dist.TapeKey, the same
// address a worker computes for the same cell, fleet-wide.

import (
	"sync/atomic"
	"time"
)

// defaultTapeCacheBytes bounds the memory tier when WithTapeCache is
// not given: comfortably above a full paper matrix (a 200k-records/core
// × 4-core tape encodes to ~7 MB) without threatening small machines.
const defaultTapeCacheBytes = 512 << 20

// TapeStats reports the session's tape-store and wall-time accounting.
type TapeStats struct {
	Hits       uint64 // cells served an existing (or in-flight) tape
	Misses     uint64 // cells that initiated a resolution
	Builds     uint64 // completed builds (including failed ones)
	Evictions  uint64 // tapes dropped by the memory byte budget
	DiskHits   uint64 // resolutions served by the on-disk tier
	BytesInUse int64  // current memory-tier tape footprint

	// Generate is cumulative tape-build wall time; Simulate is
	// cumulative cell simulation wall time excluding tape access. The
	// pair splits a run's cost into "materialize the workload once" vs
	// "simulate the system", the trajectory stms-bench records.
	Generate time.Duration
	Simulate time.Duration
}

// TapeStats returns a snapshot of the session's tape accounting. A lab
// created with tape caching disabled reports zeroes except Simulate.
func (l *Lab) TapeStats() TapeStats {
	s := TapeStats{Simulate: time.Duration(atomic.LoadInt64(&l.simNS))}
	if l.tapes != nil {
		st := l.tapes.Stats()
		s.Hits, s.Misses, s.Builds, s.Evictions = st.Hits, st.Misses, st.Builds, st.Evictions
		s.DiskHits = st.DiskHits
		s.BytesInUse = st.BytesInUse
		s.Generate = st.BuildTime
	}
	return s
}
