package lab

import (
	"fmt"

	"stms/internal/sim"
	"stms/internal/trace"
)

// Mode selects the simulation driver for a plan's cells.
type Mode int

// Drivers: the cycle-level timed simulation (speedups, traffic) and the
// fast zero-latency functional driver (coverage sweeps).
const (
	Timed Mode = iota
	Functional
)

// String names the mode.
func (m Mode) String() string {
	if m == Functional {
		return "functional"
	}
	return "timed"
}

// Cell is one unit of work in a plan: a workload — a stationary spec or
// a phase-structured scenario — under a prefetcher variant, with its
// fully resolved system configuration. Rows index workloads, columns
// index variants.
type Cell struct {
	Row, Col int
	Workload string     // display name (Spec.Name unless overridden)
	Label    string     // column label (variant name unless overridden)
	Spec     trace.Spec // full-scale workload spec; Config.Scale applies at run
	Pref     sim.PrefSpec
	Mode     Mode
	Config   sim.Config // per-cell system config (seed, scale, windows, ...)

	// Sampling, when Windows > 1 on a timed cell, runs the cell as a
	// K-window sampled simulation (see WithSampling); the zero value
	// means an exact serial run.
	Sampling sim.Sampling

	// Scenario, when non-nil, replaces Spec as the cell's workload: the
	// cell simulates the phase-structured scenario (full-scale;
	// Config.Scale applies at run) and its Results carry per-phase
	// windows. Spec is zero-valued for scenario cells.
	Scenario *trace.Scenario
}

// RunPlan is an executable workload × variant cross-product. Build one
// with Lab.Plan or Lab.PlanSpecs; construction errors surface from
// Err() and from Lab.Run.
type RunPlan struct {
	Workloads []string // row labels, in order
	Labels    []string // column labels, in order
	Cells     []Cell   // row-major
	err       error
}

// Err reports plan-construction errors (unknown workload names, invalid
// specs, shape mismatches).
func (p *RunPlan) Err() error { return p.err }

// Size returns the plan's matrix shape.
func (p *RunPlan) Size() (rows, cols int) { return len(p.Workloads), len(p.Labels) }

// PlanOption adjusts how a plan is built.
type PlanOption func(*planner)

type planner struct {
	mode    Mode
	labels  []string
	rowSeed func(workload string, row int) uint64
	mutate  func(*Cell)
}

// InMode selects the simulation driver for every cell (default Timed).
func InMode(m Mode) PlanOption {
	return func(p *planner) { p.mode = m }
}

// WithLabels overrides the auto-derived column labels. The number of
// labels must match the number of prefetcher specs.
func WithLabels(labels ...string) PlanOption {
	return func(p *planner) { p.labels = labels }
}

// WithRowSeed derives a per-workload seed (default: every cell inherits
// the session seed, keeping variant columns matched-pair comparable).
// The derivation must be deterministic for reproducible matrices; cells
// in the same row always share a seed so their traces stay identical
// across variants.
func WithRowSeed(fn func(workload string, row int) uint64) PlanOption {
	return func(p *planner) { p.rowSeed = fn }
}

// ForEachCell applies a final per-cell override hook — the escape hatch
// for irregular matrices (per-cell windows, config tweaks). It runs
// after all other options have resolved the cell.
func ForEachCell(fn func(*Cell)) PlanOption {
	return func(p *planner) { p.mutate = fn }
}

// planRow is one resolved plan row: a stationary spec or a scenario.
type planRow struct {
	name string
	spec trace.Spec
	scn  *trace.Scenario
}

// Plan builds a run matrix from named workloads crossed with prefetcher
// variants. Names resolve against the Table 1 workload specs first,
// then the built-in scenario suite, so stationary and phase-structured
// rows mix freely in one matrix. Unknown names are reported by the
// plan's Err and by Run.
func (l *Lab) Plan(workloads []string, prefs []sim.PrefSpec, opts ...PlanOption) *RunPlan {
	rows := make([]planRow, 0, len(workloads))
	for _, w := range workloads {
		if spec, err := trace.ByName(w); err == nil {
			rows = append(rows, planRow{name: spec.Name, spec: spec})
			continue
		}
		scn, err := trace.ScenarioByName(w)
		if err != nil {
			return &RunPlan{err: trace.UnknownNameError(w)}
		}
		s := scn
		rows = append(rows, planRow{name: scn.Name, scn: &s})
	}
	return l.plan(rows, prefs, opts...)
}

// PlanSpecs builds a run matrix from explicit workload specs (custom
// synthetic workloads) crossed with prefetcher variants.
func (l *Lab) PlanSpecs(specs []trace.Spec, prefs []sim.PrefSpec, opts ...PlanOption) *RunPlan {
	rows := make([]planRow, len(specs))
	for i, spec := range specs {
		rows[i] = planRow{name: spec.Name, spec: spec}
	}
	return l.plan(rows, prefs, opts...)
}

// PlanScenarios builds a run matrix from explicit phase-structured
// scenarios crossed with prefetcher variants: the scenario-diversity
// counterpart of PlanSpecs. Every cell's Results carry per-phase stat
// windows; cells sharing a scenario identity share one materialized
// tape through the session cache, exactly as spec rows do.
func (l *Lab) PlanScenarios(scns []trace.Scenario, prefs []sim.PrefSpec, opts ...PlanOption) *RunPlan {
	rows := make([]planRow, len(scns))
	for i := range scns {
		s := scns[i]
		rows[i] = planRow{name: s.Name, scn: &s}
	}
	return l.plan(rows, prefs, opts...)
}

// plan crosses resolved rows with prefetcher variants.
func (l *Lab) plan(rows []planRow, prefs []sim.PrefSpec, opts ...PlanOption) *RunPlan {
	pl := planner{}
	for _, opt := range opts {
		if opt != nil {
			opt(&pl)
		}
	}
	if len(rows) == 0 || len(prefs) == 0 {
		return &RunPlan{err: fmt.Errorf("lab: empty plan (%d workloads × %d variants)", len(rows), len(prefs))}
	}
	labels := pl.labels
	if labels == nil {
		labels = autoLabels(prefs)
	} else if len(labels) != len(prefs) {
		return &RunPlan{err: fmt.Errorf("lab: %d labels for %d variants", len(labels), len(prefs))}
	}
	p := &RunPlan{
		Workloads: make([]string, len(rows)),
		Labels:    labels,
		Cells:     make([]Cell, 0, len(rows)*len(prefs)),
	}
	for row, r := range rows {
		if r.scn != nil {
			if err := r.scn.Validate(); err != nil {
				return &RunPlan{err: err}
			}
		} else if err := r.spec.Validate(); err != nil {
			return &RunPlan{err: err}
		}
		p.Workloads[row] = r.name
		cfg := l.base
		if pl.rowSeed != nil {
			cfg.Seed = pl.rowSeed(r.name, row)
		}
		for col, ps := range prefs {
			c := Cell{
				Row: row, Col: col,
				Workload: r.name,
				Label:    labels[col],
				Spec:     r.spec,
				Scenario: r.scn,
				Pref:     ps,
				Mode:     pl.mode,
				Config:   cfg,
				Sampling: l.sampling,
			}
			if pl.mutate != nil {
				pl.mutate(&c)
			}
			// Normalize: K <= 1 is an exact run and must memoize as one,
			// and sampling is a timed-driver concept.
			if c.Mode == Functional || c.Sampling.Windows <= 1 {
				c.Sampling = sim.Sampling{}
			}
			p.Cells = append(p.Cells, c)
		}
	}
	return p
}

// autoLabels derives distinct column labels from prefetcher specs: the
// variant name, qualified by whichever knobs differ from defaults, with
// an ordinal suffix if still ambiguous.
func autoLabels(prefs []sim.PrefSpec) []string {
	labels := make([]string, len(prefs))
	seen := make(map[string]int, len(prefs))
	for i, ps := range prefs {
		lbl := ps.Kind.String()
		if ps.SampleProb > 0 {
			lbl += fmt.Sprintf("@p=%g", ps.SampleProb)
		}
		if ps.MaxDepth > 0 {
			lbl += fmt.Sprintf("@d=%d", ps.MaxDepth)
		}
		if ps.HistoryEntries > 0 {
			lbl += fmt.Sprintf("@h=%d", ps.HistoryEntries)
		}
		if ps.IndexEntries > 0 {
			lbl += fmt.Sprintf("@i=%d", ps.IndexEntries)
		}
		if n := seen[lbl]; n > 0 {
			labels[i] = fmt.Sprintf("%s#%d", lbl, n+1)
		} else {
			labels[i] = lbl
		}
		seen[lbl]++
	}
	return labels
}
