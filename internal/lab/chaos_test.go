package lab

// Chaos soak: the distributed lab under a seeded fault schedule —
// refused connections, a stream stalled mid-event, circuit breakers
// tripping — must still produce a canonical matrix export
// byte-identical to an in-process run. Cells are pure functions of
// their configuration, which gives these tests a perfect oracle:
// resilience machinery may change *where* and *when* a cell runs,
// never *what* it computes.

import (
	"bytes"
	"context"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"stms/internal/dist"
)

// fastResilience keeps chaos tests snappy: millisecond backoffs, a
// short stall window, and a breaker cooldown long enough that a tripped
// worker stays out for the rest of the test (deterministic gating).
func fastResilience() Resilience {
	return Resilience{
		Stall:           300 * time.Millisecond,
		RetryRounds:     2,
		BackoffBase:     time.Millisecond,
		BackoffMax:      5 * time.Millisecond,
		BreakerAfter:    2,
		BreakerCooldown: 10 * time.Minute,
		ProbeTimeout:    time.Second,
	}
}

func TestChaosSoakByteIdenticalExport(t *testing.T) {
	urls, _ := testWorkers(t, 2)
	workloads := []string{"sci-em3d", "oltp-db2"}
	prefs := remotePrefs[:2]

	// The fault schedule, deterministic in (seed, rule match counters)
	// with Parallelism(1) fixing the request order:
	//   - the first three POST /jobs are refused: cell 1 fails on both
	//     workers, backs off, fails once more (tripping that worker's
	//     breaker at the second consecutive failure), and lands on the
	//     fourth attempt;
	//   - the fifth POST /jobs delivers 20 bytes and stalls: cell 2's
	//     first live attempt aborts via the stall detector, backs off,
	//     and succeeds on the retry;
	//   - cells 3 and 4 run clean (on whichever workers the breaker
	//     still admits).
	in := dist.NewInjector(42, dist.BaseTransport(dist.Timeouts{}),
		dist.FaultRule{Kind: dist.FaultRefuse, Path: "/jobs", From: 0, Until: 3},
		dist.FaultRule{Kind: dist.FaultStall, Path: "/jobs", From: 4, Until: 5, After: 20},
	)
	var notes []string
	chaos := testLab(t,
		WithWorkers(urls),
		WithParallelism(1),
		WithResilience(fastResilience()),
		WithWorkerTransport(in),
		WithProgress(func(ev ResultEvent) {
			if ev.Note != "" {
				notes = append(notes, ev.Note)
			}
		}),
	)
	cm, err := chaos.Run(context.Background(), chaos.Plan(workloads, prefs))
	if err != nil {
		t.Fatal(err)
	}

	local := testLab(t)
	lm, err := local.Run(context.Background(), local.Plan(workloads, prefs))
	if err != nil {
		t.Fatal(err)
	}

	// The headline claim: canonical exports (wall zeroed — it measures
	// the machine and the injected faults, not the simulated system) are
	// byte-identical however unkind the network was.
	for i := range cm.Cells {
		cm.Cells[i].Wall = 0
		lm.Cells[i].Wall = 0
	}
	var cj, lj bytes.Buffer
	if err := cm.WriteJSON(&cj); err != nil {
		t.Fatal(err)
	}
	if err := lm.WriteJSON(&lj); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cj.Bytes(), lj.Bytes()) {
		t.Fatalf("chaos export differs from local:\nchaos %s\nlocal %s", cj.Bytes(), lj.Bytes())
	}

	// Every cell still completed remotely, and the resilience machinery
	// demonstrably engaged. The counters are exact: the fault sequence
	// is a pure function of (seed, schedule) and Parallelism(1) fixes
	// the request order.
	rs := chaos.RemoteStats()
	if int(rs.RemoteCells) != len(cm.Cells) || rs.LocalCells != 0 {
		t.Fatalf("dispatch stats = %+v, want all %d cells remote", rs, len(cm.Cells))
	}
	if rs.Retries != 4 {
		t.Errorf("retries = %d, want 4 (3 refusals + 1 stall)", rs.Retries)
	}
	if rs.BreakerTrips != 1 {
		t.Errorf("breaker trips = %d, want 1", rs.BreakerTrips)
	}
	if rs.StallAborts != 1 {
		t.Errorf("stall aborts = %d, want 1", rs.StallAborts)
	}
	if rs.BackoffWaits != 2 {
		t.Errorf("backoff waits = %d, want 2", rs.BackoffWaits)
	}
	fired := in.Fired()
	if fired[dist.FaultRefuse] != 3 || fired[dist.FaultStall] != 1 {
		t.Errorf("injector fired %v, want 3 refusals and 1 stall", fired)
	}

	// Satellite: degradation is never silent — the recovered cells'
	// events carry the aggregated per-attempt errors.
	if len(notes) == 0 {
		t.Fatal("no ResultEvent carried a degradation note")
	}
	if !strings.Contains(strings.Join(notes, "\n"), "recovered on") {
		t.Fatalf("notes never mention recovery: %q", notes)
	}
}

func TestChaosFallbackStillExact(t *testing.T) {
	// Refuse everything: every cell degrades to in-process execution,
	// loudly, and the matrix still matches a purely local run.
	urls, _ := testWorkers(t, 2)
	in := dist.NewInjector(7, dist.BaseTransport(dist.Timeouts{}),
		dist.FaultRule{Kind: dist.FaultRefuse, Path: "/jobs"})
	var notes []string
	chaos := testLab(t,
		WithWorkers(urls),
		WithParallelism(1),
		WithResilience(fastResilience()),
		WithWorkerTransport(in),
		WithProgress(func(ev ResultEvent) {
			if ev.Note != "" {
				notes = append(notes, ev.Note)
			}
		}),
	)
	workloads := []string{"sci-em3d"}
	cm, err := chaos.Run(context.Background(), chaos.Plan(workloads, remotePrefs))
	if err != nil {
		t.Fatal(err)
	}
	local := testLab(t)
	lm, err := local.Run(context.Background(), local.Plan(workloads, remotePrefs))
	if err != nil {
		t.Fatal(err)
	}
	for i := range lm.Cells {
		if cm.Cells[i].Res == nil || !reflect.DeepEqual(cm.Cells[i].Res, lm.Cells[i].Res) {
			t.Fatalf("cell %d: degraded result differs from local", i)
		}
	}
	rs := chaos.RemoteStats()
	if rs.RemoteCells != 0 || int(rs.LocalCells) != len(cm.Cells) {
		t.Fatalf("dispatch stats = %+v, want every cell local", rs)
	}
	if rs.BreakerTrips == 0 {
		t.Fatalf("dispatch stats = %+v, want breaker trips under total refusal", rs)
	}
	if len(notes) == 0 || !strings.Contains(notes[0], "degraded to local") {
		t.Fatalf("fallback notes = %q, want explicit degradation", notes)
	}
}

func TestWorkerAuthAtLabLevel(t *testing.T) {
	srv := dist.NewServer(dist.ServerConfig{Name: "locked", Store: dist.NewStore(1<<30, ""), Token: "tok"})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	url := ts.URL
	workloads := []string{"sci-em3d"}

	// Wrong token: a deterministic rejection — the cell fails without
	// burning transport retries or silently degrading to local.
	bad := testLab(t,
		WithWorkers([]string{url}),
		WithWorkerAuth("wrong"),
		WithResilience(fastResilience()),
	)
	m, err := bad.Run(context.Background(), bad.Plan(workloads, remotePrefs[:1]))
	if err == nil {
		t.Fatal("wrong-token run succeeded")
	}
	if m.Cells[0].Err == nil || !strings.Contains(m.Cells[0].Err.Error(), "401") {
		t.Fatalf("cell error = %v, want a 401 rejection", m.Cells[0].Err)
	}
	rs := bad.RemoteStats()
	if rs.Retries != 0 || rs.LocalCells != 0 {
		t.Fatalf("dispatch stats = %+v, want a 401 neither retried nor degraded", rs)
	}

	// Matching token: business as usual.
	good := testLab(t, WithWorkers([]string{url}), WithWorkerAuth("tok"))
	gm, err := good.Run(context.Background(), good.Plan(workloads, remotePrefs[:1]))
	if err != nil {
		t.Fatal(err)
	}
	grs := good.RemoteStats()
	if int(grs.RemoteCells) != len(gm.Cells) || grs.Retries != 0 {
		t.Fatalf("dispatch stats = %+v, want all cells remote with no retries", grs)
	}
}
