package lab

// Chaos soak: the distributed lab under a seeded fault schedule —
// refused connections, a stream stalled mid-event, circuit breakers
// tripping — must still produce a canonical matrix export
// byte-identical to an in-process run. Cells are pure functions of
// their configuration, which gives these tests a perfect oracle:
// resilience machinery may change *where* and *when* a cell runs,
// never *what* it computes.

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"stms/internal/ckpt"
	"stms/internal/dist"
)

// fastResilience keeps chaos tests snappy: millisecond backoffs, a
// short stall window, and a breaker cooldown long enough that a tripped
// worker stays out for the rest of the test (deterministic gating).
func fastResilience() Resilience {
	return Resilience{
		Stall:           300 * time.Millisecond,
		RetryRounds:     2,
		BackoffBase:     time.Millisecond,
		BackoffMax:      5 * time.Millisecond,
		BreakerAfter:    2,
		BreakerCooldown: 10 * time.Minute,
		ProbeTimeout:    time.Second,
	}
}

func TestChaosSoakByteIdenticalExport(t *testing.T) {
	urls, _ := testWorkers(t, 2)
	workloads := []string{"sci-em3d", "oltp-db2"}
	prefs := remotePrefs[:2]

	// The fault schedule, deterministic in (seed, rule match counters)
	// with Parallelism(1) fixing the request order:
	//   - the first three POST /jobs are refused: cell 1 fails on both
	//     workers, backs off, fails once more (tripping that worker's
	//     breaker at the second consecutive failure), and lands on the
	//     fourth attempt;
	//   - the fifth POST /jobs delivers 20 bytes and stalls: cell 2's
	//     first live attempt aborts via the stall detector, backs off,
	//     and succeeds on the retry;
	//   - cells 3 and 4 run clean (on whichever workers the breaker
	//     still admits).
	in := dist.NewInjector(42, dist.BaseTransport(dist.Timeouts{}),
		dist.FaultRule{Kind: dist.FaultRefuse, Path: "/jobs", From: 0, Until: 3},
		dist.FaultRule{Kind: dist.FaultStall, Path: "/jobs", From: 4, Until: 5, After: 20},
	)
	var notes []string
	chaos := testLab(t,
		WithWorkers(urls),
		WithParallelism(1),
		WithResilience(fastResilience()),
		WithWorkerTransport(in),
		WithProgress(func(ev ResultEvent) {
			if ev.Note != "" {
				notes = append(notes, ev.Note)
			}
		}),
	)
	cm, err := chaos.Run(context.Background(), chaos.Plan(workloads, prefs))
	if err != nil {
		t.Fatal(err)
	}

	local := testLab(t)
	lm, err := local.Run(context.Background(), local.Plan(workloads, prefs))
	if err != nil {
		t.Fatal(err)
	}

	// The headline claim: canonical exports (wall zeroed — it measures
	// the machine and the injected faults, not the simulated system) are
	// byte-identical however unkind the network was.
	for i := range cm.Cells {
		cm.Cells[i].Wall = 0
		lm.Cells[i].Wall = 0
	}
	var cj, lj bytes.Buffer
	if err := cm.WriteJSON(&cj); err != nil {
		t.Fatal(err)
	}
	if err := lm.WriteJSON(&lj); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cj.Bytes(), lj.Bytes()) {
		t.Fatalf("chaos export differs from local:\nchaos %s\nlocal %s", cj.Bytes(), lj.Bytes())
	}

	// Every cell still completed remotely, and the resilience machinery
	// demonstrably engaged. The counters are exact: the fault sequence
	// is a pure function of (seed, schedule) and Parallelism(1) fixes
	// the request order.
	rs := chaos.RemoteStats()
	if int(rs.RemoteCells) != len(cm.Cells) || rs.LocalCells != 0 {
		t.Fatalf("dispatch stats = %+v, want all %d cells remote", rs, len(cm.Cells))
	}
	if rs.Retries != 4 {
		t.Errorf("retries = %d, want 4 (3 refusals + 1 stall)", rs.Retries)
	}
	if rs.BreakerTrips != 1 {
		t.Errorf("breaker trips = %d, want 1", rs.BreakerTrips)
	}
	if rs.StallAborts != 1 {
		t.Errorf("stall aborts = %d, want 1", rs.StallAborts)
	}
	if rs.BackoffWaits != 2 {
		t.Errorf("backoff waits = %d, want 2", rs.BackoffWaits)
	}
	fired := in.Fired()
	if fired[dist.FaultRefuse] != 3 || fired[dist.FaultStall] != 1 {
		t.Errorf("injector fired %v, want 3 refusals and 1 stall", fired)
	}

	// Satellite: degradation is never silent — the recovered cells'
	// events carry the aggregated per-attempt errors.
	if len(notes) == 0 {
		t.Fatal("no ResultEvent carried a degradation note")
	}
	if !strings.Contains(strings.Join(notes, "\n"), "recovered on") {
		t.Fatalf("notes never mention recovery: %q", notes)
	}
}

func TestChaosFallbackStillExact(t *testing.T) {
	// Refuse everything: every cell degrades to in-process execution,
	// loudly, and the matrix still matches a purely local run.
	urls, _ := testWorkers(t, 2)
	in := dist.NewInjector(7, dist.BaseTransport(dist.Timeouts{}),
		dist.FaultRule{Kind: dist.FaultRefuse, Path: "/jobs"})
	var notes []string
	chaos := testLab(t,
		WithWorkers(urls),
		WithParallelism(1),
		WithResilience(fastResilience()),
		WithWorkerTransport(in),
		WithProgress(func(ev ResultEvent) {
			if ev.Note != "" {
				notes = append(notes, ev.Note)
			}
		}),
	)
	workloads := []string{"sci-em3d"}
	cm, err := chaos.Run(context.Background(), chaos.Plan(workloads, remotePrefs))
	if err != nil {
		t.Fatal(err)
	}
	local := testLab(t)
	lm, err := local.Run(context.Background(), local.Plan(workloads, remotePrefs))
	if err != nil {
		t.Fatal(err)
	}
	for i := range lm.Cells {
		if cm.Cells[i].Res == nil || !reflect.DeepEqual(cm.Cells[i].Res, lm.Cells[i].Res) {
			t.Fatalf("cell %d: degraded result differs from local", i)
		}
	}
	rs := chaos.RemoteStats()
	if rs.RemoteCells != 0 || int(rs.LocalCells) != len(cm.Cells) {
		t.Fatalf("dispatch stats = %+v, want every cell local", rs)
	}
	if rs.BreakerTrips == 0 {
		t.Fatalf("dispatch stats = %+v, want breaker trips under total refusal", rs)
	}
	if len(notes) == 0 || !strings.Contains(notes[0], "degraded to local") {
		t.Fatalf("fallback notes = %q, want explicit degradation", notes)
	}
}

// ckptWorkers starts n store-backed, checkpointing workers with NO
// peer wiring, so the coordinator's GET/PUT /ckpts exchange is the
// only way a checkpoint can move between them.
func ckptWorkers(t *testing.T, n int, every uint64) ([]string, []*dist.Server) {
	t.Helper()
	servers := make([]*dist.Server, n)
	urls := make([]string, n)
	for i := range servers {
		servers[i] = dist.NewServer(dist.ServerConfig{
			Name:            fmt.Sprintf("ckpt-w%d", i),
			Store:           dist.NewStore(1<<30, ""),
			CheckpointEvery: every,
		})
		ts := httptest.NewServer(servers[i])
		urls[i] = ts.URL
		t.Cleanup(ts.Close)
	}
	return urls, servers
}

func TestChaosKillResumeFromExchangedCheckpoint(t *testing.T) {
	// A worker dies mid-job (its event stream stalls until the detector
	// kills the attempt). The job checkpointed to that worker's store
	// before dying, the workers share no peers — so the only way the
	// retry can run warm is the coordinator exchange: GET the dead
	// worker's latest checkpoint, PUT it to the next-ranked worker, and
	// that attempt resumes mid-run. The recovery must be visible in the
	// counters and invisible in the results.
	urls, _ := ckptWorkers(t, 2, 500)
	workloads := []string{"sci-em3d"}

	in := dist.NewInjector(42, dist.BaseTransport(dist.Timeouts{}),
		dist.FaultRule{Kind: dist.FaultStall, Path: "/jobs", From: 0, Until: 1, After: 20},
	)
	// A wider stall window than fastResilience's: under -race a healthy
	// cell can legitimately go quiet for a few hundred ms, and a
	// spurious abort would break the exact counters below.
	res := fastResilience()
	res.Stall = time.Second
	var notes []string
	chaos := testLab(t,
		WithWorkers(urls),
		WithParallelism(1),
		WithResilience(res),
		WithWorkerTransport(in),
		WithProgress(func(ev ResultEvent) {
			if ev.Note != "" {
				notes = append(notes, ev.Note)
			}
		}),
	)
	cm, err := chaos.Run(context.Background(), chaos.Plan(workloads, remotePrefs))
	if err != nil {
		t.Fatal(err)
	}

	local := testLab(t)
	lm, err := local.Run(context.Background(), local.Plan(workloads, remotePrefs))
	if err != nil {
		t.Fatal(err)
	}

	// The headline claim: the export is byte-identical to a purely local
	// run — resuming mid-cell changed where the records were simulated,
	// never what they computed.
	for i := range cm.Cells {
		cm.Cells[i].Wall = 0
		lm.Cells[i].Wall = 0
	}
	var cj, lj bytes.Buffer
	if err := cm.WriteJSON(&cj); err != nil {
		t.Fatal(err)
	}
	if err := lm.WriteJSON(&lj); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cj.Bytes(), lj.Bytes()) {
		t.Fatalf("kill-resume export differs from local:\nchaos %s\nlocal %s", cj.Bytes(), lj.Bytes())
	}

	rs := chaos.RemoteStats()
	if int(rs.RemoteCells) != len(cm.Cells) || rs.LocalCells != 0 {
		t.Fatalf("dispatch stats = %+v, want all %d cells remote", rs, len(cm.Cells))
	}
	if rs.StallAborts != 1 || rs.Retries != 1 {
		t.Errorf("stalls = %d, retries = %d, want exactly 1 each", rs.StallAborts, rs.Retries)
	}
	if rs.CkptResumes != 1 {
		t.Errorf("checkpoint resumes = %d, want exactly 1 (the killed cell's retry)", rs.CkptResumes)
	}
	if rs.CkptFetches == 0 {
		t.Error("no checkpoint crossed GET /ckpts — the exchange never happened")
	}
	if rs.CkptWrites == 0 || rs.CkptBytes == 0 {
		t.Errorf("checkpoint writes = %d bytes = %d, want checkpointing workers to report both", rs.CkptWrites, rs.CkptBytes)
	}
	if rs.ResumeWall <= 0 {
		t.Errorf("resume wall = %v, want the resumed run's simulation time accounted", rs.ResumeWall)
	}
	if !strings.Contains(strings.Join(notes, "\n"), "resumed from the exchanged checkpoint") {
		t.Fatalf("notes never mention the checkpoint resume: %q", notes)
	}
}

func TestChaosCorruptCheckpointFallsBackCold(t *testing.T) {
	// A checkpoint whose container seals cleanly but whose payload is
	// garbage sits in the worker's store under exactly the cell's
	// address. The worker must discard it and run from scratch — a
	// corrupt checkpoint can cost a cold start, never wrong results.
	urls, servers := ckptWorkers(t, 1, 500)
	workloads := []string{"sci-em3d"}
	prefs := remotePrefs[2:] // the STMS variant: the most checkpoint state to corrupt

	// Default resilience: nothing here should stall, retry, or resume —
	// a short stall window under -race could make the healthy run
	// spuriously retry (and genuinely resume), clouding the assertions.
	chaos := testLab(t, WithWorkers(urls))
	plan := chaos.Plan(workloads, prefs)
	if len(plan.Cells) != 1 {
		t.Fatalf("plan has %d cells, want 1", len(plan.Cells))
	}
	job, err := jobFromCell(&plan.Cells[0])
	if err != nil {
		t.Fatal(err)
	}
	ckptKey, err := job.CkptKey()
	if err != nil {
		t.Fatal(err)
	}
	if err := servers[0].Store().PutCkpt(ckptKey, ckpt.Seal([]byte("sealed nonsense"))); err != nil {
		t.Fatal(err)
	}

	cm, err := chaos.Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	local := testLab(t)
	lm, err := local.Run(context.Background(), local.Plan(workloads, prefs))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cm.Cells[0].Res, lm.Cells[0].Res) {
		t.Fatal("result after corrupt-checkpoint fallback differs from local — the garbage restored")
	}
	rs := chaos.RemoteStats()
	if rs.CkptResumes != 0 {
		t.Fatalf("checkpoint resumes = %d, want 0 (the corrupt checkpoint must not resume)", rs.CkptResumes)
	}
	if int(rs.RemoteCells) != 1 || rs.Retries != 0 {
		t.Fatalf("dispatch stats = %+v, want one clean remote cell", rs)
	}
}

func TestManifestPartialCellResumesAcrossSessions(t *testing.T) {
	// A coordinator that died mid-cell left two artifacts: a partial
	// entry in its manifest (the cell's checkpoint address) and the
	// checkpoint itself in a worker's store. A restarted session on the
	// same manifest must sweep the ranking for that checkpoint before
	// the first attempt and resume the partial cell instead of starting
	// it over.
	urls, servers := ckptWorkers(t, 2, 500)
	path := filepath.Join(t.TempDir(), "run.manifest")
	workloads := []string{"sci-em3d"}
	prefs := remotePrefs[2:]

	// Default resilience throughout: no faults are injected here, and
	// fastResilience's 300ms stall window can spuriously abort a healthy
	// run under -race, perturbing the exact resume counters.
	seed := testLab(t, WithWorkers(urls), WithManifest(path))
	plan := seed.Plan(workloads, prefs)
	job, err := jobFromCell(&plan.Cells[0])
	if err != nil {
		t.Fatal(err)
	}
	ckptKey, err := job.CkptKey()
	if err != nil {
		t.Fatal(err)
	}
	// Manufacture the dead session's leavings: a genuine mid-run
	// checkpoint parked on a worker, and the manifest recording it.
	var snap []byte
	if _, _, _, err := dist.ExecuteJob(context.Background(), job, dist.NewStore(1<<30, ""), nil, nil, &dist.ExecOptions{
		Every: 500,
		Sink:  func(data []byte) error { snap = append([]byte(nil), data...); return nil },
		Stop:  make(chan struct{}),
	}); err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("no checkpoint harvested")
	}
	for _, s := range servers {
		if err := s.Store().PutCkpt(ckptKey, snap); err != nil {
			t.Fatal(err)
		}
	}
	seed.recordPartial(cellKey(&plan.Cells[0]), ckptKey)

	// The restarted session: the proactive sweep fetches the checkpoint
	// and the first attempt resumes.
	resumed := testLab(t, WithWorkers(urls), WithManifest(path))
	if got := resumed.partialCkpt(cellKey(&plan.Cells[0])); got != ckptKey {
		t.Fatalf("restarted session loaded partial %q, want %q", got, ckptKey)
	}
	rm, err := resumed.Run(context.Background(), resumed.Plan(workloads, prefs))
	if err != nil {
		t.Fatal(err)
	}
	rs := resumed.RemoteStats()
	if rs.CkptResumes != 1 || rs.CkptFetches == 0 {
		t.Fatalf("dispatch stats = %+v, want the partial cell fetched and resumed", rs)
	}

	local := testLab(t)
	lm, err := local.Run(context.Background(), local.Plan(workloads, prefs))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rm.Cells[0].Res, lm.Cells[0].Res) {
		t.Fatal("partial-cell resume differs from an uninterrupted local run")
	}

	// Completion supersedes the partial: a third session neither resumes
	// nor re-runs the cell.
	third := testLab(t, WithWorkers(urls), WithManifest(path))
	if got := third.partialCkpt(cellKey(&plan.Cells[0])); got != "" {
		t.Fatalf("completed cell still partial (%q) in a fresh session", got)
	}
	if got := third.MemoSize(); got != 1 {
		t.Fatalf("third session preloaded %d cells, want 1", got)
	}
}

func TestWorkerAuthAtLabLevel(t *testing.T) {
	srv := dist.NewServer(dist.ServerConfig{Name: "locked", Store: dist.NewStore(1<<30, ""), Token: "tok"})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	url := ts.URL
	workloads := []string{"sci-em3d"}

	// Wrong token: a deterministic rejection — the cell fails without
	// burning transport retries or silently degrading to local.
	bad := testLab(t,
		WithWorkers([]string{url}),
		WithWorkerAuth("wrong"),
		WithResilience(fastResilience()),
	)
	m, err := bad.Run(context.Background(), bad.Plan(workloads, remotePrefs[:1]))
	if err == nil {
		t.Fatal("wrong-token run succeeded")
	}
	if m.Cells[0].Err == nil || !strings.Contains(m.Cells[0].Err.Error(), "401") {
		t.Fatalf("cell error = %v, want a 401 rejection", m.Cells[0].Err)
	}
	rs := bad.RemoteStats()
	if rs.Retries != 0 || rs.LocalCells != 0 {
		t.Fatalf("dispatch stats = %+v, want a 401 neither retried nor degraded", rs)
	}

	// Matching token: business as usual.
	good := testLab(t, WithWorkers([]string{url}), WithWorkerAuth("tok"))
	gm, err := good.Run(context.Background(), good.Plan(workloads, remotePrefs[:1]))
	if err != nil {
		t.Fatal(err)
	}
	grs := good.RemoteStats()
	if int(grs.RemoteCells) != len(gm.Cells) || grs.Retries != 0 {
		t.Fatalf("dispatch stats = %+v, want all cells remote with no retries", grs)
	}
}
