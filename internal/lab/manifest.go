package lab

// The job manifest makes matrix runs resumable. It is a versioned
// JSON-lines file — a {"stms_manifest":1} header, then one
// {"key":..., "results":...} entry per completed cell — appended and
// fsync'd as cells finish. A session opened on an existing manifest
// preloads every entry into its memo, so a coordinator killed mid-run
// and restarted with the same plan skips the finished cells and
// simulates only the remainder. A partially written trailing entry
// (the kill arrived mid-append) is truncated away, not treated as
// corruption: everything before it is intact by construction.
//
// Results round-trip the manifest losslessly (sim.Results and
// stats.CDF define exact JSON codecs), so a resumed matrix is
// bit-identical to an uninterrupted one.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"stms/internal/sim"
)

// manifestFormatVersion stamps the header line.
const manifestFormatVersion = 1

type manifestHeader struct {
	Version int `json:"stms_manifest"`
}

type manifestEntry struct {
	Key string       `json:"key"`
	Res *sim.Results `json:"results"`
}

// manifest is an open, append-only manifest file.
type manifest struct {
	mu     sync.Mutex
	f      *os.File
	enc    *json.Encoder
	loaded int // entries preloaded into the memo at open
}

// openManifest opens (creating if absent) the manifest at path and
// loads its entries into memo. A truncated final entry — the tail of a
// run killed mid-append — is discarded by truncating the file back to
// the last complete entry.
func openManifest(path string, memo map[string]*sim.Results) (*manifest, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("lab: opening manifest: %w", err)
	}
	m := &manifest{f: f, enc: json.NewEncoder(f)}

	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("lab: manifest: %w", err)
	}
	if info.Size() == 0 {
		if err := m.writeHeader(); err != nil {
			f.Close()
			return nil, err
		}
		return m, nil
	}

	dec := json.NewDecoder(f)
	var hdr manifestHeader
	if err := dec.Decode(&hdr); err != nil {
		// Not even a complete header: the process died during the very
		// first write. Start the file over.
		if err := m.restart(); err != nil {
			f.Close()
			return nil, err
		}
		return m, nil
	}
	if hdr.Version != manifestFormatVersion {
		f.Close()
		return nil, fmt.Errorf("lab: manifest %s: format version %d, want %d",
			path, hdr.Version, manifestFormatVersion)
	}

	good := dec.InputOffset()
	for {
		var e manifestEntry
		if err := dec.Decode(&e); err != nil {
			if err == io.EOF {
				break
			}
			// A torn trailing entry; drop it and keep the prefix.
			if err := m.truncate(good); err != nil {
				f.Close()
				return nil, err
			}
			break
		}
		if e.Key == "" || e.Res == nil {
			if err := m.truncate(good); err != nil {
				f.Close()
				return nil, err
			}
			break
		}
		memo[e.Key] = e.Res
		m.loaded++
		good = dec.InputOffset()
	}
	// The decoder read ahead of the file offset; park the descriptor at
	// the end of the valid prefix for appending.
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("lab: manifest: %w", err)
	}
	return m, nil
}

func (m *manifest) writeHeader() error {
	if err := m.enc.Encode(manifestHeader{Version: manifestFormatVersion}); err != nil {
		return fmt.Errorf("lab: manifest header: %w", err)
	}
	return m.sync()
}

// restart wipes the file and writes a fresh header.
func (m *manifest) restart() error {
	if err := m.truncate(0); err != nil {
		return err
	}
	return m.writeHeader()
}

func (m *manifest) truncate(off int64) error {
	if err := m.f.Truncate(off); err != nil {
		return fmt.Errorf("lab: manifest: %w", err)
	}
	if _, err := m.f.Seek(off, io.SeekStart); err != nil {
		return fmt.Errorf("lab: manifest: %w", err)
	}
	return nil
}

func (m *manifest) sync() error {
	if err := m.f.Sync(); err != nil {
		return fmt.Errorf("lab: manifest: %w", err)
	}
	return nil
}

// append records one completed cell. Failures are deliberately
// swallowed: the manifest is a resume accelerator, and a full disk must
// not fail the run it is protecting.
func (m *manifest) append(key string, r *sim.Results) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.enc.Encode(manifestEntry{Key: key, Res: r}) == nil {
		m.f.Sync()
	}
}
