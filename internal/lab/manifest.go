package lab

// The job manifest makes matrix runs resumable. It is a versioned
// JSON-lines file — a {"stms_manifest":1} header, then one entry per
// cell — appended and fsync'd as cells progress. Two entry shapes
// exist:
//
//	{"key":..., "results":...}  a completed cell (preloaded into the
//	                            session memo, so a restarted
//	                            coordinator skips it)
//	{"key":..., "ckpt":...}     a partial cell: the coordinator
//	                            exchanged a checkpoint for it before
//	                            dying. A restarted session fetches the
//	                            checkpoint by that address and resumes
//	                            the cell mid-run instead of starting it
//	                            over.
//
// A completed entry supersedes any partial entries for the same key.
// A partially written trailing entry (the kill arrived mid-append) is
// repaired away, not treated as corruption: everything before it is
// intact by construction. The repair itself is crash-safe — the valid
// prefix is rewritten through a temp file, fsync'd, renamed over the
// manifest, and the directory fsync'd so the rename's dirent survives
// a crash too (the window DESIGN.md §11 used to gloss over).
//
// Results round-trip the manifest losslessly (sim.Results and
// stats.CDF define exact JSON codecs), so a resumed matrix is
// bit-identical to an uninterrupted one.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"stms/internal/ckpt"
	"stms/internal/sim"
)

// manifestFormatVersion stamps the header line.
const manifestFormatVersion = 1

type manifestHeader struct {
	Version int `json:"stms_manifest"`
}

type manifestEntry struct {
	Key  string       `json:"key"`
	Res  *sim.Results `json:"results,omitempty"`
	Ckpt string       `json:"ckpt,omitempty"` // checkpoint address (dist.Job.CkptKey) of a partial cell
}

// manifest is an open, append-only manifest file.
type manifest struct {
	mu     sync.Mutex
	path   string
	f      *os.File
	enc    *json.Encoder
	loaded int // completed entries preloaded into the memo at open
}

// openManifest opens (creating if absent) the manifest at path and
// loads its entries: completed cells into memo, partial cells (cells a
// prior coordinator exchanged a checkpoint for) into partials. A
// truncated final entry — the tail of a run killed mid-append — is
// repaired away by atomically rewriting the file to its last complete
// entry.
func openManifest(path string, memo map[string]*sim.Results, partials map[string]string) (*manifest, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("lab: opening manifest: %w", err)
	}
	m := &manifest{path: path, f: f, enc: json.NewEncoder(f)}

	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("lab: manifest: %w", err)
	}
	if info.Size() == 0 {
		if err := m.writeHeader(); err != nil {
			f.Close()
			return nil, err
		}
		return m, nil
	}

	dec := json.NewDecoder(f)
	var hdr manifestHeader
	if err := dec.Decode(&hdr); err != nil {
		// Not even a complete header: the process died during the very
		// first write. Start the file over.
		if err := m.repair(0); err != nil {
			m.f.Close()
			return nil, err
		}
		if err := m.writeHeader(); err != nil {
			m.f.Close()
			return nil, err
		}
		return m, nil
	}
	if hdr.Version != manifestFormatVersion {
		f.Close()
		return nil, fmt.Errorf("lab: manifest %s: format version %d, want %d",
			path, hdr.Version, manifestFormatVersion)
	}

	good := dec.InputOffset()
	for {
		var e manifestEntry
		if err := dec.Decode(&e); err != nil {
			if err == io.EOF {
				break
			}
			// A torn trailing entry; drop it and keep the prefix.
			if err := m.repair(good); err != nil {
				m.f.Close()
				return nil, err
			}
			break
		}
		switch {
		case e.Key == "" || (e.Res == nil && e.Ckpt == ""):
			// Structurally complete JSON but not a valid entry — the
			// torn tail of a larger entry that happened to parse.
			if err := m.repair(good); err != nil {
				m.f.Close()
				return nil, err
			}
		case e.Res != nil:
			memo[e.Key] = e.Res
			if partials != nil {
				delete(partials, e.Key) // completed supersedes partial
			}
			m.loaded++
			good = dec.InputOffset()
			continue
		default:
			if partials != nil {
				partials[e.Key] = e.Ckpt
			}
			good = dec.InputOffset()
			continue
		}
		break
	}
	// The decoder read ahead of the file offset; park the descriptor at
	// the end of the valid prefix for appending.
	if _, err := m.f.Seek(good, io.SeekStart); err != nil {
		m.f.Close()
		return nil, fmt.Errorf("lab: manifest: %w", err)
	}
	return m, nil
}

func (m *manifest) writeHeader() error {
	if err := m.enc.Encode(manifestHeader{Version: manifestFormatVersion}); err != nil {
		return fmt.Errorf("lab: manifest header: %w", err)
	}
	return m.sync()
}

// repair rewrites the manifest to its first off bytes, atomically: the
// valid prefix goes into a temp file in the same directory, is
// fsync'd, renamed over the manifest, and the directory is fsync'd so
// the rename's dirent is durable — a crash mid-repair leaves either
// the old file (possibly plus a stale temp, ignored by later opens) or
// the repaired one, never a torn in-place truncation. The open handle
// is switched to the repaired file, positioned at its end.
func (m *manifest) repair(off int64) error {
	prefix := make([]byte, off)
	if _, err := m.f.ReadAt(prefix, 0); err != nil && off > 0 {
		return fmt.Errorf("lab: manifest repair: %w", err)
	}
	dir := filepath.Dir(m.path)
	tmp, err := os.CreateTemp(dir, ".manifest-repair-*")
	if err != nil {
		return fmt.Errorf("lab: manifest repair: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(prefix); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("lab: manifest repair: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("lab: manifest repair: %w", err)
	}
	if err := os.Rename(tmpName, m.path); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("lab: manifest repair: %w", err)
	}
	ckpt.SyncDir(dir)
	m.f.Close()
	m.f = tmp
	m.enc = json.NewEncoder(m.f)
	if _, err := m.f.Seek(off, io.SeekStart); err != nil {
		return fmt.Errorf("lab: manifest repair: %w", err)
	}
	return nil
}

func (m *manifest) sync() error {
	if err := m.f.Sync(); err != nil {
		return fmt.Errorf("lab: manifest: %w", err)
	}
	return nil
}

// append records one completed cell. Failures are deliberately
// swallowed: the manifest is a resume accelerator, and a full disk must
// not fail the run it is protecting.
func (m *manifest) append(key string, r *sim.Results) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.enc.Encode(manifestEntry{Key: key, Res: r}) == nil {
		m.f.Sync()
	}
}

// appendPartial records that a checkpoint for the cell exists at the
// given address, so a restarted coordinator resumes the cell mid-run
// instead of starting it over. Best-effort, like append.
func (m *manifest) appendPartial(key, ckptKey string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.enc.Encode(manifestEntry{Key: key, Ckpt: ckptKey}) == nil {
		m.f.Sync()
	}
}
