package lab

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"stms/internal/sim"
	"stms/internal/stats"
)

// CellResult is one executed cell of a Matrix.
type CellResult struct {
	Cell Cell
	Res  *sim.Results // nil if the cell failed or was cancelled
	Err  error
	Wall time.Duration // wall-clock simulation time (0 on memo hits)

	// Sampled carries the full sampled estimate (per-window details,
	// confidence intervals) for cells run under WithSampling; Res then
	// aliases its stitched Results. Nil for exact cells and for sampled
	// cells replayed from a prior session's manifest.
	Sampled *sim.SampledResults
}

// Matrix is the indexed result of running a plan: rows are workloads,
// columns are prefetcher variants. Results are shared, read-only
// pointers into the session memo.
type Matrix struct {
	Workloads []string
	Labels    []string
	Cells     []CellResult // row-major
}

// At returns the cell at (row, col); nil if out of range.
func (m *Matrix) At(row, col int) *CellResult {
	if row < 0 || col < 0 || row >= len(m.Workloads) || col >= len(m.Labels) {
		return nil
	}
	return &m.Cells[row*len(m.Labels)+col]
}

// Get returns the cell for a workload and column label; nil if absent.
func (m *Matrix) Get(workload, label string) *CellResult {
	return m.At(m.rowOf(workload), m.ColOf(label))
}

func (m *Matrix) rowOf(workload string) int {
	for i, w := range m.Workloads {
		if w == workload {
			return i
		}
	}
	return -1
}

// ColOf returns the column index of a label, or -1.
func (m *Matrix) ColOf(label string) int {
	for i, l := range m.Labels {
		if l == label {
			return i
		}
	}
	return -1
}

// Row returns the cells of one workload across all variants.
func (m *Matrix) Row(row int) []CellResult {
	if row < 0 || row >= len(m.Workloads) {
		return nil
	}
	cols := len(m.Labels)
	return m.Cells[row*cols : (row+1)*cols]
}

// Err returns the first per-cell failure in the matrix, nil if all
// cells ran (or were cancelled before starting, leaving Res nil with no
// error).
func (m *Matrix) Err() error {
	for i := range m.Cells {
		if m.Cells[i].Err != nil {
			return m.Cells[i].Err
		}
	}
	return nil
}

// Complete reports whether every cell carries a result.
func (m *Matrix) Complete() bool {
	for i := range m.Cells {
		if m.Cells[i].Res == nil {
			return false
		}
	}
	return true
}

// Speedups returns each non-baseline column's fractional speedup over
// the named baseline column, one map per column label, keyed by
// workload. Cells without results are skipped.
func (m *Matrix) Speedups(baseLabel string) (map[string]map[string]float64, error) {
	bc := m.ColOf(baseLabel)
	if bc < 0 {
		return nil, fmt.Errorf("lab: no column %q in matrix", baseLabel)
	}
	out := make(map[string]map[string]float64, len(m.Labels)-1)
	for col, label := range m.Labels {
		if col == bc {
			continue
		}
		series := make(map[string]float64, len(m.Workloads))
		for row, w := range m.Workloads {
			cell, base := m.At(row, col), m.At(row, bc)
			if cell.Res == nil || base.Res == nil {
				continue
			}
			series[w] = cell.Res.SpeedupOver(base.Res)
		}
		out[label] = series
	}
	return out, nil
}

// SpeedupTable renders per-workload speedup-over-baseline columns
// (Fig. 8/9 style) for every non-baseline variant, with a geometric
// mean row of the speedup factors.
func (m *Matrix) SpeedupTable(baseLabel string) (*stats.Table, error) {
	bc := m.ColOf(baseLabel)
	if bc < 0 {
		return nil, fmt.Errorf("lab: no column %q in matrix", baseLabel)
	}
	cols := []string{"workload"}
	for i, l := range m.Labels {
		if i != bc {
			cols = append(cols, l)
		}
	}
	t := stats.NewTable(fmt.Sprintf("speedup over %s", baseLabel), cols...)
	factors := make([][]float64, len(m.Labels))
	for row, w := range m.Workloads {
		cells := []interface{}{w}
		base := m.At(row, bc)
		for col := range m.Labels {
			if col == bc {
				continue
			}
			cell := m.At(row, col)
			if cell.Res == nil || base.Res == nil {
				cells = append(cells, "-")
				continue
			}
			sp := cell.Res.SpeedupOver(base.Res)
			factors[col] = append(factors[col], 1+sp)
			cells = append(cells, stats.Pct(sp))
		}
		t.AddRow(cells...)
	}
	gm := []interface{}{"geomean"}
	for col := range m.Labels {
		if col == bc {
			continue
		}
		gm = append(gm, stats.Pct(stats.GeoMean(factors[col])-1))
	}
	t.AddRow(gm...)
	return t, nil
}

// CoverageTable renders per-workload miss coverage for every variant
// column.
func (m *Matrix) CoverageTable() *stats.Table {
	cols := append([]string{"workload"}, m.Labels...)
	t := stats.NewTable("miss coverage", cols...)
	for row, w := range m.Workloads {
		cells := []interface{}{w}
		for col := range m.Labels {
			if cell := m.At(row, col); cell.Res != nil {
				cells = append(cells, stats.Pct(cell.Res.Coverage()))
			} else {
				cells = append(cells, "-")
			}
		}
		t.AddRow(cells...)
	}
	return t
}

// cellJSON is the export schema for one cell.
type cellJSON struct {
	Workload       string  `json:"workload"`
	Variant        string  `json:"variant"`
	Mode           string  `json:"mode"`
	Seed           uint64  `json:"seed"`
	Scale          float64 `json:"scale"`
	Error          string  `json:"error,omitempty"`
	WallMS         float64 `json:"wall_ms"`
	IPC            float64 `json:"ipc,omitempty"`
	MLP            float64 `json:"mlp,omitempty"`
	DRAMUtil       float64 `json:"dram_util,omitempty"`
	Coverage       float64 `json:"coverage"`
	FullCoverage   float64 `json:"full_coverage"`
	BaselineMisses uint64  `json:"baseline_misses"`
	Records        uint64  `json:"records"`
	ElapsedCycles  uint64  `json:"elapsed_cycles,omitempty"`
	Instrs         uint64  `json:"instrs,omitempty"`
	OverheadTotal  float64 `json:"overhead_total,omitempty"`

	// Frame-pipeline accounting: how many columnar frames (and records
	// inside them) the cell's drivers consumed. Zero would mean the cell
	// somehow bypassed the batched record path.
	FramesDecoded uint64 `json:"frames_decoded"`
	FrameRecords  uint64 `json:"frame_records"`

	// Sampled-run fields: the window count and per-metric confidence
	// intervals when the cell ran under WithSampling (absent for exact
	// cells and manifest replays of sampled cells).
	Windows int            `json:"windows,omitempty"`
	CI      *sim.SampledCI `json:"ci,omitempty"`
}

// matrixJSON is the export schema for a whole matrix.
type matrixJSON struct {
	Workloads []string   `json:"workloads"`
	Variants  []string   `json:"variants"`
	Cells     []cellJSON `json:"cells"`
}

// MarshalJSON exports the matrix with the headline per-cell metrics.
func (m *Matrix) MarshalJSON() ([]byte, error) {
	out := matrixJSON{Workloads: m.Workloads, Variants: m.Labels}
	for i := range m.Cells {
		c := &m.Cells[i]
		cj := cellJSON{
			Workload: c.Cell.Workload,
			Variant:  c.Cell.Label,
			Mode:     c.Cell.Mode.String(),
			Seed:     c.Cell.Config.Seed,
			Scale:    c.Cell.Config.Scale,
			WallMS:   float64(c.Wall.Microseconds()) / 1000,
		}
		if c.Err != nil {
			cj.Error = c.Err.Error()
		}
		if r := c.Res; r != nil {
			cj.IPC = r.IPC
			cj.MLP = r.MLP
			cj.DRAMUtil = r.DRAMUtil
			cj.Coverage = r.Coverage()
			cj.FullCoverage = r.FullCoverage()
			cj.BaselineMisses = r.BaselineMisses()
			cj.Records = r.Records
			cj.ElapsedCycles = r.ElapsedCycles
			cj.Instrs = r.Instrs
			cj.OverheadTotal = r.OverheadTraffic().Total()
			cj.FramesDecoded = r.Frames.Frames
			cj.FrameRecords = r.Frames.Records
		}
		if sr := c.Sampled; sr != nil && !sr.Exact {
			cj.Windows = len(sr.Windows)
			ci := sr.CI
			cj.CI = &ci
		}
		out.Cells = append(out.Cells, cj)
	}
	return json.Marshal(out)
}

// WriteJSON writes the matrix export, indented, to w.
func (m *Matrix) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// WriteCSV writes one row per cell with the headline metrics to w.
func (m *Matrix) WriteCSV(w io.Writer) error {
	t := stats.NewTable("", "workload", "variant", "mode", "seed", "ipc", "mlp",
		"coverage", "full_coverage", "baseline_misses", "records", "wall_ms")
	for i := range m.Cells {
		c := &m.Cells[i]
		if c.Res == nil {
			continue
		}
		r := c.Res
		t.AddRow(c.Cell.Workload, c.Cell.Label, c.Cell.Mode.String(),
			fmt.Sprintf("%d", c.Cell.Config.Seed),
			fmt.Sprintf("%.4f", r.IPC), fmt.Sprintf("%.3f", r.MLP),
			fmt.Sprintf("%.4f", r.Coverage()), fmt.Sprintf("%.4f", r.FullCoverage()),
			fmt.Sprintf("%d", r.BaselineMisses()), fmt.Sprintf("%d", r.Records),
			fmt.Sprintf("%.1f", float64(c.Wall.Microseconds())/1000))
	}
	_, err := io.WriteString(w, t.CSV())
	return err
}
