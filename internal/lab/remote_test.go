package lab

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"stms/internal/dist"
	"stms/internal/sim"
	"stms/internal/trace"
)

// testWorkers starts n store-backed dist workers wired as peers of each
// other, returning their base URLs and servers.
func testWorkers(t *testing.T, n int) ([]string, []*dist.Server) {
	t.Helper()
	servers := make([]*dist.Server, n)
	tss := make([]*httptest.Server, n)
	urls := make([]string, n)
	// Two passes: peers need every URL, and httptest assigns them on
	// start — so start with empty peer lists, then rebuild.
	for i := range servers {
		servers[i] = dist.NewServer(dist.ServerConfig{Store: dist.NewStore(1<<30, "")})
		tss[i] = httptest.NewServer(servers[i])
		urls[i] = tss[i].URL
		t.Cleanup(tss[i].Close)
	}
	for i := range servers {
		var peers []string
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		servers[i] = dist.NewServer(dist.ServerConfig{
			Name:  urls[i],
			Store: servers[i].Store(),
			Peers: peers,
		})
		tss[i].Config.Handler = servers[i]
	}
	return urls, servers
}

var remotePrefs = []sim.PrefSpec{
	{Kind: sim.None},
	{Kind: sim.Ideal},
	{Kind: sim.STMS, SampleProb: 0.125},
}

func TestRemoteMatrixBitIdentical(t *testing.T) {
	workloads := []string{"sci-em3d", "oltp-db2"}

	local := testLab(t)
	lm, err := local.Run(context.Background(), local.Plan(workloads, remotePrefs))
	if err != nil {
		t.Fatal(err)
	}

	urls, servers := testWorkers(t, 2)
	remote := testLab(t, WithWorkers(urls))
	rm, err := remote.Run(context.Background(), remote.Plan(workloads, remotePrefs))
	if err != nil {
		t.Fatal(err)
	}

	// Cell-for-cell bit identity of the simulation results.
	if len(lm.Cells) != len(rm.Cells) {
		t.Fatalf("matrix sizes differ: %d vs %d", len(lm.Cells), len(rm.Cells))
	}
	for i := range lm.Cells {
		lc, rc := lm.Cells[i], rm.Cells[i]
		if (lc.Res == nil) != (rc.Res == nil) {
			t.Fatalf("cell %d: result presence differs", i)
		}
		if lc.Res != nil && !reflect.DeepEqual(*lc.Res, *rc.Res) {
			t.Fatalf("cell %d (%s/%s): remote result differs from local:\nlocal  %+v\nremote %+v",
				i, lc.Cell.Workload, lc.Cell.Label, *lc.Res, *rc.Res)
		}
	}

	// The canonical JSON exports (wall time zeroed — it measures the
	// machine, not the simulated system) are byte-identical.
	for i := range lm.Cells {
		lm.Cells[i].Wall = 0
		rm.Cells[i].Wall = 0
	}
	var lj, rj bytes.Buffer
	if err := lm.WriteJSON(&lj); err != nil {
		t.Fatal(err)
	}
	if err := rm.WriteJSON(&rj); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(lj.Bytes(), rj.Bytes()) {
		t.Fatalf("JSON exports differ:\nlocal  %s\nremote %s", lj.Bytes(), rj.Bytes())
	}

	// Every cell ran remotely, and each unique tape was built exactly
	// once across the fleet: affinity routing sends all variants of a
	// workload to one home worker, so no tape is rebuilt or refetched.
	rs := remote.RemoteStats()
	if int(rs.RemoteCells) != len(rm.Cells) || rs.LocalCells != 0 {
		t.Fatalf("dispatch stats = %+v, want all %d cells remote", rs, len(rm.Cells))
	}
	var builds, peerHits uint64
	for _, s := range servers {
		st := s.Store().Stats()
		builds += st.Builds
		peerHits += st.PeerHits
	}
	if int(builds) != len(workloads) {
		t.Fatalf("fleet built %d tapes for %d workloads; want exactly one build per unique trace identity", builds, len(workloads))
	}
	if rs.TapeBuilds != builds {
		t.Fatalf("coordinator counted %d tape builds, fleet reports %d", rs.TapeBuilds, builds)
	}
	if peerHits != rs.TapeFetches {
		t.Fatalf("coordinator counted %d tape fetches, fleet reports %d peer hits", rs.TapeFetches, peerHits)
	}
}

func TestRemoteDegradesToLocal(t *testing.T) {
	// No worker is listening on these: every cell must fall back to
	// in-process simulation and still match a purely local run.
	// (fastResilience keeps the retry rounds and backoffs snappy.)
	urls := []string{"http://127.0.0.1:1", "http://127.0.0.1:2"}
	remote := testLab(t, WithWorkers(urls), WithResilience(fastResilience()))
	workloads := []string{"sci-em3d"}
	rm, err := remote.Run(context.Background(), remote.Plan(workloads, remotePrefs))
	if err != nil {
		t.Fatal(err)
	}

	local := testLab(t)
	lm, err := local.Run(context.Background(), local.Plan(workloads, remotePrefs))
	if err != nil {
		t.Fatal(err)
	}
	for i := range lm.Cells {
		if !reflect.DeepEqual(lm.Cells[i].Res, rm.Cells[i].Res) {
			t.Fatalf("cell %d: degraded result differs from local", i)
		}
	}
	rs := remote.RemoteStats()
	if rs.RemoteCells != 0 || int(rs.LocalCells) != len(rm.Cells) {
		t.Fatalf("dispatch stats = %+v, want all cells local", rs)
	}
	if rs.Retries == 0 {
		t.Fatalf("dispatch stats = %+v, want transport retries recorded", rs)
	}
}

func TestRemoteJobFailureNotRetried(t *testing.T) {
	urls, _ := testWorkers(t, 2)
	remote := testLab(t, WithWorkers(urls))
	plan := remote.Plan([]string{"sci-em3d"}, []sim.PrefSpec{{Kind: sim.None}},
		ForEachCell(func(c *Cell) { c.Config.Cores = -1 }))
	m, err := remote.Run(context.Background(), plan)
	if err == nil {
		t.Fatal("broken per-cell config succeeded")
	}
	if m.Cells[0].Err == nil {
		t.Fatal("cell error not recorded")
	}
	rs := remote.RemoteStats()
	// A deterministic job failure must not burn retries or fall back.
	if rs.Retries != 0 || rs.LocalCells != 0 {
		t.Fatalf("dispatch stats = %+v, want no retries and no local fallback", rs)
	}
}

func TestManifestResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.manifest")
	workloads := []string{"sci-em3d", "oltp-db2"}

	// First session: run only the first workload, then "die".
	l1 := testLab(t, WithManifest(path))
	m1, err := l1.Run(context.Background(), l1.Plan(workloads[:1], remotePrefs))
	if err != nil {
		t.Fatal(err)
	}

	// Restarted session on the same manifest: the full plan must
	// simulate only the second workload's cells.
	var started []string
	l2 := testLab(t, WithManifest(path), WithProgress(func(ev ResultEvent) {
		if ev.Kind == CellStarted {
			started = append(started, ev.Cell.Workload)
		}
	}))
	if got := l2.MemoSize(); got != len(m1.Cells) {
		t.Fatalf("resumed session preloaded %d cells, want %d", got, len(m1.Cells))
	}
	m2, err := l2.Run(context.Background(), l2.Plan(workloads, remotePrefs))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range started {
		if w == workloads[0] {
			t.Fatalf("resumed run re-simulated finished cell of %s", w)
		}
	}
	if len(started) != len(remotePrefs) {
		t.Fatalf("resumed run simulated %d cells, want %d", len(started), len(remotePrefs))
	}

	// The resumed matrix is bit-identical to an uninterrupted run.
	clean := testLab(t)
	mc, err := clean.Run(context.Background(), clean.Plan(workloads, remotePrefs))
	if err != nil {
		t.Fatal(err)
	}
	for i := range mc.Cells {
		if !reflect.DeepEqual(mc.Cells[i].Res, m2.Cells[i].Res) {
			t.Fatalf("cell %d (%s/%s): resumed result differs from uninterrupted run",
				i, mc.Cells[i].Cell.Workload, mc.Cells[i].Cell.Label)
		}
	}

	// A third session over the completed manifest simulates nothing.
	var started3 int
	l3 := testLab(t, WithManifest(path), WithProgress(func(ev ResultEvent) {
		if ev.Kind == CellStarted {
			started3++
		}
	}))
	if _, err := l3.Run(context.Background(), l3.Plan(workloads, remotePrefs)); err != nil {
		t.Fatal(err)
	}
	if started3 != 0 {
		t.Fatalf("completed manifest still simulated %d cells", started3)
	}
}

func TestManifestToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.manifest")
	l1 := testLab(t, WithManifest(path))
	if _, err := l1.Run(context.Background(), l1.Plan([]string{"sci-em3d"}, remotePrefs)); err != nil {
		t.Fatal(err)
	}
	// A coordinator killed mid-append leaves half an entry; the resumed
	// session must keep the complete prefix and drop the tail.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"lab-cell-torn","results":{"ip`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2 := testLab(t, WithManifest(path))
	if got := l2.MemoSize(); got != len(remotePrefs) {
		t.Fatalf("torn manifest preloaded %d cells, want %d", got, len(remotePrefs))
	}
	// The session keeps appending cleanly after the repair.
	if _, err := l2.Run(context.Background(), l2.Plan([]string{"oltp-db2"}, remotePrefs)); err != nil {
		t.Fatal(err)
	}
	l3 := testLab(t, WithManifest(path))
	if got := l3.MemoSize(); got != 2*len(remotePrefs) {
		t.Fatalf("after repair and rerun, %d cells preloaded, want %d", got, 2*len(remotePrefs))
	}
}

func TestManifestRepairSurvivesLostDirent(t *testing.T) {
	// The crash window DESIGN.md §11 used to gloss over: a repair's
	// rename can survive the file but not the dirent — the machine dies
	// after the temp file's data is durable but before the directory
	// update is. Recovery then sees the PRE-repair manifest (torn tail
	// and all) plus a stale .manifest-repair-* temp holding the repaired
	// prefix. The next open must redo the repair from the old file and
	// treat the stale temp as inert; repair now fsyncs the directory so
	// the window cannot recur on the redo.
	dir := t.TempDir()
	path := filepath.Join(dir, "run.manifest")
	l1 := testLab(t, WithManifest(path))
	if _, err := l1.Run(context.Background(), l1.Plan([]string{"sci-em3d"}, remotePrefs)); err != nil {
		t.Fatal(err)
	}

	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The stale temp: the repaired prefix a dead session wrote and
	// fsync'd, whose rename's dirent never became durable.
	stale := filepath.Join(dir, ".manifest-repair-1234567")
	if err := os.WriteFile(stale, intact, 0o600); err != nil {
		t.Fatal(err)
	}
	// The manifest itself still shows the pre-repair state: a torn tail.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"lab-cell-torn","ckpt":"deadbe`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2 := testLab(t, WithManifest(path))
	if got := l2.MemoSize(); got != len(remotePrefs) {
		t.Fatalf("recovered manifest preloaded %d cells, want %d", got, len(remotePrefs))
	}
	// The redo repaired the file back to its valid prefix, and appends
	// land cleanly after it.
	if _, err := l2.Run(context.Background(), l2.Plan([]string{"oltp-db2"}, remotePrefs)); err != nil {
		t.Fatal(err)
	}
	l3 := testLab(t, WithManifest(path))
	if got := l3.MemoSize(); got != 2*len(remotePrefs) {
		t.Fatalf("after redo and rerun, %d cells preloaded, want %d", got, 2*len(remotePrefs))
	}
	if _, err := os.Stat(stale); err != nil {
		t.Fatalf("stale repair temp: %v, want it left alone (inert, never adopted)", err)
	}
}

func TestManifestRejectsWrongVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.manifest")
	if err := os.WriteFile(path, []byte(`{"stms_manifest":99}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(WithManifest(path)); err == nil {
		t.Fatal("wrong manifest version accepted")
	}
}

func TestWorkerOptionValidation(t *testing.T) {
	if _, err := New(WithWorkers([]string{"http://a", ""})); err == nil {
		t.Fatal("empty worker URL accepted")
	}
	if _, err := New(WithManifest("")); err == nil {
		t.Fatal("empty manifest path accepted")
	}
}

func TestRemoteScenarioCells(t *testing.T) {
	urls, _ := testWorkers(t, 2)
	remote := testLab(t, WithWorkers(urls))
	local := testLab(t)

	var scns []trace.Scenario
	for _, name := range []string{"phase-flip", "migratory-handoff"} {
		scn, err := trace.ScenarioByName(name)
		if err != nil {
			t.Fatal(err)
		}
		scns = append(scns, scn)
	}
	rm, err := remote.Run(context.Background(), remote.PlanScenarios(scns, remotePrefs[:2]))
	if err != nil {
		t.Fatal(err)
	}
	lm, err := local.Run(context.Background(), local.PlanScenarios(scns, remotePrefs[:2]))
	if err != nil {
		t.Fatal(err)
	}
	for i := range lm.Cells {
		if !reflect.DeepEqual(lm.Cells[i].Res, rm.Cells[i].Res) {
			t.Fatalf("scenario cell %d: remote result differs from local", i)
		}
	}
	rs := remote.RemoteStats()
	if int(rs.RemoteCells) != len(rm.Cells) {
		t.Fatalf("dispatch stats = %+v, want all scenario cells remote", rs)
	}
}
