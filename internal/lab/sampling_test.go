package lab

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"stms/internal/sim"
)

// TestSampledCells runs a sampled matrix end to end: every timed cell
// carries a full SampledResults (K windows, per-metric CIs), the
// stitched Results alias the sampled estimate, and the export schema
// gains the windows/ci fields.
func TestSampledCells(t *testing.T) {
	const K = 4
	l := testLab(t, WithSampling(sim.Sampling{Windows: K}))
	p := l.Plan([]string{"web-apache"}, []sim.PrefSpec{{Kind: sim.STMS, SampleProb: 1}})
	m, err := l.Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	cell := m.Get("web-apache", "stms@p=1")
	if cell == nil || cell.Res == nil {
		t.Fatal("sampled cell missing")
	}
	sr := cell.Sampled
	if sr == nil {
		t.Fatal("sampled cell carries no SampledResults")
	}
	if sr.Exact {
		t.Fatal("K=4 estimate flagged Exact")
	}
	if got := len(sr.Windows); got != K {
		t.Fatalf("windows = %d, want %d", got, K)
	}
	if cell.Res != &sr.Results {
		t.Fatal("Res does not alias the stitched sampled Results")
	}
	if sr.CI.IPC.HalfWidth() <= 0 {
		t.Fatalf("degenerate IPC interval %+v", sr.CI.IPC)
	}

	// The export schema carries the sampled fields.
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	js := buf.String()
	if !strings.Contains(js, `"windows": 4`) || !strings.Contains(js, `"ci"`) {
		t.Fatalf("export missing sampled fields:\n%s", js)
	}

	// Re-running the identical plan serves the estimate from the memo,
	// SampledResults included.
	m2, err := l.Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	c2 := m2.Get("web-apache", "stms@p=1")
	if c2.Sampled != sr {
		t.Fatal("memo hit did not return the memoized SampledResults")
	}
	if c2.Wall != 0 {
		t.Fatal("memo hit re-simulated the cell")
	}
}

// TestSampledMemoDistinctFromExact verifies a sampled cell and the
// exact cell of the same configuration occupy different memo slots —
// and that the estimates genuinely differ while staying close.
func TestSampledMemoDistinctFromExact(t *testing.T) {
	l := testLab(t)
	prefs := []sim.PrefSpec{{Kind: sim.STMS, SampleProb: 1}}
	exact := l.Plan([]string{"web-apache"}, prefs)
	sampled := l.Plan([]string{"web-apache"}, prefs,
		ForEachCell(func(c *Cell) { c.Sampling = sim.Sampling{Windows: 4} }))
	if k0, k1 := cellKey(&exact.Cells[0]), cellKey(&sampled.Cells[0]); k0 == k1 {
		t.Fatalf("sampled cell shares memo key with exact cell: %q", k0)
	}

	me, err := l.Run(context.Background(), exact)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := l.Run(context.Background(), sampled)
	if err != nil {
		t.Fatal(err)
	}
	ce, cs := me.Cells[0], ms.Cells[0]
	if ce.Sampled != nil {
		t.Fatal("exact cell carries SampledResults")
	}
	if cs.Sampled == nil {
		t.Fatal("sampled cell lost SampledResults")
	}
	if reflect.DeepEqual(ce.Res, cs.Res) {
		t.Fatal("sampled estimate bit-identical to exact run — windows did not run independently")
	}
	// The estimate must still be in the neighborhood of the exact run.
	if e, s := ce.Res.IPC, cs.Res.IPC; s < e*0.9 || s > e*1.1 {
		t.Fatalf("sampled IPC %.4f far from exact %.4f", s, e)
	}
}

// TestSampledNormalization: K<=1 and functional cells normalize to
// exact cells — same memo key, no SampledResults.
func TestSampledNormalization(t *testing.T) {
	l := testLab(t, WithSampling(sim.Sampling{Windows: 1}))
	prefs := []sim.PrefSpec{{Kind: sim.None}}
	p := l.Plan([]string{"web-zeus"}, prefs)
	if got := p.Cells[0].Sampling; got != (sim.Sampling{}) {
		t.Fatalf("K=1 cell kept sampling %+v", got)
	}
	lf, err := New(WithScale(0.0625), WithSeed(1), WithWindows(1_000, 2_000),
		WithSampling(sim.Sampling{Windows: 8}))
	if err != nil {
		t.Fatal(err)
	}
	pf := lf.Plan([]string{"web-zeus"}, prefs, InMode(Functional))
	if got := pf.Cells[0].Sampling; got != (sim.Sampling{}) {
		t.Fatalf("functional cell kept sampling %+v", got)
	}
	m, err := l.Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cells[0].Sampled != nil {
		t.Fatal("normalized exact cell carries SampledResults")
	}

	if _, err := New(WithSampling(sim.Sampling{Windows: 4, Confidence: 1.5})); err == nil {
		t.Fatal("confidence 1.5 accepted")
	}
}

// TestSampledMatchesDirectRun: the lab's sampled cell (served through
// the session tape store) is bit-identical to calling the sim API
// directly on the same configuration.
func TestSampledMatchesDirectRun(t *testing.T) {
	smp := sim.Sampling{Windows: 3}
	l := testLab(t, WithSampling(smp))
	p := l.Plan([]string{"oltp-db2"}, []sim.PrefSpec{{Kind: sim.STMS, SampleProb: 1}})
	m, err := l.Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	cell := m.Cells[0]
	if cell.Sampled == nil {
		t.Fatal("no sampled result")
	}
	want, err := sim.RunSampledCtx(context.Background(), cell.Cell.Config,
		cell.Cell.Spec, cell.Cell.Pref, smp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*cell.Sampled, want) {
		t.Fatal("lab sampled cell differs from direct RunSampledCtx")
	}
}
