package lab

import (
	"context"
	"reflect"
	"testing"

	"stms/internal/sim"
	"stms/internal/trace"
)

func scenarioLab(t *testing.T, opts ...Option) *Lab {
	t.Helper()
	l, err := New(append([]Option{
		WithScale(0.0625), WithSeed(42), WithWindows(1500, 3000),
	}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestScenarioMatrixSharesTapes runs scenario rows through a matrix and
// checks that variant columns replay one shared scenario tape per row,
// exactly like stationary rows do — and that the results match
// sequential live scenario runs bit for bit.
func TestScenarioMatrixSharesTapes(t *testing.T) {
	l := scenarioLab(t)
	scns := []trace.Scenario{}
	for _, name := range []string{"phase-flip", "migratory-handoff"} {
		scn, err := trace.ScenarioByName(name)
		if err != nil {
			t.Fatal(err)
		}
		scns = append(scns, scn)
	}
	prefs := []sim.PrefSpec{{Kind: sim.None}, {Kind: sim.STMS, SampleProb: 0.125}}
	m, err := l.Run(context.Background(), l.PlanScenarios(scns, prefs))
	if err != nil {
		t.Fatal(err)
	}
	if !m.Complete() {
		t.Fatal("matrix has empty cells")
	}
	ts := l.TapeStats()
	if ts.Builds != uint64(len(scns)) {
		t.Fatalf("built %d tapes for %d scenario rows", ts.Builds, len(scns))
	}
	if ts.Hits == 0 {
		t.Fatal("variant columns never hit the shared scenario tape")
	}

	cfg := l.BaseConfig()
	for row, name := range m.Workloads {
		if name != scns[row].Name {
			t.Fatalf("row %d label %q, want %q", row, name, scns[row].Name)
		}
		for col := range m.Labels {
			got := m.At(row, col).Res
			want, err := sim.RunTimedScenarioCtx(context.Background(), cfg, scns[row], prefs[col], nil)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(*got, want) {
				t.Fatalf("cell %s/%s differs from sequential live scenario run", name, m.Labels[col])
			}
			if len(got.Phases) == 0 {
				t.Fatalf("cell %s/%s carries no phase windows", name, m.Labels[col])
			}
		}
	}
}

// TestPlanMixesSpecAndScenarioRows: Lab.Plan resolves workload and
// scenario names in one matrix, and memoizes scenario cells across
// plans.
func TestPlanMixesSpecAndScenarioRows(t *testing.T) {
	started := 0
	l := scenarioLab(t, WithProgress(func(ev ResultEvent) {
		if ev.Kind == CellStarted {
			started++
		}
	}))
	prefs := []sim.PrefSpec{{Kind: sim.STMS, SampleProb: 0.125}}
	plan := l.Plan([]string{"web-apache", "phase-flip"}, prefs)
	if err := plan.Err(); err != nil {
		t.Fatal(err)
	}
	if plan.Cells[0].Scenario != nil || plan.Cells[1].Scenario == nil {
		t.Fatal("rows resolved to the wrong workload kinds")
	}
	m, err := l.Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Complete() || started != 2 {
		t.Fatalf("first run: complete=%v started=%d", m.Complete(), started)
	}
	if res := m.At(0, 0).Res; len(res.Phases) != 0 {
		t.Fatal("stationary row grew phase windows")
	}
	if res := m.At(1, 0).Res; len(res.Phases) != 3 {
		t.Fatalf("scenario row has %d phase windows, want 3", len(res.Phases))
	}

	// Memoized rerun: no new cells, identical results.
	m2, err := l.Run(context.Background(), l.Plan([]string{"web-apache", "phase-flip"}, prefs))
	if err != nil {
		t.Fatal(err)
	}
	if started != 2 {
		t.Fatalf("memoized rerun re-simulated (%d cells started)", started)
	}
	if !reflect.DeepEqual(m.At(1, 0).Res, m2.At(1, 0).Res) {
		t.Fatal("memoized scenario result differs")
	}

	// Unknown names report both name spaces.
	bad := l.Plan([]string{"no-such-thing"}, prefs)
	if bad.Err() == nil {
		t.Fatal("plan accepted an unknown name")
	}
}

// TestScenarioTapeCacheDisabled: with tapes off, scenario cells run the
// live path and still produce identical results.
func TestScenarioTapeCacheDisabled(t *testing.T) {
	with := scenarioLab(t)
	without := scenarioLab(t, WithTapeCache(0))
	prefs := []sim.PrefSpec{{Kind: sim.STMS, SampleProb: 0.125}}
	row := []string{"stream-decay"}
	ma, err := with.Run(context.Background(), with.Plan(row, prefs))
	if err != nil {
		t.Fatal(err)
	}
	mb, err := without.Run(context.Background(), without.Plan(row, prefs))
	if err != nil {
		t.Fatal(err)
	}
	if ts := without.TapeStats(); ts.Builds != 0 {
		t.Fatalf("disabled tape cache built %d tapes", ts.Builds)
	}
	if !reflect.DeepEqual(ma.At(0, 0).Res, mb.At(0, 0).Res) {
		t.Fatal("tape-cached and live scenario results differ")
	}
}

// TestScenarioFunctionalMode: scenario rows run on the functional
// driver too, with phase windows and zero timing.
func TestScenarioFunctionalMode(t *testing.T) {
	l := scenarioLab(t)
	m, err := l.Run(context.Background(), l.Plan(
		[]string{"scan-storm"},
		[]sim.PrefSpec{{Kind: sim.Ideal}},
		InMode(Functional),
	))
	if err != nil {
		t.Fatal(err)
	}
	res := m.At(0, 0).Res
	if res.IPC != 0 || res.ElapsedCycles != 0 {
		t.Fatal("functional scenario produced timing numbers")
	}
	if len(res.Phases) != 3 {
		t.Fatalf("functional scenario has %d phase windows, want 3", len(res.Phases))
	}
}
