// Package lab is the run-matrix execution engine behind the public
// stms.Lab API. It decomposes "run the paper" into an explicit
// lifecycle that callers compose:
//
//	session (New + options) → plan (workload × variant cross-product)
//	→ parallel execute (worker pool, context cancellation, streaming
//	progress events) → indexed Matrix of results with aggregation and
//	export helpers.
//
// A Lab memoizes cell results across plans (keyed by the fully resolved
// cell configuration), so matched runs — the stride-only baseline, the
// idealized prefetcher — are simulated once and reused by every figure
// that needs them, exactly as the paper's matched-pair methodology
// reuses checkpoints. Every simulation is single-threaded and
// deterministic, so the Matrix a plan produces is identical regardless
// of parallelism.
package lab

import (
	"fmt"
	"net/http"
	"runtime"
	"sync"

	"stms/internal/dist"
	"stms/internal/sim"
)

// Lab is a simulation session: a base system configuration, an
// execution-parallelism budget, an optional progress sink, a memo of
// completed cells, and a bounded store of materialized trace tapes
// shared by every cell with the same trace identity. A Lab is safe for
// concurrent use.
//
// A Lab normally simulates in-process; WithWorkers turns the same
// session into a coordinator that dispatches cells to stms-serve
// worker daemons (falling back to local execution when none are
// reachable), and WithManifest makes interrupted runs resumable.
type Lab struct {
	base     sim.Config
	sampling sim.Sampling
	par      int
	onEvent  func(ResultEvent)

	mu       sync.Mutex
	memo     map[string]*sim.Results
	memoSmp  map[string]*sim.SampledResults // sampled-cell estimates (session-local)
	partials map[string]string              // cellKey → checkpoint address of a partial cell
	tapes    *dist.Store                    // nil = tape caching disabled (live generation)
	simNS    int64                          // cumulative cell simulation time, excluding tape access

	tapeBytes    int64  // resolved WithTapeCache budget
	tapeDir      string // resolved WithTapeDir directory
	workerURLs   []string
	resilience   Resilience        // worker-pool deadlines, retries, breakers
	workerToken  string            // shared-secret bearer token for workers
	workerRT     http.RoundTripper // transport override (fault injection)
	remote       *remotePool       // nil = local execution
	manifestPath string
	manifest     *manifest // nil = no manifest
}

// Option configures a Lab at construction time.
type Option func(*Lab) error

// New creates a session over the paper's Table 1 system, modified by
// the given options. The resolved configuration is validated; option
// errors and configuration errors are returned, never panicked.
func New(opts ...Option) (*Lab, error) {
	l := &Lab{
		base:      sim.DefaultConfig(),
		par:       runtime.NumCPU(),
		memo:      make(map[string]*sim.Results),
		memoSmp:   make(map[string]*sim.SampledResults),
		partials:  make(map[string]string),
		tapeBytes: defaultTapeCacheBytes,
	}
	for _, opt := range opts {
		if opt == nil {
			continue
		}
		if err := opt(l); err != nil {
			return nil, err
		}
	}
	if err := l.base.Validate(); err != nil {
		return nil, err
	}
	if l.tapeBytes > 0 || l.tapeDir != "" {
		l.tapes = dist.NewStore(l.tapeBytes, l.tapeDir)
	}
	if len(l.workerURLs) > 0 {
		l.remote = newRemotePool(l.workerURLs, l.resilience, l.workerToken, l.workerRT)
	}
	if l.manifestPath != "" {
		m, err := openManifest(l.manifestPath, l.memo, l.partials)
		if err != nil {
			return nil, err
		}
		l.manifest = m
	}
	return l, nil
}

// WithScale shrinks caches, meta-data tables and workload footprints
// together (1 = the paper's full scale).
func WithScale(scale float64) Option {
	return func(l *Lab) error {
		if scale <= 0 || scale > 1 {
			return fmt.Errorf("lab: scale must be in (0, 1], got %g", scale)
		}
		l.base.Scale = scale
		return nil
	}
}

// WithSeed sets the trace and sampling seed. Every cell of a plan
// inherits it by default, so runs of the same workload under different
// variants see identical traces (matched-pair methodology).
func WithSeed(seed uint64) Option {
	return func(l *Lab) error {
		l.base.Seed = seed
		return nil
	}
}

// WithWindows sets the per-core warm-up and measurement record counts.
func WithWindows(warm, measure uint64) Option {
	return func(l *Lab) error {
		if measure == 0 {
			return fmt.Errorf("lab: measurement window must be non-empty")
		}
		l.base.WarmRecords = warm
		l.base.MeasureRecords = measure
		return nil
	}
}

// WithSampling runs every timed cell as a K-window sampled simulation
// (sim.RunSampledCtx) instead of an exact serial run: each cell's
// CellResult carries the stitched estimate as its Results plus the full
// SampledResults (per-window details, confidence intervals). Windows <= 1
// leaves cells exact; functional cells ignore sampling (it is a timed
// concept). Sampled cells are memoized under a distinct key — their
// estimates never collide with exact results — and always simulate
// locally (worker pools run exact cells only). A manifest persists only
// the stitched estimate, so a cell replayed from a prior session's
// manifest has Res but no interval details.
func WithSampling(smp sim.Sampling) Option {
	return func(l *Lab) error {
		if smp.Confidence != 0 && (smp.Confidence <= 0 || smp.Confidence >= 1) {
			return fmt.Errorf("lab: confidence level %g outside (0,1)", smp.Confidence)
		}
		l.sampling = smp
		return nil
	}
}

// WithParallelism bounds the worker pool executing plan cells
// (default: runtime.NumCPU()).
func WithParallelism(n int) Option {
	return func(l *Lab) error {
		if n < 1 {
			return fmt.Errorf("lab: parallelism must be >= 1, got %d", n)
		}
		l.par = n
		return nil
	}
}

// WithBaseConfig replaces the base system configuration wholesale.
// Apply it before WithScale/WithSeed/WithWindows if you want those to
// override fields of cfg.
func WithBaseConfig(cfg sim.Config) Option {
	return func(l *Lab) error {
		l.base = cfg
		return nil
	}
}

// WithTapeCache bounds the session's materialized-trace cache in bytes
// (default 512 MB). Cells sharing a trace identity — scaled spec, seed,
// cores, record budget — replay one columnar tape instead of
// re-deriving the record stream per variant; results are bit-identical
// either way. A budget of 0 disables tapes entirely (cells generate
// live, as the sim package's free functions do); negative budgets are
// invalid.
func WithTapeCache(maxBytes int64) Option {
	return func(l *Lab) error {
		if maxBytes < 0 {
			return fmt.Errorf("lab: tape cache budget must be >= 0, got %d", maxBytes)
		}
		l.tapeBytes = maxBytes
		return nil
	}
}

// WithTapeDir adds an on-disk tier to the session's tape store: a
// directory of STMSTAPE files named by trace-identity hash
// (dist.TapeKey). Tapes built by this session persist there across
// process restarts, and any session or stms-serve worker pointed at
// the same directory shares them. The memory tier (WithTapeCache) sits
// in front; results are bit-identical with or without the directory.
func WithTapeDir(dir string) Option {
	return func(l *Lab) error {
		l.tapeDir = dir
		return nil
	}
}

// WithWorkers turns the session into a coordinator: plan cells are
// dispatched to the stms-serve worker daemons at the given base URLs
// (e.g. "http://host:9090") instead of simulating in-process. Cells
// route to workers by tape-identity affinity, so every variant column
// of a matrix row lands on the worker that already holds the row's
// tape and each unique tape is built once fleet-wide; transport
// failures retry on the next worker, and when no worker is reachable
// the cell degrades gracefully to local execution. Results are
// bit-identical to an in-process run — remote execution is
// memoization over the network.
func WithWorkers(urls []string) Option {
	return func(l *Lab) error {
		for _, u := range urls {
			if u == "" {
				return fmt.Errorf("lab: empty worker URL")
			}
		}
		l.workerURLs = append([]string(nil), urls...)
		return nil
	}
}

// WithResilience replaces the coordinator's resilience policy —
// per-attempt deadlines, the event-stream stall window, retry rounds
// and backoff, and the per-worker circuit breaker thresholds. Zero
// fields keep their defaults; sessions without WithWorkers ignore it.
func WithResilience(r Resilience) Option {
	return func(l *Lab) error {
		l.resilience = r
		return nil
	}
}

// WithWorkerAuth attaches a shared-secret bearer token to every request
// the coordinator makes to its workers, matching stms-serve -token. A
// worker that rejects the token fails the cell deterministically (401
// is not a transport failure — retrying elsewhere would be rejected the
// same way).
func WithWorkerAuth(token string) Option {
	return func(l *Lab) error {
		l.workerToken = token
		return nil
	}
}

// WithWorkerTransport replaces the HTTP transport the coordinator's
// worker clients use — the hook the chaos tests inject faults through.
// The dial and header deadlines of WithResilience do not apply through
// a custom transport (wrap dist.BaseTransport to keep them); the stall
// detector still does.
func WithWorkerTransport(rt http.RoundTripper) Option {
	return func(l *Lab) error {
		l.workerRT = rt
		return nil
	}
}

// WithManifest makes runs resumable: every completed cell is appended
// to the versioned JSON-lines manifest at path, and a new session
// given the same path preloads those results into its memo — so
// restarting a killed coordinator skips every finished cell and
// completes the matrix instead of re-running it. Coordinator sessions
// also record the checkpoint address of any cell whose worker died
// mid-run, so the restarted session fetches that checkpoint and
// resumes the partial cell instead of starting it over. Results
// round-trip the manifest losslessly; a resumed matrix is
// bit-identical to an uninterrupted one.
func WithManifest(path string) Option {
	return func(l *Lab) error {
		if path == "" {
			return fmt.Errorf("lab: empty manifest path")
		}
		l.manifestPath = path
		return nil
	}
}

// WithProgress registers a sink for ResultEvents (cell started /
// finished / failed). Events are delivered serialized, from worker
// goroutines, while Run executes.
func WithProgress(fn func(ResultEvent)) Option {
	return func(l *Lab) error {
		l.onEvent = fn
		return nil
	}
}

// BaseConfig returns the session's resolved base system configuration.
func (l *Lab) BaseConfig() sim.Config { return l.base }

// Parallelism returns the session's worker-pool bound.
func (l *Lab) Parallelism() int { return l.par }

// cellKey identifies a cell by everything that determines its result:
// the driver mode, the fully resolved workload (spec or scenario),
// system config and prefetcher spec. Deterministic simulation makes
// memoization by this key exact.
func cellKey(c *Cell) string {
	ps := c.Pref
	scfg := ""
	if ps.STMSCfg != nil {
		scfg = fmt.Sprintf("%+v", *ps.STMSCfg)
	}
	ecfg := ""
	if ps.Engine != nil {
		ecfg = fmt.Sprintf("%+v", *ps.Engine)
	}
	scn := ""
	if c.Scenario != nil {
		scn = c.Scenario.Key()
	}
	key := fmt.Sprintf("%d|spec=%+v|scn=%s|cfg=%+v|k=%d|d=%d|h=%d|i=%d|p=%g|s=%s|e=%s",
		c.Mode, c.Spec, scn, c.Config, ps.Kind, ps.MaxDepth,
		ps.HistoryEntries, ps.IndexEntries, ps.SampleProb, scfg, ecfg)
	// Sampled cells key (and memoize) distinctly: an estimate must never
	// be served where an exact result was asked for, or vice versa.
	// Exact cells keep the historical key so prior-session manifests
	// stay valid.
	if c.Sampling.Windows > 1 {
		key += fmt.Sprintf("|smp=%+v", c.Sampling)
	}
	return key
}

// MemoSize reports how many distinct cells the session has memoized.
func (l *Lab) MemoSize() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.memo)
}

func (l *Lab) lookup(key string) (*sim.Results, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	r, ok := l.memo[key]
	return r, ok
}

func (l *Lab) store(key string, r *sim.Results) {
	l.mu.Lock()
	fresh := l.memo[key] == nil
	l.memo[key] = r
	delete(l.partials, key) // completed supersedes partial
	l.mu.Unlock()
	if fresh && l.manifest != nil {
		l.manifest.append(key, r)
	}
}

func (l *Lab) lookupSmp(key string) (*sim.SampledResults, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	sr, ok := l.memoSmp[key]
	return sr, ok
}

// storeSmp memoizes a sampled estimate: the full SampledResults for the
// session, the stitched Results through the plain memo (and manifest,
// when one is attached) under the same sampled key.
func (l *Lab) storeSmp(key string, sr *sim.SampledResults) {
	l.mu.Lock()
	l.memoSmp[key] = sr
	l.mu.Unlock()
	l.store(key, &sr.Results)
}

// partialCkpt returns the checkpoint address recorded for a cell by a
// prior (interrupted) session, or "".
func (l *Lab) partialCkpt(key string) string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.partials[key]
}

// recordPartial remembers — in memory and in the manifest — that a
// checkpoint for the cell exists at the given address, so a restarted
// coordinator resumes the cell instead of starting it over. Duplicate
// records for the same (cell, address) pair are suppressed.
func (l *Lab) recordPartial(key, ckptKey string) {
	l.mu.Lock()
	dup := l.partials[key] == ckptKey
	l.partials[key] = ckptKey
	l.mu.Unlock()
	if !dup && l.manifest != nil {
		l.manifest.appendPartial(key, ckptKey)
	}
}
