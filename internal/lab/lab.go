// Package lab is the run-matrix execution engine behind the public
// stms.Lab API. It decomposes "run the paper" into an explicit
// lifecycle that callers compose:
//
//	session (New + options) → plan (workload × variant cross-product)
//	→ parallel execute (worker pool, context cancellation, streaming
//	progress events) → indexed Matrix of results with aggregation and
//	export helpers.
//
// A Lab memoizes cell results across plans (keyed by the fully resolved
// cell configuration), so matched runs — the stride-only baseline, the
// idealized prefetcher — are simulated once and reused by every figure
// that needs them, exactly as the paper's matched-pair methodology
// reuses checkpoints. Every simulation is single-threaded and
// deterministic, so the Matrix a plan produces is identical regardless
// of parallelism.
package lab

import (
	"fmt"
	"runtime"
	"sync"

	"stms/internal/sim"
)

// Lab is a simulation session: a base system configuration, an
// execution-parallelism budget, an optional progress sink, a memo of
// completed cells, and a bounded cache of materialized trace tapes
// shared by every cell with the same trace identity. A Lab is safe for
// concurrent use.
type Lab struct {
	base    sim.Config
	par     int
	onEvent func(ResultEvent)

	mu    sync.Mutex
	memo  map[string]*sim.Results
	tapes *tapeCache // nil = tape caching disabled (live generation)
	simNS int64      // cumulative cell simulation time, excluding tape access

	tapeBytes int64 // resolved WithTapeCache budget
}

// Option configures a Lab at construction time.
type Option func(*Lab) error

// New creates a session over the paper's Table 1 system, modified by
// the given options. The resolved configuration is validated; option
// errors and configuration errors are returned, never panicked.
func New(opts ...Option) (*Lab, error) {
	l := &Lab{
		base:      sim.DefaultConfig(),
		par:       runtime.NumCPU(),
		memo:      make(map[string]*sim.Results),
		tapeBytes: defaultTapeCacheBytes,
	}
	for _, opt := range opts {
		if opt == nil {
			continue
		}
		if err := opt(l); err != nil {
			return nil, err
		}
	}
	if err := l.base.Validate(); err != nil {
		return nil, err
	}
	if l.tapeBytes > 0 {
		l.tapes = newTapeCache(l.tapeBytes)
	}
	return l, nil
}

// WithScale shrinks caches, meta-data tables and workload footprints
// together (1 = the paper's full scale).
func WithScale(scale float64) Option {
	return func(l *Lab) error {
		if scale <= 0 || scale > 1 {
			return fmt.Errorf("lab: scale must be in (0, 1], got %g", scale)
		}
		l.base.Scale = scale
		return nil
	}
}

// WithSeed sets the trace and sampling seed. Every cell of a plan
// inherits it by default, so runs of the same workload under different
// variants see identical traces (matched-pair methodology).
func WithSeed(seed uint64) Option {
	return func(l *Lab) error {
		l.base.Seed = seed
		return nil
	}
}

// WithWindows sets the per-core warm-up and measurement record counts.
func WithWindows(warm, measure uint64) Option {
	return func(l *Lab) error {
		if measure == 0 {
			return fmt.Errorf("lab: measurement window must be non-empty")
		}
		l.base.WarmRecords = warm
		l.base.MeasureRecords = measure
		return nil
	}
}

// WithParallelism bounds the worker pool executing plan cells
// (default: runtime.NumCPU()).
func WithParallelism(n int) Option {
	return func(l *Lab) error {
		if n < 1 {
			return fmt.Errorf("lab: parallelism must be >= 1, got %d", n)
		}
		l.par = n
		return nil
	}
}

// WithBaseConfig replaces the base system configuration wholesale.
// Apply it before WithScale/WithSeed/WithWindows if you want those to
// override fields of cfg.
func WithBaseConfig(cfg sim.Config) Option {
	return func(l *Lab) error {
		l.base = cfg
		return nil
	}
}

// WithTapeCache bounds the session's materialized-trace cache in bytes
// (default 512 MB). Cells sharing a trace identity — scaled spec, seed,
// cores, record budget — replay one columnar tape instead of
// re-deriving the record stream per variant; results are bit-identical
// either way. A budget of 0 disables tapes entirely (cells generate
// live, as the sim package's free functions do); negative budgets are
// invalid.
func WithTapeCache(maxBytes int64) Option {
	return func(l *Lab) error {
		if maxBytes < 0 {
			return fmt.Errorf("lab: tape cache budget must be >= 0, got %d", maxBytes)
		}
		l.tapeBytes = maxBytes
		return nil
	}
}

// WithProgress registers a sink for ResultEvents (cell started /
// finished / failed). Events are delivered serialized, from worker
// goroutines, while Run executes.
func WithProgress(fn func(ResultEvent)) Option {
	return func(l *Lab) error {
		l.onEvent = fn
		return nil
	}
}

// BaseConfig returns the session's resolved base system configuration.
func (l *Lab) BaseConfig() sim.Config { return l.base }

// Parallelism returns the session's worker-pool bound.
func (l *Lab) Parallelism() int { return l.par }

// cellKey identifies a cell by everything that determines its result:
// the driver mode, the fully resolved workload (spec or scenario),
// system config and prefetcher spec. Deterministic simulation makes
// memoization by this key exact.
func cellKey(c *Cell) string {
	ps := c.Pref
	scfg := ""
	if ps.STMSCfg != nil {
		scfg = fmt.Sprintf("%+v", *ps.STMSCfg)
	}
	ecfg := ""
	if ps.Engine != nil {
		ecfg = fmt.Sprintf("%+v", *ps.Engine)
	}
	scn := ""
	if c.Scenario != nil {
		scn = c.Scenario.Key()
	}
	return fmt.Sprintf("%d|spec=%+v|scn=%s|cfg=%+v|k=%d|d=%d|h=%d|i=%d|p=%g|s=%s|e=%s",
		c.Mode, c.Spec, scn, c.Config, ps.Kind, ps.MaxDepth,
		ps.HistoryEntries, ps.IndexEntries, ps.SampleProb, scfg, ecfg)
}

// MemoSize reports how many distinct cells the session has memoized.
func (l *Lab) MemoSize() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.memo)
}

func (l *Lab) lookup(key string) (*sim.Results, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	r, ok := l.memo[key]
	return r, ok
}

func (l *Lab) store(key string, r *sim.Results) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.memo[key] = r
}
