package lab

// The coordinator side of the distributed lab. A session given
// WithWorkers dispatches plan cells to stms-serve worker daemons
// instead of simulating in-process:
//
//   - cells route to workers by rendezvous hashing on their tape
//     address, so every variant column of a matrix row lands where the
//     row's tape already lives and each unique tape is built once
//     fleet-wide;
//   - transport failures (connection refused, stream cut, a stream
//     silent past the stall window) retry the cell on the next-ranked
//     worker; after a full pass over the ranking the coordinator backs
//     off (exponential, full jitter) and tries again, up to
//     Resilience.RetryRounds passes. Job failures are deterministic and
//     surface immediately — retrying elsewhere would fail the same way;
//   - each worker has a circuit breaker: after Resilience.BreakerAfter
//     consecutive transport failures its attempts are skipped outright,
//     and once the cooldown elapses a single /healthz probe decides
//     whether it rejoins. Because the rendezvous ranking is a pure
//     function of (worker URL, tape key) and the breaker only gates it,
//     a recovered worker rejoins exactly its old affinity positions;
//   - when every attempt fails the cell degrades gracefully to
//     in-process simulation, so a matrix always completes — but never
//     silently: the per-attempt errors are aggregated into the cell's
//     ResultEvent note and the session's RemoteStats counters.
//
// Cells are pure functions of their configuration, so remote execution
// is memoization over the network: the Matrix a worker pool produces is
// bit-identical to an in-process run, however unkind the network was.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"stms/internal/dist"
	"stms/internal/sim"
)

// Resilience bounds the coordinator's patience with a misbehaving
// worker pool. The zero value of any field means its default; a
// negative Stall disables the stall detector (not recommended).
type Resilience struct {
	Dial           time.Duration // per-attempt TCP connect deadline (default 5s)
	ResponseHeader time.Duration // per-attempt response-header deadline (default 15s)
	Stall          time.Duration // max silence on a job's event stream (default 30s)

	RetryRounds int           // passes over the worker ranking per cell (default 3)
	BackoffBase time.Duration // backoff before the second pass (default 100ms)
	BackoffMax  time.Duration // backoff cap for later passes (default 5s)

	BreakerAfter    int           // consecutive transport failures that trip a worker's breaker (default 3)
	BreakerCooldown time.Duration // open time before a half-open /healthz probe (default 10s)
	ProbeTimeout    time.Duration // deadline on that probe (default 2s)
}

// withDefaults fills zero fields with the defaults.
func (r Resilience) withDefaults() Resilience {
	if r.Dial == 0 {
		r.Dial = 5 * time.Second
	}
	if r.ResponseHeader == 0 {
		r.ResponseHeader = 15 * time.Second
	}
	if r.Stall == 0 {
		r.Stall = 30 * time.Second
	}
	if r.RetryRounds <= 0 {
		r.RetryRounds = 3
	}
	if r.BackoffBase <= 0 {
		r.BackoffBase = 100 * time.Millisecond
	}
	if r.BackoffMax <= 0 {
		r.BackoffMax = 5 * time.Second
	}
	if r.BreakerAfter <= 0 {
		r.BreakerAfter = 3
	}
	if r.BreakerCooldown <= 0 {
		r.BreakerCooldown = 10 * time.Second
	}
	if r.ProbeTimeout <= 0 {
		r.ProbeTimeout = 2 * time.Second
	}
	return r
}

// RemoteStats reports a coordinator session's dispatch accounting.
type RemoteStats struct {
	Workers     int    // configured worker count
	RemoteCells uint64 // cells completed by a worker
	LocalCells  uint64 // cells that fell back to in-process simulation
	Retries     uint64 // transport failures retried (on another worker or a later round)
	TapeFetches uint64 // remote cells whose tape crossed the network (peer tier)
	TapeBuilds  uint64 // remote cells whose tape was built fresh on the worker

	BreakerTrips uint64 // circuit breakers tripped open (fresh trips and failed probes)
	StallAborts  uint64 // event streams aborted by the stall detector
	BackoffWaits uint64 // backoff sleeps between retry rounds

	CkptResumes uint64        // cells that resumed from a checkpoint (remote or degraded-local)
	CkptFetches uint64        // checkpoints fetched from workers over GET /ckpts
	CkptWrites  uint64        // checkpoints written by workers for this session's cells
	CkptBytes   uint64        // total sealed bytes of those checkpoints
	ResumeWall  time.Duration // worker-measured simulation wall spent in resumed runs
}

// RemoteStats returns a snapshot of the session's remote dispatch
// accounting. A purely local session reports zeroes.
func (l *Lab) RemoteStats() RemoteStats {
	if l.remote == nil {
		return RemoteStats{}
	}
	return l.remote.snapshot()
}

// remotePool holds the coordinator's worker clients, their circuit
// breakers, and the session's dispatch accounting.
type remotePool struct {
	clients  []*dist.Client
	breakers map[*dist.Client]*dist.Breaker
	res      Resilience

	mu    sync.Mutex
	stats RemoteStats
}

func newRemotePool(urls []string, res Resilience, token string, rt http.RoundTripper) *remotePool {
	res = res.withDefaults()
	p := &remotePool{res: res, breakers: make(map[*dist.Client]*dist.Breaker)}
	opts := []dist.ClientOption{dist.WithTimeouts(dist.Timeouts{
		Dial:           res.Dial,
		ResponseHeader: res.ResponseHeader,
		Stall:          res.Stall,
	})}
	if token != "" {
		opts = append(opts, dist.WithAuth(token))
	}
	if rt != nil {
		opts = append(opts, dist.WithTransport(rt))
	}
	for _, u := range urls {
		c := dist.NewClient(u, opts...)
		p.clients = append(p.clients, c)
		p.breakers[c] = dist.NewBreaker(res.BreakerAfter, res.BreakerCooldown)
	}
	p.stats.Workers = len(p.clients)
	return p
}

func (p *remotePool) snapshot() RemoteStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// count applies a stats mutation under the pool lock.
func (p *remotePool) count(f func(*RemoteStats)) {
	p.mu.Lock()
	f(&p.stats)
	p.mu.Unlock()
}

// jobFromCell serializes a cell into its wire identity.
func jobFromCell(c *Cell) (*dist.Job, error) {
	job := &dist.Job{
		Version:  dist.JobFormatVersion,
		Mode:     "timed",
		Workload: c.Workload,
		Variant:  c.Label,
		Config:   c.Config,
		Pref:     c.Pref,
	}
	if c.Mode == Functional {
		job.Mode = "functional"
	}
	if c.Scenario != nil {
		b, err := json.Marshal(c.Scenario)
		if err != nil {
			return nil, fmt.Errorf("lab: encoding scenario %q: %w", c.Scenario.Name, err)
		}
		job.Scenario = b
	} else {
		spec := c.Spec
		job.Spec = &spec
	}
	return job, nil
}

// rank orders the pool's workers for a tape address by rendezvous
// (highest-random-weight) hashing: every coordinator ranks the same
// address the same way, cells sharing a tape agree on a home worker,
// and losing a worker reshuffles only the tapes it owned. The breaker
// gates the ranking but never reorders it, so a recovered worker
// resumes exactly its old positions.
func (p *remotePool) rank(key string) []*dist.Client {
	type scored struct {
		c     *dist.Client
		score uint64
	}
	s := make([]scored, len(p.clients))
	for i, c := range p.clients {
		h := fnv.New64a()
		h.Write([]byte(c.URL()))
		h.Write([]byte{'|'})
		h.Write([]byte(key))
		s[i] = scored{c, h.Sum64()}
	}
	sort.Slice(s, func(i, j int) bool {
		if s[i].score != s[j].score {
			return s[i].score > s[j].score
		}
		return s[i].c.URL() < s[j].c.URL()
	})
	out := make([]*dist.Client, len(s))
	for i := range s {
		out[i] = s[i].c
	}
	return out
}

// backoff computes the sleep before retry round `round` (1-based):
// exponential in the round with full jitter — uniform in (0, cap] —
// derived deterministically from the tape key, so a replayed run backs
// off identically and concurrent cells don't thundering-herd a
// recovering worker.
func (p *remotePool) backoff(key string, round int) time.Duration {
	ceil := p.res.BackoffBase << (round - 1)
	if ceil <= 0 || ceil > p.res.BackoffMax {
		ceil = p.res.BackoffMax
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	fmt.Fprintf(h, "|round=%d", round)
	return time.Duration(h.Sum64()%uint64(ceil)) + 1
}

// attemptLog aggregates per-attempt failures for one cell so a degraded
// dispatch is never silent: the log becomes the cell's ResultEvent
// note.
type attemptLog struct{ entries []string }

func (a *attemptLog) add(format string, args ...any) {
	a.entries = append(a.entries, fmt.Sprintf(format, args...))
}

// String renders the log, capped so a long outage doesn't flood the
// progress stream.
func (a *attemptLog) String() string {
	const max = 6
	if len(a.entries) <= max {
		return strings.Join(a.entries, "; ")
	}
	return strings.Join(a.entries[:max], "; ") +
		fmt.Sprintf("; (+%d more attempts)", len(a.entries)-max)
}

// ckptMatchesJob is the coordinator's identity check on a fetched
// checkpoint: mode, full config, and the complete prefetcher spec
// (JSON-compared — Kind alone would let a checkpoint from a different
// sampling probability restore cleanly into wrong results). The trace
// identity is re-validated by whichever side actually resumes.
func ckptMatchesJob(d sim.CheckpointDesc, job *dist.Job) bool {
	if d.Mode != job.Mode || d.Cfg != job.Config {
		return false
	}
	a, err1 := json.Marshal(d.PS)
	b, err2 := json.Marshal(job.Pref)
	return err1 == nil && err2 == nil && bytes.Equal(a, b)
}

// run executes one cell remotely. It makes up to Resilience.RetryRounds
// passes over the affinity ranking, backing off between passes, gating
// each attempt through the worker's circuit breaker, and falling back
// to local simulation when every attempt fails. The returned duration
// is the cell's non-simulation overhead (coordinator wall minus the
// worker-measured simulation time, or tape wait when local); the
// returned note records any degradation.
//
// Failures cost the tail of the cell, not the cell: after a transport
// failure the coordinator fetches the dead attempt's latest checkpoint
// from that worker's store (GET /ckpts), pushes it to the next worker
// it tries (PUT /ckpts), and the retry resumes mid-run. The
// degrade-to-local path resumes from the same exchanged checkpoint.
// Checkpoints are validated at every hop and discarded on any
// mismatch — a bad checkpoint can cost a cold restart, never a wrong
// result.
func (p *remotePool) run(ctx context.Context, l *Lab, cell *Cell) (sim.Results, time.Duration, string, error) {
	start := time.Now()
	job, err := jobFromCell(cell)
	if err != nil {
		return sim.Results{}, 0, "", err
	}
	key, err := job.TapeKey()
	if err != nil {
		return sim.Results{}, 0, "", err
	}
	ranking := p.rank(key)
	var log attemptLog

	// held is the freshest valid checkpoint the coordinator has
	// exchanged for this cell; adopt validates and keeps the best.
	ckptKey, err := job.CkptKey()
	if err != nil {
		return sim.Results{}, 0, "", err
	}
	ck := cellKey(cell)
	var held []byte
	var heldRecs uint64
	adopt := func(data []byte) bool {
		d, perr := sim.PeekCheckpoint(data)
		if perr != nil || !ckptMatchesJob(d, job) {
			return false
		}
		if held != nil && d.Records <= heldRecs {
			return false
		}
		held, heldRecs = data, d.Records
		l.recordPartial(ck, ckptKey)
		return true
	}
	fetchCkpt := func(c *dist.Client) bool {
		fctx, cancel := context.WithTimeout(ctx, p.res.ProbeTimeout)
		data, ferr := c.FetchCkpt(fctx, ckptKey)
		cancel()
		if ferr != nil || !adopt(data) {
			return false
		}
		p.count(func(s *RemoteStats) { s.CkptFetches++ })
		return true
	}

	// A prior session's manifest recorded a checkpoint for this cell:
	// sweep the ranking for it before the first attempt, so the
	// restarted coordinator resumes the partial cell instead of
	// starting it over.
	if pk := l.partialCkpt(ck); pk == ckptKey {
		for _, c := range ranking {
			if ctx.Err() != nil || fetchCkpt(c) {
				break
			}
		}
	}

	for round := 0; round < p.res.RetryRounds; round++ {
		if round > 0 {
			d := p.backoff(key, round)
			p.count(func(s *RemoteStats) { s.BackoffWaits++ })
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return sim.Results{}, 0, "", ctx.Err()
			}
		}
		for _, c := range ranking {
			if ctx.Err() != nil {
				return sim.Results{}, 0, "", ctx.Err()
			}
			b := p.breakers[c]
			switch b.Gate(time.Now()) {
			case dist.BreakerSkip:
				continue
			case dist.BreakerProbe:
				pctx, cancel := context.WithTimeout(ctx, p.res.ProbeTimeout)
				_, herr := c.Health(pctx)
				cancel()
				if herr != nil {
					if b.Failure(time.Now()) {
						p.count(func(s *RemoteStats) { s.BreakerTrips++ })
					}
					log.add("%s: probe failed: %v", c.URL(), herr)
					continue
				}
				b.Success()
			}
			if held != nil {
				// Best-effort: park the exchanged checkpoint in this
				// worker's store so the job it is about to run resumes
				// from it instead of starting cold.
				pctx, cancel := context.WithTimeout(ctx, p.res.ProbeTimeout)
				c.PushCkpt(pctx, ckptKey, held)
				cancel()
			}
			r, err := c.RunJob(ctx, job, nil)
			if err == nil {
				b.Success()
				p.count(func(s *RemoteStats) {
					s.RemoteCells++
					switch r.TapeSource {
					case dist.TapeFromPeer:
						s.TapeFetches++
					case dist.TapeBuilt:
						s.TapeBuilds++
					}
					s.CkptWrites += r.CkptWrites
					s.CkptBytes += r.CkptBytes
					if r.Resumed {
						s.CkptResumes++
						s.ResumeWall += time.Duration(r.WallMS * float64(time.Millisecond))
					}
				})
				// Satellite accounting fix: the worker measured its own
				// simulation time (Result.WallMS); everything else the
				// coordinator waited through — dial, queueing, retries,
				// tape movement — is overhead, not simulation.
				overhead := time.Since(start) - time.Duration(r.WallMS*float64(time.Millisecond))
				if overhead < 0 {
					overhead = 0
				}
				note := ""
				switch {
				case len(log.entries) > 0 && r.Resumed:
					note = fmt.Sprintf("recovered on %s (resumed from the exchanged checkpoint) after %d failed attempts: %s",
						c.URL(), len(log.entries), log.String())
				case len(log.entries) > 0:
					note = fmt.Sprintf("recovered on %s after %d failed attempts: %s",
						c.URL(), len(log.entries), log.String())
				case r.Resumed:
					note = fmt.Sprintf("resumed from checkpoint on %s", c.URL())
				}
				return r.Res, overhead, note, nil
			}
			if !dist.IsTransport(err) {
				// The job itself failed (or the worker rejected it
				// deterministically — bad structure, bad credentials);
				// retrying elsewhere would fail identically.
				return sim.Results{}, 0, log.String(), err
			}
			p.count(func(s *RemoteStats) {
				s.Retries++
				if errors.Is(err, dist.ErrStalled) {
					s.StallAborts++
				}
			})
			if b.Failure(time.Now()) {
				p.count(func(s *RemoteStats) { s.BreakerTrips++ })
			}
			log.add("%s: %v", c.URL(), err)
			// The attempt died mid-job, but the worker's store may hold
			// the checkpoints the run wrote before it did — fetch the
			// latest so the next attempt (or the local fallback) costs
			// only the tail of the cell.
			if fetchCkpt(c) {
				log.add("fetched its checkpoint (%d records in)", heldRecs)
			}
		}
	}
	// Every attempt failed (or the pool is empty): degrade to in-process
	// execution rather than failing the matrix — loudly, via the note.
	// One final sweep may still recover a checkpoint from a worker that
	// cannot run jobs but still serves its store.
	if held == nil {
		for _, c := range ranking {
			if ctx.Err() != nil || fetchCkpt(c) {
				break
			}
		}
	}
	p.count(func(s *RemoteStats) { s.LocalCells++ })
	if held != nil {
		res, _, resumed, rerr := dist.ExecuteJob(ctx, job, l.tapes, nil, nil, &dist.ExecOptions{Resume: held})
		if rerr == nil {
			if resumed {
				p.count(func(s *RemoteStats) { s.CkptResumes++ })
			}
			note := fmt.Sprintf("degraded to local after %d failed remote attempts", len(log.entries))
			if resumed {
				note += fmt.Sprintf(", resumed from the exchanged checkpoint (%d records in)", heldRecs)
			}
			if len(log.entries) > 0 {
				note += ": " + log.String()
			}
			return res, 0, note, nil
		}
	}
	note := ""
	if len(log.entries) > 0 {
		note = fmt.Sprintf("degraded to local after %d failed remote attempts: %s",
			len(log.entries), log.String())
	}
	res, tapeWait, err := l.simulate(ctx, cell)
	return res, tapeWait, note, err
}
