package lab

// The coordinator side of the distributed lab. A session given
// WithWorkers dispatches plan cells to stms-serve worker daemons
// instead of simulating in-process:
//
//   - cells route to workers by rendezvous hashing on their tape
//     address, so every variant column of a matrix row lands where the
//     row's tape already lives and each unique tape is built once
//     fleet-wide;
//   - transport failures (connection refused, stream cut) retry the
//     cell on the next-ranked worker; job failures are deterministic
//     and surface immediately — retrying elsewhere would fail the same
//     way;
//   - when every worker is unreachable the cell degrades gracefully to
//     in-process simulation, so a matrix always completes.
//
// Cells are pure functions of their configuration, so remote execution
// is memoization over the network: the Matrix a worker pool produces is
// bit-identical to an in-process run.

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"stms/internal/dist"
	"stms/internal/sim"
)

// RemoteStats reports a coordinator session's dispatch accounting.
type RemoteStats struct {
	Workers     int    // configured worker count
	RemoteCells uint64 // cells completed by a worker
	LocalCells  uint64 // cells that fell back to in-process simulation
	Retries     uint64 // transport failures retried on another worker
	TapeFetches uint64 // remote cells whose tape crossed the network (peer tier)
	TapeBuilds  uint64 // remote cells whose tape was built fresh on the worker
}

// RemoteStats returns a snapshot of the session's remote dispatch
// accounting. A purely local session reports zeroes.
func (l *Lab) RemoteStats() RemoteStats {
	if l.remote == nil {
		return RemoteStats{}
	}
	return l.remote.snapshot()
}

// remotePool holds the coordinator's worker clients and accounting.
type remotePool struct {
	clients []*dist.Client

	mu    sync.Mutex
	stats RemoteStats
}

func newRemotePool(urls []string) *remotePool {
	p := &remotePool{}
	for _, u := range urls {
		p.clients = append(p.clients, dist.NewClient(u))
	}
	p.stats.Workers = len(p.clients)
	return p
}

func (p *remotePool) snapshot() RemoteStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// jobFromCell serializes a cell into its wire identity.
func jobFromCell(c *Cell) (*dist.Job, error) {
	job := &dist.Job{
		Version:  dist.JobFormatVersion,
		Mode:     "timed",
		Workload: c.Workload,
		Variant:  c.Label,
		Config:   c.Config,
		Pref:     c.Pref,
	}
	if c.Mode == Functional {
		job.Mode = "functional"
	}
	if c.Scenario != nil {
		b, err := json.Marshal(c.Scenario)
		if err != nil {
			return nil, fmt.Errorf("lab: encoding scenario %q: %w", c.Scenario.Name, err)
		}
		job.Scenario = b
	} else {
		spec := c.Spec
		job.Spec = &spec
	}
	return job, nil
}

// rank orders the pool's workers for a tape address by rendezvous
// (highest-random-weight) hashing: every coordinator ranks the same
// address the same way, cells sharing a tape agree on a home worker,
// and losing a worker reshuffles only the tapes it owned.
func (p *remotePool) rank(key string) []*dist.Client {
	type scored struct {
		c     *dist.Client
		score uint64
	}
	s := make([]scored, len(p.clients))
	for i, c := range p.clients {
		h := fnv.New64a()
		h.Write([]byte(c.URL()))
		h.Write([]byte{'|'})
		h.Write([]byte(key))
		s[i] = scored{c, h.Sum64()}
	}
	sort.Slice(s, func(i, j int) bool {
		if s[i].score != s[j].score {
			return s[i].score > s[j].score
		}
		return s[i].c.URL() < s[j].c.URL()
	})
	out := make([]*dist.Client, len(s))
	for i := range s {
		out[i] = s[i].c
	}
	return out
}

// run executes one cell remotely, retrying transport failures down the
// affinity ranking and falling back to local simulation when every
// worker is unreachable.
func (p *remotePool) run(ctx context.Context, l *Lab, cell *Cell) (sim.Results, time.Duration, error) {
	job, err := jobFromCell(cell)
	if err != nil {
		return sim.Results{}, 0, err
	}
	key, err := job.TapeKey()
	if err != nil {
		return sim.Results{}, 0, err
	}
	for _, c := range p.rank(key) {
		if ctx.Err() != nil {
			return sim.Results{}, 0, ctx.Err()
		}
		r, err := c.RunJob(ctx, job, nil)
		if err == nil {
			p.mu.Lock()
			p.stats.RemoteCells++
			switch r.TapeSource {
			case dist.TapeFromPeer:
				p.stats.TapeFetches++
			case dist.TapeBuilt:
				p.stats.TapeBuilds++
			}
			p.mu.Unlock()
			return r.Res, 0, nil
		}
		if !dist.IsTransport(err) {
			// The job itself failed; deterministic, so no retry.
			return sim.Results{}, 0, err
		}
		p.mu.Lock()
		p.stats.Retries++
		p.mu.Unlock()
	}
	// Every worker is unreachable (or the pool is empty): degrade to
	// in-process execution rather than failing the matrix.
	p.mu.Lock()
	p.stats.LocalCells++
	p.mu.Unlock()
	return l.simulate(ctx, cell)
}
