package lab

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"stms/internal/dist"
	"stms/internal/sim"
	"stms/internal/trace"
)

// EventKind classifies a ResultEvent.
type EventKind int

// Cell lifecycle events.
const (
	CellStarted EventKind = iota
	CellFinished
	CellFailed
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case CellStarted:
		return "started"
	case CellFinished:
		return "finished"
	case CellFailed:
		return "failed"
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// ResultEvent streams per-cell progress out of Lab.Run. Events are
// delivered serialized (one at a time) to the session's progress sink.
type ResultEvent struct {
	Kind  EventKind
	Cell  Cell
	Done  int           // cells completed (finished, failed or memo-hit) so far
	Total int           // cells in the plan
	Res   *sim.Results  // CellFinished only (read-only; shared with the Matrix)
	Err   error         // CellFailed only
	Wall  time.Duration // CellFinished/CellFailed: wall-clock cell time
	Note  string        // dispatch degradation note (retries, breaker skips, local fallback)
}

// Run executes the plan's cells across the session's worker pool and
// returns the indexed result Matrix. Per-cell results are deterministic
// functions of the cell configuration, so the Matrix is identical
// regardless of parallelism. Cells already in the session memo — or
// duplicated within the plan — are simulated only once.
//
// Cancelling ctx stops the workers promptly (in-flight simulations poll
// the context every few thousand records); Run then returns the partial
// Matrix alongside ctx.Err(). A cell-level failure (invalid per-cell
// config) does not abort sibling cells: the whole matrix still
// executes, the failure is recorded on its CellResult, and Run returns
// the first such error alongside the otherwise-complete Matrix.
func (l *Lab) Run(ctx context.Context, p *RunPlan) (*Matrix, error) {
	if p == nil {
		return nil, fmt.Errorf("lab: nil plan")
	}
	if p.err != nil {
		return nil, p.err
	}
	m := &Matrix{
		Workloads: append([]string(nil), p.Workloads...),
		Labels:    append([]string(nil), p.Labels...),
		Cells:     make([]CellResult, len(p.Cells)),
	}
	st := &runState{lab: l, m: m, total: len(p.Cells), dups: make(map[int][]int)}

	// Serve memo hits first (emitting their finished events
	// immediately), collapse identical cells within the plan onto one
	// representative, and fan the rest out over the pool.
	var todo []int
	rep := make(map[string]int) // cellKey → representative index in todo
	for i := range p.Cells {
		cell := p.Cells[i]
		m.Cells[i] = CellResult{Cell: cell}
		key := cellKey(&cell)
		if sr, ok := l.lookupSmp(key); ok {
			m.Cells[i].Res = &sr.Results
			m.Cells[i].Sampled = sr
			st.emit(ResultEvent{Kind: CellFinished, Cell: cell, Res: &sr.Results})
			continue
		}
		if res, ok := l.lookup(key); ok {
			m.Cells[i].Res = res
			st.emit(ResultEvent{Kind: CellFinished, Cell: cell, Res: res})
			continue
		}
		if r, ok := rep[key]; ok {
			st.dups[r] = append(st.dups[r], i)
			continue
		}
		rep[key] = i
		todo = append(todo, i)
	}

	par := l.par
	if par > len(todo) {
		par = len(todo)
	}
	if par < 1 {
		par = 1
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				st.runCell(ctx, i)
			}
		}()
	}
feed:
	for _, i := range todo {
		select {
		case <-ctx.Done():
			break feed
		case idx <- i:
		}
	}
	close(idx)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return m, err
	}
	return m, m.Err()
}

// dispatch routes a cell to the session's worker pool when one is
// configured (WithWorkers) and to in-process simulation otherwise.
// Either path produces bit-identical results; the remote pool itself
// degrades to simulate when every attempt fails. The duration is the
// cell's non-simulation overhead (tape access locally; network,
// queueing and retries remotely) and the note records any remote
// degradation for the progress stream. Sampled cells always simulate
// locally: their parallelism is the window fan-out itself, and the
// worker protocol ships exact results only.
func (l *Lab) dispatch(ctx context.Context, cell *Cell) (sim.Results, *sim.SampledResults, time.Duration, string, error) {
	if cell.Sampling.Windows > 1 {
		sr, tapeWait, err := l.simulateSampled(ctx, cell)
		if err != nil {
			return sim.Results{}, nil, tapeWait, "", err
		}
		return sr.Results, sr, tapeWait, "", nil
	}
	if l.remote == nil {
		res, tapeWait, err := l.simulate(ctx, cell)
		return res, nil, tapeWait, "", err
	}
	res, d, note, err := l.remote.run(ctx, l, cell)
	return res, nil, d, note, err
}

// simulate executes one cell's simulation, serving its record stream
// from the session tape store when enabled: every cell with the same
// trace identity replays one materialized tape. tapeWait is how much of
// the cell's wall time went to tape access (building, or waiting on a
// sibling's build) rather than simulation.
func (l *Lab) simulate(ctx context.Context, cell *Cell) (res sim.Results, tapeWait time.Duration, err error) {
	if l.tapes == nil {
		switch {
		case cell.Scenario != nil && cell.Mode == Functional:
			res, err = sim.RunFunctionalScenarioCtx(ctx, cell.Config, *cell.Scenario, cell.Pref, nil)
		case cell.Scenario != nil:
			res, err = sim.RunTimedScenarioCtx(ctx, cell.Config, *cell.Scenario, cell.Pref, nil)
		case cell.Mode == Functional:
			res, err = sim.RunFunctionalCtx(ctx, cell.Config, cell.Spec, cell.Pref, nil)
		default:
			res, err = sim.RunTimedCtx(ctx, cell.Config, cell.Spec, cell.Pref, nil)
		}
		return res, 0, err
	}
	// Validate before touching the tape store — the sim entry points
	// validate again, but only after the tape exists, and a cell with a
	// broken per-cell override must not cost a tape build.
	if err := cell.Config.Validate(); err != nil {
		return sim.Results{}, 0, err
	}
	seed := cell.Config.Seed
	cores := cell.Config.Cores
	perCore := cell.Config.WarmRecords + cell.Config.MeasureRecords
	var key string
	var build func() *trace.Tape
	if cell.Scenario != nil {
		scn := cell.Scenario.Scaled(cell.Config.Scale)
		key = dist.TapeKey(trace.Spec{}, scn.Key(), seed, cores, perCore)
		build = func() *trace.Tape {
			return trace.NewScenarioTape(scn, seed, cores, perCore)
		}
	} else {
		spec := cell.Spec.Scaled(cell.Config.Scale)
		key = dist.TapeKey(spec, "", seed, cores, perCore)
		build = func() *trace.Tape {
			return trace.NewTape(spec, seed, cores, perCore)
		}
	}
	t0 := time.Now()
	tape, _, err := l.tapes.GetOrBuild(ctx, key, nil, build)
	tapeWait = time.Since(t0)
	if err != nil {
		return sim.Results{}, tapeWait, err
	}
	switch cell.Mode {
	case Functional:
		res, err = sim.RunFunctionalTapeCtx(ctx, cell.Config, tape, cell.Pref, nil)
	default:
		res, err = sim.RunTimedTapeCtx(ctx, cell.Config, tape, cell.Pref, nil)
	}
	return res, tapeWait, err
}

// simulateSampled executes one sampled cell (Sampling.Windows > 1):
// the K-window fork/join estimate of the same timed run, served from
// the session tape store when enabled so sampled and exact cells of
// one trace identity share a materialized tape.
func (l *Lab) simulateSampled(ctx context.Context, cell *Cell) (*sim.SampledResults, time.Duration, error) {
	var sr sim.SampledResults
	var err error
	if l.tapes == nil {
		if cell.Scenario != nil {
			sr, err = sim.RunSampledScenarioCtx(ctx, cell.Config, *cell.Scenario, cell.Pref, cell.Sampling, nil)
		} else {
			sr, err = sim.RunSampledCtx(ctx, cell.Config, cell.Spec, cell.Pref, cell.Sampling, nil)
		}
		if err != nil {
			return nil, 0, err
		}
		return &sr, 0, nil
	}
	if err := cell.Config.Validate(); err != nil {
		return nil, 0, err
	}
	seed := cell.Config.Seed
	cores := cell.Config.Cores
	perCore := cell.Config.WarmRecords + cell.Config.MeasureRecords
	var key string
	var build func() *trace.Tape
	if cell.Scenario != nil {
		scn := cell.Scenario.Scaled(cell.Config.Scale)
		key = dist.TapeKey(trace.Spec{}, scn.Key(), seed, cores, perCore)
		build = func() *trace.Tape {
			return trace.NewScenarioTape(scn, seed, cores, perCore)
		}
	} else {
		spec := cell.Spec.Scaled(cell.Config.Scale)
		key = dist.TapeKey(spec, "", seed, cores, perCore)
		build = func() *trace.Tape {
			return trace.NewTape(spec, seed, cores, perCore)
		}
	}
	t0 := time.Now()
	tape, _, err := l.tapes.GetOrBuild(ctx, key, nil, build)
	tapeWait := time.Since(t0)
	if err != nil {
		return nil, tapeWait, err
	}
	sr, err = sim.RunSampledTapeCtx(ctx, cell.Config, tape, cell.Pref, cell.Sampling, nil)
	if err != nil {
		return nil, tapeWait, err
	}
	return &sr, tapeWait, nil
}

// runState carries the per-Run bookkeeping shared by the workers.
type runState struct {
	lab   *Lab
	m     *Matrix
	total int
	dups  map[int][]int // representative cell index → identical cells

	evMu sync.Mutex
	done int
}

// emit counts completions and delivers the event to the session sink,
// serialized.
func (st *runState) emit(ev ResultEvent) {
	st.evMu.Lock()
	defer st.evMu.Unlock()
	if ev.Kind != CellStarted {
		st.done++
	}
	if st.lab.onEvent == nil {
		return
	}
	ev.Done = st.done
	ev.Total = st.total
	st.lab.onEvent(ev)
}

// runCell executes one cell and records its outcome.
func (st *runState) runCell(ctx context.Context, i int) {
	cr := &st.m.Cells[i]
	cell := cr.Cell
	st.emit(ResultEvent{Kind: CellStarted, Cell: cell})
	start := time.Now()

	var res sim.Results
	var sr *sim.SampledResults
	var err error
	var overhead time.Duration
	var note string
	func() {
		// The simulator substrate panics on internal invariant breaks;
		// contain those to the failing cell.
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("lab: cell %s/%s panicked: %v", cell.Workload, cell.Label, r)
			}
		}()
		res, sr, overhead, note, err = st.lab.dispatch(ctx, &cell)
	}()

	cr.Wall = time.Since(start)
	if overhead > cr.Wall {
		overhead = cr.Wall
	}
	atomic.AddInt64(&st.lab.simNS, int64(cr.Wall-overhead))
	if err != nil {
		if ctx.Err() == nil {
			// Real cell failure, not cancellation fallout: record it on
			// the representative and every identical cell.
			cr.Err = err
			st.emit(ResultEvent{Kind: CellFailed, Cell: cell, Err: err, Wall: cr.Wall, Note: note})
			for _, d := range st.dups[i] {
				dr := &st.m.Cells[d]
				dr.Err = err
				st.emit(ResultEvent{Kind: CellFailed, Cell: dr.Cell, Err: err})
			}
		}
		return
	}
	if sr != nil {
		cr.Sampled = sr
		cr.Res = &sr.Results
		st.lab.storeSmp(cellKey(&cell), sr)
	} else {
		cr.Res = &res
		st.lab.store(cellKey(&cell), cr.Res)
	}
	st.emit(ResultEvent{Kind: CellFinished, Cell: cell, Res: cr.Res, Wall: cr.Wall, Note: note})
	// Identical plan cells share the result without re-simulating.
	for _, d := range st.dups[i] {
		dr := &st.m.Cells[d]
		dr.Res = cr.Res
		dr.Sampled = cr.Sampled
		st.emit(ResultEvent{Kind: CellFinished, Cell: dr.Cell, Res: cr.Res})
	}
}
