package dram

import (
	"testing"

	"stms/internal/event"
)

func TestUnloadedLatency(t *testing.T) {
	eng := event.NewEngine()
	c := New(eng, Config{LatencyCycles: 180, XferCycles: 9})
	var done uint64
	c.Read(Demand, true, func(now uint64) { done = now })
	eng.Drain(nil)
	if done != 180 {
		t.Fatalf("unloaded read completed at %d, want 180", done)
	}
}

func TestBandwidthSerialization(t *testing.T) {
	eng := event.NewEngine()
	c := New(eng, Config{LatencyCycles: 180, XferCycles: 9})
	var times []uint64
	for i := 0; i < 3; i++ {
		c.Read(Demand, true, func(now uint64) { times = append(times, now) })
	}
	eng.Drain(nil)
	want := []uint64{180, 189, 198} // service starts 0, 9, 18
	for i, w := range want {
		if times[i] != w {
			t.Fatalf("read %d completed at %d, want %d", i, times[i], w)
		}
	}
}

func TestPriorityOrdering(t *testing.T) {
	eng := event.NewEngine()
	c := New(eng, Config{LatencyCycles: 100, XferCycles: 10})
	var order []string
	// One request occupies the channel; then a low and a high arrive.
	c.Read(Demand, true, func(uint64) { order = append(order, "first") })
	c.Read(IndexLookup, false, func(uint64) { order = append(order, "low") })
	c.Read(Demand, true, func(uint64) { order = append(order, "high") })
	eng.Drain(nil)
	if len(order) != 3 || order[0] != "first" || order[1] != "high" || order[2] != "low" {
		t.Fatalf("order = %v, want [first high low]", order)
	}
}

func TestLowPriorityStarvesBehindHigh(t *testing.T) {
	eng := event.NewEngine()
	c := New(eng, Config{LatencyCycles: 100, XferCycles: 10})
	var lowDone uint64
	c.Read(HistoryRead, false, func(now uint64) { lowDone = now })
	for i := 0; i < 5; i++ {
		c.Read(Demand, true, nil)
	}
	eng.Drain(nil)
	// The low request arrived first so it starts service immediately
	// (non-preemptive); it must finish at 100.
	if lowDone != 100 {
		t.Fatalf("low done at %d", lowDone)
	}

	// Now enqueue low AFTER highs while busy.
	eng2 := event.NewEngine()
	c2 := New(eng2, Config{LatencyCycles: 100, XferCycles: 10})
	c2.Read(Demand, true, nil) // occupies channel until 10
	var low2 uint64
	c2.Read(HistoryRead, false, func(now uint64) { low2 = now })
	for i := 0; i < 3; i++ {
		c2.Read(Demand, true, nil)
	}
	eng2.Drain(nil)
	// Highs serve at 10,20,30; low at 40 → data at 140.
	if low2 != 140 {
		t.Fatalf("queued low done at %d, want 140", low2)
	}
}

func TestWritesConsumeBandwidth(t *testing.T) {
	eng := event.NewEngine()
	c := New(eng, Config{LatencyCycles: 100, XferCycles: 10})
	c.Write(Writeback, false)
	var done uint64
	c.Read(Demand, true, func(now uint64) { done = now })
	eng.Drain(nil)
	// Write started first (channel free), read waits one slot.
	if done != 110 {
		t.Fatalf("read after write done at %d, want 110", done)
	}
}

func TestTrafficAccounting(t *testing.T) {
	eng := event.NewEngine()
	c := New(eng, DefaultConfig())
	c.Read(Demand, true, nil)
	c.Read(Demand, true, nil)
	c.Write(Writeback, false)
	c.Read(IndexLookup, false, nil)
	c.Write(HistoryAppend, false)
	eng.Drain(nil)
	tr := c.Traffic()
	if tr.Accesses[Demand] != 2 || tr.Accesses[Writeback] != 1 ||
		tr.Accesses[IndexLookup] != 1 || tr.Accesses[HistoryAppend] != 1 {
		t.Fatalf("traffic = %+v", tr.Accesses)
	}
	if tr.Bytes(Demand) != 128 {
		t.Fatalf("demand bytes = %d", tr.Bytes(Demand))
	}
	if tr.TotalAccesses() != 5 {
		t.Fatalf("total = %d", tr.TotalAccesses())
	}
}

func TestTrafficSub(t *testing.T) {
	var a, b Traffic
	a.Accesses[Demand] = 10
	b.Accesses[Demand] = 4
	d := a.Sub(b)
	if d.Accesses[Demand] != 6 {
		t.Fatalf("sub = %d", d.Accesses[Demand])
	}
	if d.TotalAccesses() != 6 {
		t.Fatalf("total = %d", d.TotalAccesses())
	}
}

func TestResetStats(t *testing.T) {
	eng := event.NewEngine()
	c := New(eng, DefaultConfig())
	c.Read(Demand, true, nil)
	eng.Drain(nil)
	c.ResetStats()
	if c.Traffic().TotalAccesses() != 0 {
		t.Fatal("traffic not reset")
	}
	if c.Utilization() != 0 {
		t.Fatal("utilization not reset")
	}
}

func TestUtilizationSaturation(t *testing.T) {
	eng := event.NewEngine()
	c := New(eng, Config{LatencyCycles: 100, XferCycles: 10})
	for i := 0; i < 100; i++ {
		c.Read(Demand, true, nil)
	}
	eng.Drain(nil)
	// 100 transfers × 10 cycles back to back; last completion at
	// 990+100; utilization = 1000/1090 ≈ 0.92.
	u := c.Utilization()
	if u < 0.85 || u > 1.0 {
		t.Fatalf("utilization = %v", u)
	}
	if c.AvgQueueDelay() <= 0 {
		t.Fatal("expected queueing delay under saturation")
	}
}

func TestClassStrings(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < NumClasses; i++ {
		s := Class(i).String()
		if s == "" || s == "unknown" {
			t.Fatalf("class %d has no name", i)
		}
		if seen[s] {
			t.Fatalf("duplicate class name %q", s)
		}
		seen[s] = true
	}
}
