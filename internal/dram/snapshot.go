package dram

import (
	"fmt"

	"stms/internal/ckpt"
	"stms/internal/event"
)

func snapshotQueue(enc *ckpt.Encoder, q *reqQueue, idOf func(event.Handler) (uint32, bool)) error {
	enc.Int(q.n)
	for i := 0; i < q.n; i++ {
		r := &q.buf[(q.head+i)&(len(q.buf)-1)]
		if r.done != nil {
			return fmt.Errorf("dram: queued closure-path request (class %v) is not checkpointable", r.class)
		}
		id := uint32(0)
		hasH := r.h != nil
		if hasH {
			var ok bool
			if id, ok = idOf(r.h); !ok {
				return fmt.Errorf("dram: queued request handler %T is not registered", r.h)
			}
		}
		enc.U8(uint8(r.class))
		enc.Bool(r.isWrite)
		enc.U8(r.kind)
		enc.Bool(hasH)
		enc.U32(id)
		enc.U64(r.a)
		enc.U64(r.b)
		enc.U64(r.enqueued)
	}
	return nil
}

func restoreQueue(dec *ckpt.Decoder, q *reqQueue, handlerOf func(uint32) (event.Handler, bool)) error {
	n := dec.Int()
	if err := dec.Err(); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		var r request
		r.class = Class(dec.U8())
		r.isWrite = dec.Bool()
		r.kind = dec.U8()
		hasH := dec.Bool()
		id := dec.U32()
		r.a = dec.U64()
		r.b = dec.U64()
		r.enqueued = dec.U64()
		if err := dec.Err(); err != nil {
			return err
		}
		if hasH {
			h, ok := handlerOf(id)
			if !ok {
				return fmt.Errorf("dram: queued request references unknown handler %d", id)
			}
			r.h = h
		}
		q.push(r)
	}
	return nil
}

// Snapshot serializes the controller: both priority queues in FIFO
// order, channel occupancy, and the traffic/utilization counters.
// Closure-path requests (Read) and parked delivery slots cannot be
// serialized; checkpointable configurations use only ReadH/Write.
func (c *Controller) Snapshot(enc *ckpt.Encoder, idOf func(event.Handler) (uint32, bool)) error {
	for _, s := range c.slots {
		if s != nil {
			return fmt.Errorf("dram: in-flight closure-path delivery is not checkpointable")
		}
	}
	enc.Section("dram.Controller")
	if err := snapshotQueue(enc, &c.hi, idOf); err != nil {
		return err
	}
	if err := snapshotQueue(enc, &c.lo, idOf); err != nil {
		return err
	}
	enc.U64(c.busyUntil)
	enc.Bool(c.drain)
	for _, a := range c.traffic.Accesses {
		enc.U64(a)
	}
	enc.U64(c.busyCycles)
	enc.U64(c.queueDelay)
	enc.U64(c.servedCount)
	enc.U64(c.createdCycle)
	return nil
}

// Restore rebuilds the controller from a Snapshot. The controller must
// be freshly constructed on the restored engine; the pending drain
// event (when drain is set) is restored by the event engine itself.
func (c *Controller) Restore(dec *ckpt.Decoder, handlerOf func(uint32) (event.Handler, bool)) error {
	if c.hi.n != 0 || c.lo.n != 0 {
		return fmt.Errorf("dram: restore into non-empty controller")
	}
	dec.Section("dram.Controller")
	if err := restoreQueue(dec, &c.hi, handlerOf); err != nil {
		return err
	}
	if err := restoreQueue(dec, &c.lo, handlerOf); err != nil {
		return err
	}
	c.busyUntil = dec.U64()
	c.drain = dec.Bool()
	for i := range c.traffic.Accesses {
		c.traffic.Accesses[i] = dec.U64()
	}
	c.busyCycles = dec.U64()
	c.queueDelay = dec.U64()
	c.servedCount = dec.U64()
	c.createdCycle = dec.U64()
	return dec.Err()
}
