// Package dram models the off-chip memory interface the paper's analysis
// revolves around: a fixed-latency DRAM with a finite-bandwidth channel and
// two priority classes.
//
// Geometry follows Table 1: 45 ns access latency (180 cycles at 4 GHz) and
// 28.4 GB/s peak bandwidth with 64-byte transfers, i.e. one transfer every
// ~9 cycles. Demand traffic is served at high priority; all predictor
// meta-data and prefetch traffic is low priority ("We find that assigning a
// low priority to predictor memory traffic is essential", §4.3).
//
// Every access carries a Class so the experiment harness can reconstruct
// Figure 7's overhead breakdown (record streams / update index / lookup
// streams / incorrect prefetches) directly from controller counters.
package dram

import (
	"stms/internal/event"
	"stms/internal/mem"
)

// Class labels the purpose of a memory access for traffic accounting.
type Class uint8

// Traffic classes. Demand and Writeback are the base system's "useful"
// traffic; everything else is prefetcher overhead of one kind or another.
const (
	Demand        Class = iota // demand cache-block fetch (read)
	Writeback                  // dirty eviction (write)
	StrideData                 // stride-prefetched block (read)
	StreamData                 // temporally-streamed block (read)
	IndexLookup                // index-table bucket read on lookup
	IndexUpdateRd              // index-table bucket read for update
	IndexUpdateWr              // index-table bucket writeback
	HistoryAppend              // packed history-buffer write (12 entries/line)
	HistoryRead                // history-buffer line read while streaming
	EndMarkWrite               // stream-end annotation write
	numClasses
)

var classNames = [numClasses]string{
	"demand", "writeback", "stride", "stream-data", "index-lookup",
	"index-update-rd", "index-update-wr", "history-append", "history-read",
	"end-mark",
}

// String returns the class name.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "unknown"
}

// NumClasses is the number of traffic classes.
const NumClasses = int(numClasses)

// Config sets the controller's timing parameters.
type Config struct {
	// LatencyCycles is the unloaded access latency (request start to data
	// available). Table 1: 45 ns at 4 GHz = 180 cycles.
	LatencyCycles uint64
	// XferCycles is the channel occupancy of one 64-byte transfer.
	// 28.4 GB/s at 4 GHz = 64 B every ~9 cycles.
	XferCycles uint64
}

// DefaultConfig returns Table 1's memory system.
func DefaultConfig() Config {
	return Config{LatencyCycles: 180, XferCycles: 9}
}

// Traffic accumulates per-class access counts; bytes are counts × 64.
type Traffic struct {
	Accesses [NumClasses]uint64
}

// Bytes returns the byte volume of class c.
func (t Traffic) Bytes(c Class) uint64 {
	return t.Accesses[c] * mem.BlockBytes
}

// TotalAccesses sums all classes.
func (t Traffic) TotalAccesses() uint64 {
	var s uint64
	for _, a := range t.Accesses {
		s += a
	}
	return s
}

// Sub returns the element-wise difference t - old (for measurement
// windows).
func (t Traffic) Sub(old Traffic) Traffic {
	var d Traffic
	for i := range t.Accesses {
		d.Accesses[i] = t.Accesses[i] - old.Accesses[i]
	}
	return d
}

type request struct {
	class    Class
	isWrite  bool
	done     func(now uint64)
	enqueued uint64
}

// Controller is the event-driven memory controller. All requests transfer
// exactly one 64-byte block.
type Controller struct {
	cfg Config
	eng *event.Engine

	hi, lo  []request // FIFO queues per priority
	busy    bool
	traffic Traffic

	// busyCycles integrates channel occupancy for utilization reporting.
	busyCycles uint64
	// queueDelay accumulates cycles spent waiting before service.
	queueDelay   uint64
	servedCount  uint64
	createdCycle uint64
}

// New builds a controller on the given engine.
func New(eng *event.Engine, cfg Config) *Controller {
	return &Controller{cfg: cfg, eng: eng, createdCycle: eng.Now()}
}

// Traffic returns a copy of the per-class counters.
func (c *Controller) Traffic() Traffic { return c.traffic }

// Utilization returns the fraction of cycles the channel was busy since
// construction (or the last ResetStats).
func (c *Controller) Utilization() float64 {
	elapsed := c.eng.Now() - c.createdCycle
	if elapsed == 0 {
		return 0
	}
	return float64(c.busyCycles) / float64(elapsed)
}

// AvgQueueDelay returns the mean cycles requests waited for the channel.
func (c *Controller) AvgQueueDelay() float64 {
	if c.servedCount == 0 {
		return 0
	}
	return float64(c.queueDelay) / float64(c.servedCount)
}

// ResetStats zeroes traffic and utilization counters (end of warm-up).
// In-flight requests continue unaffected.
func (c *Controller) ResetStats() {
	c.traffic = Traffic{}
	c.busyCycles = 0
	c.queueDelay = 0
	c.servedCount = 0
	c.createdCycle = c.eng.Now()
}

// QueueLen returns current queue occupancy (high, low).
func (c *Controller) QueueLen() (hi, lo int) { return len(c.hi), len(c.lo) }

// Read issues a block read of the given class. done fires when the data is
// available (service start + access latency). hiPri selects the priority
// queue; only demand traffic should be high priority.
func (c *Controller) Read(class Class, hiPri bool, done func(now uint64)) {
	c.enqueue(request{class: class, done: done, enqueued: c.eng.Now()}, hiPri)
}

// Write issues a block write of the given class. Writes are fire-and-forget
// for the issuer (the data leaves an on-chip buffer) but still consume
// channel bandwidth.
func (c *Controller) Write(class Class, hiPri bool) {
	c.enqueue(request{class: class, isWrite: true, enqueued: c.eng.Now()}, hiPri)
}

func (c *Controller) enqueue(r request, hiPri bool) {
	c.traffic.Accesses[r.class]++
	if hiPri {
		c.hi = append(c.hi, r)
	} else {
		c.lo = append(c.lo, r)
	}
	c.tryStart()
}

func (c *Controller) tryStart() {
	if c.busy {
		return
	}
	var r request
	switch {
	case len(c.hi) > 0:
		r = c.hi[0]
		c.hi = c.hi[1:]
	case len(c.lo) > 0:
		r = c.lo[0]
		c.lo = c.lo[1:]
	default:
		return
	}
	c.busy = true
	now := c.eng.Now()
	c.queueDelay += now - r.enqueued
	c.servedCount++
	c.busyCycles += c.cfg.XferCycles
	// Channel is occupied for one transfer slot; data is available after
	// the full access latency.
	c.eng.Schedule(c.cfg.XferCycles, func() {
		c.busy = false
		c.tryStart()
	})
	if !r.isWrite && r.done != nil {
		done := r.done
		c.eng.Schedule(c.cfg.LatencyCycles, func() { done(c.eng.Now()) })
	}
}
