// Package dram models the off-chip memory interface the paper's analysis
// revolves around: a fixed-latency DRAM with a finite-bandwidth channel and
// two priority classes.
//
// Geometry follows Table 1: 45 ns access latency (180 cycles at 4 GHz) and
// 28.4 GB/s peak bandwidth with 64-byte transfers, i.e. one transfer every
// ~9 cycles. Demand traffic is served at high priority; all predictor
// meta-data and prefetch traffic is low priority ("We find that assigning a
// low priority to predictor memory traffic is essential", §4.3).
//
// Every access carries a Class so the experiment harness can reconstruct
// Figure 7's overhead breakdown (record streams / update index / lookup
// streams / incorrect prefetches) directly from controller counters.
package dram

import (
	"stms/internal/event"
	"stms/internal/mem"
)

// Class labels the purpose of a memory access for traffic accounting.
type Class uint8

// Traffic classes. Demand and Writeback are the base system's "useful"
// traffic; everything else is prefetcher overhead of one kind or another.
const (
	Demand        Class = iota // demand cache-block fetch (read)
	Writeback                  // dirty eviction (write)
	StrideData                 // stride-prefetched block (read)
	StreamData                 // temporally-streamed block (read)
	IndexLookup                // index-table bucket read on lookup
	IndexUpdateRd              // index-table bucket read for update
	IndexUpdateWr              // index-table bucket writeback
	HistoryAppend              // packed history-buffer write (12 entries/line)
	HistoryRead                // history-buffer line read while streaming
	EndMarkWrite               // stream-end annotation write
	numClasses
)

var classNames = [numClasses]string{
	"demand", "writeback", "stride", "stream-data", "index-lookup",
	"index-update-rd", "index-update-wr", "history-append", "history-read",
	"end-mark",
}

// String returns the class name.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "unknown"
}

// NumClasses is the number of traffic classes.
const NumClasses = int(numClasses)

// Config sets the controller's timing parameters.
type Config struct {
	// LatencyCycles is the unloaded access latency (request start to data
	// available). Table 1: 45 ns at 4 GHz = 180 cycles.
	LatencyCycles uint64
	// XferCycles is the channel occupancy of one 64-byte transfer.
	// 28.4 GB/s at 4 GHz = 64 B every ~9 cycles.
	XferCycles uint64
}

// DefaultConfig returns Table 1's memory system.
func DefaultConfig() Config {
	return Config{LatencyCycles: 180, XferCycles: 9}
}

// Traffic accumulates per-class access counts; bytes are counts × 64.
type Traffic struct {
	Accesses [NumClasses]uint64
}

// Bytes returns the byte volume of class c.
func (t Traffic) Bytes(c Class) uint64 {
	return t.Accesses[c] * mem.BlockBytes
}

// TotalAccesses sums all classes.
func (t Traffic) TotalAccesses() uint64 {
	var s uint64
	for _, a := range t.Accesses {
		s += a
	}
	return s
}

// Sub returns the element-wise difference t - old (for measurement
// windows).
func (t Traffic) Sub(old Traffic) Traffic {
	var d Traffic
	for i := range t.Accesses {
		d.Accesses[i] = t.Accesses[i] - old.Accesses[i]
	}
	return d
}

// request is one queued transfer. Completion is delivered either through a
// typed handler (h/kind/a/b — the allocation-free hot path) or through a
// caller closure (done — the compatibility path); requests live in the
// controller's ring buffers, never individually on the heap.
type request struct {
	class    Class
	isWrite  bool
	kind     uint8
	h        event.Handler
	done     func(now uint64)
	a, b     uint64
	enqueued uint64
}

// reqQueue is a growable FIFO ring. The old slice-based queues re-sliced
// on pop and re-allocated on push, which made the controller the single
// biggest allocator in timed runs.
type reqQueue struct {
	buf  []request
	head int
	n    int
}

func (q *reqQueue) len() int { return q.n }

func (q *reqQueue) push(r request) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = r
	q.n++
}

func (q *reqQueue) pop() request {
	slot := &q.buf[q.head]
	r := *slot
	// Drop only the closure reference: clearing the whole slot would
	// write the full struct back (plus a second pointer barrier for the
	// handler, which is a long-lived component and safe to retain).
	if slot.done != nil {
		slot.done = nil
	}
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return r
}

func (q *reqQueue) grow() {
	size := 2 * len(q.buf)
	if size == 0 {
		size = 16
	}
	buf := make([]request, size)
	for i := 0; i < q.n; i++ {
		buf[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
	}
	q.buf = buf
	q.head = 0
}

// Controller event kinds.
const (
	kXferDone uint8 = iota // channel transfer slot freed
	kDeliver               // closure-path data delivery (a = slot index)
)

// Controller is the event-driven memory controller. All requests transfer
// exactly one 64-byte block.
//
// Channel occupancy is time-based: a transfer marks the channel busy
// until busyUntil, and a drain event exists only while requests are
// actually queued behind it. The common case — a request arriving to an
// idle, empty channel — costs no internal event at all, only the
// caller's data-delivery event. Firing order is identical to the old
// always-evented design: the eager transfer-done event ran before any
// same-cycle arrivals (it was scheduled earliest) and did nothing but
// clear the busy flag, which the busyUntil comparison reproduces
// exactly, and a lazy drain starts the same queued request on the same
// cycle it always started.
type Controller struct {
	cfg Config
	eng *event.Engine

	hi, lo    reqQueue // FIFO queues per priority
	busyUntil uint64   // channel occupied for cycles < busyUntil
	drain     bool     // a kXferDone drain event is pending
	traffic   Traffic

	// slots parks closure-path done callbacks between service start and
	// data delivery; free is its free list.
	slots []func(now uint64)
	free  []int32

	// busyCycles integrates channel occupancy for utilization reporting.
	busyCycles uint64
	// queueDelay accumulates cycles spent waiting before service.
	queueDelay   uint64
	servedCount  uint64
	createdCycle uint64
}

var _ event.Handler = (*Controller)(nil)

// New builds a controller on the given engine.
func New(eng *event.Engine, cfg Config) *Controller {
	return &Controller{cfg: cfg, eng: eng, createdCycle: eng.Now()}
}

// Traffic returns a copy of the per-class counters.
func (c *Controller) Traffic() Traffic { return c.traffic }

// BusyUntil returns the cycle the in-flight transfer completes (at or
// below the current cycle when the channel is idle). After a full event
// drain this is the channel's true end-of-work time: the final
// transfer's completion no longer fires an event of its own, so the
// engine clock can stop one transfer slot short of it.
func (c *Controller) BusyUntil() uint64 { return c.busyUntil }

// Utilization returns the fraction of cycles the channel was busy since
// construction (or the last ResetStats). The elapsed window extends to
// the end of the last transfer when that outlives the final event.
func (c *Controller) Utilization() float64 {
	now := c.eng.Now()
	if c.busyUntil > now {
		now = c.busyUntil
	}
	elapsed := now - c.createdCycle
	if elapsed == 0 {
		return 0
	}
	return float64(c.busyCycles) / float64(elapsed)
}

// AvgQueueDelay returns the mean cycles requests waited for the channel.
func (c *Controller) AvgQueueDelay() float64 {
	if c.servedCount == 0 {
		return 0
	}
	return float64(c.queueDelay) / float64(c.servedCount)
}

// ResetStats zeroes traffic and utilization counters (end of warm-up).
// In-flight requests continue unaffected.
func (c *Controller) ResetStats() {
	c.traffic = Traffic{}
	c.busyCycles = 0
	c.queueDelay = 0
	c.servedCount = 0
	c.createdCycle = c.eng.Now()
}

// QueueLen returns current queue occupancy (high, low).
func (c *Controller) QueueLen() (hi, lo int) { return c.hi.len(), c.lo.len() }

// Read issues a block read of the given class. done fires when the data is
// available (service start + access latency). hiPri selects the priority
// queue; only demand traffic should be high priority.
func (c *Controller) Read(class Class, hiPri bool, done func(now uint64)) {
	c.enqueue(request{class: class, done: done, enqueued: c.eng.Now()}, hiPri)
}

// busyNow reports whether the channel is mid-transfer at the current
// cycle. At exactly busyUntil the channel is free once the drain event
// (when one exists) has fired: under the old eager-event design, events
// already pending when the transfer started fired before its
// transfer-done and saw a busy channel, while everything scheduled later
// fired after it and saw a free one. A pending drain carries exactly the
// transfer-done's place in that order.
func (c *Controller) busyNow() bool {
	now := c.eng.Now()
	if now < c.busyUntil {
		return true
	}
	return c.drain && now == c.busyUntil
}

// idle reports whether a new request would start service immediately:
// channel free, nothing queued ahead. Serving it directly is
// behaviour-identical to the ring round-trip (the pop would select it
// anyway) and skips the request-struct shuffle on the common path — the
// modelled channel runs well under saturation, so most requests arrive
// to an idle channel.
func (c *Controller) idle() bool {
	return c.hi.n == 0 && c.lo.n == 0 && !c.busyNow()
}

// startXfer accounts and occupies the channel for one zero-wait transfer.
//
// The busy interval is usually pure bookkeeping (busyUntil). The one
// case a timestamp cannot reproduce: an event that was already pending
// at exactly busyUntil fires before a freshly scheduled transfer-done
// would have (lower sequence number), so under the old eager-event
// design it observed a still-busy channel. If such an event exists, a
// real drain event restores the exact (time, seq) semantics.
func (c *Controller) startXfer() {
	c.busyUntil = c.eng.Now() + c.cfg.XferCycles
	c.servedCount++
	c.busyCycles += c.cfg.XferCycles
	// Oversized transfer slots always take the eager event: a later
	// front-inserted drain needs busyUntil inside the wheel horizon.
	if c.eng.HasPendingAt(c.busyUntil) || c.cfg.XferCycles >= event.WheelHorizon {
		c.scheduleDrain()
	}
}

// ReadH is Read with a typed completion: when the data is available,
// h.Handle(now, kind, a, b) runs. Unlike Read, no per-request closure
// exists anywhere — the request rides the controller's ring and the
// delivery rides a pooled engine event.
func (c *Controller) ReadH(class Class, hiPri bool, h event.Handler, kind uint8, a, b uint64) {
	c.traffic.Accesses[class]++
	if c.idle() {
		c.startXfer()
		c.eng.ScheduleH(c.cfg.LatencyCycles, h, kind, a, b)
		return
	}
	c.queue(request{class: class, h: h, kind: kind, a: a, b: b, enqueued: c.eng.Now()}, hiPri)
}

// Write issues a block write of the given class. Writes are fire-and-forget
// for the issuer (the data leaves an on-chip buffer) but still consume
// channel bandwidth.
func (c *Controller) Write(class Class, hiPri bool) {
	c.traffic.Accesses[class]++
	if c.idle() {
		c.startXfer()
		return
	}
	c.queue(request{class: class, isWrite: true, enqueued: c.eng.Now()}, hiPri)
}

func (c *Controller) enqueue(r request, hiPri bool) {
	c.traffic.Accesses[r.class]++
	if c.idle() {
		c.serve(r)
		return
	}
	c.queue(r, hiPri)
}

func (c *Controller) queue(r request, hiPri bool) {
	if hiPri {
		c.hi.push(r)
	} else {
		c.lo.push(r)
	}
	c.tryStart()
}

func (c *Controller) tryStart() {
	if c.busyNow() {
		// Mid-transfer: make sure a drain event will pick the queue up
		// the moment the channel frees.
		c.scheduleLateDrain()
		return
	}
	var r request
	switch {
	case c.hi.len() > 0:
		r = c.hi.pop()
	case c.lo.len() > 0:
		r = c.lo.pop()
	default:
		return
	}
	c.serve(r)
}

// scheduleDrain arranges (at most once, at transfer start) for the queue
// to be re-examined when the current transfer completes.
func (c *Controller) scheduleDrain() {
	if c.drain {
		return
	}
	c.drain = true
	c.eng.AtH(c.busyUntil, c, kXferDone, 0, 0)
}

// scheduleLateDrain is scheduleDrain for drains decided after the
// transfer already started (a request queued mid-transfer). The drain
// must fire exactly where the old eager transfer-done would have: ahead
// of every event now pending at busyUntil — startXfer proved that cycle
// had no events pending when the transfer began, so everything there now
// was scheduled later and belongs behind the drain. Front insertion
// restores that order; if it is not possible (busyUntil at or past the
// horizon — only with oversized transfer slots, which startXfer handles
// eagerly), the plain tail insert is the fallback.
func (c *Controller) scheduleLateDrain() {
	if c.drain {
		return
	}
	c.drain = true
	if !c.eng.AtHFront(c.busyUntil, c, kXferDone, 0, 0) {
		c.eng.AtH(c.busyUntil, c, kXferDone, 0, 0)
	}
}

// serve starts one transfer on the (idle) channel.
func (c *Controller) serve(r request) {
	now := c.eng.Now()
	c.queueDelay += now - r.enqueued
	c.startXfer()
	// Channel is occupied for one transfer slot; data is available after
	// the full access latency. If requests remain queued behind this one,
	// a drain event re-examines the queue when the slot frees.
	if c.hi.n > 0 || c.lo.n > 0 {
		c.scheduleDrain()
	}
	if r.isWrite {
		return
	}
	if r.h != nil {
		c.eng.ScheduleH(c.cfg.LatencyCycles, r.h, r.kind, r.a, r.b)
		return
	}
	if r.done != nil {
		c.eng.ScheduleH(c.cfg.LatencyCycles, c, kDeliver, uint64(c.park(r.done)), 0)
	}
}

// park stores a closure-path callback until its delivery event fires.
func (c *Controller) park(done func(now uint64)) int32 {
	if n := len(c.free); n > 0 {
		i := c.free[n-1]
		c.free = c.free[:n-1]
		c.slots[i] = done
		return i
	}
	c.slots = append(c.slots, done)
	return int32(len(c.slots) - 1)
}

// Handle implements event.Handler for the controller's internal events.
func (c *Controller) Handle(now uint64, kind uint8, a, b uint64) {
	switch kind {
	case kXferDone:
		c.drain = false
		c.tryStart()
	case kDeliver:
		done := c.slots[a]
		c.slots[a] = nil
		c.free = append(c.free, int32(a))
		done(now)
	}
}
