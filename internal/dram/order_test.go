package dram

// Cross-checks the time-based channel-occupancy controller against a
// reference implementation of the old always-evented design: every
// transfer scheduled an eager transfer-done event, whether or not
// anything was queued behind it. The two must deliver identical
// completion sequences — same data-ready times, same order — for any
// request pattern, including patterns that race requests against the
// exact cycle a transfer completes.

import (
	"fmt"
	"testing"

	"stms/internal/event"
	"stms/internal/rng"
)

// refController is the old eager-event controller, kept verbatim (minus
// the closure path) as the ordering oracle.
type refController struct {
	cfg  Config
	eng  *event.Engine
	hi   reqQueue
	lo   reqQueue
	busy bool
}

const refXferDone = 200 // private event kind

func (c *refController) Handle(now uint64, kind uint8, a, b uint64) {
	c.busy = false
	c.tryStart()
}

func (c *refController) idle() bool { return !c.busy && c.hi.n == 0 && c.lo.n == 0 }

func (c *refController) startXfer() {
	c.busy = true
	c.eng.ScheduleH(c.cfg.XferCycles, c, refXferDone, 0, 0)
}

func (c *refController) ReadH(class Class, hiPri bool, h event.Handler, kind uint8, a, b uint64) {
	if c.idle() {
		c.startXfer()
		c.eng.ScheduleH(c.cfg.LatencyCycles, h, kind, a, b)
		return
	}
	r := request{class: class, h: h, kind: kind, a: a, b: b, enqueued: c.eng.Now()}
	if hiPri {
		c.hi.push(r)
	} else {
		c.lo.push(r)
	}
	c.tryStart()
}

func (c *refController) Write(class Class, hiPri bool) {
	if c.idle() {
		c.startXfer()
		return
	}
	r := request{class: class, isWrite: true, enqueued: c.eng.Now()}
	if hiPri {
		c.hi.push(r)
	} else {
		c.lo.push(r)
	}
	c.tryStart()
}

func (c *refController) tryStart() {
	if c.busy {
		return
	}
	var r request
	switch {
	case c.hi.len() > 0:
		r = c.hi.pop()
	case c.lo.len() > 0:
		r = c.lo.pop()
	default:
		return
	}
	c.startXfer()
	if r.isWrite {
		return
	}
	c.eng.ScheduleH(c.cfg.LatencyCycles, r.h, r.kind, r.a, r.b)
}

// orderLog records delivery callbacks and re-issues follow-up traffic,
// mimicking a simulator whose next requests depend on completions.
type orderLog struct {
	eng    *event.Engine
	read   func(class Class, hiPri bool, h event.Handler, kind uint8, a, b uint64)
	write  func(class Class, hiPri bool)
	rnd    *rng.Rand
	events []string
	chain  int // remaining chained requests to issue from deliveries
}

func (l *orderLog) Handle(now uint64, kind uint8, a, b uint64) {
	l.events = append(l.events, fmt.Sprintf("t=%d k=%d a=%d", now, kind, a))
	if l.chain > 0 {
		l.chain--
		// Issue a dependent request from inside a delivery, sometimes at
		// the exact cycle another transfer completes.
		l.read(Class(a%3), l.rnd.Bool(0.5), l, kind+1, a+100, 0)
	}
}

func TestTimeBasedChannelMatchesEagerEventOrder(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		cfg := Config{LatencyCycles: 180, XferCycles: 9}
		if seed%3 == 0 {
			cfg = Config{LatencyCycles: 100, XferCycles: 10}
		}

		run := func(use func(eng *event.Engine, log *orderLog)) []string {
			eng := event.NewEngine()
			rnd := rng.New(seed)
			log := &orderLog{eng: eng, rnd: rnd, chain: 64}
			use(eng, log)
			// A deterministic burst pattern: clusters of reads/writes at
			// close-together times, including exact transfer-done cycles.
			at := uint64(0)
			for i := 0; i < 200; i++ {
				at += rnd.Uint64n(12) // often lands mid-transfer or at its end
				i := i
				eng.At(at, func() {
					switch {
					case i%7 == 3:
						log.write(Writeback, i%2 == 0)
					default:
						log.read(Class(i%3), i%2 == 0, log, uint8(i%16), uint64(i), 0)
					}
				})
			}
			eng.Drain(nil)
			return log.events
		}

		got := run(func(eng *event.Engine, log *orderLog) {
			c := New(eng, cfg)
			log.read = func(class Class, hiPri bool, h event.Handler, kind uint8, a, b uint64) {
				c.ReadH(class, hiPri, h, kind, a, b)
			}
			log.write = c.Write
		})
		want := run(func(eng *event.Engine, log *orderLog) {
			c := &refController{cfg: cfg, eng: eng}
			log.read = func(class Class, hiPri bool, h event.Handler, kind uint8, a, b uint64) {
				c.ReadH(class, hiPri, h, kind, a, b)
			}
			log.write = c.Write
		})

		if len(got) != len(want) {
			t.Fatalf("seed %d: %d deliveries vs reference %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: delivery %d = %q, reference %q", seed, i, got[i], want[i])
			}
		}
	}
}
