// Package editdist provides the Levenshtein edit distance and the
// nearest-match suggester built on it. It exists so every layer that
// resolves user-supplied names — workload and scenario lookup in
// internal/trace, tape keys and job ids in internal/dist, CLI flag
// values — renders the same "did you mean" help instead of growing
// private copies of the dynamic program.
package editdist

// Distance returns the Levenshtein distance between a and b, computed
// over bytes (the name spaces it serves are ASCII).
func Distance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// Nearest returns the candidate with the smallest edit distance to
// name, or "" when nothing is close enough to be a plausible typo
// (distance more than half the name's length).
func Nearest(name string, candidates []string) string {
	best, bestDist := "", len(name)/2+1
	for _, c := range candidates {
		if d := Distance(name, c); d < bestDist {
			best, bestDist = c, d
		}
	}
	return best
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
