package editdist

import "testing"

func TestDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"", "abc", 3},
		{"abc", "", 3},
		{"abc", "abc", 0},
		{"kitten", "sitting", 3},
		{"oltp-db2", "oltp-dbb2", 1},
		{"flaw", "lawn", 2},
	}
	for _, c := range cases {
		if got := Distance(c.a, c.b); got != c.want {
			t.Errorf("Distance(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
		// Distance is symmetric.
		if got := Distance(c.b, c.a); got != c.want {
			t.Errorf("Distance(%q, %q) = %d, want %d", c.b, c.a, got, c.want)
		}
	}
}

func TestNearest(t *testing.T) {
	names := []string{"web-apache", "oltp-db2", "dss-qry2", "sci-em3d"}
	if got := Nearest("oltp-db", names); got != "oltp-db2" {
		t.Errorf("Nearest(oltp-db) = %q, want oltp-db2", got)
	}
	if got := Nearest("web-apach", names); got != "web-apache" {
		t.Errorf("Nearest(web-apach) = %q, want web-apache", got)
	}
	// A hopeless typo (beyond the len/2+1 threshold) suggests nothing.
	if got := Nearest("zzzzzzzzzzzzzzzz", names); got != "" {
		t.Errorf("Nearest(garbage) = %q, want no suggestion", got)
	}
	if got := Nearest("anything", nil); got != "" {
		t.Errorf("Nearest with no candidates = %q, want \"\"", got)
	}
}
