package mem

import (
	"math/rand"
	"testing"
)

// TestBlockMapAgainstBuiltin drives BlockMap and a builtin map through the
// same random operation stream (inserts, replacements, deletions, misses,
// clustered sequential keys) and demands identical observable state.
func TestBlockMapAgainstBuiltin(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rnd := rand.New(rand.NewSource(seed))
		bm := NewBlockMap(8)
		ref := map[uint64]int32{}
		keyOf := func() uint64 {
			if rnd.Intn(2) == 0 {
				return uint64(rnd.Intn(64)) // clustered, collision-heavy
			}
			return rnd.Uint64()>>1 + 1
		}
		keys := make([]uint64, 0, 256)
		for op := 0; op < 5000; op++ {
			switch rnd.Intn(4) {
			case 0, 1:
				k, v := keyOf(), int32(rnd.Int31())
				bm.Put(k, v)
				ref[k] = v
				keys = append(keys, k)
			case 2:
				var k uint64
				if len(keys) > 0 && rnd.Intn(3) > 0 {
					k = keys[rnd.Intn(len(keys))]
				} else {
					k = keyOf()
				}
				gotV, gotOK := bm.Get(k)
				wantV, wantOK := ref[k]
				if gotOK != wantOK || (gotOK && gotV != wantV) {
					t.Fatalf("seed %d op %d: Get(%d) = (%d,%v), want (%d,%v)",
						seed, op, k, gotV, gotOK, wantV, wantOK)
				}
			case 3:
				var k uint64
				if len(keys) > 0 && rnd.Intn(3) > 0 {
					k = keys[rnd.Intn(len(keys))]
				} else {
					k = keyOf()
				}
				_, wantOK := ref[k]
				delete(ref, k)
				if got := bm.Delete(k); got != wantOK {
					t.Fatalf("seed %d op %d: Delete(%d) = %v, want %v", seed, op, k, got, wantOK)
				}
			}
			if bm.Len() != len(ref) {
				t.Fatalf("seed %d op %d: Len() = %d, want %d", seed, op, bm.Len(), len(ref))
			}
		}
		// Every surviving key must be retrievable.
		for k, v := range ref {
			got, ok := bm.Get(k)
			if !ok || got != v {
				t.Fatalf("seed %d: final Get(%d) = (%d,%v), want (%d,true)", seed, k, got, ok, v)
			}
		}
	}
}

func TestBlockMapZeroKey(t *testing.T) {
	m := NewBlockMap(4)
	m.Put(0, 7)
	if v, ok := m.Get(0); !ok || v != 7 {
		t.Fatalf("Get(0) = (%d,%v), want (7,true)", v, ok)
	}
	if !m.Delete(0) {
		t.Fatal("Delete(0) = false, want true")
	}
	if m.Contains(0) {
		t.Fatal("Contains(0) after delete")
	}
}

func TestBlockMapGrowth(t *testing.T) {
	m := NewBlockMap(4)
	for i := uint64(0); i < 1000; i++ {
		m.Put(i, int32(i))
	}
	if m.Len() != 1000 {
		t.Fatalf("Len() = %d, want 1000", m.Len())
	}
	for i := uint64(0); i < 1000; i++ {
		if v, ok := m.Get(i); !ok || v != int32(i) {
			t.Fatalf("Get(%d) = (%d,%v) after growth", i, v, ok)
		}
	}
}
