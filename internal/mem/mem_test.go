package mem

import (
	"testing"
	"testing/quick"
)

func TestBlockRoundTrip(t *testing.T) {
	f := func(addr uint64) bool {
		blk := BlockOf(addr)
		base := AddrOf(blk)
		return base <= addr && addr-base < BlockBytes && BlockOf(base) == blk
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBlocksOfBytes(t *testing.T) {
	cases := []struct{ bytes, want uint64 }{
		{0, 0}, {63, 0}, {64, 1}, {65, 1}, {128, 2}, {MB, MB / 64},
	}
	for _, c := range cases {
		if got := BlocksOfBytes(c.bytes); got != c.want {
			t.Errorf("BlocksOfBytes(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

func TestRegionBlockWraps(t *testing.T) {
	r := Region{Base: 100, Blocks: 10}
	if got := r.Block(0); got != 100 {
		t.Errorf("Block(0) = %d", got)
	}
	if got := r.Block(10); got != 100 {
		t.Errorf("Block(10) should wrap to 100, got %d", got)
	}
	if got := r.Block(13); got != 103 {
		t.Errorf("Block(13) = %d, want 103", got)
	}
}

func TestRegionContains(t *testing.T) {
	r := Region{Base: 100, Blocks: 10}
	for _, blk := range []uint64{100, 105, 109} {
		if !r.Contains(blk) {
			t.Errorf("Contains(%d) = false", blk)
		}
	}
	for _, blk := range []uint64{99, 110, 0} {
		if r.Contains(blk) {
			t.Errorf("Contains(%d) = true", blk)
		}
	}
	if r.End() != 110 {
		t.Errorf("End() = %d", r.End())
	}
}

func TestRegionCarve(t *testing.T) {
	r := Region{Base: 0, Blocks: 100}
	a, rest := r.Carve(30)
	if a.Base != 0 || a.Blocks != 30 {
		t.Errorf("carved = %+v", a)
	}
	if rest.Base != 30 || rest.Blocks != 70 {
		t.Errorf("rest = %+v", rest)
	}
	// Over-carving clamps.
	b, rest2 := rest.Carve(1000)
	if b.Blocks != 70 || rest2.Blocks != 0 {
		t.Errorf("over-carve: %+v %+v", b, rest2)
	}
}

func TestRegionZeroBlocks(t *testing.T) {
	r := Region{Base: 5, Blocks: 0}
	if got := r.Block(3); got != 5 {
		t.Errorf("zero-size region Block = %d", got)
	}
	if r.Contains(5) {
		t.Error("zero-size region should contain nothing")
	}
}
