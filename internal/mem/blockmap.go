package mem

import "math/bits"

// emptyKey marks a free slot directly in the key array, so the probe
// loop touches one contiguous array instead of a parallel occupancy
// array. Block numbers stay far below 2^64 (the trace arenas end near
// 2^41); the public methods guard the one unusable key explicitly.
const emptyKey = ^uint64(0)

// BlockMap is a small open-addressed hash table from block numbers to
// int32 values, built for the simulator's per-access hot paths (MSHR
// files, prefetch buffers) where a built-in map's hashing, bucket
// chasing, and incremental-growth machinery dominate the profile.
//
// Linear probing with backward-shift deletion keeps lookups to a short
// contiguous scan with no tombstones; the table stays at a fixed
// power-of-two size chosen from the expected population (these structures
// are architecturally bounded — 64 MSHRs, 32 buffer blocks), growing only
// if the caller overshoots the hint.
type BlockMap struct {
	keys []uint64
	vals []int32
	n    int
	mask uint64
}

// NewBlockMap returns a map sized so that hint live entries stay under
// ~50% load.
func NewBlockMap(hint int) *BlockMap {
	if hint < 4 {
		hint = 4
	}
	size := 1 << bits.Len(uint(2*hint-1))
	m := &BlockMap{}
	m.init(size)
	return m
}

func (m *BlockMap) init(size int) {
	m.keys = make([]uint64, size)
	for i := range m.keys {
		m.keys[i] = emptyKey
	}
	m.vals = make([]int32, size)
	m.mask = uint64(size - 1)
}

// Len returns the live entry count.
func (m *BlockMap) Len() int { return m.n }

// home is the preferred slot for key k (Fibonacci hashing: block numbers
// are often sequential, and the golden-ratio multiply spreads runs).
func (m *BlockMap) home(k uint64) uint64 {
	return (k * 0x9E3779B97F4A7C15) >> 32 & m.mask
}

// Get returns the value stored for k.
func (m *BlockMap) Get(k uint64) (int32, bool) {
	if k == emptyKey {
		return 0, false
	}
	for i := m.home(k); ; i = (i + 1) & m.mask {
		switch m.keys[i] {
		case k:
			return m.vals[i], true
		case emptyKey:
			return 0, false
		}
	}
}

// Contains reports whether k is present.
func (m *BlockMap) Contains(k uint64) bool {
	_, ok := m.Get(k)
	return ok
}

// Put inserts or replaces the value for k. The all-ones key is reserved
// and silently ignored (no block number reaches it).
func (m *BlockMap) Put(k uint64, v int32) {
	if k == emptyKey {
		return
	}
	if 2*(m.n+1) > len(m.keys) {
		m.grow()
	}
	i := m.home(k)
	for m.keys[i] != emptyKey {
		if m.keys[i] == k {
			m.vals[i] = v
			return
		}
		i = (i + 1) & m.mask
	}
	m.keys[i] = k
	m.vals[i] = v
	m.n++
}

// Delete removes k, reporting whether it was present. Removal backward-
// shifts the following probe run so no tombstones accumulate.
func (m *BlockMap) Delete(k uint64) bool {
	if k == emptyKey {
		return false
	}
	i := m.home(k)
	for {
		if m.keys[i] == emptyKey {
			return false
		}
		if m.keys[i] == k {
			break
		}
		i = (i + 1) & m.mask
	}
	// Backward-shift: pull any entry whose probe run passes through the
	// hole back into it, then continue from the entry's old slot.
	j := i
	for {
		m.keys[j] = emptyKey
		s := j
		for {
			s = (s + 1) & m.mask
			if m.keys[s] == emptyKey {
				m.n--
				return true
			}
			h := m.home(m.keys[s])
			// The entry at s may fill the hole at j iff its home lies at
			// or cyclically before j (its probe run passes through j).
			if (s-h)&m.mask >= (s-j)&m.mask {
				m.keys[j] = m.keys[s]
				m.vals[j] = m.vals[s]
				j = s
				break
			}
		}
	}
}

func (m *BlockMap) grow() {
	keys, vals := m.keys, m.vals
	m.init(2 * len(keys))
	m.n = 0
	for i, k := range keys {
		if k != emptyKey {
			m.Put(k, vals[i])
		}
	}
}
