package mem

import "math/bits"

// BlockMap is a small open-addressed hash table from block numbers to
// int32 values, built for the simulator's per-access hot paths (MSHR
// files, prefetch buffers) where a built-in map's hashing, bucket
// chasing, and incremental-growth machinery dominate the profile.
//
// Linear probing with backward-shift deletion keeps lookups to a short
// contiguous scan with no tombstones; the table stays at a fixed
// power-of-two size chosen from the expected population (these structures
// are architecturally bounded — 64 MSHRs, 32 buffer blocks), growing only
// if the caller overshoots the hint.
type BlockMap struct {
	keys []uint64
	vals []int32
	live []bool
	n    int
	mask uint64
}

// NewBlockMap returns a map sized so that hint live entries stay under
// ~50% load.
func NewBlockMap(hint int) *BlockMap {
	if hint < 4 {
		hint = 4
	}
	size := 1 << bits.Len(uint(2*hint-1))
	m := &BlockMap{}
	m.init(size)
	return m
}

func (m *BlockMap) init(size int) {
	m.keys = make([]uint64, size)
	m.vals = make([]int32, size)
	m.live = make([]bool, size)
	m.mask = uint64(size - 1)
}

// Len returns the live entry count.
func (m *BlockMap) Len() int { return m.n }

// home is the preferred slot for key k (Fibonacci hashing: block numbers
// are often sequential, and the golden-ratio multiply spreads runs).
func (m *BlockMap) home(k uint64) uint64 {
	return (k * 0x9E3779B97F4A7C15) >> 32 & m.mask
}

// Get returns the value stored for k.
func (m *BlockMap) Get(k uint64) (int32, bool) {
	for i := m.home(k); m.live[i]; i = (i + 1) & m.mask {
		if m.keys[i] == k {
			return m.vals[i], true
		}
	}
	return 0, false
}

// Contains reports whether k is present.
func (m *BlockMap) Contains(k uint64) bool {
	_, ok := m.Get(k)
	return ok
}

// Put inserts or replaces the value for k.
func (m *BlockMap) Put(k uint64, v int32) {
	if 2*(m.n+1) > len(m.keys) {
		m.grow()
	}
	i := m.home(k)
	for m.live[i] {
		if m.keys[i] == k {
			m.vals[i] = v
			return
		}
		i = (i + 1) & m.mask
	}
	m.keys[i] = k
	m.vals[i] = v
	m.live[i] = true
	m.n++
}

// Delete removes k, reporting whether it was present. Removal backward-
// shifts the following probe run so no tombstones accumulate.
func (m *BlockMap) Delete(k uint64) bool {
	i := m.home(k)
	for {
		if !m.live[i] {
			return false
		}
		if m.keys[i] == k {
			break
		}
		i = (i + 1) & m.mask
	}
	// Backward-shift: pull any entry whose probe run passes through the
	// hole back into it, then continue from the entry's old slot.
	j := i
	for {
		m.live[j] = false
		s := j
		for {
			s = (s + 1) & m.mask
			if !m.live[s] {
				m.n--
				return true
			}
			h := m.home(m.keys[s])
			// The entry at s may fill the hole at j iff its home lies at
			// or cyclically before j (its probe run passes through j).
			if (s-h)&m.mask >= (s-j)&m.mask {
				m.keys[j] = m.keys[s]
				m.vals[j] = m.vals[s]
				m.live[j] = true
				j = s
				break
			}
		}
	}
}

func (m *BlockMap) grow() {
	keys, vals, live := m.keys, m.vals, m.live
	m.init(2 * len(keys))
	m.n = 0
	for i, ok := range live {
		if ok {
			m.Put(keys[i], vals[i])
		}
	}
}
