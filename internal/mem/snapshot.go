package mem

import (
	"fmt"

	"stms/internal/ckpt"
)

// Snapshot serializes the map's raw table — keys, values, population —
// so Restore reproduces the exact probe layout (slot assignment affects
// nothing observable, but verbatim restoration makes bit-identity a
// non-question).
func (m *BlockMap) Snapshot(enc *ckpt.Encoder) {
	enc.Section("mem.BlockMap")
	enc.U64s(m.keys)
	enc.I32s(m.vals)
	enc.Int(m.n)
}

// Restore rebuilds the map from a Snapshot.
func (m *BlockMap) Restore(dec *ckpt.Decoder) error {
	dec.Section("mem.BlockMap")
	keys := dec.U64s()
	vals := dec.I32s()
	n := dec.Int()
	if err := dec.Err(); err != nil {
		return err
	}
	if len(keys) == 0 || len(keys)&(len(keys)-1) != 0 || len(keys) != len(vals) {
		return fmt.Errorf("mem: corrupt BlockMap snapshot (%d keys, %d vals)", len(keys), len(vals))
	}
	m.keys = keys
	m.vals = vals
	m.n = n
	m.mask = uint64(len(keys) - 1)
	return nil
}
