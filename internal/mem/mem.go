// Package mem holds the address-space geometry shared by the whole
// simulator: 64-byte cache blocks and contiguous regions of them.
//
// All simulator structures operate on block numbers (byte address >> 6)
// rather than byte addresses; the conversion helpers live here so the
// convention is stated exactly once.
package mem

const (
	// BlockBytes is the cache-block and memory-transfer size (Table 1:
	// 64-byte transfers).
	BlockBytes = 64
	// BlockShift is log2(BlockBytes).
	BlockShift = 6
)

// BlockOf returns the block number containing byte address addr.
func BlockOf(addr uint64) uint64 { return addr >> BlockShift }

// AddrOf returns the first byte address of block blk.
func AddrOf(blk uint64) uint64 { return blk << BlockShift }

// BlocksOfBytes returns how many whole blocks fit in n bytes.
func BlocksOfBytes(n uint64) uint64 { return n / BlockBytes }

// MB is one megabyte in bytes.
const MB = 1 << 20

// Region is a contiguous range of blocks used by workload generators to
// carve the simulated physical address space into non-overlapping areas
// (dataset, scan arena, noise arena, meta-data arena).
type Region struct {
	Base   uint64 // first block number
	Blocks uint64 // number of blocks
}

// Block returns the i-th block of the region (wrapping modulo the size).
func (r Region) Block(i uint64) uint64 {
	if r.Blocks == 0 {
		return r.Base
	}
	return r.Base + i%r.Blocks
}

// Contains reports whether block blk falls inside the region.
func (r Region) Contains(blk uint64) bool {
	return blk >= r.Base && blk < r.Base+r.Blocks
}

// End returns the first block after the region.
func (r Region) End() uint64 { return r.Base + r.Blocks }

// Carve splits off a sub-region of n blocks from the front of r, returning
// the sub-region and the remainder.
func (r Region) Carve(n uint64) (Region, Region) {
	if n > r.Blocks {
		n = r.Blocks
	}
	return Region{Base: r.Base, Blocks: n},
		Region{Base: r.Base + n, Blocks: r.Blocks - n}
}
