package sim

import (
	"reflect"
	"testing"

	"stms/internal/core"
	"stms/internal/trace"
)

// testConfig returns a small, fast configuration shared by the
// integration tests.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Scale = 0.0625
	cfg.WarmRecords = 30_000
	cfg.MeasureRecords = 40_000
	return cfg
}

func spec(t *testing.T, name string) trace.Spec {
	t.Helper()
	s, err := trace.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFunctionalBaselineConservation(t *testing.T) {
	cfg := testConfig()
	r := RunFunctional(cfg, spec(t, "web-apache"), PrefSpec{Kind: None})
	if r.Records == 0 {
		t.Fatal("no records measured")
	}
	if r.CoveredFull+r.CoveredPartial != 0 {
		t.Fatal("baseline cannot cover misses")
	}
	if r.L1Hits+r.L2Hits+r.Uncovered != r.Records {
		t.Fatalf("reference conservation violated: %d+%d+%d != %d",
			r.L1Hits, r.L2Hits, r.Uncovered, r.Records)
	}
}

func TestFunctionalCoverageConservation(t *testing.T) {
	cfg := testConfig()
	r := RunFunctional(cfg, spec(t, "web-apache"), PrefSpec{Kind: Ideal})
	total := r.L1Hits + r.L2Hits + r.Uncovered + r.CoveredFull + r.CoveredPartial
	if total != r.Records {
		t.Fatalf("conservation: %d != %d", total, r.Records)
	}
	if r.Coverage() <= 0.2 {
		t.Fatalf("ideal coverage %.3f too low for web-apache", r.Coverage())
	}
}

// TestBaselineMissesInvariant: covered + uncovered under a prefetcher must
// equal the baseline's miss count exactly (prefetch buffers don't perturb
// cache contents).
func TestBaselineMissesInvariant(t *testing.T) {
	cfg := testConfig()
	s := spec(t, "oltp-db2")
	base := RunFunctional(cfg, s, PrefSpec{Kind: None})
	ideal := RunFunctional(cfg, s, PrefSpec{Kind: Ideal})
	if base.Uncovered != ideal.BaselineMisses() {
		t.Fatalf("baseline misses %d != covered+uncovered %d",
			base.Uncovered, ideal.BaselineMisses())
	}
}

func TestFunctionalDeterminism(t *testing.T) {
	cfg := testConfig()
	s := spec(t, "web-zeus")
	a := RunFunctional(cfg, s, PrefSpec{Kind: Ideal})
	b := RunFunctional(cfg, s, PrefSpec{Kind: Ideal})
	if a.CoveredFull != b.CoveredFull || a.Uncovered != b.Uncovered {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestTimedDeterminism(t *testing.T) {
	cfg := testConfig()
	cfg.WarmRecords = 10_000
	cfg.MeasureRecords = 15_000
	s := spec(t, "oltp-oracle")
	a := RunTimed(cfg, s, PrefSpec{Kind: STMS})
	b := RunTimed(cfg, s, PrefSpec{Kind: STMS})
	if a.ElapsedCycles != b.ElapsedCycles || a.CoveredFull != b.CoveredFull ||
		a.Traffic != b.Traffic {
		t.Fatal("timed run not deterministic")
	}
}

func TestTimedBaselineSane(t *testing.T) {
	cfg := testConfig()
	r := RunTimed(cfg, spec(t, "web-apache"), PrefSpec{Kind: None})
	if r.IPC <= 0 || r.IPC > 16 {
		t.Fatalf("IPC = %v", r.IPC)
	}
	if r.MLP < 1 || r.MLP > 8 {
		t.Fatalf("MLP = %v", r.MLP)
	}
	if r.ElapsedCycles == 0 || r.Instrs == 0 {
		t.Fatal("empty measurement")
	}
	if r.Traffic.TotalAccesses() == 0 {
		t.Fatal("no DRAM traffic")
	}
}

func TestIdealBeatsBaseline(t *testing.T) {
	cfg := testConfig()
	s := spec(t, "sci-em3d")
	base := RunTimed(cfg, s, PrefSpec{Kind: None})
	ideal := RunTimed(cfg, s, PrefSpec{Kind: Ideal})
	if ideal.SpeedupOver(&base) < 0.2 {
		t.Fatalf("em3d ideal speedup %.3f too small", ideal.SpeedupOver(&base))
	}
	if ideal.Coverage() < 0.8 {
		t.Fatalf("em3d ideal coverage %.3f", ideal.Coverage())
	}
}

func TestSTMSTracksIdeal(t *testing.T) {
	cfg := testConfig()
	s := spec(t, "web-zeus")
	ideal := RunTimed(cfg, s, PrefSpec{Kind: Ideal})
	stms := RunTimed(cfg, s, PrefSpec{Kind: STMS})
	ratio := stms.Coverage() / ideal.Coverage()
	if ratio < 0.7 || ratio > 1.1 {
		t.Fatalf("STMS/ideal coverage ratio %.3f out of band", ratio)
	}
}

func TestSTMSSamplingReducesUpdateTraffic(t *testing.T) {
	cfg := testConfig()
	s := spec(t, "web-apache")
	full := RunTimed(cfg, s, PrefSpec{Kind: STMS, SampleProb: 1.0})
	smp := RunTimed(cfg, s, PrefSpec{Kind: STMS, SampleProb: 0.125})
	fullUpd := full.OverheadTraffic().Update
	smpUpd := smp.OverheadTraffic().Update
	if fullUpd <= smpUpd {
		t.Fatalf("sampling did not reduce update traffic: %.3f vs %.3f", fullUpd, smpUpd)
	}
	if fullUpd/smpUpd < 3 {
		t.Fatalf("update reduction only %.2fx", fullUpd/smpUpd)
	}
	// Coverage loss from sampling must be modest (§5.5: <= ~6%).
	if loss := full.Coverage() - smp.Coverage(); loss > 0.12 {
		t.Fatalf("sampling coverage loss %.3f too large", loss)
	}
}

func TestComparatorsRun(t *testing.T) {
	cfg := testConfig()
	cfg.WarmRecords = 10_000
	cfg.MeasureRecords = 15_000
	s := spec(t, "oltp-db2")
	for _, kind := range []Kind{TSE, EBCP, ULMT, Markov} {
		r := RunTimed(cfg, s, PrefSpec{Kind: kind})
		if r.Records == 0 {
			t.Fatalf("%v: no records", kind)
		}
		if kind == TSE && r.Coverage() == 0 {
			t.Errorf("TSE covered nothing")
		}
	}
}

func TestSingleTableFragmentationLosesCoverage(t *testing.T) {
	// The split-table design must out-cover depth-limited single tables
	// on a long-stream workload (§4.5, Fig. 6 right).
	cfg := testConfig()
	s := spec(t, "sci-em3d")
	unbounded := RunFunctional(cfg, s, PrefSpec{Kind: Ideal})
	depth4 := RunFunctional(cfg, s, PrefSpec{Kind: Ideal, MaxDepth: 4})
	if depth4.Coverage() >= unbounded.Coverage() {
		t.Fatalf("depth cap did not lose coverage: %.3f vs %.3f",
			depth4.Coverage(), unbounded.Coverage())
	}
}

func TestHistoryCapLimitsCoverage(t *testing.T) {
	// A tiny history buffer must hurt coverage (Fig. 5 left).
	cfg := testConfig()
	s := spec(t, "web-apache")
	big := RunFunctional(cfg, s, PrefSpec{Kind: Ideal})
	tiny := RunFunctional(cfg, s, PrefSpec{Kind: Ideal, HistoryEntries: 2048})
	if tiny.Coverage() >= big.Coverage()*0.8 {
		t.Fatalf("tiny history coverage %.3f vs unbounded %.3f",
			tiny.Coverage(), big.Coverage())
	}
}

func TestIndexCapLimitsCoverage(t *testing.T) {
	// A tiny index must hurt coverage (Fig. 1 left).
	cfg := testConfig()
	s := spec(t, "web-zeus")
	big := RunFunctional(cfg, s, PrefSpec{Kind: Ideal})
	tiny := RunFunctional(cfg, s, PrefSpec{Kind: Ideal, IndexEntries: 1024})
	if tiny.Coverage() >= big.Coverage()*0.8 {
		t.Fatalf("tiny index coverage %.3f vs unbounded %.3f",
			tiny.Coverage(), big.Coverage())
	}
}

func TestDSSLowCoverage(t *testing.T) {
	// DSS visits data once: temporal streaming must stay ineffective
	// (§5.2) while scientific workloads are near-perfect.
	cfg := testConfig()
	dss := RunFunctional(cfg, spec(t, "dss-qry17"), PrefSpec{Kind: Ideal})
	sci := RunFunctional(cfg, spec(t, "sci-moldyn"), PrefSpec{Kind: Ideal})
	if dss.Coverage() > 0.35 {
		t.Fatalf("DSS coverage %.3f unexpectedly high", dss.Coverage())
	}
	if sci.Coverage() < 0.7 {
		t.Fatalf("moldyn coverage %.3f unexpectedly low", sci.Coverage())
	}
	if dss.Coverage() >= sci.Coverage() {
		t.Fatal("workload ordering violated")
	}
}

func TestOverheadBreakdownConsistent(t *testing.T) {
	cfg := testConfig()
	r := RunTimed(cfg, spec(t, "oltp-oracle"), PrefSpec{Kind: STMS})
	ov := r.OverheadTraffic()
	if ov.Record < 0 || ov.Update < 0 || ov.Lookup < 0 || ov.Erroneous < 0 {
		t.Fatalf("negative overhead: %+v", ov)
	}
	if ov.Total() <= 0 {
		t.Fatal("no overhead measured for STMS")
	}
	lk, up, er := r.OverheadPerBaselineRead()
	if lk <= 0 || up <= 0 || er < 0 {
		t.Fatalf("per-read overhead: %v %v %v", lk, up, er)
	}
}

func TestVariantNames(t *testing.T) {
	names := map[Kind]string{
		None: "baseline", Ideal: "ideal", STMS: "stms",
		TSE: "tse", EBCP: "ebcp", ULMT: "ulmt", Markov: "markov",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}

func TestScaledCaches(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 0.125
	if cfg.L2() != 1<<20 {
		t.Fatalf("scaled L2 = %d", cfg.L2())
	}
	if cfg.L1() != 8<<10 {
		t.Fatalf("scaled L1 = %d", cfg.L1())
	}
	cfg.Scale = 1
	if cfg.L2() != 8<<20 {
		t.Fatal("unscaled L2 changed")
	}
}

func TestBlockDirtyDeterministic(t *testing.T) {
	th := dirtyThreshold(0.3)
	for blk := uint64(0); blk < 100; blk++ {
		if blockDirty(blk, th) != blockDirty(blk, th) {
			t.Fatal("dirtiness not a pure function")
		}
	}
	n := 0
	for blk := uint64(0); blk < 10_000; blk++ {
		if blockDirty(blk*7+3, th) {
			n++
		}
	}
	if n < 2500 || n > 3500 {
		t.Fatalf("dirty fraction %d/10000, want ~3000", n)
	}
	if dirtyThreshold(0) != 0 {
		t.Fatal("zero threshold")
	}
}

func TestTimedPartialPlusFullMatchesEngine(t *testing.T) {
	cfg := testConfig()
	cfg.WarmRecords = 10_000
	cfg.MeasureRecords = 15_000
	r := RunTimed(cfg, spec(t, "web-apache"), PrefSpec{Kind: STMS})
	// Engine-window hit counters must equal the sim's covered counters.
	if r.Engine.FullHits != r.CoveredFull || r.Engine.PartialHits != r.CoveredPartial {
		t.Fatalf("engine (%d,%d) vs sim (%d,%d)",
			r.Engine.FullHits, r.Engine.PartialHits, r.CoveredFull, r.CoveredPartial)
	}
}

// TestDriversAgreeOnIdealCoverage: idealized-lookup coverage is
// timing-insensitive by definition (§5.2), so the functional and timed
// drivers must land close to each other.
func TestDriversAgreeOnIdealCoverage(t *testing.T) {
	cfg := testConfig()
	for _, w := range []string{"web-apache", "sci-moldyn"} {
		s := spec(t, w)
		fn := RunFunctional(cfg, s, PrefSpec{Kind: Ideal})
		td := RunTimed(cfg, s, PrefSpec{Kind: Ideal})
		diff := fn.Coverage() - td.Coverage()
		if diff < 0 {
			diff = -diff
		}
		if diff > 0.05 {
			t.Errorf("%s: functional %.3f vs timed %.3f coverage", w, fn.Coverage(), td.Coverage())
		}
	}
}

// TestAltIndexOrgsEndToEnd: the §5.4 alternatives must run under the full
// timed system and cover less than (or equal to) the bucketized design.
func TestAltIndexOrgsEndToEnd(t *testing.T) {
	cfg := testConfig()
	cfg.WarmRecords = 15_000
	cfg.MeasureRecords = 20_000
	s := spec(t, "web-zeus")
	coverage := map[string]float64{}
	for _, org := range []core.IndexOrg{core.OrgBucketLRU, core.OrgDirectMapped, core.OrgOpenAddress} {
		scfg := core.DefaultConfig(cfg.Cores).Scaled(cfg.Scale)
		scfg.Seed = cfg.Seed
		scfg.SampleProb = 0.125
		scfg.Org = org
		r := RunTimed(cfg, s, PrefSpec{Kind: STMS, STMSCfg: &scfg})
		coverage[org.String()] = r.Coverage()
		if r.Coverage() <= 0 {
			t.Errorf("%v: zero coverage", org)
		}
	}
	if coverage["direct-mapped"] > coverage["bucket-lru"]+0.02 {
		t.Errorf("direct-mapped (%.3f) should not beat bucket-lru (%.3f)",
			coverage["direct-mapped"], coverage["bucket-lru"])
	}
}

// TestRunTimedTraceReplay: replaying a captured trace must drive the full
// timed system and reproduce the synthetic run's coverage ballpark.
// TestTapeReplayMatchesLive is the tape contract at the driver level:
// replaying a materialized tape produces Results bit-identical to live
// generation, for both drivers, across prefetcher variants sharing one
// tape, and with a tape budget larger than the run.
func TestTapeReplayMatchesLive(t *testing.T) {
	cfg := testConfig()
	cfg.WarmRecords = 2_000
	cfg.MeasureRecords = 4_000
	perCore := cfg.WarmRecords + cfg.MeasureRecords
	for _, name := range []string{"web-apache", "sci-moldyn"} {
		ws := spec(t, name)
		scaled := ws.Scaled(cfg.Scale)
		tape := trace.NewTape(scaled, cfg.Seed, cfg.Cores, perCore)
		for _, ps := range []PrefSpec{{Kind: None}, {Kind: Ideal}, {Kind: STMS, SampleProb: 0.125}} {
			live := RunTimed(cfg, ws, ps)
			replay, err := RunTimedTapeCtx(nil, cfg, tape, ps, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(live, replay) {
				t.Fatalf("%s/%s: timed tape replay differs from live:\n%+v\n%+v",
					name, ps.Kind, replay, live)
			}
			liveF := RunFunctional(cfg, ws, ps)
			replayF, err := RunFunctionalTapeCtx(nil, cfg, tape, ps, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(liveF, replayF) {
				t.Fatalf("%s/%s: functional tape replay differs from live", name, ps.Kind)
			}
		}
	}

	// An oversized tape replays the same run (cursors are capped).
	ws := spec(t, "oltp-db2")
	big := trace.NewTape(ws.Scaled(cfg.Scale), cfg.Seed, cfg.Cores, perCore+5_000)
	live := RunTimed(cfg, ws, PrefSpec{Kind: STMS})
	replay, err := RunTimedTapeCtx(nil, cfg, big, PrefSpec{Kind: STMS}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(live, replay) {
		t.Fatal("oversized tape replay differs from live")
	}
}

// TestTapeMismatchRejected covers the tapeFits validation.
func TestTapeMismatchRejected(t *testing.T) {
	cfg := testConfig()
	cfg.WarmRecords = 500
	cfg.MeasureRecords = 500
	scaled := spec(t, "web-zeus").Scaled(cfg.Scale)
	tape := trace.NewTape(scaled, cfg.Seed, cfg.Cores, 1_000)

	if _, err := RunTimedTapeCtx(nil, cfg, nil, PrefSpec{}, nil); err == nil {
		t.Fatal("nil tape accepted")
	}
	bad := cfg
	bad.Seed++
	if _, err := RunTimedTapeCtx(nil, bad, tape, PrefSpec{}, nil); err == nil {
		t.Fatal("seed mismatch accepted")
	}
	bad = cfg
	bad.Cores++
	if _, err := RunTimedTapeCtx(nil, bad, tape, PrefSpec{}, nil); err == nil {
		t.Fatal("core-count mismatch accepted")
	}
	bad = cfg
	bad.MeasureRecords += 1_000
	if _, err := RunFunctionalTapeCtx(nil, bad, tape, PrefSpec{}, nil); err == nil {
		t.Fatal("undersized tape accepted")
	}
}

func TestRunTimedTraceReplay(t *testing.T) {
	cfg := testConfig()
	cfg.WarmRecords = 10_000
	cfg.MeasureRecords = 12_000
	s := spec(t, "oltp-db2")

	// Capture the same interleaved stream the drivers would consume.
	scaled := s.Scaled(cfg.Scale)
	lib := trace.NewLibrary(scaled, cfg.Seed)
	perCore := make([][]trace.Record, cfg.Cores)
	var rec trace.Record
	gens := make([]trace.Generator, cfg.Cores)
	for i := range gens {
		gens[i] = trace.NewGenerator(lib, i, cfg.Seed)
	}
	total := (cfg.WarmRecords + cfg.MeasureRecords) * uint64(cfg.Cores)
	for i := uint64(0); i < total; i++ {
		c := int(i % uint64(cfg.Cores))
		gens[c].Next(&rec)
		perCore[c] = append(perCore[c], rec)
	}
	replay := make([]trace.Generator, cfg.Cores)
	for i := range replay {
		replay[i] = &trace.SliceGenerator{Records: perCore[i]}
	}
	// Scale must not be re-applied to already-scaled captured traces:
	// RunTimedTrace takes the records as-is.
	r := RunTimedTrace(cfg, "replay", replay, scaled.DirtyFrac, PrefSpec{Kind: STMS})
	if r.Records == 0 {
		t.Fatal("replay processed no records")
	}
	if r.Coverage() <= 0.05 {
		t.Fatalf("replay coverage %.3f too low", r.Coverage())
	}
	if r.Workload != "replay" {
		t.Fatalf("workload label %q", r.Workload)
	}
}

func TestRunTimedTraceWrongGenCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for generator/core mismatch")
		}
	}()
	cfg := testConfig()
	RunTimedTrace(cfg, "bad", []trace.Generator{&trace.SliceGenerator{}}, 0.2, PrefSpec{Kind: None})
}
