package sim

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"stms/internal/ckpt"
	"stms/internal/event"
	"stms/internal/stats"
	"stms/internal/trace"
)

// SMARTS-style sampled simulation (Wunderlich et al., ISCA'03). One
// serial timed run is split into K measurement windows that tile the
// measurement span exactly; each window runs on its own goroutine as an
// independent detailed simulation, warmed in three stages:
//
//  1. a meta-data-only replay (functional.metaStep: L2 contents plus
//     history-buffer/index-table updates, nothing else) covers the
//     window's entire trace prefix. STMS meta-data lives off-chip and
//     accumulates over the whole run without saturating, so a bounded
//     warming horizon systematically under-covers later windows; the
//     stripped-down replay makes the full prefix affordable;
//  2. a full-fidelity functional pass (the zero-latency driver) replays
//     the last Sampling.FuncWarmup records before the window to heat
//     the structures that do reach steady state quickly — L1s, L2
//     recency, stride tables, the prefetch buffer and active streams —
//     then hands the state to the timed system as an in-memory
//     ckpt.Snapshot;
//  3. a short detailed warm-up (Sampling.Warmup records) inside the
//     timed run settles the timing state (MSHRs, DRAM queues, in-flight
//     streams) before measurement opens. The cores barrier on the
//     warm-up boundary (cpu.Core.Pause) so no measurement records are
//     lost to inter-core skew, and the window clock stops at the last
//     instruction commit so the end-of-run drain tail is not paid once
//     per window.
//
// The join step stitches the per-window Results into one estimate
// (ratio metrics recomputed from summed numerators/denominators) and
// reports a Student-t confidence interval per metric over the window
// strata (stats.StratifiedMean). Every stage is deterministic, so the
// sampled estimate is identical across runs regardless of goroutine
// scheduling.
//
// Windows warm independently rather than forking one serial functional
// sweep: the full-fidelity functional driver is only ~2× faster than
// the timed one (the shared cache/prefetcher state machines dominate
// both), so a serial sweep that long would cap speedup below 2× by
// Amdahl's law. The meta-data-only replay is several times faster
// still, which is what makes per-window full-prefix warming compatible
// with real parallel speedup. K = 1 takes none of these stages: it
// delegates to the exact serial run and is bit-identical to it.

// Sampling configures sampled simulation for RunSampledCtx.
type Sampling struct {
	// Windows is K, the number of concurrent measurement windows the
	// measurement span is split into. 0 and 1 both mean "exact": the
	// run delegates to the serial timed driver.
	Windows int `json:"windows"`

	// Warmup is the per-core record count of detailed (timed) warm-up
	// run before each window's measurement opens. 0 defaults to a
	// quarter of Config.WarmRecords (minimum 1).
	Warmup uint64 `json:"warmup"`

	// FuncWarmup is the per-core record count of full-fidelity
	// functional warming replayed before the detailed warm-up. The rest
	// of the window's trace prefix, back to record zero, is always
	// replayed through the cheap meta-data-only warmer first. 0
	// defaults to Config.WarmRecords.
	FuncWarmup uint64 `json:"func_warmup"`

	// Confidence is the two-sided level of the reported intervals.
	// 0 defaults to 0.95.
	Confidence float64 `json:"confidence"`
}

// normalized fills defaults in and clamps K to the measurement span so
// every window measures at least one record.
func (s Sampling) normalized(cfg Config) Sampling {
	if s.Windows < 1 {
		s.Windows = 1
	}
	if uint64(s.Windows) > cfg.MeasureRecords {
		s.Windows = int(cfg.MeasureRecords)
	}
	if s.Warmup == 0 {
		if s.Warmup = cfg.WarmRecords / 4; s.Warmup == 0 {
			s.Warmup = 1
		}
	}
	if s.FuncWarmup == 0 {
		s.FuncWarmup = cfg.WarmRecords
	}
	if s.Confidence == 0 {
		s.Confidence = 0.95
	}
	return s
}

func (s Sampling) validate() error {
	if s.Confidence != 0 && (s.Confidence <= 0 || s.Confidence >= 1) {
		return fmt.Errorf("sim: confidence level %g outside (0,1)", s.Confidence)
	}
	return nil
}

// WindowStat is one window's slice of a sampled run: its geometry in
// per-core record indices and its detailed Results.
type WindowStat struct {
	Index      int     `json:"index"`
	Start      uint64  `json:"start"`       // first measured record (per core)
	Len        uint64  `json:"len"`         // measured records per core
	Warmup     uint64  `json:"warmup"`      // detailed warm-up records per core
	FuncWarmup uint64  `json:"func_warmup"` // full-fidelity functional warming records per core
	MetaWarmup uint64  `json:"meta_warmup"` // meta-data-only warming records per core
	Results    Results `json:"results"`
}

// SampledCI carries the per-metric confidence intervals of a sampled
// run. Ratio metrics are weighted by their denominators (cycles for
// IPC/MLP/DRAM utilization, baseline misses for coverage), so each
// interval is centered on the stitched ratio-of-sums estimate.
type SampledCI struct {
	IPC      stats.CI `json:"ipc"`
	MLP      stats.CI `json:"mlp"`
	DRAMUtil stats.CI `json:"dram_util"`
	Coverage stats.CI `json:"coverage"`
}

// SampledResults is the join of a sampled run: the stitched estimate in
// Results form (sums of window counters; ratio metrics recomputed from
// the sums), the per-window details, and the confidence intervals.
type SampledResults struct {
	Results Results `json:"results"`

	// Exact marks a K ≤ 1 run that delegated to the serial timed
	// driver: Results are bit-identical to the exact run and the
	// intervals degenerate to points.
	Exact bool `json:"exact"`

	// Sampling echoes the normalized parameters the run used.
	Sampling Sampling `json:"sampling"`

	Windows []WindowStat `json:"windows,omitempty"`
	CI      SampledCI    `json:"ci"`
}

// errSampledHalt aborts a window run after the sampled-run coordinator
// has written its haltAfter-th checkpoint; the scheduler maps it to
// ErrCheckpointed.
var errSampledHalt = errors.New("sim: sampled run halting after checkpoint")

// windowGeom is one window's geometry in per-core record indices: the
// measurement spans [start, start+length), the detailed warm-up
// [start-warm, start), full-fidelity functional warming
// [start-warm-funcWarm, start-warm), and meta-data-only warming the
// whole remaining prefix [0, start-warm-funcWarm).
type windowGeom struct {
	start, length, warm, funcWarm, metaWarm uint64
}

// windowPlan tiles the measurement span [W, W+M) across K windows:
// ΣL_w = M with no overlap, remainder records going to the earliest
// windows. The warm-up stages clamp at the start of the trace; the
// meta-data warmer always extends the warming back to record zero, so
// every window sees the full off-chip meta-data accumulated before it.
func windowPlan(cfg Config, smp Sampling) []windowGeom {
	k := uint64(smp.Windows)
	m, w0 := cfg.MeasureRecords, cfg.WarmRecords
	l, rem := m/k, m%k
	plan := make([]windowGeom, k)
	for w := uint64(0); w < k; w++ {
		g := windowGeom{length: l, start: w0 + w*l + min(w, rem)}
		if w < rem {
			g.length++
		}
		g.warm = min(smp.Warmup, g.start)
		g.funcWarm = min(smp.FuncWarmup, g.start-g.warm)
		g.metaWarm = g.start - g.warm - g.funcWarm
		plan[w] = g
	}
	return plan
}

// genMaker builds fresh per-core generators positioned skip records in
// (per core) with exactly budget records remaining. Each window calls
// it independently, so implementations must not share mutable state
// across calls.
type genMaker func(skip, budget uint64) ([]trace.Generator, error)

// drainRecords consumes n records from g.
func drainRecords(g trace.Generator, n uint64) error {
	var r trace.Record
	for i := uint64(0); i < n; i++ {
		if !g.Next(&r) {
			return fmt.Errorf("sim: trace ran dry after %d of %d skipped records", i, n)
		}
	}
	return nil
}

// sampledSupported gates sampling on configurations whose warm state is
// snapshotable — the same set as checkpointing.
func sampledSupported(src ckptSrc, ps PrefSpec) error {
	if !CheckpointablePref(ps) {
		return fmt.Errorf("sim: the %s variant is not sampleable (warm state cannot be snapshotted)", ps.Kind)
	}
	if src.kind == "external" {
		return fmt.Errorf("sim: runs over externally supplied generators cannot be sampled (sources cannot be re-derived per window)")
	}
	return nil
}

// runWarm drives the window's warming schedule — meta-data-only replay
// over the deep prefix, then full-fidelity functional simulation over
// the recent horizon — and captures the warm state (caches, stride
// tables, temporal prefetcher) as an in-memory snapshot. The functional
// driver is fully synchronous, so the snapshot holds no in-flight
// operations — it restores cleanly into a timed system whose event
// engine starts empty.
// The generators are consumed record-at-a-time (no framing read-ahead),
// so after the warm budget they sit exactly at the window's detailed
// warm-up boundary and the caller reuses them for the timed run — the
// window's trace prefix is generated once, not once per stage.
func runWarm(ctx context.Context, cfg Config, scaled trace.Spec, gens []trace.Generator, ps PrefSpec, metaPerCore, funcPerCore uint64) (*ckpt.Snapshot, error) {
	s := newFunctional(cfg, scaled, ps)
	var r trace.Record
	metaTotal := metaPerCore * uint64(cfg.Cores)
	total := metaTotal + funcPerCore*uint64(cfg.Cores)
	for i := uint64(0); i < total; i++ {
		if i%pollEvery == 0 && i > 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		core := int(i % uint64(cfg.Cores))
		if !gens[core].Next(&r) {
			break
		}
		s.now = i
		if i < metaTotal {
			s.metaStep(core, r.Block)
		} else {
			s.step(core, r.PC, r.Block)
		}
	}
	return s.warmSnapshot()
}

// warmSnapshot serializes the functional state shared with the timed
// system. No handler ids are recorded (nothing is in flight), mirroring
// snapshotFunc.
func (s *functional) warmSnapshot() (*ckpt.Snapshot, error) {
	noIDs := func(event.Handler) (uint32, bool) { return 0, false }
	enc := ckpt.NewEncoder()
	enc.Section("sim.warm")
	s.l2.Snapshot(enc)
	for _, c := range s.l1 {
		c.Snapshot(enc)
	}
	s.strid.Snapshot(enc)
	if err := snapshotPref(enc, &s.pref, noIDs); err != nil {
		return nil, err
	}
	return ckpt.NewSnapshot(enc), nil
}

// applyWarm restores functionally warmed state into a freshly
// constructed timed system, before its cores start.
func (s *timed) applyWarm(snap *ckpt.Snapshot) error {
	dec := snap.Decoder()
	dec.Section("sim.warm")
	if err := s.l2.Restore(dec); err != nil {
		return err
	}
	for _, c := range s.l1 {
		if err := c.Restore(dec); err != nil {
			return err
		}
	}
	if err := s.strid.Restore(dec); err != nil {
		return err
	}
	if err := restorePref(dec, &s.pref, handlerOfFunc(s.handlers())); err != nil {
		return err
	}
	return dec.Err()
}

// --- sampled checkpoint container ------------------------------------------

// sampledDesc heads a sampled checkpoint container: everything needed
// to rebuild the sampled run.
type sampledDesc struct {
	Mode     string          `json:"mode"`   // "sampled"
	Source   string          `json:"source"` // "spec" | "scenario" | "tape"
	Cfg      Config          `json:"cfg"`
	PS       PrefSpec        `json:"ps"`
	Spec     *trace.Spec     `json:"spec,omitempty"`
	Scenario *trace.Scenario `json:"scenario,omitempty"`
	Smp      Sampling        `json:"sampling"`
}

// Per-window slot states in a sampled container.
const (
	slotNone    uint8 = iota // window not started (or no checkpoint yet)
	slotPartial              // slot holds a sealed mid-window checkpoint
	slotDone                 // slot holds the window's JSON Results
)

// sampledCkpt coordinates checkpointing across the K window goroutines:
// each window's checkpoint sink lands here, updates the window's slot
// and rewrites one combined container holding the sampled descriptor
// plus every window's latest state.
type sampledCkpt struct {
	mu     sync.Mutex
	opt    runOpts // sampled-level options (path/sink/every/haltAfter)
	desc   []byte  // marshaled sampledDesc
	state  []byte  // per-window slot states
	slots  [][]byte
	writes int
	halted bool
	cancel context.CancelFunc
}

// write rewrites the combined container from the current slots. Caller
// holds mu.
func (c *sampledCkpt) write() error {
	enc := ckpt.NewEncoder()
	enc.Section("sim.sampled")
	enc.Bytes(c.desc)
	enc.Int(len(c.state))
	for w := range c.state {
		enc.U8(c.state[w])
		enc.Bytes(c.slots[w])
	}
	if c.opt.path != "" {
		if err := ckpt.WriteFile(c.opt.path, enc.Payload()); err != nil {
			return err
		}
	}
	if c.opt.sink != nil {
		if err := c.opt.sink(ckpt.Seal(enc.Payload())); err != nil {
			return err
		}
	}
	return nil
}

// onWindow returns window w's checkpoint sink. Which window triggers
// the n-th combined write depends on goroutine scheduling, so the
// container contents are not deterministic — but every slot is, so the
// resumed run's estimate is identical to the uninterrupted one.
func (c *sampledCkpt) onWindow(w int) func([]byte) error {
	return func(data []byte) error {
		c.mu.Lock()
		defer c.mu.Unlock()
		if c.halted {
			return errSampledHalt
		}
		c.state[w] = slotPartial
		c.slots[w] = append([]byte(nil), data...)
		if err := c.write(); err != nil {
			return err
		}
		c.writes++
		if c.opt.haltAfter > 0 && c.writes >= c.opt.haltAfter {
			c.halted = true
			c.cancel()
			return errSampledHalt
		}
		return nil
	}
}

// finish records window w's completed Results and refreshes the
// container so a later resume skips the window entirely.
func (c *sampledCkpt) finish(w int, res Results) error {
	j, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("sim: encoding window results: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.state[w] = slotDone
	c.slots[w] = j
	return c.write()
}

// openSampled unpacks a sealed sampled container.
func openSampled(data []byte) (sampledDesc, []byte, [][]byte, error) {
	payload, err := ckpt.Open(data)
	if err != nil {
		return sampledDesc{}, nil, nil, err
	}
	dec := ckpt.NewDecoder(payload)
	dec.Section("sim.sampled")
	j := dec.Bytes()
	if err := dec.Err(); err != nil {
		return sampledDesc{}, nil, nil, fmt.Errorf("sim: not a sampled checkpoint: %w", err)
	}
	var d sampledDesc
	if err := json.Unmarshal(j, &d); err != nil {
		return sampledDesc{}, nil, nil, fmt.Errorf("sim: corrupt sampled descriptor: %w", err)
	}
	n := dec.Int()
	if err := dec.Err(); err != nil {
		return sampledDesc{}, nil, nil, err
	}
	state := make([]byte, n)
	slots := make([][]byte, n)
	for w := 0; w < n; w++ {
		state[w] = dec.U8()
		slots[w] = dec.Bytes()
	}
	if err := dec.Err(); err != nil {
		return sampledDesc{}, nil, nil, err
	}
	return d, state, slots, nil
}

// PeekSampled opens a sealed sampled checkpoint and reports its shape
// (source, config, sampling parameters, windows completed) without
// restoring anything.
func PeekSampled(data []byte) (Sampling, CheckpointDesc, int, error) {
	d, state, _, err := openSampled(data)
	if err != nil {
		return Sampling{}, CheckpointDesc{}, 0, err
	}
	done := 0
	for _, st := range state {
		if st == slotDone {
			done++
		}
	}
	cd := CheckpointDesc{Mode: d.Mode, Source: d.Source, Cfg: d.Cfg, PS: d.PS, Spec: d.Spec, Scenario: d.Scenario}
	return d.Smp, cd, done, nil
}

// --- entry points ----------------------------------------------------------

// exactSampled wraps a serial run's Results as a degenerate sampled
// estimate (point intervals, N = 1).
func exactSampled(r Results, smp Sampling) SampledResults {
	point := func(v float64) stats.CI {
		return stats.CI{Mean: v, Lo: v, Hi: v, Level: smp.Confidence, N: 1}
	}
	return SampledResults{
		Results:  r,
		Exact:    true,
		Sampling: smp,
		CI: SampledCI{
			IPC:      point(r.IPC),
			MLP:      point(r.MLP),
			DRAMUtil: point(r.DRAMUtil),
			Coverage: point(r.Coverage()),
		},
	}
}

// RunSampled executes a sampled timed simulation of the workload and
// panics on configuration errors (the ergonomic sibling of RunTimed).
func RunSampled(cfg Config, spec trace.Spec, ps PrefSpec, smp Sampling) SampledResults {
	r, err := RunSampledCtx(context.Background(), cfg, spec, ps, smp, nil)
	if err != nil {
		panic(err)
	}
	return r
}

// RunSampledCtx executes the timed simulation as K concurrent sampled
// windows and returns the stitched estimate with confidence intervals.
// K ≤ 1 delegates to RunTimedCtx: the Results are bit-identical to the
// exact serial run (and Exact is set). Checkpoint options apply to the
// sampled run as a whole: windows share one combined container that
// ResumeSampledCtx restores (completed windows are not re-run).
func RunSampledCtx(ctx context.Context, cfg Config, spec trace.Spec, ps PrefSpec, smp Sampling, progress Progress, opts ...RunOption) (SampledResults, error) {
	if err := cfg.Validate(); err != nil {
		return SampledResults{}, err
	}
	if err := smp.validate(); err != nil {
		return SampledResults{}, err
	}
	smp = smp.normalized(cfg)
	if smp.Windows <= 1 {
		r, err := RunTimedCtx(ctx, cfg, spec, ps, progress, opts...)
		if err != nil {
			return SampledResults{}, err
		}
		return exactSampled(r, smp), nil
	}
	scaled := spec.Scaled(cfg.Scale)
	mk := func(skip, budget uint64) ([]trace.Generator, error) {
		lib := trace.NewLibrary(scaled, cfg.Seed)
		gens := make([]trace.Generator, cfg.Cores)
		for i := range gens {
			g := trace.NewGenerator(lib, i, cfg.Seed)
			if err := drainRecords(g, skip); err != nil {
				return nil, err
			}
			gens[i] = &trace.Limit{Gen: g, N: budget}
		}
		return gens, nil
	}
	sp := spec
	desc := sampledDesc{Mode: "sampled", Source: "spec", Cfg: cfg, PS: ps, Spec: &sp, Smp: smp}
	return runSampled(ctx, cfg, scaled, ps, smp, progress, ckptSrc{kind: "spec", spec: spec}, desc, mk, opts)
}

// RunSampledScenarioCtx is RunSampledCtx over a phase-structured
// scenario. Window generators are materialized against the serial run's
// budget so phase boundaries stay where the exact run puts them; the
// stitched Results carry no per-phase windows (phases attribute records
// across window boundaries).
func RunSampledScenarioCtx(ctx context.Context, cfg Config, scn trace.Scenario, ps PrefSpec, smp Sampling, progress Progress, opts ...RunOption) (SampledResults, error) {
	if err := cfg.Validate(); err != nil {
		return SampledResults{}, err
	}
	if err := smp.validate(); err != nil {
		return SampledResults{}, err
	}
	smp = smp.normalized(cfg)
	if smp.Windows <= 1 {
		r, err := RunTimedScenarioCtx(ctx, cfg, scn, ps, progress, opts...)
		if err != nil {
			return SampledResults{}, err
		}
		return exactSampled(r, smp), nil
	}
	scaled := scn.Scaled(cfg.Scale)
	total := cfg.WarmRecords + cfg.MeasureRecords
	mk := func(skip, budget uint64) ([]trace.Generator, error) {
		gens, _, err := scaled.Generators(cfg.Seed, cfg.Cores, total)
		if err != nil {
			return nil, err
		}
		for i, g := range gens {
			if err := drainRecords(g, skip); err != nil {
				return nil, err
			}
			gens[i] = &trace.Limit{Gen: g, N: budget}
		}
		return gens, nil
	}
	sc := scn
	desc := sampledDesc{Mode: "sampled", Source: "scenario", Cfg: cfg, PS: ps, Scenario: &sc, Smp: smp}
	return runSampled(ctx, cfg, scaled.EffectiveSpec(cfg.Cores, total), ps, smp, progress, ckptSrc{kind: "scenario", scn: scn}, desc, mk, opts)
}

// RunSampledTapeCtx is RunSampledCtx over a materialized columnar tape
// (same identity contract as RunTimedTapeCtx). Window cursors decode
// from the head of each core's column — the tape has no random access —
// so very large K over very long tapes pays quadratic decode work; the
// decode is ~100× cheaper than detailed simulation, which keeps the
// skip cost in the noise at practical window counts.
func RunSampledTapeCtx(ctx context.Context, cfg Config, tape *trace.Tape, ps PrefSpec, smp Sampling, progress Progress, opts ...RunOption) (SampledResults, error) {
	if err := cfg.Validate(); err != nil {
		return SampledResults{}, err
	}
	if err := smp.validate(); err != nil {
		return SampledResults{}, err
	}
	perCore := cfg.WarmRecords + cfg.MeasureRecords
	if err := tapeFits(cfg, tape, perCore); err != nil {
		return SampledResults{}, err
	}
	smp = smp.normalized(cfg)
	if smp.Windows <= 1 {
		r, err := RunTimedTapeCtx(ctx, cfg, tape, ps, progress, opts...)
		if err != nil {
			return SampledResults{}, err
		}
		return exactSampled(r, smp), nil
	}
	mk := func(skip, budget uint64) ([]trace.Generator, error) {
		gens := make([]trace.Generator, cfg.Cores)
		for i := range gens {
			cu := tape.CursorN(i, skip+budget)
			if err := drainRecords(cu, skip); err != nil {
				return nil, err
			}
			gens[i] = cu
		}
		return gens, nil
	}
	sp := tape.Spec()
	desc := sampledDesc{Mode: "sampled", Source: "tape", Cfg: cfg, PS: ps, Spec: &sp, Smp: smp}
	return runSampled(ctx, cfg, tape.Spec(), ps, smp, progress, ckptSrc{kind: "tape"}, desc, mk, opts)
}

// ResumeSampledCtx continues a sampled run from sealed combined
// checkpoint bytes: completed windows are restored from their recorded
// Results, mid-flight windows resume from their window checkpoints, and
// untouched windows run fresh. Every path is deterministic, so the
// resumed estimate is identical to the uninterrupted run's.
// Tape-backed sampled checkpoints need ResumeSampledTape.
func ResumeSampledCtx(ctx context.Context, data []byte, progress Progress, opts ...RunOption) (SampledResults, error) {
	d, _, _, err := openSampled(data)
	if err != nil {
		return SampledResults{}, err
	}
	opts = append(opts, WithResume(data))
	switch {
	case d.Source == "tape":
		return SampledResults{}, fmt.Errorf("sim: sampled checkpoint is tape-backed; resume it with ResumeSampledTape and the tape")
	case d.Source == "spec" && d.Spec != nil:
		return RunSampledCtx(ctx, d.Cfg, *d.Spec, d.PS, d.Smp, progress, opts...)
	case d.Source == "scenario" && d.Scenario != nil:
		return RunSampledScenarioCtx(ctx, d.Cfg, *d.Scenario, d.PS, d.Smp, progress, opts...)
	}
	return SampledResults{}, fmt.Errorf("sim: sampled checkpoint names unknown source %q", d.Source)
}

// ResumeSampledTape continues a tape-backed sampled run; the caller
// supplies the tape, as with ResumeTape.
func ResumeSampledTape(ctx context.Context, data []byte, tape *trace.Tape, progress Progress, opts ...RunOption) (SampledResults, error) {
	d, _, _, err := openSampled(data)
	if err != nil {
		return SampledResults{}, err
	}
	if d.Source != "tape" {
		return SampledResults{}, fmt.Errorf("sim: sampled checkpoint is %s-backed, not tape-backed", d.Source)
	}
	opts = append(opts, WithResume(data))
	return RunSampledTapeCtx(ctx, d.Cfg, tape, d.PS, d.Smp, progress, opts...)
}

// --- scheduler -------------------------------------------------------------

// runSampled is the fork/join scheduler: K goroutines, one per window,
// each warming and running its own detailed simulation; the join step
// stitches the window Results and computes the intervals.
func runSampled(ctx context.Context, cfg Config, scaled trace.Spec, ps PrefSpec, smp Sampling, progress Progress, baseSrc ckptSrc, desc sampledDesc, mk genMaker, opts []RunOption) (SampledResults, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := sampledSupported(baseSrc, ps); err != nil {
		return SampledResults{}, err
	}
	opt := gatherOpts(opts)
	plan := windowPlan(cfg, smp)
	k := len(plan)

	// Resume slots: the combined container records each window's state.
	state := make([]byte, k)
	slots := make([][]byte, k)
	if opt.resume != nil {
		d, st, sl, err := openSampled(opt.resume)
		if err != nil {
			return SampledResults{}, err
		}
		if err := checkSampledDesc(d, desc); err != nil {
			return SampledResults{}, err
		}
		if len(st) != k {
			return SampledResults{}, fmt.Errorf("sim: sampled checkpoint has %d windows, run plans %d", len(st), k)
		}
		state, slots = st, sl
	}

	ctx2, cancel := context.WithCancel(ctx)
	defer cancel()
	var sc *sampledCkpt
	if opt.active() || opt.path != "" || opt.sink != nil {
		dj, err := json.Marshal(desc)
		if err != nil {
			return SampledResults{}, fmt.Errorf("sim: encoding sampled descriptor: %w", err)
		}
		sc = &sampledCkpt{opt: opt, desc: dj, state: state, slots: slots, cancel: cancel}
	}

	// Aggregate progress: each window reports its own (done, total);
	// the callback forwards the sum. Completed (restored) windows count
	// at full weight.
	var totalAll uint64
	perTotal := make([]uint64, k)
	for w, g := range plan {
		perTotal[w] = (g.warm + g.length) * uint64(cfg.Cores)
		totalAll += perTotal[w]
	}
	doneBy := make([]uint64, k)
	var progMu sync.Mutex
	progFor := func(w int) Progress {
		if progress == nil {
			return nil
		}
		return func(done, total uint64) {
			progMu.Lock()
			doneBy[w] = min(done, perTotal[w])
			var sum uint64
			for _, v := range doneBy {
				sum += v
			}
			progMu.Unlock()
			progress(sum, totalAll)
		}
	}

	wsrc := ckptSrc{kind: "window:" + baseSrc.kind}
	results := make([]Results, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for w := range plan {
		if state[w] == slotDone {
			if err := json.Unmarshal(slots[w], &results[w]); err != nil {
				return SampledResults{}, fmt.Errorf("sim: corrupt window %d results in sampled checkpoint: %w", w, err)
			}
			doneBy[w] = perTotal[w]
			continue
		}
		var resume []byte
		if state[w] == slotPartial {
			resume = slots[w]
		}
		wg.Add(1)
		go func(w int, resume []byte) {
			defer wg.Done()
			results[w], errs[w] = runOneWindow(ctx2, cfg, scaled, ps, plan[w], wsrc, mk, sc, w, resume, opt.stopCh, progFor(w))
			switch {
			case errs[w] == nil:
				if sc != nil {
					if err := sc.finish(w, results[w]); err != nil {
						errs[w] = err
						cancel()
					}
				}
			case errors.Is(errs[w], errSampledHalt), errors.Is(errs[w], ErrCheckpointed):
				// Coordinated halt; siblings are being cancelled (or
				// flushing their own final checkpoints).
			default:
				cancel()
			}
		}(w, resume)
	}
	wg.Wait()

	halted := false
	if sc != nil {
		sc.mu.Lock()
		halted = sc.halted
		sc.mu.Unlock()
	}
	var firstErr, canceled error
	for _, err := range errs {
		switch {
		case err == nil:
		case errors.Is(err, errSampledHalt), errors.Is(err, ErrCheckpointed):
			halted = true
		case errors.Is(err, context.Canceled):
			canceled = err
		default:
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	switch {
	case halted:
		return SampledResults{}, ErrCheckpointed
	case ctx.Err() != nil:
		return SampledResults{}, ctx.Err()
	case firstErr != nil:
		return SampledResults{}, firstErr
	case canceled != nil:
		return SampledResults{}, canceled
	}
	return stitchSampled(ps, smp, scaled, plan, results), nil
}

// checkSampledDesc validates a resume descriptor against the run being
// restored into.
func checkSampledDesc(d, want sampledDesc) error {
	switch {
	case d.Mode != "sampled":
		return fmt.Errorf("sim: checkpoint is a %s-mode run, resuming sampled", d.Mode)
	case d.Source != want.Source:
		return fmt.Errorf("sim: sampled checkpoint source %q does not match run source %q", d.Source, want.Source)
	case d.Cfg != want.Cfg:
		return fmt.Errorf("sim: sampled checkpoint configuration does not match the run's")
	case d.PS.Kind != want.PS.Kind:
		return fmt.Errorf("sim: sampled checkpoint is a %s run, resuming %s", d.PS.Kind, want.PS.Kind)
	case d.Smp != want.Smp:
		return fmt.Errorf("sim: sampled checkpoint parameters %+v do not match the run's %+v", d.Smp, want.Smp)
	}
	return nil
}

// runOneWindow warms and runs one window's detailed simulation.
func runOneWindow(ctx context.Context, cfg Config, scaled trace.Spec, ps PrefSpec, g windowGeom, wsrc ckptSrc, mk genMaker, sc *sampledCkpt, w int, resume []byte, stopCh <-chan struct{}, progress Progress) (Results, error) {
	cfgW := cfg
	cfgW.WarmRecords = g.warm
	cfgW.MeasureRecords = g.length

	wopts := []RunOption{withWindowClock()}
	if sc != nil {
		wopts = append(wopts, WithCheckpointFunc(sc.opt.every, sc.onWindow(w)))
		if stopCh != nil {
			wopts = append(wopts, WithCheckpointSignal(stopCh))
		}
	}
	var gens []trace.Generator
	var err error
	switch {
	case resume != nil:
		// A resumed window restores its full mid-run state; the warm
		// pass already happened in the original run.
		wopts = append(wopts, WithResume(resume))
		gens, err = mk(g.start-g.warm, g.warm+g.length)
	case g.funcWarm+g.metaWarm > 0:
		// One generator set covers warming and the timed run: runWarm
		// consumes exactly the warming budget record-at-a-time, leaving
		// the generators positioned at the detailed warm-up boundary.
		gens, err = mk(0, g.start+g.length)
		if err != nil {
			return Results{}, err
		}
		var snap *ckpt.Snapshot
		snap, err = runWarm(ctx, cfgW, scaled, gens, ps, g.metaWarm, g.funcWarm)
		if err != nil {
			return Results{}, err
		}
		wopts = append(wopts, withWarmState(snap))
	default:
		gens, err = mk(g.start-g.warm, g.warm+g.length)
	}
	if err != nil {
		return Results{}, err
	}
	return runTimed(ctx, cfgW, scaled, gens, nil, nil, ps, progress, (g.warm+g.length)*uint64(cfg.Cores), wsrc, wopts)
}

// addEngineCounts is the element-wise sum (the Sub counterpart, used
// only by the stitcher).
func addEngineCounts(a, b EngineCounts) EngineCounts {
	return EngineCounts{
		Lookups: a.Lookups + b.Lookups, LookupHits: a.LookupHits + b.LookupHits,
		Adopted: a.Adopted + b.Adopted, Abandoned: a.Abandoned + b.Abandoned,
		Resumed: a.Resumed + b.Resumed, DepthStops: a.DepthStops + b.DepthStops,
		Exhausted: a.Exhausted + b.Exhausted, Issued: a.Issued + b.Issued,
		Filtered: a.Filtered + b.Filtered, FullHits: a.FullHits + b.FullHits,
		PartialHits: a.PartialHits + b.PartialHits, Evicted: a.Evicted + b.Evicted,
	}
}

// stitchSampled joins the window Results into one estimate. Counters
// sum; ratio metrics are recomputed from the sums, which is exactly
// what StratifiedMean's denominator weighting reports as each
// interval's center. StreamLens and Phases are window-local views and
// are not stitched.
func stitchSampled(ps PrefSpec, smp Sampling, scaled trace.Spec, plan []windowGeom, results []Results) SampledResults {
	k := len(plan)
	sr := SampledResults{Sampling: smp, Windows: make([]WindowStat, k)}
	agg := Results{Workload: scaled.Name, Variant: ps.Kind.String()}
	ipc := make([]float64, k)
	mlp := make([]float64, k)
	util := make([]float64, k)
	cov := make([]float64, k)
	cyc := make([]float64, k)
	miss := make([]float64, k)
	for w := range results {
		r := &results[w]
		g := plan[w]
		sr.Windows[w] = WindowStat{
			Index: w, Start: g.start, Len: g.length, Warmup: g.warm,
			FuncWarmup: g.funcWarm, MetaWarmup: g.metaWarm, Results: *r,
		}
		agg.ElapsedCycles += r.ElapsedCycles
		agg.Instrs += r.Instrs
		agg.Records += r.Records
		agg.L1Hits += r.L1Hits
		agg.L2Hits += r.L2Hits
		agg.CoveredFull += r.CoveredFull
		agg.CoveredPartial += r.CoveredPartial
		agg.Uncovered += r.Uncovered
		for c := range agg.Traffic.Accesses {
			agg.Traffic.Accesses[c] += r.Traffic.Accesses[c]
		}
		agg.Engine = addEngineCounts(agg.Engine, r.Engine)
		agg.Frames.Add(r.Frames)
		ipc[w], mlp[w], util[w] = r.IPC, r.MLP, r.DRAMUtil
		cov[w] = r.Coverage()
		cyc[w] = float64(r.ElapsedCycles)
		miss[w] = float64(r.BaselineMisses())
	}
	sr.CI.IPC = stats.StratifiedMean(ipc, cyc, smp.Confidence)
	sr.CI.MLP = stats.StratifiedMean(mlp, cyc, smp.Confidence)
	sr.CI.DRAMUtil = stats.StratifiedMean(util, cyc, smp.Confidence)
	sr.CI.Coverage = stats.StratifiedMean(cov, miss, smp.Confidence)
	if agg.ElapsedCycles > 0 {
		agg.IPC = float64(agg.Instrs) / float64(agg.ElapsedCycles)
	}
	agg.MLP = sr.CI.MLP.Mean
	agg.DRAMUtil = sr.CI.DRAMUtil.Mean
	sr.Results = agg
	return sr
}
