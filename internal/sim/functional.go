package sim

import (
	"context"
	"fmt"

	"stms/internal/cache"
	"stms/internal/ckpt"
	"stms/internal/dram"
	"stms/internal/event"
	"stms/internal/prefetch"
	"stms/internal/prefetch/stride"
	"stms/internal/trace"
)

// functional is the fast zero-latency driver: identical cache and
// prefetcher state machines as the timed system, but memory responds
// instantly and time is the record counter. Used for idealized meta-data
// capacity sweeps (Figs. 1 left, 5, 6), where coverage is by definition
// independent of timing.
type functional struct {
	cfg   Config
	spec  trace.Spec
	now   uint64
	l1    []*cache.Cache
	l2    *cache.Cache
	strid *stride.Prefetcher
	pref  built

	// warmRec is the traffic-free warming append when the temporal
	// backend offers one (see prefetch.WarmRecorder), nil otherwise;
	// resolved once at construction so metaStep pays no per-record
	// type assertion.
	warmRec func(core int, blk uint64)

	// strideIssue is the premade stride-candidate continuation (one
	// allocation per run instead of one per load).
	strideIssue func(cand uint64)

	dirtyThresh uint64

	cnt     counters
	cntSnap counters
	engSnap EngineCounts
}

// funcEnv satisfies prefetch.Env with synchronous, traffic-free responses
// (the literal "magic zero-latency" meta-data of §5.2).
type funcEnv struct{ s *functional }

func (e funcEnv) Now() uint64 { return e.s.now }

func (e funcEnv) MetaRead(class dram.Class, done func(uint64)) {
	if done != nil {
		done(e.s.now)
	}
}

func (e funcEnv) MetaReadH(class dram.Class, h event.Handler, kind uint8, a, b uint64) {
	h.Handle(e.s.now, kind, a, b)
}

func (e funcEnv) MetaWrite(dram.Class) {}

func (e funcEnv) Fetch(core int, blk uint64, done func(uint64)) {
	if done != nil {
		done(e.s.now)
	}
}

func (e funcEnv) FetchH(core int, blk uint64, h event.Handler, kind uint8, a, b uint64) {
	h.Handle(e.s.now, kind, a, b)
}

func (e funcEnv) OnChip(core int, blk uint64) bool {
	return e.s.l1[core].Probe(blk) || e.s.l2.Probe(blk)
}

// RunFunctional executes the functional driver and returns coverage
// results (timing fields zero).
func RunFunctional(cfg Config, spec trace.Spec, ps PrefSpec) Results {
	r, err := RunFunctionalCtx(context.Background(), cfg, spec, ps, nil)
	if err != nil {
		panic(err)
	}
	return r
}

// RunFunctionalCtx is RunFunctional with cooperative cancellation and an
// optional progress hook. The context is polled every few thousand
// records; on cancellation ctx.Err() is returned. Configuration errors
// are returned rather than panicking.
//
// This is the live-generation path; like the timed driver, its Results
// are bit-identical to replaying a trace.Tape of the same identity
// through RunFunctionalTapeCtx.
func RunFunctionalCtx(ctx context.Context, cfg Config, spec trace.Spec, ps PrefSpec, progress Progress, opts ...RunOption) (Results, error) {
	if err := cfg.Validate(); err != nil {
		return Results{}, err
	}
	scaled := spec.Scaled(cfg.Scale)
	lib := trace.NewLibrary(scaled, cfg.Seed)
	total := cfg.WarmRecords + cfg.MeasureRecords
	gens := make([]trace.Generator, cfg.Cores)
	for i := range gens {
		// The bound mirrors the timed driver (and the tape path's
		// CursorN), so frame boundaries — and Results.Frames — are
		// identical across drivers and trace substrates.
		gens[i] = &trace.Limit{Gen: trace.NewGenerator(lib, i, cfg.Seed), N: total}
	}
	src := ckptSrc{kind: "spec", spec: spec}
	return runFunctional(ctx, cfg, scaled, gens, nil, nil, ps, progress, src, opts)
}

// RunFunctionalScenarioCtx executes the zero-latency driver over a
// phase-structured scenario (scaled by cfg.Scale, materialized against
// the warm + measure budget). Results carry per-phase stat windows;
// timing fields stay zero.
func RunFunctionalScenarioCtx(ctx context.Context, cfg Config, scn trace.Scenario, ps PrefSpec, progress Progress, opts ...RunOption) (Results, error) {
	if err := cfg.Validate(); err != nil {
		return Results{}, err
	}
	scaled := scn.Scaled(cfg.Scale)
	total := cfg.WarmRecords + cfg.MeasureRecords
	gens, marks, err := scaled.Generators(cfg.Seed, cfg.Cores, total)
	if err != nil {
		return Results{}, err
	}
	for i, g := range gens {
		gens[i] = &trace.Limit{Gen: g, N: total}
	}
	src := ckptSrc{kind: "scenario", scn: scn}
	return runFunctional(ctx, cfg, scaled.EffectiveSpec(cfg.Cores, total), gens, nil, marks, ps, progress, src, opts)
}

// RunFunctionalTapeCtx executes the functional driver over a
// materialized columnar tape (same contract as RunTimedTapeCtx: the
// tape's identity must match the configuration's trace identity).
func RunFunctionalTapeCtx(ctx context.Context, cfg Config, tape *trace.Tape, ps PrefSpec, progress Progress, opts ...RunOption) (Results, error) {
	if err := cfg.Validate(); err != nil {
		return Results{}, err
	}
	perCore := cfg.WarmRecords + cfg.MeasureRecords
	if err := tapeFits(cfg, tape, perCore); err != nil {
		return Results{}, err
	}
	gens := make([]trace.Generator, cfg.Cores)
	for i := range gens {
		gens[i] = tape.CursorN(i, perCore)
	}
	src := ckptSrc{kind: "tape"}
	return runFunctional(ctx, cfg, tape.Spec(), gens, nil, tape.Marks(), ps, progress, src, opts)
}

// RunFunctionalSourcesCtx executes the functional driver over externally
// produced frame sources — a stream.Inlet's Sources, typically. The
// bundle's Spec and Marks stand in for the locally derived identity;
// checkpointing is unavailable (the sources cannot be re-seeked). When
// the bundle declares a per-core record count, the run budget must match
// it exactly so Results stay bit-identical to direct replay.
func RunFunctionalSourcesCtx(ctx context.Context, cfg Config, run SourceRun, ps PrefSpec, progress Progress, opts ...RunOption) (Results, error) {
	if err := cfg.Validate(); err != nil {
		return Results{}, err
	}
	if err := run.validate(cfg); err != nil {
		return Results{}, err
	}
	src := ckptSrc{kind: "external"}
	return runFunctional(ctx, cfg, run.Spec, nil, run.Sources, run.Marks, ps, progress, src, opts)
}

// newFunctional constructs the zero-latency system (also used by the
// sampling scheduler's warming pass).
func newFunctional(cfg Config, scaled trace.Spec, ps PrefSpec) *functional {
	s := &functional{
		cfg:         cfg,
		spec:        scaled,
		dirtyThresh: dirtyThreshold(scaled.DirtyFrac),
	}
	s.l2 = cache.New(cache.Config{Name: "L2", SizeBytes: cfg.L2(), Assoc: cfg.L2Assoc})
	s.strid = stride.New(cfg.Stride)
	s.strideIssue = s.stridePrefetch
	s.pref = buildPrefetcher(funcEnv{s}, cfg, ps)
	if w, ok := s.pref.temporal.(prefetch.WarmRecorder); ok {
		s.warmRec = w.RecordWarm
	}
	for i := 0; i < cfg.Cores; i++ {
		s.l1 = append(s.l1, cache.New(cache.Config{Name: "L1", SizeBytes: cfg.L1(), Assoc: cfg.L1Assoc}))
	}
	return s
}

// runFunctional drives the zero-latency system over per-core record
// generators, round-robin, one record per core per tick; marks, when
// non-nil, request per-phase stat windows in the Results.
func runFunctional(ctx context.Context, cfg Config, scaled trace.Spec, gens []trace.Generator, extSrcs []trace.FrameSource, marks []trace.PhaseMark, ps PrefSpec, progress Progress, src ckptSrc, opts []RunOption) (Results, error) {
	if ctx == nil {
		ctx = context.Background() // nil = never cancelled
	}
	opt := gatherOpts(opts)
	s := newFunctional(cfg, scaled, ps)

	phases := newPhaseTracker(marks, cfg.Cores)
	snapNow := func() phaseSnap { return phaseSnap{cnt: s.cnt} }
	seen := make([]uint64, cfg.Cores)

	// Frame-at-a-time consumption: each core's records arrive in columnar
	// frames from a pipelined source (decode overlaps simulation), and the
	// round-robin interleave reads straight from the frame columns —
	// identical record order to the old per-record Next loop, without its
	// per-record interface dispatch.
	srcs := make([]trace.FrameSource, cfg.Cores)
	frames := make([]*trace.Frame, cfg.Cores)
	pos := make([]int, cfg.Cores)
	framesRead := make([]uint64, cfg.Cores)
	for i := range srcs {
		if extSrcs != nil {
			srcs[i] = extSrcs[i]
		} else {
			srcs[i] = trace.AutoFrames(gens[i])
		}
	}
	defer func() {
		for _, src := range srcs {
			src.Close()
		}
	}()

	ls := &funcLoopState{
		seen: seen, framesRead: framesRead, pos: pos,
		frames: frames, srcs: srcs, phases: phases,
	}
	var start uint64
	if opt.active() {
		if err := ckptSupported(src, s.pref, ps); err != nil {
			return Results{}, err
		}
	}
	if opt.resume != nil {
		d, dec, err := openResume(opt.resume)
		if err != nil {
			return Results{}, err
		}
		if err := checkDesc(d, "functional", src, cfg, ps); err != nil {
			return Results{}, err
		}
		if err := s.restoreFunc(dec, ls); err != nil {
			return Results{}, err
		}
		start = ls.i
	}
	nextCkpt := ^uint64(0)
	if opt.every > 0 {
		nextCkpt = nextBoundary(start, opt.every)
	}
	ckptN := 0

	warmTotal := cfg.WarmRecords * uint64(cfg.Cores)
	total := warmTotal + cfg.MeasureRecords*uint64(cfg.Cores)
loop:
	for i := start; i < total; i++ {
		if i%pollEvery == 0 && i > 0 {
			if progress != nil {
				progress(i, total)
			}
			if ctx.Err() != nil {
				return Results{}, ctx.Err()
			}
			if opt.stopCh != nil {
				select {
				case <-opt.stopCh:
					ls.i = i
					d := descFor("functional", src, cfg, ps, scaled, i)
					if err := writeCheckpoint(&opt, d, func(enc *ckpt.Encoder) error { return s.snapshotFunc(enc, ls) }); err != nil {
						return Results{}, err
					}
					return Results{}, ErrCheckpointed
				default:
				}
			}
		}
		if i == nextCkpt {
			// Record boundary: the previous record is fully processed,
			// the warm-window snapshot for this index has not run yet —
			// the resumed loop re-enters exactly here.
			ls.i = i
			d := descFor("functional", src, cfg, ps, scaled, i)
			if err := writeCheckpoint(&opt, d, func(enc *ckpt.Encoder) error { return s.snapshotFunc(enc, ls) }); err != nil {
				return Results{}, err
			}
			ckptN++
			nextCkpt = nextBoundary(i, opt.every)
			if opt.haltAfter > 0 && ckptN >= opt.haltAfter {
				return Results{}, ErrCheckpointed
			}
		}
		if i == warmTotal {
			s.cntSnap = s.cnt
			s.engSnap = engineCounts(s.pref.temporal.Stats())
		}
		core := int(i % uint64(cfg.Cores))
		f := frames[core]
		k := pos[core]
		if f == nil || k == f.Len() {
			if f = srcs[core].NextFrame(); f == nil {
				break loop
			}
			frames[core] = f
			framesRead[core]++
			k = 0
		}
		pos[core] = k + 1
		s.now = i
		s.step(core, f.PC[k], f.Block[k])
		if phases != nil {
			seen[core]++
			phases.note(core, seen[core], snapNow)
		}
	}
	if eng := s.pref.engine; eng != nil {
		eng.Flush()
	}
	// A source that ran dry because its producer failed (truncated tape,
	// dropped stream, dead generator) must fail the run, not pass off the
	// records it did deliver as a complete result.
	for _, src := range srcs {
		if err := src.Err(); err != nil {
			return Results{}, fmt.Errorf("sim: trace source failed mid-run: %w", err)
		}
	}

	w := s.cnt.sub(s.cntSnap)
	r := Results{
		Workload:       scaled.Name,
		Variant:        ps.Kind.String(),
		Records:        w.Loads,
		L1Hits:         w.L1Hits,
		L2Hits:         w.L2Hits,
		CoveredFull:    w.PBFull,
		CoveredPartial: w.PBPartial,
		Uncovered:      w.L2DemandMisses,
		Engine:         engineCounts(s.pref.temporal.Stats()).Sub(s.engSnap),
	}
	for _, src := range srcs {
		r.Frames.Add(src.Stats())
	}
	if eng := s.pref.engine; eng != nil {
		r.StreamLens = &eng.Stats().StreamLens
	}
	if phases != nil {
		r.Phases = phases.windows(snapNow())
	}
	return r, nil
}

// step processes one reference through the hierarchy.
func (s *functional) step(core int, pc uint32, blk uint64) {
	s.cnt.Loads++
	if s.l1[core].Access(blk, false) {
		s.cnt.L1Hits++
		return
	}
	// Stride trains on the L1-miss stream before the prefetch-buffer
	// probe, exactly as in the timed driver, so the base system behaves
	// identically across prefetcher variants.
	s.strid.Observe(pc, blk, s.strideIssue)
	// L2 hit takes precedence over a prefetch-buffer copy, exactly as in
	// the timed driver: covered misses are blocks that would have missed.
	if s.l2.Access(blk, false) {
		s.cnt.L2Hits++
		s.l1[core].Fill(blk, false)
		return
	}
	res := s.pref.temporal.Probe(core, blk, nil, 0, 0, 0)
	if res.State == prefetch.ProbeReady {
		s.cnt.PBFull++
		s.pref.temporal.Record(core, blk, true)
		s.fill(core, blk)
		return
	}
	// Synchronous fetches make ProbeInFlight impossible here; treat it
	// as covered if it ever appears.
	if res.State == prefetch.ProbeInFlight {
		s.cnt.PBPartial++
		s.pref.temporal.Record(core, blk, true)
		s.fill(core, blk)
		return
	}
	s.cnt.L2DemandMisses++
	s.pref.temporal.TriggerMiss(core, blk)
	s.pref.temporal.Record(core, blk, false)
	s.fill(core, blk)
}

// metaStep replays one reference through the L2 and the temporal
// backend's history/index only — no L1s, no stride, no prefetch-buffer
// streaming. The sampling scheduler warms the deep prefix of a window
// with it: off-chip meta-data (history buffer, index table) accumulates
// over the whole run and never saturates, so it needs the full prefix,
// while the caches, stride table and prefetch buffer reach steady state
// within a short recent horizon that runs at full fidelity (step).
func (s *functional) metaStep(core int, blk uint64) {
	if s.l2.Access(blk, false) {
		return
	}
	if s.warmRec != nil {
		s.warmRec(core, blk)
	} else {
		s.pref.temporal.Record(core, blk, false)
	}
	s.l2.Fill(blk, blockDirty(blk, s.dirtyThresh))
}

// stridePrefetch fills a stride candidate directly (zero-latency memory).
func (s *functional) stridePrefetch(cand uint64) {
	if !s.l2.Probe(cand) {
		s.cnt.StrideIssued++
		s.l2.Fill(cand, false)
	}
}

func (s *functional) fill(core int, blk uint64) {
	s.l2.Fill(blk, blockDirty(blk, s.dirtyThresh))
	s.l1[core].Fill(blk, false)
}
