package sim

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"stms/internal/core"
	"stms/internal/trace"
)

// ckptConfig is a deliberately small configuration so the full
// workload × scenario × cadence sweep stays fast. Warm and measure
// windows are sized so checkpoints land on both sides of the warm
// boundary.
func ckptConfig() Config {
	cfg := DefaultConfig()
	cfg.Scale = 0.0625
	cfg.WarmRecords = 4_000
	cfg.MeasureRecords = 6_000
	return cfg
}

// ckptCadences exercises three checkpoint spacings: 1003 lands inside
// decoded frames (FrameCap is 1024) and inside every scenario phase,
// 4096 aligns with the poll stride, and 15000 crosses the warm
// boundary with only a couple of checkpoints per run.
var ckptCadences = []uint64{1003, 4096, 15000}

// runFn abstracts one run shape so the round-trip property can be
// checked uniformly across drivers and sources.
type runFn func(opts ...RunOption) (Results, error)

// checkRoundTrip proves the two checkpoint invariants for one run:
// (1) a checkpointing run is bit-identical to a non-checkpointing run
// (snapshots are pure observation), and (2) resuming from any captured
// checkpoint — a simulated kill at that exact boundary — reproduces
// the uninterrupted run bit-for-bit. Checkpoints resume through
// ResumeFromBytes, so the descriptor round-trip is covered too.
func checkRoundTrip(t *testing.T, run runFn, every uint64) {
	t.Helper()
	base, err := run()
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	var ckpts [][]byte
	observed, err := run(WithCheckpointFunc(every, func(data []byte) error {
		cp := make([]byte, len(data))
		copy(cp, data)
		ckpts = append(ckpts, cp)
		return nil
	}))
	if err != nil {
		t.Fatalf("checkpointing run: %v", err)
	}
	if !reflect.DeepEqual(base, observed) {
		t.Fatalf("checkpointing perturbed the run:\nbase %+v\nckpt %+v", base, observed)
	}
	if len(ckpts) == 0 {
		t.Fatalf("no checkpoints captured at cadence %d", every)
	}
	for _, k := range sampleIndices(len(ckpts)) {
		resumed, err := ResumeFromBytes(context.Background(), ckpts[k], nil)
		if err != nil {
			t.Fatalf("resume from checkpoint %d/%d: %v", k, len(ckpts), err)
		}
		if !reflect.DeepEqual(base, resumed) {
			t.Fatalf("resume from checkpoint %d/%d diverged:\nbase    %+v\nresumed %+v", k, len(ckpts), base, resumed)
		}
	}
}

// sampleIndices picks the first, middle, and last checkpoint so every
// run validates an early kill, a mid-run kill, and a late kill without
// re-running the simulation dozens of times.
func sampleIndices(n int) []int {
	switch n {
	case 1:
		return []int{0}
	case 2:
		return []int{0, 1}
	}
	return []int{0, n / 2, n - 1}
}

// ckptVariants cycles the checkpointable prefetcher variants across
// the sweep so each is exercised against several workloads without
// multiplying the matrix.
var ckptVariants = []PrefSpec{{Kind: STMS}, {Kind: Ideal}, {Kind: None}}

func TestCheckpointResumeWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload sweep")
	}
	cfg := ckptConfig()
	for i, spec := range trace.Specs() {
		spec := spec
		ps := ckptVariants[i%len(ckptVariants)]
		every := ckptCadences[i%len(ckptCadences)]
		t.Run(spec.Name+"/timed", func(t *testing.T) {
			t.Parallel()
			checkRoundTrip(t, func(opts ...RunOption) (Results, error) {
				return RunTimedCtx(context.Background(), cfg, spec, ps, nil, opts...)
			}, every)
		})
		t.Run(spec.Name+"/functional", func(t *testing.T) {
			t.Parallel()
			checkRoundTrip(t, func(opts ...RunOption) (Results, error) {
				return RunFunctionalCtx(context.Background(), cfg, spec, ps, nil, opts...)
			}, ckptCadences[(i+1)%len(ckptCadences)])
		})
	}
}

func TestCheckpointResumeScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("full scenario sweep")
	}
	cfg := ckptConfig()
	for i, scn := range trace.Scenarios() {
		scn := scn
		ps := ckptVariants[i%len(ckptVariants)]
		every := ckptCadences[i%len(ckptCadences)]
		if i%2 == 0 {
			t.Run(scn.Name+"/timed", func(t *testing.T) {
				t.Parallel()
				checkRoundTrip(t, func(opts ...RunOption) (Results, error) {
					return RunTimedScenarioCtx(context.Background(), cfg, scn, ps, nil, opts...)
				}, every)
			})
		} else {
			t.Run(scn.Name+"/functional", func(t *testing.T) {
				t.Parallel()
				checkRoundTrip(t, func(opts ...RunOption) (Results, error) {
					return RunFunctionalScenarioCtx(context.Background(), cfg, scn, ps, nil, opts...)
				}, every)
			})
		}
	}
}

// TestCheckpointAllCadences pins one workload through every cadence on
// both drivers, including a cadence that lands inside a decoded frame
// and one inside a scenario phase.
func TestCheckpointAllCadences(t *testing.T) {
	cfg := ckptConfig()
	sp := spec(t, "oltp-db2")
	for _, every := range ckptCadences {
		every := every
		t.Run("timed", func(t *testing.T) {
			checkRoundTrip(t, func(opts ...RunOption) (Results, error) {
				return RunTimedCtx(context.Background(), cfg, sp, PrefSpec{Kind: STMS}, nil, opts...)
			}, every)
		})
		t.Run("functional", func(t *testing.T) {
			checkRoundTrip(t, func(opts ...RunOption) (Results, error) {
				return RunFunctionalCtx(context.Background(), cfg, sp, PrefSpec{Kind: STMS}, nil, opts...)
			}, every)
		})
	}
}

// TestCheckpointHaltAndFileResume simulates the scripted kill: run with
// a file destination and a halt after the second checkpoint, then
// resume from the file and compare against the uninterrupted run.
func TestCheckpointHaltAndFileResume(t *testing.T) {
	cfg := ckptConfig()
	sp := spec(t, "web-apache")
	ps := PrefSpec{Kind: STMS}
	base, err := RunTimedCtx(context.Background(), cfg, sp, ps, nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.stmsckpt")
	_, err = RunTimedCtx(context.Background(), cfg, sp, ps, nil,
		WithCheckpointEvery(5000, path), WithCheckpointHalt(2))
	if !errors.Is(err, ErrCheckpointed) {
		t.Fatalf("want ErrCheckpointed, got %v", err)
	}
	resumed, err := ResumeFrom(path)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !reflect.DeepEqual(base, resumed) {
		t.Fatalf("killed-and-resumed run diverged:\nbase    %+v\nresumed %+v", base, resumed)
	}
}

// TestCheckpointSignal covers the graceful-shutdown path: a closed
// signal channel flushes a final checkpoint and halts; the checkpoint
// resumes to the uninterrupted result.
func TestCheckpointSignal(t *testing.T) {
	cfg := ckptConfig()
	sp := spec(t, "dss-qry17")
	ps := PrefSpec{Kind: Ideal}
	base, err := RunTimedCtx(context.Background(), cfg, sp, ps, nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sig.stmsckpt")
	ch := make(chan struct{})
	close(ch)
	_, err = RunTimedCtx(context.Background(), cfg, sp, ps, nil,
		WithCheckpointEvery(0, path), WithCheckpointSignal(ch))
	if !errors.Is(err, ErrCheckpointed) {
		t.Fatalf("want ErrCheckpointed, got %v", err)
	}
	resumed, err := ResumeFrom(path)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !reflect.DeepEqual(base, resumed) {
		t.Fatalf("signal-checkpointed run diverged")
	}
}

// TestCheckpointTapeResume proves tape-backed runs checkpoint and
// resume through ResumeTape with the caller-supplied tape.
func TestCheckpointTapeResume(t *testing.T) {
	cfg := ckptConfig()
	sp := spec(t, "oltp-oracle")
	ps := PrefSpec{Kind: STMS}
	total := cfg.WarmRecords + cfg.MeasureRecords
	tape := trace.NewTape(sp.Scaled(cfg.Scale), cfg.Seed, cfg.Cores, total)
	base, err := RunTimedTapeCtx(context.Background(), cfg, tape, ps, nil)
	if err != nil {
		t.Fatal(err)
	}
	var ckpts [][]byte
	observed, err := RunTimedTapeCtx(context.Background(), cfg, tape, ps, nil,
		WithCheckpointFunc(7000, func(data []byte) error {
			cp := make([]byte, len(data))
			copy(cp, data)
			ckpts = append(ckpts, cp)
			return nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, observed) {
		t.Fatalf("checkpointing perturbed the tape run")
	}
	if len(ckpts) == 0 {
		t.Fatal("no checkpoints captured")
	}
	for _, k := range sampleIndices(len(ckpts)) {
		resumed, err := ResumeTape(context.Background(), ckpts[k], tape, nil)
		if err != nil {
			t.Fatalf("resume %d: %v", k, err)
		}
		if !reflect.DeepEqual(base, resumed) {
			t.Fatalf("tape resume %d diverged", k)
		}
	}
	// A tape-backed checkpoint refuses the tapeless resume path.
	if _, err := ResumeFromBytes(context.Background(), ckpts[0], nil); err == nil {
		t.Fatal("ResumeFromBytes accepted a tape-backed checkpoint")
	}
}

// TestCheckpointRefusals: unsupported configurations error out up
// front instead of producing unrestorable checkpoints.
func TestCheckpointRefusals(t *testing.T) {
	cfg := ckptConfig()
	sp := spec(t, "web-apache")
	sink := WithCheckpointFunc(1000, func([]byte) error { return nil })

	if _, err := RunTimedCtx(context.Background(), cfg, sp, PrefSpec{Kind: TSE}, nil, sink); err == nil {
		t.Fatal("TSE run accepted a checkpoint request")
	}
	scfg := core.DefaultConfig(cfg.Cores).Scaled(cfg.Scale)
	scfg.Org = core.OrgDirectMapped
	if _, err := RunTimedCtx(context.Background(), cfg, sp, PrefSpec{Kind: STMS, STMSCfg: &scfg}, nil, sink); err == nil {
		t.Fatal("alternative index organization accepted a checkpoint request")
	}
	gens := make([]trace.Generator, cfg.Cores)
	lib := trace.NewLibrary(sp.Scaled(cfg.Scale), cfg.Seed)
	for i := range gens {
		gens[i] = &trace.Limit{Gen: trace.NewGenerator(lib, i, cfg.Seed), N: 1000}
	}
	if _, err := RunTimedTraceCtx(context.Background(), cfg, "ext", gens, 0, PrefSpec{Kind: None}, nil, sink); err == nil {
		t.Fatal("external-generator run accepted a checkpoint request")
	}
}

// TestCheckpointCorruptFile: a torn or bit-flipped checkpoint is
// rejected at open, never partially restored.
func TestCheckpointCorruptFile(t *testing.T) {
	cfg := ckptConfig()
	sp := spec(t, "web-zeus")
	path := filepath.Join(t.TempDir(), "c.stmsckpt")
	_, err := RunFunctionalCtx(context.Background(), cfg, sp, PrefSpec{Kind: None}, nil,
		WithCheckpointEvery(5000, path), WithCheckpointHalt(1))
	if !errors.Is(err, ErrCheckpointed) {
		t.Fatalf("want ErrCheckpointed, got %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	flip := make([]byte, len(data))
	copy(flip, data)
	flip[len(flip)/2] ^= 0x40
	if _, err := ResumeFromBytes(context.Background(), flip, nil); err == nil {
		t.Fatal("bit-flipped checkpoint restored")
	}
	if _, err := ResumeFromBytes(context.Background(), data[:len(data)-3], nil); err == nil {
		t.Fatal("truncated checkpoint restored")
	}
	if _, err := ResumeFromBytes(context.Background(), data, nil); err != nil {
		t.Fatalf("pristine checkpoint failed to restore: %v", err)
	}
}

// TestCheckpointDescMismatch: resuming a checkpoint into a run with a
// different configuration or variant fails fast.
func TestCheckpointDescMismatch(t *testing.T) {
	cfg := ckptConfig()
	sp := spec(t, "web-apache")
	var data []byte
	_, err := RunFunctionalCtx(context.Background(), cfg, sp, PrefSpec{Kind: None}, nil,
		WithCheckpointFunc(5000, func(d []byte) error {
			data = append([]byte(nil), d...)
			return nil
		}), WithCheckpointHalt(1))
	if !errors.Is(err, ErrCheckpointed) {
		t.Fatalf("want ErrCheckpointed, got %v", err)
	}
	if _, err := RunFunctionalCtx(context.Background(), cfg, sp, PrefSpec{Kind: Ideal}, nil, WithResume(data)); err == nil {
		t.Fatal("variant mismatch accepted")
	}
	other := cfg
	other.Seed++
	if _, err := RunFunctionalCtx(context.Background(), other, sp, PrefSpec{Kind: None}, nil, WithResume(data)); err == nil {
		t.Fatal("config mismatch accepted")
	}
	if _, err := RunTimedCtx(context.Background(), cfg, sp, PrefSpec{Kind: None}, nil, WithResume(data)); err == nil {
		t.Fatal("driver mismatch accepted")
	}
	d, err := PeekCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	if d.Mode != "functional" || d.Source != "spec" || d.Spec == nil || d.Spec.Name != "web-apache" {
		t.Fatalf("descriptor mismatch: %+v", d)
	}
}
