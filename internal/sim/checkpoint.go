package sim

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"stms/internal/ckpt"
	"stms/internal/core"
	"stms/internal/event"
	"stms/internal/trace"
)

// Crash-resumable simulation. A checkpoint is a ckpt.Seal'd container
// holding a JSON run descriptor (enough to rebuild the system and its
// trace sources from scratch) followed by binary Snapshot sections for
// every stateful component. Snapshots are pure observation: a run that
// writes checkpoints produces bit-identical Results to one that does
// not, and a run resumed from any checkpoint produces bit-identical
// Results to the uninterrupted run.
//
// Checkpointable configurations are the None/Ideal/STMS variants (the
// default bucket-LRU index organization) over library-generated specs,
// scenarios, or tapes. The comparator variants (TSE/EBCP/ULMT/Markov),
// the §5.4 index-organization ablations, and externally supplied
// generators keep closure-based in-flight state that cannot be
// serialized; requesting checkpoints there fails fast with an error.

// ErrCheckpointed is returned by a run that was asked to halt after
// writing a checkpoint (WithCheckpointHalt, WithCheckpointSignal). The
// checkpoint on disk resumes the run exactly where it stopped.
var ErrCheckpointed = errors.New("sim: run halted after writing a checkpoint")

// RunOption configures checkpointing on a Run*Ctx entry point.
type RunOption func(*runOpts)

type runOpts struct {
	every       uint64
	path        string
	sink        func(data []byte) error
	haltAfter   int
	stopCh      <-chan struct{}
	resume      []byte
	warm        *ckpt.Snapshot
	windowClock bool
}

func (o *runOpts) active() bool {
	return o.every > 0 || o.stopCh != nil
}

// WithCheckpointEvery writes a checkpoint to path (atomically: temp +
// fsync + rename) every `records` trace records, measured across all
// cores. records == 0 sets only the destination path, for runs that
// checkpoint on signal alone.
func WithCheckpointEvery(records uint64, path string) RunOption {
	return func(o *runOpts) { o.every, o.path = records, path }
}

// WithCheckpointFunc delivers each checkpoint (the sealed container
// bytes, identical to the file contents) to fn instead of — or in
// addition to — a file. A non-nil error from fn aborts the run.
func WithCheckpointFunc(records uint64, fn func(data []byte) error) RunOption {
	return func(o *runOpts) {
		if records > 0 {
			o.every = records
		}
		o.sink = fn
	}
}

// WithCheckpointHalt stops the run with ErrCheckpointed after the n-th
// checkpoint it writes. This is the deterministic stand-in for a crash:
// the run dies at an exact checkpoint boundary, so a resumed run can be
// compared bit-for-bit against an uninterrupted one.
func WithCheckpointHalt(n int) RunOption {
	return func(o *runOpts) { o.haltAfter = n }
}

// WithCheckpointSignal requests a final checkpoint, then halt with
// ErrCheckpointed, as soon as ch is closed (or sent to). Used for
// graceful worker shutdown: the in-progress job flushes a resumable
// checkpoint before the process exits.
func WithCheckpointSignal(ch <-chan struct{}) RunOption {
	return func(o *runOpts) { o.stopCh = ch }
}

// WithResume restores the run from a sealed checkpoint (the bytes of a
// checkpoint file) before the first event fires. The configuration,
// prefetcher spec and trace identity passed to the entry point must
// match the ones recorded in the checkpoint.
func WithResume(data []byte) RunOption {
	return func(o *runOpts) { o.resume = data }
}

// withWarmState injects functionally warmed state (a "sim.warm"
// snapshot of caches, stride tables and temporal prefetcher) into a
// freshly constructed timed system before its cores start. Internal to
// the sampling scheduler; ignored on resumed runs, whose checkpoint
// restores the full state.
func withWarmState(snap *ckpt.Snapshot) RunOption {
	return func(o *runOpts) { o.warm = snap }
}

// withWindowClock ends the measured interval at the last instruction
// commit (max core FinishTime) instead of the memory-channel drain. A
// full run pays the end-of-run drain tail once, so it belongs in the
// exact numbers; a K-window sampled run would pay it K times, which
// inflates cycles-per-instruction in every window. Internal to the
// sampling scheduler.
func withWindowClock() RunOption {
	return func(o *runOpts) { o.windowClock = true }
}

func gatherOpts(opts []RunOption) runOpts {
	var o runOpts
	for _, f := range opts {
		f(&o)
	}
	return o
}

// ckptSrc records how a run's trace sources were built, so a resumed
// run can rebuild the identical sources.
type ckptSrc struct {
	kind string // "spec" | "scenario" | "tape" | "external"
	spec trace.Spec
	scn  trace.Scenario
}

// CheckpointDesc is the JSON run descriptor at the head of every
// checkpoint: everything needed to reconstruct the run it belongs to.
// Spec and Scenario are the original (unscaled) inputs; tape-backed
// checkpoints echo the tape's spec for identity validation and need
// the tape itself handed to ResumeTape.
type CheckpointDesc struct {
	Mode     string          `json:"mode"`   // "timed" | "functional"
	Source   string          `json:"source"` // "spec" | "scenario" | "tape"
	Cfg      Config          `json:"cfg"`
	PS       PrefSpec        `json:"ps"`
	Spec     *trace.Spec     `json:"spec,omitempty"`
	Scenario *trace.Scenario `json:"scenario,omitempty"`
	Records  uint64          `json:"records"` // records processed at capture
}

// PeekCheckpoint opens a sealed checkpoint and returns its descriptor
// without restoring anything.
func PeekCheckpoint(data []byte) (CheckpointDesc, error) {
	payload, err := ckpt.Open(data)
	if err != nil {
		return CheckpointDesc{}, err
	}
	d, _, err := readDesc(payload)
	return d, err
}

func readDesc(payload []byte) (CheckpointDesc, *ckpt.Decoder, error) {
	dec := ckpt.NewDecoder(payload)
	dec.Section("sim.checkpoint")
	j := dec.Bytes()
	if err := dec.Err(); err != nil {
		return CheckpointDesc{}, nil, err
	}
	var d CheckpointDesc
	if err := json.Unmarshal(j, &d); err != nil {
		return CheckpointDesc{}, nil, fmt.Errorf("sim: corrupt checkpoint descriptor: %w", err)
	}
	return d, dec, nil
}

// writeCheckpoint assembles descriptor + component snapshots and
// delivers the sealed container to the configured destinations.
func writeCheckpoint(o *runOpts, d CheckpointDesc, snap func(*ckpt.Encoder) error) error {
	if o.path == "" && o.sink == nil {
		return fmt.Errorf("sim: checkpoint requested with no destination (path or func)")
	}
	j, err := json.Marshal(d)
	if err != nil {
		return fmt.Errorf("sim: encoding checkpoint descriptor: %w", err)
	}
	enc := ckpt.NewEncoder()
	enc.Section("sim.checkpoint")
	enc.Bytes(j)
	if err := snap(enc); err != nil {
		return err
	}
	if o.path != "" {
		if err := ckpt.WriteFile(o.path, enc.Payload()); err != nil {
			return err
		}
	}
	if o.sink != nil {
		if err := o.sink(ckpt.Seal(enc.Payload())); err != nil {
			return err
		}
	}
	return nil
}

// openResume validates and unpacks a WithResume container.
func openResume(data []byte) (CheckpointDesc, *ckpt.Decoder, error) {
	payload, err := ckpt.Open(data)
	if err != nil {
		return CheckpointDesc{}, nil, err
	}
	return readDesc(payload)
}

// ResumeFrom reads a checkpoint file and continues the run it
// describes to completion. Tape-backed checkpoints need ResumeTape.
func ResumeFrom(path string, opts ...RunOption) (Results, error) {
	return ResumeFromCtx(nil, path, nil, opts...)
}

// ResumeFromCtx is ResumeFrom with cancellation and progress.
func ResumeFromCtx(ctx context.Context, path string, progress Progress, opts ...RunOption) (Results, error) {
	data, err := ckpt.ReadFile(path)
	if err != nil {
		return Results{}, err
	}
	return ResumeFromBytes(ctx, ckpt.Seal(data), progress, opts...)
}

// ResumeFromBytes continues a run from sealed checkpoint bytes. The
// run is rebuilt entirely from the embedded descriptor; extra options
// (e.g. a new checkpoint cadence) apply to the continued run.
func ResumeFromBytes(ctx context.Context, data []byte, progress Progress, opts ...RunOption) (Results, error) {
	d, _, err := openResume(data)
	if err != nil {
		return Results{}, err
	}
	opts = append(opts, WithResume(data))
	switch {
	case d.Source == "tape":
		return Results{}, fmt.Errorf("sim: checkpoint is tape-backed; resume it with ResumeTape and the tape")
	case d.Mode == "timed" && d.Source == "spec" && d.Spec != nil:
		return RunTimedCtx(ctx, d.Cfg, *d.Spec, d.PS, progress, opts...)
	case d.Mode == "timed" && d.Source == "scenario" && d.Scenario != nil:
		return RunTimedScenarioCtx(ctx, d.Cfg, *d.Scenario, d.PS, progress, opts...)
	case d.Mode == "functional" && d.Source == "spec" && d.Spec != nil:
		return RunFunctionalCtx(ctx, d.Cfg, *d.Spec, d.PS, progress, opts...)
	case d.Mode == "functional" && d.Source == "scenario" && d.Scenario != nil:
		return RunFunctionalScenarioCtx(ctx, d.Cfg, *d.Scenario, d.PS, progress, opts...)
	}
	return Results{}, fmt.Errorf("sim: checkpoint descriptor names unknown run shape (mode %q, source %q)", d.Mode, d.Source)
}

// ResumeTape continues a tape-backed run from sealed checkpoint bytes;
// the caller supplies the tape (re-fetched by key in the distributed
// lab, rebuilt locally otherwise).
func ResumeTape(ctx context.Context, data []byte, tape *trace.Tape, progress Progress, opts ...RunOption) (Results, error) {
	d, _, err := openResume(data)
	if err != nil {
		return Results{}, err
	}
	if d.Source != "tape" {
		return Results{}, fmt.Errorf("sim: checkpoint is %s-backed, not tape-backed", d.Source)
	}
	opts = append(opts, WithResume(data))
	switch d.Mode {
	case "timed":
		return RunTimedTapeCtx(ctx, d.Cfg, tape, d.PS, progress, opts...)
	case "functional":
		return RunFunctionalTapeCtx(ctx, d.Cfg, tape, d.PS, progress, opts...)
	}
	return Results{}, fmt.Errorf("sim: checkpoint descriptor names unknown mode %q", d.Mode)
}

// CheckpointablePref reports whether runs of the given prefetcher
// variant can checkpoint: the None/Ideal/STMS kinds over the default
// bucket-LRU index organization. The distributed lab consults this
// before requesting checkpoint options for a job, so non-serializable
// variants run plain instead of failing fast. Sources must still be
// re-derivable (externally supplied generators are rejected at run
// time regardless of variant).
func CheckpointablePref(ps PrefSpec) bool {
	switch ps.Kind {
	case None, Ideal, STMS:
	default:
		return false
	}
	if ps.STMSCfg != nil && ps.STMSCfg.Org != core.OrgBucketLRU {
		return false
	}
	return true
}

// ckptSupported gates checkpoint requests on configurations whose full
// state is serializable.
func ckptSupported(src ckptSrc, pref built, ps PrefSpec) error {
	switch ps.Kind {
	case None, Ideal, STMS:
	default:
		return fmt.Errorf("sim: the %s variant is not checkpointable", ps.Kind)
	}
	if pref.stms != nil {
		if err := pref.stms.Checkpointable(); err != nil {
			return err
		}
	}
	if src.kind == "external" {
		return fmt.Errorf("sim: runs over externally supplied generators are not checkpointable (sources cannot be re-derived)")
	}
	return nil
}

func descFor(mode string, src ckptSrc, cfg Config, ps PrefSpec, tapeSpec trace.Spec, records uint64) CheckpointDesc {
	d := CheckpointDesc{Mode: mode, Source: src.kind, Cfg: cfg, PS: ps, Records: records}
	switch src.kind {
	case "spec":
		sp := src.spec
		d.Spec = &sp
	case "scenario":
		sc := src.scn
		d.Scenario = &sc
	case "tape":
		sp := tapeSpec
		d.Spec = &sp
	}
	return d
}

// checkDesc validates a resume descriptor against the run being
// restored into.
func checkDesc(d CheckpointDesc, mode string, src ckptSrc, cfg Config, ps PrefSpec) error {
	if d.Mode != mode {
		return fmt.Errorf("sim: checkpoint is a %s-mode run, resuming %s", d.Mode, mode)
	}
	if d.Source != src.kind {
		return fmt.Errorf("sim: checkpoint source %q does not match run source %q", d.Source, src.kind)
	}
	if d.Cfg != cfg {
		return fmt.Errorf("sim: checkpoint configuration does not match the run's")
	}
	if d.PS.Kind != ps.Kind {
		return fmt.Errorf("sim: checkpoint is a %s run, resuming %s", d.PS.Kind, ps.Kind)
	}
	return nil
}

// --- shared binary helpers -------------------------------------------------

func putCounters(enc *ckpt.Encoder, c *counters) {
	enc.U64(c.Loads)
	enc.U64(c.L1Hits)
	enc.U64(c.PBFull)
	enc.U64(c.PBPartial)
	enc.U64(c.L2Hits)
	enc.U64(c.L2DemandMisses)
	enc.U64(c.StrideIssued)
	enc.U64(c.MSHRRetries)
}

func getCounters(dec *ckpt.Decoder, c *counters) {
	c.Loads = dec.U64()
	c.L1Hits = dec.U64()
	c.PBFull = dec.U64()
	c.PBPartial = dec.U64()
	c.L2Hits = dec.U64()
	c.L2DemandMisses = dec.U64()
	c.StrideIssued = dec.U64()
	c.MSHRRetries = dec.U64()
}

func putEngineCounts(enc *ckpt.Encoder, c *EngineCounts) {
	enc.U64(c.Lookups)
	enc.U64(c.LookupHits)
	enc.U64(c.Adopted)
	enc.U64(c.Abandoned)
	enc.U64(c.Resumed)
	enc.U64(c.DepthStops)
	enc.U64(c.Exhausted)
	enc.U64(c.Issued)
	enc.U64(c.Filtered)
	enc.U64(c.FullHits)
	enc.U64(c.PartialHits)
	enc.U64(c.Evicted)
}

func getEngineCounts(dec *ckpt.Decoder, c *EngineCounts) {
	c.Lookups = dec.U64()
	c.LookupHits = dec.U64()
	c.Adopted = dec.U64()
	c.Abandoned = dec.U64()
	c.Resumed = dec.U64()
	c.DepthStops = dec.U64()
	c.Exhausted = dec.U64()
	c.Issued = dec.U64()
	c.Filtered = dec.U64()
	c.FullHits = dec.U64()
	c.PartialHits = dec.U64()
	c.Evicted = dec.U64()
}

func snapshotPhases(enc *ckpt.Encoder, p *phaseTracker) {
	enc.Section("sim.phases")
	enc.Bool(p != nil)
	if p == nil {
		return
	}
	enc.Int(len(p.nextMark))
	for _, v := range p.nextMark {
		enc.Int(v)
	}
	enc.Int(len(p.crossed))
	for _, v := range p.crossed {
		enc.Int(v)
	}
	enc.Int(len(p.snaps))
	for i := range p.snaps {
		putCounters(enc, &p.snaps[i].cnt)
		enc.U64(p.snaps[i].cycles)
		enc.U64(p.snaps[i].instrs)
	}
}

func restorePhases(dec *ckpt.Decoder, p *phaseTracker) error {
	dec.Section("sim.phases")
	had := dec.Bool()
	if err := dec.Err(); err != nil {
		return err
	}
	if had != (p != nil) {
		return fmt.Errorf("sim: checkpoint phase structure does not match the run's")
	}
	if p == nil {
		return nil
	}
	nm := dec.Int()
	if err := dec.Err(); err != nil {
		return err
	}
	if nm != len(p.nextMark) {
		return fmt.Errorf("sim: checkpoint has %d phase cores, want %d", nm, len(p.nextMark))
	}
	for i := range p.nextMark {
		p.nextMark[i] = dec.Int()
	}
	nc := dec.Int()
	if err := dec.Err(); err != nil {
		return err
	}
	if nc != len(p.crossed) {
		return fmt.Errorf("sim: checkpoint has %d phase boundaries, want %d", nc, len(p.crossed))
	}
	for i := range p.crossed {
		p.crossed[i] = dec.Int()
	}
	ns := dec.Int()
	if err := dec.Err(); err != nil {
		return err
	}
	p.snaps = make([]phaseSnap, ns)
	for i := range p.snaps {
		getCounters(dec, &p.snaps[i].cnt)
		p.snaps[i].cycles = dec.U64()
		p.snaps[i].instrs = dec.U64()
	}
	return dec.Err()
}

func snapshotPref(enc *ckpt.Encoder, b *built, idOf func(event.Handler) (uint32, bool)) error {
	enc.Section("sim.pref")
	if b.engine != nil {
		if err := b.engine.Snapshot(enc, idOf); err != nil {
			return err
		}
	}
	if b.stms != nil {
		if err := b.stms.Snapshot(enc); err != nil {
			return err
		}
	}
	if b.ideal != nil {
		if err := b.ideal.Snapshot(enc); err != nil {
			return err
		}
	}
	return nil
}

func restorePref(dec *ckpt.Decoder, b *built, handlerOf func(uint32) (event.Handler, bool)) error {
	dec.Section("sim.pref")
	if b.engine != nil {
		if err := b.engine.Restore(dec, handlerOf); err != nil {
			return err
		}
	}
	if b.stms != nil {
		if err := b.stms.Restore(dec, b.engine.LookupDoneFor, b.engine.ReadDoneFor); err != nil {
			return err
		}
	}
	if b.ideal != nil {
		if err := b.ideal.Restore(dec); err != nil {
			return err
		}
	}
	return nil
}

// --- handler registry ------------------------------------------------------

// handlers returns the timed system's event.Handler registry in fixed
// construction order; snapshot and restore both derive ids from it, so
// the mapping is stable across processes by construction.
func (s *timed) handlers() []event.Handler {
	hs := []event.Handler{s, s.mc}
	if s.pref.engine != nil {
		hs = append(hs, s.pref.engine)
	}
	if s.pref.stms != nil {
		hs = append(hs, s.pref.stms)
	}
	for _, c := range s.cores {
		hs = append(hs, c)
	}
	return hs
}

func idOfFunc(hs []event.Handler) func(event.Handler) (uint32, bool) {
	return func(h event.Handler) (uint32, bool) {
		for i, x := range hs {
			if x == h {
				return uint32(i), true
			}
		}
		return 0, false
	}
}

func handlerOfFunc(hs []event.Handler) func(uint32) (event.Handler, bool) {
	return func(id uint32) (event.Handler, bool) {
		if int(id) >= len(hs) {
			return nil, false
		}
		return hs[id], true
	}
}

// --- timed driver ----------------------------------------------------------

// snapshot serializes the entire timed system between events.
func (s *timed) snapshot(enc *ckpt.Encoder) error {
	idOf := idOfFunc(s.handlers())
	enc.Section("sim.timed")
	enc.U64(s.totalRecs)
	enc.U64(s.allRecs)
	enc.U64s(s.recordsSeen)
	enc.Int(s.crossedWarm)
	enc.Bool(s.measuring)
	enc.U64(s.measureT0)
	putCounters(enc, &s.cnt)
	putCounters(enc, &s.cntSnap)
	putEngineCounts(enc, &s.engSnap)
	enc.U64s(s.committedSnap)
	for i := range s.mlp {
		m := &s.mlp[i]
		enc.U64(m.outstanding)
		enc.U64(m.lastT)
		enc.U64(m.busy)
		enc.U64(m.weighted)
	}
	snapshotPhases(enc, s.phases)
	if err := s.eng.Snapshot(enc, idOf); err != nil {
		return err
	}
	if err := s.mc.Snapshot(enc, idOf); err != nil {
		return err
	}
	s.l2.Snapshot(enc)
	s.l2mshr.Snapshot(enc)
	for _, c := range s.l1 {
		c.Snapshot(enc)
	}
	s.strid.Snapshot(enc)
	if err := snapshotPref(enc, &s.pref, idOf); err != nil {
		return err
	}
	for _, c := range s.cores {
		c.Snapshot(enc)
	}
	return nil
}

// restore rebuilds the freshly constructed timed system (cores not yet
// started) from a checkpoint decoder positioned after the descriptor.
func (s *timed) restore(dec *ckpt.Decoder) error {
	handlerOf := handlerOfFunc(s.handlers())
	dec.Section("sim.timed")
	totalRecs := dec.U64()
	s.allRecs = dec.U64()
	seen := dec.U64s()
	if err := dec.Err(); err != nil {
		return err
	}
	if totalRecs != s.totalRecs {
		return fmt.Errorf("sim: checkpoint run length %d does not match %d", totalRecs, s.totalRecs)
	}
	if len(seen) != len(s.recordsSeen) {
		return fmt.Errorf("sim: checkpoint has %d cores, want %d", len(seen), len(s.recordsSeen))
	}
	s.recordsSeen = seen
	s.crossedWarm = dec.Int()
	s.measuring = dec.Bool()
	s.measureT0 = dec.U64()
	getCounters(dec, &s.cnt)
	getCounters(dec, &s.cntSnap)
	getEngineCounts(dec, &s.engSnap)
	snap := dec.U64s()
	if err := dec.Err(); err != nil {
		return err
	}
	if len(snap) != len(s.committedSnap) {
		return fmt.Errorf("sim: corrupt checkpoint (committed snapshot)")
	}
	s.committedSnap = snap
	for i := range s.mlp {
		m := &s.mlp[i]
		m.outstanding = dec.U64()
		m.lastT = dec.U64()
		m.busy = dec.U64()
		m.weighted = dec.U64()
	}
	if err := restorePhases(dec, s.phases); err != nil {
		return err
	}
	if err := s.eng.Restore(dec, handlerOf); err != nil {
		return err
	}
	if err := s.mc.Restore(dec, handlerOf); err != nil {
		return err
	}
	if err := s.l2.Restore(dec); err != nil {
		return err
	}
	if err := s.l2mshr.Restore(dec); err != nil {
		return err
	}
	for _, c := range s.l1 {
		if err := c.Restore(dec); err != nil {
			return err
		}
	}
	if err := s.strid.Restore(dec); err != nil {
		return err
	}
	if err := restorePref(dec, &s.pref, handlerOf); err != nil {
		return err
	}
	for _, c := range s.cores {
		if err := c.Restore(dec); err != nil {
			return err
		}
	}
	return dec.Err()
}

// writeCkpt emits one checkpoint of the running timed system.
func (s *timed) writeCkpt() error {
	d := descFor("timed", s.src, s.cfg, s.ps, s.spec, s.allRecs)
	return writeCheckpoint(&s.opt, d, s.snapshot)
}

// --- functional driver -----------------------------------------------------

// funcLoopState bundles the run loop's local cursor state so the
// snapshot/restore pair can see it alongside the functional struct.
type funcLoopState struct {
	i          uint64 // loop index = records processed
	seen       []uint64
	framesRead []uint64
	pos        []int
	frames     []*trace.Frame
	srcs       []trace.FrameSource
	phases     *phaseTracker
}

// snapshotFunc serializes the functional system at a record boundary.
// The functional driver is fully synchronous (no events, no pending
// operations), so the prefetch buffer can never hold waiters — the
// handler registry is empty.
func (s *functional) snapshotFunc(enc *ckpt.Encoder, ls *funcLoopState) error {
	noIDs := func(event.Handler) (uint32, bool) { return 0, false }
	enc.Section("sim.functional")
	enc.U64(ls.i)
	putCounters(enc, &s.cnt)
	putCounters(enc, &s.cntSnap)
	putEngineCounts(enc, &s.engSnap)
	enc.U64s(ls.seen)
	enc.U64s(ls.framesRead)
	for core := range ls.pos {
		enc.Int(ls.pos[core])
		enc.Bool(ls.frames[core] != nil)
	}
	snapshotPhases(enc, ls.phases)
	s.l2.Snapshot(enc)
	for _, c := range s.l1 {
		c.Snapshot(enc)
	}
	s.strid.Snapshot(enc)
	return snapshotPref(enc, &s.pref, noIDs)
}

// restoreFunc rebuilds the functional system and the loop cursors from
// a checkpoint decoder positioned after the descriptor, fast-forwarding
// each core's frame source to the checkpointed frame.
func (s *functional) restoreFunc(dec *ckpt.Decoder, ls *funcLoopState) error {
	noHandlers := func(uint32) (event.Handler, bool) { return nil, false }
	dec.Section("sim.functional")
	ls.i = dec.U64()
	getCounters(dec, &s.cnt)
	getCounters(dec, &s.cntSnap)
	getEngineCounts(dec, &s.engSnap)
	seen := dec.U64s()
	framesRead := dec.U64s()
	if err := dec.Err(); err != nil {
		return err
	}
	if len(seen) != len(ls.seen) || len(framesRead) != len(ls.framesRead) {
		return fmt.Errorf("sim: checkpoint core count does not match the run's")
	}
	copy(ls.seen, seen)
	copy(ls.framesRead, framesRead)
	for core := range ls.pos {
		ls.pos[core] = dec.Int()
		hadFrame := dec.Bool()
		if err := dec.Err(); err != nil {
			return err
		}
		for k := uint64(0); k < ls.framesRead[core]; k++ {
			f := ls.srcs[core].NextFrame()
			if f == nil {
				return fmt.Errorf("sim: core %d frame source ran dry after %d frames, checkpoint needs %d", core, k, ls.framesRead[core])
			}
			ls.frames[core] = f
		}
		if !hadFrame {
			ls.frames[core] = nil
		}
		if f := ls.frames[core]; f != nil && ls.pos[core] > f.Len() {
			return fmt.Errorf("sim: core %d frame position %d exceeds frame length %d", core, ls.pos[core], f.Len())
		}
	}
	if err := restorePhases(dec, ls.phases); err != nil {
		return err
	}
	if err := s.l2.Restore(dec); err != nil {
		return err
	}
	for _, c := range s.l1 {
		if err := c.Restore(dec); err != nil {
			return err
		}
	}
	if err := s.strid.Restore(dec); err != nil {
		return err
	}
	return restorePref(dec, &s.pref, noHandlers)
}

// nextBoundary returns the first checkpoint boundary strictly above n.
func nextBoundary(n, every uint64) uint64 {
	return (n/every + 1) * every
}
