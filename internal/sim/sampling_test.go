package sim

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"stms/internal/stats"
	"stms/internal/trace"
)

// samplingConfig is the small configuration the sampling properties run
// at: large enough that every window gets a meaningful measurement
// stratum, small enough that 100-seed sweeps stay in seconds.
func samplingConfig() Config {
	cfg := DefaultConfig()
	cfg.Scale = 0.0625
	cfg.WarmRecords = 2_000
	cfg.MeasureRecords = 8_000
	return cfg
}

func stmsSpec() PrefSpec { return PrefSpec{Kind: STMS, SampleProb: 1} }

// TestSampledExactWhenKIsOne proves the K ≤ 1 delegation contract:
// the sampled entry points return bit-identical Results to the exact
// serial drivers for every trace substrate — plain workloads, all
// stress scenarios, and a materialized tape — with the intervals
// degenerating to points at the exact values.
func TestSampledExactWhenKIsOne(t *testing.T) {
	cfg := samplingConfig()
	ps := stmsSpec()
	ctx := context.Background()

	for _, name := range []string{"web-apache", "sci-ocean"} {
		sp, err := trace.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := RunTimedCtx(ctx, cfg, sp, ps, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{0, 1} {
			sr, err := RunSampledCtx(ctx, cfg, sp, ps, Sampling{Windows: k}, nil)
			if err != nil {
				t.Fatalf("%s K=%d: %v", name, k, err)
			}
			checkExactSampled(t, name, sr, exact)
		}
	}
	for _, scn := range trace.Scenarios() {
		exact, err := RunTimedScenarioCtx(ctx, cfg, scn, ps, nil)
		if err != nil {
			t.Fatal(err)
		}
		sr, err := RunSampledScenarioCtx(ctx, cfg, scn, ps, Sampling{Windows: 1}, nil)
		if err != nil {
			t.Fatalf("scenario %s: %v", scn.Name, err)
		}
		checkExactSampled(t, "scenario "+scn.Name, sr, exact)
	}
	sp, err := trace.ByName("oltp-db2")
	if err != nil {
		t.Fatal(err)
	}
	tape := trace.NewTape(sp.Scaled(cfg.Scale), cfg.Seed, cfg.Cores, cfg.WarmRecords+cfg.MeasureRecords)
	exact, err := RunTimedTapeCtx(ctx, cfg, tape, ps, nil)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := RunSampledTapeCtx(ctx, cfg, tape, ps, Sampling{Windows: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkExactSampled(t, "tape oltp-tpcc", sr, exact)
}

func checkExactSampled(t *testing.T, what string, sr SampledResults, exact Results) {
	t.Helper()
	if !sr.Exact {
		t.Errorf("%s: Exact flag not set on a K<=1 run", what)
	}
	if !reflect.DeepEqual(sr.Results, exact) {
		t.Errorf("%s: K=1 sampled Results differ from the exact serial run:\nsampled %+v\nexact   %+v", what, sr.Results, exact)
	}
	for metric, ci := range map[string]stats.CI{
		"ipc": sr.CI.IPC, "mlp": sr.CI.MLP,
		"dram": sr.CI.DRAMUtil, "cov": sr.CI.Coverage,
	} {
		if ci.Lo != ci.Mean || ci.Hi != ci.Mean || ci.N != 1 {
			t.Errorf("%s: %s interval %+v is not a point estimate", what, metric, ci)
		}
	}
}

// TestWindowPlanPartition is the geometry property: for any warm span,
// measurement span and window count, the plan tiles [W, W+M) exactly —
// no gap, no overlap, every record measured once — and each window's
// warming stages partition its full trace prefix [0, start).
func TestWindowPlanPartition(t *testing.T) {
	cases := []struct {
		warm, measure uint64
		k             int
	}{
		{2000, 8000, 1}, {2000, 8000, 2}, {2000, 8000, 3}, {2000, 8000, 7},
		{2000, 8000, 8}, {0, 5000, 4}, {1, 9999, 13}, {100000, 17, 5},
		{4000, 96000, 16}, {2000, 10, 64}, // K > M clamps to M windows
	}
	for _, tc := range cases {
		cfg := samplingConfig()
		cfg.WarmRecords = tc.warm
		cfg.MeasureRecords = tc.measure
		for _, smp := range []Sampling{
			{Windows: tc.k},
			{Windows: tc.k, Warmup: 500, FuncWarmup: 1500},
			{Windows: tc.k, Warmup: 3 * tc.warm},
		} {
			norm := smp.normalized(cfg)
			plan := windowPlan(cfg, norm)
			if want := min(uint64(norm.Windows), tc.measure); uint64(len(plan)) != want {
				t.Fatalf("K=%d W=%d M=%d: plan has %d windows, want %d", tc.k, tc.warm, tc.measure, len(plan), want)
			}
			next := tc.warm
			var total uint64
			for w, g := range plan {
				if g.start != next {
					t.Fatalf("K=%d W=%d M=%d window %d starts at %d, want %d (gap or overlap)", tc.k, tc.warm, tc.measure, w, g.start, next)
				}
				if g.length == 0 {
					t.Fatalf("K=%d W=%d M=%d window %d measures nothing", tc.k, tc.warm, tc.measure, w)
				}
				if g.warm+g.funcWarm+g.metaWarm != g.start {
					t.Fatalf("K=%d W=%d M=%d window %d warming stages %d+%d+%d do not cover prefix %d", tc.k, tc.warm, tc.measure, w, g.warm, g.funcWarm, g.metaWarm, g.start)
				}
				next = g.start + g.length
				total += g.length
			}
			if total != tc.measure {
				t.Fatalf("K=%d W=%d M=%d: windows measure %d records, want %d", tc.k, tc.warm, tc.measure, total, tc.measure)
			}
		}
	}
}

// TestSampledWindowsTileRecordStream is the runtime half of the
// partition property: thanks to the warm-boundary barrier every window
// measures exactly its planned records — length × cores, no skew loss —
// so the stitched run counts every measured record exactly once,
// across window counts and seeds.
func TestSampledWindowsTileRecordStream(t *testing.T) {
	sp, err := trace.ByName("web-apache")
	if err != nil {
		t.Fatal(err)
	}
	ps := stmsSpec()
	for _, k := range []int{2, 3, 8} {
		for _, seed := range []uint64{0, 7} {
			cfg := samplingConfig()
			cfg.Seed = seed
			sr, err := RunSampledCtx(context.Background(), cfg, sp, ps, Sampling{Windows: k}, nil)
			if err != nil {
				t.Fatalf("K=%d seed=%d: %v", k, seed, err)
			}
			var sum uint64
			for _, w := range sr.Windows {
				if want := w.Len * uint64(cfg.Cores); w.Results.Records != want {
					t.Errorf("K=%d seed=%d window %d measured %d records, want %d", k, seed, w.Index, w.Results.Records, want)
				}
				sum += w.Results.Records
			}
			if want := cfg.MeasureRecords * uint64(cfg.Cores); sum != want || sr.Results.Records != want {
				t.Errorf("K=%d seed=%d: windows sum to %d records, stitched %d, want %d", k, seed, sum, sr.Results.Records, want)
			}
		}
	}
}

// TestSampledDeterministic proves the estimate is independent of
// goroutine scheduling: two runs of the same sampled configuration are
// deeply equal, windows included.
func TestSampledDeterministic(t *testing.T) {
	sp, err := trace.ByName("sci-ocean")
	if err != nil {
		t.Fatal(err)
	}
	cfg := samplingConfig()
	smp := Sampling{Windows: 4}
	a, err := RunSampledCtx(context.Background(), cfg, sp, stmsSpec(), smp, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSampledCtx(context.Background(), cfg, sp, stmsSpec(), smp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("sampled estimate depends on scheduling:\nfirst  %+v\nsecond %+v", a, b)
	}
}

// TestSampledCIContainment is the statistical acceptance test: across
// 100 deterministic seeds of a long stationary workload, each metric's
// 95% interval must contain the exact serial value in at least 93
// trials (the nominal miss rate is 5; 93 leaves slack for the
// warm-state approximation without letting a systematic bias pass).
func TestSampledCIContainment(t *testing.T) {
	if testing.Short() {
		t.Skip("100-seed statistical sweep")
	}
	sp, err := trace.ByName("sci-ocean")
	if err != nil {
		t.Fatal(err)
	}
	ps := stmsSpec()
	const trials = 100
	type metric struct {
		name  string
		exact func(Results) float64
		ci    func(SampledCI) stats.CI
	}
	metrics := []metric{
		{"ipc", func(r Results) float64 { return r.IPC }, func(c SampledCI) stats.CI { return c.IPC }},
		{"mlp", func(r Results) float64 { return r.MLP }, func(c SampledCI) stats.CI { return c.MLP }},
		{"dram_util", func(r Results) float64 { return r.DRAMUtil }, func(c SampledCI) stats.CI { return c.DRAMUtil }},
		{"coverage", func(r Results) float64 { return r.Coverage() }, func(c SampledCI) stats.CI { return c.Coverage }},
	}
	contained := make([]int, len(metrics))
	for seed := 0; seed < trials; seed++ {
		cfg := samplingConfig()
		cfg.Seed = uint64(seed)
		exact, err := RunTimedCtx(context.Background(), cfg, sp, ps, nil)
		if err != nil {
			t.Fatal(err)
		}
		sr, err := RunSampledCtx(context.Background(), cfg, sp, ps, Sampling{Windows: 4}, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i, m := range metrics {
			ci := m.ci(sr.CI)
			if v := m.exact(exact); v >= ci.Lo && v <= ci.Hi {
				contained[i]++
			}
		}
	}
	for i, m := range metrics {
		t.Logf("%s: exact value inside the 95%% CI in %d/%d trials", m.name, contained[i], trials)
		if contained[i] < 93 {
			t.Errorf("%s: interval contained the exact value in only %d/%d trials, want >= 93", m.name, contained[i], trials)
		}
	}
}

// TestSampledCIWidthShrinks checks the error bars behave like error
// bars: quadrupling the window count shrinks each interval (the
// standard error falls ~1/sqrt(K) and the t quantile tightens with the
// extra degrees of freedom).
func TestSampledCIWidthShrinks(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-K sweep")
	}
	sp, err := trace.ByName("sci-ocean")
	if err != nil {
		t.Fatal(err)
	}
	width := func(ci stats.CI) float64 { return ci.Hi - ci.Lo }
	for _, seed := range []uint64{1, 2, 3} {
		cfg := samplingConfig()
		cfg.Seed = seed
		narrow, err := RunSampledCtx(context.Background(), cfg, sp, stmsSpec(), Sampling{Windows: 16}, nil)
		if err != nil {
			t.Fatal(err)
		}
		wide, err := RunSampledCtx(context.Background(), cfg, sp, stmsSpec(), Sampling{Windows: 4}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if w16, w4 := width(narrow.CI.IPC), width(wide.CI.IPC); w16 >= w4 {
			t.Errorf("seed %d: IPC interval width %.4g at K=16 not below %.4g at K=4", seed, w16, w4)
		}
	}
}

// TestSampledManyWindows runs K = 2 × GOMAXPROCS windows — more
// goroutines than processors — as the concurrency stressor the race
// detector sweeps in CI.
func TestSampledManyWindows(t *testing.T) {
	sp, err := trace.ByName("web-apache")
	if err != nil {
		t.Fatal(err)
	}
	k := 2 * runtime.GOMAXPROCS(0)
	if k < 4 {
		k = 4
	}
	if k > 32 {
		k = 32
	}
	cfg := samplingConfig()
	sr, err := RunSampledCtx(context.Background(), cfg, sp, stmsSpec(), Sampling{Windows: k}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Windows) != k {
		t.Fatalf("got %d windows, want %d", len(sr.Windows), k)
	}
	if want := cfg.MeasureRecords * uint64(cfg.Cores); sr.Results.Records != want {
		t.Fatalf("stitched %d records, want %d", sr.Results.Records, want)
	}
}

// TestSampledCancelLeavesNoGoroutines cancels a sampled run mid-flight
// and verifies every window goroutine (and the pipelined trace decoders
// under them) winds down.
func TestSampledCancelLeavesNoGoroutines(t *testing.T) {
	sp, err := trace.ByName("web-apache")
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	var fired bool
	progress := func(done, total uint64) {
		if done > 0 && !fired {
			fired = true
			cancel()
		}
	}
	cfg := samplingConfig()
	cfg.MeasureRecords = 64_000 // long enough that cancellation lands mid-run
	_, err = RunSampledCtx(ctx, cfg, sp, stmsSpec(), Sampling{Windows: 4}, progress)
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked after cancellation: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSampledKillResume kills a sampled run mid-window through the
// checkpoint halt path and resumes it from the combined container: the
// resumed estimate must be bit-identical to the uninterrupted run. Both
// halt depths are exercised — after the first checkpoint (every window
// still mid-flight or unstarted) and after several (a mix of finished,
// partial and unstarted windows).
func TestSampledKillResume(t *testing.T) {
	sp, err := trace.ByName("web-apache")
	if err != nil {
		t.Fatal(err)
	}
	cfg := samplingConfig()
	ps := stmsSpec()
	smp := Sampling{Windows: 4}
	base, err := RunSampledCtx(context.Background(), cfg, sp, ps, smp, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, halt := range []int{1, 5} {
		var last []byte
		_, err := RunSampledCtx(context.Background(), cfg, sp, ps, smp, nil,
			WithCheckpointFunc(1_500, func(data []byte) error {
				last = append(last[:0], data...)
				return nil
			}),
			WithCheckpointHalt(halt))
		if !errors.Is(err, ErrCheckpointed) {
			t.Fatalf("halt=%d: run returned %v, want ErrCheckpointed", halt, err)
		}
		if last == nil {
			t.Fatalf("halt=%d: no checkpoint captured", halt)
		}
		smpGot, desc, done, err := PeekSampled(last)
		if err != nil {
			t.Fatalf("halt=%d: PeekSampled: %v", halt, err)
		}
		if desc.Mode != "sampled" || smpGot != smp.normalized(cfg) || done >= smp.Windows {
			t.Fatalf("halt=%d: container says mode=%q smp=%+v done=%d", halt, desc.Mode, smpGot, done)
		}
		resumed, err := ResumeSampledCtx(context.Background(), last, nil)
		if err != nil {
			t.Fatalf("halt=%d: resume: %v", halt, err)
		}
		if !reflect.DeepEqual(resumed, base) {
			t.Fatalf("halt=%d: resumed estimate differs from the uninterrupted run:\nresumed %+v\nbase    %+v", halt, resumed, base)
		}
	}
}

// TestSampledTapeAndScenario covers the other two substrates at K > 1:
// the sampled estimate over a tape is identical to the sampled estimate
// over the spec that recorded it (same identity, same windows), and a
// scenario-backed sampled run is deterministic and tiles its records.
func TestSampledTapeAndScenario(t *testing.T) {
	cfg := samplingConfig()
	ps := stmsSpec()
	smp := Sampling{Windows: 3}
	sp, err := trace.ByName("sci-ocean")
	if err != nil {
		t.Fatal(err)
	}
	fromSpec, err := RunSampledCtx(context.Background(), cfg, sp, ps, smp, nil)
	if err != nil {
		t.Fatal(err)
	}
	tape := trace.NewTape(sp.Scaled(cfg.Scale), cfg.Seed, cfg.Cores, cfg.WarmRecords+cfg.MeasureRecords)
	fromTape, err := RunSampledTapeCtx(context.Background(), cfg, tape, ps, smp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromSpec, fromTape) {
		t.Errorf("sampled estimate differs across substrates:\nspec %+v\ntape %+v", fromSpec, fromTape)
	}

	scn, err := trace.ScenarioByName("phase-flip")
	if err != nil {
		t.Fatal(err)
	}
	sr, err := RunSampledScenarioCtx(context.Background(), cfg, scn, ps, smp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := cfg.MeasureRecords * uint64(cfg.Cores); sr.Results.Records != want {
		t.Errorf("scenario sampled run measured %d records, want %d", sr.Results.Records, want)
	}
}

// TestSampledRejects covers the error surface: bad confidence levels,
// non-snapshotable prefetcher variants, and tape-backed containers
// resumed without a tape.
func TestSampledRejects(t *testing.T) {
	cfg := samplingConfig()
	sp, err := trace.ByName("web-apache")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSampledCtx(context.Background(), cfg, sp, stmsSpec(), Sampling{Windows: 2, Confidence: 1.5}, nil); err == nil {
		t.Error("confidence 1.5 accepted")
	}
	if _, err := RunSampledCtx(context.Background(), cfg, sp, PrefSpec{Kind: TSE}, Sampling{Windows: 2}, nil); err == nil {
		t.Error("non-snapshotable variant accepted for sampling")
	}
}

// TestSampledSpeedup is the wall-clock acceptance criterion: on a host
// with at least 4 processors, a sampled run at K = GOMAXPROCS must beat
// the exact serial run by at least 2x while every reported metric's
// exact value stays inside the 95% interval. The geometry matches the
// headline experiment (scripts/check_experiments.sh).
func TestSampledSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock benchmark")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("speedup needs >= 4 CPUs, have %d", runtime.NumCPU())
	}
	sp, err := trace.ByName("web-apache")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Scale = 0.0625
	cfg.WarmRecords = 4_000
	cfg.MeasureRecords = 96_000
	ps := stmsSpec()
	k := runtime.GOMAXPROCS(0)
	if k > 16 {
		k = 16
	}
	t0 := time.Now()
	exact, err := RunTimedCtx(context.Background(), cfg, sp, ps, nil)
	if err != nil {
		t.Fatal(err)
	}
	dExact := time.Since(t0)
	t0 = time.Now()
	sr, err := RunSampledCtx(context.Background(), cfg, sp, ps, Sampling{Windows: k}, nil)
	if err != nil {
		t.Fatal(err)
	}
	dSampled := time.Since(t0)
	speedup := dExact.Seconds() / dSampled.Seconds()
	t.Logf("K=%d: exact %v, sampled %v, speedup %.2fx; IPC %.4f in [%.4f, %.4f] (exact %.4f)",
		k, dExact.Round(time.Millisecond), dSampled.Round(time.Millisecond), speedup,
		sr.CI.IPC.Mean, sr.CI.IPC.Lo, sr.CI.IPC.Hi, exact.IPC)
	for name, pair := range map[string][2]float64{
		"ipc":       {exact.IPC, 0},
		"mlp":       {exact.MLP, 1},
		"dram_util": {exact.DRAMUtil, 2},
		"coverage":  {exact.Coverage(), 3},
	} {
		cis := []stats.CI{sr.CI.IPC, sr.CI.MLP, sr.CI.DRAMUtil, sr.CI.Coverage}
		ci := cis[int(pair[1])]
		if pair[0] < ci.Lo || pair[0] > ci.Hi {
			t.Errorf("%s: exact %.5f outside the 95%% interval [%.5f, %.5f]", name, pair[0], ci.Lo, ci.Hi)
		}
	}
	if speedup < 2 {
		t.Errorf("sampled run only %.2fx faster than exact serial, want >= 2x", speedup)
	}
}

// sampleErrPct is the benchmark-facing error figure: the worst relative
// gap between the sampled estimate and the exact run across the four
// reported metrics, in percent (shared with cmd/stms-bench).
func sampleErrPct(exact Results, sr SampledResults) float64 {
	worst := 0.0
	for _, p := range [][2]float64{
		{exact.IPC, sr.Results.IPC},
		{exact.MLP, sr.Results.MLP},
		{exact.DRAMUtil, sr.Results.DRAMUtil},
		{exact.Coverage(), sr.Results.Coverage()},
	} {
		if p[0] == 0 {
			continue
		}
		if e := 100 * abs(p[1]-p[0]) / abs(p[0]); e > worst {
			worst = e
		}
	}
	return worst
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// TestSampledCloseToExact bounds the estimate error itself (not just
// the interval): at the default geometry the stitched estimate stays
// within a few percent of the exact run on every metric.
func TestSampledCloseToExact(t *testing.T) {
	sp, err := trace.ByName("sci-ocean")
	if err != nil {
		t.Fatal(err)
	}
	cfg := samplingConfig()
	ps := stmsSpec()
	exact, err := RunTimedCtx(context.Background(), cfg, sp, ps, nil)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := RunSampledCtx(context.Background(), cfg, sp, ps, Sampling{Windows: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if e := sampleErrPct(exact, sr); e > 5 {
		t.Errorf("worst metric error %.2f%% vs exact, want <= 5%%", e)
	} else {
		t.Logf("worst metric error %.2f%% vs exact", e)
	}
}
