package sim

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"stms/internal/trace"
)

// deadProducerSource builds a FrameSource over a flat trace file whose
// header promises more records than the file holds — the shape a run
// sees when its producer dies mid-stream.
func deadProducerSource(t *testing.T, cfg Config, scaled trace.Spec) trace.FrameSource {
	t.Helper()
	total := cfg.WarmRecords + cfg.MeasureRecords
	lib := trace.NewLibrary(scaled, cfg.Seed)
	recs := trace.Capture(trace.NewGenerator(lib, 0, cfg.Seed), int(total))
	var buf bytes.Buffer
	if err := trace.WriteAll(&buf, recs); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data = data[:len(data)-len(data)/3] // the producer dies ~2/3 through
	rd, err := trace.NewFileReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return trace.PipelinedFrames(rd)
}

// TestSourceDeathIsAnError pins the contract that a FrameSource whose
// producer fails mid-run surfaces that failure from the driver — a
// truncated trace must never pass for a short-but-clean result.
func TestSourceDeathIsAnError(t *testing.T) {
	cfg := testConfig()
	cfg.Cores = 1
	scaled := spec(t, "web-apache").Scaled(cfg.Scale)
	run := func() SourceRun {
		return SourceRun{
			Spec:    scaled,
			Sources: []trace.FrameSource{deadProducerSource(t, cfg, scaled)},
			PerCore: cfg.WarmRecords + cfg.MeasureRecords,
		}
	}
	t.Run("timed", func(t *testing.T) {
		_, err := RunTimedSourcesCtx(context.Background(), cfg, run(), PrefSpec{Kind: None}, nil)
		if err == nil || !strings.Contains(err.Error(), "trace source failed mid-run") {
			t.Fatalf("timed driver swallowed a dead producer: err=%v", err)
		}
	})
	t.Run("functional", func(t *testing.T) {
		_, err := RunFunctionalSourcesCtx(context.Background(), cfg, run(), PrefSpec{Kind: None}, nil)
		if err == nil || !strings.Contains(err.Error(), "trace source failed mid-run") {
			t.Fatalf("functional driver swallowed a dead producer: err=%v", err)
		}
	})
}
