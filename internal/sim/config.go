// Package sim wires the substrate into the paper's evaluation platform: a
// four-core CMP with private L1s, a shared L2, a bandwidth- and
// priority-modelled DRAM, a baseline stride prefetcher, and one of the
// temporal prefetcher variants. It provides two drivers over identical
// functional state:
//
//   - Timed: the discrete-event simulation used wherever latency,
//     bandwidth or speedup matters (Figs. 1 right, 4, 7, 8, 9, Table 2);
//   - Functional: a fast zero-latency driver used for idealized meta-data
//     capacity sweeps (Figs. 1 left, 5, 6), where "idealized lookup" makes
//     timing irrelevant to coverage by definition.
package sim

import (
	"fmt"

	"stms/internal/cpu"
	"stms/internal/dram"
	"stms/internal/mem"
	"stms/internal/prefetch/stride"
)

// Config describes the system under test (Table 1 defaults).
type Config struct {
	Cores int

	L1Bytes int // per-core L1 data cache
	L1Assoc int
	L2Bytes int // shared L2
	L2Assoc int
	L2MSHRs int // total in-flight off-chip misses

	L1HitCycles uint64 // load-to-use on an L1 hit
	L2HitCycles uint64 // minimum L2 hit latency
	PBHitCycles uint64 // prefetch-buffer hit latency

	DRAM   dram.Config
	Core   cpu.Config
	Stride stride.Config

	// Scale shrinks caches (and, via helpers, workloads and meta-data)
	// so experiments run at tractable trace lengths while preserving the
	// paper's size relationships. 1 = full scale.
	Scale float64

	// Seed makes traces and sampling deterministic; the same seed yields
	// identical traces across prefetcher variants (matched-pair runs).
	Seed uint64

	// WarmRecords and MeasureRecords are per-core record counts for the
	// warm-up and measurement windows.
	WarmRecords    uint64
	MeasureRecords uint64
}

// DefaultConfig returns the Table 1 system at full scale.
func DefaultConfig() Config {
	return Config{
		Cores:          4,
		L1Bytes:        64 << 10,
		L1Assoc:        2,
		L2Bytes:        8 << 20,
		L2Assoc:        16,
		L2MSHRs:        64,
		L1HitCycles:    2,
		L2HitCycles:    20,
		PBHitCycles:    4,
		DRAM:           dram.DefaultConfig(),
		Core:           cpu.DefaultConfig(),
		Stride:         stride.DefaultConfig(),
		Scale:          1,
		Seed:           42,
		WarmRecords:    80_000,
		MeasureRecords: 120_000,
	}
}

// scaledBytes applies Scale to a capacity, rounding down to a power of two
// (cache set counts must stay powers of two) with a floor.
func scaledBytes(bytes int, scale float64, floor int) int {
	if scale <= 0 || scale == 1 {
		return bytes
	}
	want := float64(bytes) * scale
	n := floor
	for float64(n*2) <= want {
		n *= 2
	}
	return n
}

// L1 returns the scaled L1 capacity.
func (c Config) L1() int { return scaledBytes(c.L1Bytes, c.Scale, 4<<10) }

// L2 returns the scaled L2 capacity.
func (c Config) L2() int { return scaledBytes(c.L2Bytes, c.Scale, 64<<10) }

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Cores <= 0:
		return fmt.Errorf("sim: cores must be positive")
	case c.Cores >= 1<<16 || c.Core.ROB >= 1<<16-1:
		// The timed hot path packs (core, ROB token) into 16-bit fields
		// of one event payload word; both are orders of magnitude above
		// any modelled system.
		return fmt.Errorf("sim: cores and ROB must fit 16 bits (got %d cores, ROB %d)", c.Cores, c.Core.ROB)
	case c.L1Bytes < mem.BlockBytes || c.L2Bytes < mem.BlockBytes:
		return fmt.Errorf("sim: cache sizes must hold at least one block")
	case c.MeasureRecords == 0:
		return fmt.Errorf("sim: measurement window is empty")
	}
	return nil
}

// dirtyThreshold converts a dirty-fill fraction into a hash threshold so
// dirtiness is a deterministic property of the block address — identical
// across runs and variants regardless of event order.
func dirtyThreshold(frac float64) uint64 {
	if frac <= 0 {
		return 0
	}
	if frac >= 1 {
		return ^uint64(0)
	}
	return uint64(frac * float64(^uint64(0)))
}

// blockDirty decides whether a fill of blk is dirtied, deterministically.
func blockDirty(blk, threshold uint64) bool {
	h := blk * 0xd6e8feb86659fd93
	h ^= h >> 32
	return h*0x9e3779b97f4a7c15 < threshold
}
