package sim

// Progress receives periodic completion callbacks from a running
// simulation: done is the number of trace records processed so far
// (across all cores, warm-up included), total the number expected.
// Callbacks arrive from the goroutine driving the simulation, at most
// once per pollEvery records; total is 0 when the run length is not
// known up front (externally supplied generators).
type Progress func(done, total uint64)

// pollEvery is the record / event stride between context polls and
// progress callbacks: frequent enough that cancellation lands within a
// few microseconds of simulated work, rare enough to stay off profiles.
const pollEvery = 4096
