package sim

import (
	"fmt"

	"stms/internal/trace"
)

// Progress receives periodic completion callbacks from a running
// simulation: done is the number of trace records processed so far
// (across all cores, warm-up included), total the number expected.
// Callbacks arrive from the goroutine driving the simulation, at most
// once per pollEvery records; total is 0 when the run length is not
// known up front (externally supplied generators).
type Progress func(done, total uint64)

// pollEvery is the record / event stride between context polls and
// progress callbacks: frequent enough that cancellation lands within a
// few microseconds of simulated work, rare enough to stay off profiles.
const pollEvery = 4096

// SourceRun bundles externally produced per-core frame sources — a
// stream.Inlet's Sources, typically — with the trace identity their
// producer announced, so a remote stream simulates bit-identically to
// the same trace consumed locally. PerCore is the per-core record count
// the sources will deliver (0 when unknown); when set, the run budget
// must match it exactly — a budget shorter than the stream would leave
// trailing frames half-consumed and shift the frame accounting away
// from direct replay's.
type SourceRun struct {
	Spec    trace.Spec
	Marks   []trace.PhaseMark
	Sources []trace.FrameSource
	PerCore uint64
}

// validate checks the source bundle against the run configuration.
func (r SourceRun) validate(cfg Config) error {
	total := cfg.WarmRecords + cfg.MeasureRecords
	switch {
	case len(r.Sources) != cfg.Cores:
		return fmt.Errorf("sim: %d frame sources for %d cores", len(r.Sources), cfg.Cores)
	case r.PerCore > 0 && total != r.PerCore:
		return fmt.Errorf("sim: stream delivers %d records/core, run budget is %d (warm %d + measure %d); they must match exactly",
			r.PerCore, total, cfg.WarmRecords, cfg.MeasureRecords)
	}
	return nil
}
