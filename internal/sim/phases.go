package sim

import "stms/internal/trace"

// Per-phase stat windowing, shared by both drivers. A phaseTracker
// watches each core's record count against the scenario's phase-start
// offsets and snapshots the run counters when the last core crosses a
// boundary; adjacent snapshots difference into PhaseWindows. The timed
// cores skew slightly around a boundary (they consume records at
// different rates), so attribution there follows the snapshot instant —
// deterministic, and exact in aggregate: windows sum to the whole-run
// totals by construction.

// phaseSnap is the counter state captured at a phase boundary. cycles
// and instrs stay zero in the functional driver.
type phaseSnap struct {
	cnt    counters
	cycles uint64
	instrs uint64
}

// phaseTracker accumulates boundary snapshots for one run.
type phaseTracker struct {
	marks    []trace.PhaseMark
	bounds   []uint64 // bounds[b] = marks[b+1].Start (start of phase b+1)
	nextMark []int    // per core: next boundary to cross
	crossed  []int    // per boundary: cores past it
	cores    int
	snaps    []phaseSnap
}

// newPhaseTracker returns a tracker for the marks, or nil when the run
// has no phase structure (plain workloads, single-phase scenarios).
func newPhaseTracker(marks []trace.PhaseMark, cores int) *phaseTracker {
	if len(marks) == 0 {
		return nil
	}
	p := &phaseTracker{
		marks:    marks,
		bounds:   make([]uint64, len(marks)-1),
		nextMark: make([]int, cores),
		crossed:  make([]int, len(marks)-1),
		cores:    cores,
	}
	for b := range p.bounds {
		p.bounds[b] = marks[b+1].Start
	}
	return p
}

// note advances core's record count to seen; snap is invoked (at most
// once per boundary) when the last core crosses it.
func (p *phaseTracker) note(core int, seen uint64, snap func() phaseSnap) {
	for nb := p.nextMark[core]; nb < len(p.bounds) && seen >= p.bounds[nb]; nb++ {
		p.nextMark[core] = nb + 1
		if p.crossed[nb]++; p.crossed[nb] == p.cores {
			p.snaps = append(p.snaps, snap())
		}
	}
}

// windows differences the boundary snapshots (and the final run state)
// into per-phase windows. Boundaries the run never reached collapse to
// empty windows.
func (p *phaseTracker) windows(final phaseSnap) []PhaseWindow {
	wins := make([]PhaseWindow, len(p.marks))
	var prev phaseSnap
	for k, m := range p.marks {
		end := final
		if k < len(p.snaps) {
			end = p.snaps[k]
		}
		d := end.cnt.sub(prev.cnt)
		w := PhaseWindow{
			Name: m.Name, Start: m.Start,
			Records: d.Loads, L1Hits: d.L1Hits, L2Hits: d.L2Hits,
			CoveredFull: d.PBFull, CoveredPartial: d.PBPartial, Uncovered: d.L2DemandMisses,
			ElapsedCycles: end.cycles - prev.cycles,
			Instrs:        end.instrs - prev.instrs,
		}
		if w.ElapsedCycles > 0 {
			w.IPC = float64(w.Instrs) / float64(w.ElapsedCycles)
		}
		wins[k] = w
		prev = end
	}
	return wins
}
