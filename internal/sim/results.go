package sim

import (
	"stms/internal/dram"
	"stms/internal/mem"
	"stms/internal/prefetch"
	"stms/internal/stats"
	"stms/internal/trace"
)

// EngineCounts is the numeric snapshot of prefetch.EngineStats used for
// windowed deltas (the stream-length CDF is reported whole-run).
type EngineCounts struct {
	Lookups, LookupHits            uint64
	Adopted, Abandoned, Resumed    uint64
	DepthStops, Exhausted          uint64
	Issued, Filtered               uint64
	FullHits, PartialHits, Evicted uint64
}

func engineCounts(s *prefetch.EngineStats) EngineCounts {
	return EngineCounts{
		Lookups: s.Lookups, LookupHits: s.LookupHits,
		Adopted: s.Adopted, Abandoned: s.Abandoned, Resumed: s.Resumed,
		DepthStops: s.DepthStops, Exhausted: s.Exhausted,
		Issued: s.IssuedPrefetches, Filtered: s.FilteredOnChip,
		FullHits: s.FullHits, PartialHits: s.PartialHits,
		Evicted: s.EvictedUnused,
	}
}

// Sub returns the element-wise difference c - o.
func (c EngineCounts) Sub(o EngineCounts) EngineCounts {
	return EngineCounts{
		Lookups: c.Lookups - o.Lookups, LookupHits: c.LookupHits - o.LookupHits,
		Adopted: c.Adopted - o.Adopted, Abandoned: c.Abandoned - o.Abandoned,
		Resumed: c.Resumed - o.Resumed, DepthStops: c.DepthStops - o.DepthStops,
		Exhausted: c.Exhausted - o.Exhausted, Issued: c.Issued - o.Issued,
		Filtered: c.Filtered - o.Filtered, FullHits: c.FullHits - o.FullHits,
		PartialHits: c.PartialHits - o.PartialHits, Evicted: c.Evicted - o.Evicted,
	}
}

// Results reports one simulation run (measurement window only, except the
// stream-length CDF which covers the whole run).
type Results struct {
	Workload string
	Variant  string

	// Timed-mode metrics (zero in functional mode).
	ElapsedCycles uint64
	Instrs        uint64
	IPC           float64
	MLP           float64
	DRAMUtil      float64

	// Reference-stream accounting.
	Records uint64 // loads processed in the window
	L1Hits  uint64
	L2Hits  uint64

	// Coverage accounting (§5.2: fraction of L2 misses eliminated).
	CoveredFull    uint64
	CoveredPartial uint64
	Uncovered      uint64 // L2 demand read misses that reached DRAM

	// Traffic (timed mode), window delta.
	Traffic dram.Traffic

	Engine EngineCounts

	// Frames counts the whole-run frame-pipeline activity (frames and
	// records decoded into the drivers' columnar batches, warm-up
	// included). Frame boundaries are a pure function of the trace
	// identity, so the counts — like every other field — are identical
	// between live generation and tape replay.
	Frames trace.FrameStats

	// StreamLens is the whole-run stream-length distribution (Fig. 6
	// left); nil for variants without a stream engine.
	StreamLens *stats.CDF

	// Phases windows the run per scenario phase (whole-run accounting,
	// independent of the warm/measure split); nil for plain workloads
	// and single-phase scenarios. Windows are delimited by counter
	// snapshots, so their fields sum exactly to the whole-run totals.
	Phases []PhaseWindow
}

// PhaseWindow is the slice of a run's counters attributable to one
// scenario phase. A phase is "entered" at its per-core record offset
// and closed when every core has crossed the next phase's offset (the
// timed cores skew slightly; attribution at the boundary follows the
// snapshot, deterministically).
type PhaseWindow struct {
	Name  string
	Start uint64 // per-core record offset where the phase begins

	Records uint64 // loads observed in the window (all cores)
	L1Hits  uint64
	L2Hits  uint64

	CoveredFull    uint64
	CoveredPartial uint64
	Uncovered      uint64

	// Timed-mode metrics (zero in functional mode).
	ElapsedCycles uint64
	Instrs        uint64
	IPC           float64
}

// BaselineMisses returns the phase's would-be L2 demand misses without
// the temporal prefetcher (covered + uncovered), as Results does for
// the whole run.
func (w *PhaseWindow) BaselineMisses() uint64 {
	return w.CoveredFull + w.CoveredPartial + w.Uncovered
}

// Coverage returns the fraction of the phase's baseline misses the
// temporal prefetcher eliminated (fully or partially).
func (w *PhaseWindow) Coverage() float64 {
	return stats.Ratio(float64(w.CoveredFull+w.CoveredPartial), float64(w.BaselineMisses()))
}

// BaselineMisses returns what the L2 demand-miss count would have been
// without the temporal prefetcher (covered + uncovered — cache contents
// are unaffected by prefetch-buffer hits, so this is exact).
func (r *Results) BaselineMisses() uint64 {
	return r.CoveredFull + r.CoveredPartial + r.Uncovered
}

// Coverage returns the fraction of baseline misses eliminated (fully or
// partially).
func (r *Results) Coverage() float64 {
	return stats.Ratio(float64(r.CoveredFull+r.CoveredPartial), float64(r.BaselineMisses()))
}

// FullCoverage returns the fully-hidden fraction only.
func (r *Results) FullCoverage() float64 {
	return stats.Ratio(float64(r.CoveredFull), float64(r.BaselineMisses()))
}

// SpeedupOver returns the fractional performance improvement of r over a
// matched baseline run (same workload, same trace).
func (r *Results) SpeedupOver(base *Results) float64 {
	if base.IPC == 0 {
		return 0
	}
	return r.IPC/base.IPC - 1
}

// Overhead is Figure 7's traffic breakdown, each component normalized to
// useful data bytes.
type Overhead struct {
	Record    float64 // history appends + end-marks
	Update    float64 // index update reads + write-backs
	Lookup    float64 // index lookups + history stream reads
	Erroneous float64 // fetched-but-unused streamed blocks
}

// Total sums the components.
func (o Overhead) Total() float64 { return o.Record + o.Update + o.Lookup + o.Erroneous }

// OverheadTraffic computes the Figure 7 breakdown. Useful bytes are demand
// fetches, writebacks, and consumed streamed blocks (data the program
// needed, however it arrived); stride traffic belongs to the base system
// and is excluded from both sides.
func (r *Results) OverheadTraffic() Overhead {
	t := &r.Traffic
	used := r.CoveredFull + r.CoveredPartial
	streamed := t.Accesses[dram.StreamData]
	erroneous := uint64(0)
	if streamed > used {
		erroneous = streamed - used
	}
	useful := float64(t.Bytes(dram.Demand) + t.Bytes(dram.Writeback) + used*mem.BlockBytes)
	return Overhead{
		Record:    stats.Ratio(float64(t.Bytes(dram.HistoryAppend)+t.Bytes(dram.EndMarkWrite)), useful),
		Update:    stats.Ratio(float64(t.Bytes(dram.IndexUpdateRd)+t.Bytes(dram.IndexUpdateWr)), useful),
		Lookup:    stats.Ratio(float64(t.Bytes(dram.IndexLookup)+t.Bytes(dram.HistoryRead)), useful),
		Erroneous: stats.Ratio(float64(erroneous*mem.BlockBytes), useful),
	}
}

// OverheadPerBaselineRead is Figure 1 (right)'s metric: overhead memory
// accesses (meta-data plus erroneous prefetches) per baseline demand read.
func (r *Results) OverheadPerBaselineRead() (lookup, update, erroneous float64) {
	t := &r.Traffic
	base := float64(r.BaselineMisses())
	used := r.CoveredFull + r.CoveredPartial
	streamed := t.Accesses[dram.StreamData]
	errAcc := uint64(0)
	if streamed > used {
		errAcc = streamed - used
	}
	lookup = stats.Ratio(float64(t.Accesses[dram.IndexLookup]+t.Accesses[dram.HistoryRead]), base)
	update = stats.Ratio(float64(t.Accesses[dram.IndexUpdateRd]+t.Accesses[dram.IndexUpdateWr]+
		t.Accesses[dram.HistoryAppend]+t.Accesses[dram.EndMarkWrite]), base)
	erroneous = stats.Ratio(float64(errAcc), base)
	return lookup, update, erroneous
}
