package sim

import (
	"reflect"
	"testing"

	"stms/internal/trace"
)

// scenarioTestConfig returns a small, fast configuration for scenario
// runs. warm = 0 makes the measurement fallback report whole-run
// numbers, so Results totals are directly comparable to the whole-run
// phase windows.
func scenarioTestConfig(warm, measure uint64) Config {
	cfg := DefaultConfig()
	cfg.Scale = 0.0625
	cfg.Seed = 42
	cfg.WarmRecords = warm
	cfg.MeasureRecords = measure
	return cfg
}

func testScenario(t *testing.T, name string) trace.Scenario {
	t.Helper()
	scn, err := trace.ScenarioByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return scn
}

// TestPhaseWindowsSumToTotals asserts the accounting identity: the
// per-phase windows partition the whole run, so their fields sum
// exactly to the run totals, in both drivers.
func TestPhaseWindowsSumToTotals(t *testing.T) {
	cfg := scenarioTestConfig(0, 6000)
	scn := testScenario(t, "phase-flip")
	ps := PrefSpec{Kind: STMS, SampleProb: 0.125}

	timedRes, err := RunTimedScenarioCtx(nil, cfg, scn, ps, nil)
	if err != nil {
		t.Fatal(err)
	}
	funcRes, err := RunFunctionalScenarioCtx(nil, cfg, scn, ps, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range []*Results{&timedRes, &funcRes} {
		if len(res.Phases) != 3 {
			t.Fatalf("%s: %d phase windows, want 3", res.Workload, len(res.Phases))
		}
		var sum PhaseWindow
		for _, w := range res.Phases {
			sum.Records += w.Records
			sum.L1Hits += w.L1Hits
			sum.L2Hits += w.L2Hits
			sum.CoveredFull += w.CoveredFull
			sum.CoveredPartial += w.CoveredPartial
			sum.Uncovered += w.Uncovered
			sum.ElapsedCycles += w.ElapsedCycles
			sum.Instrs += w.Instrs
		}
		// With warm = 0 the Results totals are whole-run, like the
		// phase windows.
		if sum.Records != res.Records || sum.L1Hits != res.L1Hits || sum.L2Hits != res.L2Hits {
			t.Fatalf("reference sums diverge: phases %+v vs totals %+v", sum, res)
		}
		if sum.CoveredFull != res.CoveredFull || sum.CoveredPartial != res.CoveredPartial ||
			sum.Uncovered != res.Uncovered {
			t.Fatalf("coverage sums diverge: phases %+v vs totals %+v", sum, res)
		}
		if sum.ElapsedCycles != res.ElapsedCycles || sum.Instrs != res.Instrs {
			t.Fatalf("timing sums diverge: phases %+v vs totals (%d cycles, %d instrs)",
				sum, res.ElapsedCycles, res.Instrs)
		}
	}
	if funcRes.Phases[0].ElapsedCycles != 0 || funcRes.Phases[0].IPC != 0 {
		t.Fatal("functional phase windows carry timing numbers")
	}
}

// TestScenarioTapeMatchesLiveResults is the sim-level half of the
// golden equality: replaying a scenario tape must produce Results
// bit-identical to live scenario generation, for a multi-phase and a
// mixed-core scenario, on both drivers.
func TestScenarioTapeMatchesLiveResults(t *testing.T) {
	cfg := scenarioTestConfig(1500, 3000)
	ps := PrefSpec{Kind: STMS, SampleProb: 0.125}
	for _, name := range []string{"phase-flip", "mix-commercial"} {
		scn := testScenario(t, name)
		scaled := scn.Scaled(cfg.Scale)
		tape := trace.NewScenarioTape(scaled, cfg.Seed, cfg.Cores, cfg.WarmRecords+cfg.MeasureRecords)

		live, err := RunTimedScenarioCtx(nil, cfg, scn, ps, nil)
		if err != nil {
			t.Fatal(err)
		}
		replay, err := RunTimedTapeCtx(nil, cfg, tape, ps, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(live, replay) {
			t.Fatalf("%s: timed tape replay differs from live generation", name)
		}

		liveF, err := RunFunctionalScenarioCtx(nil, cfg, scn, ps, nil)
		if err != nil {
			t.Fatal(err)
		}
		replayF, err := RunFunctionalTapeCtx(nil, cfg, tape, ps, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(liveF, replayF) {
			t.Fatalf("%s: functional tape replay differs from live generation", name)
		}
	}
}

// TestScenarioTapeBudgetExact: scenario tapes must match the run budget
// exactly (fraction phases resolve against it), unlike plain tapes
// which only need to cover it.
func TestScenarioTapeBudgetExact(t *testing.T) {
	cfg := scenarioTestConfig(1000, 2000)
	scn := testScenario(t, "phase-flip").Scaled(cfg.Scale)
	bigger := trace.NewScenarioTape(scn, cfg.Seed, cfg.Cores, 4000)
	if _, err := RunTimedTapeCtx(nil, cfg, bigger, PrefSpec{Kind: STMS}, nil); err == nil {
		t.Fatal("oversized scenario tape accepted; phase marks would shift")
	}
	spec, err := trace.ByName("web-apache")
	if err != nil {
		t.Fatal(err)
	}
	plain := trace.NewTape(spec.Scaled(cfg.Scale), cfg.Seed, cfg.Cores, 4000)
	if _, err := RunTimedTapeCtx(nil, cfg, plain, PrefSpec{Kind: STMS}, nil); err != nil {
		t.Fatalf("oversized plain tape rejected: %v", err)
	}
}
