package sim

import (
	"context"
	"fmt"

	"stms/internal/cache"
	"stms/internal/cpu"
	"stms/internal/dram"
	"stms/internal/event"
	"stms/internal/prefetch"
	"stms/internal/prefetch/stride"
	"stms/internal/trace"
)

// timed is the event-driven whole-system simulation.
//
// The per-record path (load → access → demandFetch → DRAM → MSHR →
// retire) is allocation-free: continuations are typed (kind, a, b)
// payloads delivered through the event.Handler interface — the simulator
// itself is the handler — with the load's identity packed into the
// payload words (block number in a; core, PC, and ROB token in b).
type timed struct {
	cfg  Config
	spec trace.Spec
	ps   PrefSpec

	// Checkpointing: how the trace sources were built (for the resume
	// descriptor), the run's checkpoint options, and trigger state.
	src      ckptSrc
	opt      runOpts
	nextCkpt uint64
	ckptN    int
	halted   bool
	ckptErr  error

	// Cancellation and progress reporting (nil ctx = never cancelled).
	ctx       context.Context
	progress  Progress
	totalRecs uint64
	allRecs   uint64
	aborted   bool

	eng    *event.Engine
	mc     *dram.Controller
	l1     []*cache.Cache
	l2     *cache.Cache
	l2mshr *cache.MSHR
	strid  *stride.Prefetcher
	pref   built
	cores  []*cpu.Core

	// strideIssue is the premade stride-candidate continuation (one
	// allocation per run instead of one per load).
	strideIssue func(cand uint64)

	dirtyThresh uint64

	// srcs are the per-core frame sources feeding the cores: trace decode
	// (or live generation) is double-buffered behind the simulation.
	srcs []trace.FrameSource

	// Window management.
	recordsSeen []uint64
	crossedWarm int
	measuring   bool
	measureT0   uint64

	// Sampling-window barrier (windowClock runs only): warmPending
	// counts warm-record accesses dispatched before the boundary whose
	// hierarchy walk is still deferred to its issue time; barrierFull is
	// set once every core is parked on the boundary. The window opens
	// when both conditions clear, so every warm access is counted on the
	// warm side of the snapshot and the window measures exactly its
	// planned records.
	warmPending int
	barrierFull bool

	// Per-phase windowing (scenario runs); nil otherwise.
	phases *phaseTracker

	// Raw counters (windowed by snapshot at the warm boundary).
	cnt, cntSnap  counters
	engSnap       EngineCounts
	committedSnap []uint64

	// Per-core MLP integrators (demand off-chip reads).
	mlp []mlpTrack
}

// timed event/completion kinds.
const (
	tkAccess     uint8 = iota // deferred access at issue time (a=blk, b=packed)
	tkRetry                   // MSHR-full retry of demandFetch (a=blk, b=packed)
	tkDemandDone              // demand DRAM read data available (a=blk, b=core)
	tkStrideDone              // stride DRAM read data available (a=blk)
	tkPBArrived               // prefetch-buffer partial hit arrival (a=blk, b=packed)
	tkBarrier                 // sampling barrier: try opening the measurement window
)

// pack squeezes a load's identity into one payload word: PC in the high
// 32 bits, core below, ROB token at the bottom (ROB indices are < 2^16
// for any realistic configuration; Config.Validate bounds cores).
func packLoad(core int, pc uint32, token uint32) uint64 {
	return uint64(pc)<<32 | uint64(core)<<16 | uint64(token)
}

func unpackLoad(b uint64) (core int, pc uint32, token uint32) {
	return int(b >> 16 & 0xFFFF), uint32(b >> 32), uint32(b & 0xFFFF)
}

var _ event.Handler = (*timed)(nil)

// Handle implements event.Handler: every typed continuation of the timed
// hot path lands here.
func (s *timed) Handle(now uint64, kind uint8, a, b uint64) {
	switch kind {
	case tkAccess:
		core, pc, token := unpackLoad(b)
		if t, sync := s.access(core, pc, a, token); sync {
			s.cores[core].Complete(token, t)
		}
		if s.warmPending > 0 {
			if s.warmPending--; s.warmPending == 0 {
				s.maybeOpenWindow()
			}
		}
	case tkBarrier:
		s.maybeOpenWindow()
	case tkRetry:
		core, _, token := unpackLoad(b)
		s.demandFetch(core, a, token)
	case tkDemandDone:
		core := int(b)
		s.mlp[core].complete(now)
		s.fillL2(a)
		s.l2mshr.Complete(a, now)
	case tkStrideDone:
		s.fillL2(a)
		s.l2mshr.Complete(a, now)
	case tkPBArrived:
		// Partially covered miss: the block arrives now; move it on chip
		// and complete the load.
		core, _, token := unpackLoad(b)
		s.fillL2(a)
		s.fillL1(core, a)
		s.cores[core].Complete(token, now)
	}
}

// mshrDone delivers a completed fill to a merged waiter: payload a is the
// block, b the packed load identity.
func (s *timed) mshrDone(now, a, b uint64) {
	core, _, token := unpackLoad(b)
	s.fillL1(core, a)
	s.cores[core].Complete(token, now)
}

type counters struct {
	Loads          uint64
	L1Hits         uint64
	PBFull         uint64
	PBPartial      uint64
	L2Hits         uint64
	L2DemandMisses uint64
	StrideIssued   uint64
	MSHRRetries    uint64
}

func (c counters) sub(o counters) counters {
	return counters{
		Loads:          c.Loads - o.Loads,
		L1Hits:         c.L1Hits - o.L1Hits,
		PBFull:         c.PBFull - o.PBFull,
		PBPartial:      c.PBPartial - o.PBPartial,
		L2Hits:         c.L2Hits - o.L2Hits,
		L2DemandMisses: c.L2DemandMisses - o.L2DemandMisses,
		StrideIssued:   c.StrideIssued - o.StrideIssued,
		MSHRRetries:    c.MSHRRetries - o.MSHRRetries,
	}
}

type mlpTrack struct {
	outstanding uint64
	lastT       uint64
	busy        uint64
	weighted    uint64
}

func (m *mlpTrack) advance(now uint64) {
	if m.outstanding > 0 {
		dt := now - m.lastT
		m.busy += dt
		m.weighted += m.outstanding * dt
	}
	m.lastT = now
}

func (m *mlpTrack) issue(now uint64)    { m.advance(now); m.outstanding++ }
func (m *mlpTrack) complete(now uint64) { m.advance(now); m.outstanding-- }

func (m *mlpTrack) value() float64 {
	if m.busy == 0 {
		return 0
	}
	return float64(m.weighted) / float64(m.busy)
}

// timedEnv adapts the system to prefetch.Env: meta-data and streamed data
// travel as low-priority DRAM traffic.
type timedEnv struct{ s *timed }

func (e timedEnv) Now() uint64 { return e.s.eng.Now() }

func (e timedEnv) MetaRead(class dram.Class, done func(uint64)) {
	e.s.mc.Read(class, false, done)
}

func (e timedEnv) MetaReadH(class dram.Class, h event.Handler, kind uint8, a, b uint64) {
	e.s.mc.ReadH(class, false, h, kind, a, b)
}

func (e timedEnv) MetaWrite(class dram.Class) {
	e.s.mc.Write(class, false)
}

func (e timedEnv) Fetch(core int, blk uint64, done func(uint64)) {
	e.s.mc.Read(dram.StreamData, false, done)
}

func (e timedEnv) FetchH(core int, blk uint64, h event.Handler, kind uint8, a, b uint64) {
	e.s.mc.ReadH(dram.StreamData, false, h, kind, a, b)
}

func (e timedEnv) OnChip(core int, blk uint64) bool {
	return e.s.l1[core].Probe(blk) || e.s.l2.Probe(blk) || e.s.l2mshr.InFlight(blk)
}

// RunTimed executes one timed simulation of the workload under the given
// prefetcher variant and returns windowed results.
func RunTimed(cfg Config, spec trace.Spec, ps PrefSpec) Results {
	r, err := RunTimedCtx(context.Background(), cfg, spec, ps, nil)
	if err != nil {
		panic(err)
	}
	return r
}

// RunTimedCtx is RunTimed with cooperative cancellation and an optional
// progress hook. The context is polled every few thousand records; on
// cancellation the simulation stops promptly and ctx.Err() is returned.
// Configuration errors are returned rather than panicking.
//
// This is the live-generation path: records are produced by the
// workload generators inside the simulation loop. Per-core generation
// is a pure function of (spec, seed, core), so the results are
// bit-identical to replaying a trace.Tape of the same identity through
// RunTimedTapeCtx — which is cheaper when the trace is consumed more
// than once (the lab's run matrix does exactly that).
func RunTimedCtx(ctx context.Context, cfg Config, spec trace.Spec, ps PrefSpec, progress Progress, opts ...RunOption) (Results, error) {
	if err := cfg.Validate(); err != nil {
		return Results{}, err
	}
	scaled := spec.Scaled(cfg.Scale)
	lib := trace.NewLibrary(scaled, cfg.Seed)
	total := cfg.WarmRecords + cfg.MeasureRecords
	gens := make([]trace.Generator, cfg.Cores)
	for i := range gens {
		gens[i] = &trace.Limit{Gen: trace.NewGenerator(lib, i, cfg.Seed), N: total}
	}
	src := ckptSrc{kind: "spec", spec: spec}
	return runTimed(ctx, cfg, scaled, gens, nil, nil, ps, progress, total*uint64(cfg.Cores), src, opts)
}

// RunTimedScenarioCtx executes the timed simulation of a
// phase-structured scenario. The scenario is scaled by cfg.Scale and
// materialized against the run's per-core budget (warm + measure);
// Results carry per-phase stat windows alongside the usual whole-run
// numbers. Like plain workloads, scenario generation is a pure function
// of (scenario, seed, core): results are bit-identical to replaying a
// scenario tape of the same identity through RunTimedTapeCtx.
func RunTimedScenarioCtx(ctx context.Context, cfg Config, scn trace.Scenario, ps PrefSpec, progress Progress, opts ...RunOption) (Results, error) {
	if err := cfg.Validate(); err != nil {
		return Results{}, err
	}
	scaled := scn.Scaled(cfg.Scale)
	total := cfg.WarmRecords + cfg.MeasureRecords
	gens, marks, err := scaled.Generators(cfg.Seed, cfg.Cores, total)
	if err != nil {
		return Results{}, err
	}
	for i, g := range gens {
		gens[i] = &trace.Limit{Gen: g, N: total}
	}
	spec := scaled.EffectiveSpec(cfg.Cores, total)
	src := ckptSrc{kind: "scenario", scn: scn}
	return runTimed(ctx, cfg, spec, gens, nil, marks, ps, progress, total*uint64(cfg.Cores), src, opts)
}

// RunTimedTapeCtx executes the timed simulation over a materialized
// columnar tape instead of live generators. The tape must have been
// built for this configuration's trace identity — same scaled spec,
// seed, core count, and a per-core budget covering warm + measure —
// and then Results are bit-identical to RunTimedCtx at the same seed.
func RunTimedTapeCtx(ctx context.Context, cfg Config, tape *trace.Tape, ps PrefSpec, progress Progress, opts ...RunOption) (Results, error) {
	if err := cfg.Validate(); err != nil {
		return Results{}, err
	}
	total := cfg.WarmRecords + cfg.MeasureRecords
	if err := tapeFits(cfg, tape, total); err != nil {
		return Results{}, err
	}
	gens := make([]trace.Generator, cfg.Cores)
	for i := range gens {
		gens[i] = tape.CursorN(i, total)
	}
	src := ckptSrc{kind: "tape"}
	return runTimed(ctx, cfg, tape.Spec(), gens, nil, tape.Marks(), ps, progress, total*uint64(cfg.Cores), src, opts)
}

// tapeFits verifies a tape covers the run a config describes. Scenario
// tapes must match the run budget exactly: fraction-based phases
// resolve against the materialization budget, so replaying a longer
// scenario tape for a shorter run would shift every phase boundary
// relative to live generation.
func tapeFits(cfg Config, tape *trace.Tape, perCore uint64) error {
	switch {
	case tape == nil:
		return fmt.Errorf("sim: nil tape")
	case tape.Cores() != cfg.Cores:
		return fmt.Errorf("sim: tape holds %d cores, config needs %d", tape.Cores(), cfg.Cores)
	case tape.Seed() != cfg.Seed:
		return fmt.Errorf("sim: tape seed %d, config seed %d", tape.Seed(), cfg.Seed)
	case tape.PerCore() < perCore:
		return fmt.Errorf("sim: tape budget %d records/core, run needs %d", tape.PerCore(), perCore)
	case tape.Scenario() != nil && tape.PerCore() != perCore:
		return fmt.Errorf("sim: scenario tape materialized for %d records/core, run needs exactly %d",
			tape.PerCore(), perCore)
	}
	return nil
}

// RunTimedTrace executes the timed simulation over externally supplied
// record generators, one per core — typically trace.FileReader streams
// from files captured with stms-trace or converted from an application's
// own miss trace. The name labels results; dirtyFrac sets the writeback
// model.
func RunTimedTrace(cfg Config, name string, gens []trace.Generator, dirtyFrac float64, ps PrefSpec) Results {
	r, err := RunTimedTraceCtx(context.Background(), cfg, name, gens, dirtyFrac, ps, nil)
	if err != nil {
		panic(err)
	}
	return r
}

// RunTimedTraceCtx is RunTimedTrace with cooperative cancellation and an
// optional progress hook (total is unknown for external generators, so
// progress callbacks report total = 0).
func RunTimedTraceCtx(ctx context.Context, cfg Config, name string, gens []trace.Generator, dirtyFrac float64, ps PrefSpec, progress Progress, opts ...RunOption) (Results, error) {
	if err := cfg.Validate(); err != nil {
		return Results{}, err
	}
	if len(gens) != cfg.Cores {
		return Results{}, fmt.Errorf("sim: %d generators for %d cores", len(gens), cfg.Cores)
	}
	spec := trace.Spec{Name: name, DirtyFrac: dirtyFrac}
	src := ckptSrc{kind: "external"}
	return runTimed(ctx, cfg, spec, gens, nil, nil, ps, progress, 0, src, opts)
}

// RunTimedSourcesCtx executes the timed simulation over externally
// produced frame sources — a stream.Inlet's per-core sources, most
// commonly — carrying the trace identity their producer announced.
// With a matching configuration (same seed, cores, and a warm+measure
// budget equal to the stream's per-core record count), Results are
// bit-identical to consuming the same trace locally. Sources that die
// mid-stream fail the run with their error; like other external runs,
// these are not checkpointable.
func RunTimedSourcesCtx(ctx context.Context, cfg Config, run SourceRun, ps PrefSpec, progress Progress, opts ...RunOption) (Results, error) {
	if err := cfg.Validate(); err != nil {
		return Results{}, err
	}
	if err := run.validate(cfg); err != nil {
		return Results{}, err
	}
	src := ckptSrc{kind: "external"}
	return runTimed(ctx, cfg, run.Spec, nil, run.Sources, run.Marks, ps, progress, run.PerCore*uint64(cfg.Cores), src, opts)
}

// runTimed wires and drains the event-driven system over the given
// per-core generators — or, when srcs is non-nil, over pre-built frame
// sources (remote streams); marks, when non-nil, request per-phase stat
// windows in the Results.
func runTimed(ctx context.Context, cfg Config, spec trace.Spec, gens []trace.Generator, srcs []trace.FrameSource, marks []trace.PhaseMark, ps PrefSpec, progress Progress, totalRecs uint64, src ckptSrc, opts []RunOption) (Results, error) {
	if ctx == nil {
		ctx = context.Background() // documented: nil = never cancelled
	}
	s := &timed{
		cfg:         cfg,
		spec:        spec,
		ps:          ps,
		src:         src,
		opt:         gatherOpts(opts),
		ctx:         ctx,
		progress:    progress,
		totalRecs:   totalRecs,
		eng:         event.NewEngine(),
		dirtyThresh: dirtyThreshold(spec.DirtyFrac),
		recordsSeen: make([]uint64, cfg.Cores),
		mlp:         make([]mlpTrack, cfg.Cores),
	}
	s.phases = newPhaseTracker(marks, cfg.Cores)
	s.mc = dram.New(s.eng, cfg.DRAM)
	s.l2 = cache.New(cache.Config{Name: "L2", SizeBytes: cfg.L2(), Assoc: cfg.L2Assoc})
	s.l2mshr = cache.NewMSHR(cfg.L2MSHRs, s.mshrDone)
	s.strid = stride.New(cfg.Stride)
	s.strideIssue = s.stridePrefetch
	s.pref = buildPrefetcher(timedEnv{s}, cfg, ps)

	s.committedSnap = make([]uint64, cfg.Cores)
	// Each core consumes its trace frame-at-a-time from a pipelined
	// source: a producer goroutine decodes (or generates) the next frame
	// while the simulation works through the current one. Sources are
	// closed on every exit path — an aborted run must not leak producers.
	s.srcs = make([]trace.FrameSource, cfg.Cores)
	defer func() {
		for _, src := range s.srcs {
			src.Close()
		}
	}()
	for i := 0; i < cfg.Cores; i++ {
		if srcs != nil {
			s.srcs[i] = srcs[i]
		} else {
			s.srcs[i] = trace.AutoFrames(gens[i])
		}
		s.l1 = append(s.l1, cache.New(cache.Config{Name: "L1", SizeBytes: cfg.L1(), Assoc: cfg.L1Assoc}))
		c := cpu.NewFramed(i, cfg.Core, s.eng, s.srcs[i], s.load)
		s.cores = append(s.cores, c)
	}
	if s.opt.active() {
		// Fail fast: unsupported configurations refuse checkpoint
		// requests up front rather than at the first boundary.
		if err := ckptSupported(src, s.pref, ps); err != nil {
			return Results{}, err
		}
	}
	if s.opt.resume != nil {
		// Resumed run: all pending events (including the cores' own
		// dispatch steps) come back with the engine snapshot, so the
		// cores must not be started again.
		d, dec, err := openResume(s.opt.resume)
		if err != nil {
			return Results{}, err
		}
		if err := checkDesc(d, "timed", src, cfg, ps); err != nil {
			return Results{}, err
		}
		if err := s.restore(dec); err != nil {
			return Results{}, err
		}
	} else {
		if s.opt.warm != nil {
			if err := s.applyWarm(s.opt.warm); err != nil {
				return Results{}, err
			}
		}
		for _, c := range s.cores {
			c.Start()
		}
	}
	if s.opt.every > 0 {
		s.nextCkpt = nextBoundary(s.allRecs, s.opt.every)
	}
	// Drain everything: cores stop when their bounded generators run dry;
	// outstanding memory and meta-data events then settle. The stop
	// predicate is polled every pollEvery events (the engine keeps the
	// indirect call off the firing loop) — it also catches cancellation
	// during the drain tail, after the generators have gone dry and
	// noteRecord stops firing. Between events is also the one safe
	// checkpoint site: the engine clock is settled (now == base) and no
	// component is mid-update.
	s.eng.DrainEvery(pollEvery, func() bool {
		if !s.aborted && ctx.Err() != nil {
			s.aborted = true
		}
		if s.aborted {
			return true
		}
		// While the sampling barrier holds cores paused on the warm-up
		// boundary the paused flag is not part of the core snapshot
		// format; defer checkpoints until the window opens (the barrier
		// interval is a handful of records).
		if s.opt.windowClock && !s.measuring && s.crossedWarm > 0 {
			return false
		}
		if s.opt.stopCh != nil {
			select {
			case <-s.opt.stopCh:
				if err := s.writeCkpt(); err != nil {
					s.ckptErr = err
				} else {
					s.ckptN++
					s.halted = true
				}
				return true
			default:
			}
		}
		if s.opt.every > 0 && s.allRecs >= s.nextCkpt {
			if err := s.writeCkpt(); err != nil {
				s.ckptErr = err
				return true
			}
			s.ckptN++
			s.nextCkpt = nextBoundary(s.allRecs, s.opt.every)
			if s.opt.haltAfter > 0 && s.ckptN >= s.opt.haltAfter {
				s.halted = true
				return true
			}
		}
		return false
	})
	switch {
	case s.aborted:
		return Results{}, ctx.Err()
	case s.ckptErr != nil:
		return Results{}, s.ckptErr
	case s.halted:
		return Results{}, ErrCheckpointed
	}
	// A frame source that ran dry because its producer died (truncated
	// file, dropped stream) must fail the run — the records are
	// incomplete, and reporting results over them would silently pass a
	// short trace off as the real one.
	for _, fs := range s.srcs {
		if err := fs.Err(); err != nil {
			return Results{}, fmt.Errorf("sim: trace source failed mid-run: %w", err)
		}
	}
	return s.results(ps), nil
}

// load implements cpu.LoadFunc.
func (s *timed) load(core int, pc uint32, blk uint64, issueAt uint64, token uint32) cpu.LoadResult {
	s.noteRecord(core)
	if issueAt > s.eng.Now() {
		if s.opt.windowClock && !s.measuring {
			s.warmPending++
		}
		s.eng.AtH(issueAt, s, tkAccess, blk, packLoad(core, pc, token))
		return cpu.LoadResult{}
	}
	if t, sync := s.access(core, pc, blk, token); sync {
		return cpu.LoadResult{Sync: true, CompleteAt: t}
	}
	return cpu.LoadResult{}
}

// access walks the memory hierarchy at the current simulation time.
func (s *timed) access(core int, pc uint32, blk uint64, token uint32) (completeAt uint64, sync bool) {
	now := s.eng.Now()
	s.cnt.Loads++
	if s.l1[core].Access(blk, false) {
		s.cnt.L1Hits++
		return now + s.cfg.L1HitCycles, true
	}
	// The stride prefetcher trains on the L1-miss stream (Table 1). It
	// observes before the prefetch-buffer probe so its training — part of
	// the base system — is identical across prefetcher variants, keeping
	// matched-pair runs exactly comparable.
	s.strid.Observe(pc, blk, s.strideIssue)
	// L2 lookup first: a block that is L2-resident was never a miss to
	// cover, even if a copy also sits in the prefetch buffer (the probes
	// happen in parallel in hardware; the L2 hit wins).
	if s.l2.Access(blk, false) {
		s.cnt.L2Hits++
		s.fillL1(core, blk)
		return now + s.cfg.L2HitCycles, true
	}
	// Prefetch buffer sits alongside the L1 (§4.2). A partial hit parks
	// the load's identity as a typed waiter; tkPBArrived finishes it.
	res := s.pref.temporal.Probe(core, blk, s, tkPBArrived, blk, packLoad(core, pc, token))
	switch res.State {
	case prefetch.ProbeReady:
		s.cnt.PBFull++
		s.pref.temporal.Record(core, blk, true)
		s.fillL2(blk)
		s.fillL1(core, blk)
		return now + s.cfg.PBHitCycles, true
	case prefetch.ProbeInFlight:
		s.cnt.PBPartial++
		s.pref.temporal.Record(core, blk, true)
		return 0, false
	}
	// Off-chip demand read miss: this is the temporal prefetcher's
	// trigger event (§4.2). The lookup races the fill; the record
	// mirrors retirement.
	s.cnt.L2DemandMisses++
	s.pref.temporal.TriggerMiss(core, blk)
	s.pref.temporal.Record(core, blk, false)
	s.demandFetch(core, blk, token)
	return 0, false
}

func (s *timed) fillL1(core int, blk uint64) {
	// L1 victims write back on chip (to the L2); no off-chip traffic.
	s.l1[core].Fill(blk, false)
}

func (s *timed) fillL2(blk uint64) {
	// Only the victim's dirty bit matters for traffic: a dirty eviction
	// writes the block back off chip.
	_, wb, evicted := s.l2.Fill(blk, blockDirty(blk, s.dirtyThresh))
	if evicted && wb {
		s.mc.Write(dram.Writeback, false)
	}
}

// demandFetch issues (or merges) an off-chip demand read.
func (s *timed) demandFetch(core int, blk uint64, token uint32) {
	primary, ok := s.l2mshr.AllocateW(blk, blk, packLoad(core, 0, token))
	if !ok {
		// MSHR file full: retry shortly (Table 1 bounds in-flight misses).
		s.cnt.MSHRRetries++
		s.eng.ScheduleH(16, s, tkRetry, blk, packLoad(core, 0, token))
		return
	}
	if !primary {
		return // merged into an in-flight fill
	}
	s.mlp[core].issue(s.eng.Now())
	s.mc.ReadH(dram.Demand, true, s, tkDemandDone, blk, uint64(core))
}

// stridePrefetch issues a stride candidate into the L2 at low priority.
func (s *timed) stridePrefetch(blk uint64) {
	if s.l2.Probe(blk) || s.l2mshr.InFlight(blk) {
		return
	}
	// Leave headroom for demand misses in the MSHR file.
	if s.l2mshr.Outstanding() >= s.cfg.L2MSHRs-8 {
		return
	}
	primary, ok := s.l2mshr.Allocate(blk)
	if !ok || !primary {
		return
	}
	s.cnt.StrideIssued++
	s.mc.ReadH(dram.StrideData, false, s, tkStrideDone, blk, 0)
}

// noteRecord advances the warm-up/measurement window bookkeeping and, on
// a stride, reports progress and polls the context.
func (s *timed) noteRecord(core int) {
	if s.allRecs++; s.allRecs%pollEvery == 0 {
		if s.progress != nil {
			s.progress(s.allRecs, s.totalRecs)
		}
		if s.ctx.Err() != nil {
			s.aborted = true
		}
	}
	s.recordsSeen[core]++
	if s.phases != nil {
		s.phases.note(core, s.recordsSeen[core], s.phaseSnapNow)
	}
	if s.recordsSeen[core] == s.cfg.WarmRecords && !s.measuring {
		s.crossedWarm++
		switch {
		case !s.opt.windowClock:
			if s.crossedWarm == s.cfg.Cores {
				s.startMeasure()
			}
		default:
			// Sampling window: park the core on the warm-up boundary.
			// Without the barrier, cores that run ahead consume (fast)
			// measurement records before the window opens; the serial run
			// pays that clip once, K windows would pay it K times, which
			// skews every window slow. The last core to arrive parks too:
			// its boundary record (and any other deferred warm access)
			// must finish its hierarchy walk before the window opens.
			s.cores[core].Pause()
			if s.crossedWarm == s.cfg.Cores {
				s.barrierFull = true
				s.eng.ScheduleH(0, s, tkBarrier, 0, 0)
			}
		}
	}
}

// maybeOpenWindow opens a sampling window once every core is parked on
// the warm-up boundary and no warm-record access walk is still pending.
func (s *timed) maybeOpenWindow() {
	if !s.barrierFull || s.measuring || s.warmPending > 0 {
		return
	}
	s.startMeasure()
	for _, c := range s.cores {
		c.Resume()
	}
}

func (s *timed) startMeasure() {
	now := s.eng.Now()
	s.measuring = true
	s.measureT0 = now
	s.cntSnap = s.cnt
	s.engSnap = engineCounts(s.pref.temporal.Stats())
	s.mc.ResetStats()
	s.l2.ResetStats()
	for i, c := range s.cores {
		c.MarkWindow()
		s.committedSnap[i] = 0 // MarkWindow owns the boundary
		s.mlp[i] = mlpTrack{outstanding: s.mlp[i].outstanding, lastT: now}
	}
}

func (s *timed) results(ps PrefSpec) Results {
	if eng := s.pref.engine; eng != nil {
		eng.Flush()
	}
	// End-of-run clock: the engine stops at the last fired event, but the
	// final DRAM transfer holds its channel a few cycles past that (its
	// completion is bookkeeping, not an event). The run ends when the
	// channel does.
	now := s.eng.Now()
	if s.opt.windowClock && s.measuring {
		// Sampling window: the clock stops at the last instruction
		// commit. The queue drain past that point (outstanding demand
		// misses, low-priority meta-data backlog) is an end-of-run
		// artifact the serial run pays once but K windows would pay K
		// times.
		fin := s.measureT0
		for _, c := range s.cores {
			if f := c.FinishTime(); f > fin {
				fin = f
			}
		}
		now = fin
	} else if bu := s.mc.BusyUntil(); bu > now {
		now = bu
	}
	w := s.cnt.sub(s.cntSnap)
	var instrs uint64
	for _, c := range s.cores {
		instrs += c.CommittedInWindow()
	}
	elapsed := now - s.measureT0
	if !s.measuring {
		// Window never opened (warm-up exceeded the trace): report
		// whole-run numbers so short tests still see data.
		elapsed = now
	}
	var mlpW, mlpB float64
	for i := range s.mlp {
		if now > s.mlp[i].lastT {
			s.mlp[i].advance(now)
		}
		mlpW += float64(s.mlp[i].weighted)
		mlpB += float64(s.mlp[i].busy)
	}
	r := Results{
		Workload:       s.spec.Name,
		Variant:        ps.Kind.String(),
		ElapsedCycles:  elapsed,
		Instrs:         instrs,
		Records:        w.Loads,
		L1Hits:         w.L1Hits,
		L2Hits:         w.L2Hits,
		CoveredFull:    w.PBFull,
		CoveredPartial: w.PBPartial,
		Uncovered:      w.L2DemandMisses,
		Traffic:        s.mc.Traffic(),
		Engine:         engineCounts(s.pref.temporal.Stats()).Sub(s.engSnap),
		DRAMUtil:       s.mc.Utilization(),
	}
	if elapsed > 0 {
		r.IPC = float64(instrs) / float64(elapsed)
	}
	if mlpB > 0 {
		r.MLP = mlpW / mlpB
	}
	for _, src := range s.srcs {
		r.Frames.Add(src.Stats())
	}
	if eng := s.pref.engine; eng != nil {
		r.StreamLens = &eng.Stats().StreamLens
	}
	if s.phases != nil {
		// The final window closes at the end-of-run clock, not the last
		// event (same clamp as above); mid-run snapshots in phaseSnapNow
		// use event time, where the channel's tail never outruns events.
		final := s.phaseSnapNow()
		final.cycles = now
		r.Phases = s.phases.windows(final)
	}
	return r
}

// phaseSnapNow captures the whole-run counter state at the current
// simulation instant.
func (s *timed) phaseSnapNow() phaseSnap {
	var instrs uint64
	for _, c := range s.cores {
		instrs += c.Committed()
	}
	return phaseSnap{cnt: s.cnt, cycles: s.eng.Now(), instrs: instrs}
}
