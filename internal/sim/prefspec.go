package sim

import (
	"fmt"

	"stms/internal/core"
	"stms/internal/prefetch"
	"stms/internal/prefetch/ebcp"
	"stms/internal/prefetch/ghb"
	"stms/internal/prefetch/markov"
	"stms/internal/prefetch/singletable"
	"stms/internal/prefetch/tse"
	"stms/internal/prefetch/ulmt"
)

// Kind selects a temporal prefetcher variant.
type Kind int

// Prefetcher variants.
const (
	None   Kind = iota // stride-only baseline
	Ideal              // idealized TMS: magic on-chip meta-data (§5.2)
	STMS               // the paper's contribution
	TSE                // Temporal Streaming Engine comparator
	EBCP               // epoch-based correlation comparator
	ULMT               // user-level memory thread comparator
	Markov             // pair-wise comparator
)

// String names the variant as figures label it.
func (k Kind) String() string {
	switch k {
	case None:
		return "baseline"
	case Ideal:
		return "ideal"
	case STMS:
		return "stms"
	case TSE:
		return "tse"
	case EBCP:
		return "ebcp"
	case ULMT:
		return "ulmt"
	case Markov:
		return "markov"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// PrefSpec configures the temporal prefetcher for a run. Zero values take
// variant defaults scaled by Config.Scale.
type PrefSpec struct {
	Kind Kind

	// MaxDepth caps blocks followed per lookup (Fig. 6 right); 0 =
	// unlimited.
	MaxDepth int

	// Ideal-variant meta-data caps (Figs. 1 left, 5 left).
	HistoryEntries uint64 // per-core history entries; 0 = unbounded
	IndexEntries   uint64 // global index entries with LRU; 0 = unbounded

	// STMS overrides. When STMSCfg is non-nil it is used verbatim;
	// otherwise the default configuration is scaled by Config.Scale and
	// SampleProb (if non-zero) overrides the sampling probability.
	STMSCfg    *core.Config
	SampleProb float64

	// Engine overrides (0 = defaults).
	Engine *prefetch.EngineConfig
}

// built carries a constructed prefetcher and the typed handles experiments
// need for variant-specific statistics.
type built struct {
	temporal prefetch.Temporal
	engine   *prefetch.Engine // nil for Markov/EBCP/ULMT/None
	stms     *core.Meta
	ideal    *ghb.Meta
	tse      *tse.Meta
	table    *singletable.Prefetcher
	markov   *markov.Prefetcher
}

// buildPrefetcher constructs the variant over env.
func buildPrefetcher(env prefetch.Env, cfg Config, ps PrefSpec) built {
	ecfg := prefetch.DefaultEngineConfig(cfg.Cores)
	if ps.Engine != nil {
		ecfg = *ps.Engine
		ecfg.Cores = cfg.Cores
	}
	ecfg.MaxDepth = ps.MaxDepth

	switch ps.Kind {
	case None:
		return built{temporal: &prefetch.Nop{}}

	case Ideal:
		gcfg := ghb.DefaultConfig(cfg.Cores)
		if ps.HistoryEntries != 0 {
			gcfg.HistoryEntries = ps.HistoryEntries
		}
		gcfg.IndexEntries = ps.IndexEntries
		m := ghb.New(gcfg)
		e := prefetch.NewEngine(env, m, ecfg)
		return built{temporal: e, engine: e, ideal: m}

	case STMS:
		var scfg core.Config
		if ps.STMSCfg != nil {
			scfg = *ps.STMSCfg
		} else {
			scfg = core.DefaultConfig(cfg.Cores).Scaled(cfg.Scale)
			if ps.SampleProb > 0 {
				scfg.SampleProb = ps.SampleProb
			}
			scfg.Seed = cfg.Seed
		}
		scfg.Cores = cfg.Cores
		m := core.NewMeta(env, scfg)
		e := prefetch.NewEngine(env, m, ecfg)
		return built{temporal: e, engine: e, stms: m}

	case TSE:
		tcfg := tse.DefaultConfig(cfg.Cores)
		if ps.HistoryEntries != 0 {
			tcfg.HistoryEntries = ps.HistoryEntries
		}
		m := tse.NewMeta(env, tcfg)
		e := prefetch.NewEngine(env, m, ecfg)
		return built{temporal: e, engine: e, tse: m}

	case EBCP:
		p := singletable.New(env, scaledTable(ebcp.DefaultConfig(cfg.Cores), cfg.Scale))
		return built{temporal: p, table: p}

	case ULMT:
		p := singletable.New(env, scaledTable(ulmt.DefaultConfig(cfg.Cores), cfg.Scale))
		return built{temporal: p, table: p}

	case Markov:
		mcfg := markov.DefaultConfig(cfg.Cores)
		mcfg.Entries = int(float64(mcfg.Entries) * cfg.Scale)
		if mcfg.Entries < 1024 {
			mcfg.Entries = 1024
		}
		p := markov.New(env, mcfg)
		return built{temporal: p, markov: p}
	}
	panic(fmt.Sprintf("sim: unknown prefetcher kind %d", ps.Kind))
}

func scaledTable(c singletable.Config, scale float64) singletable.Config {
	if scale > 0 && scale != 1 {
		c.Entries = int(float64(c.Entries) * scale)
		if c.Entries < 1024 {
			c.Entries = 1024
		}
	}
	return c
}
