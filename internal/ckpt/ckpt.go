// Package ckpt implements the STMSCKPT v1 checkpoint container: a
// versioned, checksummed binary envelope plus a tiny sticky-error
// encoder/decoder pair the simulator components serialize themselves
// through.
//
// The format is deliberately dumb: little-endian fixed-width integers,
// length-prefixed byte strings, and named section markers that turn
// encoder/decoder skew into an immediate, labelled error instead of a
// silently corrupt restore. A checkpoint is only ever trusted after the
// whole-payload CRC and the magic/version header check out; a torn or
// bit-flipped file reads as an error, never as state.
//
// Files are written atomically (temp file + fsync + rename + directory
// fsync) so a crash mid-write leaves either the previous checkpoint or
// none — the same discipline dist.Store uses for tapes, tightened with
// the dirent fsync.
package ckpt

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
)

// Magic and Version identify the container format.
const (
	Magic   = "STMSCKPT"
	Version = 1
)

// headerLen is magic + u32 version + u64 payload length.
const headerLen = len(Magic) + 4 + 8

// Encoder appends values to a growing byte buffer. It never fails.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Len returns the number of payload bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Payload returns the encoded payload (not yet framed; see Seal).
func (e *Encoder) Payload() []byte { return e.buf }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// U32 appends a little-endian uint32.
func (e *Encoder) U32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}

// U64 appends a little-endian uint64.
func (e *Encoder) U64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// I64 appends an int64 (two's-complement bit pattern).
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Int appends an int as int64.
func (e *Encoder) Int(v int) { e.I64(int64(v)) }

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// F64 appends a float64 bit pattern (lossless).
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bytes appends a length-prefixed byte string.
func (e *Encoder) Bytes(b []byte) {
	e.U64(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.U64(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// U64s appends a length-prefixed []uint64.
func (e *Encoder) U64s(v []uint64) {
	e.U64(uint64(len(v)))
	for _, x := range v {
		e.U64(x)
	}
}

// U32s appends a length-prefixed []uint32.
func (e *Encoder) U32s(v []uint32) {
	e.U64(uint64(len(v)))
	for _, x := range v {
		e.U32(x)
	}
}

// I32s appends a length-prefixed []int32.
func (e *Encoder) I32s(v []int32) {
	e.U64(uint64(len(v)))
	for _, x := range v {
		e.U32(uint32(x))
	}
}

// F64s appends a length-prefixed []float64.
func (e *Encoder) F64s(v []float64) {
	e.U64(uint64(len(v)))
	for _, x := range v {
		e.F64(x)
	}
}

// Section appends a named marker. The matching Decoder.Section call
// verifies it, catching any encode/decode skew at the component that
// introduced it.
func (e *Encoder) Section(name string) { e.String(name) }

// Decoder reads values back out of a payload. The first failure
// (truncation, section mismatch) sticks: every later read returns zero
// values and Err reports the original problem.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps payload for decoding.
func NewDecoder(payload []byte) *Decoder { return &Decoder{buf: payload} }

// Err returns the first decoding error, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns how many undecoded bytes are left.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) fail(format string, args ...interface{}) {
	if d.err == nil {
		d.err = fmt.Errorf("ckpt: "+format, args...)
	}
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.buf) {
		d.fail("truncated payload: need %d bytes at offset %d of %d", n, d.off, len(d.buf))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads an int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Int reads an int encoded with Encoder.Int.
func (d *Decoder) Int() int { return int(d.I64()) }

// Bool reads a boolean.
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// F64 reads a float64.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// lenPrefix reads a length and sanity-bounds it against the bytes left.
func (d *Decoder) lenPrefix(elemSize int) int {
	n := d.U64()
	if d.err != nil {
		return 0
	}
	if elemSize < 1 {
		elemSize = 1
	}
	if n > uint64(len(d.buf)-d.off)/uint64(elemSize) {
		d.fail("implausible length %d at offset %d", n, d.off)
		return 0
	}
	return int(n)
}

// Bytes reads a length-prefixed byte string (copy).
func (d *Decoder) Bytes() []byte {
	n := d.lenPrefix(1)
	b := d.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.lenPrefix(1)
	b := d.take(n)
	return string(b)
}

// U64s reads a length-prefixed []uint64.
func (d *Decoder) U64s() []uint64 {
	n := d.lenPrefix(8)
	if n == 0 {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = d.U64()
	}
	return out
}

// U32s reads a length-prefixed []uint32.
func (d *Decoder) U32s() []uint32 {
	n := d.lenPrefix(4)
	if n == 0 {
		return nil
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = d.U32()
	}
	return out
}

// I32s reads a length-prefixed []int32.
func (d *Decoder) I32s() []int32 {
	n := d.lenPrefix(4)
	if n == 0 {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(d.U32())
	}
	return out
}

// F64s reads a length-prefixed []float64.
func (d *Decoder) F64s() []float64 {
	n := d.lenPrefix(8)
	if n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.F64()
	}
	return out
}

// Section verifies the next marker matches name.
func (d *Decoder) Section(name string) {
	got := d.String()
	if d.err == nil && got != name {
		d.fail("section mismatch: want %q, got %q", name, got)
	}
}

// Seal frames payload into a complete STMSCKPT container:
// magic, version, payload length, payload, CRC-32 (IEEE) of the payload.
func Seal(payload []byte) []byte {
	out := make([]byte, 0, headerLen+len(payload)+4)
	out = append(out, Magic...)
	out = binary.LittleEndian.AppendUint32(out, Version)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
	out = append(out, payload...)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	return out
}

// Open verifies a sealed container and returns its payload. Any header,
// length or checksum mismatch is an error — a corrupt checkpoint must
// be discarded, never restored.
func Open(data []byte) ([]byte, error) {
	if len(data) < headerLen+4 {
		return nil, fmt.Errorf("ckpt: container too short (%d bytes)", len(data))
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("ckpt: bad magic")
	}
	ver := binary.LittleEndian.Uint32(data[len(Magic):])
	if ver != Version {
		return nil, fmt.Errorf("ckpt: unsupported version %d (want %d)", ver, Version)
	}
	plen := binary.LittleEndian.Uint64(data[len(Magic)+4:])
	if plen != uint64(len(data)-headerLen-4) {
		return nil, fmt.Errorf("ckpt: payload length %d does not match container (%d bytes)", plen, len(data))
	}
	payload := data[headerLen : headerLen+int(plen)]
	want := binary.LittleEndian.Uint32(data[headerLen+int(plen):])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("ckpt: checksum mismatch (got %08x, want %08x)", got, want)
	}
	return payload, nil
}

// WriteFile atomically writes a sealed container to path: temp file in
// the same directory, fsync, rename over path, then fsync the directory
// so the rename itself survives a crash. On any error the destination
// is untouched.
func WriteFile(path string, payload []byte) error {
	data := Seal(payload)
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("ckpt: create temp: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("ckpt: write temp: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("ckpt: sync temp: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("ckpt: close temp: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("ckpt: rename: %w", err)
	}
	return SyncDir(dir)
}

// ReadFile reads and verifies a sealed container, returning its payload.
func ReadFile(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	payload, err := Open(data)
	if err != nil {
		return nil, fmt.Errorf("%w (%s)", err, path)
	}
	return payload, nil
}

// SyncDir fsyncs a directory so freshly renamed dirents are durable.
// Filesystems that refuse directory fsync (some network mounts) are
// tolerated: the rename is still atomic, just not yet durable.
func SyncDir(dir string) error {
	df, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer df.Close()
	if err := df.Sync(); err != nil {
		return nil
	}
	return nil
}
