package ckpt

import (
	"bytes"
	"testing"
)

// FuzzCkptOpen feeds arbitrary bytes to the checkpoint container
// verifier: a corrupt checkpoint must be rejected with an error — never
// a panic, and never a silently accepted payload that differs from what
// Seal framed.
func FuzzCkptOpen(f *testing.F) {
	enc := NewEncoder()
	enc.Section("fuzz")
	enc.U64(42)
	enc.String("payload")
	sealed := Seal(enc.Payload())
	f.Add(sealed)
	f.Add(sealed[:len(sealed)-3])
	corrupt := bytes.Clone(sealed)
	corrupt[len(corrupt)/2] ^= 0x04
	f.Add(corrupt)
	f.Add([]byte(Magic))
	f.Add(Seal(nil))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := Open(data)
		if err != nil {
			return
		}
		// Accepted containers must round-trip exactly.
		if !bytes.Equal(Seal(payload), data) {
			t.Fatalf("accepted container does not re-seal to itself")
		}
		snap, err := OpenSnapshot(data)
		if err != nil {
			t.Fatalf("Open accepted what OpenSnapshot rejects: %v", err)
		}
		if snap.Len() != len(payload) {
			t.Fatalf("snapshot holds %d bytes, Open returned %d", snap.Len(), len(payload))
		}
	})
}
