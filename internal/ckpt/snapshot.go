package ckpt

// Snapshot is an in-memory checkpoint: the same payload a sealed
// STMSCKPT file carries, held as bytes so one simulation can fork
// another without a file round-trip. The sampling scheduler uses it to
// hand warmed simulator state to K window goroutines.
//
// A Snapshot is immutable after construction and safe for concurrent
// readers: Decoder returns a fresh Decoder per call, and Decoder reads
// never mutate the payload (Bytes copies out).
type Snapshot struct {
	payload []byte
}

// NewSnapshot captures an encoder's payload as an immutable in-memory
// snapshot. The payload is copied, so the encoder may be reused.
func NewSnapshot(e *Encoder) *Snapshot {
	p := make([]byte, len(e.Payload()))
	copy(p, e.Payload())
	return &Snapshot{payload: p}
}

// SnapshotOf wraps raw payload bytes (copying them) as a Snapshot.
func SnapshotOf(payload []byte) *Snapshot {
	p := make([]byte, len(payload))
	copy(p, payload)
	return &Snapshot{payload: p}
}

// Len returns the payload size in bytes.
func (s *Snapshot) Len() int { return len(s.payload) }

// Decoder returns a fresh decoder over the snapshot's payload. Each
// call starts from offset zero, so any number of goroutines can decode
// the same snapshot independently.
func (s *Snapshot) Decoder() *Decoder { return NewDecoder(s.payload) }

// Seal frames the snapshot as a complete STMSCKPT container, the same
// bytes WriteFile would persist.
func (s *Snapshot) Seal() []byte { return Seal(s.payload) }

// OpenSnapshot verifies a sealed container and wraps its payload as an
// in-memory snapshot.
func OpenSnapshot(data []byte) (*Snapshot, error) {
	payload, err := Open(data)
	if err != nil {
		return nil, err
	}
	return SnapshotOf(payload), nil
}
