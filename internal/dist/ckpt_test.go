package dist

// Checkpoint exchange at the wire level: workers checkpoint long jobs
// to their store, a drained worker flushes a final checkpoint and ends
// the stream with a terminal "checkpointed" event, coordinators move
// checkpoints by hand over GET/PUT /ckpts/{key}, and corruption is
// re-derived-or-discarded at every hop — a bad checkpoint can cost a
// cold restart, never a wrong result.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"stms/internal/ckpt"
	"stms/internal/sim"
)

func TestCkptWriteFetchPushResume(t *testing.T) {
	a := NewServer(ServerConfig{Name: "a", Store: NewStore(1<<30, ""), CheckpointEvery: 500})
	tsA := httptest.NewServer(a)
	defer tsA.Close()
	ca := NewClient(tsA.URL)

	h, err := ca.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !h.Resumable || h.Ckpts != 0 {
		t.Fatalf("health = %+v, want resumable with no checkpoints yet", h)
	}

	job := testJob(t, "sci-em3d", sim.PrefSpec{Kind: sim.STMS, SampleProb: 0.125})
	key, err := job.CkptKey()
	if err != nil {
		t.Fatal(err)
	}
	res, err := ca.RunJob(context.Background(), job, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resumed || res.CkptWrites == 0 || res.CkptBytes == 0 {
		t.Fatalf("result = resumed %v, writes %d, bytes %d; want a cold run that checkpointed",
			res.Resumed, res.CkptWrites, res.CkptBytes)
	}

	// Checkpoints survive job completion — "latest checkpoint per job
	// identity" is the store's contract — and travel over GET /ckpts.
	data, err := ca.FetchCkpt(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	d, err := sim.PeekCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	total := (job.Config.WarmRecords + job.Config.MeasureRecords) * uint64(job.Config.Cores)
	if d.Records == 0 || d.Records >= total {
		t.Fatalf("checkpoint at %d of %d records, want a mid-run snapshot", d.Records, total)
	}

	// Push it to an unrelated worker and run the same job there: the
	// worker resumes mid-run and the result is bit-identical to a cold
	// direct simulation.
	b := NewServer(ServerConfig{Name: "b", Store: NewStore(1<<30, "")})
	tsB := httptest.NewServer(b)
	defer tsB.Close()
	cb := NewClient(tsB.URL)
	if err := cb.PushCkpt(context.Background(), key, data); err != nil {
		t.Fatal(err)
	}
	resB, err := cb.RunJob(context.Background(), job, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !resB.Resumed {
		t.Fatal("worker with a pushed checkpoint did not resume")
	}
	want, err := sim.RunTimedCtx(context.Background(), job.Config, *job.Spec, job.Pref, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resB.Res, want) {
		t.Fatal("resumed result differs from cold direct simulation")
	}

	// A peer-wired worker finds A's checkpoint on its own.
	c := NewServer(ServerConfig{Name: "c", Store: NewStore(1<<30, ""), Peers: []string{tsA.URL}})
	tsC := httptest.NewServer(c)
	defer tsC.Close()
	cc := NewClient(tsC.URL)
	resC, err := cc.RunJob(context.Background(), job, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !resC.Resumed || !reflect.DeepEqual(resC.Res, want) {
		t.Fatalf("peer-checkpoint run: resumed %v, identical %v", resC.Resumed, reflect.DeepEqual(resC.Res, want))
	}
}

func TestDrainCheckpointsInProgressJob(t *testing.T) {
	srv := NewServer(ServerConfig{Name: "w", Store: NewStore(1<<30, ""), CheckpointEvery: 500})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL)

	// A job big enough to still be running when the drain lands; the
	// first progress event proves it is mid-run.
	job := testJob(t, "oltp-db2", sim.PrefSpec{Kind: sim.STMS, SampleProb: 0.125})
	job.Config.WarmRecords = 20_000
	job.Config.MeasureRecords = 200_000

	var once sync.Once
	var kinds []string
	_, err := c.RunJob(context.Background(), job, func(ev Event) {
		kinds = append(kinds, ev.Kind)
		if ev.Kind == "progress" {
			once.Do(srv.Drain)
		}
	})
	if !errors.Is(err, ErrWorkerCheckpointed) {
		t.Fatalf("drained run returned %v, want ErrWorkerCheckpointed", err)
	}
	if !IsTransport(err) {
		t.Fatal("a checkpointed job must look like a transport failure so the coordinator retries it warm")
	}
	if kinds[len(kinds)-1] != "checkpointed" {
		t.Fatalf("event stream %v, want a terminal checkpointed event", kinds)
	}

	// The flushed checkpoint is in the store and resumes elsewhere into
	// the exact cold-run result.
	key, err := job.CkptKey()
	if err != nil {
		t.Fatal(err)
	}
	data, err := c.FetchCkpt(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	b := NewServer(ServerConfig{Name: "b", Store: NewStore(1<<30, "")})
	tsB := httptest.NewServer(b)
	defer tsB.Close()
	cb := NewClient(tsB.URL)
	if err := cb.PushCkpt(context.Background(), key, data); err != nil {
		t.Fatal(err)
	}
	res, err := cb.RunJob(context.Background(), job, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.RunTimedCtx(context.Background(), job.Config, *job.Spec, job.Pref, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resumed || !reflect.DeepEqual(res.Res, want) {
		t.Fatalf("warm retry after drain: resumed %v, identical %v", res.Resumed, reflect.DeepEqual(res.Res, want))
	}
}

func TestCkptCorruptionDiscardedAtEveryTier(t *testing.T) {
	dir := t.TempDir()
	store := NewStore(1<<30, dir)
	srv := NewServer(ServerConfig{Name: "w", Store: store, CheckpointEvery: 500})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL)

	job := testJob(t, "sci-em3d", sim.PrefSpec{Kind: sim.None})
	key, err := job.CkptKey()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunJob(context.Background(), job, nil); err != nil {
		t.Fatal(err)
	}
	good, ok := store.GetCkpt(key)
	if !ok {
		t.Fatal("no checkpoint after a checkpointing run")
	}

	// PUT of a torn container is rejected with a deterministic 400.
	torn := append([]byte(nil), good...)
	torn[len(torn)-1] ^= 0xFF
	if err := c.PushCkpt(context.Background(), key, torn); err == nil || IsTransport(err) {
		t.Fatalf("corrupt push: %v, want a plain rejection", err)
	}

	// A checkpoint rotted on disk is discarded on read, not served: a
	// fresh store over the same directory 404s the fetch.
	files, err := filepath.Glob(filepath.Join(dir, "*"+ckptFileSuffix))
	if err != nil || len(files) == 0 {
		t.Fatalf("checkpoint files on disk: %v, %v", files, err)
	}
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(files[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	reopened := NewStore(1<<30, dir)
	srv2 := NewServer(ServerConfig{Name: "w2", Store: reopened})
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	c2 := NewClient(ts2.URL)
	if _, err := c2.FetchCkpt(context.Background(), key); err == nil || IsTransport(err) {
		t.Fatalf("rotted checkpoint fetch: %v, want a deterministic miss", err)
	}
	if st := reopened.Stats(); st.CkptSkips == 0 {
		t.Fatalf("store stats = %+v, want the rotted file counted as a skip", st)
	}

	// A worker that serves garbage bytes is caught by the client-side
	// verify and classified as transport (retry elsewhere).
	liar := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("not a checkpoint container"))
	}))
	defer liar.Close()
	if _, err := NewClient(liar.URL).FetchCkpt(context.Background(), key); err == nil || !IsTransport(err) {
		t.Fatalf("garbage fetch: %v, want a transport-class rejection", err)
	}

	// An unknown key 404s with a nearest-address hint, like tapes.
	typo := "0" + key[1:]
	if _, err := c.FetchCkpt(context.Background(), typo); err == nil ||
		!strings.Contains(err.Error(), "nearest") {
		t.Fatalf("typo fetch: %v, want a nearest-address hint", err)
	}
}

func TestExecuteJobResumeNeverTrusted(t *testing.T) {
	store := NewStore(1<<30, "")
	job := testJob(t, "sci-em3d", sim.PrefSpec{Kind: sim.STMS, SampleProb: 0.125})
	want, err := sim.RunTimedCtx(context.Background(), job.Config, *job.Spec, job.Pref, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Harvest a genuine checkpoint for the job.
	var snap []byte
	_, _, _, err = ExecuteJob(context.Background(), job, store, nil, nil, &ExecOptions{
		Every: 500,
		Sink:  func(data []byte) error { snap = data; return nil },
	})
	if err != nil || snap == nil {
		t.Fatalf("checkpointing run: err %v, snapshot %v", err, snap != nil)
	}

	// A checkpoint from a different prefetcher spec must not restore
	// into this job — mismatch means a cold run with exact results.
	other := testJob(t, "sci-em3d", sim.PrefSpec{Kind: sim.None})
	wantOther, err := sim.RunTimedCtx(context.Background(), other.Config, *other.Spec, other.Pref, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, _, resumed, err := ExecuteJob(context.Background(), other, store, nil, nil, &ExecOptions{Resume: snap})
	if err != nil {
		t.Fatal(err)
	}
	if resumed || !reflect.DeepEqual(res, wantOther) {
		t.Fatalf("mismatched resume: resumed %v, identical %v — a wrong-identity checkpoint restored", resumed, reflect.DeepEqual(res, wantOther))
	}

	// A well-sealed container holding garbage likewise falls back to a
	// from-scratch run, never wrong results.
	garbage := ckpt.Seal([]byte("plausible-looking nonsense payload"))
	res, _, resumed, err = ExecuteJob(context.Background(), job, store, nil, nil, &ExecOptions{Resume: garbage})
	if err != nil {
		t.Fatal(err)
	}
	if resumed || !reflect.DeepEqual(res, want) {
		t.Fatalf("garbage resume: resumed %v, identical %v", resumed, reflect.DeepEqual(res, want))
	}

	// The genuine checkpoint, for contrast, resumes bit-identically.
	res, _, resumed, err = ExecuteJob(context.Background(), job, store, nil, nil, &ExecOptions{Resume: snap})
	if err != nil {
		t.Fatal(err)
	}
	if !resumed || !reflect.DeepEqual(res, want) {
		t.Fatalf("genuine resume: resumed %v, identical %v", resumed, reflect.DeepEqual(res, want))
	}
}
