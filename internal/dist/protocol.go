// Package dist is the distributed lab: it lets a pool of stms-serve
// worker processes execute run-matrix cells on behalf of a
// coordinator, over a content-addressed store of materialized trace
// tapes.
//
// The package decomposes into four pieces:
//
//   - the wire protocol (this file): versioned JSON structures for
//     cell jobs, streamed progress events, and results. A job is the
//     serialized identity of one lab cell — workload spec or scenario,
//     prefetcher variant, system config, driver mode — and cells are
//     pure functions of that identity, so remote execution is
//     memoization over the network: any worker, any time, same bits.
//   - Store: a two-tier (memory LRU → on-disk STMSTAPE directory)
//     content-addressed tape store, singleflight-guarded, shared by
//     the lab's in-process tape cache and every worker.
//   - Server: the worker daemon's HTTP API — POST /jobs streams
//     progress and the final result as JSON lines, GET/PUT
//     /tapes/{key} move tapes between workers so each unique tape is
//     built once fleet-wide, GET /healthz advertises capacity.
//   - Client: the coordinator's view of one worker, separating
//     transport failures (retry on another worker) from job failures
//     (deterministic; retrying elsewhere would fail identically).
//
// Every simulation a worker runs goes through the same internal/sim
// entry points the in-process lab uses, so a matrix executed across
// workers is bit-identical to the same plan run locally.
package dist

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"

	"stms/internal/sim"
	"stms/internal/trace"
)

// Protocol format versions, stamped into and validated out of every
// top-level JSON document, in the same style as scenario files
// ({"stms_scenario":1,...}) and STMSTAPE headers.
const (
	JobFormatVersion    = 1
	EventFormatVersion  = 1
	ResultFormatVersion = 1
	HealthFormatVersion = 1
)

// Job is one cell of work: everything that determines a simulation's
// result, in versioned JSON. Exactly one of Spec and Scenario is set;
// Spec is full-scale (Config.Scale applies at run, exactly as in an
// in-process lab cell) and Scenario holds the scenario's own versioned
// JSON document.
type Job struct {
	Version  int             `json:"stms_job"`
	Mode     string          `json:"mode"` // "timed" | "functional"
	Workload string          `json:"workload"`
	Variant  string          `json:"variant"`
	Spec     *trace.Spec     `json:"spec,omitempty"`
	Scenario json.RawMessage `json:"scenario,omitempty"`
	Config   sim.Config      `json:"config"`
	Pref     sim.PrefSpec    `json:"pref"`
}

// Validate reports structural protocol errors (the simulation-level
// validation of config and spec happens when the job executes).
func (j *Job) Validate() error {
	switch {
	case j.Version != JobFormatVersion:
		return fmt.Errorf("dist: job format version %d, want %d", j.Version, JobFormatVersion)
	case j.Mode != "timed" && j.Mode != "functional":
		return fmt.Errorf("dist: job mode %q is neither \"timed\" nor \"functional\"", j.Mode)
	case j.Spec == nil && len(j.Scenario) == 0:
		return fmt.Errorf("dist: job carries neither a spec nor a scenario")
	case j.Spec != nil && len(j.Scenario) > 0:
		return fmt.Errorf("dist: job carries both a spec and a scenario")
	}
	return nil
}

// scenario parses the job's scenario document, if any.
func (j *Job) scenario() (*trace.Scenario, error) {
	if len(j.Scenario) == 0 {
		return nil, nil
	}
	s, err := trace.ParseScenario(bytes.NewReader(j.Scenario))
	if err != nil {
		return nil, err
	}
	return &s, nil
}

// CkptKey returns the content address of the job's checkpoint: the hex
// digest of the full job identity — trace identity (TapeKey) plus mode
// and the complete prefetcher spec. Unlike tapes, a checkpoint is only
// meaningful to the exact job that wrote it (the serialized state
// embeds the variant's tables and in-flight operations), so the
// prefetcher spec is part of the address. One key names one job's
// "latest checkpoint": each cadence overwrites the previous container.
func (j *Job) CkptKey() (string, error) {
	tk, err := j.TapeKey()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256([]byte(fmt.Sprintf("ckpt|tape=%s|mode=%s|pref=%s", tk, j.Mode, prefString(j.Pref))))
	return hex.EncodeToString(sum[:]), nil
}

// prefString renders the complete prefetcher spec for CkptKey,
// dereferencing the optional config pointers so two specs differing
// only behind a pointer hash differently.
func prefString(ps sim.PrefSpec) string {
	scfg, ecfg := "", ""
	if ps.STMSCfg != nil {
		scfg = fmt.Sprintf("%+v", *ps.STMSCfg)
	}
	if ps.Engine != nil {
		ecfg = fmt.Sprintf("%+v", *ps.Engine)
	}
	return fmt.Sprintf("k=%d|d=%d|h=%d|i=%d|p=%g|s=%s|e=%s",
		ps.Kind, ps.MaxDepth, ps.HistoryEntries, ps.IndexEntries, ps.SampleProb, scfg, ecfg)
}

// TapeKey returns the content address of the job's trace identity: the
// hex digest of (scaled spec or scenario, seed, cores, per-core record
// budget) — everything that determines the materialized tape, and
// nothing that doesn't (the prefetcher variant, for one, so every
// variant column of a matrix row shares a key). Coordinator and worker
// compute it independently and must agree; it names tapes in every
// store tier and routes cells to workers by affinity.
func (j *Job) TapeKey() (string, error) {
	scnKey := ""
	spec := trace.Spec{}
	if scn, err := j.scenario(); err != nil {
		return "", err
	} else if scn != nil {
		scnKey = scn.Scaled(j.Config.Scale).Key()
	} else {
		spec = j.Spec.Scaled(j.Config.Scale)
	}
	return TapeKey(spec, scnKey, j.Config.Seed, j.Config.Cores,
		j.Config.WarmRecords+j.Config.MeasureRecords), nil
}

// TapeKey computes the content address of a trace identity. Exactly
// one of spec (already scaled) and scenarioKey (a scaled
// Scenario.Key) is meaningful; the other is its zero value.
func TapeKey(spec trace.Spec, scenarioKey string, seed uint64, cores int, perCore uint64) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("spec=%+v|scn=%s|seed=%d|cores=%d|per=%d",
		spec, scenarioKey, seed, cores, perCore)))
	return hex.EncodeToString(sum[:])
}

// tapeKeyOf recomputes the content address of a materialized tape from
// the identity it carries — the receiving tier of every tape transfer
// (disk load, PUT /tapes) verifies the address instead of trusting the
// name it arrived under.
func tapeKeyOf(t *trace.Tape) string {
	scnKey := ""
	spec := trace.Spec{}
	if scn := t.Scenario(); scn != nil {
		scnKey = scn.Key()
	} else {
		spec = t.Spec()
	}
	return TapeKey(spec, scnKey, t.Seed(), t.Cores(), t.PerCore())
}

// TapeSource records which tier satisfied a job's tape: the worker's
// memory cache, its disk tier, a peer worker, a fresh build, or "live"
// when the worker runs without a store and generates records in place.
type TapeSource string

// Tape sources, in lookup order.
const (
	TapeFromMemory TapeSource = "memory"
	TapeFromDisk   TapeSource = "disk"
	TapeFromPeer   TapeSource = "peer"
	TapeBuilt      TapeSource = "built"
	TapeLive       TapeSource = "live"
)

// Result is a completed job: the full simulation Results (which
// round-trip JSON losslessly, so the coordinator's matrix is
// bit-identical to an in-process run) plus execution metadata.
type Result struct {
	Version    int         `json:"stms_result"`
	Res        sim.Results `json:"results"`
	TapeSource TapeSource  `json:"tape_source"`
	Worker     string      `json:"worker,omitempty"`
	WallMS     float64     `json:"wall_ms"`
	// Checkpoint accounting (additive in result version 1; absent on
	// workers without checkpointing). Resumed reports that the worker
	// restored the run from a checkpoint instead of starting cold;
	// CkptWrites/CkptBytes count the checkpoints the run itself wrote.
	Resumed    bool   `json:"resumed,omitempty"`
	CkptWrites uint64 `json:"ckpt_writes,omitempty"`
	CkptBytes  uint64 `json:"ckpt_bytes,omitempty"`
}

// Event is one line of a job's progress stream. Kind is "queued" (a
// heartbeat while the job waits for an execution slot), "started",
// "progress" (Done/Total records processed), "done" (Result set),
// "failed" (Error set), or "checkpointed" (the worker is shutting down
// gracefully and flushed the job's final checkpoint to its store; the
// coordinator should fetch it and retry warm on another worker).
// Consumers ignore kinds they don't know, so new heartbeat kinds are
// not a protocol break; any event resets the client's stall detector.
type Event struct {
	Version int     `json:"stms_event"`
	Kind    string  `json:"event"`
	JobID   string  `json:"job_id,omitempty"`
	Done    uint64  `json:"done,omitempty"`
	Total   uint64  `json:"total,omitempty"`
	Result  *Result `json:"result,omitempty"`
	Error   string  `json:"error,omitempty"`
}

// Health is the worker's GET /healthz document. Resumable and Ckpts
// are additive fields (version stays 1 so old coordinators keep
// working): a resumable worker checkpoints long jobs to its store and
// serves them over GET/PUT /ckpts/{key}.
type Health struct {
	Version   int    `json:"stms_worker"`
	Name      string `json:"name"`
	Cores     int    `json:"cores"`
	MaxJobs   int    `json:"max_jobs"`
	InFlight  int    `json:"in_flight"`
	Tapes     int    `json:"tapes"`               // tapes resident in the memory tier
	Resumable bool   `json:"resumable,omitempty"` // worker checkpoints jobs and serves /ckpts
	Ckpts     int    `json:"ckpts,omitempty"`     // checkpoints resident in the store
}

// ErrWorkerCheckpointed marks a job stream that ended with a
// "checkpointed" terminal event: the worker shut down gracefully after
// flushing the job's final checkpoint. It is wrapped in a
// TransportError — retrying on another worker helps, and with the
// checkpoint exchanged first the retry resumes warm instead of cold.
var ErrWorkerCheckpointed = errors.New("dist: worker checkpointed the job and shut down")

// TransportError marks failures of the transport — connection refused,
// unexpected HTTP status, a response stream cut mid-job — as opposed
// to failures of the job itself. Transport failures are retried on
// another worker; job failures are deterministic and are not.
type TransportError struct{ Err error }

// Error implements error.
func (e *TransportError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying failure.
func (e *TransportError) Unwrap() error { return e.Err }

// IsTransport reports whether err (anywhere in its chain) is a
// transport failure, i.e. whether retrying on another worker can help.
func IsTransport(err error) bool {
	for err != nil {
		if _, ok := err.(*TransportError); ok {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
