package dist

import (
	"context"

	"stms/internal/sim"
	"stms/internal/trace"
)

// ExecuteJob runs one cell job to completion, serving its record
// stream from the store when one is given (fetch, usually a peer
// lookup, feeds the store's miss path). The execution mirrors the
// in-process lab's cell path exactly — same validation order, same
// scaled identities, same sim entry points — which is what makes a
// remotely executed matrix bit-identical to a local run.
func ExecuteJob(ctx context.Context, job *Job, store *Store,
	fetch func(context.Context, string) (*trace.Tape, error), progress sim.Progress) (sim.Results, TapeSource, error) {
	if err := job.Validate(); err != nil {
		return sim.Results{}, TapeLive, err
	}
	scn, err := job.scenario()
	if err != nil {
		return sim.Results{}, TapeLive, err
	}
	cfg := job.Config
	functional := job.Mode == "functional"

	if store == nil {
		// Live generation, exactly as a lab with tape caching disabled.
		var res sim.Results
		switch {
		case scn != nil && functional:
			res, err = sim.RunFunctionalScenarioCtx(ctx, cfg, *scn, job.Pref, progress)
		case scn != nil:
			res, err = sim.RunTimedScenarioCtx(ctx, cfg, *scn, job.Pref, progress)
		case functional:
			res, err = sim.RunFunctionalCtx(ctx, cfg, *job.Spec, job.Pref, progress)
		default:
			res, err = sim.RunTimedCtx(ctx, cfg, *job.Spec, job.Pref, progress)
		}
		return res, TapeLive, err
	}

	// Validate before touching the store — the sim entry points
	// validate again, but only after the tape exists, and a job with a
	// broken config must not cost a tape build.
	if err := cfg.Validate(); err != nil {
		return sim.Results{}, TapeLive, err
	}
	seed, cores, perCore := cfg.Seed, cfg.Cores, cfg.WarmRecords+cfg.MeasureRecords
	var key string
	var build func() *trace.Tape
	if scn != nil {
		scaled := scn.Scaled(cfg.Scale)
		key = TapeKey(trace.Spec{}, scaled.Key(), seed, cores, perCore)
		build = func() *trace.Tape { return trace.NewScenarioTape(scaled, seed, cores, perCore) }
	} else {
		scaled := job.Spec.Scaled(cfg.Scale)
		key = TapeKey(scaled, "", seed, cores, perCore)
		build = func() *trace.Tape { return trace.NewTape(scaled, seed, cores, perCore) }
	}
	var fetchKey func(context.Context) (*trace.Tape, error)
	if fetch != nil {
		fetchKey = func(ctx context.Context) (*trace.Tape, error) { return fetch(ctx, key) }
	}
	tape, src, err := store.GetOrBuild(ctx, key, fetchKey, build)
	if err != nil {
		return sim.Results{}, src, err
	}
	var res sim.Results
	if functional {
		res, err = sim.RunFunctionalTapeCtx(ctx, cfg, tape, job.Pref, progress)
	} else {
		res, err = sim.RunTimedTapeCtx(ctx, cfg, tape, job.Pref, progress)
	}
	return res, src, err
}
