package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"stms/internal/sim"
	"stms/internal/trace"
)

// ExecOptions configures checkpointing for one job execution. The zero
// value (or a nil pointer) runs the job plain, exactly as before
// checkpoints existed.
type ExecOptions struct {
	// Resume is a sealed STMSCKPT container to restore the run from.
	// It is validated against the job's full identity (mode, config,
	// complete prefetcher spec, trace identity) before it is trusted;
	// a mismatched or corrupt container is discarded and the job runs
	// from scratch — a bad checkpoint can cost time, never correctness.
	Resume []byte
	// Every is the checkpoint cadence in trace records across all
	// cores; 0 writes no periodic checkpoints.
	Every uint64
	// Sink receives each sealed checkpoint container. Required for
	// checkpointing: without it Every and Stop are ignored.
	Sink func(data []byte) error
	// Stop, when closed, requests a final checkpoint followed by a
	// halt with sim.ErrCheckpointed — the graceful-shutdown path.
	Stop <-chan struct{}
}

// active reports whether this execution should request checkpoints.
// Non-checkpointable variants (comparators, index-organization
// ablations) run plain rather than failing: a worker with a checkpoint
// cadence must still execute every job the protocol allows.
func (o *ExecOptions) active(job *Job) bool {
	if o == nil || o.Sink == nil || (o.Every == 0 && o.Stop == nil) {
		return false
	}
	return sim.CheckpointablePref(job.Pref)
}

// runOptions assembles the sim run options for this execution.
func (o *ExecOptions) runOptions(job *Job) []sim.RunOption {
	if !o.active(job) {
		return nil
	}
	opts := []sim.RunOption{sim.WithCheckpointFunc(o.Every, o.Sink)}
	if o.Stop != nil {
		opts = append(opts, sim.WithCheckpointSignal(o.Stop))
	}
	return opts
}

// resumeMatches validates a checkpoint descriptor against the job it
// is about to resume. The container's checksum has already been
// verified by the store tiers; this checks identity — mode, full
// config, the complete prefetcher spec (not just its kind: a
// checkpoint from a different sampling probability or engine geometry
// would restore cleanly and then produce wrong results), and the trace
// source the run will rebuild.
func resumeMatches(d sim.CheckpointDesc, job *Job, scn *trace.Scenario, tape *trace.Tape) error {
	if d.Mode != job.Mode {
		return fmt.Errorf("dist: checkpoint is a %s-mode run, job is %s", d.Mode, job.Mode)
	}
	if d.Cfg != job.Config {
		return fmt.Errorf("dist: checkpoint configuration does not match the job's")
	}
	dps, err1 := json.Marshal(d.PS)
	jps, err2 := json.Marshal(job.Pref)
	if err1 != nil || err2 != nil || !bytes.Equal(dps, jps) {
		return fmt.Errorf("dist: checkpoint prefetcher spec does not match the job's")
	}
	switch {
	case tape != nil:
		if d.Source != "tape" {
			return fmt.Errorf("dist: checkpoint source %q, job runs from a tape", d.Source)
		}
		if d.Spec == nil || fmt.Sprintf("%+v", *d.Spec) != fmt.Sprintf("%+v", tape.Spec()) {
			return fmt.Errorf("dist: checkpoint trace identity does not match the job's tape")
		}
	case scn != nil:
		if d.Source != "scenario" || d.Scenario == nil {
			return fmt.Errorf("dist: checkpoint source %q, job runs a scenario", d.Source)
		}
		sc := job.Config.Scale
		if d.Scenario.Scaled(sc).Key() != scn.Scaled(sc).Key() {
			return fmt.Errorf("dist: checkpoint scenario does not match the job's")
		}
	default:
		if d.Source != "spec" || d.Spec == nil {
			return fmt.Errorf("dist: checkpoint source %q, job runs a spec", d.Source)
		}
		if fmt.Sprintf("%+v", *d.Spec) != fmt.Sprintf("%+v", *job.Spec) {
			return fmt.Errorf("dist: checkpoint spec does not match the job's")
		}
	}
	return nil
}

// ExecuteJob runs one cell job to completion, serving its record
// stream from the store when one is given (fetch, usually a peer
// lookup, feeds the store's miss path). The execution mirrors the
// in-process lab's cell path exactly — same validation order, same
// scaled identities, same sim entry points — which is what makes a
// remotely executed matrix bit-identical to a local run.
//
// exec (nil for a plain run) threads checkpointing through: a
// validated ExecOptions.Resume warm-starts the run (resumed reports
// whether it actually did — an invalid checkpoint is discarded, never
// trusted), Every/Sink stream periodic checkpoints out, and Stop
// requests a final checkpoint + sim.ErrCheckpointed for graceful
// shutdown. Because checkpoints are pure observation, results are
// bit-identical with or without them, resumed or cold.
func ExecuteJob(ctx context.Context, job *Job, store *Store,
	fetch func(context.Context, string) (*trace.Tape, error), progress sim.Progress,
	exec *ExecOptions) (sim.Results, TapeSource, bool, error) {
	if err := job.Validate(); err != nil {
		return sim.Results{}, TapeLive, false, err
	}
	scn, err := job.scenario()
	if err != nil {
		return sim.Results{}, TapeLive, false, err
	}
	cfg := job.Config
	functional := job.Mode == "functional"

	var src TapeSource = TapeLive
	var tape *trace.Tape
	if store != nil {
		// Validate before touching the store — the sim entry points
		// validate again, but only after the tape exists, and a job with a
		// broken config must not cost a tape build.
		if err := cfg.Validate(); err != nil {
			return sim.Results{}, TapeLive, false, err
		}
		seed, cores, perCore := cfg.Seed, cfg.Cores, cfg.WarmRecords+cfg.MeasureRecords
		var key string
		var build func() *trace.Tape
		if scn != nil {
			scaled := scn.Scaled(cfg.Scale)
			key = TapeKey(trace.Spec{}, scaled.Key(), seed, cores, perCore)
			build = func() *trace.Tape { return trace.NewScenarioTape(scaled, seed, cores, perCore) }
		} else {
			scaled := job.Spec.Scaled(cfg.Scale)
			key = TapeKey(scaled, "", seed, cores, perCore)
			build = func() *trace.Tape { return trace.NewTape(scaled, seed, cores, perCore) }
		}
		var fetchKey func(context.Context) (*trace.Tape, error)
		if fetch != nil {
			fetchKey = func(ctx context.Context) (*trace.Tape, error) { return fetch(ctx, key) }
		}
		tape, src, err = store.GetOrBuild(ctx, key, fetchKey, build)
		if err != nil {
			return sim.Results{}, src, false, err
		}
	}

	run := func(opts []sim.RunOption) (sim.Results, error) {
		switch {
		case tape != nil && functional:
			return sim.RunFunctionalTapeCtx(ctx, cfg, tape, job.Pref, progress, opts...)
		case tape != nil:
			return sim.RunTimedTapeCtx(ctx, cfg, tape, job.Pref, progress, opts...)
		case scn != nil && functional:
			return sim.RunFunctionalScenarioCtx(ctx, cfg, *scn, job.Pref, progress, opts...)
		case scn != nil:
			return sim.RunTimedScenarioCtx(ctx, cfg, *scn, job.Pref, progress, opts...)
		case functional:
			return sim.RunFunctionalCtx(ctx, cfg, *job.Spec, job.Pref, progress, opts...)
		default:
			return sim.RunTimedCtx(ctx, cfg, *job.Spec, job.Pref, progress, opts...)
		}
	}

	base := exec.runOptions(job)
	if exec != nil && len(exec.Resume) > 0 && sim.CheckpointablePref(job.Pref) {
		if d, err := sim.PeekCheckpoint(exec.Resume); err == nil && resumeMatches(d, job, scn, tape) == nil {
			res, err := run(append(append([]sim.RunOption{}, base...), sim.WithResume(exec.Resume)))
			switch {
			case err == nil:
				return res, src, true, nil
			case errors.Is(err, sim.ErrCheckpointed) || ctx.Err() != nil:
				return res, src, true, err
			}
			// The container verified but would not restore (or the
			// descriptor lied about state the restore checks catch):
			// discard it and fall through to a cold run.
		}
	}
	res, err := run(base)
	return res, src, false, err
}
