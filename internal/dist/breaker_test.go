package dist

import (
	"testing"
	"time"
)

// Breaker tests drive the state machine with synthetic clocks — Gate
// and Failure take explicit times, so no test sleeps.

func TestBreakerTripProbeRecover(t *testing.T) {
	t0 := time.Unix(1000, 0)
	b := NewBreaker(2, 50*time.Millisecond)

	if g := b.Gate(t0); g != BreakerProceed {
		t.Fatalf("fresh breaker gate = %v, want proceed", g)
	}
	if b.Failure(t0) {
		t.Fatal("first failure tripped a breaker configured for 2")
	}
	if !b.Failure(t0) {
		t.Fatal("second consecutive failure did not trip")
	}
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state after trip = %v, want open", st)
	}
	if n := b.Trips(); n != 1 {
		t.Fatalf("trips = %d, want 1", n)
	}

	// Cooling down: attempts skip.
	if g := b.Gate(t0.Add(10 * time.Millisecond)); g != BreakerSkip {
		t.Fatalf("gate during cooldown = %v, want skip", g)
	}
	// Cooldown elapsed: exactly one caller gets the probe, others skip.
	t1 := t0.Add(60 * time.Millisecond)
	if g := b.Gate(t1); g != BreakerProbe {
		t.Fatalf("gate after cooldown = %v, want probe", g)
	}
	if g := b.Gate(t1); g != BreakerSkip {
		t.Fatalf("concurrent gate during probe = %v, want skip", g)
	}

	// A failed probe re-trips and restarts the cooldown.
	if !b.Failure(t1) {
		t.Fatal("failed half-open probe did not re-trip")
	}
	if n := b.Trips(); n != 2 {
		t.Fatalf("trips after failed probe = %d, want 2", n)
	}
	if g := b.Gate(t1.Add(10 * time.Millisecond)); g != BreakerSkip {
		t.Fatalf("gate right after re-trip = %v, want skip", g)
	}

	// A successful probe closes the breaker; the worker rejoins.
	t2 := t1.Add(60 * time.Millisecond)
	if g := b.Gate(t2); g != BreakerProbe {
		t.Fatalf("gate after second cooldown = %v, want probe", g)
	}
	b.Success()
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", st)
	}
	if g := b.Gate(t2); g != BreakerProceed {
		t.Fatalf("gate after recovery = %v, want proceed", g)
	}
	// The failure streak reset with the success.
	if b.Failure(t2) {
		t.Fatal("single failure after recovery tripped the breaker")
	}
}

func TestBreakerOpenFailuresDontExtendCooldown(t *testing.T) {
	t0 := time.Unix(2000, 0)
	b := NewBreaker(1, 50*time.Millisecond)
	if !b.Failure(t0) {
		t.Fatal("breaker configured for 1 did not trip on first failure")
	}
	// In-flight attempts that fail while the breaker is already open
	// neither re-trip nor push the cooldown out.
	if b.Failure(t0.Add(40 * time.Millisecond)) {
		t.Fatal("failure while open reported a trip")
	}
	if n := b.Trips(); n != 1 {
		t.Fatalf("trips = %d, want 1", n)
	}
	if g := b.Gate(t0.Add(55 * time.Millisecond)); g != BreakerProbe {
		t.Fatalf("gate at original cooldown expiry = %v, want probe", g)
	}
}

func TestBreakerDefaults(t *testing.T) {
	b := NewBreaker(0, 0)
	t0 := time.Unix(3000, 0)
	b.Failure(t0)
	b.Failure(t0)
	if b.State() != BreakerClosed {
		t.Fatal("breaker tripped before the default 3 failures")
	}
	if !b.Failure(t0) {
		t.Fatal("third failure did not trip the default breaker")
	}
	if g := b.Gate(t0.Add(9 * time.Second)); g != BreakerSkip {
		t.Fatalf("gate before default 10s cooldown = %v, want skip", g)
	}
	if g := b.Gate(t0.Add(11 * time.Second)); g != BreakerProbe {
		t.Fatalf("gate after default cooldown = %v, want probe", g)
	}
}
