package dist

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"stms/internal/sim"
	"stms/internal/trace"
)

// testJob builds a small timed job over a named workload.
func testJob(t *testing.T, workload string, pref sim.PrefSpec) *Job {
	t.Helper()
	spec, err := trace.ByName(workload)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	cfg.Scale = 0.0625
	cfg.Seed = 11
	cfg.WarmRecords = 500
	cfg.MeasureRecords = 1_000
	return &Job{
		Version:  JobFormatVersion,
		Mode:     "timed",
		Workload: workload,
		Variant:  "test",
		Spec:     &spec,
		Config:   cfg,
		Pref:     pref,
	}
}

func TestJobValidate(t *testing.T) {
	good := testJob(t, "sci-em3d", sim.PrefSpec{Kind: sim.None})
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *good
	bad.Version = 2
	if err := bad.Validate(); err == nil {
		t.Error("wrong version accepted")
	}
	bad = *good
	bad.Mode = "cycle-accurate"
	if err := bad.Validate(); err == nil {
		t.Error("unknown mode accepted")
	}
	bad = *good
	bad.Spec = nil
	if err := bad.Validate(); err == nil {
		t.Error("job with no workload accepted")
	}
	bad = *good
	bad.Scenario = json.RawMessage(`{}`)
	if err := bad.Validate(); err == nil {
		t.Error("job with both spec and scenario accepted")
	}
}

func TestJobJSONRoundTrip(t *testing.T) {
	job := testJob(t, "oltp-db2", sim.PrefSpec{Kind: sim.STMS, SampleProb: 0.125})
	b, err := json.Marshal(job)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"stms_job":1`) {
		t.Fatalf("job document not versioned: %s", b)
	}
	var back Job
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(job, &back) {
		t.Fatalf("job not identical after round trip:\n got %+v\nwant %+v", back, job)
	}
	k1, err := job.TapeKey()
	if err != nil {
		t.Fatal(err)
	}
	k2, err := back.TapeKey()
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("tape address changed across the wire: %s vs %s", k1, k2)
	}
}

func TestServerRunJobMatchesDirectSim(t *testing.T) {
	srv := NewServer(ServerConfig{Name: "w1", Store: NewStore(1<<30, "")})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL)

	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Name != "w1" || h.Version != HealthFormatVersion {
		t.Fatalf("health = %+v", h)
	}

	job := testJob(t, "sci-em3d", sim.PrefSpec{Kind: sim.STMS, SampleProb: 0.125})
	var kinds []string
	res, err := c.RunJob(context.Background(), job, func(ev Event) {
		kinds = append(kinds, ev.Kind)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Worker != "w1" || res.TapeSource != TapeBuilt {
		t.Fatalf("result meta = worker %q, source %q", res.Worker, res.TapeSource)
	}
	if kinds[0] != "started" || kinds[len(kinds)-1] != "done" {
		t.Fatalf("event stream %v", kinds)
	}

	// The remote result is bit-identical to running the same cell
	// through the sim entry points directly.
	want, err := sim.RunTimedCtx(context.Background(), job.Config, *job.Spec, job.Pref, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Res, want) {
		t.Fatalf("remote result differs from direct simulation:\n got %+v\nwant %+v", res.Res, want)
	}

	// A second run of the same job is a memory-tier tape hit.
	res2, err := c.RunJob(context.Background(), job, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.TapeSource != TapeFromMemory {
		t.Fatalf("second run tape source = %q, want memory", res2.TapeSource)
	}
	if !reflect.DeepEqual(res2.Res, want) {
		t.Fatal("taped rerun differs from live result")
	}
}

func TestServerScenarioJob(t *testing.T) {
	srv := NewServer(ServerConfig{Store: NewStore(1<<30, "")})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL)

	spec, err := trace.ByName("web-apache")
	if err != nil {
		t.Fatal(err)
	}
	scn := trace.Stationary("station", spec)
	scnJSON, err := json.Marshal(scn)
	if err != nil {
		t.Fatal(err)
	}
	job := testJob(t, "web-apache", sim.PrefSpec{Kind: sim.Ideal})
	job.Spec = nil
	job.Scenario = scnJSON
	res, err := c.RunJob(context.Background(), job, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.RunTimedScenarioCtx(context.Background(), job.Config, scn, job.Pref, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Res, want) {
		t.Fatal("remote scenario result differs from direct simulation")
	}
}

func TestServerJobFailureIsNotTransport(t *testing.T) {
	srv := NewServer(ServerConfig{Store: NewStore(1<<30, "")})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL)

	job := testJob(t, "sci-em3d", sim.PrefSpec{Kind: sim.None})
	job.Config.Cores = -4 // deterministic config failure
	_, err := c.RunJob(context.Background(), job, nil)
	if err == nil {
		t.Fatal("broken config succeeded")
	}
	if IsTransport(err) {
		t.Fatalf("deterministic job failure classified as transport: %v", err)
	}

	// A structurally invalid job is rejected with 400, also non-transport.
	bad := testJob(t, "sci-em3d", sim.PrefSpec{Kind: sim.None})
	bad.Mode = "warp"
	_, err = c.RunJob(context.Background(), bad, nil)
	if err == nil || IsTransport(err) {
		t.Fatalf("protocol rejection should be a plain error, got %v", err)
	}

	// An unreachable worker is transport.
	dead := NewClient("http://127.0.0.1:1")
	_, err = dead.RunJob(context.Background(), job, nil)
	if !IsTransport(err) {
		t.Fatalf("connection failure not classified as transport: %v", err)
	}
	if _, err := dead.Health(context.Background()); !IsTransport(err) {
		t.Fatalf("health failure not classified as transport: %v", err)
	}
}

func TestServerTapeExchange(t *testing.T) {
	// Worker A builds a tape; worker B (with A as peer) must fetch it
	// rather than rebuild, and a coordinator can move tapes by hand via
	// GET/PUT.
	a := NewServer(ServerConfig{Name: "a", Store: NewStore(1<<30, "")})
	tsA := httptest.NewServer(a)
	defer tsA.Close()
	b := NewServer(ServerConfig{Name: "b", Store: NewStore(1<<30, ""), Peers: []string{tsA.URL}})
	tsB := httptest.NewServer(b)
	defer tsB.Close()

	job := testJob(t, "oltp-db2", sim.PrefSpec{Kind: sim.None})
	ca, cb := NewClient(tsA.URL), NewClient(tsB.URL)
	resA, err := ca.RunJob(context.Background(), job, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resA.TapeSource != TapeBuilt {
		t.Fatalf("first execution tape source = %q", resA.TapeSource)
	}
	resB, err := cb.RunJob(context.Background(), job, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resB.TapeSource != TapeFromPeer {
		t.Fatalf("peer execution tape source = %q, want peer", resB.TapeSource)
	}
	if !reflect.DeepEqual(resA.Res, resB.Res) {
		t.Fatal("peer-taped result differs")
	}
	if st := b.Store().Stats(); st.PeerHits != 1 || st.Builds != 0 {
		t.Fatalf("worker b stats = %+v, want pure peer hit", st)
	}

	// Manual tape movement: fetch from A, push to a third store-backed
	// worker, and watch it serve the job without building.
	key, err := job.TapeKey()
	if err != nil {
		t.Fatal(err)
	}
	tape, err := ca.FetchTape(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	cSrv := NewServer(ServerConfig{Name: "c", Store: NewStore(1<<30, "")})
	tsC := httptest.NewServer(cSrv)
	defer tsC.Close()
	cc := NewClient(tsC.URL)
	if err := cc.PushTape(context.Background(), key, tape); err != nil {
		t.Fatal(err)
	}
	resC, err := cc.RunJob(context.Background(), job, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resC.TapeSource != TapeFromMemory {
		t.Fatalf("pushed-tape execution source = %q, want memory", resC.TapeSource)
	}

	// Pushing under a wrong address is rejected (content addressing).
	if err := cc.PushTape(context.Background(), strings.Repeat("0", 64), tape); err == nil || IsTransport(err) {
		t.Fatalf("mis-addressed push: %v", err)
	}
}

func TestServerUnknownIDSuggestions(t *testing.T) {
	srv := NewServer(ServerConfig{Name: "w", Store: NewStore(1<<30, "")})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL)

	job := testJob(t, "sci-em3d", sim.PrefSpec{Kind: sim.None})
	if _, err := c.RunJob(context.Background(), job, nil); err != nil {
		t.Fatal(err)
	}

	// GET /jobs/{typo} suggests the real id.
	resp, err := ts.Client().Get(ts.URL + "/jobs/job-11")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf [512]byte
	n, _ := resp.Body.Read(buf[:])
	body := string(buf[:n])
	if resp.StatusCode != 404 || !strings.Contains(body, `"job-1"`) {
		t.Fatalf("status %d body %q, want 404 with a job-1 suggestion", resp.StatusCode, body)
	}

	// GET /tapes/{near-miss} names the nearest resident address.
	key, err := job.TapeKey()
	if err != nil {
		t.Fatal(err)
	}
	typo := "0" + key[1:]
	resp2, err := ts.Client().Get(ts.URL + "/tapes/" + typo)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	n, _ = resp2.Body.Read(buf[:])
	body = string(buf[:n])
	if resp2.StatusCode != 404 || !strings.Contains(body, "nearest resident address") {
		t.Fatalf("status %d body %q, want 404 with nearest-address hint", resp2.StatusCode, body)
	}
}

func TestServerLiveModeWithoutStore(t *testing.T) {
	srv := NewServer(ServerConfig{Name: "live"})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL)

	job := testJob(t, "sci-em3d", sim.PrefSpec{Kind: sim.None})
	res, err := c.RunJob(context.Background(), job, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.TapeSource != TapeLive {
		t.Fatalf("storeless worker tape source = %q, want live", res.TapeSource)
	}
	want, err := sim.RunTimedCtx(context.Background(), job.Config, *job.Spec, job.Pref, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Res, want) {
		t.Fatal("live worker result differs from direct simulation")
	}
}

func TestResultJSONRoundTrip(t *testing.T) {
	job := testJob(t, "sci-em3d", sim.PrefSpec{Kind: sim.STMS, SampleProb: 0.125})
	res, err := sim.RunTimedCtx(context.Background(), job.Config, *job.Spec, job.Pref, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := Result{Version: ResultFormatVersion, Res: res, TapeSource: TapeBuilt, Worker: "w", WallMS: 1.5}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, back) {
		t.Fatalf("result not identical after round trip:\n got %+v\nwant %+v", back, r)
	}
}
