package dist

// The content-addressed tape store. The lab's original in-memory
// singleflight cache (internal/lab/tapecache.go) is promoted here into
// a two-tier store shared by in-process sessions and worker daemons:
//
//	memory LRU (bounded by bytes, singleflight-guarded)
//	  → on-disk STMSTAPE directory (files named by trace-identity hash)
//	    → optional fetch hook (a worker's peers)
//	      → deterministic rebuild
//
// Tapes are addressed by the content hash of their trace identity
// (TapeKey), and every tier that receives a tape — a disk load, a peer
// fetch, a PUT — re-derives the address from the tape's own identity
// and rejects mismatches, so a truncated or corrupted file is rebuilt
// rather than served.

import (
	"container/list"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"stms/internal/ckpt"
	"stms/internal/trace"
)

// tapeFileSuffix names on-disk tapes: <store dir>/<identity hash>.stmstape.
const tapeFileSuffix = ".stmstape"

// ckptFileSuffix names on-disk checkpoints: <store dir>/<job hash>.stmsckpt.
const ckptFileSuffix = ".stmsckpt"

// Store is the two-tier tape store. The zero value is not usable;
// construct with NewStore. All methods are safe for concurrent use.
type Store struct {
	mu      sync.Mutex
	max     int64 // memory-tier byte budget
	bytes   int64
	entries map[string]*storeEntry
	lru     *list.List        // front = most recently used
	dir     string            // "" = memory-only store
	ckpts   map[string][]byte // sealed STMSCKPT containers, latest per job key
	stats   StoreStats
}

type storeEntry struct {
	key   string
	ready chan struct{} // closed when tape/src/err are set
	tape  *trace.Tape
	src   TapeSource
	err   error
	elem  *list.Element
}

// StoreStats counts store activity. Hits/Misses/Builds/Evictions keep
// the exact semantics of the lab's original in-memory cache (a "hit"
// is a GetOrBuild served by the memory tier, including joining an
// in-flight resolution); the remaining fields account the new tiers.
type StoreStats struct {
	Hits      uint64 // GetOrBuild served by the memory tier
	Misses    uint64 // GetOrBuild that had to resolve the tape
	Builds    uint64 // resolutions that built (including failed builds)
	Evictions uint64 // tapes dropped by the memory byte budget
	DiskHits  uint64 // resolutions served by the disk tier
	PeerHits  uint64 // resolutions served by the fetch hook
	DiskSkips uint64 // unreadable/mismatched disk files (rebuilt instead)
	Puts      uint64 // tapes accepted via Put
	ServeMem  uint64 // Get served from memory (tape serving, not jobs)
	ServeDisk uint64 // Get served from disk

	CkptPuts   uint64 // checkpoints accepted via PutCkpt
	CkptServes uint64 // GetCkpt hits (memory or disk)
	CkptSkips  uint64 // corrupt checkpoints discarded instead of served

	BytesInUse int64         // memory-tier footprint
	BuildTime  time.Duration // cumulative build wall time
	FetchTime  time.Duration // cumulative disk-read + peer-fetch wall time
}

// NewStore creates a store with the given memory budget and disk
// directory; dir == "" disables the disk tier. The directory is
// created on demand.
func NewStore(memBytes int64, dir string) *Store {
	return &Store{
		max:     memBytes,
		entries: make(map[string]*storeEntry),
		lru:     list.New(),
		dir:     dir,
		ckpts:   make(map[string][]byte),
	}
}

// Dir returns the disk-tier directory ("" when disabled).
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.BytesInUse = s.bytes
	return st
}

// Len returns the number of tapes resident in the memory tier
// (including in-flight resolutions).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Keys lists the addresses known to the store: the memory tier plus
// the disk directory. Used for nearest-match suggestions on unknown
// keys; order is unspecified.
func (s *Store) Keys() []string {
	s.mu.Lock()
	keys := make([]string, 0, len(s.entries))
	seen := make(map[string]bool, len(s.entries))
	for k := range s.entries {
		keys = append(keys, k)
		seen[k] = true
	}
	dir := s.dir
	s.mu.Unlock()
	if dir != "" {
		if names, err := os.ReadDir(dir); err == nil {
			for _, de := range names {
				if k, ok := strings.CutSuffix(de.Name(), tapeFileSuffix); ok && !seen[k] {
					keys = append(keys, k)
				}
			}
		}
	}
	return keys
}

// GetOrBuild returns the tape addressed by key, resolving a memory
// miss through the lower tiers in order: disk, the fetch hook (nil to
// skip; a worker's peer lookup), then a deterministic build. The
// resolution runs at most once per key however many callers arrive
// (singleflight); waiters honour ctx, the resolver itself runs to
// completion so siblings are never abandoned mid-build. The returned
// source says which tier satisfied the request — TapeFromMemory for
// any memory-tier hit, including joining an in-flight resolution.
func (s *Store) GetOrBuild(ctx context.Context, key string,
	fetch func(context.Context) (*trace.Tape, error), build func() *trace.Tape) (*trace.Tape, TapeSource, error) {
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		s.stats.Hits++
		s.lru.MoveToFront(e.elem)
		s.mu.Unlock()
		select {
		case <-e.ready:
		case <-ctx.Done():
			return nil, TapeFromMemory, ctx.Err()
		}
		return e.tape, TapeFromMemory, e.err
	}
	s.stats.Misses++
	e := &storeEntry{key: key, ready: make(chan struct{})}
	e.elem = s.lru.PushFront(e)
	s.entries[key] = e
	s.mu.Unlock()

	var buildTime, fetchTime time.Duration
	built := false
	func() {
		defer func() {
			// The substrate panics on invariant breaks (invalid specs):
			// convert to an error so every waiter fails like the
			// resolver, then drop the broken entry so a fixed plan can
			// retry.
			if r := recover(); r != nil {
				e.err = fmt.Errorf("dist: resolving tape %.12s… panicked: %v", key, r)
			}
			close(e.ready)
		}()

		// Disk tier: a file written by an earlier run or another
		// process on this machine. Unreadable or mis-addressed files
		// are skipped (and removed) — the build below repairs them.
		if s.dir != "" {
			t0 := time.Now()
			if t, ok := s.loadDisk(key); ok {
				fetchTime = time.Since(t0)
				e.tape, e.src = t, TapeFromDisk
				return
			}
			fetchTime = time.Since(t0)
		}

		// Fetch hook: another worker that already built this tape.
		if fetch != nil {
			t0 := time.Now()
			if t, err := fetch(ctx); err == nil && t != nil && tapeKeyOf(t) == key {
				fetchTime += time.Since(t0)
				e.tape, e.src = t, TapeFromPeer
				s.saveDisk(key, t)
				return
			}
			fetchTime += time.Since(t0)
		}

		t0 := time.Now()
		tape := build()
		buildTime = time.Since(t0)
		built = true
		e.tape, e.src = tape, TapeBuilt
		s.saveDisk(key, tape)
	}()

	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.BuildTime += buildTime
	s.stats.FetchTime += fetchTime
	switch {
	case e.err != nil:
		if built {
			s.stats.Builds++
		}
		s.lru.Remove(e.elem)
		delete(s.entries, key)
		return nil, e.src, e.err
	case e.src == TapeFromDisk:
		s.stats.DiskHits++
	case e.src == TapeFromPeer:
		s.stats.PeerHits++
	default:
		s.stats.Builds++
	}
	s.bytes += e.tape.Bytes()
	s.evictLocked(e)
	return e.tape, e.src, nil
}

// Get returns the tape addressed by key from the memory or disk tier,
// without building. It is the read side of tape serving (GET /tapes):
// a miss is a miss, never a build. A disk hit is promoted into the
// memory tier.
func (s *Store) Get(key string) (*trace.Tape, bool) {
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		s.lru.MoveToFront(e.elem)
		s.mu.Unlock()
		<-e.ready
		if e.err != nil {
			return nil, false
		}
		s.mu.Lock()
		s.stats.ServeMem++
		s.mu.Unlock()
		return e.tape, true
	}
	s.mu.Unlock()
	if s.dir == "" {
		return nil, false
	}
	t, ok := s.loadDisk(key)
	if !ok {
		return nil, false
	}
	s.mu.Lock()
	s.stats.ServeDisk++
	s.mu.Unlock()
	s.admit(key, t)
	return t, true
}

// Put admits an externally supplied tape (the write side of PUT
// /tapes). The tape's own identity must hash to key; mismatches are
// rejected — the store is content-addressed, not name-addressed.
func (s *Store) Put(key string, t *trace.Tape) error {
	if got := tapeKeyOf(t); got != key {
		return fmt.Errorf("dist: tape identity hashes to %.12s…, not the requested address %.12s…", got, key)
	}
	s.saveDisk(key, t)
	s.mu.Lock()
	s.stats.Puts++
	s.mu.Unlock()
	s.admit(key, t)
	return nil
}

// admit inserts a resolved tape into the memory tier (no-op if the key
// is already resident or in flight).
func (s *Store) admit(key string, t *trace.Tape) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[key]; ok {
		return
	}
	e := &storeEntry{key: key, ready: make(chan struct{}), tape: t, src: TapeFromMemory}
	close(e.ready)
	e.elem = s.lru.PushFront(e)
	s.entries[key] = e
	s.bytes += t.Bytes()
	s.evictLocked(e)
}

// evictLocked drops least-recently-used completed tapes until the
// memory tier fits its budget — never the entry just resolved (a cell
// is about to replay it) and never in-flight resolutions (they carry
// no accounted bytes yet).
func (s *Store) evictLocked(keep *storeEntry) {
	for s.bytes > s.max {
		back := s.lru.Back()
		if back == nil {
			break
		}
		v := back.Value.(*storeEntry)
		if v == keep {
			break
		}
		select {
		case <-v.ready:
		default:
			// Still resolving; skip by bumping it forward so the scan
			// can terminate.
			s.lru.MoveToFront(back)
			continue
		}
		s.lru.Remove(back)
		delete(s.entries, v.key)
		if v.tape != nil {
			s.bytes -= v.tape.Bytes()
		}
		s.stats.Evictions++
	}
}

// path maps an address to its disk-tier file.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key+tapeFileSuffix)
}

// loadDisk reads and verifies the disk tier's tape for key. Any
// failure — missing file, truncated or corrupt STMSTAPE, an identity
// that hashes to a different address — reports a miss; corrupt files
// are removed so the subsequent build repairs the tier.
func (s *Store) loadDisk(key string) (*trace.Tape, bool) {
	f, err := os.Open(s.path(key))
	if err != nil {
		return nil, false
	}
	defer f.Close()
	t, err := trace.ReadTape(f)
	if err != nil || tapeKeyOf(t) != key {
		s.mu.Lock()
		s.stats.DiskSkips++
		s.mu.Unlock()
		os.Remove(s.path(key))
		return nil, false
	}
	return t, true
}

// saveDisk persists a tape to the disk tier, atomically (write to a
// temp file, rename into place) so concurrent writers and killed
// processes can never leave a half-written file under a final name.
// Best-effort: a full disk degrades the store to its memory tier.
func (s *Store) saveDisk(key string, t *trace.Tape) {
	if s.dir == "" || t == nil {
		return
	}
	if _, err := os.Stat(s.path(key)); err == nil {
		return // already persisted by an earlier resolution
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(s.dir, key+".tmp*")
	if err != nil {
		return
	}
	werr := trace.WriteTape(tmp, t)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		os.Remove(tmp.Name())
	}
}

// --- checkpoint tier -------------------------------------------------------
//
// Checkpoints ride the same store as tapes: content-addressed by job
// identity (Job.CkptKey), held as sealed STMSCKPT containers in a
// memory side-table (latest per key — each cadence overwrites the
// previous one) and mirrored to <dir>/<key>.stmsckpt when the disk
// tier is enabled. Like tapes, a checkpoint is never trusted on
// arrival: every receiving tier verifies the container's header and
// checksum and discards corruption — a bad checkpoint costs a cold
// restart, never a wrong result.

// ckptPath maps a checkpoint address to its disk-tier file.
func (s *Store) ckptPath(key string) string {
	return filepath.Join(s.dir, key+ckptFileSuffix)
}

// GetCkpt returns the sealed checkpoint container addressed by key,
// from the memory side-table or the disk tier. Corrupt disk files are
// removed and report a miss.
func (s *Store) GetCkpt(key string) ([]byte, bool) {
	s.mu.Lock()
	if data, ok := s.ckpts[key]; ok {
		s.stats.CkptServes++
		s.mu.Unlock()
		return data, true
	}
	dir := s.dir
	s.mu.Unlock()
	if dir == "" {
		return nil, false
	}
	data, err := os.ReadFile(s.ckptPath(key))
	if err != nil {
		return nil, false
	}
	if _, err := ckpt.Open(data); err != nil {
		os.Remove(s.ckptPath(key))
		s.mu.Lock()
		s.stats.CkptSkips++
		s.mu.Unlock()
		return nil, false
	}
	s.mu.Lock()
	s.ckpts[key] = data
	s.stats.CkptServes++
	s.mu.Unlock()
	return data, true
}

// PutCkpt admits a sealed checkpoint container under key, replacing
// any previous checkpoint at that address (a newer cadence of the same
// job). The container must verify; corrupt data is rejected. The disk
// write is atomic (temp + fsync + rename + dirent fsync) and
// best-effort — a full disk degrades the tier to memory.
func (s *Store) PutCkpt(key string, data []byte) error {
	payload, err := ckpt.Open(data)
	if err != nil {
		s.mu.Lock()
		s.stats.CkptSkips++
		s.mu.Unlock()
		return fmt.Errorf("dist: rejecting corrupt checkpoint %.12s…: %w", key, err)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	s.mu.Lock()
	s.ckpts[key] = cp
	s.stats.CkptPuts++
	dir := s.dir
	s.mu.Unlock()
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err == nil {
			ckpt.WriteFile(s.ckptPath(key), payload)
		}
	}
	return nil
}

// DropCkpt discards the checkpoint at key from both tiers — the
// recovery path for a checkpoint that verified as a container but
// failed to restore (wrong job, incompatible state).
func (s *Store) DropCkpt(key string) {
	s.mu.Lock()
	delete(s.ckpts, key)
	dir := s.dir
	s.mu.Unlock()
	if dir != "" {
		os.Remove(s.ckptPath(key))
	}
}

// CkptCount returns how many checkpoints the store holds (memory plus
// disk-only files).
func (s *Store) CkptCount() int {
	return len(s.CkptKeys())
}

// CkptKeys lists the checkpoint addresses known to the store, for
// nearest-match suggestions on unknown keys; order is unspecified.
func (s *Store) CkptKeys() []string {
	s.mu.Lock()
	keys := make([]string, 0, len(s.ckpts))
	seen := make(map[string]bool, len(s.ckpts))
	for k := range s.ckpts {
		keys = append(keys, k)
		seen[k] = true
	}
	dir := s.dir
	s.mu.Unlock()
	if dir != "" {
		if names, err := os.ReadDir(dir); err == nil {
			for _, de := range names {
				if k, ok := strings.CutSuffix(de.Name(), ckptFileSuffix); ok && !seen[k] {
					keys = append(keys, k)
				}
			}
		}
	}
	return keys
}
