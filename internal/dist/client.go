package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"stms/internal/ckpt"
	"stms/internal/trace"
)

// Timeouts are the client's per-attempt deadlines. Jobs can
// legitimately run for a long time, so there is deliberately no
// overall request timeout; instead each phase of an exchange is
// bounded — the dial, the response headers, and (the interesting one)
// silence on the event stream. The worker emits throttled progress
// events a few times a second and queue heartbeats while a job waits
// for an execution slot, so a stream silent past Stall is a transport
// failure, not a long job.
type Timeouts struct {
	Dial           time.Duration // TCP connect deadline (default 5s)
	ResponseHeader time.Duration // response-header deadline (default 15s)
	Stall          time.Duration // max event-stream silence (default 30s; <0 disables)
}

// withDefaults fills zero fields with the defaults.
func (t Timeouts) withDefaults() Timeouts {
	if t.Dial == 0 {
		t.Dial = 5 * time.Second
	}
	if t.ResponseHeader == 0 {
		t.ResponseHeader = 15 * time.Second
	}
	if t.Stall == 0 {
		t.Stall = 30 * time.Second
	}
	return t
}

// BaseTransport builds the deadline-bearing transport NewClient uses
// by default. Exposed so fault injectors and custom transports can
// wrap the same thing the real path runs on.
func BaseTransport(t Timeouts) *http.Transport {
	t = t.withDefaults()
	return &http.Transport{
		DialContext:           (&net.Dialer{Timeout: t.Dial}).DialContext,
		ResponseHeaderTimeout: t.ResponseHeader,
		MaxIdleConnsPerHost:   16,
	}
}

// ErrStalled marks an event stream aborted by the stall detector: the
// worker accepted the job and then went silent past the heartbeat
// window. It is always wrapped in *TransportError — a stalled worker
// is a failed transport, and the job retries elsewhere.
var ErrStalled = errors.New("dist: event stream stalled past the heartbeat window")

// ClientOption configures a Client at construction time.
type ClientOption func(*Client)

// WithAuth attaches a shared-secret bearer token to every request the
// client makes, matching a worker started with ServerConfig.Token
// (stms-serve -token).
func WithAuth(token string) ClientOption {
	return func(c *Client) { c.token = token }
}

// WithTimeouts replaces the client's per-attempt deadlines (zero
// fields keep their defaults).
func WithTimeouts(t Timeouts) ClientOption {
	return func(c *Client) { c.timeouts = t.withDefaults() }
}

// WithTransport replaces the client's HTTP transport wholesale — the
// chaos injector's hook. The dial and header deadlines of WithTimeouts
// do not apply through a custom transport (wrap BaseTransport to keep
// them); the stall detector still does.
func WithTransport(rt http.RoundTripper) ClientOption {
	return func(c *Client) { c.transport = rt }
}

// Client is the coordinator's handle on one worker. Errors it returns
// are either *TransportError (the worker or the network failed —
// retry the job on another worker) or plain errors (the job itself
// failed, or the worker rejected the request deterministically — an
// invalid job, a wrong bearer token — so retrying would fail the same
// way). The zero value is not usable; construct with NewClient.
type Client struct {
	base      string
	http      *http.Client
	token     string
	timeouts  Timeouts
	transport http.RoundTripper
}

// NewClient returns a client for the worker at base (e.g.
// "http://127.0.0.1:9090"). Per-attempt deadlines bound the dial, the
// response headers, and event-stream silence (Timeouts); there is no
// overall timeout — pass a context to bound one.
func NewClient(base string, opts ...ClientOption) *Client {
	c := &Client{base: strings.TrimRight(base, "/"), timeouts: Timeouts{}.withDefaults()}
	for _, opt := range opts {
		opt(c)
	}
	rt := c.transport
	if rt == nil {
		rt = BaseTransport(c.timeouts)
	}
	c.http = &http.Client{Transport: rt}
	return c
}

// URL returns the worker's base URL.
func (c *Client) URL() string { return c.base }

// do sends a request with the client's credentials attached.
func (c *Client) do(req *http.Request) (*http.Response, error) {
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	return c.http.Do(req)
}

// authError turns a 401 into a deterministic (non-transport) error:
// the worker is alive and answering; it rejected the credentials, and
// every retry would be rejected the same way.
func (c *Client) authError(resp *http.Response) error {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	return fmt.Errorf("dist: %s rejected the request credentials (401): %s",
		c.base, strings.TrimSpace(string(msg)))
}

// Health fetches the worker's health document.
func (c *Client) Health(ctx context.Context) (*Health, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return nil, &TransportError{err}
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, &TransportError{err}
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusUnauthorized {
		return nil, c.authError(resp)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &TransportError{fmt.Errorf("dist: %s/healthz: %s", c.base, resp.Status)}
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, &TransportError{fmt.Errorf("dist: decoding health from %s: %w", c.base, err)}
	}
	if h.Version != HealthFormatVersion {
		return nil, &TransportError{fmt.Errorf("dist: %s speaks health version %d, want %d", c.base, h.Version, HealthFormatVersion)}
	}
	return &h, nil
}

// stallWatch aborts a silent event stream: a timer armed at the stall
// window closes the response body unless bytes keep arriving. The
// closed body surfaces as a read error in the JSON decoder; the
// stalled flag tells RunJob to classify it as ErrStalled rather than a
// plain cut.
type stallWatch struct {
	rc      io.ReadCloser
	timer   *time.Timer
	window  time.Duration
	stalled atomic.Bool
}

func newStallWatch(rc io.ReadCloser, window time.Duration) *stallWatch {
	w := &stallWatch{rc: rc, window: window}
	w.timer = time.AfterFunc(window, func() {
		w.stalled.Store(true)
		rc.Close()
	})
	return w
}

func (w *stallWatch) Read(p []byte) (int, error) {
	n, err := w.rc.Read(p)
	if n > 0 && !w.stalled.Load() {
		w.timer.Reset(w.window)
	}
	return n, err
}

func (w *stallWatch) stop() { w.timer.Stop() }

// RunJob posts a job to the worker and consumes its event stream until
// the terminal event, invoking onEvent (if non-nil) for every event —
// including the terminal one — as it arrives. It returns the Result of
// a "done" event; a "failed" event becomes a plain (non-transport)
// error, and a stream that ends without a terminal event — cut,
// malformed, or silent past the stall window (ErrStalled) — is a
// transport failure.
func (c *Client) RunJob(ctx context.Context, job *Job, onEvent func(Event)) (*Result, error) {
	body, err := json.Marshal(job)
	if err != nil {
		return nil, fmt.Errorf("dist: encoding job: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, &TransportError{err}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.do(req)
	if err != nil {
		return nil, &TransportError{err}
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusBadRequest:
		// The worker rejected the job's structure: deterministic.
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("dist: %s rejected the job: %s", c.base, strings.TrimSpace(string(msg)))
	case resp.StatusCode == http.StatusUnauthorized:
		return nil, c.authError(resp)
	case resp.StatusCode != http.StatusOK:
		return nil, &TransportError{fmt.Errorf("dist: %s/jobs: %s", c.base, resp.Status)}
	}

	// The stream is a sequence of JSON values; json.Decoder handles
	// arbitrarily large results without line-length limits. The stall
	// watchdog closes the body if it goes silent past the window.
	var stream io.Reader = resp.Body
	var watch *stallWatch
	if c.timeouts.Stall > 0 {
		watch = newStallWatch(resp.Body, c.timeouts.Stall)
		defer watch.stop()
		stream = watch
	}
	dec := json.NewDecoder(stream)
	for {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			if watch != nil && watch.stalled.Load() {
				return nil, &TransportError{fmt.Errorf("dist: job stream from %s silent for %s: %w",
					c.base, c.timeouts.Stall, ErrStalled)}
			}
			return nil, &TransportError{fmt.Errorf("dist: job stream from %s cut: %w", c.base, err)}
		}
		if ev.Version != EventFormatVersion {
			return nil, &TransportError{fmt.Errorf("dist: %s speaks event version %d, want %d", c.base, ev.Version, EventFormatVersion)}
		}
		if onEvent != nil {
			onEvent(ev)
		}
		switch ev.Kind {
		case "done":
			if ev.Result == nil || ev.Result.Version != ResultFormatVersion {
				return nil, &TransportError{fmt.Errorf("dist: malformed done event from %s", c.base)}
			}
			return ev.Result, nil
		case "failed":
			return nil, fmt.Errorf("dist: job %s/%s failed on %s: %s", job.Workload, job.Variant, c.base, ev.Error)
		case "checkpointed":
			// The worker drained: it flushed the job's final checkpoint
			// to its store and shut down. Transport-class so the retry
			// loop moves the job — after fetching the checkpoint, the
			// retry resumes warm instead of starting over.
			return nil, &TransportError{fmt.Errorf("dist: job %s/%s on %s: %w",
				job.Workload, job.Variant, c.base, ErrWorkerCheckpointed)}
		}
	}
}

// FetchCkpt downloads the sealed checkpoint container at the given
// address. The container is verified before it is returned; corruption
// in transit reads as a transport error, and the caller validates the
// checkpoint's identity against its job before resuming from it.
func (c *Client) FetchCkpt(ctx context.Context, key string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/ckpts/"+key, nil)
	if err != nil {
		return nil, &TransportError{err}
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, &TransportError{err}
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusUnauthorized {
		return nil, c.authError(resp)
	}
	if resp.StatusCode == http.StatusNotFound {
		// Deterministic: the worker is alive and does not hold it.
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("dist: %s: %s", c.base, strings.TrimSpace(string(msg)))
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &TransportError{fmt.Errorf("dist: %s/ckpts/%.12s…: %s", c.base, key, resp.Status)}
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, &TransportError{fmt.Errorf("dist: reading checkpoint %.12s… from %s: %w", key, c.base, err)}
	}
	if _, err := ckpt.Open(data); err != nil {
		return nil, &TransportError{fmt.Errorf("dist: checkpoint %.12s… from %s: %w", key, c.base, err)}
	}
	return data, nil
}

// PushCkpt uploads a sealed checkpoint container to the worker's store
// under its address, so a retried job finds it locally and resumes.
func (c *Client) PushCkpt(ctx context.Context, key string, data []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.base+"/ckpts/"+key, bytes.NewReader(data))
	if err != nil {
		return &TransportError{err}
	}
	resp, err := c.do(req)
	if err != nil {
		return &TransportError{err}
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusBadRequest:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("dist: %s rejected the checkpoint: %s", c.base, strings.TrimSpace(string(msg)))
	case resp.StatusCode == http.StatusUnauthorized:
		return c.authError(resp)
	case resp.StatusCode != http.StatusNoContent:
		return &TransportError{fmt.Errorf("dist: %s/ckpts/%.12s…: %s", c.base, key, resp.Status)}
	}
	return nil
}

// FetchTape downloads the tape at the given address. Failures are
// transport errors — except a credentials rejection, which is
// deterministic; either way the caller's store verifies any content it
// does receive against the address before trusting it.
func (c *Client) FetchTape(ctx context.Context, key string) (*trace.Tape, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/tapes/"+key, nil)
	if err != nil {
		return nil, &TransportError{err}
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, &TransportError{err}
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusUnauthorized {
		return nil, c.authError(resp)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &TransportError{fmt.Errorf("dist: %s/tapes/%.12s…: %s", c.base, key, resp.Status)}
	}
	t, err := trace.ReadTape(resp.Body)
	if err != nil {
		return nil, &TransportError{fmt.Errorf("dist: decoding tape %.12s… from %s: %w", key, c.base, err)}
	}
	return t, nil
}

// PushTape uploads a tape to the worker's store under its address.
func (c *Client) PushTape(ctx context.Context, key string, t *trace.Tape) error {
	var buf bytes.Buffer
	if err := trace.WriteTape(&buf, t); err != nil {
		return fmt.Errorf("dist: encoding tape: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.base+"/tapes/"+key, bytes.NewReader(buf.Bytes()))
	if err != nil {
		return &TransportError{err}
	}
	resp, err := c.do(req)
	if err != nil {
		return &TransportError{err}
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusBadRequest:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("dist: %s rejected the tape: %s", c.base, strings.TrimSpace(string(msg)))
	case resp.StatusCode == http.StatusUnauthorized:
		return c.authError(resp)
	case resp.StatusCode != http.StatusNoContent:
		return &TransportError{fmt.Errorf("dist: %s/tapes/%.12s…: %s", c.base, key, resp.Status)}
	}
	return nil
}
