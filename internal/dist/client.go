package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"stms/internal/trace"
)

// Client is the coordinator's handle on one worker. Errors it returns
// are either *TransportError (the worker or the network failed —
// retry the job on another worker) or plain errors (the job itself
// failed — deterministic, so retrying elsewhere would fail the same
// way). The zero value is not usable; construct with NewClient.
type Client struct {
	base string
	http *http.Client
}

// NewClient returns a client for the worker at base (e.g.
// "http://127.0.0.1:9090"). Jobs can legitimately run for a long time,
// so the client sets no overall timeout; pass a context to bound one.
func NewClient(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), http: &http.Client{}}
}

// URL returns the worker's base URL.
func (c *Client) URL() string { return c.base }

// Health fetches the worker's health document.
func (c *Client) Health(ctx context.Context) (*Health, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return nil, &TransportError{err}
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, &TransportError{err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, &TransportError{fmt.Errorf("dist: %s/healthz: %s", c.base, resp.Status)}
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, &TransportError{fmt.Errorf("dist: decoding health from %s: %w", c.base, err)}
	}
	if h.Version != HealthFormatVersion {
		return nil, &TransportError{fmt.Errorf("dist: %s speaks health version %d, want %d", c.base, h.Version, HealthFormatVersion)}
	}
	return &h, nil
}

// RunJob posts a job to the worker and consumes its event stream until
// the terminal event, invoking onEvent (if non-nil) for every event —
// including the terminal one — as it arrives. It returns the Result of
// a "done" event; a "failed" event becomes a plain (non-transport)
// error, and a stream that ends without a terminal event is a
// transport failure.
func (c *Client) RunJob(ctx context.Context, job *Job, onEvent func(Event)) (*Result, error) {
	body, err := json.Marshal(job)
	if err != nil {
		return nil, fmt.Errorf("dist: encoding job: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, &TransportError{err}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, &TransportError{err}
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusBadRequest {
		// The worker rejected the job's structure: deterministic.
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("dist: %s rejected the job: %s", c.base, strings.TrimSpace(string(msg)))
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &TransportError{fmt.Errorf("dist: %s/jobs: %s", c.base, resp.Status)}
	}

	// The stream is a sequence of JSON values; json.Decoder handles
	// arbitrarily large results without line-length limits.
	dec := json.NewDecoder(resp.Body)
	for {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, &TransportError{fmt.Errorf("dist: job stream from %s cut: %w", c.base, err)}
		}
		if ev.Version != EventFormatVersion {
			return nil, &TransportError{fmt.Errorf("dist: %s speaks event version %d, want %d", c.base, ev.Version, EventFormatVersion)}
		}
		if onEvent != nil {
			onEvent(ev)
		}
		switch ev.Kind {
		case "done":
			if ev.Result == nil || ev.Result.Version != ResultFormatVersion {
				return nil, &TransportError{fmt.Errorf("dist: malformed done event from %s", c.base)}
			}
			return ev.Result, nil
		case "failed":
			return nil, fmt.Errorf("dist: job %s/%s failed on %s: %s", job.Workload, job.Variant, c.base, ev.Error)
		}
	}
}

// FetchTape downloads the tape at the given address. Any failure is a
// transport error; the caller's store verifies the content against the
// address before trusting it.
func (c *Client) FetchTape(ctx context.Context, key string) (*trace.Tape, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/tapes/"+key, nil)
	if err != nil {
		return nil, &TransportError{err}
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, &TransportError{err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, &TransportError{fmt.Errorf("dist: %s/tapes/%.12s…: %s", c.base, key, resp.Status)}
	}
	t, err := trace.ReadTape(resp.Body)
	if err != nil {
		return nil, &TransportError{fmt.Errorf("dist: decoding tape %.12s… from %s: %w", key, c.base, err)}
	}
	return t, nil
}

// PushTape uploads a tape to the worker's store under its address.
func (c *Client) PushTape(ctx context.Context, key string, t *trace.Tape) error {
	var buf bytes.Buffer
	if err := trace.WriteTape(&buf, t); err != nil {
		return fmt.Errorf("dist: encoding tape: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.base+"/tapes/"+key, bytes.NewReader(buf.Bytes()))
	if err != nil {
		return &TransportError{err}
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return &TransportError{err}
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusBadRequest {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("dist: %s rejected the tape: %s", c.base, strings.TrimSpace(string(msg)))
	}
	if resp.StatusCode != http.StatusNoContent {
		return &TransportError{fmt.Errorf("dist: %s/tapes/%.12s…: %s", c.base, key, resp.Status)}
	}
	return nil
}
