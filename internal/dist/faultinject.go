package dist

// Deterministic fault injection for the distributed lab. The repo's
// cells are pure functions of their configuration, which gives chaos
// testing a perfect oracle: however unkind the injected network is, a
// matrix that completes must export byte-identical results. Injector
// is the unkind network — a seeded, schedule-driven fault source that
// plugs in as an http.RoundTripper on the coordinator's side and as
// handler middleware (Wrap) on a worker's side, so both halves of a
// connection can refuse, stall, cut, delay, or corrupt on a replayable
// schedule.
//
// Every decision is a pure function of (seed, rule index, the rule's
// own match counter): replaying the same request sequence against the
// same seed and schedule injects the same faults at the same places,
// so a failure found in CI reproduces locally. (Under a parallel
// coordinator the assignment of match indexes to requests follows
// goroutine interleaving; run the coordinator with parallelism 1 when
// a byte-for-byte replay of the fault sequence matters.)

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// FaultKind enumerates the injectable failure modes.
type FaultKind string

// The fault vocabulary. Refuse and Latency act before any response
// byte moves; Stall, Cut and Corrupt act on the response body after
// rule.After bytes have been delivered intact.
const (
	// FaultRefuse fails the request outright, like a connection
	// refused: no response bytes, a transport error to the caller. As
	// middleware it aborts the connection instead.
	FaultRefuse FaultKind = "refuse"
	// FaultLatency delays the exchange by rule.Latency before letting
	// it proceed.
	FaultLatency FaultKind = "latency"
	// FaultStall delivers rule.After body bytes, then delivers nothing
	// until the caller gives up (stall detector, context, close) — a
	// worker that accepted a job and went silent.
	FaultStall FaultKind = "stall"
	// FaultCut delivers rule.After body bytes, then errors — a stream
	// cut mid-job.
	FaultCut FaultKind = "cut"
	// FaultCorrupt delivers rule.After body bytes intact, then flips
	// bits in everything after — a tape corrupted in flight.
	FaultCorrupt FaultKind = "corrupt"
)

// FaultRule matches requests and injects one fault kind. A rule
// matches when Host and Path are substrings of the request's URL host
// and path ("" matches everything) and the rule's own match counter
// lies in [From, Until) (Until 0 = unbounded). Among matches, the
// fault fires with probability Prob (outside (0,1) = always), decided
// deterministically from the injector seed.
type FaultRule struct {
	Kind    FaultKind
	Host    string        // substring of the URL host ("" = every host)
	Path    string        // substring of the URL path ("" = every path)
	From    uint64        // first matching request the rule applies to
	Until   uint64        // first matching request it no longer applies to (0 = never)
	Prob    float64       // fire probability per match; <=0 or >=1 = always
	After   int64         // Stall/Cut/Corrupt: body bytes delivered before the fault
	Latency time.Duration // Latency: injected delay
}

// matches reports whether the rule applies to a request shape, before
// windowing and probability.
func (r *FaultRule) matches(host, path string) bool {
	return strings.Contains(host, r.Host) && strings.Contains(path, r.Path)
}

// Injector is the seeded fault source. The zero value is unusable;
// construct with NewInjector. One injector may serve as RoundTripper
// and middleware simultaneously (the rule counters are shared); it is
// safe for concurrent use.
type Injector struct {
	seed  uint64
	rules []FaultRule
	next  http.RoundTripper

	mu      sync.Mutex
	matched []uint64 // per-rule match counters
	fired   map[FaultKind]uint64
}

// NewInjector builds an injector over a seed, the transport real
// traffic flows through (nil = http.DefaultTransport; middleware use
// ignores it), and the fault schedule.
func NewInjector(seed uint64, next http.RoundTripper, rules ...FaultRule) *Injector {
	if next == nil {
		next = http.DefaultTransport
	}
	return &Injector{
		seed:    seed,
		rules:   append([]FaultRule(nil), rules...),
		next:    next,
		matched: make([]uint64, len(rules)),
		fired:   make(map[FaultKind]uint64),
	}
}

// Fired reports how many times each fault kind has fired.
func (in *Injector) Fired() map[FaultKind]uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[FaultKind]uint64, len(in.fired))
	for k, v := range in.fired {
		out[k] = v
	}
	return out
}

// splitmix64 is the usual splitmix finalizer: a bijective avalanche,
// here the whole of the injector's randomness.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// decide evaluates the schedule for one request shape and returns the
// faults that fire, in rule order. Each matching rule advances its own
// counter whether or not it fires, so the schedule is insensitive to
// the faults other rules inject.
func (in *Injector) decide(host, path string) []*FaultRule {
	in.mu.Lock()
	defer in.mu.Unlock()
	var fire []*FaultRule
	for j := range in.rules {
		r := &in.rules[j]
		if !r.matches(host, path) {
			continue
		}
		i := in.matched[j]
		in.matched[j]++
		if i < r.From || (r.Until > 0 && i >= r.Until) {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 {
			u := splitmix64(in.seed ^ uint64(j)<<32 ^ i)
			if float64(u>>11)/float64(1<<53) >= r.Prob {
				continue
			}
		}
		in.fired[r.Kind]++
		fire = append(fire, r)
	}
	return fire
}

// errChaosRefused is the transport-shaped error a refused request
// reports; it flows to callers wrapped in *TransportError by Client.
var errChaosRefused = errors.New("chaos: connection refused")

// RoundTrip implements http.RoundTripper: client-side fault injection
// in front of the real transport.
func (in *Injector) RoundTrip(req *http.Request) (*http.Response, error) {
	var body *FaultRule
	var latency time.Duration
	for _, r := range in.decide(req.URL.Host, req.URL.Path) {
		switch r.Kind {
		case FaultRefuse:
			return nil, errChaosRefused
		case FaultLatency:
			latency += r.Latency
		default:
			if body == nil {
				body = r
			}
		}
	}
	if latency > 0 {
		select {
		case <-time.After(latency):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	resp, err := in.next.RoundTrip(req)
	if err != nil || body == nil {
		return resp, err
	}
	resp.Body = &chaosBody{
		rc:        resp.Body,
		kind:      body.Kind,
		remaining: body.After,
		done:      req.Context().Done(),
		closed:    make(chan struct{}),
	}
	return resp, nil
}

// chaosBody wraps a response body: After bytes pass intact, then the
// fault takes over. Close always unblocks a stalled Read (the stall
// detector and the http machinery both close the body to give up).
type chaosBody struct {
	rc        io.ReadCloser
	kind      FaultKind
	remaining int64
	done      <-chan struct{} // request context
	closed    chan struct{}
	once      sync.Once
}

func (b *chaosBody) Close() error {
	b.once.Do(func() { close(b.closed) })
	return b.rc.Close()
}

func (b *chaosBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		switch b.kind {
		case FaultCut:
			return 0, errors.New("chaos: stream cut")
		case FaultStall:
			select {
			case <-b.closed:
			case <-b.done:
			}
			return 0, errors.New("chaos: stalled stream abandoned")
		default: // FaultCorrupt
			n, err := b.rc.Read(p)
			for i := 0; i < n; i++ {
				p[i] ^= 0xa5
			}
			return n, err
		}
	}
	if int64(len(p)) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.rc.Read(p)
	b.remaining -= int64(n)
	return n, err
}

// Wrap is the middleware half: server-side fault injection around a
// worker's handler. Refuse aborts the connection (the client sees a
// cut, not a status); Stall and Cut deliver After response bytes and
// then hang (until the client goes away) or abort; Corrupt flips bits
// after the threshold — the receiving store's content addressing must
// reject the tape.
func (in *Injector) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var body *FaultRule
		for _, rule := range in.decide(r.Host, r.URL.Path) {
			switch rule.Kind {
			case FaultRefuse:
				panic(http.ErrAbortHandler)
			case FaultLatency:
				select {
				case <-time.After(rule.Latency):
				case <-r.Context().Done():
					return
				}
			default:
				if body == nil {
					body = rule
				}
			}
		}
		if body == nil {
			next.ServeHTTP(w, r)
			return
		}
		next.ServeHTTP(&chaosWriter{
			ResponseWriter: w,
			kind:           body.Kind,
			remaining:      body.After,
			done:           r.Context().Done(),
		}, r)
	})
}

// chaosWriter is the response-side twin of chaosBody.
type chaosWriter struct {
	http.ResponseWriter
	kind      FaultKind
	remaining int64
	done      <-chan struct{}
}

func (cw *chaosWriter) Write(p []byte) (int, error) {
	if cw.remaining > 0 {
		head := p
		if int64(len(head)) > cw.remaining {
			head = head[:cw.remaining]
		}
		n, err := cw.ResponseWriter.Write(head)
		cw.remaining -= int64(n)
		if err != nil || n < len(head) {
			return n, err
		}
		if len(head) == len(p) {
			return n, nil
		}
		m, err := cw.write(p[len(head):])
		return n + m, err
	}
	return cw.write(p)
}

// write handles bytes past the fault threshold.
func (cw *chaosWriter) write(p []byte) (int, error) {
	switch cw.kind {
	case FaultCut:
		panic(http.ErrAbortHandler)
	case FaultStall:
		<-cw.done
		panic(http.ErrAbortHandler)
	default: // FaultCorrupt
		q := make([]byte, len(p))
		for i, c := range p {
			q[i] = c ^ 0xa5
		}
		return cw.ResponseWriter.Write(q)
	}
}

// Flush keeps the worker's streamed-event flushing working through the
// wrapper.
func (cw *chaosWriter) Flush() {
	if f, ok := cw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// String renders a rule for logs and test failures.
func (r FaultRule) String() string {
	return fmt.Sprintf("%s host~%q path~%q [%d,%d) p=%g after=%d lat=%s",
		r.Kind, r.Host, r.Path, r.From, r.Until, r.Prob, r.After, r.Latency)
}
