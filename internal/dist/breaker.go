package dist

// Per-worker circuit breaker. PR 6's coordinator re-dialed a dead
// worker at full cost for every subsequent cell; the breaker makes
// failure cheap: after K consecutive transport failures the worker is
// skipped outright, and after a cooldown a single /healthz probe
// (half-open state) decides whether it rejoins. Recovery restores the
// worker to exactly its old rendezvous positions — the ranking is a
// pure function of (worker URL, tape key), the breaker only gates it —
// so tape affinity survives a bounce.

import (
	"sync"
	"time"
)

// BreakerState is the classic three-state machine.
type BreakerState int

// Breaker states.
const (
	BreakerClosed   BreakerState = iota // healthy: attempts flow
	BreakerOpen                         // tripped: attempts are skipped until the cooldown elapses
	BreakerHalfOpen                     // probing: one caller is verifying /healthz
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "breaker(?)"
}

// BreakerGate is Gate's verdict on one attempt.
type BreakerGate int

// Gate verdicts.
const (
	// BreakerProceed: attempt the worker directly.
	BreakerProceed BreakerGate = iota
	// BreakerProbe: the cooldown has elapsed; the caller now owns the
	// half-open probe and must report Success or Failure.
	BreakerProbe
	// BreakerSkip: the worker is cooling down (or another caller holds
	// the probe); try the next worker.
	BreakerSkip
)

// Breaker is one worker's circuit breaker. The zero value is unusable;
// construct with NewBreaker. Safe for concurrent use.
type Breaker struct {
	mu       sync.Mutex
	after    int
	cooldown time.Duration
	fails    int
	state    BreakerState
	openedAt time.Time
	trips    uint64
}

// NewBreaker returns a breaker that trips open after `after`
// consecutive transport failures and allows a half-open probe once
// `cooldown` has elapsed. Non-positive arguments fall back to 3
// failures and 10 seconds.
func NewBreaker(after int, cooldown time.Duration) *Breaker {
	if after <= 0 {
		after = 3
	}
	if cooldown <= 0 {
		cooldown = 10 * time.Second
	}
	return &Breaker{after: after, cooldown: cooldown}
}

// Gate decides one attempt. A BreakerProbe verdict transfers the
// half-open probe to the caller: it must follow up with Success (close
// the breaker) or Failure (re-open it); until then other callers are
// told to skip.
func (b *Breaker) Gate(now time.Time) BreakerGate {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return BreakerProceed
	case BreakerOpen:
		if now.Sub(b.openedAt) >= b.cooldown {
			b.state = BreakerHalfOpen
			return BreakerProbe
		}
		return BreakerSkip
	default: // BreakerHalfOpen: a probe is in flight
		return BreakerSkip
	}
}

// Success records a working exchange: the failure streak resets and
// the breaker closes (a recovered worker rejoins its rendezvous
// positions immediately).
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	b.state = BreakerClosed
}

// Failure records a transport failure and reports whether this one
// tripped the breaker open (a fresh trip or a failed half-open probe).
// Failures while already open — concurrent attempts that were in
// flight when the breaker tripped — neither re-trip nor extend the
// cooldown.
func (b *Breaker) Failure(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	switch b.state {
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.openedAt = now
		b.trips++
		return true
	case BreakerClosed:
		if b.fails >= b.after {
			b.state = BreakerOpen
			b.openedAt = now
			b.trips++
			return true
		}
	}
	return false
}

// State returns the current state.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips returns how many times the breaker has tripped open.
func (b *Breaker) Trips() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
