package dist

import (
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"stms/internal/trace"
)

// testTape materializes a small distinct tape per index.
func testTape(t *testing.T, i int) (string, *trace.Tape) {
	t.Helper()
	spec, err := trace.ByName("sci-em3d")
	if err != nil {
		t.Fatal(err)
	}
	spec = spec.Scaled(0.0625)
	seed := uint64(100 + i)
	tape := trace.NewTape(spec, seed, 2, 500)
	return TapeKey(spec, "", seed, 2, 500), tape
}

func TestStoreGetOrBuildSingleflight(t *testing.T) {
	s := NewStore(1<<30, "")
	key, want := testTape(t, 0)
	builds := 0
	var mu sync.Mutex
	build := func() *trace.Tape {
		mu.Lock()
		builds++
		mu.Unlock()
		_, tp := testTape(t, 0)
		return tp
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, _, err := s.GetOrBuild(context.Background(), key, nil, build)
			if err != nil {
				t.Error(err)
				return
			}
			if got.Bytes() != want.Bytes() {
				t.Errorf("tape size %d, want %d", got.Bytes(), want.Bytes())
			}
		}()
	}
	wg.Wait()
	if builds != 1 {
		t.Fatalf("build ran %d times under 8 concurrent callers, want 1", builds)
	}
	st := s.Stats()
	if st.Builds != 1 || st.Misses != 1 || st.Hits != 7 {
		t.Fatalf("stats = %+v, want 1 build, 1 miss, 7 hits", st)
	}
}

func TestStoreEvictionUnderConcurrentAccess(t *testing.T) {
	// A budget of one byte forces an eviction on every admission; the
	// race detector checks the LRU bookkeeping under concurrent
	// GetOrBuild, Get and Put traffic over many distinct tapes.
	dir := t.TempDir()
	s := NewStore(1, dir)
	const tapes = 6
	keys := make([]string, tapes)
	vals := make([]*trace.Tape, tapes)
	for i := range keys {
		keys[i], vals[i] = testTape(t, i)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < 3; r++ {
				for i := range keys {
					i := (i + w) % tapes
					switch (w + r) % 3 {
					case 0:
						build := func() *trace.Tape { _, tp := testTape(t, i); return tp }
						if _, _, err := s.GetOrBuild(context.Background(), keys[i], nil, build); err != nil {
							t.Error(err)
						}
					case 1:
						s.Get(keys[i])
					default:
						if err := s.Put(keys[i], vals[i]); err != nil {
							t.Error(err)
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under a 1-byte budget: %+v", st)
	}
	if st.BytesInUse < 0 {
		t.Fatalf("negative BytesInUse after eviction churn: %+v", st)
	}
	if n := s.Len(); n > 1 {
		t.Fatalf("%d tapes resident in a 1-byte memory tier", n)
	}
}

func TestStoreDiskTierPersists(t *testing.T) {
	dir := t.TempDir()
	key, _ := testTape(t, 0)
	build := func() *trace.Tape { _, tp := testTape(t, 0); return tp }

	s1 := NewStore(1<<30, dir)
	if _, src, err := s1.GetOrBuild(context.Background(), key, nil, build); err != nil || src != TapeBuilt {
		t.Fatalf("first resolution: src=%v err=%v, want built", src, err)
	}

	// A fresh store over the same directory loads from disk, not build.
	s2 := NewStore(1<<30, dir)
	poison := func() *trace.Tape {
		t.Error("build ran despite a valid disk tape")
		return nil
	}
	if _, src, err := s2.GetOrBuild(context.Background(), key, nil, poison); err != nil || src != TapeFromDisk {
		t.Fatalf("second resolution: src=%v err=%v, want disk", src, err)
	}
	if st := s2.Stats(); st.DiskHits != 1 {
		t.Fatalf("stats = %+v, want 1 disk hit", st)
	}
}

func TestStoreCorruptDiskTapeRebuilt(t *testing.T) {
	dir := t.TempDir()
	key, _ := testTape(t, 0)
	build := func() *trace.Tape { _, tp := testTape(t, 0); return tp }

	s1 := NewStore(1<<30, dir)
	if _, _, err := s1.GetOrBuild(context.Background(), key, nil, build); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key+tapeFileSuffix)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Truncate the on-disk tape mid-file: the store must detect the
	// damage, remove the file, and rebuild rather than serve it.
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := NewStore(1<<30, dir)
	rebuilt := false
	if _, src, err := s2.GetOrBuild(context.Background(), key, nil, func() *trace.Tape {
		rebuilt = true
		_, tp := testTape(t, 0)
		return tp
	}); err != nil || src != TapeBuilt {
		t.Fatalf("corrupt-tape resolution: src=%v err=%v, want rebuild", src, err)
	}
	if !rebuilt {
		t.Fatal("corrupt disk tape served without rebuilding")
	}
	if st := s2.Stats(); st.DiskSkips != 1 {
		t.Fatalf("stats = %+v, want 1 disk skip", st)
	}
	// The rebuild repaired the disk tier.
	repaired, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("disk tier not repaired: %v", err)
	}
	if len(repaired) != len(raw) {
		t.Fatalf("repaired file is %d bytes, original was %d", len(repaired), len(raw))
	}

	// Same for a wrong-identity file: valid STMSTAPE bytes under the
	// wrong address must be rejected by the content check.
	_, other := testTape(t, 1)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteTape(f, other); err != nil {
		t.Fatal(err)
	}
	f.Close()
	s3 := NewStore(1<<30, dir)
	if _, src, err := s3.GetOrBuild(context.Background(), key, nil, func() *trace.Tape {
		_, tp := testTape(t, 0)
		return tp
	}); err != nil || src != TapeBuilt {
		t.Fatalf("mis-addressed-tape resolution: src=%v err=%v, want rebuild", src, err)
	}
}

func TestStorePutRejectsWrongAddress(t *testing.T) {
	s := NewStore(1<<30, "")
	_, tape := testTape(t, 0)
	if err := s.Put("0000000000000000", tape); err == nil {
		t.Fatal("Put accepted a tape under the wrong address")
	}
	key, _ := testTape(t, 0)
	if err := s.Put(key, tape); err != nil {
		t.Fatalf("Put rejected the correct address: %v", err)
	}
	if _, ok := s.Get(key); !ok {
		t.Fatal("tape not resident after Put")
	}
}

func TestStoreBuildPanicContained(t *testing.T) {
	s := NewStore(1<<30, "")
	key := "deadbeef"
	_, _, err := s.GetOrBuild(context.Background(), key, nil, func() *trace.Tape {
		panic("invalid spec")
	})
	if err == nil {
		t.Fatal("panicking build returned no error")
	}
	// The broken entry is dropped so a fixed caller can retry.
	if _, _, err := s.GetOrBuild(context.Background(), key, nil, func() *trace.Tape {
		_, tp := testTape(t, 0)
		return tp
	}); err != nil {
		t.Fatalf("retry after contained panic: %v", err)
	}
}

func TestStoreFetchHookVerified(t *testing.T) {
	s := NewStore(1<<30, "")
	key, want := testTape(t, 0)
	_, wrong := testTape(t, 1)

	// A fetch hook returning the wrong tape is ignored; the build runs.
	_, src, err := s.GetOrBuild(context.Background(), key,
		func(context.Context) (*trace.Tape, error) { return wrong, nil },
		func() *trace.Tape { _, tp := testTape(t, 0); return tp })
	if err != nil || src != TapeBuilt {
		t.Fatalf("lying fetch hook: src=%v err=%v, want built", src, err)
	}

	// A truthful hook is trusted and counted as a peer hit.
	s2 := NewStore(1<<30, "")
	_, src, err = s2.GetOrBuild(context.Background(), key,
		func(context.Context) (*trace.Tape, error) { return want, nil },
		func() *trace.Tape {
			t.Error("built despite a valid peer tape")
			return nil
		})
	if err != nil || src != TapeFromPeer {
		t.Fatalf("peer fetch: src=%v err=%v, want peer", src, err)
	}
	if st := s2.Stats(); st.PeerHits != 1 {
		t.Fatalf("stats = %+v, want 1 peer hit", st)
	}
}

func TestStoreKeysSpansTiers(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(1<<30, dir)
	key, _ := testTape(t, 0)
	if _, _, err := s.GetOrBuild(context.Background(), key, nil, func() *trace.Tape {
		_, tp := testTape(t, 0)
		return tp
	}); err != nil {
		t.Fatal(err)
	}
	// A fresh store sees the disk file without loading it.
	s2 := NewStore(1<<30, dir)
	keys := s2.Keys()
	found := false
	for _, k := range keys {
		if k == key {
			found = true
		}
	}
	if !found {
		t.Fatalf("Keys() = %v, missing disk-tier %s", keys, key)
	}
}

func TestTapeKeyDisambiguates(t *testing.T) {
	spec, err := trace.ByName("web-apache")
	if err != nil {
		t.Fatal(err)
	}
	base := TapeKey(spec, "", 1, 4, 1000)
	if TapeKey(spec, "", 2, 4, 1000) == base {
		t.Fatal("seed not in the address")
	}
	if TapeKey(spec, "", 1, 2, 1000) == base {
		t.Fatal("cores not in the address")
	}
	if TapeKey(spec, "", 1, 4, 2000) == base {
		t.Fatal("record budget not in the address")
	}
	scn := trace.Stationary("w", spec)
	if TapeKey(trace.Spec{}, scn.Key(), 1, 4, 1000) == base {
		t.Fatal("scenario identity not in the address")
	}
	if len(base) != 64 {
		t.Fatalf("address %q is not a sha256 hex digest", base)
	}
	for i := 0; i < 3; i++ {
		if TapeKey(spec, "", 1, 4, 1000) != base {
			t.Fatal("address not deterministic")
		}
	}
}

func TestTapeKeyOfMatchesBuilders(t *testing.T) {
	spec, err := trace.ByName("sci-em3d")
	if err != nil {
		t.Fatal(err)
	}
	spec = spec.Scaled(0.0625)
	tape := trace.NewTape(spec, 7, 2, 400)
	if got, want := tapeKeyOf(tape), TapeKey(spec, "", 7, 2, 400); got != want {
		t.Fatalf("spec tape re-derives %s, want %s", got, want)
	}
	scn := trace.Stationary("w", spec)
	stape := trace.NewScenarioTape(scn, 7, 2, 400)
	if got, want := tapeKeyOf(stape), TapeKey(trace.Spec{}, scn.Key(), 7, 2, 400); got != want {
		t.Fatalf("scenario tape re-derives %s, want %s", got, want)
	}
}

func BenchmarkStoreHit(b *testing.B) {
	s := NewStore(1<<30, "")
	spec, _ := trace.ByName("sci-em3d")
	spec = spec.Scaled(0.0625)
	key := TapeKey(spec, "", 1, 2, 500)
	build := func() *trace.Tape { return trace.NewTape(spec, 1, 2, 500) }
	if _, _, err := s.GetOrBuild(context.Background(), key, nil, build); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.GetOrBuild(context.Background(), key, nil, build); err != nil {
			b.Fatal(err)
		}
	}
}
