package dist

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"stms/internal/sim"
)

// fireSequence records which of n successive matches of a probabilistic
// rule fire.
func fireSequence(seed uint64, n int) []bool {
	in := NewInjector(seed, nil, FaultRule{Kind: FaultCut, Prob: 0.5})
	out := make([]bool, n)
	for i := range out {
		out[i] = len(in.decide("h", "/p")) > 0
	}
	return out
}

func TestInjectorDeterministic(t *testing.T) {
	a, b := fireSequence(7, 256), fireSequence(7, 256)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed and schedule produced different fault sequences")
	}
	c := fireSequence(8, 256)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical 256-trial fault sequences")
	}
	fired := 0
	for _, f := range a {
		if f {
			fired++
		}
	}
	if fired < 64 || fired > 192 {
		t.Fatalf("Prob=0.5 rule fired %d/256 times", fired)
	}
}

func TestInjectorWindowAndMatching(t *testing.T) {
	in := NewInjector(1, nil,
		FaultRule{Kind: FaultRefuse, Host: "alpha", From: 1, Until: 3})
	var fires []bool
	for i := 0; i < 4; i++ {
		fires = append(fires, len(in.decide("alpha:9090", "/jobs")) > 0)
	}
	if !reflect.DeepEqual(fires, []bool{false, true, true, false}) {
		t.Fatalf("[1,3) window fired %v", fires)
	}
	// A non-matching host neither fires nor advances the counter.
	if len(in.decide("beta:9090", "/jobs")) != 0 {
		t.Fatal("rule fired for a non-matching host")
	}
	if got := in.Fired()[FaultRefuse]; got != 2 {
		t.Fatalf("fired count = %d, want 2", got)
	}
}

func TestInjectorCutAndCorruptBodies(t *testing.T) {
	payload := strings.Repeat("0123456789", 10)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, payload)
	}))
	defer ts.Close()

	get := func(in *Injector) ([]byte, error) {
		c := &http.Client{Transport: in}
		resp, err := c.Get(ts.URL + "/data")
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		return io.ReadAll(resp.Body)
	}

	// Cut: exactly After bytes arrive intact, then the stream errors.
	cut := NewInjector(1, nil, FaultRule{Kind: FaultCut, After: 7})
	got, err := get(cut)
	if err == nil {
		t.Fatal("cut stream read to completion")
	}
	if string(got) != payload[:7] {
		t.Fatalf("cut delivered %q, want the first 7 bytes intact", got)
	}

	// Corrupt: After bytes intact, everything after flipped.
	cor := NewInjector(1, nil, FaultRule{Kind: FaultCorrupt, After: 7})
	got, err = get(cor)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(payload) || string(got[:7]) != payload[:7] {
		t.Fatalf("corrupt body prefix damaged: %q", got)
	}
	if string(got[7:]) == payload[7:] {
		t.Fatal("bytes past the corruption threshold arrived intact")
	}

	// Refuse: no response at all.
	ref := NewInjector(1, nil, FaultRule{Kind: FaultRefuse})
	if _, err := get(ref); err == nil {
		t.Fatal("refused request succeeded")
	}
}

// eventStub is a hand-rolled worker endpoint streaming scripted event
// lines, for failure modes the real server can't be asked to produce.
func eventStub(t *testing.T, script func(w http.ResponseWriter, flush func())) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/jobs" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		f, _ := w.(http.Flusher)
		script(w, func() {
			if f != nil {
				f.Flush()
			}
		})
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestClientStallAbortsBounded(t *testing.T) {
	// A real worker whose response stream goes silent mid-event: the
	// injector delivers 10 bytes of the first event and then stalls. The
	// stall detector must abort the cell within its window rather than
	// hanging Run forever.
	srv := NewServer(ServerConfig{Name: "w", Store: NewStore(1<<30, "")})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	in := NewInjector(3, BaseTransport(Timeouts{}),
		FaultRule{Kind: FaultStall, Path: "/jobs", After: 10})
	c := NewClient(ts.URL,
		WithTransport(in),
		WithTimeouts(Timeouts{Stall: 200 * time.Millisecond}))

	start := time.Now()
	_, err := c.RunJob(context.Background(), testJob(t, "sci-em3d", sim.PrefSpec{Kind: sim.None}), nil)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("stalled stream succeeded")
	}
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("stall classified as %v, want ErrStalled", err)
	}
	if !IsTransport(err) {
		t.Fatalf("stall not classified as transport: %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("stall detector took %s, want bounded by the 200ms window", elapsed)
	}
	if got := in.Fired()[FaultStall]; got != 1 {
		t.Fatalf("stall fired %d times, want 1", got)
	}
}

func TestClientCutBetweenEvents(t *testing.T) {
	ts := eventStub(t, func(w http.ResponseWriter, flush func()) {
		fmt.Fprintf(w, `{"stms_event":1,"event":"started","job_id":"j"}`+"\n")
		flush()
		panic(http.ErrAbortHandler) // connection dies between events
	})
	c := NewClient(ts.URL, WithTimeouts(Timeouts{Stall: time.Second}))
	var kinds []string
	_, err := c.RunJob(context.Background(), testJob(t, "sci-em3d", sim.PrefSpec{Kind: sim.None}),
		func(ev Event) { kinds = append(kinds, ev.Kind) })
	if err == nil || !IsTransport(err) {
		t.Fatalf("cut stream error = %v, want transport", err)
	}
	if errors.Is(err, ErrStalled) {
		t.Fatalf("clean cut misclassified as stall: %v", err)
	}
	if len(kinds) != 1 || kinds[0] != "started" {
		t.Fatalf("events before the cut = %v", kinds)
	}
}

func TestClientMalformedTerminalEvent(t *testing.T) {
	// A "done" event with no result payload is a protocol break, not a
	// job result — transport, so the cell retries elsewhere.
	ts := eventStub(t, func(w http.ResponseWriter, flush func()) {
		fmt.Fprintf(w, `{"stms_event":1,"event":"done"}`+"\n")
	})
	c := NewClient(ts.URL)
	_, err := c.RunJob(context.Background(), testJob(t, "sci-em3d", sim.PrefSpec{Kind: sim.None}), nil)
	if err == nil || !IsTransport(err) {
		t.Fatalf("malformed done error = %v, want transport", err)
	}

	// So is an event speaking the wrong protocol version.
	ts2 := eventStub(t, func(w http.ResponseWriter, flush func()) {
		fmt.Fprintf(w, `{"stms_event":99,"event":"started"}`+"\n")
	})
	c2 := NewClient(ts2.URL)
	_, err = c2.RunJob(context.Background(), testJob(t, "sci-em3d", sim.PrefSpec{Kind: sim.None}), nil)
	if err == nil || !IsTransport(err) {
		t.Fatalf("wrong event version error = %v, want transport", err)
	}
}

func TestClientCancellationRacesHeartbeat(t *testing.T) {
	// A worker emitting steady heartbeats keeps the stall detector
	// happy; cancelling the job context must still end RunJob promptly,
	// classified as cancellation rather than stall or cut.
	ts := eventStub(t, func(w http.ResponseWriter, flush func()) {
		for i := 0; ; i++ {
			if _, err := fmt.Fprintf(w, `{"stms_event":1,"event":"progress","done":%d,"total":100}`+"\n", i); err != nil {
				return
			}
			flush()
			time.Sleep(10 * time.Millisecond)
		}
	})
	c := NewClient(ts.URL, WithTimeouts(Timeouts{Stall: time.Second}))
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(80 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := c.RunJob(ctx, testJob(t, "sci-em3d", sim.PrefSpec{Kind: sim.None}), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled job error = %v, want context.Canceled", err)
	}
	if IsTransport(err) {
		t.Fatalf("cancellation misclassified as transport: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("cancellation took %s", elapsed)
	}
}

func TestServerAuth(t *testing.T) {
	srv := NewServer(ServerConfig{Name: "locked", Store: NewStore(1<<30, ""), Token: "s3cret"})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	job := testJob(t, "sci-em3d", sim.PrefSpec{Kind: sim.None})

	// /healthz stays open — load balancers and breaker probes don't
	// carry credentials.
	anon := NewClient(ts.URL)
	if _, err := anon.Health(context.Background()); err != nil {
		t.Fatalf("unauthenticated health check failed: %v", err)
	}

	// Everything else rejects missing or wrong tokens with a
	// deterministic (non-transport) error: retrying elsewhere would be
	// rejected identically, so the coordinator must not burn retries.
	if _, err := anon.RunJob(context.Background(), job, nil); err == nil || IsTransport(err) {
		t.Fatalf("unauthenticated job error = %v, want plain 401 rejection", err)
	}
	wrong := NewClient(ts.URL, WithAuth("nope"))
	if _, err := wrong.RunJob(context.Background(), job, nil); err == nil || IsTransport(err) {
		t.Fatalf("wrong-token job error = %v, want plain 401 rejection", err)
	}
	if _, err := wrong.FetchTape(context.Background(), strings.Repeat("0", 64)); err == nil || IsTransport(err) {
		t.Fatalf("wrong-token fetch error = %v, want plain 401 rejection", err)
	}

	ok := NewClient(ts.URL, WithAuth("s3cret"))
	res, err := ok.RunJob(context.Background(), job, nil)
	if err != nil {
		t.Fatalf("authenticated job failed: %v", err)
	}
	if res.Worker != "locked" {
		t.Fatalf("result worker = %q", res.Worker)
	}
}

func TestAuthedPeersExchangeTapes(t *testing.T) {
	// Workers sharing a token still exchange tapes: the server's peer
	// clients present the same credential it demands.
	a := NewServer(ServerConfig{Name: "a", Store: NewStore(1<<30, ""), Token: "tok"})
	tsA := httptest.NewServer(a)
	defer tsA.Close()
	b := NewServer(ServerConfig{Name: "b", Store: NewStore(1<<30, ""), Peers: []string{tsA.URL}, Token: "tok"})
	tsB := httptest.NewServer(b)
	defer tsB.Close()

	job := testJob(t, "oltp-db2", sim.PrefSpec{Kind: sim.None})
	ca, cb := NewClient(tsA.URL, WithAuth("tok")), NewClient(tsB.URL, WithAuth("tok"))
	if _, err := ca.RunJob(context.Background(), job, nil); err != nil {
		t.Fatal(err)
	}
	res, err := cb.RunJob(context.Background(), job, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.TapeSource != TapeFromPeer {
		t.Fatalf("authed peer fetch source = %q, want peer", res.TapeSource)
	}
}

func TestCorruptedPeerTapeIsRebuilt(t *testing.T) {
	// Worker A serves tapes through corrupting middleware; worker B's
	// peer fetch receives damaged bytes. Content addressing must reject
	// them — B rebuilds, and the result is still bit-identical.
	in := NewInjector(5, nil, FaultRule{Kind: FaultCorrupt, Path: "/tapes", After: 64})
	a := NewServer(ServerConfig{Name: "a", Store: NewStore(1<<30, "")})
	tsA := httptest.NewServer(in.Wrap(a))
	defer tsA.Close()
	b := NewServer(ServerConfig{Name: "b", Store: NewStore(1<<30, ""), Peers: []string{tsA.URL}})
	tsB := httptest.NewServer(b)
	defer tsB.Close()

	job := testJob(t, "oltp-db2", sim.PrefSpec{Kind: sim.None})
	ca, cb := NewClient(tsA.URL), NewClient(tsB.URL)
	resA, err := ca.RunJob(context.Background(), job, nil)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := cb.RunJob(context.Background(), job, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resB.TapeSource != TapeBuilt {
		t.Fatalf("tape source after corrupted peer fetch = %q, want a rebuild", resB.TapeSource)
	}
	if got := in.Fired()[FaultCorrupt]; got == 0 {
		t.Fatal("corruption rule never fired")
	}
	if !reflect.DeepEqual(resA.Res, resB.Res) {
		t.Fatal("rebuilt result differs from the original")
	}
	if st := b.Store().Stats(); st.PeerHits != 0 || st.Builds != 1 {
		t.Fatalf("worker b stats = %+v, want a pure rebuild", st)
	}
}
