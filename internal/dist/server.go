package dist

// The worker daemon's HTTP API (stms-serve -worker):
//
//	GET  /healthz      → Health document (capacity, in-flight jobs)
//	POST /jobs         → execute a Job; the response is a stream of
//	                     Event JSON values: queued heartbeats while
//	                     waiting for a slot, started, throttled
//	                     progress, then done (with the Result) or
//	                     failed. The request context is the job's
//	                     context: a coordinator that dies mid-run
//	                     cancels its jobs.
//	GET  /jobs/{id}    → status of a job seen by this worker
//	GET  /tapes/{key}  → STMSTAPE bytes of a resident tape
//	PUT  /tapes/{key}  → admit a tape (verified against its address)
//	GET  /ckpts/{key}  → sealed STMSCKPT bytes of a job's latest
//	                     checkpoint (content-addressed by Job.CkptKey)
//	PUT  /ckpts/{key}  → admit a checkpoint (verified container; 400
//	                     on corruption)
//
// Unknown job ids and tape/checkpoint keys answer 404 with a
// nearest-match suggestion, the same way trace.ByName treats workload
// typos.

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"stms/internal/editdist"
	"stms/internal/sim"
	"stms/internal/trace"
)

// ServerConfig configures a worker.
type ServerConfig struct {
	// Name identifies the worker in results and health documents
	// (default: "worker").
	Name string
	// Store serves and caches tapes; nil runs every job live.
	Store *Store
	// Peers are base URLs of sibling workers asked for a tape before
	// building it.
	Peers []string
	// MaxJobs bounds concurrently executing jobs (default:
	// runtime.NumCPU()); excess POST /jobs block until a slot frees.
	MaxJobs int
	// Token, when non-empty, requires every request except GET /healthz
	// to carry "Authorization: Bearer <Token>"; everything else answers
	// 401. The worker presents the same token to its peers, so one
	// shared secret protects a whole fleet.
	Token string
	// CheckpointEvery, when > 0 and a Store is configured, checkpoints
	// every running checkpointable job to the store each time this many
	// trace records pass, and the job resumes from the freshest valid
	// checkpoint found locally or on a peer. Regardless of cadence, a
	// Store-backed worker flushes a final checkpoint on Drain.
	CheckpointEvery uint64
}

// Server is the worker daemon: an http.Handler executing cell jobs
// over a content-addressed tape store.
type Server struct {
	cfg   ServerConfig
	peers []*Client
	sem   chan struct{}

	drain     chan struct{}
	drainOnce sync.Once

	mu       sync.Mutex
	seq      int
	jobs     map[string]*jobStatus
	inflight int
}

// jobStatus is the GET /jobs/{id} view of one job.
type jobStatus struct {
	ID       string  `json:"job_id"`
	Workload string  `json:"workload"`
	Variant  string  `json:"variant"`
	State    string  `json:"state"` // running | done | failed | aborted | checkpointed
	Done     uint64  `json:"done"`
	Total    uint64  `json:"total"`
	Error    string  `json:"error,omitempty"`
	WallMS   float64 `json:"wall_ms,omitempty"`
}

// NewServer constructs a worker over its store and peer list.
func NewServer(cfg ServerConfig) *Server {
	if cfg.Name == "" {
		cfg.Name = "worker"
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = runtime.NumCPU()
	}
	s := &Server{
		cfg:   cfg,
		sem:   make(chan struct{}, cfg.MaxJobs),
		drain: make(chan struct{}),
		jobs:  make(map[string]*jobStatus),
	}
	for _, p := range cfg.Peers {
		var opts []ClientOption
		if cfg.Token != "" {
			opts = append(opts, WithAuth(cfg.Token))
		}
		s.peers = append(s.peers, NewClient(p, opts...))
	}
	return s
}

// Store returns the server's tape store (nil when running live).
func (s *Server) Store() *Store { return s.cfg.Store }

// Drain begins graceful shutdown: every in-flight checkpointable job
// writes a final checkpoint to the store and ends its stream with a
// terminal "checkpointed" event, so the coordinator retries warm
// instead of cold. Call before closing the listener; safe to call more
// than once. Jobs that cannot checkpoint (no store, non-serializable
// variant) are unaffected and run to completion or get cut by the
// listener close.
func (s *Server) Drain() {
	s.drainOnce.Do(func() { close(s.drain) })
}

// resumable reports whether this worker checkpoints jobs.
func (s *Server) resumable() bool { return s.cfg.Store != nil }

// authorized enforces the shared-secret bearer token on everything but
// the health endpoint (load balancers and half-open breaker probes may
// check liveness without credentials; the health document carries no
// job or tape content).
func (s *Server) authorized(w http.ResponseWriter, r *http.Request) bool {
	if s.cfg.Token == "" || r.URL.Path == "/healthz" {
		return true
	}
	want := "Bearer " + s.cfg.Token
	got := r.Header.Get("Authorization")
	if subtle.ConstantTimeCompare([]byte(got), []byte(want)) == 1 {
		return true
	}
	w.Header().Set("WWW-Authenticate", `Bearer realm="stms-serve"`)
	http.Error(w, "dist: this worker requires a bearer token (-token)", http.StatusUnauthorized)
	return false
}

// ServeHTTP routes the worker API.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if !s.authorized(w, r) {
		return
	}
	switch {
	case r.URL.Path == "/healthz" && r.Method == http.MethodGet:
		s.handleHealth(w)
	case r.URL.Path == "/jobs" && r.Method == http.MethodPost:
		s.handleRunJob(w, r)
	case strings.HasPrefix(r.URL.Path, "/jobs/") && r.Method == http.MethodGet:
		s.handleJobStatus(w, strings.TrimPrefix(r.URL.Path, "/jobs/"))
	case strings.HasPrefix(r.URL.Path, "/tapes/"):
		s.handleTape(w, r, strings.TrimPrefix(r.URL.Path, "/tapes/"))
	case strings.HasPrefix(r.URL.Path, "/ckpts/"):
		s.handleCkpt(w, r, strings.TrimPrefix(r.URL.Path, "/ckpts/"))
	default:
		http.Error(w, fmt.Sprintf("dist: no route %s %s", r.Method, r.URL.Path), http.StatusNotFound)
	}
}

func (s *Server) handleHealth(w http.ResponseWriter) {
	s.mu.Lock()
	h := Health{
		Version:  HealthFormatVersion,
		Name:     s.cfg.Name,
		Cores:    runtime.NumCPU(),
		MaxJobs:  s.cfg.MaxJobs,
		InFlight: s.inflight,
	}
	s.mu.Unlock()
	if s.cfg.Store != nil {
		h.Tapes = s.cfg.Store.Len()
		h.Resumable = true
		h.Ckpts = s.cfg.Store.CkptCount()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(h)
}

// handleRunJob executes a job, streaming Event JSON values as they
// happen. The stream itself is the protocol: a "done" or "failed"
// event terminates it; a connection cut before that is a transport
// failure the coordinator retries elsewhere.
func (s *Server) handleRunJob(w http.ResponseWriter, r *http.Request) {
	var job Job
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(&job); err != nil {
		http.Error(w, fmt.Sprintf("dist: decoding job: %v", err), http.StatusBadRequest)
		return
	}
	if err := job.Validate(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	var jobID string
	emit := func(ev Event) {
		ev.Version = EventFormatVersion
		ev.JobID = jobID
		enc.Encode(ev)
		if flusher != nil {
			flusher.Flush()
		}
	}

	// Bound in-flight executions; queue on the semaphore, but give up
	// when the caller does — and keep the stream audibly alive while
	// queued, so a coordinator's stall detector can tell a busy worker
	// from a dead one.
	select {
	case s.sem <- struct{}{}:
	case <-r.Context().Done():
		return
	default:
		emit(Event{Kind: "queued"})
		beat := time.NewTicker(time.Second)
		defer beat.Stop()
	queue:
		for {
			select {
			case s.sem <- struct{}{}:
				break queue
			case <-beat.C:
				emit(Event{Kind: "queued"})
			case <-r.Context().Done():
				return
			}
		}
	}
	defer func() { <-s.sem }()

	st := s.track(&job)
	defer s.untrack(st)
	jobID = st.ID
	emit(Event{Kind: "started"})

	// Throttled progress: at most ~4 events/second on the wire, every
	// callback into the status table.
	var lastSent time.Time
	progress := func(done, total uint64) {
		s.mu.Lock()
		st.Done, st.Total = done, total
		s.mu.Unlock()
		if time.Since(lastSent) < 250*time.Millisecond {
			return
		}
		lastSent = time.Now()
		emit(Event{Kind: "progress", Done: done, Total: total})
	}

	// Checkpointing: a store-backed worker checkpoints the job to its
	// store under the job's content address (Job.CkptKey) and resumes
	// from the freshest valid checkpoint it can find — its own store
	// (a previous attempt that died here, or one the coordinator
	// pushed) or a peer's. Checkpoints survive job completion: "latest
	// checkpoint per job identity" is the store's contract, and a
	// coordinator whose stream was cut may still want it.
	var exec *ExecOptions
	var ckptWrites, ckptBytes uint64
	if s.resumable() {
		if key, kerr := job.CkptKey(); kerr == nil {
			exec = &ExecOptions{
				Every: s.cfg.CheckpointEvery,
				Stop:  s.drain,
				Sink: func(data []byte) error {
					ckptWrites++
					ckptBytes += uint64(len(data))
					return s.cfg.Store.PutCkpt(key, data)
				},
			}
			if sim.CheckpointablePref(job.Pref) {
				exec.Resume = s.lookupCkpt(r.Context(), key)
			}
		}
	}

	start := time.Now()
	res, src, resumed, err := s.execute(r.Context(), &job, progress, exec)
	wallMS := float64(time.Since(start).Microseconds()) / 1000

	s.mu.Lock()
	switch {
	case errors.Is(err, sim.ErrCheckpointed):
		st.State, st.WallMS = "checkpointed", wallMS
	case err != nil:
		st.State, st.Error = "failed", err.Error()
	default:
		st.State, st.WallMS = "done", wallMS
	}
	s.mu.Unlock()

	if errors.Is(err, sim.ErrCheckpointed) {
		emit(Event{Kind: "checkpointed"})
		return
	}
	if err != nil {
		emit(Event{Kind: "failed", Error: err.Error()})
		return
	}
	emit(Event{Kind: "done", Result: &Result{
		Version:    ResultFormatVersion,
		Res:        res,
		TapeSource: src,
		Worker:     s.cfg.Name,
		WallMS:     wallMS,
		Resumed:    resumed,
		CkptWrites: ckptWrites,
		CkptBytes:  ckptBytes,
	}})
}

// execute contains panics to the failing job, like the lab's cell
// runner does — a worker must survive a malformed cell.
func (s *Server) execute(ctx context.Context, job *Job, progress sim.Progress, exec *ExecOptions) (res sim.Results, src TapeSource, resumed bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("dist: job %s/%s panicked: %v", job.Workload, job.Variant, r)
		}
	}()
	return ExecuteJob(ctx, job, s.cfg.Store, s.fetchFromPeers, progress, exec)
}

// lookupCkpt finds the freshest valid checkpoint for a job key: this
// worker's store first, then every peer, keeping whichever had
// progressed furthest. Containers that fail to verify or describe are
// ignored — a checkpoint is never trusted on arrival.
func (s *Server) lookupCkpt(ctx context.Context, key string) []byte {
	var best []byte
	var bestRecs uint64
	consider := func(data []byte) {
		if d, err := sim.PeekCheckpoint(data); err == nil && (best == nil || d.Records > bestRecs) {
			best, bestRecs = data, d.Records
		}
	}
	if data, ok := s.cfg.Store.GetCkpt(key); ok {
		consider(data)
	}
	for _, p := range s.peers {
		if data, err := p.FetchCkpt(ctx, key); err == nil {
			consider(data)
		}
	}
	return best
}

// fetchFromPeers asks each sibling worker for a tape; the first one
// holding it wins. Used as the store's miss hook so a tape built
// anywhere in the fleet is fetched, not rebuilt.
func (s *Server) fetchFromPeers(ctx context.Context, key string) (*trace.Tape, error) {
	var lastErr error
	for _, p := range s.peers {
		t, err := p.FetchTape(ctx, key)
		if err == nil {
			return t, nil
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("dist: no peers hold tape %.12s…", key)
	}
	return nil, lastErr
}

// track registers a job in the status table under a fresh id.
func (s *Server) track(job *Job) *jobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	st := &jobStatus{
		ID:       fmt.Sprintf("job-%d", s.seq),
		Workload: job.Workload,
		Variant:  job.Variant,
		State:    "running",
	}
	s.jobs[st.ID] = st
	s.inflight++
	return st
}

// untrack balances track however the job ends — normal completion, a
// panic unwinding through a chaos-cut response stream, a vanished
// caller. A job still "running" on the way out was aborted mid-flight.
func (s *Server) untrack(st *jobStatus) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inflight--
	if st.State == "running" {
		st.State = "aborted"
	}
}

func (s *Server) handleJobStatus(w http.ResponseWriter, id string) {
	s.mu.Lock()
	st, ok := s.jobs[id]
	var snapshot jobStatus
	if ok {
		snapshot = *st
	}
	known := make([]string, 0, len(s.jobs))
	for k := range s.jobs {
		known = append(known, k)
	}
	s.mu.Unlock()
	if !ok {
		msg := fmt.Sprintf("dist: unknown job id %q", id)
		if near := editdist.Nearest(id, known); near != "" {
			msg += fmt.Sprintf(" (did you mean %q?)", near)
		}
		http.Error(w, msg, http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(snapshot)
}

// handleTape serves and accepts tapes in the STMSTAPE wire format.
func (s *Server) handleTape(w http.ResponseWriter, r *http.Request, key string) {
	if s.cfg.Store == nil {
		http.Error(w, "dist: this worker runs without a tape store", http.StatusNotFound)
		return
	}
	switch r.Method {
	case http.MethodGet:
		t, ok := s.cfg.Store.Get(key)
		if !ok {
			msg := fmt.Sprintf("dist: no tape at address %.12s…", key)
			if near := editdist.Nearest(key, s.cfg.Store.Keys()); near != "" {
				msg += fmt.Sprintf(" (nearest resident address: %.12s…)", near)
			}
			http.Error(w, msg, http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		if err := trace.WriteTape(w, t); err != nil && r.Context().Err() == nil {
			// Mid-stream failure; the client sees a truncated tape and
			// treats it as a miss.
			return
		}
	case http.MethodPut:
		t, err := trace.ReadTape(r.Body)
		if err != nil {
			http.Error(w, fmt.Sprintf("dist: decoding tape: %v", err), http.StatusBadRequest)
			return
		}
		if err := s.cfg.Store.Put(key, t); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "dist: tapes support GET and PUT", http.StatusMethodNotAllowed)
	}
}

// handleCkpt serves and accepts sealed STMSCKPT containers — the
// checkpoint exchange the coordinator uses to move a dead worker's
// progress to a live one. Both directions verify the container; a
// corrupt checkpoint is a 404 (GET, after discarding it) or a 400
// (PUT), never state.
func (s *Server) handleCkpt(w http.ResponseWriter, r *http.Request, key string) {
	if s.cfg.Store == nil {
		http.Error(w, "dist: this worker runs without a store", http.StatusNotFound)
		return
	}
	switch r.Method {
	case http.MethodGet:
		data, ok := s.cfg.Store.GetCkpt(key)
		if !ok {
			msg := fmt.Sprintf("dist: no checkpoint at address %.12s…", key)
			if near := editdist.Nearest(key, s.cfg.Store.CkptKeys()); near != "" {
				msg += fmt.Sprintf(" (nearest resident address: %.12s…)", near)
			}
			http.Error(w, msg, http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(data)
	case http.MethodPut:
		data, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, fmt.Sprintf("dist: reading checkpoint: %v", err), http.StatusBadRequest)
			return
		}
		if err := s.cfg.Store.PutCkpt(key, data); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "dist: checkpoints support GET and PUT", http.StatusMethodNotAllowed)
	}
}
