// Package cpu models the processor cores that drive the memory system.
//
// The paper simulates 4 GHz, 4-wide out-of-order cores with 96-entry ROBs
// (Table 1). For a prefetching study, the behaviours that matter are
// (a) how many off-chip misses a core can overlap (memory-level
// parallelism, bounded by the ROB window and by address dependences
// between loads) and (b) how memory stall time trades against on-chip
// compute time. This package implements a trace-driven core that captures
// exactly those: each trace record carries the dispatch-cycle cost and
// instruction count of the work preceding one load, plus a flag marking
// the load address-dependent on the previous load (pointer chasing).
//
// Loads issue at max(dispatch time, dependence resolution); the ROB admits
// at most Config.ROB instructions between the oldest incomplete load and
// the dispatch point; completed loads retire in order. The model is O(1)
// per record and, combined with the DRAM queueing model, reproduces the
// workload MLP spectrum of Table 2.
package cpu

import (
	"stms/internal/event"
	"stms/internal/trace"
)

// Config sets the core microarchitecture parameters.
type Config struct {
	// ROB is the reorder-buffer capacity in instructions (Table 1: 96).
	ROB int
	// Quantum bounds how many cycles of local dispatch time a core may run
	// ahead of global simulation time before yielding to the event engine.
	Quantum uint64
}

// DefaultConfig returns Table 1's core.
func DefaultConfig() Config { return Config{ROB: 96, Quantum: 256} }

// LoadResult is returned by a LoadFunc for requests whose latency is known
// immediately (cache hits, prefetch-buffer hits).
type LoadResult struct {
	// Sync is true when CompleteAt is valid; false when the completion
	// will be delivered through the done callback instead.
	Sync       bool
	CompleteAt uint64
}

// LoadFunc is the memory system seen by a core. The core calls it once per
// load with the issue time (which may be up to Quantum cycles ahead of
// engine time) and an opaque completion token. Implementations either
// resolve synchronously (returning Sync=true) or later call the core's
// Complete(token, t) exactly once with the completion time.
//
// The token replaces the per-load done closure of earlier versions: the
// memory system threads it (two machine words alongside the block number)
// through its own queues, so issuing a load allocates nothing.
type LoadFunc func(core int, pc uint32, blk uint64, issueAt uint64, token uint32) LoadResult

type robEntry struct {
	instrEnd uint64 // cumulative instruction index at this record's end
	complete bool
	compTime uint64
}

// Core is one trace-driven processor core.
type Core struct {
	id   int
	cfg  Config
	eng  *event.Engine
	src  trace.FrameSource
	load LoadFunc

	// The core consumes its trace frame-at-a-time: frame holds the
	// current batch of records (borrowed from src until the next
	// refill), fpos the next unread index. Reading a record is four
	// column loads — no per-record interface dispatch. framesRead
	// counts successful NextFrame calls so a checkpoint restore can
	// fast-forward a fresh deterministic source to the same frame.
	frame      *trace.Frame
	fpos       int
	framesRead uint64

	rec     trace.Record
	haveRec bool

	dispatch   uint64 // local dispatch clock
	dispatched uint64 // instructions dispatched
	retired    uint64 // instructions retired (committed)

	ring  []robEntry
	head  int
	tail  int
	count int

	lastIdx     int  // ring index of the most recent load
	haveLast    bool // whether lastIdx is valid (any load in flight or done)
	lastDone    bool
	lastDoneAt  uint64
	exhausted   bool
	stopped     bool
	paused      bool
	target      uint64 // committed-instruction target (absolute), 0 = none
	targetFired bool
	onTarget    func()

	// Stats.
	loads      uint64
	stallROB   uint64 // times dispatch blocked on a full ROB
	stallDep   uint64 // times dispatch blocked on an address dependence
	retireMark uint64 // committed-instruction snapshot for windowing
	finish     uint64 // latest load completion time retired so far
}

// New creates a core reading records from gen and issuing loads via load.
// Records are consumed through a synchronous frame source; use NewFramed
// to feed the core from a shared or pipelined source.
func New(id int, cfg Config, eng *event.Engine, gen trace.Generator, load LoadFunc) *Core {
	return NewFramed(id, cfg, eng, trace.Frames(gen), load)
}

// NewFramed creates a core reading records frame-at-a-time from src and
// issuing loads via load. The core borrows each frame until it requests
// the next one; it never closes src.
func NewFramed(id int, cfg Config, eng *event.Engine, src trace.FrameSource, load LoadFunc) *Core {
	if cfg.ROB <= 0 {
		cfg.ROB = 96
	}
	if cfg.Quantum == 0 {
		cfg.Quantum = 256
	}
	return &Core{
		id:   id,
		cfg:  cfg,
		eng:  eng,
		src:  src,
		load: load,
		// Each record carries at least one instruction, so the ROB can
		// never hold more outstanding loads than instructions.
		ring: make([]robEntry, cfg.ROB+1),
	}
}

// ID returns the core's index.
func (c *Core) ID() int { return c.id }

// Committed returns total instructions retired.
func (c *Core) Committed() uint64 { return c.retired }

// Loads returns total loads issued.
func (c *Core) Loads() uint64 { return c.loads }

// MarkWindow snapshots the committed-instruction count; CommittedInWindow
// reports progress since the last mark. Used at the warm-up boundary.
func (c *Core) MarkWindow() { c.retireMark = c.retired }

// CommittedInWindow returns instructions committed since MarkWindow.
func (c *Core) CommittedInWindow() uint64 { return c.retired - c.retireMark }

// SetTarget arranges for fn to run once the core has committed n more
// instructions than the current window mark.
func (c *Core) SetTarget(n uint64, fn func()) {
	c.target = c.retireMark + n
	c.targetFired = false
	c.onTarget = fn
}

// Stop halts dispatch permanently (outstanding loads still complete).
func (c *Core) Stop() { c.stopped = true }

// Pause suspends dispatch until Resume. Outstanding loads still complete
// and are recorded, but nothing dispatches or retires while paused. Used
// by the sampling scheduler to line all cores up on the warm-up boundary
// so a measurement window loses no records to inter-core skew.
func (c *Core) Pause() { c.paused = true }

// Resume lifts a Pause and reschedules the dispatch loop. The local
// dispatch clock catches up to engine time on the next step, so paused
// cycles are not billed as work.
func (c *Core) Resume() {
	if c.paused {
		c.paused = false
		c.eng.ScheduleH(0, c, 0, 0, 0)
	}
}

// Exhausted reports whether the trace generator ran dry.
func (c *Core) Exhausted() bool { return c.exhausted }

// FinishTime returns the completion time of the latest retired load. For
// cores that ran ahead of the event engine on cache hits this is the
// faithful end-of-work time.
func (c *Core) FinishTime() uint64 { return c.finish }

// Start schedules the core's first dispatch step.
func (c *Core) Start() {
	c.eng.ScheduleH(0, c, 0, 0, 0)
}

// Handle implements event.Handler: every event a core schedules for
// itself is a dispatch step.
func (c *Core) Handle(now uint64, kind uint8, a, b uint64) { c.step() }

func (c *Core) retireHead() {
	e := &c.ring[c.head]
	c.retired = e.instrEnd
	if e.compTime > c.finish {
		c.finish = e.compTime
	}
	// Conditional wrap: the ring is ROB+1 entries, not a power of two, so
	// a modulo here would be an integer division on the hottest path.
	if c.head++; c.head == len(c.ring) {
		c.head = 0
	}
	c.count--
	if c.target != 0 && !c.targetFired && c.retired >= c.target {
		c.targetFired = true
		if c.onTarget != nil {
			c.onTarget()
		}
	}
}

// step advances the core: retire completed heads, dispatch records, issue
// loads. It returns when blocked (ROB, dependence), out of trace, or past
// the run-ahead quantum; completion callbacks and scheduled events resume
// it. Re-entry is always safe: every gate is re-evaluated from state.
func (c *Core) step() {
	for {
		if c.stopped || c.paused {
			return
		}
		now := c.eng.Now()
		if c.dispatch < now {
			c.dispatch = now
		}
		// Retire in order as far as completions in the local past allow.
		for c.count > 0 && c.ring[c.head].complete && c.ring[c.head].compTime <= c.dispatch {
			c.retireHead()
		}
		if !c.haveRec {
			if c.exhausted {
				// Re-entered by a completion after the source went dry:
				// keep retiring, never touch the source again.
				c.drainRetire()
				return
			}
			f := c.frame
			if f == nil || c.fpos == f.Len() {
				if f = c.src.NextFrame(); f == nil {
					c.exhausted = true
					c.frame = nil
					c.drainRetire()
					return
				}
				c.frame = f
				c.fpos = 0
				c.framesRead++
			}
			i := c.fpos
			c.fpos = i + 1
			c.rec.PC = f.PC[i]
			c.rec.Block = f.Block[i]
			c.rec.Dep = f.Dep[i]
			c.rec.Work = f.Work[i]
			c.rec.Instrs = f.Instrs[i]
			if c.rec.Instrs == 0 {
				c.rec.Instrs = 1
			}
			c.haveRec = true
		}
		// ROB gate: all of this record's instructions must fit between
		// the oldest unretired instruction and the dispatch point.
		if c.count > 0 && c.dispatched+uint64(c.rec.Instrs)-c.retired > uint64(c.cfg.ROB) {
			head := &c.ring[c.head]
			if !head.complete {
				c.stallROB++
				return // head completion will re-step
			}
			// Completed, but in the local future: dispatch stalls until
			// the head retires.
			if head.compTime > c.dispatch {
				c.stallROB++
				c.dispatch = head.compTime
			}
			c.retireHead()
			continue
		}
		// Dependence gate: a pointer-chasing load cannot issue (and, in
		// this model, dispatch does not run ahead of it) until the
		// previous load's value is available.
		if c.rec.Dep && c.haveLast && !c.lastDone {
			c.stallDep++
			return // dependence completion will re-step
		}
		// Dispatch the record's instructions.
		c.dispatch += uint64(c.rec.Work)
		c.dispatched += uint64(c.rec.Instrs)
		issue := c.dispatch
		if c.rec.Dep && c.haveLast && c.lastDoneAt > issue {
			issue = c.lastDoneAt
		}
		// Allocate the ROB entry before issuing so the completion
		// callback (which may fire synchronously from a nested event in
		// pathological cases) always finds its slot.
		idx := c.tail
		c.ring[idx] = robEntry{instrEnd: c.dispatched}
		if c.tail++; c.tail == len(c.ring) {
			c.tail = 0
		}
		c.count++
		c.lastIdx = idx
		c.haveLast = true
		c.lastDone = false
		c.loads++

		rec := c.rec
		c.haveRec = false
		res := c.load(c.id, rec.PC, rec.Block, issue, uint32(idx))
		if res.Sync {
			c.completeLoadInline(idx, res.CompleteAt)
		}
		// Yield if the local clock ran too far ahead of global time.
		if c.dispatch > now+c.cfg.Quantum {
			c.eng.AtH(c.dispatch, c, 0, 0, 0)
			return
		}
	}
}

// drainRetire retires all completed entries at end of trace, advancing the
// local clock through their completion times.
func (c *Core) drainRetire() {
	for c.count > 0 && c.ring[c.head].complete {
		if t := c.ring[c.head].compTime; t > c.dispatch {
			c.dispatch = t
		}
		c.retireHead()
	}
}

// completeLoadInline records completion without re-entering step (the
// caller is already inside step's loop).
func (c *Core) completeLoadInline(idx int, t uint64) {
	e := &c.ring[idx]
	e.complete = true
	e.compTime = t
	if idx == c.lastIdx {
		c.lastDone = true
		c.lastDoneAt = t
	}
}

// Complete is the asynchronous completion path: the memory system calls it
// with the token it received from LoadFunc once the load's data is
// available. It records completion and resumes dispatch, which may have
// been blocked on this load.
func (c *Core) Complete(token uint32, t uint64) {
	c.completeLoadInline(int(token), t)
	c.step()
}

// StallStats returns how often dispatch blocked on the ROB and on load
// dependences (for tests and diagnostics).
func (c *Core) StallStats() (rob, dep uint64) { return c.stallROB, c.stallDep }
