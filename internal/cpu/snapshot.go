package cpu

import (
	"fmt"

	"stms/internal/ckpt"
)

// Snapshot serializes the core's full dispatch state: trace cursor
// (frame count + intra-frame position + staged record), ROB ring,
// clocks and counters. The trace itself is not stored — generation is
// deterministic per (spec, seed, core), so Restore fast-forwards a
// fresh source by the recorded frame count.
func (c *Core) Snapshot(enc *ckpt.Encoder) {
	enc.Section("cpu.Core")
	enc.Int(c.id)
	enc.U64(c.framesRead)
	enc.Bool(c.frame != nil)
	enc.Int(c.fpos)
	enc.U32(c.rec.PC)
	enc.U64(c.rec.Block)
	enc.Bool(c.rec.Dep)
	enc.U32(c.rec.Work)
	enc.U32(c.rec.Instrs)
	enc.Bool(c.haveRec)
	enc.U64(c.dispatch)
	enc.U64(c.dispatched)
	enc.U64(c.retired)
	enc.Int(len(c.ring))
	for i := range c.ring {
		e := &c.ring[i]
		enc.U64(e.instrEnd)
		enc.Bool(e.complete)
		enc.U64(e.compTime)
	}
	enc.Int(c.head)
	enc.Int(c.tail)
	enc.Int(c.count)
	enc.Int(c.lastIdx)
	enc.Bool(c.haveLast)
	enc.Bool(c.lastDone)
	enc.U64(c.lastDoneAt)
	enc.Bool(c.exhausted)
	enc.Bool(c.stopped)
	enc.U64(c.target)
	enc.Bool(c.targetFired)
	enc.U64(c.loads)
	enc.U64(c.stallROB)
	enc.U64(c.stallDep)
	enc.U64(c.retireMark)
	enc.U64(c.finish)
}

// Restore rebuilds the core from a Snapshot. The core must be freshly
// constructed (NewFramed) over a source that regenerates the identical
// frame sequence; Restore replays NextFrame to the checkpointed frame.
// The onTarget callback is not serialized — re-attach it afterwards
// with SetTargetFn if the run had a pending measurement target.
func (c *Core) Restore(dec *ckpt.Decoder) error {
	dec.Section("cpu.Core")
	id := dec.Int()
	framesRead := dec.U64()
	hadFrame := dec.Bool()
	if err := dec.Err(); err != nil {
		return err
	}
	if id != c.id {
		return fmt.Errorf("cpu: snapshot is for core %d, restoring core %d", id, c.id)
	}
	for i := uint64(0); i < framesRead; i++ {
		f := c.src.NextFrame()
		if f == nil {
			return fmt.Errorf("cpu: core %d source ran dry after %d frames, snapshot needs %d", c.id, i, framesRead)
		}
		c.frame = f
	}
	c.framesRead = framesRead
	if !hadFrame {
		c.frame = nil
	}
	c.fpos = dec.Int()
	c.rec.PC = dec.U32()
	c.rec.Block = dec.U64()
	c.rec.Dep = dec.Bool()
	c.rec.Work = dec.U32()
	c.rec.Instrs = dec.U32()
	c.haveRec = dec.Bool()
	c.dispatch = dec.U64()
	c.dispatched = dec.U64()
	c.retired = dec.U64()
	nr := dec.Int()
	if err := dec.Err(); err != nil {
		return err
	}
	if nr != len(c.ring) {
		return fmt.Errorf("cpu: snapshot ROB ring has %d entries, want %d", nr, len(c.ring))
	}
	for i := range c.ring {
		e := &c.ring[i]
		e.instrEnd = dec.U64()
		e.complete = dec.Bool()
		e.compTime = dec.U64()
	}
	c.head = dec.Int()
	c.tail = dec.Int()
	c.count = dec.Int()
	c.lastIdx = dec.Int()
	c.haveLast = dec.Bool()
	c.lastDone = dec.Bool()
	c.lastDoneAt = dec.U64()
	c.exhausted = dec.Bool()
	c.stopped = dec.Bool()
	c.target = dec.U64()
	c.targetFired = dec.Bool()
	c.loads = dec.U64()
	c.stallROB = dec.U64()
	c.stallDep = dec.U64()
	c.retireMark = dec.U64()
	c.finish = dec.U64()
	if err := dec.Err(); err != nil {
		return err
	}
	if c.frame != nil && c.fpos > c.frame.Len() {
		return fmt.Errorf("cpu: core %d frame position %d exceeds frame length %d", c.id, c.fpos, c.frame.Len())
	}
	return nil
}

// SetTargetFn re-attaches the measurement-target callback after a
// Restore without disturbing the serialized target/fired state.
func (c *Core) SetTargetFn(fn func()) { c.onTarget = fn }
