package cpu

import (
	"testing"

	"stms/internal/event"
	"stms/internal/trace"
)

// fixedMem resolves every load synchronously with a fixed latency.
type fixedMem struct {
	latency uint64
	loads   int
}

func (f *fixedMem) load(core int, pc uint32, blk uint64, issueAt uint64, token uint32) LoadResult {
	f.loads++
	return LoadResult{Sync: true, CompleteAt: issueAt + f.latency}
}

func runTrace(t *testing.T, recs []trace.Record, load LoadFunc) (*Core, *event.Engine) {
	t.Helper()
	eng := event.NewEngine()
	gen := &trace.SliceGenerator{Records: recs}
	c := New(0, Config{ROB: 96, Quantum: 256}, eng, gen, load)
	c.Start()
	eng.Drain(nil)
	return c, eng
}

func rec(work, instrs uint32, dep bool) trace.Record {
	return trace.Record{PC: 1, Block: 1000, Dep: dep, Instrs: instrs, Work: work}
}

func TestPureComputeTiming(t *testing.T) {
	// 10 records, 10 cycles of work each, 2-cycle loads: the dispatch
	// clock should end near 100.
	var recs []trace.Record
	for i := 0; i < 10; i++ {
		r := rec(10, 40, false)
		r.Block = uint64(i * 100)
		recs = append(recs, r)
	}
	mem := &fixedMem{latency: 2}
	c, _ := runTrace(t, recs, mem.load)
	if c.Committed() != 400 {
		t.Fatalf("committed = %d, want 400", c.Committed())
	}
	// Last record dispatched at 100; its load completes at 102.
	if c.FinishTime() < 100 || c.FinishTime() > 110 {
		t.Fatalf("end time = %d, want ~102", c.FinishTime())
	}
	if mem.loads != 10 {
		t.Fatalf("loads = %d", mem.loads)
	}
}

func TestDependentLoadsSerialize(t *testing.T) {
	// Small work, long loads, all dependent: each load issues only after
	// the previous completes — total ≈ n × latency.
	var recs []trace.Record
	for i := 0; i < 10; i++ {
		r := rec(1, 4, i > 0)
		r.Block = uint64(i)
		recs = append(recs, r)
	}
	mem := &fixedMem{latency: 100}
	c, _ := runTrace(t, recs, mem.load)
	if c.FinishTime() < 1000 {
		t.Fatalf("dependent chain finished at %d, want >= 1000", c.FinishTime())
	}
}

func TestIndependentLoadsOverlap(t *testing.T) {
	// Small records that fit many-at-a-time in the ROB with long loads:
	// loads overlap, so total << n × latency.
	var recs []trace.Record
	for i := 0; i < 10; i++ {
		r := rec(1, 4, false)
		r.Block = uint64(i)
		recs = append(recs, r)
	}
	mem := &fixedMem{latency: 100}
	c, _ := runTrace(t, recs, mem.load)
	if c.FinishTime() == 0 || c.FinishTime() > 300 {
		t.Fatalf("independent loads finished at %d, want well under 1000", c.FinishTime())
	}
}

func TestROBLimitsOverlap(t *testing.T) {
	// Each record is 48 instructions: only 2 fit in a 96-entry ROB, so
	// at most 2 loads overlap. With 10 loads of 100 cycles the total is
	// at least 5 × 100.
	var recs []trace.Record
	for i := 0; i < 10; i++ {
		r := rec(1, 48, false)
		r.Block = uint64(i)
		recs = append(recs, r)
	}
	mem := &fixedMem{latency: 100}
	c, _ := runTrace(t, recs, mem.load)
	if c.FinishTime() < 450 {
		t.Fatalf("ROB-limited run finished at %d, too much overlap", c.FinishTime())
	}
	robStalls, _ := c.StallStats()
	if robStalls == 0 {
		t.Fatal("expected ROB stalls")
	}
}

// asyncMem completes loads through Core.Complete after a delay on the
// engine, exercising the token path the timed simulator uses.
type asyncMem struct {
	eng     *event.Engine
	core    *Core
	latency uint64
}

func (a *asyncMem) load(core int, pc uint32, blk uint64, issueAt uint64, token uint32) LoadResult {
	a.eng.At(issueAt+a.latency, func() { a.core.Complete(token, a.eng.Now()) })
	return LoadResult{}
}

func TestAsyncCompletionPath(t *testing.T) {
	eng := event.NewEngine()
	var recs []trace.Record
	for i := 0; i < 20; i++ {
		r := rec(5, 10, i%2 == 1)
		r.Block = uint64(i)
		recs = append(recs, r)
	}
	mem := &asyncMem{eng: eng, latency: 50}
	gen := &trace.SliceGenerator{Records: recs}
	c := New(0, DefaultConfig(), eng, gen, mem.load)
	mem.core = c
	c.Start()
	eng.Drain(nil)
	if c.Committed() != 200 {
		t.Fatalf("committed = %d, want 200", c.Committed())
	}
	if !c.Exhausted() {
		t.Fatal("generator should be exhausted")
	}
}

func TestWindowAccounting(t *testing.T) {
	var recs []trace.Record
	for i := 0; i < 10; i++ {
		recs = append(recs, rec(10, 10, false))
	}
	mem := &fixedMem{latency: 2}
	eng := event.NewEngine()
	gen := &trace.SliceGenerator{Records: recs}
	c := New(0, DefaultConfig(), eng, gen, mem.load)
	c.Start()
	eng.Drain(nil)
	c.MarkWindow()
	if c.CommittedInWindow() != 0 {
		t.Fatal("window should be empty after mark")
	}
}

func TestTargetCallback(t *testing.T) {
	var recs []trace.Record
	for i := 0; i < 100; i++ {
		recs = append(recs, rec(10, 10, false))
	}
	mem := &fixedMem{latency: 2}
	eng := event.NewEngine()
	gen := &trace.SliceGenerator{Records: recs}
	c := New(0, DefaultConfig(), eng, gen, mem.load)
	fired := false
	var committedAtFire uint64
	c.SetTarget(500, func() {
		fired = true
		committedAtFire = c.Committed()
	})
	c.Start()
	eng.Drain(nil)
	if !fired {
		t.Fatal("target callback never fired")
	}
	if committedAtFire < 500 {
		t.Fatalf("fired at %d committed, want >= 500", committedAtFire)
	}
}

func TestStopHaltsDispatch(t *testing.T) {
	var recs []trace.Record
	for i := 0; i < 1000; i++ {
		recs = append(recs, rec(10, 10, false))
	}
	mem := &fixedMem{latency: 2}
	eng := event.NewEngine()
	gen := &trace.SliceGenerator{Records: recs}
	c := New(0, DefaultConfig(), eng, gen, mem.load)
	c.SetTarget(100, func() { c.Stop() })
	c.Start()
	eng.Drain(nil)
	if c.Committed() >= 10000 {
		t.Fatal("core did not stop")
	}
}

func TestDeterminism(t *testing.T) {
	build := func() (uint64, uint64) {
		eng := event.NewEngine()
		var recs []trace.Record
		for i := 0; i < 500; i++ {
			r := rec(uint32(1+i%7), uint32(4+i%13), i%3 == 0)
			r.Block = uint64(i % 97)
			recs = append(recs, r)
		}
		mem := &asyncMem{eng: eng, latency: 80}
		gen := &trace.SliceGenerator{Records: recs}
		c := New(0, DefaultConfig(), eng, gen, mem.load)
		mem.core = c
		c.Start()
		eng.Drain(nil)
		return c.Committed(), eng.Now()
	}
	c1, t1 := build()
	c2, t2 := build()
	if c1 != c2 || t1 != t2 {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)", c1, t1, c2, t2)
	}
}

func TestZeroInstrRecordClamped(t *testing.T) {
	recs := []trace.Record{{PC: 1, Block: 1, Instrs: 0, Work: 5}}
	mem := &fixedMem{latency: 2}
	c, _ := runTrace(t, recs, mem.load)
	if c.Committed() != 1 {
		t.Fatalf("committed = %d, want clamped 1", c.Committed())
	}
}

// TestPauseResume covers the sampling barrier's core-side contract:
// Pause parks dispatch exactly where it is (in-flight loads still
// complete, nothing retires), and Resume picks the trace back up and
// finishes it — committing exactly what an unpaused run commits.
func TestPauseResume(t *testing.T) {
	var recs []trace.Record
	for i := 0; i < 20; i++ {
		r := rec(5, 10, false)
		r.Block = uint64(i * 100)
		recs = append(recs, r)
	}
	mem := &fixedMem{latency: 3}
	eng := event.NewEngine()
	c := New(0, Config{ROB: 96, Quantum: 256}, eng, &trace.SliceGenerator{Records: recs}, mem.load)
	c.Pause()
	c.Start()
	eng.Drain(nil)
	if c.Committed() != 0 || mem.loads != 0 {
		t.Fatalf("paused core made progress: committed %d, loads %d", c.Committed(), mem.loads)
	}
	c.Resume()
	eng.Drain(nil)
	if c.Committed() != 200 {
		t.Fatalf("resumed core committed %d instructions, want 200", c.Committed())
	}
	if mem.loads != 20 {
		t.Fatalf("resumed core issued %d loads, want 20", mem.loads)
	}
	// Resume on a never-paused core is a no-op.
	c.Resume()
	eng.Drain(nil)
	if c.Committed() != 200 {
		t.Fatalf("idempotent resume changed commit count to %d", c.Committed())
	}
}
