package cpu

import (
	"testing"

	"stms/internal/event"
	"stms/internal/trace"
)

// Property checks on the core's timing model.

// TestIPCNeverExceedsWorkBound: total cycles can never be less than the
// total dispatch work of the records, whatever the memory behaviour.
func TestIPCNeverExceedsWorkBound(t *testing.T) {
	seeds := []uint64{1, 7, 31, 101}
	for _, seed := range seeds {
		var recs []trace.Record
		var totalWork uint64
		x := seed
		rnd := func(n uint64) uint64 {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			return x % n
		}
		for i := 0; i < 2000; i++ {
			r := trace.Record{
				PC:     uint32(rnd(64)),
				Block:  rnd(1 << 20),
				Dep:    rnd(3) == 0,
				Instrs: uint32(1 + rnd(64)),
				Work:   uint32(1 + rnd(100)),
			}
			totalWork += uint64(r.Work)
			recs = append(recs, r)
		}
		eng := event.NewEngine()
		mem := &asyncMem{eng: eng, latency: uint64(20 + rnd(200))}
		c := New(0, DefaultConfig(), eng, &trace.SliceGenerator{Records: recs}, mem.load)
		mem.core = c
		c.Start()
		eng.Drain(nil)
		if c.FinishTime() < totalWork {
			t.Fatalf("seed %d: finish %d below total dispatch work %d",
				seed, c.FinishTime(), totalWork)
		}
		var totalInstrs uint64
		for _, r := range recs {
			totalInstrs += uint64(r.Instrs)
		}
		if c.Committed() != totalInstrs {
			t.Fatalf("seed %d: committed %d != %d", seed, c.Committed(), totalInstrs)
		}
	}
}

// TestLatencyMonotonicity: raising memory latency can never finish the
// same trace earlier.
func TestLatencyMonotonicity(t *testing.T) {
	build := func() []trace.Record {
		var recs []trace.Record
		for i := 0; i < 1000; i++ {
			recs = append(recs, trace.Record{
				PC: 1, Block: uint64(i * 17 % 257), Dep: i%4 == 0,
				Instrs: 8, Work: 5,
			})
		}
		return recs
	}
	var prev uint64
	for _, lat := range []uint64{10, 50, 150, 400} {
		eng := event.NewEngine()
		mem := &asyncMem{eng: eng, latency: lat}
		c := New(0, DefaultConfig(), eng, &trace.SliceGenerator{Records: build()}, mem.load)
		mem.core = c
		c.Start()
		eng.Drain(nil)
		if c.FinishTime() < prev {
			t.Fatalf("latency %d finished at %d, earlier than a faster memory (%d)",
				lat, c.FinishTime(), prev)
		}
		prev = c.FinishTime()
	}
}

// TestSmallerROBNeverFaster: shrinking the ROB cannot speed up a trace of
// independent misses.
func TestSmallerROBNeverFaster(t *testing.T) {
	build := func() []trace.Record {
		var recs []trace.Record
		for i := 0; i < 500; i++ {
			recs = append(recs, trace.Record{
				PC: 1, Block: uint64(i), Instrs: 12, Work: 3,
			})
		}
		return recs
	}
	run := func(rob int) uint64 {
		eng := event.NewEngine()
		mem := &asyncMem{eng: eng, latency: 180}
		c := New(0, Config{ROB: rob, Quantum: 256}, eng, &trace.SliceGenerator{Records: build()}, mem.load)
		mem.core = c
		c.Start()
		eng.Drain(nil)
		return c.FinishTime()
	}
	prev := uint64(0)
	for _, rob := range []int{192, 96, 48, 24} {
		ft := run(rob)
		if ft < prev {
			t.Fatalf("ROB %d finished at %d, faster than a larger ROB (%d)", rob, ft, prev)
		}
		prev = ft
	}
	if run(24) <= run(192) {
		t.Fatal("a 24-entry ROB should be strictly slower than 192 on independent misses")
	}
}

// TestQuantumDoesNotChangeResults: the run-ahead quantum is a simulation
// parameter, not a microarchitectural one; results must not depend on it.
func TestQuantumDoesNotChangeResults(t *testing.T) {
	build := func() []trace.Record {
		var recs []trace.Record
		for i := 0; i < 800; i++ {
			recs = append(recs, trace.Record{
				PC: 1, Block: uint64(i % 97), Dep: i%5 == 0, Instrs: 10, Work: 7,
			})
		}
		return recs
	}
	run := func(q uint64) (uint64, uint64) {
		eng := event.NewEngine()
		mem := &asyncMem{eng: eng, latency: 120}
		c := New(0, Config{ROB: 96, Quantum: q}, eng, &trace.SliceGenerator{Records: build()}, mem.load)
		mem.core = c
		c.Start()
		eng.Drain(nil)
		return c.Committed(), c.FinishTime()
	}
	c1, f1 := run(64)
	c2, f2 := run(1024)
	if c1 != c2 || f1 != f2 {
		t.Fatalf("quantum changed results: (%d,%d) vs (%d,%d)", c1, f1, c2, f2)
	}
}
