package trace

import (
	"runtime"
	"sync"
)

// Block-batched record plumbing: a Frame is a reusable structure-of-arrays
// batch of records, the unit the simulation drivers consume instead of one
// Record at a time. Filling a frame amortizes the per-record virtual call
// of the Generator interface over FrameCap records, lets the tape Cursor
// decode straight from its columns in one tight loop, and gives the
// drivers dense per-column slices to stream through their hot loops.
//
// Every bounded or unbounded generator in this package implements the
// FrameReader fast path; FillFrame falls back to a Next loop for external
// generators. Frame boundaries carry no semantics: a frame may span
// scenario phases (the scenario generator switches segment generators
// mid-frame with exact per-segment budgets), and the drivers keep
// windowing statistics per record, so results are bit-identical to the
// record-at-a-time path.
//
// On top of FillFrame sit two frame sources: Frames (synchronous, one
// owned buffer) and PipelinedFrames (a producer goroutine double-buffers
// the decode so trace generation or tape decompression overlaps
// simulation of the previous frame).

// FrameCap is the default frame capacity in records. Large enough that
// per-frame bookkeeping (refill dispatch, channel handoff) vanishes,
// small enough that a frame's columns (~21 KB at 21 bytes/record) stay
// cache-resident against the simulator's own hot state while it
// streams through them.
const FrameCap = 1024

// Frame is a structure-of-arrays batch of records. The columns share one
// length (Cap); Len reports how many leading entries are valid after a
// fill. Frames are plain buffers: fillers overwrite, consumers read.
type Frame struct {
	Block  []uint64
	PC     []uint32
	Instrs []uint32
	Work   []uint32
	Dep    []bool

	n   int // valid records
	cap int // usable capacity (<= column length); Limit shrinks it mid-fill
}

// NewFrame returns an empty frame with the default capacity.
func NewFrame() *Frame { return NewFrameCap(FrameCap) }

// NewFrameCap returns an empty frame with capacity c records.
func NewFrameCap(c int) *Frame {
	if c <= 0 {
		panic("trace: frame capacity must be positive")
	}
	return &Frame{
		Block:  make([]uint64, c),
		PC:     make([]uint32, c),
		Instrs: make([]uint32, c),
		Work:   make([]uint32, c),
		Dep:    make([]bool, c),
		cap:    c,
	}
}

// Len returns the number of valid records from the last fill.
func (f *Frame) Len() int { return f.n }

// Cap returns the frame's usable capacity.
func (f *Frame) Cap() int { return f.cap }

// SetLen declares the first n records of the frame valid: the scatter
// path for decoders (the wire inlet) that fill the columns directly
// rather than through FillFrame. n must not exceed Cap.
func (f *Frame) SetLen(n int) {
	if n < 0 || n > f.cap {
		panic("trace: frame SetLen outside capacity")
	}
	f.n = n
}

// Record copies record i into r (test and interop helper; the drivers
// read the columns directly).
func (f *Frame) Record(i int, r *Record) {
	r.Block = f.Block[i]
	r.PC = f.PC[i]
	r.Instrs = f.Instrs[i]
	r.Work = f.Work[i]
	r.Dep = f.Dep[i]
}

// window returns a view over f's columns covering [off, off+n): a
// sub-frame that fills in place. Views share backing arrays with f, so
// filling the view fills f; the caller accounts the combined length.
func (f *Frame) window(off, n int) Frame {
	return Frame{
		Block:  f.Block[off : off+n],
		PC:     f.PC[off : off+n],
		Instrs: f.Instrs[off : off+n],
		Work:   f.Work[off : off+n],
		Dep:    f.Dep[off : off+n],
		cap:    n,
	}
}

// FrameReader is the batched fast path of a record source: ReadFrame
// fills up to f.Cap() records into f's columns, sets f.Len, and returns
// the count. Zero means the source ran dry (never-dry generators never
// return zero). A reader must produce exactly the record sequence its
// Next method would.
type FrameReader interface {
	ReadFrame(f *Frame) int
}

// FillFrame fills f from g: through g's ReadFrame fast path when it has
// one, otherwise record-by-record through Next. Returns the record
// count; zero means g ran dry.
func FillFrame(g Generator, f *Frame) int {
	if fr, ok := g.(FrameReader); ok {
		return fr.ReadFrame(f)
	}
	n := 0
	var rec Record
	for n < f.cap && g.Next(&rec) {
		f.Block[n] = rec.Block
		f.PC[n] = rec.PC
		f.Instrs[n] = rec.Instrs
		f.Work[n] = rec.Work
		f.Dep[n] = rec.Dep
		n++
	}
	f.n = n
	return n
}

// FrameStats counts a frame source's consumed output.
type FrameStats struct {
	Frames  uint64 // frames handed to the consumer
	Records uint64 // records in those frames
}

// Add accumulates o into s.
func (s *FrameStats) Add(o FrameStats) {
	s.Frames += o.Frames
	s.Records += o.Records
}

// FrameSource hands out successive frames of a record stream. NextFrame
// returns a frame valid until the next NextFrame call, or nil when the
// stream is dry; Close releases any pipeline resources (safe to call
// more than once, and required for pipelined sources that were not
// drained). Stats is consumer-side accounting: identical for the
// synchronous and pipelined implementations of the same stream.
//
// Err distinguishes a clean end of stream from a dead producer: after
// NextFrame returns nil, a non-nil Err means the stream was cut short
// (I/O failure, truncated file, dropped connection) and the records are
// incomplete. Drivers must check it — a source that died mid-stream
// must fail the run, not quietly present as a short trace.
type FrameSource interface {
	NextFrame() *Frame
	Stats() FrameStats
	Err() error
	Close()
}

// ErrReporter is the optional failure channel of a Generator: sources
// that can die mid-stream (file readers, network inlets) expose the
// first error here, and the frame sources propagate it to FrameSource.Err.
// Generators without it are assumed infallible (synthetic generators,
// tape cursors).
type ErrReporter interface {
	Err() error
}

// genErr extracts the failure state of a generator, nil for generators
// that cannot fail.
func genErr(g Generator) error {
	if er, ok := g.(ErrReporter); ok {
		return er.Err()
	}
	return nil
}

// Frames returns a synchronous FrameSource over g with one owned buffer.
func Frames(g Generator) FrameSource { return &frameIter{g: g, f: NewFrame()} }

type frameIter struct {
	g     Generator
	f     *Frame
	stats FrameStats
}

func (it *frameIter) NextFrame() *Frame {
	if FillFrame(it.g, it.f) == 0 {
		return nil
	}
	it.stats.Frames++
	it.stats.Records += uint64(it.f.n)
	return it.f
}

func (it *frameIter) Stats() FrameStats { return it.stats }

func (it *frameIter) Err() error { return genErr(it.g) }

func (it *frameIter) Close() {}

// AutoFrames returns the best frame source for this process: pipelined
// (filled by a producer goroutine) when the runtime has a spare
// processor to run it on, synchronous otherwise — on a single-processor
// runtime the producer cannot overlap the consumer, so the channel
// handoff and scheduler switches would be pure cost. The consumed frame
// sequence and Stats are identical either way; only wall-clock overlap
// differs.
func AutoFrames(g Generator) FrameSource {
	if runtime.GOMAXPROCS(0) > 1 {
		return PipelinedFrames(g)
	}
	return Frames(g)
}

// pipeDepth is the filled-frame queue depth of a pipelined source. With
// one frame at the consumer, one in flight, and pipeDepth queued, the
// producer stays at most pipeDepth frames ahead.
const pipeDepth = 2

// PipelinedFrames returns a FrameSource whose frames are filled by a
// dedicated goroutine: decoding (or generating) frame k+1 overlaps the
// consumer's work on frame k — within one simulation, not just across a
// run matrix. The consumed frame sequence, and Stats, are identical to
// Frames(g); only the wall-clock overlap differs. The caller must Close
// the source (idempotent) unless it drained it to nil.
//
// g is handed to the producer goroutine: it must not be used elsewhere
// while the source is open. Per-core generators, scenario generators,
// tape cursors and file readers all satisfy this — their mutable state
// is core-local by construction.
func PipelinedFrames(g Generator) FrameSource {
	p := &framePipe{
		filled: make(chan *Frame, pipeDepth),
		free:   make(chan *Frame, pipeDepth+1),
		stop:   make(chan struct{}),
	}
	for i := 0; i < pipeDepth+1; i++ {
		p.free <- NewFrame()
	}
	go p.fill(g)
	return p
}

type framePipe struct {
	filled chan *Frame
	free   chan *Frame
	stop   chan struct{}

	cur    *Frame // frame the consumer holds; recycled on the next call
	stats  FrameStats
	closed bool

	// err is the producer's terminal failure, if any: captured from the
	// generator when it runs dry, before filled closes, so a consumer
	// that drained to nil observes it. The mutex (not the channel
	// ordering) covers the Close path, where Err may race the producer.
	errMu sync.Mutex
	err   error
}

// fill is the producer loop: recycle a buffer, fill it, hand it over.
// It exits when the generator runs dry (closing filled) or when Close
// fires stop. A generator that died rather than drained leaves its
// error behind for Err — end-of-stream and producer death must never
// look alike to the consumer.
func (p *framePipe) fill(g Generator) {
	for {
		var f *Frame
		select {
		case f = <-p.free:
		case <-p.stop:
			return
		}
		if FillFrame(g, f) == 0 {
			if err := genErr(g); err != nil {
				p.errMu.Lock()
				p.err = err
				p.errMu.Unlock()
			}
			close(p.filled)
			return
		}
		select {
		case p.filled <- f:
		case <-p.stop:
			return
		}
	}
}

func (p *framePipe) NextFrame() *Frame {
	if p.closed {
		// The producer may have parked on stop without closing filled;
		// a post-Close read must not block forever.
		return nil
	}
	if p.cur != nil {
		// Three buffers circulate and the consumer holds at most one, so
		// this send cannot block.
		p.free <- p.cur
		p.cur = nil
	}
	f, ok := <-p.filled
	if !ok {
		return nil
	}
	p.cur = f
	p.stats.Frames++
	p.stats.Records += uint64(f.n)
	return f
}

func (p *framePipe) Stats() FrameStats { return p.stats }

func (p *framePipe) Err() error {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return p.err
}

func (p *framePipe) Close() {
	if p.closed {
		return
	}
	p.closed = true
	close(p.stop)
}
