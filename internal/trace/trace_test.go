package trace

import (
	"testing"
)

func TestSpecsValidate(t *testing.T) {
	for _, s := range Specs() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("web-apache")
	if err != nil || s.Name != "web-apache" {
		t.Fatalf("ByName failed: %v", err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown workload")
	}
}

func TestNameListsConsistent(t *testing.T) {
	names := map[string]bool{}
	for _, n := range Names() {
		names[n] = true
	}
	if len(names) != 9 {
		t.Fatalf("expected 9 workloads, got %d", len(names))
	}
	for _, n := range FigureEight() {
		if !names[n] {
			t.Errorf("FigureEight workload %q missing from Names", n)
		}
	}
	for _, n := range Commercial() {
		if !names[n] {
			t.Errorf("Commercial workload %q missing from Names", n)
		}
	}
	if len(FigureEight()) != 8 {
		t.Fatalf("FigureEight has %d entries", len(FigureEight()))
	}
}

func TestScaled(t *testing.T) {
	s, _ := ByName("web-apache")
	h := s.Scaled(0.125)
	if h.Streams != s.Streams/8 {
		t.Errorf("scaled streams = %d, want %d", h.Streams, s.Streams/8)
	}
	sci, _ := ByName("sci-em3d")
	hs := sci.Scaled(0.125)
	if hs.IterLen != sci.IterLen/8 {
		t.Errorf("scaled iterlen = %d", hs.IterLen)
	}
	if same := s.Scaled(1); same.Streams != s.Streams {
		t.Error("scale 1 must be identity")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	spec, _ := ByName("oltp-db2")
	spec = spec.Scaled(0.0625)
	collect := func() []Record {
		lib := NewLibrary(spec, 7)
		g := NewGenerator(lib, 0, 7)
		out := make([]Record, 5000)
		for i := range out {
			if !g.Next(&out[i]) {
				t.Fatal("generator ran dry")
			}
		}
		return out
	}
	a, b := collect(), collect()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("records diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGeneratorCoresDiffer(t *testing.T) {
	spec, _ := ByName("web-apache")
	spec = spec.Scaled(0.0625)
	lib := NewLibrary(spec, 7)
	g0 := NewGenerator(lib, 0, 7)
	g1 := NewGenerator(lib, 1, 7)
	var r0, r1 Record
	same := 0
	for i := 0; i < 1000; i++ {
		g0.Next(&r0)
		g1.Next(&r1)
		if r0.Block == r1.Block {
			same++
		}
	}
	if same > 500 {
		t.Fatalf("cores emit near-identical streams (%d/1000 equal)", same)
	}
}

func TestBurstStructure(t *testing.T) {
	spec, _ := ByName("web-apache")
	spec = spec.Scaled(0.0625)
	lib := NewLibrary(spec, 3)
	g := NewGenerator(lib, 0, 3)
	var r Record
	var gapRecords, memRecords int
	for i := 0; i < 20000; i++ {
		g.Next(&r)
		if r.Instrs >= spec.GapInstrs/2 {
			gapRecords++
		} else {
			memRecords++
		}
	}
	if gapRecords == 0 || memRecords == 0 {
		t.Fatal("expected both gap and memory records")
	}
	got := float64(memRecords) / float64(gapRecords)
	if got < spec.BurstMean*0.8 || got > spec.BurstMean*1.2 {
		t.Errorf("memory/gap ratio %.2f deviates from BurstMean %.2f", got, spec.BurstMean)
	}
}

func TestIterStreamDisjointAcrossCores(t *testing.T) {
	spec, _ := ByName("sci-ocean")
	spec = spec.Scaled(0.0625)
	lib := NewLibrary(spec, 5)
	s0 := lib.iterStream(0)
	s1 := lib.iterStream(1)
	if len(s0) != spec.IterLen || len(s1) != spec.IterLen {
		t.Fatalf("iter stream lengths %d/%d, want %d", len(s0), len(s1), spec.IterLen)
	}
	seen := map[uint64]bool{}
	for _, b := range s0 {
		if seen[b] {
			t.Fatal("duplicate block within a core's iteration stream")
		}
		seen[b] = true
	}
	for _, b := range s1 {
		if seen[b] {
			t.Fatal("block shared across core iteration streams")
		}
	}
}

func TestIterStreamIsPermutation(t *testing.T) {
	spec, _ := ByName("sci-em3d")
	spec = spec.Scaled(0.03125)
	lib := NewLibrary(spec, 5)
	s := lib.iterStream(0)
	min, max := s[0], s[0]
	for _, b := range s {
		if b < min {
			min = b
		}
		if b > max {
			max = b
		}
	}
	if max-min != uint64(len(s)-1) {
		t.Fatalf("iteration stream is not a contiguous permutation: span %d, len %d", max-min+1, len(s))
	}
	// Shuffled: the sequence must not be sorted.
	sorted := true
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			sorted = false
			break
		}
	}
	if sorted {
		t.Fatal("iteration stream is sorted; stride prefetcher would cover it")
	}
}

func TestChurnRegeneratesStreams(t *testing.T) {
	spec, _ := ByName("dss-qry17")
	spec = spec.Scaled(0.0625)
	lib := NewLibrary(spec, 9)
	g := NewGenerator(lib, 0, 9)
	var r Record
	for i := 0; i < 300000; i++ {
		g.Next(&r)
	}
	if lib.Regenerated() == 0 {
		t.Fatal("churn never regenerated a stream")
	}
}

func TestLimitGenerator(t *testing.T) {
	spec, _ := ByName("web-zeus")
	spec = spec.Scaled(0.0625)
	lib := NewLibrary(spec, 1)
	g := &Limit{Gen: NewGenerator(lib, 0, 1), N: 10}
	var r Record
	n := 0
	for g.Next(&r) {
		n++
	}
	if n != 10 {
		t.Fatalf("limit yielded %d records", n)
	}
}

func TestLimitPreservesBudgetWhenDry(t *testing.T) {
	// A Limit over a generator that runs dry must not consume its budget
	// on failed reads: remaining-count semantics are exact for bounded
	// replay (tape cursors, file readers).
	sg := &SliceGenerator{Records: []Record{{Block: 1}, {Block: 2}}}
	l := &Limit{Gen: sg, N: 5}
	var r Record
	n := 0
	for l.Next(&r) {
		n++
	}
	if n != 2 {
		t.Fatalf("limit over dry generator yielded %d records, want 2", n)
	}
	if l.N != 3 {
		t.Fatalf("remaining budget = %d after dry generator, want 3", l.N)
	}
	// Repeated Next calls on a dry source keep the budget intact.
	for i := 0; i < 4; i++ {
		if l.Next(&r) {
			t.Fatal("dry limit produced a record")
		}
	}
	if l.N != 3 {
		t.Fatalf("remaining budget = %d after repeated dry reads, want 3", l.N)
	}
}

func TestGeneratorInterleavingIndependent(t *testing.T) {
	// A core's record sequence must be a pure function of
	// (spec, seed, core): the same whether its siblings are consumed
	// round-robin, not at all, or in bursts. This is what lets tape
	// replay reproduce live generation bit-for-bit under the timed
	// driver's variant-dependent core interleavings.
	for _, name := range []string{"web-apache", "sci-em3d"} {
		spec, _ := ByName(name)
		spec = spec.Scaled(0.0625)
		const n = 40_000

		// Reference: core 1 consumed alone.
		lib := NewLibrary(spec, 11)
		_ = NewGenerator(lib, 0, 11) // constructed but never consumed
		g1 := NewGenerator(lib, 1, 11)
		want := make([]Record, n)
		for i := range want {
			g1.Next(&want[i])
		}

		// Same library consumed with heavy cross-core interleaving.
		lib2 := NewLibrary(spec, 11)
		g0 := NewGenerator(lib2, 0, 11)
		g1b := NewGenerator(lib2, 1, 11)
		var scratch, got Record
		for i := 0; i < n; i++ {
			for k := 0; k < 3; k++ {
				g0.Next(&scratch)
			}
			g1b.Next(&got)
			if got != want[i] {
				t.Fatalf("%s: core 1 record %d depends on interleaving: %+v vs %+v",
					name, i, got, want[i])
			}
		}
	}
}

func TestSliceGenerator(t *testing.T) {
	sg := &SliceGenerator{Records: []Record{{Block: 1}, {Block: 2}}}
	var r Record
	if !sg.Next(&r) || r.Block != 1 {
		t.Fatal("first record wrong")
	}
	if !sg.Next(&r) || r.Block != 2 {
		t.Fatal("second record wrong")
	}
	if sg.Next(&r) {
		t.Fatal("should be exhausted")
	}
}

func TestArenasDisjoint(t *testing.T) {
	// Records from the generator must stay inside known arenas, and the
	// arenas must not overlap.
	spec, _ := ByName("dss-qry2")
	spec = spec.Scaled(0.0625)
	lib := NewLibrary(spec, 13)
	g := NewGenerator(lib, 2, 13)
	var r Record
	for i := 0; i < 100000; i++ {
		g.Next(&r)
		switch {
		case r.Block < scanBase: // dataset
		case r.Block >= scanBase && r.Block < hotBase: // scan arena
		case r.Block >= hotBase && r.Block < noiseBase: // hot arena
		case r.Block >= noiseBase && r.Block < noiseBase+noiseBlocks:
		default:
			t.Fatalf("block %#x outside all arenas", r.Block)
		}
	}
}

func TestValidationErrors(t *testing.T) {
	good, _ := ByName("web-apache")
	cases := []func(*Spec){
		func(s *Spec) { s.Name = "" },
		func(s *Spec) { s.Streams = 0 },
		func(s *Spec) { s.LenMin = 0 },
		func(s *Spec) { s.ReplayMin = 0 },
		func(s *Spec) { s.GapWork = 0 },
		func(s *Spec) { s.MemWork = 0 },
		func(s *Spec) { s.BurstMean = 0.5 },
		func(s *Spec) { s.BurstMax = 0 },
		func(s *Spec) { s.NoiseProb = 0.9; s.ScanProb = 0.2 },
	}
	for i, mutate := range cases {
		s := good
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}
