// Package trace defines the memory-reference trace model and the synthetic
// workload generators that stand in for the paper's commercial and
// scientific applications.
//
// The paper drives its simulator with Oracle, DB2, Apache, Zeus, TPC-H and
// three scientific codes running under Solaris — none of which can be
// rehosted here. Temporal-streaming prefetchers, however, are sensitive
// only to the structure of the miss-address sequence and to the dependence
// structure that sets memory-level parallelism. Each generator therefore
// synthesizes a reference stream with independently controllable:
//
//   - a library of temporal streams (recurring block sequences) with a
//     heavy-tailed length distribution and Zipf-distributed recurrence —
//     the pointer-chasing working set (Fig. 6 left);
//   - non-repeating "noise" references (data visited once) that bound
//     achievable coverage, as in DSS (Fig. 4);
//   - sequential scans, which the baseline stride prefetcher covers and
//     which therefore must not count toward temporal coverage (§5.1);
//   - per-record instruction counts and dispatch-cycle costs that set how
//     memory-bound the workload is (Fig. 4 right);
//   - address dependences between loads that set MLP (Table 2);
//   - stream replay truncation/perturbation and library churn, which set
//     reuse distances and meta-data footprints (Fig. 5).
//
// Generators are deterministic: the same spec, seed and core produce the
// same record sequence on every run.
//
// Beyond the stationary Table 1 specs, the package models workload
// behavior over time with phase-structured Scenarios (scenario.go):
// ordered phase lists with per-core mixes, gradual drift, and stream
// reseeding, materialized with the same purity guarantee — the same
// scenario, seed and core produce the same record sequence, live or
// replayed from a tape. suite.go holds the built-in stress scenarios.
package trace

// Record is one memory reference plus the work preceding it.
type Record struct {
	// PC identifies the static load for PC-indexed predictors (the stride
	// prefetcher); synthetic but stable per logical access stream.
	PC uint32
	// Block is the 64-byte block number referenced.
	Block uint64
	// Dep marks the load's address as dependent on the previous load
	// (pointer chasing): it cannot issue before that load completes.
	Dep bool
	// Instrs is the number of instructions this record represents
	// (including the load); used for IPC accounting.
	Instrs uint32
	// Work is the dispatch-cycle cost of those instructions, including
	// on-chip stalls not modelled elsewhere (L1/L2-hit latency already
	// spent, branch mispredictions, coherence, ...).
	Work uint32
}

// Generator produces a stream of records. Next fills r and reports whether
// a record was produced; generators for the paper's workloads never run
// dry, but bounded generators (tests, file replay) may.
type Generator interface {
	Next(r *Record) bool
}

// SliceGenerator replays a fixed record slice (testing helper).
type SliceGenerator struct {
	Records []Record
	pos     int
}

// Next returns the next record from the slice.
func (s *SliceGenerator) Next(r *Record) bool {
	if s.pos >= len(s.Records) {
		return false
	}
	*r = s.Records[s.pos]
	s.pos++
	return true
}

// ReadFrame implements FrameReader by scattering the next run of records
// into f's columns.
func (s *SliceGenerator) ReadFrame(f *Frame) int {
	n := len(s.Records) - s.pos
	if n > f.cap {
		n = f.cap
	}
	for i, rec := range s.Records[s.pos : s.pos+n] {
		f.Block[i] = rec.Block
		f.PC[i] = rec.PC
		f.Instrs[i] = rec.Instrs
		f.Work[i] = rec.Work
		f.Dep[i] = rec.Dep
	}
	s.pos += n
	f.n = n
	return n
}

// Limit wraps a generator and stops it after n records.
type Limit struct {
	Gen Generator
	N   uint64
}

// Next forwards to the wrapped generator until the limit is reached. The
// budget is consumed only by records actually produced: if the wrapped
// generator runs dry, N still reports exactly how many records remain
// unclaimed (bounded replay relies on this for exact remaining counts).
func (l *Limit) Next(r *Record) bool {
	if l.N == 0 {
		return false
	}
	if !l.Gen.Next(r) {
		return false
	}
	l.N--
	return true
}

// ReadFrame implements FrameReader: it shrinks the frame to the
// remaining budget and fills through the wrapped generator's own fast
// path. Like Next, the budget is consumed only by records actually
// produced, so a dry source leaves N at the exact unclaimed count even
// when the frame was larger than the remaining budget.
func (l *Limit) ReadFrame(f *Frame) int {
	if l.N == 0 {
		f.n = 0
		return 0
	}
	saved := f.cap
	if uint64(saved) > l.N {
		f.cap = int(l.N)
	}
	n := FillFrame(l.Gen, f)
	f.cap = saved
	l.N -= uint64(n)
	return n
}

// Err forwards the wrapped generator's failure state (ErrReporter), so
// bounding a fallible source does not hide its death from the frame
// pipeline's end-of-stream/error distinction.
func (l *Limit) Err() error {
	if er, ok := l.Gen.(ErrReporter); ok {
		return er.Err()
	}
	return nil
}

// Func adapts a function to the Generator interface.
type Func func(r *Record) bool

// Next invokes the function.
func (f Func) Next(r *Record) bool { return f(r) }
