package trace

// The built-in scenario suite: named stress scenarios probing the
// sensitivity claims the stationary Table 1 specs cannot — meta-data
// staleness across phase changes, stream-length decay, multi-programmed
// interference, and thread migration. Each is deliberately small in
// mechanism (one effect per scenario) so a coverage or speedup change
// in the phase-sensitivity table has an unambiguous cause.

import "fmt"

// mustSpec returns the named Table 1 spec, panicking on a typo — suite
// construction is static, so a miss is a programming error.
func mustSpec(name string) Spec {
	for _, s := range Specs() {
		if s.Name == name {
			return s
		}
	}
	panic(fmt.Sprintf("trace: suite references unknown workload %q", name))
}

// AntagonistSpec returns the scan/noise co-runner used by the built-in
// antagonist scenarios: a small recurring working set buried under
// aggressive scan bursts and once-visited noise, tuned to pollute the
// shared L2 and saturate DRAM without contributing temporal streams.
func AntagonistSpec() Spec {
	return Spec{
		Name: "antagonist-scan", Class: DSS,
		Streams: 512, LenMin: 2, LenMax: 64, LenAlpha: 1.3, ZipfS: 0.3,
		ReplayMin: 0.7, SkipProb: 0.02, ChurnEvery: 50,
		NoiseInChase: 0.2, ScanProb: 0.45, NoiseProb: 0.35,
		ScanBurst: 256, ScanStreams: 4,
		DepChase: 0.1, DepNoise: 0.05,
		GapInstrs: 200, GapWork: 200, MemInstrs: 12, MemWork: 6,
		BurstMean: 3.0, BurstMax: 6, WorkJitter: 0.3,
		HotBlocks: 16, DirtyFrac: 0.3,
	}
}

// Scenarios returns the built-in phase-structured stress suite. Phase
// durations are fractions of the run budget, so the suite runs at any
// window size; scenario names never collide with workload names, and
// both resolve through the lab's plans and the CLIs.
func Scenarios() []Scenario {
	apache := mustSpec("web-apache")
	zeus := mustSpec("web-zeus")
	db2 := mustSpec("oltp-db2")
	qry17 := mustSpec("dss-qry17")
	ocean := mustSpec("sci-ocean")
	em3d := mustSpec("sci-em3d")

	decayed := db2
	decayed.ReplayMin = 0.25
	decayed.SkipProb = 0.08
	decayed.ChurnEvery = 40

	noisyWeb := apache
	noisyWeb.NoiseProb = 0.35
	noisyWeb.NoiseInChase = 0.25
	noisyWeb.ChurnEvery = 80

	storm := qry17
	storm.ScanProb = 0.35
	storm.ScanBurst = 192
	storm.ScanStreams = 4

	return []Scenario{
		// A/B/A working-set flip: meta-data recorded in the first Apache
		// phase goes cold through the OLTP phase, then becomes valid
		// again — the recovery half of the staleness question.
		Sequence("phase-flip",
			Phase{Name: "web", Frac: 0.3, Spec: apache},
			Phase{Name: "oltp", Frac: 0.4, Spec: db2},
			Phase{Name: "web-return", Spec: apache},
		),
		// Same statistics, fresh streams: Reseed replaces every stream
		// at the boundary, so surviving coverage in the second phase is
		// pure re-learning rate — the isolated staleness probe.
		Sequence("reshuffle",
			Phase{Name: "learned", Frac: 0.5, Spec: apache},
			Phase{Name: "reshuffled", Spec: apache, Reseed: 1},
		),
		// Gradual stream-length decay: replays truncate earlier, skip
		// more, and churn faster, while the working set itself stays
		// put (library fields untouched, so streams stay shared across
		// the drift).
		Sequence("stream-decay",
			Phase{Name: "decay", Frac: 0.85, Spec: db2, DriftTo: &decayed},
			Phase{Name: "decayed", Spec: decayed},
		),
		// Three OLTP cores against one scan/noise antagonist polluting
		// the shared L2 and DRAM.
		Antagonist("oltp-antagonist", db2, AntagonistSpec()),
		// Thread migration: the same two working sets hand off between
		// cores each phase. Libraries are shared by content, so the
		// migrated thread's streams — and any cross-core meta-data —
		// are waiting on the destination core.
		Sequence("migratory-handoff",
			Phase{Name: "placement-a", Frac: 0.25, Mix: []Spec{apache, zeus}},
			Phase{Name: "placement-b", Frac: 0.25, Mix: []Spec{zeus, apache}},
			Phase{Name: "placement-a2", Mix: []Spec{apache, zeus}},
		),
		// Gradual behavioral drift of a web workload toward noise:
		// coverage should decay smoothly, not cliff.
		Drift("web-drift", apache, noisyWeb, 8),
		// Four different commercial workloads, one per core, sharing
		// the L2, DRAM and off-chip meta-data path.
		MixOf("mix-commercial", apache, db2, qry17, zeus),
		// Alternating scan-storm phases stress the stride/temporal
		// split: scans must stay with the stride prefetcher even when
		// they dominate.
		Sequence("scan-storm",
			Phase{Name: "calm", Frac: 0.3, Spec: qry17},
			Phase{Name: "storm", Frac: 0.3, Spec: storm},
			Phase{Name: "calm-return", Spec: qry17},
		),
		// Scientific hand-off: one iteration-stream working set is
		// dropped wholesale for another mid-run.
		Sequence("sci-handoff",
			Phase{Name: "ocean", Frac: 0.5, Spec: ocean},
			Phase{Name: "em3d", Spec: em3d},
		),
	}
}

// ScenarioNames lists the built-in scenario names in suite order.
func ScenarioNames() []string {
	scns := Scenarios()
	names := make([]string, len(scns))
	for i, s := range scns {
		names[i] = s.Name
	}
	return names
}

// ScenarioByName returns the built-in scenario with the given name; an
// unknown name reports the nearest match and the full valid list.
func ScenarioByName(name string) (Scenario, error) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("trace: unknown scenario %q%s", name, suggestion(name, ScenarioNames()))
}
