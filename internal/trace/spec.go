package trace

import "fmt"

// Class groups workloads the way the paper's figures do.
type Class string

// Workload classes (Table 1).
const (
	Web  Class = "Web"
	OLTP Class = "OLTP"
	DSS  Class = "DSS"
	Sci  Class = "Sci"
)

// Spec describes one synthetic workload. All sizes are in 64-byte blocks
// unless noted. The calibration targets each spec aims for (ideal
// coverage, speedup, MLP, stream-length distribution) are tabulated in
// DESIGN.md §8; tests in calibrate_test.go assert the outcomes.
type Spec struct {
	Name  string
	Class Class

	// Stream library (the recurring, pointer-chasing working set).
	Streams  int     // number of temporal streams in the library
	LenMin   int     // minimum stream length (blocks)
	LenMax   int     // maximum stream length (blocks)
	LenAlpha float64 // bounded-Pareto shape; smaller = heavier tail
	ZipfS    float64 // recurrence skew across streams (0 = uniform)

	// Scientific mode: each core owns one long iteration stream that it
	// replays repeatedly (em3d/ocean/moldyn). Overrides the library knobs.
	IterStream bool
	IterLen    int // per-core iteration stream length (blocks)

	// Replay variation.
	ReplayMin  float64 // minimum fraction of a stream replayed (0..1]
	SkipProb   float64 // per-block probability of skipping ahead one block
	ChurnEvery int     // regenerate one random stream every N replays (0 = never)

	// Record mix.
	NoiseInChase float64 // P(noise record injected between stream blocks)
	ScanProb     float64 // P(starting a scan burst when idle)
	NoiseProb    float64 // P(emitting a noise record when idle)
	ScanBurst    int     // scan burst length (blocks)
	ScanStreams  int     // concurrent scan PCs per core

	// Dependence model.
	DepChase float64 // P(Dep=true) for stream (chase) records
	DepNoise float64 // P(Dep=true) for noise records

	// Cost and burst model. The reference stream alternates compute
	// records (hot-set loads that always hit the L1, carrying the
	// workload's instruction and on-chip-stall budget) with bursts of
	// memory records (the actual chase/scan/noise references, carrying a
	// small cost so several fit in the ROB together). Burst length sets
	// memory-level parallelism (Table 2); the gap cost sets how
	// memory-bound the workload is (Fig. 4 right).
	GapInstrs  uint32  // instructions per compute record
	GapWork    uint32  // dispatch cycles per compute record
	MemInstrs  uint32  // instructions per memory record
	MemWork    uint32  // dispatch cycles per memory record
	BurstMean  float64 // mean memory records per burst (>= 1)
	BurstMax   int     // burst length cap (ROB-bounded overlap)
	WorkJitter float64 // uniform ± fraction applied to gap records
	HotBlocks  int     // per-core hot-set size for compute records
	DirtyFrac  float64 // fraction of fills that are dirtied (writebacks)
}

// Validate reports configuration errors in the spec.
func (s Spec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("trace: spec has no name")
	case !s.IterStream && s.Streams <= 0:
		return fmt.Errorf("trace: %s: library mode needs Streams > 0", s.Name)
	case !s.IterStream && (s.LenMin < 2 || s.LenMax < s.LenMin):
		return fmt.Errorf("trace: %s: bad stream length bounds [%d,%d]", s.Name, s.LenMin, s.LenMax)
	case s.IterStream && s.IterLen < 2:
		return fmt.Errorf("trace: %s: iteration mode needs IterLen >= 2", s.Name)
	case s.ReplayMin <= 0 || s.ReplayMin > 1:
		return fmt.Errorf("trace: %s: ReplayMin must be in (0,1]", s.Name)
	case s.GapInstrs == 0 || s.GapWork == 0:
		return fmt.Errorf("trace: %s: GapInstrs and GapWork must be positive", s.Name)
	case s.MemInstrs == 0 || s.MemWork == 0:
		return fmt.Errorf("trace: %s: MemInstrs and MemWork must be positive", s.Name)
	case s.BurstMean < 1:
		return fmt.Errorf("trace: %s: BurstMean must be >= 1", s.Name)
	case s.BurstMax < 1:
		return fmt.Errorf("trace: %s: BurstMax must be >= 1", s.Name)
	case s.NoiseInChase < 0 || s.NoiseInChase >= 1:
		return fmt.Errorf("trace: %s: NoiseInChase out of range", s.Name)
	case s.ScanProb+s.NoiseProb >= 1:
		return fmt.Errorf("trace: %s: ScanProb+NoiseProb must leave room for chase", s.Name)
	}
	return nil
}

// Scaled returns a copy with the meta-data-relevant sizes multiplied by
// factor (stream count and scientific iteration length). Caches and
// predictor tables must be scaled by the same factor (sim.Config.Scale) to
// keep the paper's size relationships intact.
func (s Spec) Scaled(factor float64) Spec {
	if factor <= 0 || factor == 1 {
		return s
	}
	out := s
	scale := func(v int, min int) int {
		n := int(float64(v) * factor)
		if n < min {
			n = min
		}
		return n
	}
	if s.IterStream {
		out.IterLen = scale(s.IterLen, 64)
	} else {
		out.Streams = scale(s.Streams, 16)
	}
	return out
}

// Specs returns the nine workloads of Table 1 at full (paper) scale.
//
// Parameter rationale, per workload class:
//
//   - Web (Apache, Zeus): ~55–60% of misses belong to recurring streams
//     with a heavy-tailed length mix (median streamed block from streams
//     of ~10–30 misses); moderately memory-bound; MLP ≈ 1.5.
//   - OLTP (DB2, Oracle): pointer-chase dominated, MLP ≈ 1.3. Oracle has
//     the same coverage potential but most stall time on chip (L2-hit
//     data/instruction misses, coherence) — large Work — so its speedup
//     is small (Fig. 4).
//   - DSS (TPC-H Q2/Q17): scan-dominated with once-visited probe data;
//     the stride prefetcher takes the scans, little recurrence remains;
//     MLP ≈ 1.6.
//   - Sci: each core replays its partition's iteration-long stream —
//     em3d ~400 K misses/iteration (paper §5.4), moldyn ~81 K fully
//     dependence-serialized (MLP 1.0), ocean ~21 K.
func Specs() []Spec {
	return []Spec{
		{
			Name: "web-apache", Class: Web,
			Streams: 24000, LenMin: 2, LenMax: 2000, LenAlpha: 1.05, ZipfS: 0.55,
			ReplayMin: 0.75, SkipProb: 0.01, ChurnEvery: 400,
			NoiseInChase: 0.09, ScanProb: 0.02, NoiseProb: 0.13,
			ScanBurst: 48, ScanStreams: 2,
			DepChase: 0.2, DepNoise: 0.15,
			GapInstrs: 620, GapWork: 640, MemInstrs: 12, MemWork: 6,
			BurstMean: 2.4, BurstMax: 5, WorkJitter: 0.3,
			HotBlocks: 16, DirtyFrac: 0.22,
		},
		{
			Name: "web-zeus", Class: Web,
			Streams: 22000, LenMin: 2, LenMax: 2400, LenAlpha: 1.0, ZipfS: 0.5,
			ReplayMin: 0.8, SkipProb: 0.008, ChurnEvery: 450,
			NoiseInChase: 0.08, ScanProb: 0.02, NoiseProb: 0.11,
			ScanBurst: 40, ScanStreams: 2,
			DepChase: 0.2, DepNoise: 0.15,
			GapInstrs: 580, GapWork: 600, MemInstrs: 12, MemWork: 6,
			BurstMean: 2.4, BurstMax: 5, WorkJitter: 0.3,
			HotBlocks: 16, DirtyFrac: 0.2,
		},
		{
			Name: "oltp-db2", Class: OLTP,
			Streams: 30000, LenMin: 2, LenMax: 1200, LenAlpha: 1.15, ZipfS: 0.5,
			ReplayMin: 0.7, SkipProb: 0.015, ChurnEvery: 300,
			NoiseInChase: 0.12, ScanProb: 0.015, NoiseProb: 0.18,
			ScanBurst: 32, ScanStreams: 1,
			DepChase: 0.45, DepNoise: 0.3,
			GapInstrs: 430, GapWork: 450, MemInstrs: 12, MemWork: 6,
			BurstMean: 1.75, BurstMax: 4, WorkJitter: 0.35,
			HotBlocks: 16, DirtyFrac: 0.28,
		},
		{
			Name: "oltp-oracle", Class: OLTP,
			Streams: 28000, LenMin: 2, LenMax: 1600, LenAlpha: 1.05, ZipfS: 0.5,
			ReplayMin: 0.75, SkipProb: 0.012, ChurnEvery: 350,
			NoiseInChase: 0.09, ScanProb: 0.01, NoiseProb: 0.13,
			ScanBurst: 32, ScanStreams: 1,
			DepChase: 0.45, DepNoise: 0.3,
			// Oracle's bottleneck is on-chip (L1/L2-hit misses, coherence
			// traffic): a large gap budget relative to off-chip stalls, so
			// high coverage buys little speedup (Fig. 4).
			GapInstrs: 1200, GapWork: 1400, MemInstrs: 12, MemWork: 6,
			BurstMean: 1.45, BurstMax: 3, WorkJitter: 0.3,
			HotBlocks: 16, DirtyFrac: 0.3,
		},
		{
			Name: "dss-qry2", Class: DSS,
			Streams: 6000, LenMin: 2, LenMax: 600, LenAlpha: 1.2, ZipfS: 0.4,
			ReplayMin: 0.7, SkipProb: 0.02, ChurnEvery: 200,
			NoiseInChase: 0.1, ScanProb: 0.05, NoiseProb: 0.24,
			ScanBurst: 96, ScanStreams: 3,
			DepChase: 0.2, DepNoise: 0.1,
			GapInstrs: 520, GapWork: 540, MemInstrs: 12, MemWork: 6,
			BurstMean: 2.1, BurstMax: 5, WorkJitter: 0.3,
			HotBlocks: 16, DirtyFrac: 0.12,
		},
		{
			Name: "dss-qry17", Class: DSS,
			Streams: 7000, LenMin: 2, LenMax: 800, LenAlpha: 1.2, ZipfS: 0.4,
			ReplayMin: 0.7, SkipProb: 0.02, ChurnEvery: 220,
			NoiseInChase: 0.1, ScanProb: 0.07, NoiseProb: 0.22,
			ScanBurst: 128, ScanStreams: 3,
			DepChase: 0.2, DepNoise: 0.1,
			GapInstrs: 540, GapWork: 560, MemInstrs: 12, MemWork: 6,
			BurstMean: 2.1, BurstMax: 5, WorkJitter: 0.3,
			HotBlocks: 16, DirtyFrac: 0.12,
		},
		{
			// IterLen is the per-core data footprint in blocks (the
			// paper's ~400 K misses/iteration are post-L2-filter; the
			// pre-filter footprint must exceed the cache for the
			// iteration to miss again each time around).
			Name: "sci-em3d", Class: Sci,
			IterStream: true, IterLen: 400000,
			ReplayMin: 1.0, SkipProb: 0.004, ChurnEvery: 0,
			NoiseInChase: 0.015, ScanProb: 0, NoiseProb: 0.08,
			ScanBurst: 0, ScanStreams: 0,
			DepChase: 0.15, DepNoise: 0.1,
			GapInstrs: 240, GapWork: 250, MemInstrs: 12, MemWork: 6,
			BurstMean: 2.3, BurstMax: 5, WorkJitter: 0.2,
			HotBlocks: 16, DirtyFrac: 0.3,
		},
		{
			Name: "sci-moldyn", Class: Sci,
			IterStream: true, IterLen: 96000,
			ReplayMin: 1.0, SkipProb: 0.006, ChurnEvery: 0,
			NoiseInChase: 0.05, ScanProb: 0, NoiseProb: 0.08,
			ScanBurst: 0, ScanStreams: 0,
			// moldyn's misses are fully serialized: MLP 1.0 (Table 2).
			DepChase: 0.99, DepNoise: 0.9,
			GapInstrs: 1100, GapWork: 1300, MemInstrs: 12, MemWork: 6,
			BurstMean: 1.0, BurstMax: 1, WorkJitter: 0.2,
			HotBlocks: 16, DirtyFrac: 0.3,
		},
		{
			Name: "sci-ocean", Class: Sci,
			IterStream: true, IterLen: 80000,
			ReplayMin: 1.0, SkipProb: 0.01, ChurnEvery: 0,
			NoiseInChase: 0.06, ScanProb: 0, NoiseProb: 0.12,
			ScanBurst: 0, ScanStreams: 0,
			DepChase: 0.5, DepNoise: 0.35,
			GapInstrs: 800, GapWork: 950, MemInstrs: 12, MemWork: 6,
			BurstMean: 1.55, BurstMax: 3, WorkJitter: 0.2,
			HotBlocks: 16, DirtyFrac: 0.3,
		},
	}
}

// ByName returns the full-scale spec with the given name; an unknown
// name reports the nearest match and the full valid list.
func ByName(name string) (Spec, error) {
	for _, s := range Specs() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("trace: unknown workload %q%s", name, suggestion(name, Names()))
}

// Names lists all workload names in figure order (Web, OLTP, DSS, Sci).
func Names() []string {
	specs := Specs()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// FigureEight returns the eight workloads as the paper's figures order
// them (Apache, Zeus, OLTP DB2, Oracle, DSS DB2, em3d, moldyn, ocean).
// The paper's figures show one DSS column; we use Qry17 (the balanced
// scan-join query) for it, as Qry2 behaves near-identically.
func FigureEight() []string {
	return []string{
		"web-apache", "web-zeus", "oltp-db2", "oltp-oracle",
		"dss-qry17", "sci-em3d", "sci-moldyn", "sci-ocean",
	}
}

// Commercial returns the commercial workloads (Web + OLTP + DSS), the set
// Figure 1 and Figure 6 (left) aggregate over.
func Commercial() []string {
	return []string{
		"web-apache", "web-zeus", "oltp-db2", "oltp-oracle", "dss-qry17",
	}
}
