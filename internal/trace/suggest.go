package trace

import (
	"fmt"
	"strings"
)

// UnknownNameError reports a name that resolves to neither a workload
// nor a scenario, suggesting the nearest match across both name spaces
// and listing each.
func UnknownNameError(name string) error {
	near := ""
	if n := nearest(name, append(Names(), ScenarioNames()...)); n != "" {
		near = fmt.Sprintf(" (did you mean %q?)", n)
	}
	return fmt.Errorf("trace: %q names neither a workload nor a scenario%s; workloads: %s; scenarios: %s",
		name, near, strings.Join(Names(), ", "), strings.Join(ScenarioNames(), ", "))
}

// suggestion renders the help tail for an unknown-name error: the
// nearest valid name (when one is plausibly close) and the full valid
// list, so a CLI typo never dead-ends.
func suggestion(name string, valid []string) string {
	var b strings.Builder
	if near := nearest(name, valid); near != "" {
		fmt.Fprintf(&b, " (did you mean %q?)", near)
	}
	fmt.Fprintf(&b, "; valid names: %s", strings.Join(valid, ", "))
	return b.String()
}

// nearest returns the candidate with the smallest edit distance to
// name, or "" when nothing is close enough to be a plausible typo
// (distance more than half the name's length).
func nearest(name string, candidates []string) string {
	best, bestDist := "", len(name)/2+1
	for _, c := range candidates {
		if d := editDistance(name, c); d < bestDist {
			best, bestDist = c, d
		}
	}
	return best
}

// editDistance is the Levenshtein distance between a and b (bytes; the
// name space is ASCII).
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
