package trace

import (
	"fmt"
	"strings"

	"stms/internal/editdist"
)

// UnknownNameError reports a name that resolves to neither a workload
// nor a scenario, suggesting the nearest match across both name spaces
// and listing each.
func UnknownNameError(name string) error {
	near := ""
	if n := editdist.Nearest(name, append(Names(), ScenarioNames()...)); n != "" {
		near = fmt.Sprintf(" (did you mean %q?)", n)
	}
	return fmt.Errorf("trace: %q names neither a workload nor a scenario%s; workloads: %s; scenarios: %s",
		name, near, strings.Join(Names(), ", "), strings.Join(ScenarioNames(), ", "))
}

// suggestion renders the help tail for an unknown-name error: the
// nearest valid name (when one is plausibly close) and the full valid
// list, so a CLI typo never dead-ends.
func suggestion(name string, valid []string) string {
	var b strings.Builder
	if near := editdist.Nearest(name, valid); near != "" {
		fmt.Fprintf(&b, " (did you mean %q?)", near)
	}
	fmt.Fprintf(&b, "; valid names: %s", strings.Join(valid, ", "))
	return b.String()
}
