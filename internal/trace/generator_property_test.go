package trace

import "testing"

// Property tests over the generator's structural invariants, checked on
// long runs of every workload.

func TestGeneratorStructuralInvariants(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			spec, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			spec = spec.Scaled(0.0625)
			lib := NewLibrary(spec, 17)
			g := NewGenerator(lib, 0, 17)
			var r Record
			burst := 0
			for i := 0; i < 100_000; i++ {
				if !g.Next(&r) {
					t.Fatal("generator ran dry")
				}
				if r.Instrs == 0 || r.Work == 0 {
					t.Fatalf("record %d has zero cost: %+v", i, r)
				}
				isCompute := r.Block >= hotBase && r.Block < noiseBase
				if isCompute {
					if r.Dep {
						t.Fatalf("compute record %d marked dependent", i)
					}
					if burst > spec.BurstMax {
						t.Fatalf("burst of %d exceeds BurstMax %d", burst, spec.BurstMax)
					}
					burst = 0
				} else {
					burst++
					if int(r.Instrs) > int(spec.GapInstrs) {
						t.Fatalf("memory record %d costs more than a gap record", i)
					}
				}
			}
		})
	}
}

func TestHotSetBounded(t *testing.T) {
	spec, _ := ByName("oltp-oracle")
	spec = spec.Scaled(0.0625)
	lib := NewLibrary(spec, 21)
	g := NewGenerator(lib, 2, 21)
	hot := map[uint64]bool{}
	var r Record
	for i := 0; i < 50_000; i++ {
		g.Next(&r)
		if r.Block >= hotBase && r.Block < noiseBase {
			hot[r.Block] = true
		}
	}
	if len(hot) == 0 {
		t.Fatal("no compute records seen")
	}
	if len(hot) > spec.HotBlocks {
		t.Fatalf("hot set %d exceeds HotBlocks %d", len(hot), spec.HotBlocks)
	}
}

func TestNoiseNeverRepeatsInPractice(t *testing.T) {
	spec, _ := ByName("dss-qry2")
	spec = spec.Scaled(0.0625)
	lib := NewLibrary(spec, 23)
	g := NewGenerator(lib, 0, 23)
	seen := map[uint64]int{}
	var r Record
	for i := 0; i < 200_000; i++ {
		g.Next(&r)
		if r.Block >= noiseBase {
			seen[r.Block]++
		}
	}
	repeats := 0
	for _, n := range seen {
		if n > 1 {
			repeats++
		}
	}
	// Noise draws from 2^34 blocks; repeats in 200 K draws should be
	// essentially zero.
	if repeats > 2 {
		t.Fatalf("%d noise blocks repeated", repeats)
	}
}

func TestScanRecordsAreSequentialPerPC(t *testing.T) {
	spec, _ := ByName("dss-qry17")
	spec = spec.Scaled(0.0625)
	lib := NewLibrary(spec, 29)
	g := NewGenerator(lib, 1, 29)
	last := map[uint32]uint64{}
	var r Record
	checked := 0
	for i := 0; i < 300_000; i++ {
		g.Next(&r)
		if r.Block >= scanBase && r.Block < hotBase {
			if prev, ok := last[r.PC]; ok {
				if r.Block != prev+1 {
					t.Fatalf("scan PC %#x jumped %d -> %d", r.PC, prev, r.Block)
				}
				checked++
			}
			last[r.PC] = r.Block
		}
	}
	if checked == 0 {
		t.Fatal("no consecutive scan pairs observed")
	}
}

func TestSharedLibraryCrossCoreStreams(t *testing.T) {
	// Two cores of a commercial workload must replay overlapping stream
	// content (shared library), enabling cross-core prefetch.
	spec, _ := ByName("web-zeus")
	spec = spec.Scaled(0.0625)
	lib := NewLibrary(spec, 31)
	g0 := NewGenerator(lib, 0, 31)
	g1 := NewGenerator(lib, 1, 31)
	blocks0 := map[uint64]bool{}
	var r Record
	for i := 0; i < 150_000; i++ {
		g0.Next(&r)
		if r.Block < scanBase {
			blocks0[r.Block] = true
		}
	}
	shared := 0
	for i := 0; i < 150_000; i++ {
		g1.Next(&r)
		if r.Block < scanBase && blocks0[r.Block] {
			shared++
		}
	}
	if shared < 1000 {
		t.Fatalf("cores share only %d dataset references", shared)
	}
}
