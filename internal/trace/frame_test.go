package trace

import (
	"bytes"
	"testing"
)

// drainNext pulls n records from gen through the record-at-a-time path.
func drainNext(t *testing.T, gen Generator, n int) []Record {
	t.Helper()
	out := make([]Record, 0, n)
	var rec Record
	for len(out) < n && gen.Next(&rec) {
		out = append(out, rec)
	}
	return out
}

// drainFrames pulls up to n records from gen through frames of capacity
// frameCap, exercising partial final frames and dry sources.
func drainFrames(t *testing.T, gen Generator, n, frameCap int) []Record {
	t.Helper()
	f := NewFrameCap(frameCap)
	out := make([]Record, 0, n)
	var rec Record
	for len(out) < n {
		got := FillFrame(gen, f)
		if got == 0 {
			break
		}
		if got != f.Len() {
			t.Fatalf("FillFrame returned %d but frame len is %d", got, f.Len())
		}
		for i := 0; i < got && len(out) < n; i++ {
			f.Record(i, &rec)
			out = append(out, rec)
		}
	}
	return out
}

func recordsEqual(t *testing.T, what string, next, framed []Record) {
	t.Helper()
	if len(next) != len(framed) {
		t.Fatalf("%s: Next produced %d records, ReadFrame %d", what, len(next), len(framed))
	}
	for i := range next {
		if next[i] != framed[i] {
			t.Fatalf("%s: record %d differs: Next %+v, ReadFrame %+v", what, i, next[i], framed[i])
		}
	}
}

// TestReadFrameMatchesNextAllWorkloads is the core equivalence property:
// for every workload in the suite, the batched ReadFrame path produces
// bit-identical record sequences to Next — including at frame sizes that
// do not divide the record count.
func TestReadFrameMatchesNextAllWorkloads(t *testing.T) {
	const n = 20_000
	for _, spec := range Specs() {
		spec := spec.Scaled(0.0625)
		for _, frameCap := range []int{97, 1024} {
			libA := NewLibrary(spec, 7)
			libB := NewLibrary(spec, 7)
			want := drainNext(t, NewGenerator(libA, 0, 7), n)
			got := drainFrames(t, NewGenerator(libB, 0, 7), n, frameCap)
			recordsEqual(t, spec.Name, want, got)
		}
	}
}

// TestReadFrameMatchesNextScenarios runs the equivalence property over
// the whole built-in scenario suite, with a frame size chosen to land
// mid-phase, at phase boundaries, and across drift sub-segments.
func TestReadFrameMatchesNextScenarios(t *testing.T) {
	const perCore = 24_000
	for _, scn := range Scenarios() {
		scn := scn.Scaled(0.0625)
		gensA, _, err := scn.Generators(11, 2, perCore)
		if err != nil {
			t.Fatalf("%s: %v", scn.Name, err)
		}
		gensB, _, err := scn.Generators(11, 2, perCore)
		if err != nil {
			t.Fatalf("%s: %v", scn.Name, err)
		}
		for core := 0; core < 2; core++ {
			want := drainNext(t, gensA[core], perCore)
			got := drainFrames(t, gensB[core], perCore, 513)
			recordsEqual(t, scn.Name, want, got)
		}
	}
}

// TestCursorReadFrameMatchesLive checks the tape fast path: frames
// decoded from a materialized tape equal the live generator's Next
// sequence, for plain specs and for a phase-structured scenario tape.
func TestCursorReadFrameMatchesLive(t *testing.T) {
	const perCore = 16_384
	spec, err := ByName("oltp-db2")
	if err != nil {
		t.Fatal(err)
	}
	spec = spec.Scaled(0.0625)
	tape := NewTape(spec, 3, 2, perCore)
	lib := NewLibrary(spec, 3)
	for core := 0; core < 2; core++ {
		want := drainNext(t, NewGenerator(lib, core, 3), perCore)
		got := drainFrames(t, tape.Cursor(core), perCore, 1000)
		recordsEqual(t, "tape oltp-db2", want, got)
	}

	scn, err := ScenarioByName("phase-flip")
	if err != nil {
		t.Fatal(err)
	}
	scn = scn.Scaled(0.0625)
	stape := NewScenarioTape(scn, 5, 2, perCore)
	live, _, err := scn.Generators(5, 2, perCore)
	if err != nil {
		t.Fatal(err)
	}
	for core := 0; core < 2; core++ {
		want := drainNext(t, live[core], perCore)
		got := drainFrames(t, stape.Cursor(core), perCore, 1000)
		recordsEqual(t, "tape phase-flip", want, got)
	}
}

// TestScenarioFrameAtPhaseMark fills frames whose boundaries land
// exactly on, just before, and just after a phase boundary; the record
// sequence must match Next in all three alignments.
func TestScenarioFrameAtPhaseMark(t *testing.T) {
	a, err := ByName("web-apache")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ByName("oltp-db2")
	if err != nil {
		t.Fatal(err)
	}
	a, b = a.Scaled(0.0625), b.Scaled(0.0625)
	scn := Sequence("mark-align",
		Phase{Name: "a", Records: 1024, Spec: a},
		Phase{Name: "b", Records: 1024, Spec: b},
		Phase{Name: "tail", Spec: a},
	)
	const perCore = 4096
	for _, frameCap := range []int{1024, 1023, 1025} {
		ga, _, err := scn.Generators(9, 1, perCore)
		if err != nil {
			t.Fatal(err)
		}
		gb, _, err := scn.Generators(9, 1, perCore)
		if err != nil {
			t.Fatal(err)
		}
		want := drainNext(t, ga[0], perCore)
		got := drainFrames(t, gb[0], perCore, frameCap)
		recordsEqual(t, "mark-align", want, got)
	}
}

// TestLimitReadFrameBudget covers the bounded-generator frame edges: a
// frame larger than the remaining budget, the empty final frame, and
// budget preservation over a dry source.
func TestLimitReadFrameBudget(t *testing.T) {
	recs := make([]Record, 25)
	for i := range recs {
		recs[i] = Record{PC: uint32(i), Block: uint64(i) * 3, Instrs: 1, Work: 1}
	}

	// Frame larger than the remaining budget: only the budget fills.
	l := &Limit{Gen: &SliceGenerator{Records: recs}, N: 10}
	f := NewFrameCap(64)
	if n := l.ReadFrame(f); n != 10 || f.Len() != 10 {
		t.Fatalf("ReadFrame over 10-budget = %d (len %d), want 10", n, f.Len())
	}
	if f.Cap() != 64 {
		t.Fatalf("frame capacity not restored: %d", f.Cap())
	}
	if l.N != 0 {
		t.Fatalf("budget after full drain = %d, want 0", l.N)
	}
	// Empty final frame: the exhausted budget reads zero records.
	if n := l.ReadFrame(f); n != 0 || f.Len() != 0 {
		t.Fatalf("ReadFrame after budget = %d (len %d), want 0", n, f.Len())
	}

	// A dry source must not burn the remaining budget (mirrors Next).
	l = &Limit{Gen: &SliceGenerator{Records: recs[:4]}, N: 100}
	if n := l.ReadFrame(f); n != 4 {
		t.Fatalf("ReadFrame over dry source = %d, want 4", n)
	}
	if l.N != 96 {
		t.Fatalf("budget after dry source = %d, want 96 unclaimed", l.N)
	}

	// Budget an exact multiple of the frame size: a full frame, then an
	// empty final frame, never a phantom record.
	l = &Limit{Gen: &SliceGenerator{Records: recs}, N: 20}
	small := NewFrameCap(10)
	if n := l.ReadFrame(small); n != 10 {
		t.Fatalf("first frame = %d, want 10", n)
	}
	if n := l.ReadFrame(small); n != 10 {
		t.Fatalf("second frame = %d, want 10", n)
	}
	if n := l.ReadFrame(small); n != 0 {
		t.Fatalf("final frame = %d, want 0", n)
	}
}

// TestFileReaderReadFrame checks the batched file decode against Next,
// and that a truncated file still yields the complete leading records.
func TestFileReaderReadFrame(t *testing.T) {
	spec, err := ByName("web-zeus")
	if err != nil {
		t.Fatal(err)
	}
	spec = spec.Scaled(0.0625)
	lib := NewLibrary(spec, 2)
	recs := Capture(NewGenerator(lib, 0, 2), 3000)

	var buf bytes.Buffer
	if err := WriteAll(&buf, recs); err != nil {
		t.Fatal(err)
	}
	fileBytes := buf.Bytes()

	frA, err := NewFileReader(bytes.NewReader(fileBytes))
	if err != nil {
		t.Fatal(err)
	}
	frB, err := NewFileReader(bytes.NewReader(fileBytes))
	if err != nil {
		t.Fatal(err)
	}
	want := drainNext(t, frA, len(recs))
	got := drainFrames(t, frB, len(recs), 700)
	recordsEqual(t, "file", want, got)

	// Truncate mid-record: the complete leading records still arrive,
	// then the reader reports the error.
	cut := 16 + 10*fileRecSize + 7
	frC, err := NewFileReader(bytes.NewReader(fileBytes[:cut]))
	if err != nil {
		t.Fatal(err)
	}
	f := NewFrameCap(64)
	if n := frC.ReadFrame(f); n != 10 {
		t.Fatalf("truncated file frame = %d records, want 10", n)
	}
	if frC.Err() == nil {
		t.Fatal("truncated file: Err() should be set")
	}
	if n := frC.ReadFrame(f); n != 0 {
		t.Fatalf("read past truncation = %d, want 0", n)
	}
}

// TestPipelinedFramesMatchesSync asserts the asynchronous double-buffered
// source hands out the same frame sequence — and the same consumer-side
// stats — as the synchronous one, and that Close is safe at any point.
func TestPipelinedFramesMatchesSync(t *testing.T) {
	spec, err := ByName("oltp-oracle")
	if err != nil {
		t.Fatal(err)
	}
	spec = spec.Scaled(0.0625)
	const total = 50_000

	collect := func(src FrameSource) ([]Record, FrameStats) {
		defer src.Close()
		var out []Record
		var rec Record
		for {
			f := src.NextFrame()
			if f == nil {
				break
			}
			for i := 0; i < f.Len(); i++ {
				f.Record(i, &rec)
				out = append(out, rec)
			}
		}
		return out, src.Stats()
	}

	mk := func() Generator {
		return &Limit{Gen: NewGenerator(NewLibrary(spec, 13), 0, 13), N: total}
	}
	wantRecs, wantStats := collect(Frames(mk()))
	gotRecs, gotStats := collect(PipelinedFrames(mk()))
	recordsEqual(t, "pipelined", wantRecs, gotRecs)
	if wantStats != gotStats {
		t.Fatalf("stats differ: sync %+v, pipelined %+v", wantStats, gotStats)
	}
	if wantStats.Records != total {
		t.Fatalf("stats records = %d, want %d", wantStats.Records, total)
	}

	// Close mid-stream: no deadlock, NextFrame returns nil afterwards.
	p := PipelinedFrames(mk())
	if f := p.NextFrame(); f == nil {
		t.Fatal("first frame nil")
	}
	p.Close()
	p.Close() // idempotent
	if f := p.NextFrame(); f != nil {
		t.Fatal("NextFrame after Close should be nil")
	}
}

// TestFillFrameGenericFallback exercises the Next-loop path used for
// external generators that do not implement FrameReader.
func TestFillFrameGenericFallback(t *testing.T) {
	n := 0
	gen := Func(func(r *Record) bool {
		if n >= 130 {
			return false
		}
		r.PC = uint32(n)
		r.Block = uint64(n) * 7
		r.Instrs = 2
		r.Work = 3
		r.Dep = n%2 == 1
		n++
		return true
	})
	f := NewFrameCap(100)
	if got := FillFrame(gen, f); got != 100 {
		t.Fatalf("first generic fill = %d, want 100", got)
	}
	if got := FillFrame(gen, f); got != 30 {
		t.Fatalf("second generic fill = %d, want 30", got)
	}
	if got := FillFrame(gen, f); got != 0 {
		t.Fatalf("dry generic fill = %d, want 0", got)
	}
}
