package trace

// Phase-structured scenarios: the workload model the stationary Table 1
// specs cannot express. A Scenario is an ordered list of phases — each a
// workload spec plus a duration — with combinators for multi-programmed
// mixes (per-core heterogeneous specs), antagonist co-runners, and
// gradual drift (parameter interpolation across a phase). Scenarios are
// what the paper's sensitivity claims need probing against: temporal
// streams repeat, decay, and break at phase boundaries, and meta-data
// recorded in one phase goes stale (or stays valid) across the next.
//
// Scenario generation is a pure function of (scenario, seed, core),
// exactly like plain Spec generation after PR 3: the per-core record
// stream is independent of consumer interleaving, per-core tape
// segments materialize in parallel, and tape replay is bit-identical to
// live generation. Two invariants make phase semantics meaningful:
//
//   - stream libraries are keyed by their content-relevant fields
//     (Streams, length distribution, ZipfS, iteration mode), so two
//     phases running the same working set — a phase-flip's A/B/A, or a
//     drift phase that only moves behavioral knobs — share literally
//     identical streams, and meta-data recorded in an early phase is
//     genuinely valid again when the working set returns;
//   - a phase can force fresh streams for an otherwise-identical spec
//     with Reseed, isolating pure meta-data staleness from statistical
//     workload change.
//
// A single-phase scenario with no mix, drift or reseed degenerates to
// its plain Spec: same library seed, same generator seeds, bit-identical
// records (asserted by TestSinglePhaseScenarioMatchesSpec).
import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"reflect"
)

// ScenarioFormatVersion is the on-disk scenario JSON format version;
// ParseScenario rejects versions it does not understand.
const ScenarioFormatVersion = 1

// Phase is one epoch of a scenario: a workload spec (or a per-core mix
// of specs) held for a duration, optionally drifting toward a second
// spec across the epoch.
type Phase struct {
	// Name labels the phase in per-phase result windows and tables.
	// Empty names default to "phaseN" at materialization.
	Name string `json:"name,omitempty"`

	// Records is the phase duration in per-core records. Exactly one of
	// Records and Frac must be set, except in the final phase, where
	// both may be zero: an open final phase runs for whatever budget
	// remains (and never runs dry, like the plain generators).
	Records uint64 `json:"records,omitempty"`

	// Frac is the phase duration as a fraction of the run's per-core
	// record budget — scenarios written with Frac adapt to any window
	// size. Fractions across a scenario must not sum past 1.
	Frac float64 `json:"frac,omitempty"`

	// Spec is the workload every core runs during the phase (uniform
	// phases). Ignored when Mix is set (and omitted from the JSON form:
	// omitzero, unlike omitempty, actually elides zero-valued structs).
	Spec Spec `json:"spec,omitzero"`

	// Mix assigns heterogeneous specs per core: core c runs
	// Mix[c % len(Mix)]. Cores running the same spec share one stream
	// library, so cross-core stream sharing (§4.2) still happens within
	// each mix group — and a later phase that hands a spec to different
	// cores (migratory threads) finds the same library content there.
	Mix []Spec `json:"mix,omitempty"`

	// DriftTo, when set, interpolates every numeric knob of Spec toward
	// it across the phase in DriftSteps equal segments — gradual
	// workload drift rather than an abrupt flip. Only uniform phases
	// can drift.
	DriftTo *Spec `json:"drift_to,omitempty"`

	// DriftSteps is the number of interpolation segments for DriftTo
	// (default 8).
	DriftSteps int `json:"drift_steps,omitempty"`

	// Reseed perturbs the phase's stream-library seed: a phase with the
	// same spec but a nonzero Reseed runs statistically identical but
	// content-fresh streams, making previously recorded meta-data
	// purely stale.
	Reseed uint64 `json:"reseed,omitempty"`
}

// Scenario is a phase-structured, possibly multi-programmed workload: an
// ordered list of phases materialized into one per-core record stream.
// Build one literally, with the combinators (Stationary, Sequence, Mix,
// Antagonist, Drift), or from JSON with ParseScenario; the built-in
// stress suite is in Scenarios.
type Scenario struct {
	// Version is the scenario file format version; MarshalJSON stamps
	// ScenarioFormatVersion, ParseScenario validates it. Zero is
	// accepted in literals.
	Version int `json:"stms_scenario"`

	// Name identifies the scenario in plans, results, and ByName-style
	// lookups. Must not collide with a workload spec name.
	Name string `json:"name"`

	// Phases run in order; see Phase for duration semantics.
	Phases []Phase `json:"phases"`
}

// PhaseMark locates one phase inside a materialized trace: the per-core
// record offset where it begins. Tapes record marks so replay can
// window statistics per phase exactly as live generation does.
type PhaseMark struct {
	Name  string `json:"name"`
	Start uint64 `json:"start"`
}

// Validate reports configuration errors in the scenario and every spec
// it references.
func (s Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("trace: scenario has no name")
	}
	if s.Version != 0 && s.Version != ScenarioFormatVersion {
		return fmt.Errorf("trace: scenario %s: unsupported format version %d (have %d)",
			s.Name, s.Version, ScenarioFormatVersion)
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("trace: scenario %s has no phases", s.Name)
	}
	var fracSum float64
	for i, p := range s.Phases {
		last := i == len(s.Phases)-1
		switch {
		case p.Records > 0 && p.Frac > 0:
			return fmt.Errorf("trace: scenario %s phase %d sets both Records and Frac", s.Name, i)
		case p.Records == 0 && p.Frac == 0 && !last:
			return fmt.Errorf("trace: scenario %s phase %d has no duration (only the final phase may be open)", s.Name, i)
		case p.Frac < 0 || p.Frac > 1:
			return fmt.Errorf("trace: scenario %s phase %d Frac %g outside (0,1]", s.Name, i, p.Frac)
		case p.DriftSteps < 0:
			return fmt.Errorf("trace: scenario %s phase %d negative DriftSteps", s.Name, i)
		}
		fracSum += p.Frac
		if len(p.Mix) > 0 {
			if p.DriftTo != nil {
				return fmt.Errorf("trace: scenario %s phase %d mixes cores and drifts; pick one", s.Name, i)
			}
			for c, spec := range p.Mix {
				if err := spec.Validate(); err != nil {
					return fmt.Errorf("scenario %s phase %d mix[%d]: %w", s.Name, i, c, err)
				}
			}
			continue
		}
		if err := p.Spec.Validate(); err != nil {
			return fmt.Errorf("scenario %s phase %d: %w", s.Name, i, err)
		}
		if p.DriftTo != nil {
			if err := p.DriftTo.Validate(); err != nil {
				return fmt.Errorf("scenario %s phase %d drift target: %w", s.Name, i, err)
			}
			if p.Records == 0 && p.Frac == 0 {
				return fmt.Errorf("trace: scenario %s phase %d drifts but is open-ended; drift needs a bounded duration", s.Name, i)
			}
		}
	}
	if fracSum > 1+1e-9 {
		return fmt.Errorf("trace: scenario %s phase fractions sum to %g > 1", s.Name, fracSum)
	}
	return nil
}

// Scaled returns a copy with Spec.Scaled applied to every phase spec,
// mix entry, and drift target.
func (s Scenario) Scaled(factor float64) Scenario {
	if factor <= 0 || factor == 1 {
		return s
	}
	out := s
	out.Phases = make([]Phase, len(s.Phases))
	for i, p := range s.Phases {
		q := p
		q.Spec = p.Spec.Scaled(factor)
		if p.DriftTo != nil {
			d := p.DriftTo.Scaled(factor)
			q.DriftTo = &d
		}
		if len(p.Mix) > 0 {
			q.Mix = make([]Spec, len(p.Mix))
			for c, spec := range p.Mix {
				q.Mix[c] = spec.Scaled(factor)
			}
		}
		out.Phases[i] = q
	}
	return out
}

// Key returns the scenario's canonical identity string: everything that
// determines its record streams, in a stable encoding. Two scenarios
// with equal keys materialize identical traces at equal (seed, cores,
// per-core budget); the lab's tape cache and memo key on it.
func (s Scenario) Key() string {
	s.Version = ScenarioFormatVersion
	b, err := json.Marshal(s)
	if err != nil {
		// Scenario fields are plain data; Marshal cannot fail on them.
		panic(fmt.Sprintf("trace: scenario key: %v", err))
	}
	return string(b)
}

// MarshalJSON stamps the format version into the standard encoding.
func (s Scenario) MarshalJSON() ([]byte, error) {
	type bare Scenario // shed the method to avoid recursion
	c := s
	c.Version = ScenarioFormatVersion
	return json.Marshal(bare(c))
}

// ParseScenario decodes and validates a scenario from its versioned
// JSON format.
func ParseScenario(r io.Reader) (Scenario, error) {
	var s Scenario
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Scenario{}, fmt.Errorf("trace: parsing scenario: %w", err)
	}
	if s.Version != ScenarioFormatVersion {
		return Scenario{}, fmt.Errorf("trace: scenario %q: format version %d, want %d",
			s.Name, s.Version, ScenarioFormatVersion)
	}
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// ---------------------------------------------------------------------
// Combinators.

// Stationary wraps a plain spec as a single-phase scenario; its record
// streams are bit-identical to the spec's own.
func Stationary(name string, spec Spec) Scenario {
	return Scenario{Name: name, Phases: []Phase{{Spec: spec}}}
}

// Sequence builds a scenario from explicit phases.
func Sequence(name string, phases ...Phase) Scenario {
	return Scenario{Name: name, Phases: phases}
}

// MixOf builds a single-phase multi-programmed scenario: core c runs
// specs[c % len(specs)] for the whole run.
func MixOf(name string, specs ...Spec) Scenario {
	return Scenario{Name: name, Phases: []Phase{{Mix: specs}}}
}

// Antagonist builds a single-phase scenario where every fourth core
// (the last of each 4-core group) runs the antagonist spec and the rest
// run base — the co-runner interference pattern.
func Antagonist(name string, base, antagonist Spec) Scenario {
	return MixOf(name, base, base, base, antagonist)
}

// Drift builds a single bounded drift phase from 'from' to 'to' over
// the whole run, in steps segments (0 = default), followed by an open
// phase holding the end state.
func Drift(name string, from, to Spec, steps int) Scenario {
	return Scenario{Name: name, Phases: []Phase{
		{Name: "drift", Frac: 0.85, Spec: from, DriftTo: &to, DriftSteps: steps},
		{Name: "settled", Spec: to},
	}}
}

// ---------------------------------------------------------------------
// Materialization.

// defaultDriftSteps subdivides a drift phase when DriftSteps is unset.
const defaultDriftSteps = 8

// segment is one resolved slice of a scenario: a per-core spec
// assignment held for a bounded per-core record count (0 = unbounded
// final segment).
type segment struct {
	specs   []Spec // per core (len = cores)
	reseed  uint64
	records uint64
	salt    uint64 // generator-seed perturbation; 0 for the first segment
}

// segments resolves phases (and drift sub-segments) against a per-core
// record budget. The final segment is always unbounded so scenario
// generators, like the plain ones, never run dry; marks carry the
// nominal phase starts for stat windowing.
func (s Scenario) segments(cores int, perCore uint64) ([]segment, []PhaseMark) {
	var segs []segment
	var marks []PhaseMark
	var off uint64
	for i, p := range s.Phases {
		name := p.Name
		if name == "" {
			name = fmt.Sprintf("phase%d", i+1)
		}
		marks = append(marks, PhaseMark{Name: name, Start: off})
		records := p.Records
		if records == 0 && p.Frac > 0 {
			records = uint64(p.Frac*float64(perCore) + 0.5)
			if records == 0 {
				records = 1
			}
		}
		off += records
		specs := func(spec Spec) []Spec {
			out := make([]Spec, cores)
			for c := range out {
				if len(p.Mix) > 0 {
					out[c] = p.Mix[c%len(p.Mix)]
				} else {
					out[c] = spec
				}
			}
			return out
		}
		salt := func() uint64 { return uint64(len(segs)) * 0x94d049bb133111eb }
		switch {
		case p.DriftTo != nil:
			steps := p.DriftSteps
			if steps <= 0 {
				steps = defaultDriftSteps
			}
			if uint64(steps) > records {
				steps = int(records)
			}
			per := records / uint64(steps)
			for k := 0; k < steps; k++ {
				n := per
				if k == steps-1 {
					n = records - per*uint64(steps-1)
				}
				t := float64(k+1) / float64(steps)
				segs = append(segs, segment{
					specs:   specs(lerpSpec(p.Spec, *p.DriftTo, t)),
					reseed:  p.Reseed,
					records: n,
					salt:    salt(),
				})
			}
		default:
			segs = append(segs, segment{
				specs:   specs(p.Spec),
				reseed:  p.Reseed,
				records: records, // 0 for an open final phase
				salt:    salt(),
			})
		}
	}
	segs[len(segs)-1].records = 0 // the trace outlives any nominal end
	if len(s.Phases) == 1 {
		// A single-phase scenario is its spec; phase windows would just
		// repeat the whole-run numbers.
		marks = nil
	}
	return segs, marks
}

// lerpSpec interpolates every numeric field of a toward b by t in
// [0, 1], keeping a's name, class, and mode flags. Integers round to
// nearest so a full-length drift ends exactly at b's values.
func lerpSpec(a, b Spec, t float64) Spec {
	out := a
	va, vb := reflect.ValueOf(a), reflect.ValueOf(b)
	vo := reflect.ValueOf(&out).Elem()
	for i := 0; i < va.NumField(); i++ {
		switch va.Field(i).Kind() {
		case reflect.Float64:
			x, y := va.Field(i).Float(), vb.Field(i).Float()
			vo.Field(i).SetFloat(x + (y-x)*t)
		case reflect.Int:
			x, y := float64(va.Field(i).Int()), float64(vb.Field(i).Int())
			vo.Field(i).SetInt(int64(math.Round(x + (y-x)*t)))
		case reflect.Uint32, reflect.Uint64:
			x, y := float64(va.Field(i).Uint()), float64(vb.Field(i).Uint())
			vo.Field(i).SetUint(uint64(math.Round(x + (y-x)*t)))
		}
	}
	return out
}

// libFingerprint hashes the spec fields that determine stream-library
// content (the working set), ignoring behavioral knobs. Phases whose
// working sets agree — a returning phase, or drift that only moves
// behavioral parameters — hash equal and share identical streams.
func libFingerprint(s Spec) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%d|%g|%g|%v|%d",
		s.Streams, s.LenMin, s.LenMax, s.LenAlpha, s.ZipfS, s.IterStream, s.IterLen)
	return h.Sum64()
}

// anchorSpec is the scenario's first per-core spec: the reference point
// for library seeding, chosen so a scenario opening with spec X builds
// X's library at the plain seed (single-phase scenarios degenerate to
// their specs exactly).
func (s Scenario) anchorSpec() Spec {
	p := s.Phases[0]
	if len(p.Mix) > 0 {
		return p.Mix[0]
	}
	return p.Spec
}

// libIdent is the comparable projection of a spec's library-determining
// fields: segments with equal idents (and reseeds) share one Library
// instance — and therefore literally identical streams — however their
// behavioral knobs differ.
type libIdent struct {
	streams, lenMin, lenMax int
	lenAlpha, zipfS         float64
	iterStream              bool
	iterLen                 int
}

func libIdentOf(s Spec) libIdent {
	return libIdent{
		streams: s.Streams, lenMin: s.LenMin, lenMax: s.LenMax,
		lenAlpha: s.LenAlpha, zipfS: s.ZipfS,
		iterStream: s.IterStream, iterLen: s.IterLen,
	}
}

// libKey identifies one shared stream library within a scenario run.
type libKey struct {
	ident  libIdent
	reseed uint64
}

// Generators materializes the scenario's per-core record streams for a
// run of perCore records per core: every library is built and every
// per-segment generator primed eagerly (in deterministic order), so the
// returned generators touch only disjoint or read-only state — safe for
// the tape builder's parallel per-core encoding. The marks locate phase
// starts for stat windowing (nil for single-phase scenarios).
func (s Scenario) Generators(seed uint64, cores int, perCore uint64) ([]Generator, []PhaseMark, error) {
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	if cores <= 0 {
		return nil, nil, fmt.Errorf("trace: scenario %s needs cores > 0, got %d", s.Name, cores)
	}
	segs, marks := s.segments(cores, perCore)
	anchor := libFingerprint(s.anchorSpec())
	libs := make(map[libKey]*Library)
	gens := make([]*scenarioGen, cores)
	for c := range gens {
		gens[c] = &scenarioGen{
			gens: make([]Generator, len(segs)),
			lims: make([]uint64, len(segs)),
		}
	}
	for si, seg := range segs {
		for c := 0; c < cores; c++ {
			spec := seg.specs[c]
			lk := libKey{ident: libIdentOf(spec), reseed: seg.reseed}
			lib, ok := libs[lk]
			if !ok {
				// The anchor library lands on the plain seed; other
				// working sets (and Reseed'd twins) get their own
				// deterministic stream content. Identical working sets
				// in different phases share one library, so returning
				// phases find their streams — and recorded meta-data —
				// intact.
				libSeed := seed ^ libFingerprint(spec) ^ anchor ^ seg.reseed
				lib = NewLibrary(spec, libSeed)
				libs[lk] = lib
			}
			gens[c].gens[si] = newGeneratorWithSpec(lib, spec, c, seed^seg.salt)
			gens[c].lims[si] = seg.records
		}
	}
	out := make([]Generator, cores)
	for c := range gens {
		gens[c].left = gens[c].lims[0]
		out[c] = gens[c]
	}
	return out, marks, nil
}

// EffectiveSpec condenses the scenario into the single spec the
// simulator's run-level accounting needs: the scenario's name and its
// records-weighted dirty-fill fraction over a run of perCore records
// per core (cores' mix entries weighted equally). All other fields come
// from the first phase. A single-phase uniform scenario yields its spec
// with the scenario's name.
func (s Scenario) EffectiveSpec(cores int, perCore uint64) Spec {
	out := s.anchorSpec()
	out.Name = s.Name
	segs, _ := s.segments(cores, perCore)
	var wsum, dsum float64
	used := uint64(0)
	for _, seg := range segs {
		n := seg.records
		if n == 0 || used+n > perCore { // open tail: the remaining budget
			n = 0
			if perCore > used {
				n = perCore - used
			}
		}
		used += n
		var d float64
		for _, spec := range seg.specs {
			d += spec.DirtyFrac
		}
		d /= float64(len(seg.specs))
		wsum += float64(n)
		dsum += float64(n) * d
	}
	if wsum > 0 {
		out.DirtyFrac = dsum / wsum
	}
	return out
}

// TotalPerCore returns the scenario's nominal per-core record length
// when resolved against a budget: the start of the open tail, or the
// budget itself if every phase is bounded beyond it.
func (s Scenario) TotalPerCore(cores int, perCore uint64) uint64 {
	segs, _ := s.segments(cores, perCore)
	var total uint64
	for _, seg := range segs {
		total += seg.records
	}
	if total > perCore {
		total = perCore
	}
	return total
}

// scenarioGen walks one core's pre-built per-segment generators in
// order; the final segment is unbounded, so Next never runs dry.
type scenarioGen struct {
	gens []Generator
	lims []uint64 // per-segment budgets; 0 = unbounded
	idx  int
	left uint64
	win  Frame // reusable sub-frame view for batched per-segment fills
}

// Next implements Generator.
func (g *scenarioGen) Next(r *Record) bool {
	for {
		if g.lims[g.idx] == 0 {
			return g.gens[g.idx].Next(r)
		}
		if g.left > 0 {
			g.left--
			return g.gens[g.idx].Next(r)
		}
		g.idx++
		g.left = g.lims[g.idx]
	}
}

// ReadFrame implements FrameReader. A frame may span segment (and
// therefore phase) boundaries: each bounded segment contributes exactly
// its remaining budget through one batched sub-fill of its own
// generator, so the record sequence — and any consumer that windows
// statistics per record — is bit-identical to Next. The final segment
// is unbounded and fills whatever space remains, so scenario frames,
// like plain workload frames, always fill completely.
func (g *scenarioGen) ReadFrame(f *Frame) int {
	total := 0
	for total < f.cap {
		if g.lims[g.idx] == 0 {
			g.win = f.window(total, f.cap-total)
			total += FillFrame(g.gens[g.idx], &g.win)
			break
		}
		if g.left == 0 {
			g.idx++
			g.left = g.lims[g.idx]
			continue
		}
		want := f.cap - total
		if uint64(want) > g.left {
			want = int(g.left)
		}
		g.win = f.window(total, want)
		got := FillFrame(g.gens[g.idx], &g.win)
		g.left -= uint64(got)
		total += got
		if got < want {
			break // segment generator ran dry (defensive; ours never do)
		}
	}
	f.n = total
	return total
}
