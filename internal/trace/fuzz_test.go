package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadTape feeds arbitrary bytes to the tape container parser. It
// must never panic, and every allocation must be bounded by the input
// length (attacker-declared counts are cross-checked against the bytes
// actually present before anything is sized from them). Accepted tapes
// must round-trip: re-encoding yields the identical file.
func FuzzReadTape(f *testing.F) {
	spec, err := ByName("web-apache")
	if err != nil {
		f.Fatal(err)
	}
	tape := NewTape(spec.Scaled(0.01), 7, 2, 96)
	var buf bytes.Buffer
	if err := WriteTape(&buf, tape); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:16])
	corrupt := bytes.Clone(valid)
	corrupt[len(corrupt)/2] ^= 0x10
	f.Add(corrupt)
	f.Add([]byte("STMSTAPE"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadTape(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteTape(&out, got); err != nil {
			t.Fatalf("accepted tape failed to re-encode: %v", err)
		}
		again, err := ReadTape(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded tape failed to re-read: %v", err)
		}
		if again.Cores() != got.Cores() || again.PerCore() != got.PerCore() || again.Seed() != got.Seed() {
			t.Fatalf("tape identity changed across round-trip")
		}
		// Every accepted tape must be fully walkable: decode all cores
		// to the end without panicking.
		var rec Record
		for c := 0; c < got.Cores(); c++ {
			cur := got.Cursor(c)
			for n := uint64(0); cur.Next(&rec); n++ {
				if n > got.Len(c) {
					t.Fatalf("core %d cursor ran past declared length %d", c, got.Len(c))
				}
			}
		}
	})
}

// FuzzParseScenario feeds arbitrary bytes to the scenario JSON parser:
// no panic, and everything accepted must validate and survive a
// marshal/parse round-trip with its identity key intact.
func FuzzParseScenario(f *testing.F) {
	spec, err := ByName("web-apache")
	if err != nil {
		f.Fatal(err)
	}
	scn := Sequence("fuzz-seed", Phase{Spec: spec, Records: 1000}, Phase{Mix: []Spec{spec}})
	b, err := scn.MarshalJSON()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(string(b))
	f.Add(`{"name":"x","version":1}`)
	f.Add(`{"version":99}`)
	f.Add(`{`)
	f.Add(``)

	f.Fuzz(func(t *testing.T, data string) {
		scn, err := ParseScenario(strings.NewReader(data))
		if err != nil {
			return
		}
		if err := scn.Validate(); err != nil {
			t.Fatalf("accepted scenario fails validation: %v", err)
		}
		b, err := scn.MarshalJSON()
		if err != nil {
			t.Fatalf("accepted scenario failed to marshal: %v", err)
		}
		again, err := ParseScenario(bytes.NewReader(b))
		if err != nil {
			t.Fatalf("re-marshaled scenario failed to parse: %v", err)
		}
		if again.Key() != scn.Key() {
			t.Fatalf("scenario identity changed across round-trip")
		}
	})
}
