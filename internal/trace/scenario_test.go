package trace

import (
	"bytes"
	"encoding/json"
	"hash/fnv"
	"reflect"
	"strings"
	"testing"
)

// fingerprintGen drains n records from gen into an order-sensitive
// 64-bit fingerprint.
func fingerprintGen(t *testing.T, gen Generator, n uint64) uint64 {
	t.Helper()
	h := fnv.New64a()
	var rec Record
	buf := make([]byte, 0, 32)
	for i := uint64(0); i < n; i++ {
		if !gen.Next(&rec) {
			t.Fatalf("generator ran dry at record %d of %d", i, n)
		}
		buf = buf[:0]
		buf = appendUvarint(buf, rec.Block)
		buf = appendUvarint(buf, uint64(rec.PC))
		buf = appendUvarint(buf, uint64(rec.Instrs))
		buf = appendUvarint(buf, uint64(rec.Work))
		if rec.Dep {
			buf = append(buf, 1)
		}
		h.Write(buf)
	}
	return h.Sum64()
}

func TestScenarioValidate(t *testing.T) {
	apache := mustSpec("web-apache")
	cases := []struct {
		name string
		scn  Scenario
	}{
		{"no name", Scenario{Phases: []Phase{{Spec: apache}}}},
		{"no phases", Scenario{Name: "x"}},
		{"both durations", Scenario{Name: "x", Phases: []Phase{
			{Records: 10, Frac: 0.5, Spec: apache}, {Spec: apache}}}},
		{"open middle phase", Scenario{Name: "x", Phases: []Phase{
			{Spec: apache}, {Spec: apache, Frac: 0.5}}}},
		{"frac overflow", Scenario{Name: "x", Phases: []Phase{
			{Frac: 0.7, Spec: apache}, {Frac: 0.7, Spec: apache}}}},
		{"invalid spec", Scenario{Name: "x", Phases: []Phase{{Spec: Spec{Name: "broken"}}}}},
		{"invalid mix entry", Scenario{Name: "x", Phases: []Phase{
			{Mix: []Spec{apache, {Name: "broken"}}}}}},
		{"drift on mix", Scenario{Name: "x", Phases: []Phase{
			{Mix: []Spec{apache}, DriftTo: &apache, Frac: 0.5}, {Spec: apache}}}},
		{"open drift", Scenario{Name: "x", Phases: []Phase{
			{Spec: apache, DriftTo: &apache}}}},
		{"bad version", Scenario{Version: 99, Name: "x", Phases: []Phase{{Spec: apache}}}},
	}
	for _, tc := range cases {
		if err := tc.scn.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid scenario", tc.name)
		}
	}
	for _, scn := range Scenarios() {
		if err := scn.Validate(); err != nil {
			t.Errorf("built-in %s: %v", scn.Name, err)
		}
		if _, err := ByName(scn.Name); err == nil {
			t.Errorf("built-in scenario %s collides with a workload name", scn.Name)
		}
	}
}

// TestScenarioJSONRoundTrip parses each built-in scenario back from its
// serialized form and checks the round trip at all three levels: the
// canonical identity key, the serialized bytes, and — the part that
// matters — the materialized record streams.
func TestScenarioJSONRoundTrip(t *testing.T) {
	for _, scn := range Scenarios() {
		blob, err := json.Marshal(scn)
		if err != nil {
			t.Fatalf("%s: marshal: %v", scn.Name, err)
		}
		parsed, err := ParseScenario(bytes.NewReader(blob))
		if err != nil {
			t.Fatalf("%s: parse: %v", scn.Name, err)
		}
		if parsed.Key() != scn.Key() {
			t.Fatalf("%s: identity key changed across JSON round trip", scn.Name)
		}
		reblob, err := json.Marshal(parsed)
		if err != nil {
			t.Fatalf("%s: re-marshal: %v", scn.Name, err)
		}
		if !bytes.Equal(blob, reblob) {
			t.Fatalf("%s: serialization not stable:\n%s\n%s", scn.Name, blob, reblob)
		}

		const cores, perCore = 2, 1500
		a := scn.Scaled(0.0625)
		b := parsed.Scaled(0.0625)
		ga, marksA, err := a.Generators(7, cores, perCore)
		if err != nil {
			t.Fatal(err)
		}
		gb, marksB, err := b.Generators(7, cores, perCore)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(marksA, marksB) {
			t.Fatalf("%s: phase marks differ after round trip", scn.Name)
		}
		for c := 0; c < cores; c++ {
			if fingerprintGen(t, ga[c], perCore) != fingerprintGen(t, gb[c], perCore) {
				t.Fatalf("%s: core %d records differ after JSON round trip", scn.Name, c)
			}
		}
	}
}

// TestSinglePhaseScenarioMatchesSpec is the degeneration property: a
// single-phase scenario (no mix, drift, or reseed) materializes records
// bit-identical to its plain Spec tape, across workloads and seeds.
func TestSinglePhaseScenarioMatchesSpec(t *testing.T) {
	const cores, perCore = 3, 2000
	for _, name := range []string{"web-apache", "oltp-db2", "dss-qry17", "sci-ocean"} {
		for _, seed := range []uint64{1, 42, 0xdecafbad} {
			spec, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			spec = spec.Scaled(0.0625)
			scn := Stationary(spec.Name, spec)
			plain := NewTape(spec, seed, cores, perCore)
			wrapped := NewScenarioTape(scn, seed, cores, perCore)
			if wrapped.Marks() != nil {
				t.Fatalf("%s: single-phase scenario tape has phase marks", name)
			}
			if plain.Spec() != wrapped.Spec() {
				t.Fatalf("%s: effective spec differs: %+v vs %+v", name, plain.Spec(), wrapped.Spec())
			}
			for c := 0; c < cores; c++ {
				pf := fingerprintGen(t, plain.Cursor(c), perCore)
				sf := fingerprintGen(t, wrapped.Cursor(c), perCore)
				if pf != sf {
					t.Fatalf("%s seed %d core %d: scenario tape differs from plain spec tape", name, seed, c)
				}
			}
		}
	}
}

// TestScenarioTapeMatchesLive is the golden fingerprint check for the
// whole built-in suite: tape replay must be bit-identical to live
// generation — covering multi-phase, mixed-core, drift, and reseed
// scenarios — and marks must survive the on-disk tape format.
func TestScenarioTapeMatchesLive(t *testing.T) {
	const cores, perCore = 4, 2500
	for _, scn := range Scenarios() {
		scaled := scn.Scaled(0.0625)
		live, marks, err := scaled.Generators(42, cores, perCore)
		if err != nil {
			t.Fatal(err)
		}
		tape := NewScenarioTape(scaled, 42, cores, perCore)
		if !reflect.DeepEqual(tape.Marks(), marks) {
			t.Fatalf("%s: tape marks %v != live marks %v", scn.Name, tape.Marks(), marks)
		}

		var buf bytes.Buffer
		if err := WriteTape(&buf, tape); err != nil {
			t.Fatal(err)
		}
		loaded, err := ReadTape(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(loaded.Marks(), marks) {
			t.Fatalf("%s: marks lost in tape file round trip", scn.Name)
		}
		if loaded.Scenario() == nil || loaded.Scenario().Key() != scaled.Key() {
			t.Fatalf("%s: scenario provenance lost in tape file round trip", scn.Name)
		}
		if loaded.Spec() != tape.Spec() {
			t.Fatalf("%s: effective spec changed in tape file round trip", scn.Name)
		}

		for c := 0; c < cores; c++ {
			lf := fingerprintGen(t, live[c], perCore)
			tf := fingerprintGen(t, tape.Cursor(c), perCore)
			ff := fingerprintGen(t, loaded.Cursor(c), perCore)
			if lf != tf || tf != ff {
				t.Fatalf("%s core %d: live %x, tape %x, file %x — replay not bit-identical",
					scn.Name, c, lf, tf, ff)
			}
		}
	}
}

// TestScenarioLibrarySharing asserts the invariant phase semantics rest
// on: phases with the same working set see the same streams, Reseed
// forces fresh ones.
func TestScenarioLibrarySharing(t *testing.T) {
	apache := mustSpec("web-apache").Scaled(0.0625)
	db2 := mustSpec("oltp-db2").Scaled(0.0625)

	// A/B/A: phases 1 and 3 must draw from identical stream content.
	flip := Sequence("flip",
		Phase{Records: 1000, Spec: apache},
		Phase{Records: 1000, Spec: db2},
		Phase{Spec: apache},
	)
	gens, _, err := flip.Generators(42, 1, 3000)
	if err != nil {
		t.Fatal(err)
	}
	sg := gens[0].(*scenarioGen)
	libOf := func(g Generator) *Library { return g.(*generator).lib }
	if libOf(sg.gens[0]) != libOf(sg.gens[2]) {
		t.Fatal("returning phase got a different library for the same working set")
	}
	if libOf(sg.gens[0]) == libOf(sg.gens[1]) {
		t.Fatal("different working sets share a library")
	}

	// Reseed: same spec, different streams.
	reseed := Sequence("reseed",
		Phase{Records: 1000, Spec: apache},
		Phase{Spec: apache, Reseed: 1},
	)
	gens, _, err = reseed.Generators(42, 1, 2000)
	if err != nil {
		t.Fatal(err)
	}
	sg = gens[0].(*scenarioGen)
	la, lb := libOf(sg.gens[0]), libOf(sg.gens[1])
	if la == lb {
		t.Fatal("Reseed did not fork the library")
	}
	if reflect.DeepEqual(la.streams[0], lb.streams[0]) {
		t.Fatal("Reseed produced identical stream content")
	}

	// Drift on behavioral knobs only: every step shares one library.
	noisy := apache
	noisy.NoiseProb = 0.4
	drift := Drift("d", apache, noisy, 4)
	gens, _, err = drift.Generators(42, 1, 4000)
	if err != nil {
		t.Fatal(err)
	}
	sg = gens[0].(*scenarioGen)
	for i := 1; i < len(sg.gens); i++ {
		if libOf(sg.gens[i]) != libOf(sg.gens[0]) {
			t.Fatalf("behavioral drift step %d rebuilt the library", i)
		}
	}
}

func TestLerpSpecEndpoints(t *testing.T) {
	a := mustSpec("web-apache")
	b := mustSpec("oltp-db2")
	b.Name, b.Class = a.Name, a.Class // lerp keeps a's identity fields
	if got := lerpSpec(a, b, 0); got != a {
		t.Fatalf("lerp t=0 != a:\n%+v\n%+v", got, a)
	}
	if got := lerpSpec(a, b, 1); got != b {
		t.Fatalf("lerp t=1 != b:\n%+v\n%+v", got, b)
	}
	mid := lerpSpec(a, b, 0.5)
	if mid.Streams <= min(a.Streams, b.Streams)-1 || mid.Streams >= max(a.Streams, b.Streams)+1 {
		t.Fatalf("lerp t=0.5 Streams %d outside [%d, %d]", mid.Streams, a.Streams, b.Streams)
	}
}

func TestByNameSuggestions(t *testing.T) {
	if _, err := ByName("web-apach"); err == nil {
		t.Fatal("ByName accepted a typo")
	} else {
		msg := err.Error()
		if !strings.Contains(msg, `"web-apache"`) {
			t.Fatalf("error does not suggest the nearest workload: %s", msg)
		}
		for _, name := range Names() {
			if !strings.Contains(msg, name) {
				t.Fatalf("error does not list %s: %s", name, msg)
			}
		}
	}
	// Nothing plausible: no suggestion, but still the full list.
	if _, err := ByName("zzzzzzzzzzzzzzz"); err == nil {
		t.Fatal("ByName accepted garbage")
	} else if strings.Contains(err.Error(), "did you mean") {
		t.Fatalf("implausible name still got a suggestion: %v", err)
	}

	if _, err := ScenarioByName("phase-flop"); err == nil {
		t.Fatal("ScenarioByName accepted a typo")
	} else if !strings.Contains(err.Error(), `"phase-flip"`) {
		t.Fatalf("error does not suggest the nearest scenario: %v", err)
	}
}

func TestParseScenarioRejects(t *testing.T) {
	cases := map[string]string{
		"wrong version":  `{"stms_scenario": 99, "name": "x", "phases": [{"spec": {}}]}`,
		"missing fields": `{"stms_scenario": 1}`,
		"unknown field":  `{"stms_scenario": 1, "name": "x", "bogus": true, "phases": []}`,
		"not json":       `phase-flip`,
	}
	for name, blob := range cases {
		if _, err := ParseScenario(strings.NewReader(blob)); err == nil {
			t.Errorf("%s: ParseScenario accepted %q", name, blob)
		}
	}
}
