package trace

import (
	"bytes"
	"reflect"
	"testing"
)

// TestTapeMatchesLiveGeneration is the tape substrate's core property:
// for every named workload, a Tape cursor replays the exact record
// sequence of a live generator over the same library — per core, for
// the full materialized budget, and running dry exactly at the end.
func TestTapeMatchesLiveGeneration(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			spec, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			spec = spec.Scaled(0.0625)
			const cores, perCore = 3, 20_000
			tape := NewTape(spec, 99, cores, perCore)
			if tape.Cores() != cores || tape.PerCore() != perCore {
				t.Fatalf("tape shape %d×%d", tape.Cores(), tape.PerCore())
			}
			lib := NewLibrary(spec, 99)
			gens := make([]Generator, cores)
			for c := range gens {
				gens[c] = NewGenerator(lib, c, 99)
			}
			for c := 0; c < cores; c++ {
				cur := tape.Cursor(c)
				if cur.Remaining() != perCore {
					t.Fatalf("core %d holds %d records", c, cur.Remaining())
				}
				var got, want Record
				for i := uint64(0); i < perCore; i++ {
					if !cur.Next(&got) {
						t.Fatalf("core %d cursor dry at %d", c, i)
					}
					gens[c].Next(&want)
					if got != want {
						t.Fatalf("core %d record %d: tape %+v, live %+v", c, i, got, want)
					}
				}
				if cur.Next(&got) {
					t.Fatalf("core %d cursor not dry after %d records", c, perCore)
				}
				// Reset rewinds to the exact first record.
				cur.Reset()
				first := tape.Cursor(c)
				var a, b Record
				cur.Next(&a)
				first.Next(&b)
				if a != b {
					t.Fatal("Reset did not rewind to the first record")
				}
			}
		})
	}
}

// TestTapeCursorZeroAlloc pins the zero-allocation replay contract.
func TestTapeCursorZeroAlloc(t *testing.T) {
	spec, _ := ByName("oltp-db2")
	spec = spec.Scaled(0.0625)
	tape := NewTape(spec, 5, 1, 50_000)
	cur := tape.Cursor(0)
	var rec Record
	allocs := testing.AllocsPerRun(20_000, func() {
		if !cur.Next(&rec) {
			cur.Reset()
		}
	})
	if allocs != 0 {
		t.Fatalf("cursor Next allocates %.1f per call", allocs)
	}
}

// TestTapeBoundedSource covers segment budgets: workload generators
// fill exactly the budget, and a source that runs dry early yields a
// short segment whose cursor runs dry at the same point.
func TestTapeBoundedSource(t *testing.T) {
	spec, _ := ByName("web-zeus")
	spec = spec.Scaled(0.0625)
	tape := NewTape(spec, 3, 2, 100)
	if tape.Len(0) != 100 || tape.Len(1) != 100 {
		t.Fatalf("segments hold %d/%d records", tape.Len(0), tape.Len(1))
	}
	if tape.Bytes() <= 0 {
		t.Fatal("tape reports no footprint")
	}

	short := encodeSegment(&SliceGenerator{Records: []Record{
		{Block: 7, PC: 1, Instrs: 1, Work: 1},
		{Block: 9, PC: 2, Instrs: 1, Work: 1},
	}}, 100)
	if short.n != 2 {
		t.Fatalf("dry source segment holds %d records, want 2", short.n)
	}
	cur := &Cursor{col: &short, n: short.n}
	var r Record
	if !cur.Next(&r) || !cur.Next(&r) || cur.Next(&r) {
		t.Fatal("short segment cursor did not run dry after 2 records")
	}
}

// TestTapePCDictionaryOverflow forces more than 256 distinct PCs so the
// raw-column fallback engages, and checks the replay is still exact.
func TestTapePCDictionaryOverflow(t *testing.T) {
	recs := make([]Record, 2000)
	for i := range recs {
		recs[i] = Record{
			PC: uint32(i % 700), Block: uint64(i) * 37 % 1024,
			Dep: i%3 == 0, Instrs: uint32(i%90 + 1), Work: uint32(i%50 + 1),
		}
	}
	col := encodeSegment(&SliceGenerator{Records: recs}, uint64(len(recs)))
	if col.pcIdx != nil || col.pcRaw == nil {
		t.Fatal("dictionary did not overflow into the raw column")
	}
	cur := &Cursor{col: &col, n: col.n}
	var got Record
	for i := range recs {
		if !cur.Next(&got) {
			t.Fatalf("cursor dry at %d", i)
		}
		if got != recs[i] {
			t.Fatalf("record %d: %+v != %+v", i, got, recs[i])
		}
	}
}

// TestTapeFileRoundTrip: save→load must be lossless — identical
// metadata, identical columns, identical replay.
func TestTapeFileRoundTrip(t *testing.T) {
	for _, name := range []string{"web-apache", "sci-moldyn"} {
		spec, _ := ByName(name)
		spec = spec.Scaled(0.0625)
		tape := NewTape(spec, 123, 2, 5_000)

		var buf bytes.Buffer
		if err := WriteTape(&buf, tape); err != nil {
			t.Fatal(err)
		}
		got, err := ReadTape(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(tape.spec, got.spec) {
			t.Fatalf("%s: spec not preserved: %+v vs %+v", name, got.spec, tape.spec)
		}
		if got.seed != tape.seed || got.perCore != tape.perCore || got.Cores() != tape.Cores() {
			t.Fatalf("%s: metadata not preserved", name)
		}
		if got.Bytes() != tape.Bytes() {
			t.Fatalf("%s: footprint %d != %d", name, got.Bytes(), tape.Bytes())
		}
		for c := 0; c < tape.Cores(); c++ {
			a, b := tape.Cursor(c), got.Cursor(c)
			var ra, rb Record
			for a.Next(&ra) {
				if !b.Next(&rb) || ra != rb {
					t.Fatalf("%s: core %d replay diverged", name, c)
				}
			}
			if b.Next(&rb) {
				t.Fatalf("%s: loaded tape longer than original", name)
			}
		}
	}
}

// TestTapeFileRejectsCorruption exercises the reader's validation.
func TestTapeFileRejectsCorruption(t *testing.T) {
	spec, _ := ByName("web-apache")
	spec = spec.Scaled(0.0625)
	tape := NewTape(spec, 1, 1, 500)
	var buf bytes.Buffer
	if err := WriteTape(&buf, tape); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	truncated := good[:len(good)/2]
	if _, err := ReadTape(bytes.NewReader(truncated)); err == nil {
		t.Fatal("truncated tape accepted")
	}

	badMagic := append([]byte(nil), good...)
	badMagic[0] = 'X'
	if _, err := ReadTape(bytes.NewReader(badMagic)); err == nil {
		t.Fatal("bad magic accepted")
	}

	badVersion := append([]byte(nil), good...)
	badVersion[8] = 0xFF
	if _, err := ReadTape(bytes.NewReader(badVersion)); err == nil {
		t.Fatal("unknown version accepted")
	}

	// Flat record traces are a different format, not a broken tape.
	var flat bytes.Buffer
	if err := WriteAll(&flat, []Record{{Block: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTape(&flat); err == nil {
		t.Fatal("flat record trace accepted as tape")
	}
	var magic [8]byte
	copy(magic[:], good[:8])
	if DetectFormat(magic) != FormatTape {
		t.Fatal("tape magic not detected")
	}
	copy(magic[:], fileMagic[:])
	if DetectFormat(magic) != FormatRecords {
		t.Fatal("record magic not detected")
	}
}
