package trace

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestFileRoundTrip(t *testing.T) {
	spec, _ := ByName("web-apache")
	spec = spec.Scaled(0.0625)
	lib := NewLibrary(spec, 3)
	recs := Capture(NewGenerator(lib, 0, 3), 10_000)

	var buf bytes.Buffer
	if err := WriteAll(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, wrote %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], recs[i])
		}
	}
}

func TestFileReaderAsGenerator(t *testing.T) {
	recs := []Record{
		{PC: 1, Block: 100, Dep: true, Instrs: 5, Work: 7},
		{PC: 2, Block: 200, Dep: false, Instrs: 9, Work: 11},
	}
	var buf bytes.Buffer
	if err := WriteAll(&buf, recs); err != nil {
		t.Fatal(err)
	}
	fr, err := NewFileReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Remaining() != 2 {
		t.Fatalf("remaining = %d", fr.Remaining())
	}
	var r Record
	var got []Record
	for fr.Next(&r) {
		got = append(got, r)
	}
	if fr.Err() != nil {
		t.Fatal(fr.Err())
	}
	if len(got) != 2 || got[0] != recs[0] || got[1] != recs[1] {
		t.Fatalf("got %+v", got)
	}
}

func TestFileBadMagic(t *testing.T) {
	buf := bytes.NewBufferString("NOTATRACE........")
	if _, err := NewFileReader(buf); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestFileTruncated(t *testing.T) {
	recs := []Record{{Block: 1, Instrs: 1, Work: 1}, {Block: 2, Instrs: 1, Work: 1}}
	var buf bytes.Buffer
	if err := WriteAll(&buf, recs); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-10]
	fr, err := NewFileReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	var r Record
	n := 0
	for fr.Next(&r) {
		n++
	}
	if fr.Err() == nil {
		t.Fatal("truncation not reported")
	}
	if n != 1 {
		t.Fatalf("read %d records from truncated file", n)
	}
}

func TestFileEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d records", len(got))
	}
}

func TestFileRecordEncodingProperty(t *testing.T) {
	f := func(block uint64, pc, instrs, work uint32, dep bool) bool {
		in := Record{PC: pc, Block: block, Dep: dep, Instrs: instrs, Work: work}
		var buf [fileRecSize]byte
		encodeRecord(&buf, &in)
		var out Record
		decodeRecord(&buf, &out)
		return in == out
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCaptureBounded(t *testing.T) {
	sg := &SliceGenerator{Records: []Record{{Block: 1}, {Block: 2}, {Block: 3}}}
	got := Capture(sg, 2)
	if len(got) != 2 {
		t.Fatalf("captured %d", len(got))
	}
	got = Capture(sg, 100)
	if len(got) != 1 {
		t.Fatalf("tail capture %d", len(got))
	}
}
