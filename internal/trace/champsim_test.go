package trace

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"strings"
	"testing"

	"stms/internal/mem"
)

// csInstr builds one 64-byte ChampSim instruction record.
type csInstr struct {
	ip       uint64
	isBranch uint8
	taken    uint8
	destRegs [2]uint8
	srcRegs  [4]uint8
	destMem  [2]uint64
	srcMem   [4]uint64
}

func (i csInstr) encode() []byte {
	b := make([]byte, champSimRecSize)
	binary.LittleEndian.PutUint64(b[0:], i.ip)
	b[8], b[9] = i.isBranch, i.taken
	b[10], b[11] = i.destRegs[0], i.destRegs[1]
	copy(b[12:16], i.srcRegs[:])
	for k, a := range i.destMem {
		binary.LittleEndian.PutUint64(b[16+8*k:], a)
	}
	for k, a := range i.srcMem {
		binary.LittleEndian.PutUint64(b[32+8*k:], a)
	}
	return b
}

func csTrace(instrs ...csInstr) []byte {
	var buf bytes.Buffer
	for _, i := range instrs {
		buf.Write(i.encode())
	}
	return buf.Bytes()
}

func TestChampSimImport(t *testing.T) {
	data := csTrace(
		// Two compute instructions, then a load of two sibling addresses.
		csInstr{ip: 0x1000},
		csInstr{ip: 0x1004, isBranch: 1, taken: 1},
		csInstr{ip: 0x1008, destRegs: [2]uint8{7, 0}, srcMem: [4]uint64{0x4000, 0x4040}},
		// A dependent load: source register 7 was the previous load's dest.
		csInstr{ip: 0x100c, srcRegs: [4]uint8{7}, srcMem: [4]uint64{0x8000}},
		// An independent load after one compute instruction.
		csInstr{ip: 0x1010},
		csInstr{ip: 0x1014, srcRegs: [4]uint8{3}, srcMem: [4]uint64{0xc080}},
	)
	rd, err := NewChampSimReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var recs []Record
	var r Record
	for rd.Next(&r) {
		recs = append(recs, r)
	}
	if err := rd.Err(); err != nil {
		t.Fatal(err)
	}
	if rd.Instructions() != 6 || rd.Records() != 4 {
		t.Fatalf("consumed %d instrs -> %d records, want 6 -> 4", rd.Instructions(), rd.Records())
	}
	wantBlocks := []uint64{0x4000 >> mem.BlockShift, 0x4040 >> mem.BlockShift, 0x8000 >> mem.BlockShift, 0xc080 >> mem.BlockShift}
	wantInstrs := []uint32{3, 1, 1, 2} // gap to first load; sibling floor; back-to-back; one compute between
	wantDeps := []bool{false, false, true, false}
	for i, rec := range recs {
		if rec.Block != wantBlocks[i] {
			t.Errorf("record %d: block %#x, want %#x", i, rec.Block, wantBlocks[i])
		}
		if rec.Instrs != wantInstrs[i] {
			t.Errorf("record %d: instrs %d, want %d", i, rec.Instrs, wantInstrs[i])
		}
		if rec.Dep != wantDeps[i] {
			t.Errorf("record %d: dep %v, want %v", i, rec.Dep, wantDeps[i])
		}
	}
}

func TestChampSimGzip(t *testing.T) {
	data := csTrace(csInstr{ip: 0x2000, srcMem: [4]uint64{0x1_0000}})
	var gz bytes.Buffer
	w := gzip.NewWriter(&gz)
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rd, err := NewChampSimReader(bytes.NewReader(gz.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var r Record
	if !rd.Next(&r) || r.Block != 0x1_0000>>mem.BlockShift {
		t.Fatalf("gzip decode: got %+v, err %v", r, rd.Err())
	}
	if rd.Next(&r) || rd.Err() != nil {
		t.Fatalf("want clean EOF, got err %v", rd.Err())
	}
}

func TestChampSimRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"zero-ip", csTrace(csInstr{srcMem: [4]uint64{0x40}}), "zero instruction pointer"},
		{"bad-flag", csTrace(csInstr{ip: 1, isBranch: 2}), "outside {0,1}"},
		{"taken-not-branch", csTrace(csInstr{ip: 1, taken: 1}), "branch_taken without is_branch"},
		{"truncated-tail", csTrace(csInstr{ip: 1}, csInstr{ip: 2})[:96], "truncated"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rd, err := NewChampSimReader(bytes.NewReader(tc.data))
			if err != nil {
				t.Fatal(err)
			}
			var r Record
			for rd.Next(&r) {
			}
			if err := rd.Err(); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

// TestChampSimThroughFrames drives the importer through the pipelined
// frame path the simulator uses: a malformed tail must surface through
// FrameSource.Err, never as a clean end of stream.
func TestChampSimThroughFrames(t *testing.T) {
	var instrs []csInstr
	for i := 0; i < 3000; i++ {
		instrs = append(instrs, csInstr{ip: 0x1000 + uint64(4*i), srcMem: [4]uint64{uint64(0x4000 + 64*i)}})
	}
	data := csTrace(instrs...)
	t.Run("clean", func(t *testing.T) {
		rd, err := NewChampSimReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		src := PipelinedFrames(rd)
		defer src.Close()
		total := 0
		for f := src.NextFrame(); f != nil; f = src.NextFrame() {
			total += f.Len()
		}
		if err := src.Err(); err != nil {
			t.Fatal(err)
		}
		if total != len(instrs) {
			t.Fatalf("frames delivered %d records, want %d", total, len(instrs))
		}
	})
	t.Run("truncated", func(t *testing.T) {
		rd, err := NewChampSimReader(bytes.NewReader(data[:len(data)-13]))
		if err != nil {
			t.Fatal(err)
		}
		src := PipelinedFrames(rd)
		defer src.Close()
		for f := src.NextFrame(); f != nil; f = src.NextFrame() {
		}
		if err := src.Err(); err == nil || !strings.Contains(err.Error(), "truncated") {
			t.Fatalf("truncation must surface through FrameSource.Err, got %v", err)
		}
	})
}
