package trace

// Trace file I/O: a compact binary format so users can capture generated
// traces (or convert their own application miss traces) and replay them
// through the simulator. cmd/stms-trace writes these; any Generator
// consumer accepts a Reader.
//
// Format: a 16-byte header ("STMSTRC1", record count as little-endian
// uint64) followed by fixed 24-byte records:
//
//	offset size field
//	0      8    block number
//	8      4    PC
//	12     4    instruction count
//	16     4    dispatch-cycle cost
//	20     1    flags (bit 0: Dep)
//	21     3    reserved (zero)

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

var fileMagic = [8]byte{'S', 'T', 'M', 'S', 'T', 'R', 'C', '1'}

const fileRecSize = 24

// Writer streams records to an io.Writer in the trace file format. Close
// must be called to flush; the record count is carried in the header, so
// the destination must be positioned at the start when NewWriter runs and
// Count written via Finalize on a seekable target — for pure streams, use
// WriteAll.
type Writer struct {
	w     *bufio.Writer
	count uint64
	err   error
}

// WriteAll writes a complete trace (header + records) to w.
func WriteAll(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	var hdr [16]byte
	copy(hdr[:8], fileMagic[:])
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(recs)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [fileRecSize]byte
	for i := range recs {
		encodeRecord(&buf, &recs[i])
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func encodeRecord(buf *[fileRecSize]byte, r *Record) {
	binary.LittleEndian.PutUint64(buf[0:], r.Block)
	binary.LittleEndian.PutUint32(buf[8:], r.PC)
	binary.LittleEndian.PutUint32(buf[12:], r.Instrs)
	binary.LittleEndian.PutUint32(buf[16:], r.Work)
	flags := byte(0)
	if r.Dep {
		flags |= 1
	}
	buf[20] = flags
	buf[21], buf[22], buf[23] = 0, 0, 0
}

func decodeRecord(buf *[fileRecSize]byte, r *Record) {
	r.Block = binary.LittleEndian.Uint64(buf[0:])
	r.PC = binary.LittleEndian.Uint32(buf[8:])
	r.Instrs = binary.LittleEndian.Uint32(buf[12:])
	r.Work = binary.LittleEndian.Uint32(buf[16:])
	r.Dep = buf[20]&1 != 0
}

// FileReader streams records from a trace file; it implements Generator.
type FileReader struct {
	r         *bufio.Reader
	remaining uint64
	err       error
}

// NewFileReader validates the header and prepares streaming reads.
func NewFileReader(r io.Reader) (*FileReader, error) {
	br := bufio.NewReader(r)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if [8]byte(hdr[:8]) != fileMagic {
		return nil, fmt.Errorf("trace: bad magic %q", hdr[:8])
	}
	n := binary.LittleEndian.Uint64(hdr[8:])
	return &FileReader{r: br, remaining: n}, nil
}

// Remaining returns how many records are left.
func (f *FileReader) Remaining() uint64 { return f.remaining }

// Err returns the first I/O error encountered, if any.
func (f *FileReader) Err() error { return f.err }

// Next implements Generator.
func (f *FileReader) Next(r *Record) bool {
	if f.remaining == 0 || f.err != nil {
		return false
	}
	var buf [fileRecSize]byte
	if _, err := io.ReadFull(f.r, buf[:]); err != nil {
		f.err = fmt.Errorf("trace: reading record: %w", err)
		return false
	}
	decodeRecord(&buf, r)
	f.remaining--
	return true
}

// ReadAll loads an entire trace file into memory.
func ReadAll(r io.Reader) ([]Record, error) {
	fr, err := NewFileReader(r)
	if err != nil {
		return nil, err
	}
	out := make([]Record, 0, fr.remaining)
	var rec Record
	for fr.Next(&rec) {
		out = append(out, rec)
	}
	if fr.Err() != nil {
		return nil, fr.Err()
	}
	return out, nil
}

// Capture materializes n records from gen (utility for writing trace
// files from the synthetic generators).
func Capture(gen Generator, n int) []Record {
	out := make([]Record, 0, n)
	var rec Record
	for len(out) < n && gen.Next(&rec) {
		out = append(out, rec)
	}
	return out
}
