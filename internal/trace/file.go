package trace

// Trace file I/O. Two on-disk formats share this file:
//
//   - Flat record traces ("STMSTRC1"): a 16-byte header (magic, record
//     count as little-endian uint64) followed by fixed 24-byte records —
//     the interchange format for converting an application's own miss
//     trace:
//
//	offset size field
//	0      8    block number
//	8      4    PC
//	12     4    instruction count
//	16     4    dispatch-cycle cost
//	20     1    flags (bit 0: Dep)
//	21     3    reserved (zero)
//
//   - Columnar tapes ("STMSTAPE"): the versioned serialization of a
//     trace.Tape — magic, format version, (seed, cores, per-core
//     budget), the scaled workload spec as length-prefixed JSON, the
//     scenario provenance (version 2: length-prefixed scenario JSON,
//     zero-length for plain spec tapes, plus the phase-mark list), then
//     each core's encoded columns with u64 length prefixes. Tapes carry
//     per-core segments natively (no round-robin re-dealing on replay)
//     and are typically ~2.5x smaller than the flat format. Version 1
//     files (no scenario section) remain readable.
//
// cmd/stms-trace writes both; DetectFormat dispatches a reader on the
// magic. Any Generator consumer accepts a FileReader or a tape Cursor.

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

var (
	fileMagic = [8]byte{'S', 'T', 'M', 'S', 'T', 'R', 'C', '1'}
	tapeMagic = [8]byte{'S', 'T', 'M', 'S', 'T', 'A', 'P', 'E'}
)

// tapeVersion is the current tape serialization version. Version 2
// added the scenario provenance section (scenario JSON + phase marks);
// readers accept version 1 files, which simply have no scenario.
// Readers reject versions they do not understand.
const tapeVersion = 2

const fileRecSize = 24

// Format identifies an on-disk trace flavour.
type Format int

// Trace file formats.
const (
	FormatUnknown Format = iota
	FormatRecords        // flat fixed-size records ("STMSTRC1")
	FormatTape           // columnar tape ("STMSTAPE")
)

// DetectFormat classifies a trace file by its first 8 bytes.
func DetectFormat(magic [8]byte) Format {
	switch magic {
	case fileMagic:
		return FormatRecords
	case tapeMagic:
		return FormatTape
	}
	return FormatUnknown
}

// Writer streams records to an io.Writer in the trace file format. Close
// must be called to flush; the record count is carried in the header, so
// the destination must be positioned at the start when NewWriter runs and
// Count written via Finalize on a seekable target — for pure streams, use
// WriteAll.
type Writer struct {
	w     *bufio.Writer
	count uint64
	err   error
}

// WriteAll writes a complete trace (header + records) to w.
func WriteAll(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	var hdr [16]byte
	copy(hdr[:8], fileMagic[:])
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(recs)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [fileRecSize]byte
	for i := range recs {
		encodeRecord(&buf, &recs[i])
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func encodeRecord(buf *[fileRecSize]byte, r *Record) {
	binary.LittleEndian.PutUint64(buf[0:], r.Block)
	binary.LittleEndian.PutUint32(buf[8:], r.PC)
	binary.LittleEndian.PutUint32(buf[12:], r.Instrs)
	binary.LittleEndian.PutUint32(buf[16:], r.Work)
	flags := byte(0)
	if r.Dep {
		flags |= 1
	}
	buf[20] = flags
	buf[21], buf[22], buf[23] = 0, 0, 0
}

func decodeRecord(buf *[fileRecSize]byte, r *Record) {
	r.Block = binary.LittleEndian.Uint64(buf[0:])
	r.PC = binary.LittleEndian.Uint32(buf[8:])
	r.Instrs = binary.LittleEndian.Uint32(buf[12:])
	r.Work = binary.LittleEndian.Uint32(buf[16:])
	r.Dep = buf[20]&1 != 0
}

// FileReader streams records from a trace file; it implements Generator
// and the batched FrameReader fast path.
type FileReader struct {
	r         *bufio.Reader
	remaining uint64
	err       error
	buf       []byte // reusable frame-sized read buffer
}

// NewFileReader validates the header and prepares streaming reads.
func NewFileReader(r io.Reader) (*FileReader, error) {
	br := bufio.NewReader(r)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if [8]byte(hdr[:8]) != fileMagic {
		return nil, fmt.Errorf("trace: bad magic %q", hdr[:8])
	}
	n := binary.LittleEndian.Uint64(hdr[8:])
	return &FileReader{r: br, remaining: n}, nil
}

// Remaining returns how many records are left.
func (f *FileReader) Remaining() uint64 { return f.remaining }

// Err returns the first I/O error encountered, if any.
func (f *FileReader) Err() error { return f.err }

// Next implements Generator.
func (f *FileReader) Next(r *Record) bool {
	if f.remaining == 0 || f.err != nil {
		return false
	}
	var buf [fileRecSize]byte
	if _, err := io.ReadFull(f.r, buf[:]); err != nil {
		f.err = fmt.Errorf("trace: reading record: %w", err)
		return false
	}
	decodeRecord(&buf, r)
	f.remaining--
	return true
}

// ReadFrame implements FrameReader: one bulk read covers the whole
// frame, then the fixed-size records decode straight into the columns.
// On a truncated file the complete leading records are still delivered
// — exactly the records a Next loop would have produced before failing
// — and the error is retained for Err.
func (f *FileReader) ReadFrame(fr *Frame) int {
	if f.remaining == 0 || f.err != nil {
		fr.n = 0
		return 0
	}
	want := uint64(fr.cap)
	if f.remaining < want {
		want = f.remaining
	}
	need := int(want) * fileRecSize
	if cap(f.buf) < need {
		f.buf = make([]byte, need)
	}
	buf := f.buf[:need]
	read, err := io.ReadFull(f.r, buf)
	n := read / fileRecSize
	if err != nil {
		f.err = fmt.Errorf("trace: reading record: %w", err)
	}
	for i := 0; i < n; i++ {
		b := buf[i*fileRecSize:]
		fr.Block[i] = binary.LittleEndian.Uint64(b[0:])
		fr.PC[i] = binary.LittleEndian.Uint32(b[8:])
		fr.Instrs[i] = binary.LittleEndian.Uint32(b[12:])
		fr.Work[i] = binary.LittleEndian.Uint32(b[16:])
		fr.Dep[i] = b[20]&1 != 0
	}
	f.remaining -= uint64(n)
	fr.n = n
	return n
}

// ReadAll loads an entire trace file into memory.
func ReadAll(r io.Reader) ([]Record, error) {
	fr, err := NewFileReader(r)
	if err != nil {
		return nil, err
	}
	out := make([]Record, 0, fr.remaining)
	var rec Record
	for fr.Next(&rec) {
		out = append(out, rec)
	}
	if fr.Err() != nil {
		return nil, fr.Err()
	}
	return out, nil
}

// Capture materializes n records from gen (utility for writing trace
// files from the synthetic generators).
func Capture(gen Generator, n int) []Record {
	out := make([]Record, 0, n)
	var rec Record
	for len(out) < n && gen.Next(&rec) {
		out = append(out, rec)
	}
	return out
}

// WriteTape serializes t to w in the versioned columnar tape format.
// ReadTape recovers a tape that replays identically (lossless).
func WriteTape(w io.Writer, t *Tape) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(tapeMagic[:]); err != nil {
		return err
	}
	specJSON, err := json.Marshal(t.spec)
	if err != nil {
		return fmt.Errorf("trace: encoding tape spec: %w", err)
	}
	writeU64 := func(v uint64) { _ = binary.Write(bw, binary.LittleEndian, v) }
	writeU64(tapeVersion)
	writeU64(t.seed)
	writeU64(uint64(len(t.cores)))
	writeU64(t.perCore)
	writeU64(uint64(len(specJSON)))
	if _, err := bw.Write(specJSON); err != nil {
		return err
	}
	var scnJSON []byte
	if t.scenario != nil {
		if scnJSON, err = json.Marshal(t.scenario); err != nil {
			return fmt.Errorf("trace: encoding tape scenario: %w", err)
		}
	}
	writeU64(uint64(len(scnJSON)))
	if _, err := bw.Write(scnJSON); err != nil {
		return err
	}
	writeU64(uint64(len(t.marks)))
	for _, m := range t.marks {
		writeU64(m.Start)
		writeU64(uint64(len(m.Name)))
		if _, err := bw.Write([]byte(m.Name)); err != nil {
			return err
		}
	}
	for i := range t.cores {
		c := &t.cores[i]
		writeU64(c.n)
		writeU64(uint64(len(c.data)))
		if _, err := bw.Write(c.data); err != nil {
			return err
		}
		writeU64(uint64(len(c.pairs)))
		for _, pair := range c.pairs {
			writeU64(pair)
		}
		writeU64(uint64(len(c.dep)))
		for _, word := range c.dep {
			writeU64(word)
		}
		writeU64(uint64(len(c.pcDict)))
		for _, pc := range c.pcDict {
			_ = binary.Write(bw, binary.LittleEndian, pc)
		}
		if c.pcIdx != nil {
			writeU64(1) // dictionary-indexed PC column follows
			writeU64(uint64(len(c.pcIdx)))
			if _, err := bw.Write(c.pcIdx); err != nil {
				return err
			}
		} else {
			writeU64(0) // raw PC column follows
			writeU64(uint64(len(c.pcRaw)))
			for _, pc := range c.pcRaw {
				_ = binary.Write(bw, binary.LittleEndian, pc)
			}
		}
	}
	return bw.Flush()
}

// tapeReader tracks the first error while decoding tape sections.
type tapeReader struct {
	r   *bufio.Reader
	err error
}

func (tr *tapeReader) u64() uint64 {
	var v uint64
	if tr.err == nil {
		tr.err = binary.Read(tr.r, binary.LittleEndian, &v)
	}
	return v
}

// length reads a section length and sanity-bounds it so a corrupt file
// cannot provoke huge allocations.
func (tr *tapeReader) length(what string) int {
	return tr.sized(what, 0, 1<<34)
}

// sized reads a section length and requires lo <= n <= hi; out-of-band
// lengths become errors (and a zero length) before any allocation.
func (tr *tapeReader) sized(what string, lo, hi uint64) int {
	n := tr.u64()
	if tr.err == nil && (n < lo || n > hi) {
		tr.err = fmt.Errorf("trace: tape %s length %d outside [%d, %d]", what, n, lo, hi)
	}
	if tr.err != nil {
		return 0
	}
	return int(n)
}

// tapeChunk bounds how much memory any single declared section length
// can claim before its bytes actually arrive. Reads allocate in chunks
// of at most this size, so a tiny crafted file declaring a 16 GiB
// section costs one chunk and then fails on truncation — never a
// multi-gigabyte make() from untrusted input.
const tapeChunk = 1 << 20

func (tr *tapeReader) bytes(n int) []byte {
	if tr.err != nil || n == 0 {
		return nil
	}
	b := make([]byte, 0, min(n, tapeChunk))
	scratch := make([]byte, min(n, tapeChunk))
	for len(b) < n {
		c := min(n-len(b), tapeChunk)
		if _, err := io.ReadFull(tr.r, scratch[:c]); err != nil {
			tr.err = err
			return nil
		}
		b = append(b, scratch[:c]...)
	}
	return b
}

// u64s reads n little-endian uint64s with the same chunked-allocation
// discipline as bytes (and without binary.Read's per-element reflection).
func (tr *tapeReader) u64s(n int) []uint64 {
	if tr.err != nil || n == 0 {
		return nil
	}
	const wordsPerChunk = tapeChunk / 8
	out := make([]uint64, 0, min(n, wordsPerChunk))
	var buf [8 << 10]byte
	for len(out) < n {
		c := min(n-len(out), len(buf)/8)
		if _, err := io.ReadFull(tr.r, buf[:c*8]); err != nil {
			tr.err = err
			return nil
		}
		for i := 0; i < c; i++ {
			out = append(out, binary.LittleEndian.Uint64(buf[i*8:]))
		}
	}
	return out
}

// u32s is u64s for uint32 columns.
func (tr *tapeReader) u32s(n int) []uint32 {
	if tr.err != nil || n == 0 {
		return nil
	}
	const wordsPerChunk = tapeChunk / 4
	out := make([]uint32, 0, min(n, wordsPerChunk))
	var buf [8 << 10]byte
	for len(out) < n {
		c := min(n-len(out), len(buf)/4)
		if _, err := io.ReadFull(tr.r, buf[:c*4]); err != nil {
			tr.err = err
			return nil
		}
		for i := 0; i < c; i++ {
			out = append(out, binary.LittleEndian.Uint32(buf[i*4:]))
		}
	}
	return out
}

// ReadTape deserializes a columnar tape written by WriteTape.
func ReadTape(r io.Reader) (*Tape, error) {
	tr := &tapeReader{r: bufio.NewReader(r)}
	var magic [8]byte
	if _, err := io.ReadFull(tr.r, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading tape header: %w", err)
	}
	if DetectFormat(magic) != FormatTape {
		return nil, fmt.Errorf("trace: bad tape magic %q", magic[:])
	}
	version := tr.u64()
	if tr.err == nil && (version < 1 || version > tapeVersion) {
		return nil, fmt.Errorf("trace: unsupported tape version %d (have %d)", version, tapeVersion)
	}
	t := &Tape{seed: tr.u64()}
	cores := tr.sized("core count", 0, math.MaxUint16)
	t.perCore = tr.u64()
	specJSON := tr.bytes(tr.sized("spec", 0, 1<<24))
	if tr.err == nil {
		if err := json.Unmarshal(specJSON, &t.spec); err != nil {
			return nil, fmt.Errorf("trace: decoding tape spec: %w", err)
		}
	}
	if version >= 2 {
		scnJSON := tr.bytes(tr.sized("scenario", 0, 1<<24))
		if tr.err == nil && len(scnJSON) > 0 {
			var scn Scenario
			if err := json.Unmarshal(scnJSON, &scn); err != nil {
				return nil, fmt.Errorf("trace: decoding tape scenario: %w", err)
			}
			if err := scn.Validate(); err != nil {
				return nil, fmt.Errorf("trace: tape scenario: %w", err)
			}
			t.scenario = &scn
		}
		nMarks := tr.sized("phase marks", 0, 1<<16)
		if nMarks > 0 {
			t.marks = make([]PhaseMark, nMarks)
			for i := range t.marks {
				t.marks[i].Start = tr.u64()
				t.marks[i].Name = string(tr.bytes(tr.sized("phase name", 0, 1<<10)))
			}
		}
	}
	if tr.err == nil && (cores <= 0 || cores > math.MaxUint16) {
		return nil, fmt.Errorf("trace: implausible tape core count %d", cores)
	}
	if tr.err != nil {
		return nil, fmt.Errorf("trace: reading tape: %w", tr.err)
	}
	t.cores = make([]tapeColumns, cores)
	for i := range t.cores {
		c := &t.cores[i]
		c.n = tr.u64()
		// Every column length is cross-checkable against the record
		// count before anything is allocated, so a corrupt or crafted
		// file produces an error, never a multi-gigabyte make() (which
		// would be a fatal OOM, not a recoverable failure).
		if tr.err == nil && c.n > 1<<34 {
			tr.err = fmt.Errorf("implausible record count %d", c.n)
		}
		c.data = tr.bytes(tr.sized("data", 0, 32*c.n+16))
		c.pairs = tr.u64s(tr.sized("cost pairs", 0, costEscape))
		depWords := (c.n + 63) / 64
		c.dep = tr.u64s(tr.sized("dep", depWords, depWords))
		c.pcDict = tr.u32s(tr.sized("pc dict", 0, 256))
		switch mode := tr.u64(); {
		case tr.err != nil:
		case mode == 1:
			c.pcIdx = tr.bytes(tr.sized("pc index", c.n, c.n))
			c.pcRaw = nil
		case mode == 0:
			c.pcDict = nil
			c.pcRaw = tr.u32s(tr.sized("pc raw", c.n, c.n))
		default:
			tr.err = fmt.Errorf("trace: unknown tape PC column mode %d", mode)
		}
		if tr.err == nil {
			tr.err = c.validate()
		}
		if tr.err != nil {
			return nil, fmt.Errorf("trace: reading tape core %d: %w", i, tr.err)
		}
		t.bytes += c.footprint()
	}
	return t, nil
}

// validate checks a decoded segment's internal consistency so replay
// cannot index out of bounds on a corrupt file.
func (c *tapeColumns) validate() error {
	switch {
	case c.pcIdx != nil && uint64(len(c.pcIdx)) != c.n:
		return fmt.Errorf("pc index column holds %d of %d records", len(c.pcIdx), c.n)
	case c.pcIdx == nil && uint64(len(c.pcRaw)) != c.n:
		return fmt.Errorf("pc raw column holds %d of %d records", len(c.pcRaw), c.n)
	case uint64(len(c.dep))*64 < c.n:
		return fmt.Errorf("dep bitset holds %d bits for %d records", len(c.dep)*64, c.n)
	}
	for _, idx := range c.pcIdx {
		if int(idx) >= len(c.pcDict) {
			return fmt.Errorf("pc index %d outside dictionary of %d", idx, len(c.pcDict))
		}
	}
	if len(c.pairs) > costEscape {
		return fmt.Errorf("cost-pair dictionary holds %d entries (max %d)", len(c.pairs), costEscape)
	}
	// The interleaved stream must decode exactly n records within bounds.
	off := 0
	for i := uint64(0); i < c.n; i++ {
		if _, off = readUvarintChecked(c.data, off); off < 0 {
			return fmt.Errorf("data stream corrupt in record %d's block delta", i)
		}
		if off >= len(c.data) {
			return fmt.Errorf("data stream truncated at record %d's cost byte", i)
		}
		pi := c.data[off]
		off++
		if pi == costEscape {
			if _, off = readUvarintChecked(c.data, off); off < 0 {
				return fmt.Errorf("data stream corrupt in record %d's instrs", i)
			}
			if _, off = readUvarintChecked(c.data, off); off < 0 {
				return fmt.Errorf("data stream corrupt in record %d's work", i)
			}
		} else if int(pi) >= len(c.pairs) {
			return fmt.Errorf("record %d cost index %d outside dictionary of %d", i, pi, len(c.pairs))
		}
	}
	if off != len(c.data) {
		return fmt.Errorf("data stream has %d trailing bytes", len(c.data)-off)
	}
	return nil
}

// readUvarintChecked is readUvarint with bounds checking for validation;
// it returns off = -1 on truncation or overlong encodings.
func readUvarintChecked(b []byte, off int) (uint64, int) {
	var v uint64
	for shift := uint(0); shift < 70; shift += 7 {
		if off >= len(b) {
			return 0, -1
		}
		c := b[off]
		off++
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v, off
		}
	}
	return 0, -1
}
