package trace

// Columnar trace tapes: a structure-of-arrays materialization of one
// bounded multi-core trace. A Tape is built once per
// (spec, seed, cores, records-per-core) identity — per-core segments
// generate in parallel, since generation is a pure per-core function —
// and then replayed any number of times through zero-allocation Cursors.
// Replay is a sequential array walk (varint decode + column loads), an
// order of magnitude cheaper than re-running the generator state machine
// and its RNG, and every consumer of the same tape observes literally
// identical records: the lab's run matrix materializes each workload
// once and shares it across every variant cell.
//
// Column layout, per core:
//
//   - data: one interleaved byte stream per record — the block number as
//     a zigzag-varint delta against the previous block (scans collapse
//     to one byte; dataset hops to a few), then one (Instrs, Work) cost
//     byte: an index into a per-core pair dictionary, or the 0xFF
//     escape followed by both values as uvarints. Memory records — the
//     bulk of every workload — share a single constant cost pair, so
//     their whole cost decode is one table load;
//   - PC: a per-core dictionary (u8 indices) — generators emit a handful
//     of static PCs — with a raw u32 column as overflow fallback;
//   - Dep: a bitset, one bit per record.

import (
	"fmt"
	"sync"
)

// costEscape in the cost byte announces inline uvarint Instrs and Work
// instead of a dictionary pair; the pair dictionary holds at most 255
// entries so the escape value is unambiguous.
const costEscape = 0xFF

// tapeColumns is one core's encoded record segment.
type tapeColumns struct {
	n      uint64   // records in this segment
	data   []byte   // interleaved block-delta varints and cost bytes
	pairs  []uint64 // cost-pair dictionary: Instrs<<32 | Work
	pcDict []uint32 // PC dictionary (dict encoding)
	pcIdx  []uint8  // per-record dictionary index; nil if overflowed
	pcRaw  []uint32 // per-record raw PCs; nil unless dictionary overflowed
	dep    []uint64 // dependence bitset
}

// Tape is an immutable columnar materialization of one bounded trace:
// cores × perCore records of the scaled spec — or scaled scenario — at
// the given seed. Safe for concurrent replay (Cursors share the tape
// read-only).
type Tape struct {
	spec    Spec // scaled spec the records were generated from
	seed    uint64
	perCore uint64
	cores   []tapeColumns
	bytes   int64

	// Scenario provenance: nil/empty for plain spec tapes. The spec
	// field holds the scenario's EffectiveSpec; marks locate phase
	// starts so replay windows statistics exactly as live generation.
	scenario *Scenario
	marks    []PhaseMark
}

// NewTape materializes perCore records for each of cores generators of
// the (already scaled) spec at seed. Per-core segments are generated
// concurrently; the result is deterministic and identical to consuming
// NewGenerator(NewLibrary(spec, seed), core, seed) directly.
func NewTape(spec Spec, seed uint64, cores int, perCore uint64) *Tape {
	if cores <= 0 {
		panic(fmt.Sprintf("trace: tape needs cores > 0, got %d", cores))
	}
	lib := NewLibrary(spec, seed)
	t := &Tape{
		spec:    spec,
		seed:    seed,
		perCore: perCore,
		cores:   make([]tapeColumns, cores),
	}
	// Generators are constructed sequentially (iteration-stream priming
	// mutates the library, in ascending core order); the encode loops
	// then run in parallel over disjoint per-core state.
	gens := make([]Generator, cores)
	for c := range gens {
		gens[c] = NewGenerator(lib, c, seed)
	}
	t.encode(gens)
	return t
}

// NewScenarioTape materializes perCore records for each of cores of the
// (already scaled) scenario at seed. Phase boundaries are recorded as
// marks; replaying the tape — including through the on-disk STMSTAPE
// format — is bit-identical to live scenario generation. Invalid
// scenarios panic, like invalid specs in NewTape; the lab converts
// panics to cell errors.
func NewScenarioTape(scn Scenario, seed uint64, cores int, perCore uint64) *Tape {
	if cores <= 0 {
		panic(fmt.Sprintf("trace: tape needs cores > 0, got %d", cores))
	}
	gens, marks, err := scn.Generators(seed, cores, perCore)
	if err != nil {
		panic(err)
	}
	t := &Tape{
		spec:     scn.EffectiveSpec(cores, perCore),
		seed:     seed,
		perCore:  perCore,
		cores:    make([]tapeColumns, cores),
		scenario: &scn,
		marks:    marks,
	}
	t.encode(gens)
	return t
}

// encode drains the per-core generators into columns concurrently (the
// generators' mutable state is disjoint per core by construction).
func (t *Tape) encode(gens []Generator) {
	var wg sync.WaitGroup
	for c := range gens {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			t.cores[c] = encodeSegment(gens[c], t.perCore)
		}(c)
	}
	wg.Wait()
	for i := range t.cores {
		t.bytes += t.cores[i].footprint()
	}
}

// encodeSegment drains up to perCore records from gen into columns.
func encodeSegment(gen Generator, perCore uint64) tapeColumns {
	col := tapeColumns{
		data:  make([]byte, 0, perCore*4),
		pcIdx: make([]uint8, 0, perCore),
		dep:   make([]uint64, (perCore+63)/64),
	}
	dict := make(map[uint32]int)
	pairDict := make(map[uint64]int)
	var prev uint64
	var rec Record
	for col.n < perCore && gen.Next(&rec) {
		col.data = appendUvarint(col.data, zigzag(int64(rec.Block-prev)))
		prev = rec.Block
		pair := uint64(rec.Instrs)<<32 | uint64(rec.Work)
		if pi, ok := pairDict[pair]; ok {
			col.data = append(col.data, uint8(pi))
		} else if len(col.pairs) < costEscape {
			pairDict[pair] = len(col.pairs)
			col.data = append(col.data, uint8(len(col.pairs)))
			col.pairs = append(col.pairs, pair)
		} else {
			// Rare cost pair past the dictionary capacity (jittered gap
			// records): escape to inline values.
			col.data = append(col.data, costEscape)
			col.data = appendUvarint(col.data, uint64(rec.Instrs))
			col.data = appendUvarint(col.data, uint64(rec.Work))
		}
		if col.pcIdx != nil {
			if idx, ok := dict[rec.PC]; ok {
				col.pcIdx = append(col.pcIdx, uint8(idx))
			} else if len(col.pcDict) < 256 {
				dict[rec.PC] = len(col.pcDict)
				col.pcIdx = append(col.pcIdx, uint8(len(col.pcDict)))
				col.pcDict = append(col.pcDict, rec.PC)
			} else {
				// Dictionary overflow (custom workloads with huge PC
				// sets): fall back to a raw column, rebuilt from the
				// dictionary-encoded prefix.
				col.pcRaw = make([]uint32, col.n, perCore)
				for i, di := range col.pcIdx {
					col.pcRaw[i] = col.pcDict[di]
				}
				col.pcRaw = append(col.pcRaw, rec.PC)
				col.pcIdx, col.pcDict = nil, nil
			}
		} else {
			col.pcRaw = append(col.pcRaw, rec.PC)
		}
		if rec.Dep {
			col.dep[col.n>>6] |= 1 << (col.n & 63)
		}
		col.n++
	}
	return col
}

func (c *tapeColumns) footprint() int64 {
	return int64(len(c.data)) + int64(len(c.pairs))*8 +
		int64(len(c.pcDict))*4 + int64(len(c.pcIdx)) +
		int64(len(c.pcRaw))*4 + int64(len(c.dep))*8
}

// Spec returns the (scaled) workload spec the tape was generated from;
// for scenario tapes, the scenario's EffectiveSpec.
func (t *Tape) Spec() Spec { return t.spec }

// Scenario returns the scaled scenario the tape materializes, or nil
// for plain spec tapes.
func (t *Tape) Scenario() *Scenario { return t.scenario }

// Marks returns the tape's phase-start offsets (per core), nil for
// plain spec tapes and single-phase scenarios. The slice is shared;
// callers must not mutate it.
func (t *Tape) Marks() []PhaseMark { return t.marks }

// Seed returns the trace seed.
func (t *Tape) Seed() uint64 { return t.seed }

// Cores returns the number of per-core segments.
func (t *Tape) Cores() int { return len(t.cores) }

// PerCore returns the record budget each segment was materialized with.
// Segments from never-dry generators hold exactly this many records.
func (t *Tape) PerCore() uint64 { return t.perCore }

// Len returns the number of records actually held for core.
func (t *Tape) Len(core int) uint64 { return t.cores[core].n }

// Bytes returns the approximate in-memory footprint of the columns, for
// cache accounting.
func (t *Tape) Bytes() int64 { return t.bytes }

// Cursor returns a new replay cursor over core's segment, positioned at
// the first record. Cursors are independent; Next allocates nothing.
func (t *Tape) Cursor(core int) *Cursor {
	return t.CursorN(core, t.cores[core].n)
}

// CursorN returns a cursor over core's segment that runs dry after at
// most n records — a built-in Limit, without the wrapper's extra
// interface hop on the simulator's per-record path.
func (t *Tape) CursorN(core int, n uint64) *Cursor {
	if core < 0 || core >= len(t.cores) {
		panic(fmt.Sprintf("trace: tape cursor for core %d of %d", core, len(t.cores)))
	}
	col := &t.cores[core]
	if n > col.n {
		n = col.n
	}
	return &Cursor{col: col, n: n}
}

// Cursor replays one core's tape segment; it implements Generator and
// runs dry after its record bound (Tape.Len(core), or the CursorN cap).
type Cursor struct {
	col  *tapeColumns
	n    uint64
	pos  uint64
	off  int // read position in col.data
	prev uint64
}

// Reset rewinds the cursor to the first record, keeping its bound.
func (cu *Cursor) Reset() { *cu = Cursor{col: cu.col, n: cu.n} }

// Remaining returns how many records are left.
func (cu *Cursor) Remaining() uint64 { return cu.n - cu.pos }

// Next implements Generator: it decodes the next record into r.
func (cu *Cursor) Next(r *Record) bool {
	col := cu.col
	if cu.pos >= cu.n {
		return false
	}
	d, off := readUvarint(col.data, cu.off)
	cu.prev += uint64(unzigzag(d))
	r.Block = cu.prev
	if pi := col.data[off]; pi != costEscape {
		pair := col.pairs[pi]
		r.Instrs = uint32(pair >> 32)
		r.Work = uint32(pair)
		off++
	} else {
		var v uint64
		v, off = readUvarint(col.data, off+1)
		r.Instrs = uint32(v)
		v, off = readUvarint(col.data, off)
		r.Work = uint32(v)
	}
	cu.off = off
	if col.pcIdx != nil {
		r.PC = col.pcDict[col.pcIdx[cu.pos]]
	} else {
		r.PC = col.pcRaw[cu.pos]
	}
	r.Dep = col.dep[cu.pos>>6]>>(cu.pos&63)&1 != 0
	cu.pos++
	return true
}

// ReadFrame implements FrameReader: it decodes the next run of records
// straight from the tape columns into the frame's columns in one pass —
// no per-record virtual call, column bases hoisted, and the dependence
// bitset expanded word-at-a-time. The sequence is exactly what Next
// would produce; Cursor state advances past the decoded run.
func (cu *Cursor) ReadFrame(f *Frame) int {
	col := cu.col
	n := uint64(f.cap)
	if rem := cu.n - cu.pos; rem < n {
		n = rem
	}
	if n == 0 {
		f.n = 0
		return 0
	}
	data := col.data
	pairs := col.pairs
	off := cu.off
	prev := cu.prev
	blocks := f.Block[:n]
	instrs := f.Instrs[:n]
	works := f.Work[:n]
	for i := range blocks {
		// Inline single-byte uvarint fast path (most deltas and all cost
		// bytes are one byte).
		var d uint64
		if c := data[off]; c < 0x80 {
			d = uint64(c)
			off++
		} else {
			d, off = readUvarint(data, off)
		}
		prev += uint64(unzigzag(d))
		blocks[i] = prev
		if pi := data[off]; pi != costEscape {
			pair := pairs[pi]
			instrs[i] = uint32(pair >> 32)
			works[i] = uint32(pair)
			off++
		} else {
			var v uint64
			v, off = readUvarint(data, off+1)
			instrs[i] = uint32(v)
			v, off = readUvarint(data, off)
			works[i] = uint32(v)
		}
	}
	pos := cu.pos
	pcs := f.PC[:n]
	if col.pcIdx != nil {
		dict := col.pcDict
		for i, di := range col.pcIdx[pos : pos+n] {
			pcs[i] = dict[di]
		}
	} else {
		copy(pcs, col.pcRaw[pos:pos+n])
	}
	deps := f.Dep[:n]
	for i := range deps {
		j := pos + uint64(i)
		deps[i] = col.dep[j>>6]>>(j&63)&1 != 0
	}
	cu.off = off
	cu.prev = prev
	cu.pos = pos + n
	f.n = int(n)
	return int(n)
}

// zigzag maps signed deltas onto small unsigned values.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// appendUvarint appends v in LEB128 (as encoding/binary does, without
// the fixed-size scratch buffer round trip).
func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

// readUvarint decodes the uvarint at b[off:], returning the value and
// the offset just past it. The single-byte case — most records — stays
// on a branchless fast path.
func readUvarint(b []byte, off int) (uint64, int) {
	c := b[off]
	if c < 0x80 {
		return uint64(c), off + 1
	}
	v := uint64(c & 0x7f)
	for shift := uint(7); ; shift += 7 {
		off++
		c = b[off]
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v, off + 1
		}
	}
}
