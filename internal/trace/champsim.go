package trace

// ChampSim trace importer: reads the fixed 64-byte instruction records
// ChampSim's tracer emits (optionally gzip-compressed) and converts the
// load stream into this package's Record model, making externally
// captured traces first-class workloads alongside the synthetic
// generators.
//
// One ChampSim record is one retired instruction:
//
//	offset size field
//	0      8    instruction pointer
//	8      1    is_branch (0 or 1)
//	9      1    branch_taken (0 or 1)
//	10     2    destination registers
//	12     4    source registers
//	16     16   destination memory addresses (2 × u64, 0 = unused)
//	32     32   source memory addresses (4 × u64, 0 = unused)
//
// Each non-zero source-memory address becomes one load Record: Block is
// the 64-byte block number, PC folds the 64-bit ip into the 32-bit PC
// space, Instrs counts the instructions retired since the previous load
// (saturating at 2^32-1 across extreme compute gaps), Work charges one
// dispatch cycle per instruction, and Dep marks loads whose source
// registers include a register written by the immediately preceding
// load instruction — the observable fragment of pointer chasing.
// Destination (store) addresses are skipped: the simulator is a
// load-driven MLP model, and stores enter it only through the dirty-fill
// writeback fraction.
//
// Validation is strict, the importer being an untrusted-input surface:
// flag bytes must be exactly 0 or 1, branch_taken requires is_branch, a
// zero instruction pointer is rejected, and a trailing partial record is
// an error, not a silent truncation. The reader implements Generator
// and ErrReporter, so a malformed tail surfaces through FrameSource.Err
// instead of presenting as a clean end of stream.

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"math"

	"stms/internal/mem"
)

// champSimRecSize is the on-disk size of one ChampSim instruction.
const champSimRecSize = 64

// champSimSrcMem is how many source-memory slots each record carries.
const champSimSrcMem = 4

// ChampSimReader converts a ChampSim instruction trace into a load
// Record stream. It implements Generator and ErrReporter.
type ChampSimReader struct {
	r   *bufio.Reader
	err error

	// pending holds the loads decoded from the current instruction that
	// Next has not yet handed out (an instruction can carry up to four).
	pending [champSimSrcMem]Record
	npend   int
	ppos    int

	instrs   uint64 // instructions consumed so far
	lastEmit uint64 // instruction count at the previous emitted load
	records  uint64 // loads emitted

	// prevLoadDests are the destination registers of the most recent
	// load instruction, for the address-dependence approximation.
	prevLoadDests [2]uint8
	havePrevLoad  bool

	buf [champSimRecSize]byte
}

// NewChampSimReader wraps r, transparently decompressing gzip input
// (ChampSim traces normally travel as .trace.gz). The returned reader
// streams; it holds no more than one instruction of state.
func NewChampSimReader(r io.Reader) (*ChampSimReader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	if magic, err := br.Peek(2); err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("trace: champsim gzip: %w", err)
		}
		br = bufio.NewReaderSize(gz, 1<<16)
	}
	return &ChampSimReader{r: br}, nil
}

// Err returns the first validation or I/O error, nil after a clean EOF.
func (c *ChampSimReader) Err() error { return c.err }

// Instructions returns how many trace instructions have been consumed.
func (c *ChampSimReader) Instructions() uint64 { return c.instrs }

// Records returns how many load records have been emitted.
func (c *ChampSimReader) Records() uint64 { return c.records }

// Next implements Generator: it decodes instructions until one carries
// a load, then emits that load (and any siblings from the same
// instruction on subsequent calls).
func (c *ChampSimReader) Next(r *Record) bool {
	for {
		if c.ppos < c.npend {
			*r = c.pending[c.ppos]
			c.ppos++
			c.records++
			return true
		}
		if c.err != nil {
			return false
		}
		if !c.decodeInstr() {
			return false
		}
	}
}

// decodeInstr reads and validates one instruction, queueing its loads
// into pending. Returns false on EOF or error.
func (c *ChampSimReader) decodeInstr() bool {
	n, err := io.ReadFull(c.r, c.buf[:])
	if err == io.EOF {
		return false
	}
	if err != nil {
		c.err = fmt.Errorf("trace: champsim record %d: truncated (%d of %d bytes): %w",
			c.instrs, n, champSimRecSize, err)
		return false
	}
	b := &c.buf
	ip := leU64(b[0:])
	isBranch, taken := b[8], b[9]
	switch {
	case ip == 0:
		c.err = fmt.Errorf("trace: champsim record %d: zero instruction pointer", c.instrs)
		return false
	case isBranch > 1 || taken > 1:
		c.err = fmt.Errorf("trace: champsim record %d: flag bytes %d/%d outside {0,1}", c.instrs, isBranch, taken)
		return false
	case taken == 1 && isBranch == 0:
		c.err = fmt.Errorf("trace: champsim record %d: branch_taken without is_branch", c.instrs)
		return false
	}
	c.instrs++

	// Dep: does this instruction read a register the previous load wrote?
	dep := false
	if c.havePrevLoad {
		for i := 0; i < 4 && !dep; i++ {
			src := b[12+i]
			if src != 0 && (src == c.prevLoadDests[0] || src == c.prevLoadDests[1]) {
				dep = true
			}
		}
	}

	c.npend, c.ppos = 0, 0
	for i := 0; i < champSimSrcMem; i++ {
		addr := leU64(b[32+8*i:])
		if addr == 0 {
			continue
		}
		gap := c.instrs - c.lastEmit
		if gap > math.MaxUint32 {
			gap = math.MaxUint32 // saturate across extreme compute gaps
		}
		if gap == 0 {
			gap = 1 // siblings from one instruction still carry work
		}
		c.pending[c.npend] = Record{
			Block:  addr >> mem.BlockShift,
			PC:     uint32(ip) ^ uint32(ip>>32),
			Instrs: uint32(gap),
			Work:   uint32(gap), // one dispatch cycle per instruction
			Dep:    dep && c.npend == 0,
		}
		c.npend++
		c.lastEmit = c.instrs
	}
	if c.npend > 0 {
		c.prevLoadDests = [2]uint8{b[10], b[11]}
		c.havePrevLoad = true
	}
	return true
}

func leU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
