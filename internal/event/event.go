// Package event implements the deterministic discrete-event engine that
// drives the timed simulator.
//
// All components (cores, DRAM controller, stream engines) schedule callbacks
// at absolute cycle times on a single engine. Events at equal times fire in
// scheduling order (a monotonically increasing sequence number breaks ties),
// which makes every simulation bit-for-bit reproducible.
//
// # Performance architecture
//
// The engine is built for the simulator's hot path: tens of millions of
// events per run, almost all scheduled a short distance into the future
// (DRAM transfer slots, hit latencies, core quanta — cycles to a few
// hundred cycles). Two structural choices follow:
//
//   - Event records are pooled. ScheduleH/AtH take a Handler interface plus
//     a small typed payload (kind + two uint64s) instead of a closure, so a
//     steady-state simulation performs zero allocations per event. The
//     closure-based Schedule/At remain for cold paths and tests; they reuse
//     the same pooled records (only the caller's closure itself allocates).
//   - The priority queue is a hierarchical calendar queue: a
//     1024-cycle timing wheel of FIFO buckets (with an occupancy bitmap for
//     constant-time next-event scans) absorbs the short delays, and a
//     binary min-heap holds the far-future overflow. Events migrate from
//     the heap into the wheel as time advances, preserving exact
//     (time, sequence) firing order — the engine is bit-for-bit
//     order-identical to a single global heap.
//
// Event records are owned by the engine: they are recycled onto an internal
// free list immediately before the handler runs, so handlers never see or
// retain them. Handlers receive the fire time and the payload by value.
package event

import "math/bits"

// Handler consumes a fired event or a completion callback. Implementations
// dispatch on kind (caller-defined) and receive the payload words a and b
// exactly as scheduled. The same interface doubles as the completion
// callback type for components that deliver results through the engine
// (e.g. the DRAM controller), which lets a completion be scheduled without
// any intermediate closure.
type Handler interface {
	Handle(now uint64, kind uint8, a, b uint64)
}

// wheelBits sets the timing-wheel horizon: delays shorter than wheelSize
// cycles go straight into a bucket; longer ones wait in the overflow heap.
// 1024 covers every latency constant in the simulator (DRAM access = 180,
// core quantum = 256) with headroom.
const (
	wheelBits = 10
	wheelSize = 1 << wheelBits
	wheelMask = wheelSize - 1
)

// Event is a pooled scheduler record. It is internal to the engine's
// queues; external code interacts through Handler and the Schedule
// variants. (Exported so diagnostics and benchmarks can size it.)
type Event struct {
	when uint64
	seq  uint64
	h    Handler
	fn   func()
	kind uint8
	a, b uint64
	next *Event // bucket FIFO link / free-list link
}

// Engine is a single-threaded discrete-event scheduler. The zero value is
// not usable; call NewEngine.
type Engine struct {
	now  uint64
	seq  uint64
	n    int    // total pending events
	base uint64 // wheel start cycle; wheel covers [base, base+wheelSize)

	bucket   [wheelSize]bucket
	occupied [wheelSize / 64]uint64
	occWords uint16 // summary bitmap: bit w set iff occupied[w] != 0
	wheelN   int

	overflow []*Event // min-heap on (when, seq); all whens >= base+wheelSize

	free *Event // recycled records
}

type bucket struct {
	head, tail *Event
}

// NewEngine returns an empty engine at cycle 0.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time in cycles.
func (e *Engine) Now() uint64 { return e.now }

// Pending returns the number of scheduled, not-yet-fired events.
func (e *Engine) Pending() int { return e.n }

// get draws a pooled event record.
func (e *Engine) get() *Event {
	ev := e.free
	if ev == nil {
		return &Event{}
	}
	e.free = ev.next
	ev.next = nil
	return ev
}

// put recycles a record. Closures are cleared so the pool never pins
// their captures; handler references stay — handlers are long-lived
// simulator components (cores, controllers, the simulator itself) that
// outlive the engine anyway, and skipping the store keeps two GC write
// barriers off the per-event path.
func (e *Engine) put(ev *Event) {
	if ev.fn != nil {
		ev.fn = nil
	}
	ev.next = e.free
	e.free = ev
}

// Schedule arranges for fn to run delay cycles from now.
func (e *Engine) Schedule(delay uint64, fn func()) {
	e.At(e.now+delay, fn)
}

// At arranges for fn to run at absolute time when. Times in the past are
// clamped to the present: the event fires at Now() but after events already
// scheduled for Now().
func (e *Engine) At(when uint64, fn func()) {
	ev := e.get()
	ev.fn = fn
	e.insert(when, ev)
}

// ScheduleH arranges for h.Handle(firetime, kind, a, b) to run delay cycles
// from now. No allocation occurs: the event record comes from the engine's
// free list.
func (e *Engine) ScheduleH(delay uint64, h Handler, kind uint8, a, b uint64) {
	e.AtH(e.now+delay, h, kind, a, b)
}

// AtH is ScheduleH at an absolute time, with the same past-time clamping as
// At.
func (e *Engine) AtH(when uint64, h Handler, kind uint8, a, b uint64) {
	ev := e.get()
	ev.h = h
	ev.kind = kind
	ev.a = a
	ev.b = b
	e.insert(when, ev)
}

func (e *Engine) insert(when uint64, ev *Event) {
	if when < e.now {
		when = e.now
	}
	e.seq++
	ev.when = when
	ev.seq = e.seq
	e.n++
	if when < e.base+wheelSize {
		e.pushBucket(ev)
		return
	}
	e.heapPush(ev)
}

// pushBucket appends ev to its cycle's FIFO. Buckets hold exactly one
// distinct cycle at a time (the one in [base, base+wheelSize) congruent to
// the index), so FIFO order within a bucket is seq order.
func (e *Engine) pushBucket(ev *Event) {
	i := ev.when & wheelMask
	b := &e.bucket[i]
	if b.tail == nil {
		b.head = ev
		e.occupied[i>>6] |= 1 << (i & 63)
		e.occWords |= 1 << (i >> 6)
		e.wheelN++
	} else {
		b.tail.next = ev
	}
	b.tail = ev
}

// WheelHorizon is the number of cycles the timing wheel covers beyond
// the current base: AtHFront and exact HasPendingAt answers are limited
// to this window.
const WheelHorizon = wheelSize

// HasPendingAt reports whether any not-yet-fired event is scheduled for
// exactly time t. Exact (and O(1)) for t within the wheel horizon; for
// far-future times it conservatively reports true when anything waits in
// the overflow heap. Components use it to decide whether a state change
// at t can be represented by a plain timestamp comparison (no pending
// event can observe the difference) or needs a real event to preserve
// the engine's (time, seq) firing order.
func (e *Engine) HasPendingAt(t uint64) bool {
	if t >= e.base+wheelSize {
		return len(e.overflow) > 0
	}
	b := &e.bucket[t&wheelMask]
	return b.head != nil && b.head.when == t
}

// AtHFront schedules h.Handle(t, kind, a, b) to run at t ahead of every
// event currently pending for that cycle (a normal AtH lands behind
// them). It exists for components that elide an event and must later
// reinsert it at the sequence position the elided event would have had:
// valid only when every event now pending at t was scheduled after the
// elision point. t must be strictly in the future and within the wheel
// horizon; AtHFront reports false (scheduling nothing) otherwise.
func (e *Engine) AtHFront(t uint64, h Handler, kind uint8, a, b uint64) bool {
	if t <= e.now || t >= e.base+wheelSize {
		return false
	}
	ev := e.get()
	ev.h = h
	ev.kind = kind
	ev.a = a
	ev.b = b
	e.seq++
	ev.when = t
	ev.seq = e.seq
	e.n++
	i := t & wheelMask
	bkt := &e.bucket[i]
	if bkt.head == nil {
		bkt.tail = ev
		e.occupied[i>>6] |= 1 << (i & 63)
		e.occWords |= 1 << (i >> 6)
		e.wheelN++
	} else {
		ev.next = bkt.head
	}
	bkt.head = ev
	return true
}

// nextTime returns the fire time of the earliest pending event. Wheel
// events always precede overflow events (the overflow invariant keeps all
// heap whens at or beyond the wheel horizon).
func (e *Engine) nextTime() uint64 {
	if e.wheelN > 0 {
		start := e.base & wheelMask
		i := e.scanFrom(start)
		return e.base + ((i - start) & wheelMask)
	}
	return e.overflow[0].when
}

// scanFrom returns the first occupied bucket index at or (circularly)
// after start, using the two-level occupancy bitmap: the summary word
// locates the first non-empty 64-bucket group in two TrailingZeros
// instead of a word-by-word sweep. The caller guarantees at least one
// occupied bucket.
func (e *Engine) scanFrom(start uint64) uint64 {
	word := start >> 6
	if w := e.occupied[word] &^ ((1 << (start & 63)) - 1); w != 0 {
		return word<<6 + uint64(bits.TrailingZeros64(w))
	}
	// First summary bit circularly after word; a full wrap lands on word
	// itself again, this time unmasked.
	s := e.occWords &^ (1<<(word+1) - 1)
	if s == 0 {
		s = e.occWords
	}
	if s == 0 {
		panic("event: scanFrom on empty wheel")
	}
	word = uint64(bits.TrailingZeros16(s))
	return word<<6 + uint64(bits.TrailingZeros64(e.occupied[word]))
}

// advance moves the clock (and the wheel base) to t and migrates overflow
// events that have come within the wheel horizon. Migration pops the heap
// in (when, seq) order, and any event later scheduled for the same cycle
// gets a larger seq and lands behind it in the bucket FIFO, so global
// firing order is exactly (when, seq).
func (e *Engine) advance(t uint64) {
	e.base = t
	e.now = t
	horizon := t + wheelSize
	for len(e.overflow) > 0 && e.overflow[0].when < horizon {
		e.pushBucket(e.heapPop())
	}
}

// Step fires the earliest pending event and advances time to it.
// It reports whether an event was fired.
func (e *Engine) Step() bool {
	if e.n == 0 {
		return false
	}
	e.fireNext()
	return true
}

func (e *Engine) fireNext() {
	// Events cluster on the current cycle (completions scheduled for
	// "now", same-cycle cascades): if the present bucket is non-empty it
	// necessarily holds the earliest (time, seq) event, so the bitmap
	// scan and the advance test are skipped entirely.
	if b := &e.bucket[e.base&wheelMask]; b.head != nil {
		e.fireFrom(b, e.base&wheelMask)
		return
	}
	t := e.nextTime()
	if t != e.base {
		e.advance(t)
	}
	i := t & wheelMask
	e.fireFrom(&e.bucket[i], i)
}

// fireFrom pops and fires the head event of bucket b (index i), which
// the caller guarantees holds the earliest pending (time, seq).
func (e *Engine) fireFrom(b *bucket, i uint64) {
	ev := b.head
	b.head = ev.next
	if b.head == nil {
		b.tail = nil
		if e.occupied[i>>6] &^= 1 << (i & 63); e.occupied[i>>6] == 0 {
			e.occWords &^= 1 << (i >> 6)
		}
		e.wheelN--
	}
	e.n--
	// Copy out and recycle before firing: the handler may schedule new
	// events, which can immediately reuse this record.
	h, fn, kind, a, bb := ev.h, ev.fn, ev.kind, ev.a, ev.b
	e.put(ev)
	if fn != nil {
		fn()
		return
	}
	h.Handle(e.now, kind, a, bb)
}

// RunUntil fires events in order until the next event would be later than t
// (or no events remain), then advances time to t.
func (e *Engine) RunUntil(t uint64) {
	for e.n > 0 && e.nextTime() <= t {
		e.fireNext()
	}
	if e.now < t {
		e.advance(t)
	}
}

// Drain fires events until none remain or until the predicate stop returns
// true (checked between events). A nil stop drains everything.
func (e *Engine) Drain(stop func() bool) {
	for e.n > 0 {
		if stop != nil && stop() {
			return
		}
		e.fireNext()
	}
}

// DrainEvery is Drain with the predicate polled once per stride events
// instead of between every pair: the indirect call and its spilled
// registers stay off the firing loop. Cancellation latency rises to at
// most stride events — the simulator polls its context on the same
// order of granularity anyway.
func (e *Engine) DrainEvery(stride int, stop func() bool) {
	if stride < 1 || stop == nil {
		e.Drain(stop)
		return
	}
	for e.n > 0 {
		if stop() {
			return
		}
		for i := 0; i < stride && e.n > 0; i++ {
			e.fireNext()
		}
	}
}

// --- overflow min-heap on (when, seq) ---

func overflowLess(a, b *Event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

func (e *Engine) heapPush(ev *Event) {
	e.overflow = append(e.overflow, ev)
	i := len(e.overflow) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !overflowLess(e.overflow[i], e.overflow[parent]) {
			break
		}
		e.overflow[i], e.overflow[parent] = e.overflow[parent], e.overflow[i]
		i = parent
	}
}

func (e *Engine) heapPop() *Event {
	top := e.overflow[0]
	n := len(e.overflow) - 1
	e.overflow[0] = e.overflow[n]
	e.overflow[n] = nil
	e.overflow = e.overflow[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && overflowLess(e.overflow[l], e.overflow[smallest]) {
			smallest = l
		}
		if r < n && overflowLess(e.overflow[r], e.overflow[smallest]) {
			smallest = r
		}
		if smallest == i {
			return top
		}
		e.overflow[i], e.overflow[smallest] = e.overflow[smallest], e.overflow[i]
		i = smallest
	}
}
