// Package event implements the deterministic discrete-event engine that
// drives the timed simulator.
//
// All components (cores, DRAM controller, stream engines) schedule callbacks
// at absolute cycle times on a single engine. Events at equal times fire in
// scheduling order (a monotonically increasing sequence number breaks ties),
// which makes every simulation bit-for-bit reproducible.
package event

// Engine is a single-threaded discrete-event scheduler. The zero value is
// not usable; call NewEngine.
type Engine struct {
	now   uint64
	seq   uint64
	items []item
}

type item struct {
	when uint64
	seq  uint64
	fn   func()
}

// NewEngine returns an empty engine at cycle 0.
func NewEngine() *Engine {
	return &Engine{items: make([]item, 0, 1024)}
}

// Now returns the current simulation time in cycles.
func (e *Engine) Now() uint64 { return e.now }

// Pending returns the number of scheduled, not-yet-fired events.
func (e *Engine) Pending() int { return len(e.items) }

// Schedule arranges for fn to run delay cycles from now.
func (e *Engine) Schedule(delay uint64, fn func()) {
	e.At(e.now+delay, fn)
}

// At arranges for fn to run at absolute time when. Times in the past are
// clamped to the present: the event fires at Now() but after events already
// scheduled for Now().
func (e *Engine) At(when uint64, fn func()) {
	if when < e.now {
		when = e.now
	}
	e.seq++
	e.items = append(e.items, item{when: when, seq: e.seq, fn: fn})
	e.up(len(e.items) - 1)
}

// Step fires the earliest pending event and advances time to it.
// It reports whether an event was fired.
func (e *Engine) Step() bool {
	if len(e.items) == 0 {
		return false
	}
	top := e.items[0]
	n := len(e.items) - 1
	e.items[0] = e.items[n]
	e.items = e.items[:n]
	if n > 0 {
		e.down(0)
	}
	e.now = top.when
	top.fn()
	return true
}

// RunUntil fires events in order until the next event would be later than t
// (or no events remain), then advances time to t.
func (e *Engine) RunUntil(t uint64) {
	for len(e.items) > 0 && e.items[0].when <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// Drain fires events until none remain or until the predicate stop returns
// true (checked between events). A nil stop drains everything.
func (e *Engine) Drain(stop func() bool) {
	for len(e.items) > 0 {
		if stop != nil && stop() {
			return
		}
		e.Step()
	}
}

func (e *Engine) less(i, j int) bool {
	a, b := &e.items[i], &e.items[j]
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

func (e *Engine) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			break
		}
		e.items[i], e.items[parent] = e.items[parent], e.items[i]
		i = parent
	}
}

func (e *Engine) down(i int) {
	n := len(e.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && e.less(l, smallest) {
			smallest = l
		}
		if r < n && e.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		e.items[i], e.items[smallest] = e.items[smallest], e.items[i]
		i = smallest
	}
}
