package event

import (
	"math/rand"
	"testing"
)

// refEngine is the original binary-heap scheduler, kept verbatim as the
// ordering oracle for the calendar queue: any schedule must fire in exactly
// the same (time, sequence) order on both.
type refEngine struct {
	now   uint64
	seq   uint64
	items []refItem
}

type refItem struct {
	when uint64
	seq  uint64
	fn   func()
}

func newRefEngine() *refEngine { return &refEngine{items: make([]refItem, 0, 1024)} }

func (e *refEngine) Now() uint64  { return e.now }
func (e *refEngine) Pending() int { return len(e.items) }

func (e *refEngine) Schedule(delay uint64, fn func()) { e.At(e.now+delay, fn) }

func (e *refEngine) At(when uint64, fn func()) {
	if when < e.now {
		when = e.now
	}
	e.seq++
	e.items = append(e.items, refItem{when: when, seq: e.seq, fn: fn})
	e.up(len(e.items) - 1)
}

func (e *refEngine) Step() bool {
	if len(e.items) == 0 {
		return false
	}
	top := e.items[0]
	n := len(e.items) - 1
	e.items[0] = e.items[n]
	e.items = e.items[:n]
	if n > 0 {
		e.down(0)
	}
	e.now = top.when
	top.fn()
	return true
}

func (e *refEngine) RunUntil(t uint64) {
	for len(e.items) > 0 && e.items[0].when <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

func (e *refEngine) Drain(stop func() bool) {
	for len(e.items) > 0 {
		if stop != nil && stop() {
			return
		}
		e.Step()
	}
}

func (e *refEngine) less(i, j int) bool {
	a, b := &e.items[i], &e.items[j]
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

func (e *refEngine) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			break
		}
		e.items[i], e.items[parent] = e.items[parent], e.items[i]
		i = parent
	}
}

func (e *refEngine) down(i int) {
	n := len(e.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && e.less(l, smallest) {
			smallest = l
		}
		if r < n && e.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		e.items[i], e.items[smallest] = e.items[smallest], e.items[i]
		i = smallest
	}
}

// scheduler abstracts both engines for the property driver.
type scheduler interface {
	Now() uint64
	Pending() int
	Schedule(delay uint64, fn func())
	At(when uint64, fn func())
	Step() bool
	RunUntil(t uint64)
	Drain(stop func() bool)
}

// opTrace drives a scheduler through a reproducible random workload —
// short delays, same-cycle bursts, far-future overflow delays, past-time
// At calls, nested rescheduling — and records (id, fireTime) pairs.
func opTrace(s scheduler, seed int64, n int) []uint64 {
	rnd := rand.New(rand.NewSource(seed))
	var log []uint64
	id := uint64(0)
	var schedule func(depth int)
	schedule = func(depth int) {
		myID := id
		id++
		var when uint64
		switch rnd.Intn(10) {
		case 0: // same-cycle burst
			when = s.Now()
		case 1: // past time, must clamp
			if s.Now() > 50 {
				when = s.Now() - uint64(rnd.Intn(50))
			}
		case 2: // far future: overflow-heap territory
			when = s.Now() + uint64(rnd.Intn(10*wheelSize))
		default: // realistic short delays (DRAM, hit latencies, quanta)
			when = s.Now() + uint64(rnd.Intn(300))
		}
		s.At(when, func() {
			log = append(log, myID, s.Now())
			if depth > 0 && rnd.Intn(3) != 0 {
				schedule(depth - 1)
			}
		})
	}
	for i := 0; i < n; i++ {
		schedule(3)
	}
	s.Drain(nil)
	log = append(log, s.Now())
	return log
}

// TestCalendarMatchesReferenceHeap checks bit-exact firing order, fire
// times, and final clock between the calendar queue and the reference
// binary heap across many random workloads.
func TestCalendarMatchesReferenceHeap(t *testing.T) {
	for seed := int64(1); seed <= 60; seed++ {
		got := opTrace(NewEngine(), seed, 40)
		want := opTrace(newRefEngine(), seed, 40)
		if len(got) != len(want) {
			t.Fatalf("seed %d: event count diverged: %d vs %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: diverged at log position %d: calendar %d, heap %d",
					seed, i, got[i], want[i])
			}
		}
	}
}

// TestCalendarRunUntilMatchesReference checks RunUntil's partial-drain
// semantics (fire through t, clock lands on t, remainder pending) against
// the reference on randomized schedules.
func TestCalendarRunUntilMatchesReference(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		rnd := rand.New(rand.NewSource(seed))
		cal, ref := NewEngine(), newRefEngine()
		var calLog, refLog []uint64
		whens := make([]uint64, 200)
		for i := range whens {
			whens[i] = uint64(rnd.Intn(3 * wheelSize))
		}
		for i, w := range whens {
			i := i
			cal.At(w, func() { calLog = append(calLog, uint64(i), cal.Now()) })
			ref.At(w, func() { refLog = append(refLog, uint64(i), ref.Now()) })
		}
		for _, cut := range []uint64{0, 17, wheelSize - 1, wheelSize, wheelSize + 1, 2 * wheelSize, 4 * wheelSize} {
			cal.RunUntil(cut)
			ref.RunUntil(cut)
			if cal.Now() != ref.Now() {
				t.Fatalf("seed %d cut %d: Now() %d vs %d", seed, cut, cal.Now(), ref.Now())
			}
			if cal.Pending() != ref.Pending() {
				t.Fatalf("seed %d cut %d: Pending() %d vs %d", seed, cut, cal.Pending(), ref.Pending())
			}
		}
		cal.Drain(nil)
		ref.Drain(nil)
		if len(calLog) != len(refLog) {
			t.Fatalf("seed %d: log lengths %d vs %d", seed, len(calLog), len(refLog))
		}
		for i := range calLog {
			if calLog[i] != refLog[i] {
				t.Fatalf("seed %d: diverged at %d: %d vs %d", seed, i, calLog[i], refLog[i])
			}
		}
	}
}

// TestHandlerEventsInterleaveWithClosures checks that ScheduleH events and
// closure events share one deterministic order, and that payloads arrive
// intact.
type recHandler struct {
	log *[]uint64
}

func (h recHandler) Handle(now uint64, kind uint8, a, b uint64) {
	*h.log = append(*h.log, now, uint64(kind), a, b)
}

func TestHandlerEventsInterleaveWithClosures(t *testing.T) {
	e := NewEngine()
	var log []uint64
	h := recHandler{log: &log}
	e.ScheduleH(10, h, 1, 100, 200)
	e.Schedule(10, func() { log = append(log, e.Now(), 99, 0, 0) })
	e.ScheduleH(10, h, 2, 300, 400)
	e.ScheduleH(5, h, 3, 1, 2)
	e.Drain(nil)
	want := []uint64{
		5, 3, 1, 2,
		10, 1, 100, 200,
		10, 99, 0, 0,
		10, 2, 300, 400,
	}
	if len(log) != len(want) {
		t.Fatalf("log length %d, want %d: %v", len(log), len(want), log)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log[%d] = %d, want %d (full: %v)", i, log[i], want[i], log)
		}
	}
}

// TestEventRecordsRecycle verifies the free list actually recycles records
// (steady-state scheduling allocates no new Events).
func TestEventRecordsRecycle(t *testing.T) {
	e := NewEngine()
	h := recHandler{log: new([]uint64)}
	// Prime the pool.
	for i := 0; i < 100; i++ {
		e.ScheduleH(uint64(i), h, 0, 0, 0)
	}
	e.Drain(nil)
	allocs := testing.AllocsPerRun(1000, func() {
		e.ScheduleH(7, h, 0, 0, 0)
		e.Drain(nil)
	})
	if allocs > 0 {
		t.Fatalf("steady-state schedule/fire allocated %.1f objects per op, want 0", allocs)
	}
}
