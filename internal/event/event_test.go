package event

import (
	"testing"
	"testing/quick"
)

func TestOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	e.Drain(nil)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("wrong order: %v", got)
	}
	if e.Now() != 30 {
		t.Fatalf("Now() = %d, want 30", e.Now())
	}
}

func TestFIFOAtSameTime(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.Drain(nil)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events fired out of scheduling order: %v", got)
		}
	}
}

func TestPastEventsClampToNow(t *testing.T) {
	e := NewEngine()
	e.Schedule(100, func() {})
	e.Step()
	fired := uint64(0)
	e.At(50, func() { fired = e.Now() })
	e.Step()
	if fired != 100 {
		t.Fatalf("past event fired at %d, want clamped to 100", fired)
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []uint64
	e.Schedule(10, func() {
		times = append(times, e.Now())
		e.Schedule(5, func() {
			times = append(times, e.Now())
		})
	})
	e.Drain(nil)
	if len(times) != 2 || times[0] != 10 || times[1] != 15 {
		t.Fatalf("nested scheduling produced %v", times)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(10, func() { fired++ })
	e.Schedule(20, func() { fired++ })
	e.Schedule(30, func() { fired++ })
	e.RunUntil(20)
	if fired != 2 {
		t.Fatalf("RunUntil(20) fired %d events, want 2", fired)
	}
	if e.Now() != 20 {
		t.Fatalf("Now() = %d, want 20", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
}

func TestDrainStop(t *testing.T) {
	e := NewEngine()
	fired := 0
	for i := 0; i < 10; i++ {
		e.Schedule(uint64(i), func() { fired++ })
	}
	e.Drain(func() bool { return fired >= 5 })
	if fired != 5 {
		t.Fatalf("Drain with stop fired %d, want 5", fired)
	}
}

func TestStepEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step on empty engine returned true")
	}
}

// TestHeapPropertyRandom drives the heap with random delays and checks
// global time monotonicity.
func TestHeapPropertyRandom(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var fireTimes []uint64
		for _, d := range delays {
			e.Schedule(uint64(d), func() { fireTimes = append(fireTimes, e.Now()) })
		}
		e.Drain(nil)
		if len(fireTimes) != len(delays) {
			return false
		}
		for i := 1; i < len(fireTimes); i++ {
			if fireTimes[i] < fireTimes[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []uint64 {
		e := NewEngine()
		var out []uint64
		var rec func(depth int)
		rec = func(depth int) {
			out = append(out, e.Now())
			if depth < 4 {
				e.Schedule(uint64(depth*3), func() { rec(depth + 1) })
				e.Schedule(uint64(depth*7), func() { rec(depth + 1) })
			}
		}
		e.Schedule(1, func() { rec(0) })
		e.Drain(nil)
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic event counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}
