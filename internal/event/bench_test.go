package event

import (
	"math/rand"
	"testing"
)

// simDelays mimics the timed simulator's delay distribution: mostly short
// transfer/hit latencies, a band of DRAM round-trips, a tail of core
// quanta, and the occasional long retry chain.
func simDelays(n int) []uint64 {
	rnd := rand.New(rand.NewSource(42))
	d := make([]uint64, n)
	for i := range d {
		switch rnd.Intn(10) {
		case 0, 1, 2, 3: // channel transfer slots
			d[i] = 9
		case 4, 5, 6: // DRAM access latency
			d[i] = 180
		case 7, 8: // core run-ahead quanta
			d[i] = uint64(rnd.Intn(256))
		default: // long tail
			d[i] = uint64(rnd.Intn(4096))
		}
	}
	return d
}

type nopHandler struct{}

func (nopHandler) Handle(uint64, uint8, uint64, uint64) {}

// BenchmarkCalendarScheduleDrain measures the calendar queue on the
// simulator's delay mix with pooled handler events (the hot-path
// configuration).
func BenchmarkCalendarScheduleDrain(b *testing.B) {
	delays := simDelays(1024)
	var h nopHandler
	e := NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ScheduleH(delays[i&1023], h, 0, 0, 0)
		if i&7 == 7 {
			for e.Step() {
			}
		}
	}
	e.Drain(nil)
}

// BenchmarkCalendarSteadyChurn keeps a realistic number of events in
// flight (hundreds, as in a 4-core timed run) and measures one
// schedule+fire cycle.
func BenchmarkCalendarSteadyChurn(b *testing.B) {
	delays := simDelays(1024)
	var h nopHandler
	e := NewEngine()
	for i := 0; i < 512; i++ {
		e.ScheduleH(delays[i], h, 0, 0, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
		e.ScheduleH(delays[i&1023], h, 0, 0, 0)
	}
	b.StopTimer()
	e.Drain(nil)
}

// BenchmarkRefHeapScheduleDrain is the pre-calendar binary heap with
// per-event closures, kept as the comparison baseline.
func BenchmarkRefHeapScheduleDrain(b *testing.B) {
	delays := simDelays(1024)
	e := newRefEngine()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(delays[i&1023], fn)
		if i&7 == 7 {
			for e.Step() {
			}
		}
	}
	e.Drain(nil)
}

// BenchmarkRefHeapSteadyChurn is the reference heap under the steady-state
// load of BenchmarkCalendarSteadyChurn.
func BenchmarkRefHeapSteadyChurn(b *testing.B) {
	delays := simDelays(1024)
	e := newRefEngine()
	fn := func() {}
	for i := 0; i < 512; i++ {
		e.Schedule(delays[i], fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
		e.Schedule(delays[i&1023], fn)
	}
	b.StopTimer()
	e.Drain(nil)
}
