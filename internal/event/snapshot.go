package event

import (
	"fmt"

	"stms/internal/ckpt"
)

// Snapshot serializes the engine's complete scheduling state: clock,
// sequence counter, every pending wheel event in exact per-bucket FIFO
// order, and the overflow heap verbatim. idOf maps a pending event's
// Handler to a stable small integer (the simulator registers its
// handlers in a fixed construction order); an unregistered handler is
// an error.
//
// Snapshot refuses closure events (Schedule/At): a captured func cannot
// be serialized. The simulator's hot paths are exclusively handler
// events; closures appear only on cold paths that are excluded from
// checkpointable configurations.
//
// Snapshot must be called between events (the Drain stop callback),
// where now == base holds.
func (e *Engine) Snapshot(enc *ckpt.Encoder, idOf func(Handler) (uint32, bool)) error {
	if e.now != e.base {
		return fmt.Errorf("event: snapshot mid-advance (now=%d base=%d)", e.now, e.base)
	}
	enc.Section("event.Engine")
	enc.U64(e.now)
	enc.U64(e.seq)

	put := func(ev *Event) error {
		if ev.fn != nil {
			return fmt.Errorf("event: pending closure event at t=%d cannot be checkpointed", ev.when)
		}
		id, ok := idOf(ev.h)
		if !ok {
			return fmt.Errorf("event: pending event at t=%d has unregistered handler %T", ev.when, ev.h)
		}
		enc.U64(ev.when)
		enc.U64(ev.seq)
		enc.U32(id)
		enc.U8(ev.kind)
		enc.U64(ev.a)
		enc.U64(ev.b)
		return nil
	}

	enc.U64(uint64(e.n - len(e.overflow))) // wheel event count
	for i := range e.bucket {
		for ev := e.bucket[i].head; ev != nil; ev = ev.next {
			if err := put(ev); err != nil {
				return err
			}
		}
	}
	enc.U64(uint64(len(e.overflow)))
	for _, ev := range e.overflow {
		if err := put(ev); err != nil {
			return err
		}
	}
	return nil
}

// Restore rebuilds the engine from a Snapshot. The engine must be
// freshly constructed and empty; handlerOf inverts the idOf mapping
// used at snapshot time. Bucket FIFO order and the overflow heap's
// array layout are reproduced exactly, so the restored engine fires
// the identical event sequence.
func (e *Engine) Restore(dec *ckpt.Decoder, handlerOf func(uint32) (Handler, bool)) error {
	if e.n != 0 {
		return fmt.Errorf("event: restore into non-empty engine (%d pending)", e.n)
	}
	dec.Section("event.Engine")
	e.now = dec.U64()
	e.base = e.now
	e.seq = dec.U64()

	take := func() (*Event, error) {
		when := dec.U64()
		seq := dec.U64()
		id := dec.U32()
		kind := dec.U8()
		a := dec.U64()
		b := dec.U64()
		if err := dec.Err(); err != nil {
			return nil, err
		}
		h, ok := handlerOf(id)
		if !ok {
			return nil, fmt.Errorf("event: checkpoint references unknown handler id %d", id)
		}
		ev := e.get()
		ev.when, ev.seq, ev.h, ev.kind, ev.a, ev.b = when, seq, h, kind, a, b
		return ev, nil
	}

	wheelEvents := dec.U64()
	if err := dec.Err(); err != nil {
		return err
	}
	for i := uint64(0); i < wheelEvents; i++ {
		ev, err := take()
		if err != nil {
			return err
		}
		if ev.when < e.base || ev.when >= e.base+wheelSize {
			return fmt.Errorf("event: wheel event at t=%d outside [%d, %d)", ev.when, e.base, e.base+wheelSize)
		}
		e.pushBucket(ev)
		e.n++
	}
	overflowEvents := dec.U64()
	if err := dec.Err(); err != nil {
		return err
	}
	for i := uint64(0); i < overflowEvents; i++ {
		ev, err := take()
		if err != nil {
			return err
		}
		if ev.when < e.base+wheelSize {
			return fmt.Errorf("event: overflow event at t=%d inside wheel horizon", ev.when)
		}
		// The heap array is restored verbatim in index order, preserving
		// its exact shape (heap property is order-insensitive, but shape
		// identity keeps later pops bit-identical).
		e.overflow = append(e.overflow, ev)
		e.n++
	}
	return dec.Err()
}

// HasClosureEvents reports whether any pending event is a closure
// (Schedule/At) rather than a typed handler event. Checkpointing is
// refused while one is pending.
func (e *Engine) HasClosureEvents() bool {
	for i := range e.bucket {
		for ev := e.bucket[i].head; ev != nil; ev = ev.next {
			if ev.fn != nil {
				return true
			}
		}
	}
	for _, ev := range e.overflow {
		if ev.fn != nil {
			return true
		}
	}
	return false
}
