// Package stats provides the statistics utilities used across the
// simulator and the experiment harness: streaming mean/variance, geometric
// means, logarithmic histograms, weighted CDFs (for stream-length
// distributions), and plain-text table rendering for the per-figure output.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean is a streaming mean/variance accumulator (Welford's algorithm).
type Mean struct {
	n    uint64
	mean float64
	m2   float64
}

// Add folds x into the accumulator.
func (m *Mean) Add(x float64) {
	m.n++
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
}

// N returns the number of samples.
func (m *Mean) N() uint64 { return m.n }

// Value returns the sample mean (0 if empty).
func (m *Mean) Value() float64 { return m.mean }

// Variance returns the sample variance (0 if fewer than 2 samples).
func (m *Mean) Variance() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// StdDev returns the sample standard deviation.
func (m *Mean) StdDev() float64 { return math.Sqrt(m.Variance()) }

// GeoMean returns the geometric mean of xs, ignoring non-positive values.
func GeoMean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Ratio returns a/b, or 0 when b is 0. Used pervasively for coverage and
// traffic normalization where an empty denominator means "no events".
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Histogram is a base-2 logarithmic histogram over uint64 values. Bucket i
// holds values in [2^(i-1), 2^i) with bucket 0 holding {0}.
type Histogram struct {
	buckets [65]uint64
	total   uint64
	sum     uint64
}

// Add records value v once.
func (h *Histogram) Add(v uint64) { h.AddN(v, 1) }

// AddN records value v, n times.
func (h *Histogram) AddN(v, n uint64) {
	h.buckets[bucketOf(v)] += n
	h.total += n
	h.sum += v * n
}

func bucketOf(v uint64) int {
	b := 0
	for v > 0 {
		b++
		v >>= 1
	}
	return b
}

// Total returns the number of recorded values.
func (h *Histogram) Total() uint64 { return h.total }

// MeanValue returns the arithmetic mean of recorded values.
func (h *Histogram) MeanValue() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1): the
// top of the first bucket at which the cumulative count reaches q.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			if i == 0 {
				return 0
			}
			if i >= 64 {
				return math.MaxUint64
			}
			// Bucket i holds values in [2^(i-1), 2^i); report the
			// inclusive upper bound.
			return 1<<uint(i) - 1
		}
	}
	return math.MaxUint64
}

// CDF is a weighted cumulative distribution over float64 values: each
// sample carries a weight (e.g., a stream of length L contributes L
// "streamed blocks" at value L for Figure 6 left).
type CDF struct {
	vals    []float64
	weights []float64
	sorted  bool
}

// Add records one sample with the given weight.
func (c *CDF) Add(value, weight float64) {
	c.vals = append(c.vals, value)
	c.weights = append(c.weights, weight)
	c.sorted = false
}

// N returns the number of samples.
func (c *CDF) N() int { return len(c.vals) }

// cdfJSON is the wire form of a CDF. The sorted flag rides along so a
// decoded CDF is field-for-field identical (reflect.DeepEqual) to the
// one encoded — the distributed lab ships whole Results structures
// between processes and asserts bit-identity on arrival.
type cdfJSON struct {
	Vals    []float64 `json:"vals"`
	Weights []float64 `json:"weights"`
	Sorted  bool      `json:"sorted,omitempty"`
}

// MarshalJSON encodes the CDF's samples and weights losslessly
// (float64 values round-trip exactly through encoding/json).
func (c *CDF) MarshalJSON() ([]byte, error) {
	return json.Marshal(cdfJSON{Vals: c.vals, Weights: c.weights, Sorted: c.sorted})
}

// UnmarshalJSON restores a CDF encoded by MarshalJSON.
func (c *CDF) UnmarshalJSON(b []byte) error {
	var w cdfJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	if len(w.Vals) != len(w.Weights) {
		return fmt.Errorf("stats: CDF with %d values but %d weights", len(w.Vals), len(w.Weights))
	}
	c.vals, c.weights, c.sorted = w.Vals, w.Weights, w.Sorted
	return nil
}

// Snapshot exposes the CDF's internal samples for checkpointing. The
// returned slices alias the CDF; callers must not mutate them.
func (c *CDF) Snapshot() (vals, weights []float64, sorted bool) {
	return c.vals, c.weights, c.sorted
}

// SetSnapshot replaces the CDF's samples (checkpoint restore). The CDF
// takes ownership of the slices.
func (c *CDF) SetSnapshot(vals, weights []float64, sorted bool) {
	c.vals, c.weights, c.sorted = vals, weights, sorted
}

func (c *CDF) sort() {
	if c.sorted {
		return
	}
	idx := make([]int, len(c.vals))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return c.vals[idx[a]] < c.vals[idx[b]] })
	v := make([]float64, len(c.vals))
	w := make([]float64, len(c.vals))
	for i, j := range idx {
		v[i], w[i] = c.vals[j], c.weights[j]
	}
	c.vals, c.weights = v, w
	c.sorted = true
}

// At returns the cumulative weight fraction of samples with value <= x.
func (c *CDF) At(x float64) float64 {
	c.sort()
	var total, cum float64
	for _, w := range c.weights {
		total += w
	}
	if total == 0 {
		return 0
	}
	for i, v := range c.vals {
		if v > x {
			break
		}
		cum += c.weights[i]
	}
	return cum / total
}

// Quantile returns the smallest value v such that At(v) >= q.
func (c *CDF) Quantile(q float64) float64 {
	c.sort()
	var total float64
	for _, w := range c.weights {
		total += w
	}
	if total == 0 {
		return 0
	}
	target := q * total
	var cum float64
	for i, v := range c.vals {
		cum += c.weights[i]
		if cum >= target {
			return v
		}
	}
	return c.vals[len(c.vals)-1]
}

// Points evaluates the CDF at each x in xs, returning fractions in [0,1].
func (c *CDF) Points(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = c.At(x)
	}
	return out
}

// Table is an aligned plain-text table with a title, used by every
// experiment to print the rows a paper figure or table reports.
type Table struct {
	Title string
	Cols  []string
	Rows  [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, cols ...string) *Table {
	return &Table{Title: title, Cols: cols}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders a float compactly: large values with no decimals,
// small ones with enough precision to be readable.
func FormatFloat(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 10:
		return fmt.Sprintf("%.1f", v)
	case av >= 0.095:
		return fmt.Sprintf("%.2f", v)
	case av == 0:
		return "0"
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Cols)
	total := len(widths) - 1
	if total < 0 {
		total = 0
	}
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header row first).
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cols := make([]string, len(t.Cols))
	for i, c := range t.Cols {
		cols[i] = esc(c)
	}
	b.WriteString(strings.Join(cols, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = esc(c)
		}
		b.WriteString(strings.Join(cells, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Pct formats a fraction as a percentage string ("42.0%").
func Pct(frac float64) string { return fmt.Sprintf("%.1f%%", frac*100) }
