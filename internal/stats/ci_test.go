package stats

import (
	"math"
	"testing"
)

// TestStudentTReferences checks the t quantile against standard table
// values (two-sided). References: NIST/SEMATECH e-Handbook, Table of
// critical values of Student's t distribution.
func TestStudentTReferences(t *testing.T) {
	cases := []struct {
		level float64
		df    int
		want  float64
	}{
		// 95% two-sided (t_{0.975,df})
		{0.95, 1, 12.7062},
		{0.95, 2, 4.3027},
		{0.95, 3, 3.1824},
		{0.95, 4, 2.7764},
		{0.95, 5, 2.5706},
		{0.95, 7, 2.3646},
		{0.95, 10, 2.2281},
		{0.95, 15, 2.1314},
		{0.95, 30, 2.0423},
		{0.95, 120, 1.9799},
		// 90% two-sided (t_{0.95,df})
		{0.90, 1, 6.3138},
		{0.90, 2, 2.9200},
		{0.90, 5, 2.0150},
		{0.90, 10, 1.8125},
		{0.90, 30, 1.6973},
		// 99% two-sided (t_{0.995,df})
		{0.99, 1, 63.657},
		{0.99, 5, 4.0321},
		{0.99, 10, 3.1693},
		{0.99, 30, 2.7500},
	}
	for _, c := range cases {
		got := StudentT(c.level, c.df)
		if math.Abs(got-c.want) > 5e-4*c.want {
			t.Errorf("StudentT(%g, %d) = %.5f, want %.5f", c.level, c.df, got, c.want)
		}
	}
}

func TestStudentTLargeDFApproachesNormal(t *testing.T) {
	// t → z as df → ∞; z_{0.975} = 1.95996.
	got := StudentT(0.95, 100000)
	if math.Abs(got-1.95996) > 1e-3 {
		t.Errorf("StudentT(0.95, 1e5) = %.5f, want ≈1.95996", got)
	}
}

func TestMeanCI(t *testing.T) {
	// Hand-checked: values {1,2,3,4,5}, mean 3, s = sqrt(2.5),
	// SE = sqrt(0.5), t_{0.975,4} = 2.7764 → half-width 1.9633.
	ci := MeanCI([]float64{1, 2, 3, 4, 5}, 0.95)
	if math.Abs(ci.Mean-3) > 1e-12 {
		t.Errorf("mean = %v, want 3", ci.Mean)
	}
	wantH := 2.7764 * math.Sqrt(0.5)
	if math.Abs(ci.HalfWidth()-wantH) > 1e-3 {
		t.Errorf("half-width = %v, want %v", ci.HalfWidth(), wantH)
	}
	if !ci.Contains(3) || ci.Contains(3+wantH+0.01) {
		t.Errorf("Contains misbehaves: %+v", ci)
	}
	if ci.N != 5 || ci.Level != 0.95 {
		t.Errorf("metadata: %+v", ci)
	}
}

func TestMeanCIDegenerate(t *testing.T) {
	if ci := MeanCI(nil, 0.95); ci.Mean != 0 || ci.HalfWidth() != 0 || ci.N != 0 {
		t.Errorf("empty: %+v", ci)
	}
	ci := MeanCI([]float64{7}, 0.95)
	if ci.Mean != 7 || ci.Lo != 7 || ci.Hi != 7 || ci.N != 1 {
		t.Errorf("single: %+v", ci)
	}
	// Identical values: zero-width interval around the value.
	ci = MeanCI([]float64{2, 2, 2, 2}, 0.95)
	if ci.Mean != 2 || ci.HalfWidth() != 0 {
		t.Errorf("constant: %+v", ci)
	}
}

func TestStratifiedMeanEqualWeightsMatchesMeanCI(t *testing.T) {
	vals := []float64{1.2, 0.9, 1.05, 1.3, 0.85, 1.1}
	w := []float64{3, 3, 3, 3, 3, 3}
	a := MeanCI(vals, 0.95)
	b := StratifiedMean(vals, w, 0.95)
	if math.Abs(a.Mean-b.Mean) > 1e-12 || math.Abs(a.HalfWidth()-b.HalfWidth()) > 1e-12 {
		t.Errorf("equal weights diverge: %+v vs %+v", a, b)
	}
}

func TestStratifiedMeanRatioOfSums(t *testing.T) {
	// Per-stratum IPC with instruction counts as weights must
	// reproduce the pooled ratio ΣI/ΣC exactly.
	instrs := []float64{100, 250, 50}
	cycles := []float64{80, 300, 20}
	vals := make([]float64, 3)
	for i := range vals {
		vals[i] = instrs[i] / cycles[i]
	}
	ci := StratifiedMean(vals, cycles, 0.95)
	want := (100.0 + 250 + 50) / (80.0 + 300 + 20)
	if math.Abs(ci.Mean-want) > 1e-12 {
		t.Errorf("weighted mean %v, want ratio-of-sums %v", ci.Mean, want)
	}
}

func TestStratifiedMeanZeroWeights(t *testing.T) {
	ci := StratifiedMean([]float64{1, 3}, []float64{0, 0}, 0.95)
	if ci.Mean != 2 {
		t.Errorf("all-zero weights should fall back to plain mean: %+v", ci)
	}
}

func TestCIRelErr(t *testing.T) {
	ci := CI{Mean: 2, Lo: 1.8, Hi: 2.2}
	if math.Abs(ci.RelErr()-0.1) > 1e-12 {
		t.Errorf("RelErr = %v, want 0.1", ci.RelErr())
	}
	if (CI{}).RelErr() != 0 {
		t.Error("zero-mean RelErr should be 0")
	}
}

func TestMedianOf(t *testing.T) {
	if m := MedianOf([]float64{3, 1, 2}); m != 2 {
		t.Errorf("odd median %v", m)
	}
	if m := MedianOf([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Errorf("even median %v", m)
	}
	if m := MedianOf(nil); m != 0 {
		t.Errorf("empty median %v", m)
	}
}

// TestMeanCICoverage is a quick self-consistency check: for normal
// samples the 95% interval should contain the true mean ~95% of the
// time. Uses a deterministic LCG, 400 trials of n=8.
func TestMeanCICoverage(t *testing.T) {
	state := uint64(0x9E3779B97F4A7C15)
	next := func() float64 {
		// xorshift64* → uniform in (0,1)
		state ^= state >> 12
		state ^= state << 25
		state ^= state >> 27
		return float64(state*0x2545F4914F6CDD1D>>11) / float64(1<<53)
	}
	gauss := func() float64 {
		// Box-Muller
		u1, u2 := next(), next()
		if u1 < 1e-300 {
			u1 = 1e-300
		}
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
	const trials = 400
	hits := 0
	for tr := 0; tr < trials; tr++ {
		vals := make([]float64, 8)
		for i := range vals {
			vals[i] = 5 + 2*gauss()
		}
		if MeanCI(vals, 0.95).Contains(5) {
			hits++
		}
	}
	// Binomial(400, 0.95): 3.5σ ≈ 15. Accept [365, 400].
	if hits < 365 {
		t.Errorf("95%% CI contained the true mean in only %d/%d trials", hits, trials)
	}
}
