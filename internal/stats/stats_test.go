package stats

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanBasics(t *testing.T) {
	var m Mean
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		m.Add(x)
	}
	if m.N() != 8 {
		t.Fatalf("N = %d", m.N())
	}
	if math.Abs(m.Value()-5) > 1e-12 {
		t.Errorf("mean = %v, want 5", m.Value())
	}
	// Sample std dev of that classic set is ~2.138.
	if math.Abs(m.StdDev()-2.138089935299395) > 1e-9 {
		t.Errorf("stddev = %v", m.StdDev())
	}
}

func TestMeanEmpty(t *testing.T) {
	var m Mean
	if m.Value() != 0 || m.Variance() != 0 {
		t.Error("empty mean should be zero-valued")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 100}); math.Abs(got-10) > 1e-9 {
		t.Errorf("GeoMean(1,100) = %v", got)
	}
	if got := GeoMean([]float64{4, 4, 4}); math.Abs(got-4) > 1e-9 {
		t.Errorf("GeoMean(4,4,4) = %v", got)
	}
	// Non-positive entries are ignored.
	if got := GeoMean([]float64{0, -3, 8, 2}); math.Abs(got-4) > 1e-9 {
		t.Errorf("GeoMean with non-positives = %v", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v", got)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Error("Ratio with zero denominator should be 0")
	}
	if Ratio(3, 4) != 0.75 {
		t.Error("Ratio(3,4) wrong")
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Add(0)
	h.Add(1)
	h.Add(2)
	h.Add(3)
	h.Add(1024)
	if h.Total() != 5 {
		t.Fatalf("total = %d", h.Total())
	}
	if got := h.MeanValue(); math.Abs(got-206) > 1e-9 {
		t.Errorf("mean = %v", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Add(10) // bucket [8,16)
	}
	h.Add(100000)
	q := h.Quantile(0.5)
	if q < 10 || q > 15 {
		t.Errorf("median bound %d not in [10,15]", q)
	}
	if h.Quantile(1.0) < 100000 {
		t.Errorf("max quantile %d too small", h.Quantile(1.0))
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	var h Histogram
	r := uint64(12345)
	for i := 0; i < 1000; i++ {
		r = r*6364136223846793005 + 1442695040888963407
		h.Add(r >> 40)
	}
	prev := uint64(0)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1.0} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantiles not monotone at %v: %d < %d", q, v, prev)
		}
		prev = v
	}
}

func TestCDFWeighted(t *testing.T) {
	var c CDF
	c.Add(10, 1)
	c.Add(20, 3)
	if got := c.At(10); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("At(10) = %v, want 0.25", got)
	}
	if got := c.At(20); got != 1 {
		t.Errorf("At(20) = %v, want 1", got)
	}
	if got := c.At(5); got != 0 {
		t.Errorf("At(5) = %v, want 0", got)
	}
	if q := c.Quantile(0.5); q != 20 {
		t.Errorf("Quantile(0.5) = %v, want 20", q)
	}
}

func TestCDFMonotone(t *testing.T) {
	f := func(vals []float64) bool {
		var c CDF
		for _, v := range vals {
			c.Add(math.Abs(v), 1)
		}
		if c.N() == 0 {
			return true
		}
		xs := []float64{0, 1, 10, 100, 1e6, 1e12}
		prev := -1.0
		for _, x := range xs {
			p := c.At(x)
			if p < prev || p < 0 || p > 1 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", 3.14159)
	tb.AddRow("beta", "x")
	out := tb.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "alpha") {
		t.Fatalf("missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("x,y", `q"r`)
	csv := tb.CSV()
	if !strings.Contains(csv, `"x,y"`) {
		t.Errorf("comma not quoted: %s", csv)
	}
	if !strings.Contains(csv, `"q""r"`) {
		t.Errorf("quote not escaped: %s", csv)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		12345:   "12345",
		42.42:   "42.4",
		3.14159: "3.14",
		0.012:   "0.012",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.421); got != "42.1%" {
		t.Errorf("Pct = %q", got)
	}
}

func TestCDFJSONRoundTrip(t *testing.T) {
	var c CDF
	for i := 0; i < 100; i++ {
		// Awkward floats: exact round-tripping must survive values that
		// have no short decimal form.
		c.Add(math.Sqrt(float64(i))*1e-3, 1/(float64(i)+0.1))
	}
	c.Quantile(0.5) // force the sorted state so it must ride the wire

	b, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	var back CDF
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&c, &back) {
		t.Fatalf("CDF not identical after JSON round trip:\n got %+v\nwant %+v", back, c)
	}
	// A second hop must also be byte-identical (canonical encoding).
	b2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Fatalf("re-encoding differs:\n%s\nvs\n%s", b, b2)
	}

	// The zero CDF round-trips to the zero CDF (nil slices preserved).
	var zero, zback CDF
	zb, _ := json.Marshal(&zero)
	if err := json.Unmarshal(zb, &zback); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&zero, &zback) {
		t.Fatalf("zero CDF round trip: got %+v", zback)
	}
}

func TestCDFJSONLengthMismatch(t *testing.T) {
	var c CDF
	if err := json.Unmarshal([]byte(`{"vals":[1,2],"weights":[1]}`), &c); err == nil {
		t.Fatal("want error for vals/weights length mismatch")
	}
}
