package stats

// Confidence intervals for sampled simulation. The sampling scheduler
// (sim.RunSampledCtx) treats each time-window as one stratum and
// reports every metric with a Student-t interval over the window
// estimates — the SMARTS-style error model (Wunderlich et al.,
// ISCA'03). Only the t quantile is approximated (regularized
// incomplete beta + bisection, good to ~1e-8); everything else is
// closed-form.

import (
	"fmt"
	"math"
	"sort"
)

// CI is a two-sided confidence interval around a mean.
type CI struct {
	Mean  float64 `json:"mean"`
	Lo    float64 `json:"lo"`
	Hi    float64 `json:"hi"`
	Level float64 `json:"level"` // e.g. 0.95
	N     int     `json:"n"`     // strata (windows) the interval is built from
}

// HalfWidth returns the interval's half-width (zero for N < 2, where
// no spread can be estimated).
func (c CI) HalfWidth() float64 { return (c.Hi - c.Lo) / 2 }

// Contains reports whether v lies inside the interval (inclusive).
func (c CI) Contains(v float64) bool { return v >= c.Lo && v <= c.Hi }

// RelErr returns the half-width as a fraction of the mean magnitude
// (zero when the mean is zero).
func (c CI) RelErr() float64 {
	if c.Mean == 0 {
		return 0
	}
	return c.HalfWidth() / math.Abs(c.Mean)
}

func (c CI) String() string {
	return fmt.Sprintf("%.4g ± %.2g (%g%% CI, n=%d)", c.Mean, c.HalfWidth(), c.Level*100, c.N)
}

// MeanCI returns the Student-t confidence interval for the mean of
// values at the given two-sided level (0 < level < 1). With fewer than
// two values the interval degenerates to the point estimate.
func MeanCI(values []float64, level float64) CI {
	w := make([]float64, len(values))
	for i := range w {
		w[i] = 1
	}
	return StratifiedMean(values, w, level)
}

// StratifiedMean returns the weighted mean of per-stratum estimates
// with a Student-t confidence interval. values[i] is stratum i's
// estimate and weights[i] its size (records, cycles — any consistent
// measure); the mean is Σwᵢxᵢ/Σwᵢ, so ratio metrics averaged with
// their denominators as weights reproduce the exact ratio-of-sums.
//
// The standard error uses the weighted-mean linearization
// SE² = n/(n−1) · Σ uᵢ²(xᵢ − m)², with uᵢ = wᵢ/Σw, which reduces to
// the classic s/√n for equal weights. Degrees of freedom are n−1.
func StratifiedMean(values, weights []float64, level float64) CI {
	if len(values) != len(weights) {
		panic("stats: StratifiedMean values/weights length mismatch")
	}
	if level <= 0 || level >= 1 {
		panic(fmt.Sprintf("stats: confidence level %g outside (0,1)", level))
	}
	n := len(values)
	ci := CI{Level: level, N: n}
	if n == 0 {
		return ci
	}
	var wsum float64
	for _, w := range weights {
		if w < 0 {
			panic("stats: StratifiedMean negative weight")
		}
		wsum += w
	}
	if wsum == 0 {
		// All-empty strata: the only defensible estimate is the plain
		// mean of the values with equal weights.
		return MeanCI(values, level)
	}
	var m float64
	for i, v := range values {
		m += weights[i] / wsum * v
	}
	ci.Mean = m
	ci.Lo, ci.Hi = m, m
	if n < 2 {
		return ci
	}
	var s2 float64
	for i, v := range values {
		u := weights[i] / wsum
		d := v - m
		s2 += u * u * d * d
	}
	se := math.Sqrt(float64(n) / float64(n-1) * s2)
	h := StudentT(level, n-1) * se
	ci.Lo, ci.Hi = m-h, m+h
	return ci
}

// StudentT returns the two-sided critical value t* of Student's t
// distribution with df degrees of freedom at the given confidence
// level: P(|T| ≤ t*) = level.
func StudentT(level float64, df int) float64 {
	if df < 1 {
		panic(fmt.Sprintf("stats: StudentT df %d < 1", df))
	}
	if level <= 0 || level >= 1 {
		panic(fmt.Sprintf("stats: confidence level %g outside (0,1)", level))
	}
	// P(|T| ≤ t) = 1 − I_{df/(df+t²)}(df/2, 1/2); bisect t until the
	// CDF matches. The bracket doubles until it straddles the target
	// (heavy one-df tails need large t at high confidence).
	cdf := func(t float64) float64 {
		x := float64(df) / (float64(df) + t*t)
		return 1 - regIncBeta(float64(df)/2, 0.5, x)
	}
	lo, hi := 0.0, 2.0
	for cdf(hi) < level {
		hi *= 2
		if hi > 1e9 {
			break
		}
	}
	for i := 0; i < 200 && hi-lo > 1e-10*(1+hi); i++ {
		mid := (lo + hi) / 2
		if cdf(mid) < level {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// regIncBeta computes the regularized incomplete beta function
// I_x(a, b) via the Lentz continued fraction (Numerical Recipes form),
// using the symmetry I_x(a,b) = 1 − I_{1−x}(b,a) for fast convergence.
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	// ln of the prefactor x^a (1−x)^b / (a·B(a,b)).
	lbeta, _ := math.Lgamma(a + b)
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	front := math.Exp(lbeta - la - lb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - math.Exp(lbeta-la-lb+a*math.Log(x)+b*math.Log(1-x))*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta
// function by the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 1e-15
		tiny    = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// MedianOf returns the median of values (average of the middle pair
// for even counts). Used by the sampling tests to summarize CI widths
// robustly across seeds.
func MedianOf(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
