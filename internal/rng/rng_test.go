package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a := NewSplitMix64(12345)
	b := NewSplitMix64(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequence diverged at step %d", i)
		}
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for seed 0 from the public-domain splitmix64.c.
	s := NewSplitMix64(0)
	want := []uint64{
		0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f,
	}
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Fatalf("value %d: got %#x, want %#x", i, got, w)
		}
	}
}

func TestRandDeterministicAcrossSeeds(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed sequences diverged at %d", i)
		}
	}
	c := New(8)
	same := 0
	a = New(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d identical values of 1000", same)
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(3)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		v := r.Uint64n(n)
		return v < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestUint64nUniformity(t *testing.T) {
	r := New(99)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := draws / n
	for i, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Errorf("bucket %d: count %d deviates more than 10%% from %d", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean %v too far from 0.5", mean)
	}
}

func TestBoolBias(t *testing.T) {
	r := New(5)
	for _, p := range []float64{0, 0.125, 0.5, 0.9, 1} {
		hits := 0
		const n = 200000
		for i := 0; i < n; i++ {
			if r.Bool(p) {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-p) > 0.01 {
			t.Errorf("Bool(%v): observed %v", p, got)
		}
	}
}

func TestParetoBounds(t *testing.T) {
	r := New(21)
	f := func(seed uint16) bool {
		v := r.Pareto(1.1, 2, 2000)
		return v >= 2 && v <= 2000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestParetoHeavyTail(t *testing.T) {
	r := New(22)
	const n = 100000
	small, large := 0, 0
	for i := 0; i < n; i++ {
		v := r.Pareto(1.0, 2, 10000)
		if v < 10 {
			small++
		}
		if v > 1000 {
			large++
		}
	}
	if small < n/2 {
		t.Errorf("expected most samples near the minimum, got %d/%d below 10", small, n)
	}
	if large == 0 {
		t.Error("expected a heavy tail, got no samples above 1000")
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(31)
	z := NewZipf(100, 1.0)
	counts := make([]int, 100)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Sample(r)]++
	}
	if counts[0] <= counts[50] {
		t.Errorf("rank 0 (%d) should dominate rank 50 (%d)", counts[0], counts[50])
	}
	// With s=1, rank 0 vs rank 9 should be roughly 10:1.
	ratio := float64(counts[0]) / float64(counts[9]+1)
	if ratio < 5 || ratio > 20 {
		t.Errorf("rank0/rank9 ratio %v outside [5,20]", ratio)
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	r := New(32)
	z := NewZipf(10, 0)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Sample(r)]++
	}
	for i, c := range counts {
		if c < n/10*85/100 || c > n/10*115/100 {
			t.Errorf("bucket %d: %d deviates from uniform %d", i, c, n/10)
		}
	}
}

func TestZipfSampleInRange(t *testing.T) {
	r := New(33)
	for _, n := range []int{1, 2, 7, 1000} {
		z := NewZipf(n, 0.7)
		for i := 0; i < 1000; i++ {
			if v := z.Sample(r); v < 0 || v >= n {
				t.Fatalf("sample %d out of [0,%d)", v, n)
			}
		}
	}
}

func TestMul64(t *testing.T) {
	cases := []struct{ a, b, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%#x,%#x) = (%#x,%#x), want (%#x,%#x)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}
