// Package rng provides small, fast, deterministic pseudo-random number
// generators and samplers.
//
// The simulator must be bit-for-bit reproducible: the same seed has to
// produce the same workload trace, the same probabilistic-update decisions,
// and therefore the same results on every run and every Go release. The
// standard library's math/rand makes no cross-version stability promise, so
// we implement splitmix64 (seeding) and xoshiro256** (bulk generation)
// ourselves, plus the handful of distributions the workload generators need
// (uniform, Bernoulli, bounded Pareto, Zipf over a finite set).
package rng

import (
	"math"
	"math/bits"
)

// SplitMix64 is a tiny 64-bit generator used to expand a single seed into
// the state of larger generators. It passes through every 64-bit value and
// has no bad seeds.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Uint64 returns the next value in the sequence.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a xoshiro256** generator: fast, 256 bits of state, and
// statistically strong for simulation purposes.
type Rand struct {
	s [4]uint64
}

// New returns a Rand seeded deterministically from seed.
func New(seed uint64) *Rand {
	sm := NewSplitMix64(seed)
	r := &Rand{}
	for i := range r.s {
		r.s[i] = sm.Uint64()
	}
	// A xoshiro state of all zeros is degenerate; splitmix cannot emit four
	// consecutive zeros, but guard anyway for the zero-seed paranoia case.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// State returns the generator's 256-bit internal state, for
// checkpointing. Restoring it with SetState resumes the exact sequence.
func (r *Rand) State() [4]uint64 { return r.s }

// SetState overwrites the generator's internal state (checkpoint
// restore). An all-zero state is degenerate and rejected the same way
// New guards it.
func (r *Rand) SetState(s [4]uint64) {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		s[0] = 0x9e3779b97f4a7c15
	}
	r.s = s
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64-bit value.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint64n returns a uniform value in [0, n). n must be > 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	// Lemire's nearly-divisionless method with rejection for exactness.
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo >= n || lo >= (-n)%n {
			return hi
		}
	}
}

// mul64 computes the 128-bit product of a and b. bits.Mul64 is a compiler
// intrinsic (a single widening multiply on amd64/arm64), bit-exact with
// the long-form schoolbook product it replaced.
func mul64(a, b uint64) (hi, lo uint64) {
	return bits.Mul64(a, b)
}

// Intn returns a uniform int in [0, n). n must be > 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Pareto returns a bounded Pareto sample in [lo, hi] with shape alpha.
// Small alpha (≈1) gives a heavy tail; large alpha concentrates near lo.
func (r *Rand) Pareto(alpha float64, lo, hi float64) float64 {
	if lo >= hi {
		return lo
	}
	u := r.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	// Inverse CDF of the bounded Pareto distribution.
	x := math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
	if x < lo {
		x = lo
	}
	if x > hi {
		x = hi
	}
	return x
}

// Zipf samples indices in [0, n) with probability proportional to
// 1/(i+1)^s using a precomputed cumulative table and binary search.
// It is deterministic given the Rand it draws from.
type Zipf struct {
	cum []float64 // cum[i] = cumulative weight through rank i
}

// NewZipf builds a Zipf sampler over n items with skew s (s >= 0;
// s == 0 is uniform).
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf with n <= 0")
	}
	z := &Zipf{cum: make([]float64, n)}
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		z.cum[i] = total
	}
	return z
}

// N returns the number of items the sampler draws from.
func (z *Zipf) N() int { return len(z.cum) }

// Sample draws one index using r.
func (z *Zipf) Sample(r *Rand) int {
	target := r.Float64() * z.cum[len(z.cum)-1]
	// Binary search for the first cum[i] >= target.
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
