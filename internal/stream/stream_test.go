package stream_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"reflect"
	"testing"
	"time"

	"stms/internal/sim"
	"stms/internal/stream"
	"stms/internal/trace"
)

// testTape materializes a small tape shared by the loopback tests.
func testTape(t *testing.T, cores int, perCore uint64) *trace.Tape {
	t.Helper()
	spec, err := trace.ByName("web-apache")
	if err != nil {
		t.Fatal(err)
	}
	return trace.NewTape(spec.Scaled(0.0625), 7, cores, perCore)
}

func testCfg(cores int, perCore uint64) sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Scale = 0.0625
	cfg.Seed = 7
	cfg.Cores = cores
	cfg.WarmRecords = perCore / 2
	cfg.MeasureRecords = perCore - perCore/2
	return cfg
}

// serveTape runs an outlet over the tape on a loopback listener,
// injecting the given connection cuts, and reports Serve's result.
func serveTape(t *testing.T, tape *trace.Tape, cuts ...uint64) (addr string, done chan error, out *stream.Outlet) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	out = stream.NewOutlet(stream.TapeSource(tape), stream.Timeouts{})
	out.InjectCuts(cuts...)
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	done = make(chan error, 1)
	go func() { done <- out.Serve(ctx, lis) }()
	return lis.Addr().String(), done, out
}

// runStream consumes a stream at addr through the timed driver.
func runStream(t *testing.T, addr string, cfg sim.Config, tape *trace.Tape) (sim.Results, *stream.Inlet) {
	t.Helper()
	in, err := stream.DialInlet(addr, stream.InletConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(in.Close)
	h := in.Hello()
	run := sim.SourceRun{Spec: h.Spec, Marks: h.Marks, Sources: in.Sources(), PerCore: h.PerCore}
	res, err := sim.RunTimedSourcesCtx(context.Background(), cfg, run, sim.PrefSpec{Kind: sim.STMS, SampleProb: 0.125}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res, in
}

func waitServe(t *testing.T, done chan error) {
	t.Helper()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("outlet serve: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("outlet did not finish after the stream was consumed")
	}
}

// TestLoopbackBitIdentical is the protocol's core correctness claim:
// streaming a tape over TCP loopback produces the identical Results
// struct as replaying the same tape directly.
func TestLoopbackBitIdentical(t *testing.T) {
	const cores, perCore = 2, 4096
	tape := testTape(t, cores, perCore)
	cfg := testCfg(cores, perCore)
	ps := sim.PrefSpec{Kind: sim.STMS, SampleProb: 0.125}

	direct, err := sim.RunTimedTapeCtx(context.Background(), cfg, tape, ps, nil)
	if err != nil {
		t.Fatal(err)
	}

	addr, done, _ := serveTape(t, tape)
	streamed, in := runStream(t, addr, cfg, tape)
	waitServe(t, done)
	if !reflect.DeepEqual(direct, streamed) {
		t.Fatalf("streamed results differ from direct replay:\ndirect:   %+v\nstreamed: %+v", direct, streamed)
	}
	if in.Reconnects() != 0 {
		t.Fatalf("clean loopback run reconnected %d times", in.Reconnects())
	}
}

// splitmix64 is the seeded offset generator for the fault sweep.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	z := x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// TestReconnectSweepBitIdentical injects a connection cut after a
// seeded sweep of frame offsets — early, mid-stream, near the end — and
// requires every recovery to converge to the exact direct-replay
// Results. The functional driver keeps the sweep fast; its Results are
// just as sensitive to a lost, duplicated or reordered record.
func TestReconnectSweepBitIdentical(t *testing.T) {
	const cores, perCore = 2, 4096
	totalFrames := uint64(cores) * ((perCore + trace.FrameCap - 1) / trace.FrameCap)
	tape := testTape(t, cores, perCore)
	cfg := testCfg(cores, perCore)
	ps := sim.PrefSpec{Kind: sim.STMS, SampleProb: 0.125}

	direct, err := sim.RunFunctionalTapeCtx(context.Background(), cfg, tape, ps, nil)
	if err != nil {
		t.Fatal(err)
	}

	offsets := map[uint64]bool{1: true, totalFrames - 1: true} // always hit the edges
	for s := uint64(0); len(offsets) < 6; s++ {
		offsets[1+splitmix64(s)%totalFrames] = true
	}
	for off := range offsets {
		t.Run(fmt.Sprintf("cut-after-%d", off), func(t *testing.T) {
			addr, done, out := serveTape(t, tape, off)
			in, err := stream.DialInlet(addr, stream.InletConfig{})
			if err != nil {
				t.Fatal(err)
			}
			defer in.Close()
			h := in.Hello()
			run := sim.SourceRun{Spec: h.Spec, Marks: h.Marks, Sources: in.Sources(), PerCore: h.PerCore}
			streamed, err := sim.RunFunctionalSourcesCtx(context.Background(), cfg, run, ps, nil)
			if err != nil {
				t.Fatal(err)
			}
			waitServe(t, done)
			if !reflect.DeepEqual(direct, streamed) {
				t.Fatalf("results diverged after cut at frame %d", off)
			}
			if in.Reconnects() != 1 {
				t.Fatalf("want exactly 1 reconnect, got %d", in.Reconnects())
			}
			if out.Resumes() != 1 {
				t.Fatalf("want exactly 1 outlet resume, got %d", out.Resumes())
			}
		})
	}
}

// TestBackpressureBoundsOutlet stalls the consumer and checks the
// credit window caps how far the outlet can run ahead: a stream much
// larger than the window must not be pulled into inlet memory.
func TestBackpressureBoundsOutlet(t *testing.T) {
	const cores, perCore = 1, 65536 // 64 frames
	tape := testTape(t, cores, perCore)
	const window = 4

	addr, _, out := serveTape(t, tape)
	in, err := stream.DialInlet(addr, stream.InletConfig{Window: window})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()

	// Consume two frames, then stall. The pool holds window+cores
	// frames; only recycling grants credit, so the outlet can never be
	// more than the pool size ahead of consumption.
	src := in.Sources()[0]
	for i := 0; i < 2; i++ {
		if src.NextFrame() == nil {
			t.Fatalf("stream dried up early: %v", in.Err())
		}
	}
	time.Sleep(300 * time.Millisecond)
	// resolved window = max(cfg.Window, 2*cores+2) = 4; pool = window+cores.
	if sent, bound := out.FramesSent(), uint64(2+window+cores+1); sent > bound {
		t.Fatalf("outlet ran %d frames ahead of a stalled consumer (bound %d)", sent, bound)
	}
	// Draining the rest must complete the stream.
	n := 2
	for f := src.NextFrame(); f != nil; f = src.NextFrame() {
		n++
	}
	if err := src.Err(); err != nil {
		t.Fatal(err)
	}
	if want := int(perCore / trace.FrameCap); n != want {
		t.Fatalf("consumed %d frames, want %d", n, want)
	}
}

// TestInletCloseNoLeak cancels a stream mid-flight: Close must unblock
// and terminate the reader goroutine (Wait returns), and a stalled
// consumer must see end-of-stream promptly. Run under -race, this also
// proves the teardown path is data-race clean.
func TestInletCloseNoLeak(t *testing.T) {
	const cores, perCore = 2, 65536
	tape := testTape(t, cores, perCore)
	addr, _, _ := serveTape(t, tape)
	in, err := stream.DialInlet(addr, stream.InletConfig{})
	if err != nil {
		t.Fatal(err)
	}
	src := in.Sources()[0]
	if src.NextFrame() == nil {
		t.Fatalf("no first frame: %v", in.Err())
	}
	in.Close()

	done := make(chan struct{})
	go func() {
		in.Wait()
		// After the reader exits, a consumer drains buffered frames and
		// then sees nil; it must never block forever.
		for f := src.NextFrame(); f != nil; f = src.NextFrame() {
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("inlet reader leaked: Wait/NextFrame did not return after Close")
	}
	if err := in.Err(); err == nil || !errors.Is(err, stream.ErrClosed) {
		t.Fatalf("want ErrClosed after mid-stream Close, got %v", err)
	}
}

// erroringGen yields n records, then dies with an error: the outlet
// must abort the stream, and the consumer must see the failure.
type erroringGen struct {
	n   int
	err error
}

func (g *erroringGen) Next(r *trace.Record) bool {
	if g.n == 0 {
		g.err = errors.New("generator hardware fault")
		return false
	}
	g.n--
	*r = trace.Record{Block: uint64(g.n), PC: 1, Instrs: 1, Work: 1}
	return true
}

func (g *erroringGen) Err() error { return g.err }

// TestOutletAbortPropagates: a producer whose generator dies mid-stream
// must surface an explicit abort at the consumer — not a clean,
// truncated end of stream.
func TestOutletAbortPropagates(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	src := stream.GeneratorSource("dying", 0.25, []trace.Generator{&erroringGen{n: 3000}})
	out := stream.NewOutlet(src, stream.Timeouts{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- out.Serve(ctx, lis) }()

	in, err := stream.DialInlet(lis.Addr().String(), stream.InletConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	s := in.Sources()[0]
	for f := s.NextFrame(); f != nil; f = s.NextFrame() {
	}
	if err := s.Err(); !errors.Is(err, stream.ErrAborted) {
		t.Fatalf("want ErrAborted from a dying producer, got %v", err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, stream.ErrAborted) {
			t.Fatalf("outlet serve: want ErrAborted, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("outlet did not exit after aborting")
	}
}

// TestOneWayStream pipes WriteAll output into a ReaderInlet — the
// stdin transport — and checks the full stream arrives intact.
func TestOneWayStream(t *testing.T) {
	const cores, perCore = 2, 3000
	tape := testTape(t, cores, perCore)
	out := stream.NewOutlet(stream.TapeSource(tape), stream.Timeouts{})

	pr, pw := net.Pipe()
	werr := make(chan error, 1)
	go func() {
		err := out.WriteAll(pw)
		pw.Close()
		werr <- err
	}()
	in, err := stream.ReaderInlet(pr, stream.InletConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	if !in.Hello().OneWay {
		t.Fatal("WriteAll stream must announce one_way")
	}
	var total uint64
	for _, s := range in.Sources() {
		for f := s.NextFrame(); f != nil; f = s.NextFrame() {
			total += uint64(f.Len())
		}
		if err := s.Err(); err != nil {
			t.Fatal(err)
		}
	}
	if total != cores*perCore {
		t.Fatalf("one-way stream delivered %d records, want %d", total, cores*perCore)
	}
	if err := <-werr; err != nil {
		t.Fatalf("WriteAll: %v", err)
	}
}

// TestOutletRestartResume kills the whole outlet (not just the
// connection) and starts a fresh one over the same tape: the inlet's
// reconnect must land on the new process and resume to bit-identical
// results, exercising the deterministic re-walk path past the frame
// ring.
func TestOutletRestartResume(t *testing.T) {
	const cores, perCore = 2, 4096
	tape := testTape(t, cores, perCore)
	cfg := testCfg(cores, perCore)
	ps := sim.PrefSpec{Kind: sim.STMS, SampleProb: 0.125}
	direct, err := sim.RunFunctionalTapeCtx(context.Background(), cfg, tape, ps, nil)
	if err != nil {
		t.Fatal(err)
	}

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()

	// First outlet: dies abruptly after frame 3 and its listener closes.
	ctx1, cancel1 := context.WithCancel(context.Background())
	out1 := stream.NewOutlet(stream.TapeSource(tape), stream.Timeouts{})
	out1.InjectCuts(3)
	done1 := make(chan error, 1)
	go func() { done1 <- out1.Serve(ctx1, lis) }()

	in, err := stream.DialInlet(addr, stream.InletConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()

	// Kill the first outlet entirely once its cut has fired, then bring
	// up a replacement on the same address.
	go func() {
		for out1.FramesSent() < 3 {
			time.Sleep(5 * time.Millisecond)
		}
		cancel1()
		<-done1
		lis2, err := net.Listen("tcp", addr)
		if err != nil {
			return
		}
		out2 := stream.NewOutlet(stream.TapeSource(tape), stream.Timeouts{})
		out2.Serve(context.Background(), lis2)
	}()

	h := in.Hello()
	run := sim.SourceRun{Spec: h.Spec, Marks: h.Marks, Sources: in.Sources(), PerCore: h.PerCore}
	streamed, err := sim.RunFunctionalSourcesCtx(context.Background(), cfg, run, ps, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, streamed) {
		t.Fatal("results diverged across an outlet restart")
	}
	if in.Reconnects() == 0 {
		t.Fatal("expected at least one reconnect")
	}
}
