// Package stream carries trace frames between processes over the
// STMSWIRE v1 framed wire protocol, turning the simulator from a batch
// tool into a service that chews on access streams as they arrive.
//
// A stream opens with a JSON handshake: the producing side (the Outlet)
// always speaks first, sending a Hello envelope that announces the
// stream's identity — workload spec, scenario provenance, seed, core
// count, per-core record budget, frame capacity — so the consuming side
// (the Inlet) can wire up a simulation that is bit-identical to running
// the same trace locally. The inlet replies with a Welcome carrying its
// resume position and an initial credit window. After the handshake the
// stream is binary: length-prefixed, CRC32-sealed, sequence-numbered
// messages framing columnar trace.Frame batches, interleaved round-robin
// across cores.
//
// Robustness is the protocol's reason to exist; its rules are:
//
//   - Untrusted bytes: every declared length is capped and
//     cross-checked before any allocation; every message is CRC-sealed;
//     violations surface as typed errors (ErrProtocol, ErrChecksum,
//     ErrTooLarge, ErrVersion), never as panics or unbounded make().
//   - Bounded memory: the inlet grants an explicit credit window (one
//     credit = one frame) and the outlet never has more unacknowledged
//     frames in flight than the window, so a stalled simulator throttles
//     the producer instead of buffering unboundedly. A peer that sends
//     past its credit is cut off with ErrCredit.
//   - Liveness: both sides send heartbeats on a timer and arm read
//     deadlines (Timeouts, mirroring the dist package), so a dead peer
//     is detected as a deadline, not a hang — and a slow-but-alive one
//     is not.
//   - Resume: frames carry a global sequence number; on reconnect the
//     inlet reports its last contiguous sequence and the outlet replays
//     from a bounded ring of recent frames, or deterministically
//     re-walks the source when the ring has rotated past the resume
//     point. Either way the delivered frame sequence is identical, so a
//     mid-run disconnect degrades to a pause, not corrupted results.
package stream

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"stms/internal/trace"
)

// wireMagic opens every handshake envelope.
var wireMagic = [8]byte{'S', 'T', 'M', 'S', 'W', 'I', 'R', 'E'}

// Version is the wire format version this package speaks. Readers
// reject other versions with ErrVersion.
const Version = 1

// Message types. Every message shares one fixed header (see msgHdr);
// fields a message type does not use must be zero.
const (
	msgFrame     = 0x01 // one columnar frame batch
	msgEnd       = 0x02 // clean end of stream
	msgHeartbeat = 0x03 // keepalive, either direction
	msgCredit    = 0x04 // inlet -> outlet: additive flow-control grant
	msgAbort     = 0x05 // outlet -> inlet: producer died; payload = reason
)

// Hard caps on attacker-declared sizes, enforced before any allocation.
const (
	maxEnvelopeLen = 1 << 20 // handshake JSON
	maxFrameCap    = 1 << 16 // records per frame
	maxCores       = 1 << 12
	maxWindow      = 1 << 20 // credit grant, frames
	maxAbortLen    = 1 << 12 // abort reason text
)

// Typed protocol failures. Wrapped errors carry the detail; match with
// errors.Is.
var (
	ErrProtocol = errors.New("stream: protocol violation")
	ErrVersion  = errors.New("stream: wire version mismatch")
	ErrChecksum = errors.New("stream: checksum mismatch")
	ErrTooLarge = errors.New("stream: declared length over cap")
	ErrMetadata = errors.New("stream: stream metadata changed across reconnect")
	ErrCredit   = errors.New("stream: peer overran its credit window")
	ErrAborted  = errors.New("stream: producer aborted mid-stream")
	ErrClosed   = errors.New("stream: closed")
)

// isWireError reports whether err is one of the typed protocol
// failures — unrecoverable by reconnecting, as opposed to transport
// errors (resets, timeouts), which resume handles.
func isWireError(err error) bool {
	for _, e := range []error{ErrProtocol, ErrVersion, ErrChecksum,
		ErrTooLarge, ErrMetadata, ErrCredit, ErrAborted, ErrClosed} {
		if errors.Is(err, e) {
			return true
		}
	}
	return false
}

// Timeouts bounds every wait in the protocol (the dist.Timeouts idiom;
// zero fields take the defaults).
type Timeouts struct {
	Handshake time.Duration // dial + envelope exchange deadline (default 5s)
	Idle      time.Duration // max peer silence before the conn is dead (default 30s)
	Heartbeat time.Duration // keepalive period (default Idle/3)
	Reconnect time.Duration // total resume budget after a drop (default 15s)
	Backoff   time.Duration // first retry delay, doubling per attempt (default 50ms)
}

func (t Timeouts) withDefaults() Timeouts {
	if t.Handshake == 0 {
		t.Handshake = 5 * time.Second
	}
	if t.Idle == 0 {
		t.Idle = 30 * time.Second
	}
	if t.Heartbeat == 0 {
		t.Heartbeat = t.Idle / 3
	}
	if t.Reconnect == 0 {
		t.Reconnect = 15 * time.Second
	}
	if t.Backoff == 0 {
		t.Backoff = 50 * time.Millisecond
	}
	return t
}

// Hello is the outlet's handshake envelope: everything the inlet needs
// to reproduce the stream's trace identity locally. The outlet sends it
// first on every connection regardless of which side dialed.
type Hello struct {
	Format  string `json:"format"`  // "STMSWIRE"
	Version int    `json:"version"` // wire format version

	Spec     trace.Spec        `json:"spec"`               // scaled workload spec (or name+dirty for external traces)
	Scenario string            `json:"scenario,omitempty"` // scenario name, when the stream is one
	Marks    []trace.PhaseMark `json:"marks,omitempty"`    // phase starts, for per-phase stat windows
	Seed     uint64            `json:"seed"`
	Cores    int               `json:"cores"`
	PerCore  uint64            `json:"per_core"` // record budget per core; 0 = unbounded/unknown
	FrameCap int               `json:"frame_cap"`
	OneWay   bool              `json:"one_way,omitempty"` // no return channel: no welcome, credits, or resume
}

// validate bounds the remote-declared sizes before anything is
// allocated from them.
func (h Hello) validate() error {
	switch {
	case h.Format != string(wireMagic[:]):
		return fmt.Errorf("%w: hello format %q", ErrProtocol, h.Format)
	case h.Version != Version:
		return fmt.Errorf("%w: peer speaks version %d, this side %d", ErrVersion, h.Version, Version)
	case h.Cores < 1 || h.Cores > maxCores:
		return fmt.Errorf("%w: %d cores (max %d)", ErrTooLarge, h.Cores, maxCores)
	case h.FrameCap < 1 || h.FrameCap > maxFrameCap:
		return fmt.Errorf("%w: frame capacity %d (max %d)", ErrTooLarge, h.FrameCap, maxFrameCap)
	case h.Spec.Name == "":
		return fmt.Errorf("%w: hello names no workload", ErrProtocol)
	}
	return nil
}

// Welcome is the inlet's handshake reply: where to (re)start and how
// many frames may be in flight.
type Welcome struct {
	Format  string `json:"format"`
	Version int    `json:"version"`

	ResumeSeq uint64 `json:"resume_seq"` // last contiguous frame received; 0 = from the start
	Window    uint32 `json:"window"`     // initial credit, frames
}

func (w Welcome) validate() error {
	switch {
	case w.Format != string(wireMagic[:]):
		return fmt.Errorf("%w: welcome format %q", ErrProtocol, w.Format)
	case w.Version != Version:
		return fmt.Errorf("%w: peer speaks version %d, this side %d", ErrVersion, w.Version, Version)
	case w.Window > maxWindow:
		return fmt.Errorf("%w: credit window %d (max %d)", ErrTooLarge, w.Window, maxWindow)
	}
	return nil
}

// writeEnvelope frames v as magic + version + length-prefixed JSON +
// CRC32 of the JSON.
func writeEnvelope(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("stream: encoding envelope: %w", err)
	}
	buf := make([]byte, 0, len(wireMagic)+8+len(body)+4)
	buf = append(buf, wireMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, Version)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(body)))
	buf = append(buf, body...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(body))
	_, err = w.Write(buf)
	return err
}

// readEnvelope reads and verifies one handshake envelope, returning the
// JSON body. The declared length is capped before allocation.
func readEnvelope(r io.Reader) ([]byte, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("stream: reading envelope: %w", err)
	}
	if [8]byte(hdr[:8]) != wireMagic {
		return nil, fmt.Errorf("%w: envelope magic %q", ErrProtocol, hdr[:8])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != Version {
		return nil, fmt.Errorf("%w: peer speaks version %d, this side %d", ErrVersion, v, Version)
	}
	n := binary.LittleEndian.Uint32(hdr[12:])
	if n > maxEnvelopeLen {
		return nil, fmt.Errorf("%w: envelope of %d bytes (max %d)", ErrTooLarge, n, maxEnvelopeLen)
	}
	body := make([]byte, n+4)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("stream: reading envelope body: %w", err)
	}
	body, sum := body[:n], binary.LittleEndian.Uint32(body[n:])
	if got := crc32.ChecksumIEEE(body); got != sum {
		return nil, fmt.Errorf("%w: envelope crc %08x, computed %08x", ErrChecksum, sum, got)
	}
	return body, nil
}

// unmarshalStrictish decodes handshake JSON. Unknown fields are
// tolerated (a newer same-version peer may add optional metadata);
// structural mismatches are not.
func unmarshalStrictish(body []byte, v any) error {
	return json.Unmarshal(body, v)
}

// hdrSize is the fixed binary message header: type(1) + arg(4) +
// seq(8) + records(4) + payload length(4).
const hdrSize = 21

// msgHdr is the decoded fixed header shared by all binary messages.
// arg carries the core index (frames) or the grant count (credits).
type msgHdr struct {
	typ        byte
	arg        uint32
	seq        uint64
	records    uint32
	payloadLen uint32
}

func putHdr(dst []byte, h msgHdr) []byte {
	dst = append(dst, h.typ)
	dst = binary.LittleEndian.AppendUint32(dst, h.arg)
	dst = binary.LittleEndian.AppendUint64(dst, h.seq)
	dst = binary.LittleEndian.AppendUint32(dst, h.records)
	dst = binary.LittleEndian.AppendUint32(dst, h.payloadLen)
	return dst
}

// frameBytes is the exact payload size of a frame of n records: the
// four fixed-width columns plus the dependence bitset.
func frameBytes(n int) int { return 20*n + (n+7)/8 }

// appendFrameMsg encodes f as a complete frame message into dst
// (appending; pass dst[:0] to reuse a buffer).
func appendFrameMsg(dst []byte, core uint32, seq uint64, f *trace.Frame) []byte {
	n := f.Len()
	start := len(dst)
	dst = putHdr(dst, msgHdr{
		typ: msgFrame, arg: core, seq: seq,
		records: uint32(n), payloadLen: uint32(frameBytes(n)),
	})
	for _, v := range f.Block[:n] {
		dst = binary.LittleEndian.AppendUint64(dst, v)
	}
	for _, v := range f.PC[:n] {
		dst = binary.LittleEndian.AppendUint32(dst, v)
	}
	for _, v := range f.Instrs[:n] {
		dst = binary.LittleEndian.AppendUint32(dst, v)
	}
	for _, v := range f.Work[:n] {
		dst = binary.LittleEndian.AppendUint32(dst, v)
	}
	var acc byte
	for i, d := range f.Dep[:n] {
		if d {
			acc |= 1 << (i & 7)
		}
		if i&7 == 7 {
			dst = append(dst, acc)
			acc = 0
		}
	}
	if n&7 != 0 {
		dst = append(dst, acc)
	}
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:]))
}

// appendCtrlMsg encodes a payload-free control message (end, heartbeat,
// credit) into dst.
func appendCtrlMsg(dst []byte, typ byte, arg uint32) []byte {
	start := len(dst)
	dst = putHdr(dst, msgHdr{typ: typ, arg: arg})
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:]))
}

// appendAbortMsg encodes a producer-death notice carrying the reason.
func appendAbortMsg(dst []byte, reason string) []byte {
	if len(reason) > maxAbortLen {
		reason = reason[:maxAbortLen]
	}
	start := len(dst)
	dst = putHdr(dst, msgHdr{typ: msgAbort, payloadLen: uint32(len(reason))})
	dst = append(dst, reason...)
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:]))
}

// msgReader reads and validates binary messages from one connection,
// reusing one payload buffer sized by the handshake-declared caps.
type msgReader struct {
	r        io.Reader
	cores    uint32
	frameCap uint32
	hdr      [hdrSize]byte
	payload  []byte
}

func newMsgReader(r io.Reader, h Hello) *msgReader {
	return &msgReader{
		r:        r,
		cores:    uint32(h.Cores),
		frameCap: uint32(h.FrameCap),
		payload:  make([]byte, 0, frameBytes(h.FrameCap)),
	}
}

// next reads one message. The returned payload aliases the reader's
// buffer: valid until the next call. Every declared field is validated
// against the handshake's caps before the payload is read, and the CRC
// covers header and payload both.
func (mr *msgReader) next() (msgHdr, []byte, error) {
	if _, err := io.ReadFull(mr.r, mr.hdr[:]); err != nil {
		return msgHdr{}, nil, err
	}
	h := msgHdr{
		typ:        mr.hdr[0],
		arg:        binary.LittleEndian.Uint32(mr.hdr[1:]),
		seq:        binary.LittleEndian.Uint64(mr.hdr[5:]),
		records:    binary.LittleEndian.Uint32(mr.hdr[13:]),
		payloadLen: binary.LittleEndian.Uint32(mr.hdr[17:]),
	}
	switch h.typ {
	case msgFrame:
		switch {
		case h.arg >= mr.cores:
			return h, nil, fmt.Errorf("%w: frame for core %d of %d", ErrProtocol, h.arg, mr.cores)
		case h.records == 0 || h.records > mr.frameCap:
			return h, nil, fmt.Errorf("%w: frame of %d records (cap %d)", ErrTooLarge, h.records, mr.frameCap)
		case h.payloadLen != uint32(frameBytes(int(h.records))):
			return h, nil, fmt.Errorf("%w: frame payload %d bytes, %d records need %d",
				ErrProtocol, h.payloadLen, h.records, frameBytes(int(h.records)))
		}
	case msgEnd, msgHeartbeat:
		if h.arg != 0 || h.seq != 0 || h.records != 0 || h.payloadLen != 0 {
			return h, nil, fmt.Errorf("%w: control message %#x with non-zero fields", ErrProtocol, h.typ)
		}
	case msgCredit:
		if h.arg == 0 || h.arg > maxWindow || h.seq != 0 || h.records != 0 || h.payloadLen != 0 {
			return h, nil, fmt.Errorf("%w: credit grant %d (max %d)", ErrProtocol, h.arg, maxWindow)
		}
	case msgAbort:
		if h.payloadLen > maxAbortLen {
			return h, nil, fmt.Errorf("%w: abort reason of %d bytes (max %d)", ErrTooLarge, h.payloadLen, maxAbortLen)
		}
	default:
		return h, nil, fmt.Errorf("%w: unknown message type %#x", ErrProtocol, h.typ)
	}
	// An abort reason may exceed the frame-sized buffer; the declared
	// length is already capped, so growing to it is bounded.
	if int(h.payloadLen) > cap(mr.payload) {
		mr.payload = make([]byte, h.payloadLen)
	}
	mr.payload = mr.payload[:h.payloadLen]
	if _, err := io.ReadFull(mr.r, mr.payload); err != nil {
		return h, nil, fmt.Errorf("stream: reading %d-byte payload: %w", h.payloadLen, err)
	}
	var sum [4]byte
	if _, err := io.ReadFull(mr.r, sum[:]); err != nil {
		return h, nil, fmt.Errorf("stream: reading message crc: %w", err)
	}
	got := crc32.Update(crc32.ChecksumIEEE(mr.hdr[:]), crc32.IEEETable, mr.payload)
	if want := binary.LittleEndian.Uint32(sum[:]); got != want {
		return h, nil, fmt.Errorf("%w: message %#x seq %d: crc %08x, computed %08x",
			ErrChecksum, h.typ, h.seq, want, got)
	}
	return h, mr.payload, nil
}

// decodeFrame scatters a validated frame payload into f's columns.
// The payload length has already been cross-checked against records.
func decodeFrame(f *trace.Frame, records int, payload []byte) error {
	if records > f.Cap() {
		return fmt.Errorf("%w: frame of %d records into buffer of %d", ErrTooLarge, records, f.Cap())
	}
	off := 0
	for i := 0; i < records; i++ {
		f.Block[i] = binary.LittleEndian.Uint64(payload[off:])
		off += 8
	}
	for i := 0; i < records; i++ {
		f.PC[i] = binary.LittleEndian.Uint32(payload[off:])
		off += 4
	}
	for i := 0; i < records; i++ {
		f.Instrs[i] = binary.LittleEndian.Uint32(payload[off:])
		off += 4
	}
	for i := 0; i < records; i++ {
		f.Work[i] = binary.LittleEndian.Uint32(payload[off:])
		off += 4
	}
	for i := 0; i < records; i++ {
		f.Dep[i] = payload[off+(i>>3)]>>(i&7)&1 != 0
	}
	f.SetLen(records)
	return nil
}
