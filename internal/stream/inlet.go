package stream

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"stms/internal/trace"
)

// InletConfig tunes the consuming side. The zero value is usable.
type InletConfig struct {
	Timeouts Timeouts
	// Window is the credit window: the maximum frames buffered
	// inlet-side (and so the maximum the outlet may have in flight
	// unacknowledged). Defaults to max(16, 4*cores), floored at
	// 2*cores+2 so round-robin delivery cannot starve a core.
	Window int
}

// Inlet consumes one STMSWIRE stream and hands it to the simulation as
// per-core trace.FrameSources — the drivers cannot tell it from a local
// tape. A reader goroutine owns the connection: it validates and
// decodes frames into a bounded pool of buffers (memory stays bounded
// no matter how far the producer is ahead or how stalled the simulator
// is), routes them to per-core channels, grants credit as the consumer
// recycles buffers, and reconnects with resume when the transport
// drops. Typed protocol violations and a dead producer surface through
// Err — per the trace.FrameSource contract, never as a clean-looking
// end of stream.
type Inlet struct {
	to     Timeouts
	window int
	hello  Hello

	// helloJSON is the first connection's hello body; reconnects must
	// present identical metadata or the stream identity has changed
	// under us (ErrMetadata).
	helloJSON []byte
	oneWay    bool

	// redial re-establishes the transport for resume: dial again, or
	// accept the next connection. Nil for one-way readers.
	redial func() (net.Conn, error)
	lis    net.Listener // owned in listen mode; closed on Close
	closer io.Closer    // one-way source to close on Close, if closeable

	pool  chan *trace.Frame
	chans []chan *trace.Frame

	mu         sync.Mutex
	conn       net.Conn // live connection, for Close to sever
	held       int      // frames out of the pool (buffered + consumer-held)
	pending    int      // recycled frames not yet granted back as credit
	lastSeq    uint64   // last contiguous frame sequence received
	err        error    // terminal failure, set before channels close
	frames     uint64
	reconnects uint64

	notify    chan struct{} // pokes the credit writer
	closed    chan struct{}
	closeOnce sync.Once
	done      chan struct{} // reader goroutine exited
}

func newInlet(cfg InletConfig) *Inlet {
	return &Inlet{
		to:     cfg.Timeouts.withDefaults(),
		window: cfg.Window,
		notify: make(chan struct{}, 1),
		closed: make(chan struct{}),
		done:   make(chan struct{}),
	}
}

// DialInlet connects to an outlet at addr, completes the handshake, and
// starts consuming. Reconnect-with-resume redials the same address.
func DialInlet(addr string, cfg InletConfig) (*Inlet, error) {
	in := newInlet(cfg)
	in.redial = func() (net.Conn, error) {
		return net.DialTimeout("tcp", addr, in.to.Handshake)
	}
	conn, err := in.redial()
	if err != nil {
		return nil, err
	}
	if err := in.handshake(conn); err != nil {
		conn.Close()
		return nil, err
	}
	go in.run(conn)
	return in, nil
}

// ListenInlet accepts an outlet on lis (taking ownership of it),
// completes the handshake, and starts consuming. Reconnect-with-resume
// accepts the next connection. The first accept waits until the outlet
// arrives or Close.
func ListenInlet(lis net.Listener, cfg InletConfig) (*Inlet, error) {
	in := newInlet(cfg)
	in.lis = lis
	in.redial = func() (net.Conn, error) {
		type deadliner interface{ SetDeadline(time.Time) error }
		if d, ok := lis.(deadliner); ok {
			_ = d.SetDeadline(time.Now().Add(in.to.Handshake))
		}
		return lis.Accept()
	}
	type deadliner interface{ SetDeadline(time.Time) error }
	if d, ok := lis.(deadliner); ok {
		_ = d.SetDeadline(time.Time{}) // first accept: wait for the outlet
	}
	conn, err := lis.Accept()
	if err != nil {
		lis.Close()
		return nil, err
	}
	if err := in.handshake(conn); err != nil {
		conn.Close()
		lis.Close()
		return nil, err
	}
	go in.run(conn)
	return in, nil
}

// ReaderInlet consumes a one-way stream (stdin, a file, a pipe): no
// welcome, credits, or resume — not reading is the backpressure. If r
// is an io.Closer, Close closes it to unblock the reader.
func ReaderInlet(r io.Reader, cfg InletConfig) (*Inlet, error) {
	in := newInlet(cfg)
	if c, ok := r.(io.Closer); ok {
		in.closer = c
	}
	body, err := readEnvelope(r)
	if err != nil {
		return nil, err
	}
	if err := in.adoptHello(body); err != nil {
		return nil, err
	}
	if !in.hello.OneWay {
		return nil, fmt.Errorf("%w: two-way hello on a one-way reader", ErrProtocol)
	}
	in.oneWay = true
	go in.runReader(r)
	return in, nil
}

// adoptHello validates and installs the first hello, sizing the buffer
// pool and per-core channels from its (capped) declarations.
func (in *Inlet) adoptHello(body []byte) error {
	var h Hello
	if err := unmarshalStrictish(body, &h); err != nil {
		return fmt.Errorf("%w: hello: %v", ErrProtocol, err)
	}
	if err := h.validate(); err != nil {
		return err
	}
	in.hello = h
	in.helloJSON = append([]byte(nil), body...)
	if in.window <= 0 {
		in.window = max(16, 4*h.Cores)
	}
	if floor := 2*h.Cores + 2; in.window < floor {
		in.window = floor
	}
	if in.window > maxWindow {
		in.window = maxWindow
	}
	// window + cores buffers: up to window frames buffered inlet-side
	// plus one in each consumer's hands.
	in.pool = make(chan *trace.Frame, in.window+h.Cores)
	for i := 0; i < in.window+h.Cores; i++ {
		in.pool <- trace.NewFrameCap(h.FrameCap)
	}
	in.chans = make([]chan *trace.Frame, h.Cores)
	for i := range in.chans {
		in.chans[i] = make(chan *trace.Frame, in.window)
	}
	return nil
}

// handshake runs the two-way opening on a fresh connection: read and
// check the hello, reply with resume position and the current credit.
func (in *Inlet) handshake(conn net.Conn) error {
	_ = conn.SetDeadline(time.Now().Add(in.to.Handshake))
	body, err := readEnvelope(conn)
	if err != nil {
		return err
	}
	if in.helloJSON == nil {
		if err := in.adoptHello(body); err != nil {
			return err
		}
	} else if !bytes.Equal(body, in.helloJSON) {
		return fmt.Errorf("%w: reconnect offered a different stream", ErrMetadata)
	}
	if in.hello.OneWay {
		return fmt.Errorf("%w: one-way hello on a connection", ErrProtocol)
	}
	in.mu.Lock()
	in.pending = 0
	wel := Welcome{
		Format:    string(wireMagic[:]),
		Version:   Version,
		ResumeSeq: in.lastSeq,
		Window:    uint32(in.window - in.held),
	}
	in.conn = conn
	in.mu.Unlock()
	if err := writeEnvelope(conn, wel); err != nil {
		return err
	}
	_ = conn.SetDeadline(time.Time{})
	return nil
}

// run is the reader goroutine for connection-backed inlets: consume
// until clean end, resuming across transport drops; always close the
// per-core channels on the way out so consumers never hang.
func (in *Inlet) run(conn net.Conn) {
	defer close(in.done)
	defer func() {
		for _, ch := range in.chans {
			close(ch)
		}
		if in.lis != nil {
			in.lis.Close()
		}
	}()
	for {
		err := in.consume(conn, conn)
		conn.Close()
		if err == nil {
			return // clean end of stream
		}
		if in.isClosed() {
			// User-initiated shutdown: the transport error is just our
			// own conn.Close echoing back.
			in.setErr(ErrClosed)
			return
		}
		if isWireError(err) {
			in.setErr(err)
			return
		}
		conn, err = in.reattach()
		if err != nil {
			in.setErr(err)
			return
		}
		in.mu.Lock()
		in.reconnects++
		in.mu.Unlock()
	}
}

// runReader is the reader goroutine for one-way inlets: a single
// consume pass, no resume.
func (in *Inlet) runReader(r io.Reader) {
	defer close(in.done)
	defer func() {
		for _, ch := range in.chans {
			close(ch)
		}
	}()
	if err := in.consume(r, nil); err != nil {
		in.setErr(err)
	}
}

// consume drains messages from one transport until end of stream (nil),
// a typed protocol failure, or a transport error. conn is nil for
// one-way readers (no deadlines, no credit writer).
func (in *Inlet) consume(r io.Reader, conn net.Conn) error {
	if conn != nil {
		stop := make(chan struct{})
		defer close(stop)
		go in.writeLoop(conn, stop)
	}
	mr := newMsgReader(bufio.NewReaderSize(r, 64<<10), in.hello)
	for {
		if conn != nil {
			_ = conn.SetReadDeadline(time.Now().Add(in.to.Idle))
		}
		h, payload, err := mr.next()
		if err != nil {
			return err
		}
		switch h.typ {
		case msgFrame:
			if err := in.acceptFrame(h, payload); err != nil {
				return err
			}
		case msgHeartbeat:
			// Read deadline already refreshed.
		case msgEnd:
			return nil
		case msgAbort:
			return fmt.Errorf("%w: %s", ErrAborted, payload)
		default:
			return fmt.Errorf("%w: unexpected message %#x from outlet", ErrProtocol, h.typ)
		}
	}
}

// acceptFrame validates ordering and credit, decodes the payload into a
// pooled buffer, and routes it to its core's channel.
func (in *Inlet) acceptFrame(h msgHdr, payload []byte) error {
	if h.seq != in.lastSeq+1 {
		return fmt.Errorf("%w: frame sequence %d after %d", ErrProtocol, h.seq, in.lastSeq)
	}
	var f *trace.Frame
	if in.oneWay {
		// One-way: the pool bounds memory; waiting for a free buffer
		// (not reading the pipe) is the backpressure.
		select {
		case f = <-in.pool:
		case <-in.closed:
			return ErrClosed
		}
	} else {
		// Two-way: the outlet may only send within granted credit, and
		// the pool is sized to cover exactly that. An empty pool means
		// the peer overran its window.
		select {
		case f = <-in.pool:
		default:
			return fmt.Errorf("%w: frame %d arrived with no credit outstanding", ErrCredit, h.seq)
		}
	}
	if err := decodeFrame(f, int(h.records), payload); err != nil {
		in.pool <- f
		return err
	}
	in.mu.Lock()
	in.lastSeq = h.seq
	in.held++
	in.frames++
	in.mu.Unlock()
	// Channel capacity covers the whole window: this never blocks.
	in.chans[h.arg] <- f
	return nil
}

// writeLoop sends credit grants and heartbeats on its own goroutine
// until the connection turns over. On a write failure it severs the
// conn so the reader unblocks with the transport error.
func (in *Inlet) writeLoop(conn net.Conn, stop chan struct{}) {
	tick := time.NewTicker(in.to.Heartbeat)
	defer tick.Stop()
	var buf []byte
	for {
		select {
		case <-stop:
			return
		case <-in.closed:
			return
		case <-in.notify:
		case <-tick.C:
		}
		in.mu.Lock()
		n := in.pending
		in.pending = 0
		in.mu.Unlock()
		if n > 0 {
			buf = appendCtrlMsg(buf[:0], msgCredit, uint32(n))
		} else {
			buf = appendCtrlMsg(buf[:0], msgHeartbeat, 0)
		}
		_ = conn.SetWriteDeadline(time.Now().Add(in.to.Idle))
		if _, err := conn.Write(buf); err != nil {
			conn.Close()
			return
		}
	}
}

// reattach re-establishes the transport after a drop: redial (or
// re-accept) with exponential backoff inside the Reconnect budget, then
// handshake with the resume position.
func (in *Inlet) reattach() (net.Conn, error) {
	deadline := time.Now().Add(in.to.Reconnect)
	backoff := in.to.Backoff
	var lastErr error
	for {
		if in.isClosed() {
			return nil, ErrClosed
		}
		conn, err := in.redial()
		if err == nil {
			if err = in.handshake(conn); err == nil {
				return conn, nil
			}
			conn.Close()
			if isWireError(err) {
				return nil, err
			}
		}
		lastErr = err
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("stream: resume failed within %v: %w", in.to.Reconnect, lastErr)
		}
		t := time.NewTimer(backoff)
		select {
		case <-in.closed:
			t.Stop()
			return nil, ErrClosed
		case <-t.C:
		}
		if backoff *= 2; backoff > time.Second {
			backoff = time.Second
		}
	}
}

// recycle returns a consumed frame to the pool and queues a credit
// grant for it.
func (in *Inlet) recycle(f *trace.Frame) {
	in.mu.Lock()
	in.held--
	in.pending++
	in.mu.Unlock()
	in.pool <- f
	select {
	case in.notify <- struct{}{}:
	default:
	}
}

func (in *Inlet) setErr(err error) {
	in.mu.Lock()
	if in.err == nil {
		in.err = err
	}
	in.mu.Unlock()
}

func (in *Inlet) isClosed() bool {
	select {
	case <-in.closed:
		return true
	default:
		return false
	}
}

// Hello returns the stream's announced metadata.
func (in *Inlet) Hello() Hello { return in.hello }

// Err returns the stream's terminal failure: nil while streaming and
// after a clean end, non-nil when the producer died, the protocol was
// violated, or resume ran out of budget.
func (in *Inlet) Err() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.err
}

// Frames returns how many frames have been received, Reconnects how
// many times the transport was re-established mid-stream.
func (in *Inlet) Frames() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.frames
}

// Reconnects reports mid-stream transport re-establishments.
func (in *Inlet) Reconnects() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.reconnects
}

// Close tears the inlet down: severs the transport, stops the reader
// goroutine, and releases consumers (their NextFrame drains what is
// buffered, then returns nil). Idempotent; does not wait for the reader.
func (in *Inlet) Close() {
	in.closeOnce.Do(func() {
		close(in.closed)
		in.mu.Lock()
		conn := in.conn
		in.mu.Unlock()
		if conn != nil {
			conn.Close()
		}
		if in.lis != nil {
			in.lis.Close()
		}
		if in.closer != nil {
			in.closer.Close()
		}
	})
}

// Wait blocks until the reader goroutine has exited (tests use it to
// prove cancellation leaks nothing).
func (in *Inlet) Wait() { <-in.done }

// Sources returns the per-core frame sources, one per announced core.
// Each implements trace.FrameSource; closing any of them closes the
// whole inlet (the drivers close every source on every exit path).
func (in *Inlet) Sources() []trace.FrameSource {
	out := make([]trace.FrameSource, len(in.chans))
	for i := range out {
		out[i] = &coreSource{in: in, core: i}
	}
	return out
}

// coreSource adapts one core's channel to trace.FrameSource.
type coreSource struct {
	in    *Inlet
	core  int
	cur   *trace.Frame
	stats trace.FrameStats
}

func (c *coreSource) NextFrame() *trace.Frame {
	if c.cur != nil {
		c.in.recycle(c.cur)
		c.cur = nil
	}
	f, ok := <-c.in.chans[c.core]
	if !ok {
		return nil
	}
	c.cur = f
	c.stats.Frames++
	c.stats.Records += uint64(f.Len())
	return f
}

func (c *coreSource) Stats() trace.FrameStats { return c.stats }

// Err forwards the inlet's terminal failure, honoring the FrameSource
// contract: a producer death must never present as clean end-of-stream.
func (c *coreSource) Err() error { return c.in.Err() }

func (c *coreSource) Close() {
	if c.cur != nil {
		c.in.recycle(c.cur)
		c.cur = nil
	}
	c.in.Close()
}
